#include "data/scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mfpa::data {
namespace {

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Matrix X{{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}, {4.0, 400.0}};
  StandardScaler s;
  const Matrix Z = s.fit_transform(X);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < 4; ++r) mean += Z(r, c);
    mean /= 4.0;
    for (std::size_t r = 0; r < 4; ++r) var += (Z(r, c) - mean) * (Z(r, c) - mean);
    var /= 3.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(StandardScaler, ConstantColumnCenteredNotScaled) {
  Matrix X{{5.0}, {5.0}, {5.0}};
  StandardScaler s;
  const Matrix Z = s.fit_transform(X);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_NEAR(Z(r, 0), 0.0, 1e-12);
}

TEST(StandardScaler, TransformUsesFitStats) {
  Matrix train{{0.0}, {10.0}};
  StandardScaler s;
  s.fit(train);
  Matrix test{{5.0}, {15.0}};
  const Matrix Z = s.transform(test);
  EXPECT_NEAR(Z(0, 0), 0.0, 1e-12);               // 5 is the train mean
  EXPECT_GT(Z(1, 0), 1.0);                        // 15 beyond train range
}

TEST(StandardScaler, TransformBeforeFitThrows) {
  StandardScaler s;
  Matrix X{{1.0}};
  EXPECT_THROW(s.transform(X), std::logic_error);
}

TEST(StandardScaler, ColumnMismatchThrows) {
  StandardScaler s;
  Matrix X{{1.0, 2.0}};
  s.fit(X);
  Matrix bad{{1.0}};
  EXPECT_THROW(s.transform(bad), std::logic_error);
}

TEST(StandardScaler, AccessorsExposeStats) {
  Matrix X{{2.0}, {4.0}};
  StandardScaler s;
  s.fit(X);
  ASSERT_TRUE(s.fitted());
  EXPECT_NEAR(s.means()[0], 3.0, 1e-12);
  EXPECT_NEAR(s.stddevs()[0], std::sqrt(2.0), 1e-12);
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  Matrix X{{0.0}, {5.0}, {10.0}};
  MinMaxScaler s;
  const Matrix Z = s.fit_transform(X);
  EXPECT_DOUBLE_EQ(Z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Z(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(Z(2, 0), 1.0);
}

TEST(MinMaxScaler, ConstantColumnMapsToZero) {
  Matrix X{{3.0}, {3.0}};
  MinMaxScaler s;
  const Matrix Z = s.fit_transform(X);
  EXPECT_DOUBLE_EQ(Z(0, 0), 0.0);
}

TEST(MinMaxScaler, TransformBeforeFitThrows) {
  MinMaxScaler s;
  Matrix X{{1.0}};
  EXPECT_THROW(s.transform(X), std::logic_error);
}

TEST(MinMaxScaler, OutOfRangeTestValues) {
  Matrix train{{0.0}, {10.0}};
  MinMaxScaler s;
  s.fit(train);
  Matrix test{{-10.0}, {20.0}};
  const Matrix Z = s.transform(test);
  EXPECT_DOUBLE_EQ(Z(0, 0), -1.0);  // not clamped: linear extension
  EXPECT_DOUBLE_EQ(Z(1, 0), 2.0);
}

}  // namespace
}  // namespace mfpa::data
