#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace mfpa::data {
namespace {

Dataset make_basic() {
  Dataset ds;
  ds.feature_names = {"f0", "f1"};
  ds.add(std::vector<double>{1.0, 10.0}, 0, {100, 5, 0});
  ds.add(std::vector<double>{2.0, 20.0}, 1, {101, 3, 0});
  ds.add(std::vector<double>{3.0, 30.0}, 0, {102, 8, 1});
  ds.add(std::vector<double>{4.0, 40.0}, 1, {103, 1, 1});
  return ds;
}

TEST(Dataset, AddAndCounts) {
  const Dataset ds = make_basic();
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_EQ(ds.positives(), 2u);
  EXPECT_EQ(ds.negatives(), 2u);
  EXPECT_NO_THROW(ds.check_invariants());
}

TEST(Dataset, InvariantViolationDetected) {
  Dataset ds = make_basic();
  ds.y.push_back(1);  // break alignment
  EXPECT_THROW(ds.check_invariants(), std::logic_error);
}

TEST(Dataset, NonBinaryLabelDetected) {
  Dataset ds = make_basic();
  ds.y[0] = 2;
  EXPECT_THROW(ds.check_invariants(), std::logic_error);
}

TEST(Dataset, FeatureNameArityDetected) {
  Dataset ds = make_basic();
  ds.feature_names.push_back("extra");
  EXPECT_THROW(ds.check_invariants(), std::logic_error);
}

TEST(Dataset, SelectRowsKeepsAlignment) {
  const Dataset ds = make_basic();
  const std::vector<std::size_t> idx{3, 0};
  const Dataset s = ds.select_rows(idx);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.y[0], 1);
  EXPECT_EQ(s.meta[0].drive_id, 103u);
  EXPECT_DOUBLE_EQ(s.X(1, 1), 10.0);
  EXPECT_EQ(s.feature_names, ds.feature_names);
}

TEST(Dataset, SelectRowsBadIndexThrows) {
  const Dataset ds = make_basic();
  const std::vector<std::size_t> idx{99};
  EXPECT_THROW(ds.select_rows(idx), std::out_of_range);
}

TEST(Dataset, FeatureIndexLookup) {
  const Dataset ds = make_basic();
  EXPECT_EQ(ds.feature_index("f1"), 1u);
  EXPECT_THROW(ds.feature_index("nope"), std::out_of_range);
}

TEST(Dataset, SelectFeaturesReorders) {
  const Dataset ds = make_basic();
  const Dataset s = ds.select_features({"f1", "f0"});
  EXPECT_EQ(s.num_features(), 2u);
  EXPECT_DOUBLE_EQ(s.X(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(s.X(0, 1), 1.0);
  EXPECT_EQ(s.feature_names[0], "f1");
  EXPECT_EQ(s.y, ds.y);
}

TEST(Dataset, SelectFeaturesSubset) {
  const Dataset ds = make_basic();
  const Dataset s = ds.select_features({"f0"});
  EXPECT_EQ(s.num_features(), 1u);
  EXPECT_DOUBLE_EQ(s.X(2, 0), 3.0);
}

TEST(Dataset, SplitByDay) {
  const Dataset ds = make_basic();
  const auto [early, late] = ds.split_by_day(4);
  EXPECT_EQ(early.size(), 2u);  // days 3 and 1
  EXPECT_EQ(late.size(), 2u);   // days 5 and 8
  for (const auto& m : early.meta) EXPECT_LE(m.day, 4);
  for (const auto& m : late.meta) EXPECT_GT(m.day, 4);
}

TEST(Dataset, FilterByPredicate) {
  const Dataset ds = make_basic();
  const Dataset pos =
      ds.filter([](const RowMeta&, int label) { return label == 1; });
  EXPECT_EQ(pos.size(), 2u);
  const Dataset v1 =
      ds.filter([](const RowMeta& m, int) { return m.vendor == 1; });
  EXPECT_EQ(v1.size(), 2u);
}

TEST(Dataset, SortedByTime) {
  const Dataset ds = make_basic();
  const Dataset s = ds.sorted_by_time();
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s.meta[i - 1].day, s.meta[i].day);
  }
  EXPECT_EQ(s.meta.front().day, 1);
  EXPECT_EQ(s.meta.back().day, 8);
}

TEST(Dataset, SortedByTimeTieBreaksOnDrive) {
  Dataset ds;
  ds.add(std::vector<double>{1.0}, 0, {200, 5, 0});
  ds.add(std::vector<double>{2.0}, 0, {100, 5, 0});
  const Dataset s = ds.sorted_by_time();
  EXPECT_EQ(s.meta[0].drive_id, 100u);
}

TEST(Dataset, AppendConcatenates) {
  Dataset a = make_basic();
  const Dataset b = make_basic();
  a.append(b);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_NO_THROW(a.check_invariants());
}

TEST(Dataset, AppendToEmpty) {
  Dataset a;
  a.append(make_basic());
  EXPECT_EQ(a.size(), 4u);
}

TEST(Dataset, AppendNameMismatchThrows) {
  Dataset a = make_basic();
  Dataset b = make_basic();
  b.feature_names = {"x", "y"};
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

}  // namespace
}  // namespace mfpa::data
