#include "data/label_encoder.hpp"

#include <gtest/gtest.h>

namespace mfpa::data {
namespace {

TEST(LabelEncoder, FitAssignsFirstSeenOrder) {
  LabelEncoder enc;
  enc.fit({"b", "a", "b", "c"});
  EXPECT_EQ(enc.num_classes(), 3u);
  EXPECT_DOUBLE_EQ(enc.transform_one("b"), 0.0);
  EXPECT_DOUBLE_EQ(enc.transform_one("a"), 1.0);
  EXPECT_DOUBLE_EQ(enc.transform_one("c"), 2.0);
}

TEST(LabelEncoder, UnknownMapsToSentinel) {
  LabelEncoder enc;
  enc.fit({"x"});
  EXPECT_DOUBLE_EQ(enc.transform_one("unseen"), enc.unknown_code());
  EXPECT_DOUBLE_EQ(enc.unknown_code(), 1.0);
}

TEST(LabelEncoder, TransformBatch) {
  LabelEncoder enc;
  enc.fit({"a", "b"});
  const auto codes = enc.transform({"b", "a", "zz"});
  ASSERT_EQ(codes.size(), 3u);
  EXPECT_DOUBLE_EQ(codes[0], 1.0);
  EXPECT_DOUBLE_EQ(codes[1], 0.0);
  EXPECT_DOUBLE_EQ(codes[2], 2.0);
}

TEST(LabelEncoder, InverseTransform) {
  LabelEncoder enc;
  enc.fit({"one", "two"});
  EXPECT_EQ(enc.inverse_transform(0), "one");
  EXPECT_EQ(enc.inverse_transform(1), "two");
  EXPECT_THROW(enc.inverse_transform(2), std::out_of_range);
}

TEST(LabelEncoder, PartialFitKeepsCodesStable) {
  LabelEncoder enc;
  enc.fit({"a"});
  enc.partial_fit({"b", "a", "c"});
  EXPECT_DOUBLE_EQ(enc.transform_one("a"), 0.0);
  EXPECT_DOUBLE_EQ(enc.transform_one("b"), 1.0);
  EXPECT_DOUBLE_EQ(enc.transform_one("c"), 2.0);
}

TEST(LabelEncoder, RefitResets) {
  LabelEncoder enc;
  enc.fit({"a", "b"});
  enc.fit({"z"});
  EXPECT_EQ(enc.num_classes(), 1u);
  EXPECT_DOUBLE_EQ(enc.transform_one("z"), 0.0);
  EXPECT_FALSE(enc.contains("a"));
}

TEST(LabelEncoder, Contains) {
  LabelEncoder enc;
  enc.fit({"fw1"});
  EXPECT_TRUE(enc.contains("fw1"));
  EXPECT_FALSE(enc.contains("fw2"));
}

TEST(LabelEncoder, EmptyFit) {
  LabelEncoder enc;
  enc.fit({});
  EXPECT_EQ(enc.num_classes(), 0u);
  EXPECT_DOUBLE_EQ(enc.transform_one("anything"), 0.0);  // unknown == 0
}

}  // namespace
}  // namespace mfpa::data
