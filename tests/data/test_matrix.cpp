#include "data/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mfpa::data {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstruction) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, ElementWrite) {
  Matrix m(2, 2);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(Matrix, RowSpanIsContiguous) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(Matrix, RowSpanMutation) {
  Matrix m(1, 2);
  m.row(0)[1] = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
}

TEST(Matrix, ColumnCopy) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const auto col = m.column(1);
  EXPECT_EQ(col, (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_THROW(m.column(2), std::out_of_range);
}

TEST(Matrix, AddRowDefinesArity) {
  Matrix m;
  m.add_row(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(m.cols(), 2u);
  m.add_row(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_THROW(m.add_row(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, SelectRows) {
  Matrix m{{1.0}, {2.0}, {3.0}};
  const std::vector<std::size_t> idx{2, 0, 2};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(s(2, 0), 3.0);
}

TEST(Matrix, SelectRowsOutOfRangeThrows) {
  Matrix m{{1.0}};
  const std::vector<std::size_t> idx{1};
  EXPECT_THROW(m.select_rows(idx), std::out_of_range);
}

TEST(Matrix, SelectColumns) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const std::vector<std::size_t> idx{2, 0};
  const Matrix s = m.select_columns(idx);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(Matrix, SelectColumnsOutOfRangeThrows) {
  Matrix m{{1.0}};
  const std::vector<std::size_t> idx{3};
  EXPECT_THROW(m.select_columns(idx), std::out_of_range);
}

TEST(Matrix, AppendStacksRows) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 4.0}, {5.0, 6.0}};
  a.append(b);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
}

TEST(Matrix, AppendToEmptyCopies) {
  Matrix a;
  Matrix b{{1.0}};
  a.append(b);
  EXPECT_EQ(a.rows(), 1u);
}

TEST(Matrix, AppendEmptyIsNoop) {
  Matrix a{{1.0}};
  a.append(Matrix{});
  EXPECT_EQ(a.rows(), 1u);
}

TEST(Matrix, AppendMismatchThrows) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0}};
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(Matrix, Equality) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0, 2.0}};
  Matrix c{{1.0, 3.0}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace mfpa::data
