#include "data/binned_matrix.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace mfpa::data {
namespace {

TEST(BinnedMatrix, ConstantColumnHasSingleBin) {
  Matrix X{{3.0}, {3.0}, {3.0}};
  const BinnedMatrix bins(X);
  EXPECT_EQ(bins.n_bins(0), 1u);
  EXPECT_TRUE(bins.cuts(0).empty());
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(bins.code(r, 0), 0);
}

TEST(BinnedMatrix, LowCardinalityCutsAreAdjacentMidpoints) {
  // 10 distinct integer values -> 9 cuts at x.5, one value per bin.
  Matrix X(20, 1);
  for (std::size_t r = 0; r < 20; ++r) X(r, 0) = static_cast<double>(r % 10);
  const BinnedMatrix bins(X);
  ASSERT_EQ(bins.n_bins(0), 10u);
  for (std::size_t b = 0; b + 1 < 10; ++b) {
    EXPECT_DOUBLE_EQ(bins.cut(0, b), static_cast<double>(b) + 0.5);
  }
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_EQ(bins.code(r, 0), static_cast<std::uint8_t>(r % 10));
  }
}

TEST(BinnedMatrix, CodeThresholdConsistency) {
  // The invariant the tree relies on: code <= b  <=>  value <= cut(b),
  // so a split learned on codes predicts identically on raw values.
  Rng rng(7);
  Matrix X(500, 3);
  for (std::size_t r = 0; r < 500; ++r) {
    X(r, 0) = rng.normal(0.0, 5.0);
    X(r, 1) = static_cast<double>(rng.uniform_int(0, 5));  // heavy ties
    X(r, 2) = rng.uniform();
  }
  const BinnedMatrix bins(X, 64);
  for (std::size_t f = 0; f < 3; ++f) {
    const auto& cuts = bins.cuts(f);
    for (std::size_t r = 0; r < 500; ++r) {
      for (std::size_t b = 0; b < cuts.size(); ++b) {
        EXPECT_EQ(bins.code(r, f) <= b, X(r, f) <= cuts[b])
            << "f=" << f << " r=" << r << " b=" << b;
      }
    }
  }
}

TEST(BinnedMatrix, CutsStrictlyAscending) {
  Rng rng(8);
  Matrix X(2000, 2);
  for (std::size_t r = 0; r < 2000; ++r) {
    X(r, 0) = rng.uniform();
    X(r, 1) = rng.normal();
  }
  const BinnedMatrix bins(X, 32);
  for (std::size_t f = 0; f < 2; ++f) {
    const auto& cuts = bins.cuts(f);
    for (std::size_t b = 1; b < cuts.size(); ++b) {
      EXPECT_LT(cuts[b - 1], cuts[b]);
    }
  }
}

TEST(BinnedMatrix, CapsBinCountAtMaxBins) {
  Rng rng(9);
  Matrix X(10000, 1);
  for (std::size_t r = 0; r < 10000; ++r) X(r, 0) = rng.uniform();
  const BinnedMatrix bins(X);  // 10k distinct values, 255-bin cap
  EXPECT_LE(bins.n_bins(0), BinnedMatrix::kMaxBins);
  EXPECT_GT(bins.n_bins(0), 200u);  // quantile sketch should use the budget
  // Codes stay within the bin count.
  for (std::size_t r = 0; r < 10000; ++r) {
    EXPECT_LT(bins.code(r, 0), bins.n_bins(0));
  }
}

TEST(BinnedMatrix, QuantileBinsBalancedOnUniformData) {
  Rng rng(10);
  const std::size_t n = 8000;
  Matrix X(n, 1);
  for (std::size_t r = 0; r < n; ++r) X(r, 0) = rng.uniform();
  const BinnedMatrix bins(X, 16);
  std::vector<std::size_t> counts(bins.n_bins(0), 0);
  for (std::size_t r = 0; r < n; ++r) ++counts[bins.code(r, 0)];
  for (std::size_t c : counts) {
    EXPECT_GT(c, n / 16 / 2);
    EXPECT_LT(c, n / 16 * 2);
  }
}

TEST(BinnedMatrix, SelectRowsPreservesEdgesAndCodes) {
  Rng rng(11);
  Matrix X(100, 2);
  for (std::size_t r = 0; r < 100; ++r) {
    X(r, 0) = rng.normal();
    X(r, 1) = rng.uniform();
  }
  const BinnedMatrix bins(X, 16);
  const std::vector<std::size_t> idx{5, 99, 0, 42, 42};
  const BinnedMatrix sub = bins.select_rows(idx);
  ASSERT_EQ(sub.rows(), 5u);
  ASSERT_EQ(sub.cols(), 2u);
  for (std::size_t f = 0; f < 2; ++f) {
    EXPECT_EQ(sub.cuts(f), bins.cuts(f));
    for (std::size_t i = 0; i < idx.size(); ++i) {
      EXPECT_EQ(sub.code(i, f), bins.code(idx[i], f));
    }
  }
}

TEST(BinnedMatrix, SelectRowsOutOfRangeThrows) {
  Matrix X{{1.0}, {2.0}};
  const BinnedMatrix bins(X);
  const std::vector<std::size_t> idx{2};
  EXPECT_THROW(bins.select_rows(idx), std::out_of_range);
}

TEST(BinnedMatrix, CodesPtrMatchesColumnAndCodes) {
  Rng rng(13);
  Matrix X(64, 3);
  for (std::size_t r = 0; r < 64; ++r) {
    X(r, 0) = rng.normal();
    X(r, 1) = 7.0;  // constant
    X(r, 2) = static_cast<double>(rng.uniform_int(0, 4));
  }
  const BinnedMatrix bins(X, 32);
  for (std::size_t f = 0; f < 3; ++f) {
    const std::uint8_t* col = bins.codes_ptr(f);
    ASSERT_EQ(col, bins.column(f));
    for (std::size_t r = 0; r < 64; ++r) {
      EXPECT_EQ(col[r], bins.code(r, f));
    }
  }
}

TEST(BinnedMatrix, RowCodesIntoGathersRowMajorBlocks) {
  Rng rng(17);
  Matrix X(50, 4);
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 4; ++c) X(r, c) = rng.uniform();
  }
  const BinnedMatrix bins(X, 8);
  // Interior block, prefix, suffix, single row, and the empty range.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {10, 30}, {0, 7}, {43, 50}, {25, 26}, {25, 25}};
  for (const auto& [lo, hi] : ranges) {
    SCOPED_TRACE("range [" + std::to_string(lo) + ", " + std::to_string(hi) +
                 ")");
    std::vector<std::uint8_t> out((hi - lo) * bins.cols(), 0xAA);
    bins.row_codes_into(lo, hi, out.data());
    for (std::size_t r = lo; r < hi; ++r) {
      for (std::size_t f = 0; f < bins.cols(); ++f) {
        EXPECT_EQ(out[(r - lo) * bins.cols() + f], bins.code(r, f));
      }
    }
  }
}

TEST(BinnedMatrix, RunAwareCutsOnConstantAndLowCardinalityColumns) {
  // The run-aware equal-frequency sketch must keep its invariants on the
  // edge cases the quantized scorer leans on: a constant column encodes to
  // a single bin with no cuts, a column with fewer distinct values than
  // the budget gets exactly distinct-1 midpoint cuts (codes == value
  // ranks), and a 90%-tied column still gives the giant run its own bin.
  Matrix X(200, 3);
  for (std::size_t r = 0; r < 200; ++r) {
    X(r, 0) = -3.25;                                // constant
    X(r, 1) = static_cast<double>(r % 5);           // 5 distinct values
    X(r, 2) = r < 180 ? 0.0 : static_cast<double>(r - 179);  // 90% zeros
  }
  const BinnedMatrix bins(X, 16);

  EXPECT_TRUE(bins.cuts(0).empty());
  EXPECT_EQ(bins.n_bins(0), 1u);
  for (std::size_t r = 0; r < 200; ++r) EXPECT_EQ(bins.code(r, 0), 0);

  ASSERT_EQ(bins.cuts(1).size(), 4u);  // distinct - 1 midpoints
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(bins.cuts(1)[i], static_cast<double>(i) + 0.5);
  }
  for (std::size_t r = 0; r < 200; ++r) {
    EXPECT_EQ(bins.code(r, 1), static_cast<std::uint8_t>(r % 5));
  }

  // All 180 zeros share code 0 (one bin for the run); the 20 distinct
  // positive values spread over the remaining bins in ascending order.
  for (std::size_t r = 0; r < 180; ++r) EXPECT_EQ(bins.code(r, 2), 0);
  for (std::size_t r = 181; r < 200; ++r) {
    EXPECT_GE(bins.code(r, 2), bins.code(r - 1, 2));
    EXPECT_GT(bins.code(r, 2), 0);
  }
  EXPECT_LE(bins.n_bins(2), 16u);
}

TEST(BinnedMatrix, RejectsEmptyAndBadBinCounts) {
  Matrix empty;
  EXPECT_THROW(BinnedMatrix{empty}, std::invalid_argument);
  Matrix X{{1.0}, {2.0}};
  EXPECT_THROW(BinnedMatrix(X, 1), std::invalid_argument);
  EXPECT_THROW(BinnedMatrix(X, 256), std::invalid_argument);
  EXPECT_NO_THROW(BinnedMatrix(X, 2));
  EXPECT_NO_THROW(BinnedMatrix(X, 255));
}

}  // namespace
}  // namespace mfpa::data
