#include "data/binned_matrix.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace mfpa::data {
namespace {

TEST(BinnedMatrix, ConstantColumnHasSingleBin) {
  Matrix X{{3.0}, {3.0}, {3.0}};
  const BinnedMatrix bins(X);
  EXPECT_EQ(bins.n_bins(0), 1u);
  EXPECT_TRUE(bins.cuts(0).empty());
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(bins.code(r, 0), 0);
}

TEST(BinnedMatrix, LowCardinalityCutsAreAdjacentMidpoints) {
  // 10 distinct integer values -> 9 cuts at x.5, one value per bin.
  Matrix X(20, 1);
  for (std::size_t r = 0; r < 20; ++r) X(r, 0) = static_cast<double>(r % 10);
  const BinnedMatrix bins(X);
  ASSERT_EQ(bins.n_bins(0), 10u);
  for (std::size_t b = 0; b + 1 < 10; ++b) {
    EXPECT_DOUBLE_EQ(bins.cut(0, b), static_cast<double>(b) + 0.5);
  }
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_EQ(bins.code(r, 0), static_cast<std::uint8_t>(r % 10));
  }
}

TEST(BinnedMatrix, CodeThresholdConsistency) {
  // The invariant the tree relies on: code <= b  <=>  value <= cut(b),
  // so a split learned on codes predicts identically on raw values.
  Rng rng(7);
  Matrix X(500, 3);
  for (std::size_t r = 0; r < 500; ++r) {
    X(r, 0) = rng.normal(0.0, 5.0);
    X(r, 1) = static_cast<double>(rng.uniform_int(0, 5));  // heavy ties
    X(r, 2) = rng.uniform();
  }
  const BinnedMatrix bins(X, 64);
  for (std::size_t f = 0; f < 3; ++f) {
    const auto& cuts = bins.cuts(f);
    for (std::size_t r = 0; r < 500; ++r) {
      for (std::size_t b = 0; b < cuts.size(); ++b) {
        EXPECT_EQ(bins.code(r, f) <= b, X(r, f) <= cuts[b])
            << "f=" << f << " r=" << r << " b=" << b;
      }
    }
  }
}

TEST(BinnedMatrix, CutsStrictlyAscending) {
  Rng rng(8);
  Matrix X(2000, 2);
  for (std::size_t r = 0; r < 2000; ++r) {
    X(r, 0) = rng.uniform();
    X(r, 1) = rng.normal();
  }
  const BinnedMatrix bins(X, 32);
  for (std::size_t f = 0; f < 2; ++f) {
    const auto& cuts = bins.cuts(f);
    for (std::size_t b = 1; b < cuts.size(); ++b) {
      EXPECT_LT(cuts[b - 1], cuts[b]);
    }
  }
}

TEST(BinnedMatrix, CapsBinCountAtMaxBins) {
  Rng rng(9);
  Matrix X(10000, 1);
  for (std::size_t r = 0; r < 10000; ++r) X(r, 0) = rng.uniform();
  const BinnedMatrix bins(X);  // 10k distinct values, 255-bin cap
  EXPECT_LE(bins.n_bins(0), BinnedMatrix::kMaxBins);
  EXPECT_GT(bins.n_bins(0), 200u);  // quantile sketch should use the budget
  // Codes stay within the bin count.
  for (std::size_t r = 0; r < 10000; ++r) {
    EXPECT_LT(bins.code(r, 0), bins.n_bins(0));
  }
}

TEST(BinnedMatrix, QuantileBinsBalancedOnUniformData) {
  Rng rng(10);
  const std::size_t n = 8000;
  Matrix X(n, 1);
  for (std::size_t r = 0; r < n; ++r) X(r, 0) = rng.uniform();
  const BinnedMatrix bins(X, 16);
  std::vector<std::size_t> counts(bins.n_bins(0), 0);
  for (std::size_t r = 0; r < n; ++r) ++counts[bins.code(r, 0)];
  for (std::size_t c : counts) {
    EXPECT_GT(c, n / 16 / 2);
    EXPECT_LT(c, n / 16 * 2);
  }
}

TEST(BinnedMatrix, SelectRowsPreservesEdgesAndCodes) {
  Rng rng(11);
  Matrix X(100, 2);
  for (std::size_t r = 0; r < 100; ++r) {
    X(r, 0) = rng.normal();
    X(r, 1) = rng.uniform();
  }
  const BinnedMatrix bins(X, 16);
  const std::vector<std::size_t> idx{5, 99, 0, 42, 42};
  const BinnedMatrix sub = bins.select_rows(idx);
  ASSERT_EQ(sub.rows(), 5u);
  ASSERT_EQ(sub.cols(), 2u);
  for (std::size_t f = 0; f < 2; ++f) {
    EXPECT_EQ(sub.cuts(f), bins.cuts(f));
    for (std::size_t i = 0; i < idx.size(); ++i) {
      EXPECT_EQ(sub.code(i, f), bins.code(idx[i], f));
    }
  }
}

TEST(BinnedMatrix, SelectRowsOutOfRangeThrows) {
  Matrix X{{1.0}, {2.0}};
  const BinnedMatrix bins(X);
  const std::vector<std::size_t> idx{2};
  EXPECT_THROW(bins.select_rows(idx), std::out_of_range);
}

TEST(BinnedMatrix, RejectsEmptyAndBadBinCounts) {
  Matrix empty;
  EXPECT_THROW(BinnedMatrix{empty}, std::invalid_argument);
  Matrix X{{1.0}, {2.0}};
  EXPECT_THROW(BinnedMatrix(X, 1), std::invalid_argument);
  EXPECT_THROW(BinnedMatrix(X, 256), std::invalid_argument);
  EXPECT_NO_THROW(BinnedMatrix(X, 2));
  EXPECT_NO_THROW(BinnedMatrix(X, 255));
}

}  // namespace
}  // namespace mfpa::data
