#include "sim/event_model.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/catalog.hpp"

namespace mfpa::sim {
namespace {

double total_w(const EventRates& r) {
  return std::accumulate(r.w.begin(), r.w.end(), 0.0);
}
double total_b(const EventRates& r) {
  return std::accumulate(r.b.begin(), r.b.end(), 0.0);
}

TEST(EventModel, HealthyRatesAreLow) {
  const auto base = EventModel::healthy_base(false);
  for (double r : base.w) {
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 0.01);
  }
  for (double r : base.b) {
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 0.001);
  }
}

TEST(EventModel, GrumpyOsIsNoisierOverall) {
  const auto quiet = EventModel::healthy_base(false);
  const auto grumpy = EventModel::healthy_base(true);
  EXPECT_GT(total_w(grumpy), total_w(quiet) * 2.0);
  EXPECT_GT(total_b(grumpy), total_b(quiet) * 2.0);
}

TEST(EventModel, GrumpyKeepsStorageSignaturesClean) {
  // W_52 ("predicted failure") and B_7B (boot device loss) must not inflate
  // on grumpy-but-healthy machines — that asymmetry is what lets SFWB rescue
  // SMART-only false positives.
  const auto quiet = EventModel::healthy_base(false);
  const auto grumpy = EventModel::healthy_base(true);
  EXPECT_DOUBLE_EQ(grumpy.w[windows_event_index(52)],
                   quiet.w[windows_event_index(52)]);
  EXPECT_DOUBLE_EQ(grumpy.b[bsod_code_index(0x7B)],
                   quiet.b[bsod_code_index(0x7B)]);
}

TEST(EventModel, ControllerArchetypeBoostsControllerEvents) {
  const auto& boost = EventModel::archetype_boost(FailureArchetype::kController);
  EXPECT_GT(boost.w[windows_event_index(11)], 1.0);   // W_11 controller error
  EXPECT_GT(boost.w[windows_event_index(157)], 0.3);  // surprise removal
  EXPECT_LT(boost.w[windows_event_index(7)], 0.1);    // not a bad-block story
}

TEST(EventModel, MediaArchetypeBoostsBadBlockEvents) {
  const auto& boost = EventModel::archetype_boost(FailureArchetype::kMedia);
  EXPECT_GT(boost.w[windows_event_index(7)], 0.5);    // W_7 bad block
  EXPECT_GT(boost.w[windows_event_index(154)], 0.3);  // LBA hardware error
  EXPECT_GT(boost.b[bsod_code_index(0x7A)], 0.1);     // KERNEL_DATA_INPAGE
}

TEST(EventModel, SuddenArchetypeBoostsBootDeviceLoss) {
  const auto& boost = EventModel::archetype_boost(FailureArchetype::kSudden);
  EXPECT_GT(boost.b[bsod_code_index(0x7B)], 0.2);     // INACCESSIBLE_BOOT_DEVICE
  EXPECT_GT(boost.w[windows_event_index(49)], 0.5);   // crash dump config fails
}

TEST(EventModel, WearoutArchetypeBoostsPredictedFailure) {
  const auto& boost = EventModel::archetype_boost(FailureArchetype::kWearout);
  EXPECT_GT(boost.w[windows_event_index(52)], 0.3);   // W_52 predicted failure
}

TEST(EventModel, SampleDayZeroLevelMatchesBackground) {
  Rng rng(1);
  const auto base = EventModel::healthy_base(false);
  const auto& boost = EventModel::archetype_boost(FailureArchetype::kMedia);
  long total = 0;
  std::array<std::uint16_t, kNumWindowsEvents> w{};
  std::array<std::uint16_t, kNumBsodCodes> b{};
  const int days = 20000;
  for (int i = 0; i < days; ++i) {
    EventModel::sample_day(base, boost, 0.0, rng, w, b);
    for (auto c : w) total += c;
  }
  // Expected daily W count = sum of base rates (~0.004).
  const double expected = total_w(base) * days;
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.25 + 10);
}

TEST(EventModel, FullLevelProducesBursts) {
  Rng rng(2);
  const auto base = EventModel::healthy_base(false);
  const auto& boost = EventModel::archetype_boost(FailureArchetype::kController);
  long w11 = 0;
  std::array<std::uint16_t, kNumWindowsEvents> w{};
  std::array<std::uint16_t, kNumBsodCodes> b{};
  for (int i = 0; i < 1000; ++i) {
    EventModel::sample_day(base, boost, 1.0, rng, w, b);
    w11 += w[windows_event_index(11)];
  }
  // W_11 boost is 1.6/day at full level.
  EXPECT_NEAR(static_cast<double>(w11) / 1000.0, 1.6, 0.3);
}

TEST(EventModel, LevelScalesRates) {
  Rng rng(3);
  const auto base = EventModel::healthy_base(false);
  const auto& boost = EventModel::archetype_boost(FailureArchetype::kMedia);
  long half = 0, full = 0;
  std::array<std::uint16_t, kNumWindowsEvents> w{};
  std::array<std::uint16_t, kNumBsodCodes> b{};
  for (int i = 0; i < 3000; ++i) {
    EventModel::sample_day(base, boost, 0.5, rng, w, b);
    for (auto c : w) half += c;
    EventModel::sample_day(base, boost, 1.0, rng, w, b);
    for (auto c : w) full += c;
  }
  EXPECT_GT(full, half * 1.5);
}

}  // namespace
}  // namespace mfpa::sim
