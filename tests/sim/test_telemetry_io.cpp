#include "sim/telemetry_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include <unistd.h>

#include "sim/fleet.hpp"

namespace mfpa::sim {
namespace {

TEST(TelemetryIo, HeaderShape) {
  const auto header = telemetry_csv_header();
  EXPECT_EQ(header.size(),
            7 + kNumSmartAttrs + kNumWindowsEvents + kNumBsodCodes);
  EXPECT_EQ(header[0], "sn");
  EXPECT_EQ(header[7], "S_1");
  EXPECT_EQ(header.back(), "B_C00");
}

TEST(TelemetryIo, TelemetryRoundTrip) {
  FleetSimulator fleet(tiny_scenario(3));
  const auto original = fleet.generate_telemetry();
  ASSERT_FALSE(original.empty());

  std::stringstream ss;
  write_telemetry_csv(ss, original);
  const auto restored = read_telemetry_csv(ss);
  ASSERT_EQ(restored.size(), original.size());

  // read_telemetry_csv sorts by drive id; match up by id.
  std::map<std::uint64_t, const DriveTimeSeries*> by_id;
  for (const auto& s : original) by_id[s.drive_id] = &s;
  for (const auto& r : restored) {
    const auto* o = by_id.at(r.drive_id);
    EXPECT_EQ(r.vendor, o->vendor);
    EXPECT_EQ(r.model, o->model);
    EXPECT_EQ(r.failed, o->failed);
    EXPECT_EQ(r.failure_day, o->failure_day);
    ASSERT_EQ(r.records.size(), o->records.size());
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i].day, o->records[i].day);
      EXPECT_EQ(r.records[i].firmware_index, o->records[i].firmware_index);
      EXPECT_EQ(r.records[i].w, o->records[i].w);
      EXPECT_EQ(r.records[i].b, o->records[i].b);
      for (std::size_t a = 0; a < kNumSmartAttrs; ++a) {
        EXPECT_NEAR(r.records[i].smart[a], o->records[i].smart[a],
                    std::abs(o->records[i].smart[a]) * 1e-5 + 1e-4);
      }
    }
  }
}

TEST(TelemetryIo, TicketsRoundTrip) {
  FleetSimulator fleet(tiny_scenario(4));
  const auto original = fleet.tickets();
  ASSERT_FALSE(original.empty());
  std::stringstream ss;
  write_tickets_csv(ss, original);
  const auto restored = read_tickets_csv(ss);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].drive_id, original[i].drive_id);
    EXPECT_EQ(restored[i].vendor, original[i].vendor);
    EXPECT_EQ(restored[i].imt, original[i].imt);
    EXPECT_EQ(restored[i].category, original[i].category);
  }
}

TEST(TelemetryIo, RejectsWrongHeader) {
  std::stringstream ss("a,b,c\n1,2,3\n");
  EXPECT_THROW(read_telemetry_csv(ss), std::runtime_error);
  std::stringstream ts("x,y\n1,2\n");
  EXPECT_THROW(read_tickets_csv(ts), std::runtime_error);
}

TEST(TelemetryIo, RejectsShortRow) {
  std::stringstream ss;
  write_telemetry_csv(ss, {});
  std::string text = ss.str();
  text += "1,0,0,5\n";  // row with wrong arity
  std::stringstream bad(text);
  EXPECT_THROW(read_telemetry_csv(bad), std::runtime_error);
}

TEST(TelemetryIo, RejectsUnknownTicketCategory) {
  std::stringstream ss("sn,vendor,imt,category\n1,0,5,Not A Category\n");
  EXPECT_THROW(read_tickets_csv(ss), std::runtime_error);
}

TEST(TelemetryIo, FileRoundTrip) {
  FleetSimulator fleet(tiny_scenario(5));
  const auto telemetry = fleet.generate_telemetry();
  // pid-unique so parallel test processes never race on the same file.
  const std::string path = ::testing::TempDir() + "/mfpa_telemetry_" +
                           std::to_string(::getpid()) + ".csv";
  write_telemetry_file(path, telemetry);
  const auto restored = read_telemetry_file(path);
  EXPECT_EQ(restored.size(), telemetry.size());
  std::remove(path.c_str());
  EXPECT_THROW(read_telemetry_file("/nonexistent/file.csv"),
               std::runtime_error);
}

TEST(TelemetryIo, RecordsResortedByDay) {
  // Rows arriving out of order regroup into sorted per-drive series.
  std::stringstream ss;
  DriveTimeSeries s;
  s.drive_id = 7;
  DailyRecord r1, r2;
  r1.day = 20;
  r2.day = 10;
  s.records = {r1, r2};
  write_telemetry_csv(ss, {s});
  const auto restored = read_telemetry_csv(ss);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].records[0].day, 10);
  EXPECT_EQ(restored[0].records[1].day, 20);
}

}  // namespace
}  // namespace mfpa::sim
