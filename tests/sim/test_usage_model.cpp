#include "sim/usage_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mfpa::sim {
namespace {

TEST(UsageModel, ProfileMixRoughlyMatchesPopulation) {
  Rng rng(1);
  int counts[kNumUserProfiles] = {0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(UsageModel::sample_profile(rng))];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.20, 0.02);  // always-on
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.55, 0.02);  // regular
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.25, 0.02);  // sporadic
}

TEST(UsageModel, ObservationDaysSortedUniqueInRange) {
  Rng rng(2);
  const auto days =
      UsageModel::observation_days(UserProfile::kRegular, 100, 200, rng);
  EXPECT_TRUE(std::is_sorted(days.begin(), days.end()));
  EXPECT_EQ(std::adjacent_find(days.begin(), days.end()), days.end());
  for (DayIndex d : days) {
    EXPECT_GE(d, 100);
    EXPECT_LT(d, 200);
  }
}

TEST(UsageModel, AlwaysOnObservesMostDays) {
  Rng rng(3);
  const auto days =
      UsageModel::observation_days(UserProfile::kAlwaysOn, 0, 365, rng);
  EXPECT_GT(days.size(), 300u);
}

TEST(UsageModel, SporadicObservesFarFewer) {
  Rng rng(4);
  const auto always =
      UsageModel::observation_days(UserProfile::kAlwaysOn, 0, 365, rng);
  const auto sporadic =
      UsageModel::observation_days(UserProfile::kSporadic, 0, 365, rng);
  EXPECT_LT(sporadic.size() * 2, always.size());
}

TEST(UsageModel, SporadicProducesLongGaps) {
  // The discontinuity the paper highlights: sporadic users leave gaps that
  // trip the >= 10-day preprocessing cut.
  Rng rng(5);
  int long_gaps = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto days =
        UsageModel::observation_days(UserProfile::kSporadic, 0, 365, rng);
    for (std::size_t i = 1; i < days.size(); ++i) {
      if (days[i] - days[i - 1] >= 10) ++long_gaps;
    }
  }
  EXPECT_GT(long_gaps, 10);
}

TEST(UsageModel, EmptyWindowYieldsNoDays) {
  Rng rng(6);
  EXPECT_TRUE(
      UsageModel::observation_days(UserProfile::kRegular, 50, 50, rng).empty());
}

TEST(UsageModel, EffectiveHoursOrdering) {
  EXPECT_GT(UsageModel::effective_hours_per_day(UserProfile::kAlwaysOn),
            UsageModel::effective_hours_per_day(UserProfile::kRegular));
  EXPECT_GT(UsageModel::effective_hours_per_day(UserProfile::kRegular),
            UsageModel::effective_hours_per_day(UserProfile::kSporadic));
}

TEST(UsageModel, ParamsAccessible) {
  const auto& p = UsageModel::params(UserProfile::kAlwaysOn);
  EXPECT_GT(p.p_power_on, 0.9);
  EXPECT_GT(p.mean_hours, 8.0);
}

TEST(UsageModel, ProfileNames) {
  EXPECT_STREQ(user_profile_name(UserProfile::kAlwaysOn), "always_on");
  EXPECT_STREQ(user_profile_name(UserProfile::kSporadic), "sporadic");
}

TEST(UsageModel, DeterministicGivenRngState) {
  Rng a(7), b(7);
  const auto da = UsageModel::observation_days(UserProfile::kRegular, 0, 100, a);
  const auto db = UsageModel::observation_days(UserProfile::kRegular, 0, 100, b);
  EXPECT_EQ(da, db);
}

TEST(UsageModel, WeekendCalendar) {
  EXPECT_FALSE(is_weekend(0));  // 2021-01-01 was a Friday
  EXPECT_TRUE(is_weekend(1));   // Saturday
  EXPECT_TRUE(is_weekend(2));   // Sunday
  EXPECT_FALSE(is_weekend(3));  // Monday
  EXPECT_TRUE(is_weekend(8));   // next Saturday
  EXPECT_TRUE(is_weekend(-5));  // 2020-12-27 was a Sunday
}

TEST(UsageModel, OfficeMachinesQuietOnWeekends) {
  Rng rng(8);
  std::size_t weekday_obs = 0, weekend_obs = 0;
  for (int trial = 0; trial < 40; ++trial) {
    for (DayIndex d :
         UsageModel::observation_days(UserProfile::kRegular, 0, 364, rng)) {
      (is_weekend(d) ? weekend_obs : weekday_obs)++;
    }
  }
  // 2/7 of days are weekend; with factor 0.45 the weekend share drops well
  // below the uniform 2/5 weekday ratio.
  const double weekend_rate = static_cast<double>(weekend_obs) / (2.0 / 7.0);
  const double weekday_rate = static_cast<double>(weekday_obs) / (5.0 / 7.0);
  EXPECT_LT(weekend_rate, weekday_rate * 0.7);
}

TEST(UsageModel, PersonalLaptopsBusierOnWeekends) {
  Rng rng(9);
  std::size_t weekday_obs = 0, weekend_obs = 0;
  for (int trial = 0; trial < 40; ++trial) {
    for (DayIndex d :
         UsageModel::observation_days(UserProfile::kSporadic, 0, 364, rng)) {
      (is_weekend(d) ? weekend_obs : weekday_obs)++;
    }
  }
  const double weekend_rate = static_cast<double>(weekend_obs) / (2.0 / 7.0);
  const double weekday_rate = static_cast<double>(weekday_obs) / (5.0 / 7.0);
  EXPECT_GT(weekend_rate, weekday_rate * 1.1);
}

}  // namespace
}  // namespace mfpa::sim
