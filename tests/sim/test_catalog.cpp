#include "sim/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mfpa::sim {
namespace {

TEST(Catalog, SmartAttrsMatchTableII) {
  EXPECT_EQ(smart_attr_names().size(), kNumSmartAttrs);
  EXPECT_EQ(smart_attr_names()[0], "S_1");
  EXPECT_EQ(smart_attr_names()[15], "S_16");
  EXPECT_EQ(smart_attr_descriptions()[11], "Power On Hours");
  EXPECT_EQ(smart_attr_descriptions()[15], "Capacity");
  EXPECT_EQ(static_cast<std::size_t>(SmartAttr::kPowerOnHours), 11u);
}

TEST(Catalog, WindowsEventsMatchTableIII) {
  const auto& events = windows_event_types();
  EXPECT_EQ(events.size(), kNumWindowsEvents);
  std::set<int> ids;
  for (const auto& e : events) ids.insert(e.id);
  // Table III ids.
  for (int id : {7, 11, 15, 49, 51, 52, 154, 157, 161}) {
    EXPECT_TRUE(ids.contains(id)) << "missing W_" << id;
  }
}

TEST(Catalog, WindowsEventIndexLookup) {
  EXPECT_EQ(windows_event_index(7), 0u);
  EXPECT_EQ(windows_event_index(161), 8u);
  EXPECT_THROW(windows_event_index(9999), std::out_of_range);
}

TEST(Catalog, BsodCodesMatchTableIVPlusReconstruction) {
  const auto& codes = bsod_code_types();
  EXPECT_EQ(codes.size(), kNumBsodCodes);
  EXPECT_EQ(kNumBsodCodes, 23u);  // Table V counts 23 B attributes
  std::set<int> ids;
  for (const auto& c : codes) ids.insert(c.code);
  for (int code : {0x23, 0x24, 0x48, 0x50, 0x6B, 0x77, 0x7A, 0x80, 0x9B, 0xC7,
                   0xDA, 0xE4, 0xFC, 0x10C, 0x12C, 0x135, 0x13B, 0x157, 0x17E,
                   0x189, 0x1DB, 0xC00}) {
    EXPECT_TRUE(ids.contains(code)) << "missing stop code " << code;
  }
  EXPECT_TRUE(ids.contains(0x7B));  // reconstructed INACCESSIBLE_BOOT_DEVICE
}

TEST(Catalog, BsodCodeIndexLookup) {
  EXPECT_EQ(bsod_code_types()[bsod_code_index(0x7A)].name, "B_7A");
  EXPECT_THROW(bsod_code_index(0xDEAD), std::out_of_range);
}

TEST(Catalog, TicketCategoriesSumToOne) {
  double total = 0.0;
  for (const auto& c : ticket_categories()) total += c.fraction;
  EXPECT_NEAR(total, 1.0, 0.001);
}

TEST(Catalog, TicketLevelsMatchTableI) {
  double drive = 0.0, system = 0.0;
  for (const auto& c : ticket_categories()) {
    (c.level == FailureLevel::kDriveLevel ? drive : system) += c.fraction;
  }
  EXPECT_NEAR(drive, 0.3162, 0.001);   // Table I drive-level total
  EXPECT_NEAR(system, 0.6838, 0.001);  // Table I system-level total
}

TEST(Catalog, BootShutdownGroupTotalMatchesPaper) {
  double boot = 0.0;
  for (const auto& c : ticket_categories()) {
    if (c.group == "Boot/Shutdown failure") boot += c.fraction;
  }
  EXPECT_NEAR(boot, 0.4821, 0.001);  // "48.21% ... during startup or shutdown"
}

TEST(Catalog, TicketCategoryInfoRoundTrip) {
  const auto& info = ticket_category_info(TicketCategory::kStorageDriveFailure);
  EXPECT_EQ(info.category, TicketCategory::kStorageDriveFailure);
  EXPECT_NEAR(info.fraction, 0.3113, 1e-9);
}

TEST(Catalog, FourVendorsTwelveModels) {
  const auto& vendors = vendor_catalog();
  EXPECT_EQ(vendors.size(), kNumVendors);
  std::size_t models = 0;
  for (const auto& v : vendors) models += v.models.size();
  EXPECT_EQ(models, 12u);  // Table VI: 12 drive models
}

TEST(Catalog, FleetSizesMatchTableVI) {
  const auto& vendors = vendor_catalog();
  EXPECT_EQ(vendors[0].fleet_size, 270325u);
  EXPECT_EQ(vendors[1].fleet_size, 1001278u);
  EXPECT_EQ(vendors[2].fleet_size, 908037u);
  EXPECT_EQ(vendors[3].fleet_size, 152405u);
}

TEST(Catalog, ReplacementRatesMatchTableVI) {
  const auto& vendors = vendor_catalog();
  EXPECT_NEAR(vendors[0].replacement_rate, 0.0068, 1e-9);
  EXPECT_NEAR(vendors[1].replacement_rate, 0.0007, 1e-9);
  EXPECT_NEAR(vendors[2].replacement_rate, 0.0005, 1e-9);
  EXPECT_NEAR(vendors[3].replacement_rate, 0.0011, 1e-9);
}

TEST(Catalog, FirmwareCountsMatchFig3) {
  const auto& vendors = vendor_catalog();
  EXPECT_EQ(vendors[0].firmware.size(), 5u);  // Vendor I: 5 versions
  EXPECT_EQ(vendors[1].firmware.size(), 3u);
  EXPECT_EQ(vendors[2].firmware.size(), 2u);
  EXPECT_EQ(vendors[3].firmware.size(), 2u);
}

TEST(Catalog, EarlierFirmwareFailsMore) {
  // Observation #2: "the earlier the firmware version, the higher the
  // failure rate" — multipliers must be strictly decreasing.
  for (const auto& vendor : vendor_catalog()) {
    for (std::size_t i = 1; i < vendor.firmware.size(); ++i) {
      EXPECT_GT(vendor.firmware[i - 1].failure_multiplier,
                vendor.firmware[i].failure_multiplier)
          << vendor.name << " fw " << i;
    }
  }
}

TEST(Catalog, SharesSumToOne) {
  for (const auto& vendor : vendor_catalog()) {
    double fw = 0.0, models = 0.0;
    for (const auto& f : vendor.firmware) fw += f.market_share;
    for (const auto& m : vendor.models) models += m.fleet_fraction;
    EXPECT_NEAR(fw, 1.0, 1e-9) << vendor.name;
    EXPECT_NEAR(models, 1.0, 1e-9) << vendor.name;
  }
}

TEST(Catalog, ArchetypeMixSumsToOne) {
  for (const auto& vendor : vendor_catalog()) {
    const auto& a = vendor.archetypes;
    EXPECT_NEAR(a.wearout + a.media + a.controller + a.sudden, 1.0, 1e-9);
  }
}

TEST(Catalog, ModelCapacitiesInRange) {
  // Dataset: "12 models of different capacities (from 128GB to 1TB)".
  for (const auto& vendor : vendor_catalog()) {
    for (const auto& m : vendor.models) {
      EXPECT_GE(m.capacity_gb, 128);
      EXPECT_LE(m.capacity_gb, 1024);
      EXPECT_GE(m.flash_layers, 32);   // "from 32-layer to 96-layer"
      EXPECT_LE(m.flash_layers, 96);
    }
  }
}

}  // namespace
}  // namespace mfpa::sim
