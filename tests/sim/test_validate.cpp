#include "sim/validate.hpp"

#include <gtest/gtest.h>

#include "sim/fleet.hpp"

namespace mfpa::sim {
namespace {

DriveTimeSeries clean_series(std::uint64_t id, std::initializer_list<DayIndex> days) {
  DriveTimeSeries s;
  s.drive_id = id;
  float poh = 100.0f;
  for (DayIndex d : days) {
    DailyRecord r;
    r.day = d;
    r.smart[static_cast<std::size_t>(SmartAttr::kPowerOnHours)] = poh;
    r.smart[static_cast<std::size_t>(SmartAttr::kAvailableSpare)] = 100.0f;
    r.smart[static_cast<std::size_t>(SmartAttr::kCompositeTemperature)] = 36.0f;
    poh += 8.0f;
    s.records.push_back(r);
  }
  return s;
}

TEST(Validate, CleanBatchHasNoIssues) {
  const std::vector<DriveTimeSeries> batch{clean_series(1, {1, 2, 3}),
                                           clean_series(2, {5, 6, 8})};
  const auto report = validate_telemetry(batch);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.drives, 2u);
  EXPECT_EQ(report.records, 6u);
  EXPECT_EQ(report.gaps_short, 1u);  // the 6 -> 8 gap
}

TEST(Validate, GapProfileBuckets) {
  const std::vector<DriveTimeSeries> batch{
      clean_series(1, {0, 1, 4, 10, 30})};  // gaps 1, 3, 6, 20
  const auto report = validate_telemetry(batch);
  EXPECT_EQ(report.gaps_short, 1u);
  EXPECT_EQ(report.gaps_medium, 1u);
  EXPECT_EQ(report.gaps_long, 1u);
}

TEST(Validate, DetectsCounterRegression) {
  auto series = clean_series(1, {1, 2});
  series.records[1].smart[static_cast<std::size_t>(SmartAttr::kPowerOnHours)] =
      10.0f;  // went backwards from 108
  const auto report = validate_telemetry({series});
  ASSERT_EQ(report.issues_total, 1u);
  EXPECT_EQ(report.issues[0].kind, ValidationIssue::Kind::kCounterRegression);
  EXPECT_EQ(report.issues[0].drive_id, 1u);
}

TEST(Validate, DetectsNonMonotonicDays) {
  auto series = clean_series(1, {5, 5});
  const auto report = validate_telemetry({series});
  EXPECT_GE(report.issues_total, 1u);
  EXPECT_EQ(report.issues[0].kind, ValidationIssue::Kind::kNonMonotonicDays);
}

TEST(Validate, DetectsOutOfRangeValues) {
  auto series = clean_series(1, {1});
  series.records[0].smart[static_cast<std::size_t>(SmartAttr::kAvailableSpare)] =
      130.0f;
  series.records[0]
      .smart[static_cast<std::size_t>(SmartAttr::kCompositeTemperature)] = 200.0f;
  const auto report = validate_telemetry({series});
  EXPECT_EQ(report.issues_total, 2u);
}

TEST(Validate, DetectsFirmwareDowngrade) {
  auto series = clean_series(1, {1, 2});
  series.records[0].firmware_index = 3;
  series.records[1].firmware_index = 1;
  const auto report = validate_telemetry({series});
  ASSERT_GE(report.issues_total, 1u);
  EXPECT_EQ(report.issues[0].kind, ValidationIssue::Kind::kFirmwareDowngrade);
}

TEST(Validate, DetectsEmptyAndDuplicateSeries) {
  DriveTimeSeries empty;
  empty.drive_id = 9;
  const auto report =
      validate_telemetry({empty, clean_series(9, {1, 2})});
  EXPECT_EQ(report.issues_total, 2u);  // empty + duplicate id
}

TEST(Validate, IssueSampleCapped) {
  std::vector<DriveTimeSeries> batch;
  for (std::uint64_t i = 0; i < 30; ++i) {
    DriveTimeSeries empty;
    empty.drive_id = i;
    batch.push_back(empty);
  }
  const auto report = validate_telemetry(batch, 5);
  EXPECT_EQ(report.issues_total, 30u);
  EXPECT_EQ(report.issues.size(), 5u);
}

TEST(Validate, SimulatorOutputIsClean) {
  // The simulator must produce physically coherent telemetry.
  FleetSimulator fleet(tiny_scenario(81));
  const auto report = validate_telemetry(fleet.generate_telemetry());
  EXPECT_TRUE(report.clean()) << report.issues_total << " issues, first: "
                              << (report.issues.empty()
                                      ? "-"
                                      : report.issues[0].detail);
  EXPECT_GT(report.gaps_short + report.gaps_medium + report.gaps_long, 0u);
}

TEST(Validate, IssueNamesCovered) {
  EXPECT_STREQ(validation_issue_name(ValidationIssue::Kind::kEmptySeries),
               "empty series");
  EXPECT_STREQ(validation_issue_name(ValidationIssue::Kind::kCounterRegression),
               "counter regression");
}

}  // namespace
}  // namespace mfpa::sim
