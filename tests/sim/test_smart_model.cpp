#include "sim/smart_model.hpp"

#include <gtest/gtest.h>

namespace mfpa::sim {
namespace {

DriveOutcome failing_outcome(FailureArchetype a, DayIndex fail_day, int onset) {
  DriveOutcome out;
  out.fails = true;
  out.failure_day = fail_day;
  out.archetype = a;
  out.onset_days = onset;
  out.deploy_day = 0;
  return out;
}

TEST(DegradationLevel, ZeroForHealthy) {
  DriveOutcome healthy;
  EXPECT_DOUBLE_EQ(degradation_level(healthy, 100), 0.0);
}

TEST(DegradationLevel, ZeroBeforeOnset) {
  const auto out = failing_outcome(FailureArchetype::kMedia, 100, 20);
  EXPECT_DOUBLE_EQ(degradation_level(out, 79), 0.0);
  EXPECT_DOUBLE_EQ(degradation_level(out, 80), 0.0);
}

TEST(DegradationLevel, OneAtFailure) {
  const auto out = failing_outcome(FailureArchetype::kMedia, 100, 20);
  EXPECT_DOUBLE_EQ(degradation_level(out, 100), 1.0);
  EXPECT_DOUBLE_EQ(degradation_level(out, 150), 1.0);
}

TEST(DegradationLevel, MonotoneOverRamp) {
  const auto out = failing_outcome(FailureArchetype::kWearout, 100, 30);
  double prev = 0.0;
  for (DayIndex d = 70; d <= 100; ++d) {
    const double level = degradation_level(out, d);
    EXPECT_GE(level, prev);
    EXPECT_LE(level, 1.0);
    prev = level;
  }
}

TEST(SmartModel, InitStateScalesWithAge) {
  Rng rng(1);
  const DriveHardware hw{512, 64};
  const auto young = SmartModel::init_state(hw, UserProfile::kRegular, 30, rng);
  const auto old = SmartModel::init_state(hw, UserProfile::kRegular, 600, rng);
  EXPECT_GT(old.poh_hours, young.poh_hours * 5);
  EXPECT_GT(old.gb_written, young.gb_written * 5);
}

TEST(SmartModel, CountersMonotoneUnderAdvance) {
  Rng rng(2);
  const DriveHardware hw{256, 64};
  DriveOutcome healthy;
  auto state = SmartModel::init_state(hw, UserProfile::kRegular, 100, rng);
  for (DayIndex d = 0; d < 60; ++d) {
    const SmartState before = state;
    SmartModel::advance(state, hw, UserProfile::kRegular, healthy, d, 1, rng);
    EXPECT_GE(state.poh_hours, before.poh_hours);
    EXPECT_GE(state.gb_written, before.gb_written);
    EXPECT_GE(state.media_errors, before.media_errors);
    EXPECT_GE(state.error_log_entries, before.error_log_entries);
    EXPECT_LE(state.spare_pct, before.spare_pct + 1e-9);
  }
}

TEST(SmartModel, SpareNeverNegative) {
  Rng rng(3);
  const DriveHardware hw{128, 32};
  const auto out = failing_outcome(FailureArchetype::kMedia, 60, 40);
  auto state = SmartModel::init_state(hw, UserProfile::kAlwaysOn, 400, rng);
  for (DayIndex d = 0; d <= 60; ++d) {
    SmartModel::advance(state, hw, UserProfile::kAlwaysOn, out, d, 1, rng);
    EXPECT_GE(state.spare_pct, 0.0);
  }
}

TEST(SmartModel, MediaArchetypeAccumulatesErrors) {
  Rng rng(4);
  const DriveHardware hw{256, 64};
  const auto out = failing_outcome(FailureArchetype::kMedia, 50, 30);
  auto degrading = SmartModel::init_state(hw, UserProfile::kAlwaysOn, 200, rng);
  degrading.grumpy = false;
  degrading.media_errors = 0;
  auto healthy_state = degrading;
  DriveOutcome healthy;
  for (DayIndex d = 20; d <= 50; ++d) {
    SmartModel::advance(degrading, hw, UserProfile::kAlwaysOn, out, d, 1, rng);
    SmartModel::advance(healthy_state, hw, UserProfile::kAlwaysOn, healthy, d, 1,
                        rng);
  }
  EXPECT_GT(degrading.media_errors, healthy_state.media_errors + 30.0);
}

TEST(SmartModel, ObserveVectorShapeAndRanges) {
  Rng rng(5);
  const DriveHardware hw{512, 96};
  DriveOutcome healthy;
  auto state = SmartModel::init_state(hw, UserProfile::kRegular, 100, rng);
  const auto obs = SmartModel::observe(state, hw, healthy, 100, false, rng);
  ASSERT_EQ(obs.size(), kNumSmartAttrs);
  auto get = [&obs](SmartAttr a) {
    return obs[static_cast<std::size_t>(a)];
  };
  EXPECT_GE(get(SmartAttr::kAvailableSpare), 0.0f);
  EXPECT_LE(get(SmartAttr::kAvailableSpare), 100.0f);
  EXPECT_FLOAT_EQ(get(SmartAttr::kAvailableSpareThreshold), 10.0f);
  EXPECT_FLOAT_EQ(get(SmartAttr::kCapacity), 512.0f);
  EXPECT_GT(get(SmartAttr::kCompositeTemperature), 15.0f);
  EXPECT_LT(get(SmartAttr::kCompositeTemperature), 90.0f);
  EXPECT_GE(get(SmartAttr::kPercentageUsed), 0.0f);
}

TEST(SmartModel, CriticalWarningWhenSpareExhausted) {
  Rng rng(6);
  const DriveHardware hw{128, 32};
  DriveOutcome healthy;
  auto state = SmartModel::init_state(hw, UserProfile::kRegular, 10, rng);
  state.spare_pct = 5.0;  // below the 10% threshold
  const auto obs = SmartModel::observe(state, hw, healthy, 10, false, rng);
  EXPECT_FLOAT_EQ(obs[static_cast<std::size_t>(SmartAttr::kCriticalWarning)],
                  1.0f);
}

TEST(SmartModel, SeasonalDriftShiftsTemperature) {
  Rng rng(7);
  const DriveHardware hw{256, 64};
  DriveOutcome healthy;
  auto state = SmartModel::init_state(hw, UserProfile::kRegular, 100, rng);
  state.temp_offset = 0.0;
  // Average many observations at the seasonal peak vs trough.
  double summer = 0.0, winter = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    // The model's sine peaks where (day+220)/365 = 0.25 mod 1 (day 236) and
    // bottoms out half a year later (day 419).
    summer += SmartModel::observe(state, hw, healthy, 236, true, rng)
        [static_cast<std::size_t>(SmartAttr::kCompositeTemperature)];
    winter += SmartModel::observe(state, hw, healthy, 419, true, rng)
        [static_cast<std::size_t>(SmartAttr::kCompositeTemperature)];
  }
  EXPECT_GT(summer / n - winter / n, 5.0);
}

TEST(SmartModel, ScareBurstAddsErrorsWithoutFailure) {
  Rng rng(8);
  const DriveHardware hw{256, 64};
  DriveOutcome healthy;
  auto state = SmartModel::init_state(hw, UserProfile::kRegular, 100, rng);
  state.grumpy = false;
  state.media_errors = 0;
  state.scare_day = 120;
  state.scare_len = 5;
  for (DayIndex d = 110; d < 140; ++d) {
    SmartModel::advance(state, hw, UserProfile::kRegular, healthy, d, 1, rng);
  }
  EXPECT_GT(state.media_errors, 8.0);  // burst of ~5/day over 5 days
}

TEST(SmartModel, EnduranceHeuristicScalesWithCapacity) {
  const DriveHardware big{1024, 96};
  const DriveHardware small{128, 32};
  EXPECT_GT(big.endurance_tbw(), small.endurance_tbw() * 7);
}

}  // namespace
}  // namespace mfpa::sim
