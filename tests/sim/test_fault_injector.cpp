#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/string_util.hpp"
#include "sim/fleet.hpp"
#include "sim/telemetry_io.hpp"

namespace mfpa::sim {
namespace {

std::vector<DriveTimeSeries> tiny_batch(std::uint64_t seed = 3) {
  FleetSimulator fleet(tiny_scenario(seed));
  return fleet.generate_telemetry();
}

std::string tiny_csv(std::uint64_t seed = 3) {
  std::stringstream ss;
  write_telemetry_csv(ss, tiny_batch(seed));
  return ss.str();
}

bool batches_equal(const std::vector<DriveTimeSeries>& a,
                   const std::vector<DriveTimeSeries>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].drive_id != b[i].drive_id) return false;
    if (a[i].records.size() != b[i].records.size()) return false;
    for (std::size_t j = 0; j < a[i].records.size(); ++j) {
      const auto& ra = a[i].records[j];
      const auto& rb = b[i].records[j];
      if (ra.day != rb.day || ra.w != rb.w || ra.b != rb.b) return false;
      for (std::size_t k = 0; k < kNumSmartAttrs; ++k) {
        const bool both_nan =
            std::isnan(ra.smart[k]) && std::isnan(rb.smart[k]);
        if (!both_nan && ra.smart[k] != rb.smart[k]) return false;
      }
    }
  }
  return true;
}

TEST(FaultInjector, SameSeedProducesByteIdenticalCorruption) {
  const auto clean = tiny_batch();
  FaultPlan plan;
  plan.seed = 99;
  plan.faults = {{FaultMode::kDuplicateDay, 0.1},
                 {FaultMode::kCounterReset, 0.1},
                 {FaultMode::kNanField, 0.1}};
  FaultInjector a(plan);
  FaultInjector b(plan);
  EXPECT_TRUE(batches_equal(a.corrupt(clean), b.corrupt(clean)));
  // Repeat calls on the SAME injector are also identical: each call
  // re-derives its stream from the plan seed.
  EXPECT_TRUE(batches_equal(a.corrupt(clean), b.corrupt(clean)));

  const std::string csv = tiny_csv();
  FaultPlan text_plan;
  text_plan.seed = 99;
  text_plan.faults = {{FaultMode::kTruncatedRow, 0.1},
                      {FaultMode::kMalformedFirmware, 0.1}};
  FaultInjector c(text_plan);
  FaultInjector d(text_plan);
  EXPECT_EQ(c.corrupt_csv(csv), d.corrupt_csv(csv));  // byte identical
  EXPECT_EQ(c.corrupt_csv(csv), d.corrupt_csv(csv));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const std::string csv = tiny_csv();
  FaultInjector a({{{FaultMode::kTruncatedRow, 0.2}}, 1});
  FaultInjector b({{{FaultMode::kTruncatedRow, 0.2}}, 2});
  EXPECT_NE(a.corrupt_csv(csv), b.corrupt_csv(csv));
}

TEST(FaultInjector, ZeroRateIsIdentity) {
  const auto clean = tiny_batch();
  const std::string csv = tiny_csv();
  FaultPlan plan;
  plan.seed = 5;
  for (std::size_t m = 0; m < kNumFaultModes; ++m) {
    plan.faults.push_back({static_cast<FaultMode>(m), 0.0});
  }
  FaultInjector injector(plan);
  EXPECT_TRUE(batches_equal(injector.corrupt(clean), clean));
  EXPECT_EQ(injector.corrupt_csv(csv), csv);
  EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(FaultInjector, DuplicateDayInsertsRepeatedDays) {
  FaultInjector injector({{{FaultMode::kDuplicateDay, 0.1}}, 7});
  const auto corrupted = injector.corrupt(tiny_batch());
  ASSERT_GT(injector.stats().of(FaultMode::kDuplicateDay), 0u);
  std::size_t duplicates = 0;
  for (const auto& s : corrupted) {
    for (std::size_t i = 1; i < s.records.size(); ++i) {
      if (s.records[i].day == s.records[i - 1].day) ++duplicates;
    }
  }
  EXPECT_EQ(duplicates, injector.stats().of(FaultMode::kDuplicateDay));
}

TEST(FaultInjector, OutOfOrderAndRollbackBreakDayOrder) {
  for (FaultMode mode :
       {FaultMode::kOutOfOrderUpload, FaultMode::kClockRollback}) {
    FaultInjector injector({{{mode, 0.1}}, 7});
    const auto corrupted = injector.corrupt(tiny_batch());
    ASSERT_GT(injector.stats().of(mode), 0u) << fault_mode_name(mode);
    std::size_t inversions = 0;
    for (const auto& s : corrupted) {
      for (std::size_t i = 1; i < s.records.size(); ++i) {
        if (s.records[i].day < s.records[i - 1].day) ++inversions;
      }
    }
    EXPECT_GT(inversions, 0u) << fault_mode_name(mode);
  }
}

TEST(FaultInjector, CounterResetMakesMonotoneCounterDecrease) {
  FaultInjector injector({{{FaultMode::kCounterReset, 0.05}}, 11});
  const auto clean = tiny_batch();
  const auto corrupted = injector.corrupt(clean);
  ASSERT_GT(injector.stats().of(FaultMode::kCounterReset), 0u);
  std::size_t decreases = 0;
  const auto poh = static_cast<std::size_t>(SmartAttr::kPowerOnHours);
  for (const auto& s : corrupted) {
    for (std::size_t i = 1; i < s.records.size(); ++i) {
      if (s.records[i].smart[poh] < s.records[i - 1].smart[poh]) ++decreases;
    }
  }
  EXPECT_GT(decreases, 0u);
}

TEST(FaultInjector, BadValueModesProduceDetectableFields) {
  const auto clean = tiny_batch();
  {
    FaultInjector injector({{{FaultMode::kNanField, 0.05}}, 13});
    const auto corrupted = injector.corrupt(clean);
    std::size_t nans = 0;
    for (const auto& s : corrupted)
      for (const auto& r : s.records)
        for (std::size_t k = 0; k < kNumSmartAttrs; ++k)
          if (std::isnan(r.smart[k])) ++nans;
    EXPECT_EQ(nans, injector.stats().of(FaultMode::kNanField));
    EXPECT_GT(nans, 0u);
  }
  {
    FaultInjector injector({{{FaultMode::kNegativeField, 0.05}}, 13});
    const auto corrupted = injector.corrupt(clean);
    std::size_t negatives = 0;
    for (const auto& s : corrupted)
      for (const auto& r : s.records)
        for (std::size_t k = 0; k < kNumSmartAttrs; ++k)
          if (r.smart[k] < 0.0f) ++negatives;
    EXPECT_GT(negatives, 0u);
  }
  {
    FaultInjector injector({{{FaultMode::kSaturatedField, 0.05}}, 13});
    const auto corrupted = injector.corrupt(clean);
    ASSERT_GT(injector.stats().of(FaultMode::kSaturatedField), 0u);
    EXPECT_FALSE(batches_equal(corrupted, clean));
  }
}

TEST(FaultInjector, DuplicateDriveIdGrowsBatchWithRepeatedIds) {
  FaultInjector injector({{{FaultMode::kDuplicateDriveId, 0.1}}, 17});
  const auto clean = tiny_batch();
  const auto corrupted = injector.corrupt(clean);
  const std::size_t injected =
      injector.stats().of(FaultMode::kDuplicateDriveId);
  ASSERT_GT(injected, 0u);
  EXPECT_EQ(corrupted.size(), clean.size() + injected);
  std::set<std::uint64_t> seen;
  std::size_t repeats = 0;
  for (const auto& s : corrupted) {
    if (!seen.insert(s.drive_id).second) ++repeats;
  }
  EXPECT_EQ(repeats, injected);
}

TEST(FaultInjector, TextualModesMangleRowsButNeverTheHeader) {
  const std::string csv = tiny_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  const std::size_t arity = telemetry_csv_header().size();
  for (FaultMode mode : {FaultMode::kDroppedColumn, FaultMode::kTruncatedRow,
                         FaultMode::kMalformedFirmware}) {
    ASSERT_TRUE(fault_mode_is_textual(mode));
    FaultInjector injector({{{mode, 0.05}}, 19});
    const std::string corrupted = injector.corrupt_csv(csv);
    ASSERT_GT(injector.stats().of(mode), 0u) << fault_mode_name(mode);
    EXPECT_EQ(corrupted.substr(0, corrupted.find('\n')), header);
    std::stringstream ss(corrupted);
    std::string line;
    std::getline(ss, line);  // header
    std::size_t bad_arity = 0, bad_firmware = 0;
    while (std::getline(ss, line)) {
      const auto fields = split(line, ',');
      if (fields.size() != arity) ++bad_arity;
      if (fields.size() > 6 && fields[6] == "fw_corrupt!") ++bad_firmware;
    }
    if (mode == FaultMode::kMalformedFirmware) {
      EXPECT_EQ(bad_firmware, injector.stats().of(mode));
    } else {
      EXPECT_GT(bad_arity, 0u) << fault_mode_name(mode);
    }
  }
}

TEST(FaultInjector, TicketImtDisplacedOutsideWindow) {
  FleetSimulator fleet(tiny_scenario(3));
  auto tickets = fleet.tickets();
  ASSERT_FALSE(tickets.empty());
  const DayIndex lo = 0, hi = 365;
  FaultInjector injector({{{FaultMode::kTicketImtOutOfWindow, 1.0}}, 23});
  const auto corrupted = injector.corrupt_tickets(tickets, lo, hi);
  ASSERT_EQ(corrupted.size(), tickets.size());
  EXPECT_EQ(injector.stats().of(FaultMode::kTicketImtOutOfWindow),
            tickets.size());
  for (const auto& t : corrupted) {
    EXPECT_TRUE(t.imt < lo || t.imt > hi) << "imt=" << t.imt;
  }
}

TEST(FaultInjector, ComposedPlanAppliesEveryRequestedMode) {
  FaultPlan plan;
  plan.seed = 29;
  plan.faults = {{FaultMode::kDuplicateDay, 0.1},
                 {FaultMode::kClockRollback, 0.1},
                 {FaultMode::kNanField, 0.1}};
  FaultInjector injector(plan);
  (void)injector.corrupt(tiny_batch());
  for (const auto& spec : plan.faults) {
    EXPECT_GT(injector.stats().of(spec.mode), 0u)
        << fault_mode_name(spec.mode);
  }
  EXPECT_EQ(injector.stats().total(),
            injector.stats().of(FaultMode::kDuplicateDay) +
                injector.stats().of(FaultMode::kClockRollback) +
                injector.stats().of(FaultMode::kNanField));
}

}  // namespace
}  // namespace mfpa::sim
