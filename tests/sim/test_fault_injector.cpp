#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/string_util.hpp"
#include "sim/fleet.hpp"
#include "sim/telemetry_io.hpp"

namespace mfpa::sim {
namespace {

std::vector<DriveTimeSeries> tiny_batch(std::uint64_t seed = 3) {
  FleetSimulator fleet(tiny_scenario(seed));
  return fleet.generate_telemetry();
}

std::string tiny_csv(std::uint64_t seed = 3) {
  std::stringstream ss;
  write_telemetry_csv(ss, tiny_batch(seed));
  return ss.str();
}

bool batches_equal(const std::vector<DriveTimeSeries>& a,
                   const std::vector<DriveTimeSeries>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].drive_id != b[i].drive_id) return false;
    if (a[i].records.size() != b[i].records.size()) return false;
    for (std::size_t j = 0; j < a[i].records.size(); ++j) {
      const auto& ra = a[i].records[j];
      const auto& rb = b[i].records[j];
      if (ra.day != rb.day || ra.w != rb.w || ra.b != rb.b) return false;
      for (std::size_t k = 0; k < kNumSmartAttrs; ++k) {
        const bool both_nan =
            std::isnan(ra.smart[k]) && std::isnan(rb.smart[k]);
        if (!both_nan && ra.smart[k] != rb.smart[k]) return false;
      }
    }
  }
  return true;
}

TEST(FaultInjector, SameSeedProducesByteIdenticalCorruption) {
  const auto clean = tiny_batch();
  FaultPlan plan;
  plan.seed = 99;
  plan.faults = {{FaultMode::kDuplicateDay, 0.1},
                 {FaultMode::kCounterReset, 0.1},
                 {FaultMode::kNanField, 0.1}};
  FaultInjector a(plan);
  FaultInjector b(plan);
  EXPECT_TRUE(batches_equal(a.corrupt(clean), b.corrupt(clean)));
  // Repeat calls on the SAME injector are also identical: each call
  // re-derives its stream from the plan seed.
  EXPECT_TRUE(batches_equal(a.corrupt(clean), b.corrupt(clean)));

  const std::string csv = tiny_csv();
  FaultPlan text_plan;
  text_plan.seed = 99;
  text_plan.faults = {{FaultMode::kTruncatedRow, 0.1},
                      {FaultMode::kMalformedFirmware, 0.1}};
  FaultInjector c(text_plan);
  FaultInjector d(text_plan);
  EXPECT_EQ(c.corrupt_csv(csv), d.corrupt_csv(csv));  // byte identical
  EXPECT_EQ(c.corrupt_csv(csv), d.corrupt_csv(csv));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const std::string csv = tiny_csv();
  FaultInjector a({{{FaultMode::kTruncatedRow, 0.2}}, 1});
  FaultInjector b({{{FaultMode::kTruncatedRow, 0.2}}, 2});
  EXPECT_NE(a.corrupt_csv(csv), b.corrupt_csv(csv));
}

TEST(FaultInjector, ZeroRateIsIdentity) {
  const auto clean = tiny_batch();
  const std::string csv = tiny_csv();
  FaultPlan plan;
  plan.seed = 5;
  for (std::size_t m = 0; m < kNumFaultModes; ++m) {
    plan.faults.push_back({static_cast<FaultMode>(m), 0.0});
  }
  FaultInjector injector(plan);
  EXPECT_TRUE(batches_equal(injector.corrupt(clean), clean));
  EXPECT_EQ(injector.corrupt_csv(csv), csv);
  EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(FaultInjector, DuplicateDayInsertsRepeatedDays) {
  FaultInjector injector({{{FaultMode::kDuplicateDay, 0.1}}, 7});
  const auto corrupted = injector.corrupt(tiny_batch());
  ASSERT_GT(injector.stats().of(FaultMode::kDuplicateDay), 0u);
  std::size_t duplicates = 0;
  for (const auto& s : corrupted) {
    for (std::size_t i = 1; i < s.records.size(); ++i) {
      if (s.records[i].day == s.records[i - 1].day) ++duplicates;
    }
  }
  EXPECT_EQ(duplicates, injector.stats().of(FaultMode::kDuplicateDay));
}

TEST(FaultInjector, OutOfOrderAndRollbackBreakDayOrder) {
  for (FaultMode mode :
       {FaultMode::kOutOfOrderUpload, FaultMode::kClockRollback}) {
    FaultInjector injector({{{mode, 0.1}}, 7});
    const auto corrupted = injector.corrupt(tiny_batch());
    ASSERT_GT(injector.stats().of(mode), 0u) << fault_mode_name(mode);
    std::size_t inversions = 0;
    for (const auto& s : corrupted) {
      for (std::size_t i = 1; i < s.records.size(); ++i) {
        if (s.records[i].day < s.records[i - 1].day) ++inversions;
      }
    }
    EXPECT_GT(inversions, 0u) << fault_mode_name(mode);
  }
}

TEST(FaultInjector, CounterResetMakesMonotoneCounterDecrease) {
  FaultInjector injector({{{FaultMode::kCounterReset, 0.05}}, 11});
  const auto clean = tiny_batch();
  const auto corrupted = injector.corrupt(clean);
  ASSERT_GT(injector.stats().of(FaultMode::kCounterReset), 0u);
  std::size_t decreases = 0;
  const auto poh = static_cast<std::size_t>(SmartAttr::kPowerOnHours);
  for (const auto& s : corrupted) {
    for (std::size_t i = 1; i < s.records.size(); ++i) {
      if (s.records[i].smart[poh] < s.records[i - 1].smart[poh]) ++decreases;
    }
  }
  EXPECT_GT(decreases, 0u);
}

TEST(FaultInjector, BadValueModesProduceDetectableFields) {
  const auto clean = tiny_batch();
  {
    FaultInjector injector({{{FaultMode::kNanField, 0.05}}, 13});
    const auto corrupted = injector.corrupt(clean);
    std::size_t nans = 0;
    for (const auto& s : corrupted)
      for (const auto& r : s.records)
        for (std::size_t k = 0; k < kNumSmartAttrs; ++k)
          if (std::isnan(r.smart[k])) ++nans;
    EXPECT_EQ(nans, injector.stats().of(FaultMode::kNanField));
    EXPECT_GT(nans, 0u);
  }
  {
    FaultInjector injector({{{FaultMode::kNegativeField, 0.05}}, 13});
    const auto corrupted = injector.corrupt(clean);
    std::size_t negatives = 0;
    for (const auto& s : corrupted)
      for (const auto& r : s.records)
        for (std::size_t k = 0; k < kNumSmartAttrs; ++k)
          if (r.smart[k] < 0.0f) ++negatives;
    EXPECT_GT(negatives, 0u);
  }
  {
    FaultInjector injector({{{FaultMode::kSaturatedField, 0.05}}, 13});
    const auto corrupted = injector.corrupt(clean);
    ASSERT_GT(injector.stats().of(FaultMode::kSaturatedField), 0u);
    EXPECT_FALSE(batches_equal(corrupted, clean));
  }
}

TEST(FaultInjector, DuplicateDriveIdGrowsBatchWithRepeatedIds) {
  FaultInjector injector({{{FaultMode::kDuplicateDriveId, 0.1}}, 17});
  const auto clean = tiny_batch();
  const auto corrupted = injector.corrupt(clean);
  const std::size_t injected =
      injector.stats().of(FaultMode::kDuplicateDriveId);
  ASSERT_GT(injected, 0u);
  EXPECT_EQ(corrupted.size(), clean.size() + injected);
  std::set<std::uint64_t> seen;
  std::size_t repeats = 0;
  for (const auto& s : corrupted) {
    if (!seen.insert(s.drive_id).second) ++repeats;
  }
  EXPECT_EQ(repeats, injected);
}

TEST(FaultInjector, TextualModesMangleRowsButNeverTheHeader) {
  const std::string csv = tiny_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  const std::size_t arity = telemetry_csv_header().size();
  for (FaultMode mode : {FaultMode::kDroppedColumn, FaultMode::kTruncatedRow,
                         FaultMode::kMalformedFirmware}) {
    ASSERT_TRUE(fault_mode_is_textual(mode));
    FaultInjector injector({{{mode, 0.05}}, 19});
    const std::string corrupted = injector.corrupt_csv(csv);
    ASSERT_GT(injector.stats().of(mode), 0u) << fault_mode_name(mode);
    EXPECT_EQ(corrupted.substr(0, corrupted.find('\n')), header);
    std::stringstream ss(corrupted);
    std::string line;
    std::getline(ss, line);  // header
    std::size_t bad_arity = 0, bad_firmware = 0;
    while (std::getline(ss, line)) {
      const auto fields = split(line, ',');
      if (fields.size() != arity) ++bad_arity;
      if (fields.size() > 6 && fields[6] == "fw_corrupt!") ++bad_firmware;
    }
    if (mode == FaultMode::kMalformedFirmware) {
      EXPECT_EQ(bad_firmware, injector.stats().of(mode));
    } else {
      EXPECT_GT(bad_arity, 0u) << fault_mode_name(mode);
    }
  }
}

TEST(FaultInjector, TicketImtDisplacedOutsideWindow) {
  FleetSimulator fleet(tiny_scenario(3));
  auto tickets = fleet.tickets();
  ASSERT_FALSE(tickets.empty());
  const DayIndex lo = 0, hi = 365;
  FaultInjector injector({{{FaultMode::kTicketImtOutOfWindow, 1.0}}, 23});
  const auto corrupted = injector.corrupt_tickets(tickets, lo, hi);
  ASSERT_EQ(corrupted.size(), tickets.size());
  EXPECT_EQ(injector.stats().of(FaultMode::kTicketImtOutOfWindow),
            tickets.size());
  for (const auto& t : corrupted) {
    EXPECT_TRUE(t.imt < lo || t.imt > hi) << "imt=" << t.imt;
  }
}

TEST(FaultInjector, ComposedPlanAppliesEveryRequestedMode) {
  FaultPlan plan;
  plan.seed = 29;
  plan.faults = {{FaultMode::kDuplicateDay, 0.1},
                 {FaultMode::kClockRollback, 0.1},
                 {FaultMode::kNanField, 0.1}};
  FaultInjector injector(plan);
  (void)injector.corrupt(tiny_batch());
  for (const auto& spec : plan.faults) {
    EXPECT_GT(injector.stats().of(spec.mode), 0u)
        << fault_mode_name(spec.mode);
  }
  EXPECT_EQ(injector.stats().total(),
            injector.stats().of(FaultMode::kDuplicateDay) +
                injector.stats().of(FaultMode::kClockRollback) +
                injector.stats().of(FaultMode::kNanField));
}

// --- on-disk durable-state modes -------------------------------------------

namespace fs = std::filesystem;

class DiskFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("mfpa_diskfault_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "wal");
    fs::create_directories(dir_ / "ckpt");
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path make_file(const fs::path& rel, std::size_t bytes) {
    const fs::path path = dir_ / rel;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    for (std::size_t i = 0; i < bytes; ++i) {
      os.put(static_cast<char>('A' + i % 23));
    }
    return path;
  }

  static std::string bytes_of(const fs::path& path) {
    std::ifstream is(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  }

  fs::path dir_;
};

TEST_F(DiskFaultTest, DiskModePredicatesArePartitioned) {
  for (std::size_t m = 0; m < kNumFaultModes; ++m) {
    const auto mode = static_cast<FaultMode>(m);
    const int kinds = (fault_mode_is_textual(mode) ? 1 : 0) +
                      (fault_mode_is_ticket(mode) ? 1 : 0) +
                      (fault_mode_is_disk(mode) ? 1 : 0);
    EXPECT_LE(kinds, 1) << fault_mode_name(mode);
  }
  EXPECT_TRUE(fault_mode_is_disk(FaultMode::kTornFinalWrite));
  EXPECT_TRUE(fault_mode_is_disk(FaultMode::kStaleCheckpoint));
  EXPECT_FALSE(fault_mode_is_disk(FaultMode::kNanField));
}

TEST_F(DiskFaultTest, TornFinalWriteTrimsTrailingBytes) {
  const auto path = make_file("wal/shard-000.c0.wal", 500);
  const std::string before = bytes_of(path);
  FaultInjector injector({{{FaultMode::kTornFinalWrite, 1.0}}, 31});
  injector.corrupt_file(path.string(), FaultMode::kTornFinalWrite);
  const std::string after = bytes_of(path);
  ASSERT_LT(after.size(), before.size());
  EXPECT_GE(after.size(), before.size() - 40);
  EXPECT_EQ(before.compare(0, after.size(), after), 0);  // prefix untouched
  EXPECT_EQ(injector.stats().of(FaultMode::kTornFinalWrite), 1u);
}

TEST_F(DiskFaultTest, BitFlipChangesExactlyOneBit) {
  const auto path = make_file("wal/shard-000.c0.wal", 300);
  const std::string before = bytes_of(path);
  FaultInjector injector({{{FaultMode::kBitFlip, 1.0}}, 37});
  injector.corrupt_file(path.string(), FaultMode::kBitFlip);
  const std::string after = bytes_of(path);
  ASSERT_EQ(after.size(), before.size());
  int bits_changed = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(before[i] ^ after[i]);
    while (diff != 0) {
      bits_changed += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_changed, 1);
}

TEST_F(DiskFaultTest, DuplicateSegmentDoublesTheFile) {
  const auto path = make_file("wal/shard-001.c0.wal", 200);
  const std::string before = bytes_of(path);
  FaultInjector injector({{{FaultMode::kDuplicateSegment, 1.0}}, 41});
  injector.corrupt_file(path.string(), FaultMode::kDuplicateSegment);
  const std::string after = bytes_of(path);
  EXPECT_EQ(after, before + before);
}

TEST_F(DiskFaultTest, StaleCheckpointDeletesOnlyTheNewest) {
  make_file("ckpt/ckpt-512.mfc", 64);
  make_file("ckpt/ckpt-4096.mfc", 64);  // numerically newest, lex. smallest
  make_file("wal/shard-000.c4096.wal", 64);
  FaultInjector injector({{{FaultMode::kStaleCheckpoint, 1.0}}, 43});
  EXPECT_EQ(injector.corrupt_durable_dir(dir_.string()), 1u);
  EXPECT_FALSE(fs::exists(dir_ / "ckpt" / "ckpt-4096.mfc"));
  EXPECT_TRUE(fs::exists(dir_ / "ckpt" / "ckpt-512.mfc"));
  EXPECT_TRUE(fs::exists(dir_ / "wal" / "shard-000.c4096.wal"));
}

TEST_F(DiskFaultTest, DurableDirSweepIsDeterministic) {
  auto populate = [&](const fs::path& root) {
    for (const char* rel :
         {"wal/shard-000.c0.wal", "wal/shard-001.c0.wal",
          "ckpt/ckpt-10.mfc", "ckpt/ckpt-20.mfc"}) {
      fs::create_directories((root / rel).parent_path());
      std::ofstream os(root / rel, std::ios::binary);
      for (int i = 0; i < 400; ++i) os.put(static_cast<char>('a' + i % 17));
    }
  };
  const fs::path other = dir_ / "twin";
  populate(dir_);
  populate(other);
  FaultPlan plan;
  plan.seed = 47;
  plan.faults = {{FaultMode::kTornFinalWrite, 0.5},
                 {FaultMode::kBitFlip, 0.5},
                 {FaultMode::kFileTruncation, 0.5}};
  FaultInjector a(plan);
  FaultInjector b(plan);
  const std::size_t injected_a = a.corrupt_durable_dir(dir_.string());
  const std::size_t injected_b = b.corrupt_durable_dir(other.string());
  EXPECT_EQ(injected_a, injected_b);
  ASSERT_GT(injected_a, 0u);
  for (const char* rel :
       {"wal/shard-000.c0.wal", "wal/shard-001.c0.wal", "ckpt/ckpt-10.mfc",
        "ckpt/ckpt-20.mfc"}) {
    EXPECT_EQ(bytes_of(dir_ / rel), bytes_of(other / rel)) << rel;
  }
}

TEST_F(DiskFaultTest, ZeroRatePlanTouchesNothing) {
  const auto wal = make_file("wal/shard-000.c0.wal", 128);
  const auto ckpt = make_file("ckpt/ckpt-5.mfc", 128);
  const std::string wal_before = bytes_of(wal);
  const std::string ckpt_before = bytes_of(ckpt);
  FaultPlan plan;
  plan.seed = 53;
  for (std::size_t m = 0; m < kNumFaultModes; ++m) {
    plan.faults.push_back({static_cast<FaultMode>(m), 0.0});
  }
  FaultInjector injector(plan);
  EXPECT_EQ(injector.corrupt_durable_dir(dir_.string()), 0u);
  EXPECT_EQ(bytes_of(wal), wal_before);
  EXPECT_EQ(bytes_of(ckpt), ckpt_before);
  EXPECT_TRUE(fs::exists(ckpt));
}

}  // namespace
}  // namespace mfpa::sim
