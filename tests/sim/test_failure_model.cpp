#include "sim/failure_model.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mfpa::sim {
namespace {

TEST(FailureModel, MeanFirmwareMultiplierIsShareWeighted) {
  VendorConfig v;
  v.firmware = {{"f1", 2.0, 0.5}, {"f2", 1.0, 0.5}};
  EXPECT_NEAR(FailureModel::mean_firmware_multiplier(v), 1.5, 1e-12);
}

TEST(FailureModel, ObservedFailureRateMatchesReplacementRate) {
  // Calibration property: across firmware mix, the fraction of drives
  // failing within the horizon approximates the vendor replacement rate.
  const VendorConfig& vendor = vendor_catalog()[0];  // RR = 0.0068
  FailureModel model;
  Rng rng(1);
  const int n = 60000;
  int failures = 0;
  for (int i = 0; i < n; ++i) {
    const std::size_t fw = rng.categorical(
        {0.12, 0.18, 0.30, 0.25, 0.15});  // vendor I market shares
    if (model.sample_outcome(vendor, fw, 540, rng).fails) ++failures;
  }
  const double rate = static_cast<double>(failures) / n;
  EXPECT_NEAR(rate, vendor.replacement_rate, vendor.replacement_rate * 0.15);
}

TEST(FailureModel, EarlierFirmwareFailsMoreOften) {
  const VendorConfig& vendor = vendor_catalog()[0];
  FailureModel model;
  Rng rng(2);
  const int n = 120000;
  int fails_first = 0, fails_last = 0;
  for (int i = 0; i < n; ++i) {
    if (model.sample_outcome(vendor, 0, 540, rng).fails) ++fails_first;
    if (model.sample_outcome(vendor, vendor.firmware.size() - 1, 540, rng).fails) {
      ++fails_last;
    }
  }
  EXPECT_GT(fails_first, fails_last * 3);  // multiplier ratio 3.0 / 0.4
}

TEST(FailureModel, FailureDayInsideHorizon) {
  const VendorConfig& vendor = vendor_catalog()[0];
  FailureModel model;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    const auto out = model.sample_outcome(vendor, 0, 540, rng);
    if (!out.fails) continue;
    EXPECT_GE(out.failure_day, 0);
    EXPECT_LT(out.failure_day, 540);
    EXPECT_GT(out.failure_day, out.deploy_day);
  }
}

TEST(FailureModel, OnsetRangesByArchetype) {
  const VendorConfig& vendor = vendor_catalog()[0];
  FailureModel model;
  Rng rng(4);
  std::map<FailureArchetype, std::pair<int, int>> range;  // min, max
  for (int i = 0; i < 100000; ++i) {
    const auto out = model.sample_outcome(vendor, 0, 540, rng);
    if (!out.fails) continue;
    auto& [lo, hi] = range.try_emplace(out.archetype, 9999, 0).first->second;
    lo = std::min(lo, out.onset_days);
    hi = std::max(hi, out.onset_days);
  }
  ASSERT_EQ(range.size(), kNumArchetypes);
  EXPECT_GE(range[FailureArchetype::kWearout].first, 20);
  EXPECT_LE(range[FailureArchetype::kWearout].second, 60);
  EXPECT_GE(range[FailureArchetype::kSudden].first, 10);
  EXPECT_LE(range[FailureArchetype::kSudden].second, 21);
  // Sudden deaths degrade for less time than wear-out deaths.
  EXPECT_LT(range[FailureArchetype::kSudden].second,
            range[FailureArchetype::kWearout].second);
}

TEST(FailureModel, BathtubHasInfantAndWearoutMass) {
  FailureModel model;
  Rng rng(5);
  int early = 0, late = 0, total = 0;
  for (int i = 0; i < 20000; ++i) {
    const double age = model.sample_failure_age(rng, nullptr);
    ++total;
    if (age < 90.0) ++early;
    if (age > 700.0) ++late;
  }
  // Both bathtub ends carry nontrivial probability mass.
  EXPECT_GT(static_cast<double>(early) / total, 0.15);
  EXPECT_GT(static_cast<double>(late) / total, 0.15);
}

TEST(FailureModel, ArchetypeHintCorrelatesWithAge) {
  FailureModel model;
  Rng rng(6);
  int wearout_young = 0, wearout_old = 0, young = 0, old = 0;
  for (int i = 0; i < 50000; ++i) {
    FailureArchetype a{};
    const double age = model.sample_failure_age(rng, &a);
    if (age < 120.0) {
      ++young;
      if (a == FailureArchetype::kWearout) ++wearout_young;
    } else if (age > 700.0) {
      ++old;
      if (a == FailureArchetype::kWearout) ++wearout_old;
    }
  }
  ASSERT_GT(young, 100);
  ASSERT_GT(old, 100);
  EXPECT_GT(static_cast<double>(wearout_old) / old,
            static_cast<double>(wearout_young) / young * 2.0);
}

TEST(FailureModel, TicketCategoryMarginalMatchesTableI) {
  Rng rng(7);
  const VendorConfig& vendor = vendor_catalog()[0];
  std::size_t drive_level = 0, total = 0;
  for (int i = 0; i < 30000; ++i) {
    // Sample archetypes from the vendor mix, then categories.
    const auto& mix = vendor.archetypes;
    const std::size_t a =
        rng.categorical({mix.wearout, mix.media, mix.controller, mix.sudden});
    const TicketCategory c =
        sample_ticket_category(static_cast<FailureArchetype>(a), rng);
    ++total;
    if (ticket_category_info(c).level == FailureLevel::kDriveLevel) {
      ++drive_level;
    }
  }
  // Table I: 31.62% drive-level (coupling approximates it).
  EXPECT_NEAR(static_cast<double>(drive_level) / total, 0.3162, 0.04);
}

TEST(FailureModel, SuddenFailuresLookSystemLevel) {
  Rng rng(8);
  std::size_t drive_level = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const TicketCategory c =
        sample_ticket_category(FailureArchetype::kSudden, rng);
    if (ticket_category_info(c).level == FailureLevel::kDriveLevel) {
      ++drive_level;
    }
  }
  EXPECT_LT(static_cast<double>(drive_level) / n, 0.15);
}

TEST(FailureModel, ArchetypeNames) {
  EXPECT_STREQ(archetype_name(FailureArchetype::kWearout), "wearout");
  EXPECT_STREQ(archetype_name(FailureArchetype::kSudden), "sudden");
}

TEST(FailureModel, HealthyOutcomeHasNoFailureDay) {
  const VendorConfig& vendor = vendor_catalog()[1];  // low RR
  FailureModel model;
  Rng rng(9);
  int checked = 0;
  for (int i = 0; i < 1000 && checked < 100; ++i) {
    const auto out = model.sample_outcome(vendor, 0, 540, rng);
    if (out.fails) continue;
    EXPECT_EQ(out.failure_day, -1);
    ++checked;
  }
  EXPECT_GE(checked, 100);
}

}  // namespace
}  // namespace mfpa::sim
