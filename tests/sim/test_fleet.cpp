#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mfpa::sim {
namespace {

Scenario test_scenario() {
  Scenario s = tiny_scenario(99);
  return s;
}

TEST(Fleet, RejectsBadScenario) {
  Scenario s = test_scenario();
  s.telemetry_start = 300;
  s.telemetry_end = 100;
  EXPECT_THROW(FleetSimulator{s}, std::invalid_argument);
  Scenario z = test_scenario();
  z.fleet_scale = 0.0;
  EXPECT_THROW(FleetSimulator{z}, std::invalid_argument);
}

TEST(Fleet, FleetSizeScales) {
  FleetSimulator fleet(test_scenario());
  const auto summaries = fleet.summarize();
  ASSERT_EQ(summaries.size(), kNumVendors);
  for (std::size_t v = 0; v < kNumVendors; ++v) {
    const double expected =
        static_cast<double>(vendor_catalog()[v].fleet_size) * 0.004;
    EXPECT_NEAR(static_cast<double>(summaries[v].total), expected,
                expected * 0.01 + 51);
  }
}

TEST(Fleet, DriveIdsUniqueAndVendorTagged) {
  FleetSimulator fleet(test_scenario());
  std::unordered_set<std::uint64_t> ids;
  for (const auto& d : fleet.drives()) {
    EXPECT_TRUE(ids.insert(d.drive_id).second);
    EXPECT_EQ(d.drive_id / 10'000'000ULL,
              static_cast<std::uint64_t>(d.vendor) + 1);
  }
}

TEST(Fleet, DeterministicAcrossInstances) {
  FleetSimulator a(test_scenario()), b(test_scenario());
  const auto& da = a.drives();
  const auto& db = b.drives();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); i += 97) {
    EXPECT_EQ(da[i].drive_id, db[i].drive_id);
    EXPECT_EQ(da[i].outcome.fails, db[i].outcome.fails);
    EXPECT_EQ(da[i].outcome.failure_day, db[i].outcome.failure_day);
  }
}

TEST(Fleet, DifferentSeedsDiffer) {
  FleetSimulator a(tiny_scenario(1)), b(tiny_scenario(2));
  std::size_t diffs = 0;
  const auto& da = a.drives();
  const auto& db = b.drives();
  for (std::size_t i = 0; i < std::min(da.size(), db.size()); i += 13) {
    if (da[i].outcome.deploy_day != db[i].outcome.deploy_day) ++diffs;
  }
  EXPECT_GT(diffs, 10u);
}

TEST(Fleet, TicketsOnlyForFailures) {
  FleetSimulator fleet(test_scenario());
  std::unordered_map<std::uint64_t, const DriveInfo*> info;
  for (const auto& d : fleet.drives()) info[d.drive_id] = &d;
  const auto tickets = fleet.tickets();
  std::size_t failures = 0;
  for (const auto& d : fleet.drives()) failures += d.outcome.fails;
  EXPECT_EQ(tickets.size(), failures);
  for (const auto& t : tickets) {
    const auto* d = info.at(t.drive_id);
    EXPECT_TRUE(d->outcome.fails);
    EXPECT_GT(t.imt, d->outcome.failure_day);  // repair strictly after failure
    EXPECT_EQ(t.category, d->outcome.category);
  }
}

TEST(Fleet, TicketsSortedByImt) {
  FleetSimulator fleet(test_scenario());
  const auto tickets = fleet.tickets();
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_LE(tickets[i - 1].imt, tickets[i].imt);
  }
}

TEST(Fleet, TelemetryWindowRespected) {
  FleetSimulator fleet(test_scenario());
  const auto telemetry = fleet.generate_telemetry();
  ASSERT_FALSE(telemetry.empty());
  const auto& s = fleet.scenario();
  for (const auto& series : telemetry) {
    for (const auto& rec : series.records) {
      EXPECT_GE(rec.day, s.telemetry_start);
      EXPECT_LT(rec.day, s.telemetry_end);
      if (series.failed) {
        EXPECT_LE(rec.day, series.failure_day);
      }
    }
  }
}

TEST(Fleet, TelemetryRecordsSortedStrictlyIncreasing) {
  FleetSimulator fleet(test_scenario());
  for (const auto& series : fleet.generate_telemetry()) {
    for (std::size_t i = 1; i < series.records.size(); ++i) {
      EXPECT_LT(series.records[i - 1].day, series.records[i].day);
    }
  }
}

TEST(Fleet, TelemetryIncludesAllWindowFailures) {
  FleetSimulator fleet(test_scenario());
  const auto telemetry = fleet.generate_telemetry();
  std::unordered_set<std::uint64_t> tracked;
  for (const auto& s : telemetry) tracked.insert(s.drive_id);
  const auto& sc = fleet.scenario();
  for (const auto& d : fleet.drives()) {
    if (!d.outcome.fails) continue;
    if (d.outcome.failure_day < sc.telemetry_start ||
        d.outcome.failure_day >= sc.telemetry_end) {
      continue;
    }
    // Failed drives are tracked unless they produced no records at all
    // (deployed too late / never powered on).
    const auto series = fleet.generate_drive_telemetry(d);
    if (!series.records.empty()) {
      EXPECT_TRUE(tracked.contains(d.drive_id)) << d.drive_id;
    }
  }
}

TEST(Fleet, HealthySampleRatioHonored) {
  FleetSimulator fleet(test_scenario());
  const auto telemetry = fleet.generate_telemetry();
  std::size_t healthy = 0, failed = 0;
  for (const auto& s : telemetry) s.failed ? ++failed : ++healthy;
  ASSERT_GT(failed, 0u);
  // healthy_per_failed = 6 with a floor of 16 per vendor; allow slack for
  // drives dropped for lacking records.
  EXPECT_GE(healthy, failed);
  EXPECT_LE(healthy, failed * 6 + 4 * 16);
}

TEST(Fleet, DriveTelemetryDeterministic) {
  FleetSimulator fleet(test_scenario());
  const auto& drives = fleet.drives();
  const auto* failed = &drives[0];
  for (const auto& d : drives) {
    if (d.outcome.fails) {
      failed = &d;
      break;
    }
  }
  const auto a = fleet.generate_drive_telemetry(*failed);
  const auto b = fleet.generate_drive_telemetry(*failed);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].day, b.records[i].day);
    EXPECT_EQ(a.records[i].smart, b.records[i].smart);
    EXPECT_EQ(a.records[i].w, b.records[i].w);
  }
}

TEST(Fleet, FirmwareIndexesValidOrDriftRelease) {
  FleetSimulator fleet(test_scenario());
  for (const auto& series : fleet.generate_telemetry()) {
    const auto catalog_size =
        vendor_catalog()[static_cast<std::size_t>(series.vendor)].firmware.size();
    for (const auto& rec : series.records) {
      EXPECT_LE(rec.firmware_index, catalog_size);  // == size means drift release
    }
  }
}

TEST(Fleet, FirmwareNeverDowngrades) {
  FleetSimulator fleet(test_scenario());
  for (const auto& series : fleet.generate_telemetry()) {
    for (std::size_t i = 1; i < series.records.size(); ++i) {
      EXPECT_GE(series.records[i].firmware_index,
                series.records[i - 1].firmware_index);
    }
  }
}

TEST(Fleet, PohAtFailurePositiveForFailures) {
  FleetSimulator fleet(test_scenario());
  for (const auto& d : fleet.drives()) {
    if (d.outcome.fails) {
      EXPECT_GT(d.poh_at_failure(), 0.0);
    }
  }
}

TEST(Fleet, HardwareLookupMatchesCatalog) {
  FleetSimulator fleet(test_scenario());
  const auto& d = fleet.drives().front();
  const auto hw = fleet.hardware_of(d);
  const auto& model = vendor_catalog()[static_cast<std::size_t>(d.vendor)]
                          .models[static_cast<std::size_t>(d.model)];
  EXPECT_EQ(hw.capacity_gb, model.capacity_gb);
  EXPECT_EQ(hw.flash_layers, model.flash_layers);
}

TEST(Fleet, ThreadedTelemetryMatchesSerial) {
  // Per-drive random streams derive from (seed, drive id); thread count
  // must not change the output.
  FleetSimulator a(test_scenario()), b(test_scenario());
  const auto serial = a.generate_telemetry(1);
  const auto parallel = b.generate_telemetry(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].drive_id, parallel[i].drive_id);
    ASSERT_EQ(serial[i].records.size(), parallel[i].records.size());
    for (std::size_t r = 0; r < serial[i].records.size(); ++r) {
      EXPECT_EQ(serial[i].records[r].day, parallel[i].records[r].day);
      EXPECT_EQ(serial[i].records[r].smart, parallel[i].records[r].smart);
      EXPECT_EQ(serial[i].records[r].w, parallel[i].records[r].w);
      EXPECT_EQ(serial[i].records[r].b, parallel[i].records[r].b);
    }
  }
}

TEST(Fleet, RealizedReplacementRatesOrdered) {
  // At small scale the absolute rates are noisy, but vendor I must clearly
  // exceed vendors II/III (its RR is ~10x theirs).
  FleetSimulator fleet(small_scenario(5));
  const auto summaries = fleet.summarize();
  EXPECT_GT(summaries[0].replacement_rate, summaries[1].replacement_rate * 3);
  EXPECT_GT(summaries[0].replacement_rate, summaries[2].replacement_rate * 3);
}

}  // namespace
}  // namespace mfpa::sim
