// MetricsRegistry contract: family identity, kind/geometry safety, exact
// counts under heavy concurrent writers, and the isolation machinery every
// other suite relies on to keep global metric state from leaking between
// tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mfpa::obs {
namespace {

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  auto reg = MetricsRegistry::create_isolated();
  Counter& a = reg->counter("requests_total", {{"path", "/a"}});
  Counter& b = reg->counter("requests_total", {{"path", "/a"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg->counter("requests_total", {{"path", "/b"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg->size(), 2u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotForkTheFamily) {
  auto reg = MetricsRegistry::create_isolated();
  Counter& a = reg->counter("c", {{"x", "1"}, {"y", "2"}});
  Counter& b = reg->counter("c", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg->size(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  auto reg = MetricsRegistry::create_isolated();
  reg->counter("thing");
  EXPECT_THROW(reg->gauge("thing"), std::invalid_argument);
  EXPECT_THROW(reg->histogram("thing", 0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(reg->counter(""), std::invalid_argument);
}

TEST(MetricsRegistryTest, HistogramGeometryMismatchThrows) {
  auto reg = MetricsRegistry::create_isolated();
  HistogramMetric& h = reg->histogram("lat", 0.0, 100.0, 10);
  EXPECT_EQ(&h, &reg->histogram("lat", 0.0, 100.0, 10));
  EXPECT_THROW(reg->histogram("lat", 0.0, 100.0, 20), std::invalid_argument);
  EXPECT_THROW(reg->histogram("lat", 0.0, 200.0, 10), std::invalid_argument);
}

TEST(MetricsRegistryTest, GaugeOperations) {
  auto reg = MetricsRegistry::create_isolated();
  Gauge& g = reg->gauge("depth");
  g.set(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 6.5);
  g.max_of(3.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(g.value(), 6.5);
  g.max_of(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(MetricsRegistryTest, HistogramMatchesStatsHistogramGeometry) {
  auto reg = MetricsRegistry::create_isolated();
  HistogramMetric& h = reg->histogram("h", 0.0, 10.0, 10);
  stats::Histogram expected(0.0, 10.0, 10);
  // Includes the below-lo and at/above-hi clamp cases.
  for (double x : {-1.0, 0.0, 0.5, 3.3, 9.99, 10.0, 42.0}) {
    h.observe(x);
    expected.add(x);
  }
  const stats::Histogram snap = h.snapshot();
  EXPECT_EQ(snap.total(), expected.total());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(snap.quantile(q), expected.quantile(q), 10.0 / 10 + 1e-12)
        << "q=" << q;
  }
}

// The tentpole concurrency guarantee: N writer threads hammering M families
// lose nothing — final counts are exact, not approximate.
TEST(MetricsRegistryTest, ConcurrentWritersProduceExactCounts) {
  auto reg = MetricsRegistry::create_isolated();
  constexpr int kWriters = 8;
  constexpr int kFamilies = 5;
  constexpr std::uint64_t kIncsPerWriter = 20000;

  std::vector<Counter*> counters;
  for (int f = 0; f < kFamilies; ++f) {
    counters.push_back(
        &reg->counter("hammer_total", {{"family", std::to_string(f)}}));
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kIncsPerWriter; ++i) {
        counters[static_cast<std::size_t>((w + static_cast<int>(i)) %
                                          kFamilies)]
            ->inc();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();

  std::uint64_t total = 0;
  for (auto* c : counters) total += c->value();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kWriters) * kIncsPerWriter);
}

// Histogram bin counts are individually atomic: concurrent observers at
// known values must be tallied exactly (no torn or lost bin updates), and a
// concurrent snapshot must always read internally consistent counts.
TEST(MetricsRegistryTest, ConcurrentHistogramObservationsAreExact) {
  auto reg = MetricsRegistry::create_isolated();
  HistogramMetric& h = reg->histogram("conc", 0.0, 8.0, 8);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kObsPerWriter = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Snapshots taken mid-write must never exceed the final total and the
    // materialized histogram must agree with itself.
    while (!stop.load(std::memory_order_acquire)) {
      const stats::Histogram snap = h.snapshot();
      EXPECT_LE(snap.total(), kWriters * kObsPerWriter);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kObsPerWriter; ++i) {
        h.observe(static_cast<double>((w + static_cast<int>(i)) % 8) + 0.5);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kWriters) * kObsPerWriter);
  const stats::Histogram snap = h.snapshot();
  EXPECT_EQ(snap.total(), static_cast<std::uint64_t>(kWriters) * kObsPerWriter);
}

// Writers racing the very first resolution of a family must agree on one
// instrument (registration is the only locked path).
TEST(MetricsRegistryTest, ConcurrentRegistrationConverges) {
  auto reg = MetricsRegistry::create_isolated();
  constexpr int kThreads = 8;
  std::vector<Counter*> resolved(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter& c = reg->counter("race_total", {{"k", "v"}});
      c.inc();
      resolved[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(resolved[0], resolved[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(resolved[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsRegistryTest, IsolatedRegistriesAreIndependent) {
  auto a = MetricsRegistry::create_isolated();
  auto b = MetricsRegistry::create_isolated();
  EXPECT_NE(a->generation(), b->generation());
  a->counter("x").inc(5);
  b->counter("x").inc(7);
  EXPECT_EQ(a->counter("x").value(), 5u);
  EXPECT_EQ(b->counter("x").value(), 7u);
}

TEST(MetricsRegistryTest, ScopedOverrideRedirectsAndRestores) {
  MetricsRegistry& before = registry();
  {
    auto isolated = MetricsRegistry::create_isolated();
    ScopedMetricsOverride override_scope(*isolated);
    EXPECT_EQ(&registry(), isolated.get());
    registry().counter("scoped_total").inc();
    EXPECT_EQ(isolated->counter("scoped_total").value(), 1u);
    {
      auto nested = MetricsRegistry::create_isolated();
      ScopedMetricsOverride nested_scope(*nested);
      EXPECT_EQ(&registry(), nested.get());
    }
    EXPECT_EQ(&registry(), isolated.get());
  }
  EXPECT_EQ(&registry(), &before);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsInstruments) {
  auto reg = MetricsRegistry::create_isolated();
  Counter& c = reg->counter("c");
  Gauge& g = reg->gauge("g");
  HistogramMetric& h = reg->histogram("h", 0.0, 1.0, 4);
  c.inc(3);
  g.set(2.0);
  h.observe(0.5);
  reg->reset();
  EXPECT_EQ(c.value(), 0u);       // same handle, zeroed
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg->size(), 3u);
  c.inc();  // handles stay live after reset
  EXPECT_EQ(reg->counter("c").value(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  auto reg = MetricsRegistry::create_isolated();
  reg->counter("zeta").inc(1);
  reg->gauge("alpha").set(2.0);
  reg->histogram("mid", 0.0, 1.0, 2).observe(0.25);
  const MetricsSnapshot snap = reg->snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "alpha");
  EXPECT_EQ(snap.metrics[1].name, "mid");
  EXPECT_EQ(snap.metrics[2].name, "zeta");
  EXPECT_EQ(snap.metrics[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap.metrics[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap.metrics[2].kind, MetricKind::kCounter);
  EXPECT_EQ(snap.metrics[2].counter, 1u);
}

}  // namespace
}  // namespace mfpa::obs
