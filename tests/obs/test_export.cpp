// Exporter golden tests: the mfpa.metrics.v1 JSON document is a stable
// machine contract (bench artifacts, CI diffs, --metrics-out), so this
// suite locks it byte-for-byte against a hand-built registry. Renaming a
// key, reordering fields, or changing number rendering must fail here and
// force a schema bump.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include <unistd.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace mfpa::obs {
namespace {

/// One registry covering all three kinds, with values whose rendered forms
/// (quantiles included) are exact by construction.
std::unique_ptr<MetricsRegistry> golden_registry() {
  auto reg = MetricsRegistry::create_isolated();
  reg->counter("alerts_total", {{"engine", "0"}}).inc(3);
  reg->gauge("queue_depth").set(7.5);
  HistogramMetric& h = reg->histogram("latency_us", 0.0, 10.0, 10);
  h.observe(2.5);
  h.observe(2.5);
  h.observe(7.5);
  h.observe(7.5);
  return reg;
}

constexpr const char* kGoldenJson =
    "{\n"
    "  \"metrics\": [\n"
    "    {\"labels\": {\"engine\": \"0\"}, \"name\": \"alerts_total\", "
    "\"type\": \"counter\", \"value\": 3},\n"
    "    {\"count\": 4, \"labels\": {}, \"mean\": 5, \"name\": "
    "\"latency_us\", \"p50\": 3, \"p90\": 7.8, \"p99\": 7.98, \"sum\": 20, "
    "\"type\": \"histogram\"},\n"
    "    {\"labels\": {}, \"name\": \"queue_depth\", \"type\": \"gauge\", "
    "\"value\": 7.5}\n"
    "  ],\n"
    "  \"schema\": \"mfpa.metrics.v1\"\n"
    "}\n";

TEST(MetricsExportTest, JsonMatchesGoldenByteForByte) {
  const auto reg = golden_registry();
  EXPECT_EQ(to_json(reg->snapshot()), kGoldenJson);
}

TEST(MetricsExportTest, EmptySnapshotStillCarriesSchema) {
  const auto reg = MetricsRegistry::create_isolated();
  EXPECT_EQ(to_json(reg->snapshot()),
            "{\n  \"metrics\": [\n  ],\n  \"schema\": \"mfpa.metrics.v1\"\n}\n");
}

TEST(MetricsExportTest, JsonIsDeterministicAcrossSnapshots) {
  const auto reg = golden_registry();
  EXPECT_EQ(to_json(reg->snapshot()), to_json(reg->snapshot()));
}

TEST(MetricsExportTest, PrometheusTextMatchesGolden) {
  const auto reg = golden_registry();
  EXPECT_EQ(to_prometheus(reg->snapshot()),
            "# TYPE alerts_total counter\n"
            "alerts_total{engine=\"0\"} 3\n"
            "# TYPE latency_us summary\n"
            "latency_us_count 4\n"
            "latency_us_sum 20\n"
            "latency_us{quantile=\"0.5\"} 3\n"
            "latency_us{quantile=\"0.9\"} 7.8\n"
            "latency_us{quantile=\"0.99\"} 7.98\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 7.5\n");
}

TEST(MetricsExportTest, LabelValuesAreEscaped) {
  auto reg = MetricsRegistry::create_isolated();
  reg->counter("c", {{"path", "a\"b\\c"}}).inc();
  const std::string json = to_json(reg->snapshot());
  EXPECT_NE(json.find("\"path\": \"a\\\"b\\\\c\""), std::string::npos) << json;
}

TEST(MetricsExportTest, WriteJsonFileRoundTrips) {
  const auto reg = golden_registry();
  const auto path =
      (std::filesystem::temp_directory_path() /
       ("mfpa_metrics_export_" + std::to_string(::getpid()) + ".json"))
          .string();
  write_json_file(path, reg->snapshot());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), kGoldenJson);
  std::filesystem::remove(path);
}

TEST(MetricsExportTest, WriteJsonFileThrowsOnUnwritablePath) {
  const auto reg = MetricsRegistry::create_isolated();
  EXPECT_THROW(write_json_file("/nonexistent-dir/metrics.json",
                               reg->snapshot()),
               std::runtime_error);
}

}  // namespace
}  // namespace mfpa::obs
