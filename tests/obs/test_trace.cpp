// Tracer / ScopedSpan contract: disabled-by-default, every-Nth root
// sampling with whole-subtree capture, well-formed nesting on every thread,
// and the bounded buffer's drop accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace mfpa::obs {
namespace {

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer t;
  ScopedTracerOverride scope(t);
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
  }
  EXPECT_TRUE(t.take_spans().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceTest, SampleEveryOneCapturesWholeSubtree) {
  Tracer t;
  t.set_sample_every(1);
  ScopedTracerOverride scope(t);
  {
    ScopedSpan root("root");
    {
      ScopedSpan child("child");
      ScopedSpan grandchild("grandchild");
    }
    ScopedSpan sibling("sibling");
  }
  auto spans = t.take_spans();
  ASSERT_EQ(spans.size(), 4u);
  // Spans are recorded on close (LIFO), so the root comes last.
  EXPECT_EQ(spans.back().name, "root");
  EXPECT_EQ(spans.back().depth, 0u);
  std::map<std::string, std::uint32_t> depth;
  for (const auto& s : spans) depth[s.name] = s.depth;
  EXPECT_EQ(depth.at("child"), 1u);
  EXPECT_EQ(depth.at("grandchild"), 2u);
  EXPECT_EQ(depth.at("sibling"), 1u);
  for (const auto& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns) << s.name;
  }
}

TEST(TraceTest, SampleEveryNKeepsEveryNthRoot) {
  Tracer t;
  t.set_sample_every(3);
  ScopedTracerOverride scope(t);
  for (int i = 0; i < 9; ++i) {
    ScopedSpan root("root");
  }
  // Every 3rd root span: 3 of 9.
  EXPECT_EQ(t.take_spans().size(), 3u);
}

TEST(TraceTest, SamplingDecisionIsPerRootNotPerSpan) {
  Tracer t;
  t.set_sample_every(2);
  ScopedTracerOverride scope(t);
  for (int i = 0; i < 4; ++i) {
    ScopedSpan root("root");
    ScopedSpan child("child");  // must ride its root's decision
  }
  const auto spans = t.take_spans();
  // 2 of 4 roots sampled, each with its child.
  ASSERT_EQ(spans.size(), 4u);
  const auto roots = static_cast<std::size_t>(
      std::count_if(spans.begin(), spans.end(),
                    [](const SpanRecord& s) { return s.depth == 0; }));
  EXPECT_EQ(roots, 2u);
}

TEST(TraceTest, NestingIsWellFormedPerThread) {
  Tracer t;
  t.set_sample_every(1);
  ScopedTracerOverride scope(t);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < 10; ++j) {
        ScopedSpan a("a");
        {
          ScopedSpan b("b");
          ScopedSpan c("c");
        }
        ScopedSpan d("d");
      }
    });
  }
  for (auto& th : threads) th.join();

  // Rebuild each thread's stream: for perfect nesting, walking spans in
  // record order and pushing/popping by depth must always pop a span whose
  // interval contains every deeper span recorded since it opened.
  std::map<std::uint64_t, std::vector<SpanRecord>> by_thread;
  for (auto& s : t.take_spans()) by_thread[s.thread].push_back(s);
  ASSERT_EQ(by_thread.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, spans] : by_thread) {
    EXPECT_EQ(spans.size(), 40u) << "thread " << tid;
    // Spans close LIFO: a span at depth d must contain (in time) every
    // span recorded before it at depth d+1 since the previous depth-d close.
    std::vector<const SpanRecord*> pending;  // deeper spans awaiting a parent
    for (const auto& s : spans) {
      while (!pending.empty() && pending.back()->depth > s.depth) {
        EXPECT_GE(pending.back()->start_ns, s.start_ns);
        EXPECT_LE(pending.back()->end_ns, s.end_ns);
        pending.pop_back();
      }
      pending.push_back(&s);
    }
    for (const auto* s : pending) {
      EXPECT_LE(s->depth, 1u);  // only roots and their direct children remain
    }
  }
}

TEST(TraceTest, CapacityBoundDropsAndCounts) {
  Tracer t;
  t.set_sample_every(1);
  t.set_capacity(5);
  ScopedTracerOverride scope(t);
  for (int i = 0; i < 8; ++i) {
    ScopedSpan root("root");
  }
  EXPECT_EQ(t.dropped(), 3u);
  EXPECT_EQ(t.take_spans().size(), 5u);
  EXPECT_EQ(t.dropped(), 0u);  // take_spans resets the drop counter
}

TEST(TraceTest, OpenSpanPinsItsTracerAcrossOverrideChange) {
  Tracer a;
  Tracer b;
  a.set_sample_every(1);
  b.set_sample_every(1);
  std::vector<SpanRecord> from_a;
  {
    ScopedTracerOverride scope_a(a);
    ScopedSpan root("root");
    {
      // A nested override must not split root's subtree across tracers.
      ScopedTracerOverride scope_b(b);
      ScopedSpan child("child");
    }
  }
  EXPECT_EQ(a.take_spans().size(), 2u);
  EXPECT_TRUE(b.take_spans().empty());
}

TEST(TraceTest, GlobalTracerIsDisabledByDefault) {
  EXPECT_FALSE(Tracer::global().enabled());
}

}  // namespace
}  // namespace mfpa::obs
