#include "core/health_report.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mfpa::core {
namespace {

/// Reference dataset: healthy rows near baseline; feature names real.
data::Dataset make_reference(std::size_t n_healthy, std::uint64_t seed) {
  Rng rng(seed);
  data::Dataset ds;
  ds.feature_names = {"S_3", "S_14", "W_11", "B_50"};
  for (std::size_t i = 0; i < n_healthy; ++i) {
    ds.add(std::vector<double>{100.0 + rng.normal(0.0, 1.0),  // spare
                               rng.normal(2.0, 1.0),          // media errors
                               rng.normal(0.5, 0.3),          // W_11 cum
                               rng.normal(0.2, 0.2)},         // B_50 cum
           0, {i, static_cast<DayIndex>(i), 0});
  }
  return ds;
}

TEST(HealthExplainer, RequiresHealthyRows) {
  HealthExplainer explainer;
  data::Dataset tiny = make_reference(3, 1);
  EXPECT_THROW(explainer.fit(tiny), std::invalid_argument);
}

TEST(HealthExplainer, RequiresFeatureNames) {
  HealthExplainer explainer;
  data::Dataset ds = make_reference(20, 2);
  ds.feature_names.clear();
  EXPECT_THROW(explainer.fit(ds), std::invalid_argument);
}

TEST(HealthExplainer, ExplainBeforeFitThrows) {
  HealthExplainer explainer;
  EXPECT_THROW(explainer.explain(std::vector<double>{1.0}, 1, 1, 0.9),
               std::logic_error);
}

TEST(HealthExplainer, FlagsElevatedCounters) {
  HealthExplainer explainer;
  explainer.fit(make_reference(100, 3));
  // Drive with exploding media errors and controller events.
  const std::vector<double> sick{99.0, 80.0, 12.0, 0.2};
  const auto report = explainer.explain(sick, 42, 100, 0.97);
  ASSERT_GE(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[0].feature, "S_14");  // most anomalous
  EXPECT_GT(report.findings[0].severity, 10.0);
  // W_11 also present.
  bool has_w11 = false;
  for (const auto& f : report.findings) has_w11 |= f.feature == "W_11";
  EXPECT_TRUE(has_w11);
}

TEST(HealthExplainer, HealthyDriveHasNoFindings) {
  HealthExplainer explainer;
  explainer.fit(make_reference(100, 4));
  const std::vector<double> fine{100.0, 2.0, 0.5, 0.2};
  const auto report = explainer.explain(fine, 7, 50, 0.05);
  EXPECT_TRUE(report.findings.empty());
}

TEST(HealthExplainer, SpareDepletionInverted) {
  HealthExplainer explainer;
  explainer.fit(make_reference(100, 5));
  // Spare collapsed; everything else nominal.
  const std::vector<double> depleted{40.0, 2.0, 0.5, 0.2};
  const auto report = explainer.explain(depleted, 9, 60, 0.8);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].feature, "S_3");
}

TEST(HealthExplainer, TopKLimitsFindings) {
  HealthExplainer explainer;
  explainer.fit(make_reference(100, 6));
  const std::vector<double> bad{0.0, 500.0, 50.0, 20.0};
  const auto report = explainer.explain(bad, 1, 1, 1.0, /*top_k=*/2);
  EXPECT_EQ(report.findings.size(), 2u);
}

TEST(HealthExplainer, ArityMismatchThrows) {
  HealthExplainer explainer;
  explainer.fit(make_reference(50, 7));
  EXPECT_THROW(explainer.explain(std::vector<double>{1.0}, 1, 1, 0.5),
               std::invalid_argument);
}

TEST(HealthReport, RendersReadably) {
  HealthReport report;
  report.drive_id = 10000001;
  report.day = 365;
  report.risk_score = 0.93;
  report.findings.push_back(
      {"S_14", "Media and Data Integrity Errors", 77.0, 2.0, 30.0});
  const std::string text = report.to_string();
  EXPECT_NE(text.find("10000001"), std::string::npos);
  EXPECT_NE(text.find("2022-01-01"), std::string::npos);
  EXPECT_NE(text.find("S_14"), std::string::npos);
  EXPECT_NE(text.find("Media and Data"), std::string::npos);
}

TEST(HealthReport, EmptyFindingsMessage) {
  HealthReport report;
  EXPECT_NE(report.to_string().find("no single feature"), std::string::npos);
}

TEST(DescribeFeature, CoversAllFamilies) {
  EXPECT_EQ(describe_feature("S_12"), "Power On Hours");
  EXPECT_EQ(describe_feature("F"), "FirmwareVersion (label-encoded)");
  EXPECT_EQ(describe_feature("W_7"), "The device has a bad block");
  EXPECT_EQ(describe_feature("B_7B"), "INACCESSIBLE_BOOT_DEVICE");
  EXPECT_EQ(describe_feature("unknown_thing"), "unknown_thing");
}

}  // namespace
}  // namespace mfpa::core
