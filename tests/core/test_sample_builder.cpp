#include "core/sample_builder.hpp"

#include <gtest/gtest.h>

namespace mfpa::core {
namespace {

/// Drive whose records carry recognizable values: S_1 = day, W counts = 1/day.
ProcessedDrive make_drive(std::uint64_t id, const std::vector<DayIndex>& days,
                          bool failed = false, DayIndex failure_day = -1) {
  ProcessedDrive d;
  d.drive_id = id;
  d.vendor = 0;
  d.failed = failed;
  d.failure_day = failure_day;
  double w_cum = 0.0;
  for (DayIndex day : days) {
    ProcessedRecord r;
    r.day = day;
    r.firmware = "I_F_1";
    r.smart[0] = static_cast<double>(day);
    w_cum += 1.0;
    r.w_cum.fill(w_cum);
    r.b_cum.fill(w_cum);
    d.records.push_back(r);
  }
  return d;
}

data::LabelEncoder encoder() {
  data::LabelEncoder enc;
  enc.fit({"I_F_1", "I_F_2"});
  return enc;
}

IdentifiedFailure failure_at(std::uint64_t id, DayIndex day) {
  IdentifiedFailure f;
  f.drive_id = id;
  f.labeled_failure_day = day;
  return f;
}

TEST(SampleBuilder, RequiresEncoderForFirmwareGroups) {
  SampleConfig cfg;
  cfg.group = FeatureGroup::kSFWB;
  EXPECT_THROW(SampleBuilder(cfg, nullptr), std::invalid_argument);
  cfg.group = FeatureGroup::kS;
  EXPECT_NO_THROW(SampleBuilder(cfg, nullptr));
}

TEST(SampleBuilder, RejectsBadWindows) {
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.positive_window = 0;
  EXPECT_THROW(SampleBuilder(cfg, nullptr), std::invalid_argument);
}

TEST(SampleBuilder, FeatureVectorMatchesGroupArity) {
  const auto enc = encoder();
  for (FeatureGroup g : all_feature_groups()) {
    SampleConfig cfg;
    cfg.group = g;
    const SampleBuilder builder(cfg, &enc);
    const auto drive = make_drive(1, {5});
    EXPECT_EQ(builder.features_of(drive.records[0]).size(),
              feature_count_of(g));
    EXPECT_EQ(builder.feature_names().size(), feature_count_of(g));
  }
}

TEST(SampleBuilder, FirmwareEncodedInFeatureVector) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kSF;
  const SampleBuilder builder(cfg, &enc);
  auto drive = make_drive(1, {5});
  drive.records[0].firmware = "I_F_2";
  const auto row = builder.features_of(drive.records[0]);
  EXPECT_DOUBLE_EQ(row[16], 1.0);  // code of I_F_2
  drive.records[0].firmware = "UNSEEN";
  EXPECT_DOUBLE_EQ(builder.features_of(drive.records[0])[16],
                   enc.unknown_code());
}

TEST(SampleBuilder, PositiveWindowMembership) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.positive_window = 7;
  cfg.neg_per_pos = 0.0;  // keep all negatives for deterministic counting
  const SampleBuilder builder(cfg, &enc);

  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {80, 90, 94, 97, 100}, true, 100));
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  const auto ds = builder.build(drives, failures);
  // Window [94, 100]: records at 94, 97, 100 are positive; 80 and 90 are
  // outside and (belonging to a faulty drive) not used as negatives either.
  EXPECT_EQ(ds.positives(), 3u);
  EXPECT_EQ(ds.negatives(), 0u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.meta[i].day, 94);
    EXPECT_LE(ds.meta[i].day, 100);
  }
}

TEST(SampleBuilder, LookaheadShiftsWindowBack) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.positive_window = 3;
  cfg.lookahead = 10;
  cfg.neg_per_pos = 0.0;
  const SampleBuilder builder(cfg, &enc);
  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {86, 88, 89, 90, 95, 100}, true, 100));
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  const auto ds = builder.build(drives, failures);
  // Window = [100-10-2, 100-10] = [88, 90].
  EXPECT_EQ(ds.positives(), 3u);
  for (const auto& m : ds.meta) {
    EXPECT_GE(m.day, 88);
    EXPECT_LE(m.day, 90);
  }
}

TEST(SampleBuilder, NegativeRatioRespected) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.positive_window = 7;
  cfg.neg_per_pos = 3.0;
  const SampleBuilder builder(cfg, &enc);
  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {98, 99, 100}, true, 100));
  std::vector<DayIndex> many_days(200);
  for (int i = 0; i < 200; ++i) many_days[static_cast<std::size_t>(i)] = i;
  drives.push_back(make_drive(2, many_days));
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  const auto ds = builder.build(drives, failures);
  EXPECT_EQ(ds.positives(), 3u);
  EXPECT_EQ(ds.negatives(), 9u);
}

TEST(SampleBuilder, NegativesComeOnlyFromHealthyDrives) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.neg_per_pos = 100.0;
  const SampleBuilder builder(cfg, &enc);
  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {1, 50, 99, 100}, true, 100));
  drives.push_back(make_drive(2, {1, 2, 3}));
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  const auto ds = builder.build(drives, failures);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.y[i] == 0) {
      EXPECT_EQ(ds.meta[i].drive_id, 2u);
    }
  }
}

TEST(SampleBuilder, DeterministicNegativeSampling) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.seed = 5;
  const SampleBuilder a(cfg, &enc), b(cfg, &enc);
  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {99, 100}, true, 100));
  std::vector<DayIndex> days(100);
  for (int i = 0; i < 100; ++i) days[static_cast<std::size_t>(i)] = i;
  drives.push_back(make_drive(2, days));
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  EXPECT_EQ(a.build(drives, failures).meta, b.build(drives, failures).meta);
}

TEST(SampleBuilder, SequenceRowsFlattenHistory) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.sequences = true;
  cfg.seq_len = 3;
  cfg.neg_per_pos = 0.0;
  const SampleBuilder builder(cfg, &enc);
  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {97, 98, 99, 100}, true, 100));
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  const auto ds = builder.build(drives, failures);
  EXPECT_EQ(ds.num_features(), 16u * 3u);
  // For the sample at day 100, the S_1 slots should read 98, 99, 100.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.meta[i].day == 100) {
      EXPECT_DOUBLE_EQ(ds.X(i, 0), 98.0);
      EXPECT_DOUBLE_EQ(ds.X(i, 16), 99.0);
      EXPECT_DOUBLE_EQ(ds.X(i, 32), 100.0);
    }
  }
}

TEST(SampleBuilder, SequencePadsShortHistory) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.sequences = true;
  cfg.seq_len = 4;
  cfg.neg_per_pos = 0.0;
  const SampleBuilder builder(cfg, &enc);
  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {100}, true, 100));  // single record
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  const auto ds = builder.build(drives, failures);
  ASSERT_EQ(ds.size(), 1u);
  // All four timesteps replicate the only record.
  for (int t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(ds.X(0, static_cast<std::size_t>(t) * 16), 100.0);
  }
}

TEST(SampleBuilder, SequenceFeatureNamesPrefixed) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.sequences = true;
  cfg.seq_len = 2;
  const SampleBuilder builder(cfg, &enc);
  const auto names = builder.feature_names();
  EXPECT_EQ(names[0], "t-1_S_1");
  EXPECT_EQ(names[16], "t-0_S_1");
}

TEST(SampleBuilder, DeltasAppendRateOfChange) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.include_deltas = true;
  cfg.delta_days = 7;
  cfg.neg_per_pos = 0.0;
  const SampleBuilder builder(cfg, &enc);
  EXPECT_EQ(builder.feature_names().size(), 32u);
  EXPECT_EQ(builder.feature_names()[16], "d7_S_1");

  std::vector<ProcessedDrive> drives;
  // Records at days 80, 90, 95, 100 with S_1 = day.
  drives.push_back(make_drive(1, {80, 90, 95, 100}, true, 100));
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  const auto ds = builder.build(drives, failures);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.meta[i].day == 100) {
      // Anchor: newest record <= day 93 is day 90; delta S_1 = 100 - 90.
      EXPECT_DOUBLE_EQ(ds.X(i, 16), 10.0);
    }
    if (ds.meta[i].day == 95) {
      // Anchor day <= 88 -> record at 80; delta = 15.
      EXPECT_DOUBLE_EQ(ds.X(i, 16), 15.0);
    }
  }
}

TEST(SampleBuilder, DeltasZeroWithoutHistory) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.include_deltas = true;
  cfg.neg_per_pos = 0.0;
  const SampleBuilder builder(cfg, &enc);
  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {99, 100}, true, 100));  // no 7-day-old record
  std::unordered_map<std::uint64_t, IdentifiedFailure> failures{
      {1, failure_at(1, 100)}};
  const auto ds = builder.build(drives, failures);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t c = 16; c < 32; ++c) {
      EXPECT_DOUBLE_EQ(ds.X(i, c), 0.0);
    }
  }
}

TEST(SampleBuilder, DeltasAndSequencesMutuallyExclusive) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  cfg.include_deltas = true;
  cfg.sequences = true;
  EXPECT_THROW(SampleBuilder(cfg, &enc), std::invalid_argument);
}

TEST(SampleBuilder, PositivesAtDistanceUsesGroundTruth) {
  const auto enc = encoder();
  SampleConfig cfg;
  cfg.group = FeatureGroup::kS;
  const SampleBuilder builder(cfg, &enc);
  std::vector<ProcessedDrive> drives;
  drives.push_back(make_drive(1, {80, 85, 90, 95, 100}, true, 100));
  drives.push_back(make_drive(2, {80, 85, 90}));  // healthy: excluded
  const auto ds = builder.build_positives_at_distance(drives, 5, 10);
  // Distances: 20, 15, 10, 5, 0 -> days 90 and 95 qualify.
  EXPECT_EQ(ds.size(), 2u);
  for (const auto& m : ds.meta) {
    EXPECT_TRUE(m.day == 90 || m.day == 95);
  }
  EXPECT_THROW(builder.build_positives_at_distance(drives, 10, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace mfpa::core
