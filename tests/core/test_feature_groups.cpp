#include "core/feature_groups.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mfpa::core {
namespace {

TEST(FeatureGroups, TableVCounts) {
  // Paper Table V: SFWB=45, SFW=22, SFB=40, SF=17, S=16, W=5, B=23.
  EXPECT_EQ(feature_count_of(FeatureGroup::kSFWB), 45u);
  EXPECT_EQ(feature_count_of(FeatureGroup::kSFW), 22u);
  EXPECT_EQ(feature_count_of(FeatureGroup::kSFB), 40u);
  EXPECT_EQ(feature_count_of(FeatureGroup::kSF), 17u);
  EXPECT_EQ(feature_count_of(FeatureGroup::kS), 16u);
  EXPECT_EQ(feature_count_of(FeatureGroup::kW), 5u);
  EXPECT_EQ(feature_count_of(FeatureGroup::kB), 23u);
}

TEST(FeatureGroups, AllGroupsListed) {
  EXPECT_EQ(all_feature_groups().size(), kNumFeatureGroups);
}

TEST(FeatureGroups, NameRoundTrip) {
  for (FeatureGroup g : all_feature_groups()) {
    EXPECT_EQ(feature_group_from_name(feature_group_name(g)), g);
  }
  EXPECT_THROW(feature_group_from_name("XYZ"), std::invalid_argument);
}

TEST(FeatureGroups, SfwbContainsEveryFamilyOnce) {
  const auto names = feature_names_of(FeatureGroup::kSFWB);
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());  // no duplicates
  EXPECT_TRUE(unique.contains("S_1"));
  EXPECT_TRUE(unique.contains("S_16"));
  EXPECT_TRUE(unique.contains("F"));
  EXPECT_TRUE(unique.contains("W_161"));
  EXPECT_TRUE(unique.contains("B_7A"));
  EXPECT_TRUE(unique.contains("B_7B"));
}

TEST(FeatureGroups, SGroupHasNoEventFeatures) {
  for (const auto& name : feature_names_of(FeatureGroup::kS)) {
    EXPECT_EQ(name.rfind("S_", 0), 0u) << name;
  }
}

TEST(FeatureGroups, WGroupIsTheFiveTrackedEvents) {
  const auto names = feature_names_of(FeatureGroup::kW);
  EXPECT_EQ(names, (std::vector<std::string>{"W_7", "W_11", "W_49", "W_51",
                                             "W_161"}));
}

TEST(FeatureGroups, OrderIsSmartFirmwareWindowsBsod) {
  const auto names = feature_names_of(FeatureGroup::kSFWB);
  EXPECT_EQ(names[0], "S_1");
  EXPECT_EQ(names[15], "S_16");
  EXPECT_EQ(names[16], "F");
  EXPECT_EQ(names[17], "W_7");
  EXPECT_EQ(names[22], "B_23");
}

TEST(FeatureGroups, BNamesMatchCatalog) {
  EXPECT_EQ(bsod_feature_names().size(), 23u);
  EXPECT_EQ(bsod_feature_names().front(), "B_23");
  EXPECT_EQ(bsod_feature_names().back(), "B_C00");
}

}  // namespace
}  // namespace mfpa::core
