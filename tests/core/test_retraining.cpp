#include "core/retraining.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sim/fleet.hpp"

namespace mfpa::core {
namespace {

class RetrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetSimulator fleet(sim::small_scenario(77));
    telemetry_ = new std::vector<sim::DriveTimeSeries>(fleet.generate_telemetry());
    tickets_ = new std::vector<sim::TroubleTicket>(fleet.tickets());
  }
  static void TearDownTestSuite() {
    delete tickets_;
    delete telemetry_;
  }
  static MfpaConfig base_config() {
    MfpaConfig config;
    config.vendor = 0;
    config.seed = 77;
    config.hyperparams = {{"n_trees", 20.0}};  // keep the replay quick
    return config;
  }
  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static std::vector<sim::TroubleTicket>* tickets_;
};

std::vector<sim::DriveTimeSeries>* RetrainingTest::telemetry_ = nullptr;
std::vector<sim::TroubleTicket>* RetrainingTest::tickets_ = nullptr;

TEST_F(RetrainingTest, WalksEveryMonthAfterTraining) {
  RetrainingScheduler scheduler(base_config(), RetrainingPolicy{});
  const auto months = scheduler.run(*telemetry_, *tickets_, 240);
  ASSERT_GE(months.size(), 6u);
  for (std::size_t i = 1; i < months.size(); ++i) {
    EXPECT_EQ(months[i].month, months[i - 1].month + 1);
  }
}

TEST_F(RetrainingTest, CadenceCapsModelAge) {
  RetrainingPolicy policy;
  policy.cadence_months = 2;
  policy.fpr_trip_wire = 0.0;  // cadence only
  RetrainingScheduler scheduler(base_config(), policy);
  const auto months = scheduler.run(*telemetry_, *tickets_, 240);
  for (const auto& m : months) {
    EXPECT_LT(m.model_age_months, policy.cadence_months);
  }
  EXPECT_GT(scheduler.retrain_count(), 0);
}

TEST_F(RetrainingTest, DisabledPolicyNeverRetrains) {
  RetrainingPolicy policy;
  policy.enabled = false;
  RetrainingScheduler scheduler(base_config(), policy);
  const auto months = scheduler.run(*telemetry_, *tickets_, 240);
  EXPECT_EQ(scheduler.retrain_count(), 0);
  for (const auto& m : months) EXPECT_FALSE(m.retrained_after);
  // Model age grows monotonically when never refreshed.
  for (std::size_t i = 1; i < months.size(); ++i) {
    EXPECT_EQ(months[i].model_age_months, months[i - 1].model_age_months + 1);
  }
}

TEST_F(RetrainingTest, RetrainingControlsLateFpr) {
  // The headline property: with periodic iteration the late-deployment FPR
  // stays at or below the never-retrain baseline.
  RetrainingPolicy never;
  never.enabled = false;
  RetrainingPolicy bimonthly;
  bimonthly.cadence_months = 2;
  RetrainingScheduler frozen(base_config(), never);
  RetrainingScheduler iterated(base_config(), bimonthly);
  const auto frozen_months = frozen.run(*telemetry_, *tickets_, 240);
  const auto iterated_months = iterated.run(*telemetry_, *tickets_, 240);
  ASSERT_EQ(frozen_months.size(), iterated_months.size());
  ASSERT_GE(frozen_months.size(), 4u);
  // Average FPR over the last half of the deployment.
  auto late_fpr = [](const std::vector<DeploymentMonth>& months) {
    double fpr = 0.0;
    std::size_t n = 0;
    for (std::size_t i = months.size() / 2; i < months.size(); ++i) {
      fpr += months[i].cm.fpr();
      ++n;
    }
    return n ? fpr / static_cast<double>(n) : 0.0;
  };
  EXPECT_LE(late_fpr(iterated_months), late_fpr(frozen_months) + 0.01);
}

TEST_F(RetrainingTest, TripWireFiresOnHighFpr) {
  RetrainingPolicy trigger_happy;
  trigger_happy.cadence_months = 100;  // cadence effectively off
  trigger_happy.fpr_trip_wire = 1e-9;  // any FP trips it
  RetrainingScheduler scheduler(base_config(), trigger_happy);
  scheduler.run(*telemetry_, *tickets_, 240);
  EXPECT_GT(scheduler.retrain_count(), 0);
}

TEST_F(RetrainingTest, PublishHookReceivesEveryShippedModel) {
  RetrainingPolicy policy;
  policy.cadence_months = 2;
  policy.fpr_trip_wire = 0.0;
  RetrainingScheduler scheduler(base_config(), policy);
  int publishes = 0;
  DayIndex last_hi = std::numeric_limits<DayIndex>::min();
  scheduler.set_publish_hook([&](const ml::Classifier& model,
                                 const data::LabelEncoder& encoder,
                                 DayIndex lo, DayIndex hi) {
    ++publishes;
    EXPECT_EQ(model.name(), "RF");
    EXPECT_FALSE(encoder.classes().empty());
    EXPECT_LE(lo, hi);
    // Each refresh trains on a strictly longer window.
    EXPECT_GT(hi, last_hi);
    last_hi = hi;
  });
  scheduler.run(*telemetry_, *tickets_, 240);
  // The initial train ships too, not only the refreshes.
  EXPECT_EQ(publishes, scheduler.retrain_count() + 1);
}

TEST_F(RetrainingTest, ThrowsWithoutDrives) {
  RetrainingScheduler scheduler(base_config(), RetrainingPolicy{});
  const std::vector<sim::DriveTimeSeries> empty;
  EXPECT_THROW(scheduler.run(empty, *tickets_, 240), std::runtime_error);
}

}  // namespace
}  // namespace mfpa::core
