#include "core/mfpa.hpp"

#include <gtest/gtest.h>

#include "sim/fleet.hpp"

namespace mfpa::core {
namespace {

/// Shared small-scenario fixture: simulating once keeps the suite fast.
class MfpaPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetSimulator fleet(sim::small_scenario(11));
    telemetry_ = new std::vector<sim::DriveTimeSeries>(fleet.generate_telemetry());
    tickets_ = new std::vector<sim::TroubleTicket>(fleet.tickets());
  }
  static void TearDownTestSuite() {
    delete telemetry_;
    delete tickets_;
    telemetry_ = nullptr;
    tickets_ = nullptr;
  }
  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static std::vector<sim::TroubleTicket>* tickets_;
};

std::vector<sim::DriveTimeSeries>* MfpaPipelineTest::telemetry_ = nullptr;
std::vector<sim::TroubleTicket>* MfpaPipelineTest::tickets_ = nullptr;

TEST_F(MfpaPipelineTest, RunProducesSaneReport) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  EXPECT_GT(report.train_size, 0u);
  EXPECT_GT(report.test_size, 0u);
  EXPECT_GT(report.test_positives, 0u);
  EXPECT_EQ(report.test_scores.size(), report.test_size);
  EXPECT_EQ(report.test_labels.size(), report.test_size);
  EXPECT_EQ(report.test_meta.size(), report.test_size);
  EXPECT_GE(report.auc, 0.5);
  EXPECT_LE(report.auc, 1.0);
  EXPECT_GT(report.cm.tpr(), 0.5);   // small scenario: loose bound
  EXPECT_LT(report.cm.fpr(), 0.25);
  EXPECT_TRUE(pipeline.trained());
}

TEST_F(MfpaPipelineTest, TimeSplitHasNoFutureInTraining) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  for (const auto& m : report.test_meta) {
    EXPECT_GT(m.day, report.split_day);
  }
}

TEST_F(MfpaPipelineTest, StagesCoverWholePipeline) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  std::vector<std::string> names;
  for (const auto& s : report.stages) names.push_back(s.name);
  for (const char* expected :
       {"preprocess", "failure_labeling", "feature_engineering",
        "segmentation", "training", "threshold_selection", "prediction"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  for (const auto& s : report.stages) EXPECT_GE(s.seconds, 0.0);
}

TEST_F(MfpaPipelineTest, VendorFilterRestrictsDrives) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  for (const auto& m : report.test_meta) EXPECT_EQ(m.vendor, 0);
}

TEST_F(MfpaPipelineTest, DeterministicGivenSeed) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 17;
  MfpaPipeline a(config), b(config);
  const auto ra = a.run(*telemetry_, *tickets_);
  const auto rb = b.run(*telemetry_, *tickets_);
  EXPECT_EQ(ra.test_scores, rb.test_scores);
  EXPECT_EQ(ra.cm.tp, rb.cm.tp);
  EXPECT_EQ(ra.cm.fp, rb.cm.fp);
}

TEST_F(MfpaPipelineTest, FeatureGroupsAllRunnable) {
  for (FeatureGroup g : all_feature_groups()) {
    MfpaConfig config;
    config.vendor = 0;
    config.group = g;
    config.seed = 11;
    config.hyperparams = {{"n_trees", 15.0}};  // keep the sweep quick
    MfpaPipeline pipeline(config);
    const auto report = pipeline.run(*telemetry_, *tickets_);
    EXPECT_GT(report.auc, 0.5) << feature_group_name(g);
  }
}

TEST_F(MfpaPipelineTest, FixedThresholdHonored) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  config.decision_threshold = 0.9;
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  EXPECT_DOUBLE_EQ(report.threshold, 0.9);
}

TEST_F(MfpaPipelineTest, TunedThresholdInRange) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  config.decision_threshold = -1.0;  // out-of-fold tuning
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  EXPECT_GT(report.threshold, 0.0);
  EXPECT_LT(report.threshold, 1.0);
}

TEST_F(MfpaPipelineTest, RandomSplitModeRuns) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  config.time_split = false;
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  EXPECT_GT(report.test_size, 0u);
  // Random split mixes time: test samples on both sides of the split day.
  bool before = false, after = false;
  for (const auto& m : report.test_meta) {
    (m.day <= report.split_day ? before : after) = true;
  }
  EXPECT_TRUE(before);
  EXPECT_TRUE(after);
}

TEST_F(MfpaPipelineTest, ScoreRejectsBeforeRun) {
  MfpaPipeline pipeline(MfpaConfig{});
  data::Dataset ds;
  EXPECT_THROW(pipeline.score(ds), std::logic_error);
  EXPECT_THROW(pipeline.model(), std::logic_error);
  EXPECT_THROW(pipeline.firmware_encoder(), std::logic_error);
  EXPECT_THROW(pipeline.make_builder(), std::logic_error);
}

TEST_F(MfpaPipelineTest, InvalidTrainFractionRejected) {
  MfpaConfig config;
  config.train_fraction = 1.5;
  EXPECT_THROW(MfpaPipeline{config}, std::invalid_argument);
}

TEST_F(MfpaPipelineTest, CnnLstmUsesSequences) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  config.algorithm = "CNN_LSTM";
  config.seq_len = 3;
  config.hyperparams = {{"epochs", 2.0}, {"channels", 4.0}, {"hidden", 6.0}};
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  EXPECT_GT(report.test_size, 0u);
  EXPECT_GT(report.auc, 0.4);
}

TEST_F(MfpaPipelineTest, ImtLabelingViaThetaZeroDegradesLabels) {
  // theta = 0 labels failures at the repair ticket instead of the last
  // healthy observation; positive windows then cover post-mortem days with
  // no records, so fewer positives are built.
  MfpaConfig with_theta;
  with_theta.vendor = 0;
  with_theta.seed = 11;
  MfpaConfig without;
  without.vendor = 0;
  without.seed = 11;
  without.theta = 0;
  MfpaPipeline a(with_theta), b(without);
  const auto ra = a.run(*telemetry_, *tickets_);
  const auto rb = b.run(*telemetry_, *tickets_);
  EXPECT_GE(ra.train_positives + ra.test_positives,
            rb.train_positives + rb.test_positives);
}

TEST_F(MfpaPipelineTest, DeltaFeaturesDoubleTheColumns) {
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 11;
  config.include_deltas = true;
  MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);
  EXPECT_GT(report.test_size, 0u);
  EXPECT_GT(report.auc, 0.8);
  const auto names = pipeline.make_builder().feature_names();
  EXPECT_EQ(names.size(), 90u);  // 45 SFWB + 45 deltas
  EXPECT_EQ(names[45], "d7_S_1");
}

TEST_F(MfpaPipelineTest, FprWeightRaisesTunedThreshold) {
  MfpaConfig lenient;
  lenient.vendor = 0;
  lenient.seed = 11;
  lenient.decision_threshold = -1.0;
  lenient.fpr_weight = 1.0;
  MfpaConfig strict = lenient;
  strict.fpr_weight = 10.0;
  MfpaPipeline a(lenient), b(strict);
  const auto ra = a.run(*telemetry_, *tickets_);
  const auto rb = b.run(*telemetry_, *tickets_);
  EXPECT_GE(rb.threshold, ra.threshold);
  EXPECT_LE(rb.cm.fpr(), ra.cm.fpr() + 1e-9);
}

TEST(MfpaPipeline, ThrowsWithoutUsableDrives) {
  MfpaConfig config;
  MfpaPipeline pipeline(config);
  const std::vector<sim::DriveTimeSeries> empty_telemetry;
  const std::vector<sim::TroubleTicket> no_tickets;
  EXPECT_THROW(pipeline.run(empty_telemetry, no_tickets), std::runtime_error);
}

TEST(MfpaPipeline, ThrowsWithoutPositiveSamples) {
  // Telemetry with healthy drives only and no tickets: the builder cannot
  // produce positives and the pipeline must say so rather than train a
  // degenerate model.
  sim::FleetSimulator fleet(sim::tiny_scenario(99));
  std::vector<sim::DriveTimeSeries> healthy_only;
  for (const auto& s : fleet.generate_telemetry()) {
    if (!s.failed) healthy_only.push_back(s);
    if (healthy_only.size() >= 20) break;
  }
  ASSERT_GE(healthy_only.size(), 5u);
  MfpaConfig config;
  config.seed = 99;
  MfpaPipeline pipeline(config);
  EXPECT_THROW(pipeline.run(healthy_only, {}), std::runtime_error);
}

}  // namespace
}  // namespace mfpa::core
