#include "core/preprocess.hpp"

#include <gtest/gtest.h>

namespace mfpa::core {
namespace {

/// Builds a raw series with records on the given days; SMART S_12 (power-on
/// hours) is set to 10*day so interpolation is checkable, and every record
/// logs exactly one W_7 event and one B_23 crash.
sim::DriveTimeSeries series_on_days(const std::vector<DayIndex>& days,
                                    int vendor = 0) {
  sim::DriveTimeSeries s;
  s.drive_id = 42;
  s.vendor = vendor;
  for (DayIndex d : days) {
    sim::DailyRecord rec;
    rec.day = d;
    rec.smart[static_cast<std::size_t>(sim::SmartAttr::kPowerOnHours)] =
        static_cast<float>(10 * d);
    rec.firmware_index = 0;
    rec.w[0] = 1;  // W_7
    rec.b[0] = 1;  // B_23
    s.records.push_back(rec);
  }
  return s;
}

TEST(Preprocess, ContiguousSeriesPassesThrough) {
  const Preprocessor pre;
  const auto out = pre.process_drive(series_on_days({10, 11, 12, 13}));
  ASSERT_EQ(out.records.size(), 4u);
  for (const auto& r : out.records) EXPECT_FALSE(r.synthetic);
}

TEST(Preprocess, CumulativeCountsAccumulate) {
  const Preprocessor pre;
  const auto out = pre.process_drive(series_on_days({10, 11, 12}));
  EXPECT_DOUBLE_EQ(out.records[0].w_cum[0], 1.0);
  EXPECT_DOUBLE_EQ(out.records[1].w_cum[0], 2.0);
  EXPECT_DOUBLE_EQ(out.records[2].w_cum[0], 3.0);
  EXPECT_DOUBLE_EQ(out.records[2].b_cum[0], 3.0);
}

TEST(Preprocess, ShortGapFilledWithInterpolation) {
  const Preprocessor pre;  // fill_gap = 3
  const auto out = pre.process_drive(series_on_days({10, 13, 14}));
  // Gap 10 -> 13 is 3 days: days 11 and 12 are synthesized.
  ASSERT_EQ(out.records.size(), 5u);
  EXPECT_EQ(out.records[1].day, 11);
  EXPECT_TRUE(out.records[1].synthetic);
  EXPECT_EQ(out.records[2].day, 12);
  EXPECT_TRUE(out.records[2].synthetic);
  // POH interpolates linearly between 100 and 130.
  const std::size_t poh = static_cast<std::size_t>(sim::SmartAttr::kPowerOnHours);
  EXPECT_NEAR(out.records[1].smart[poh], 110.0, 1e-9);
  EXPECT_NEAR(out.records[2].smart[poh], 120.0, 1e-9);
}

TEST(Preprocess, FilledCumulativeIsMonotone) {
  const Preprocessor pre;
  const auto out = pre.process_drive(series_on_days({10, 13, 14, 16}));
  for (std::size_t i = 1; i < out.records.size(); ++i) {
    EXPECT_GE(out.records[i].w_cum[0], out.records[i - 1].w_cum[0]);
    EXPECT_GE(out.records[i].b_cum[0], out.records[i - 1].b_cum[0]);
  }
}

TEST(Preprocess, MediumGapKeptWithoutFill) {
  const Preprocessor pre;  // fill only <= 3; drop at >= 10
  const auto out = pre.process_drive(series_on_days({10, 16, 17}));
  // Gap of 6 days: no fill, no cut.
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.records[1].day, 16);
  EXPECT_FALSE(out.records[1].synthetic);
}

TEST(Preprocess, LongGapCutsSegment) {
  const Preprocessor pre;  // drop_gap = 10
  // Segment 1: days 1,2 (too short, dropped); segment 2: days 30,31,32.
  const auto out = pre.process_drive(series_on_days({1, 2, 30, 31, 32}));
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.records.front().day, 30);
  EXPECT_EQ(out.dropped_records, 2u);
}

TEST(Preprocess, OnlyMostRecentUsableSegmentKept) {
  const Preprocessor pre;
  const auto out =
      pre.process_drive(series_on_days({1, 2, 3, 30, 31, 32}));
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.records.front().day, 30);
  EXPECT_EQ(out.dropped_records, 3u);
}

TEST(Preprocess, TrailingShortSegmentDropped) {
  // A short burst of observations after a long gap (e.g. the user powering
  // up a dying machine twice) is unusable; the earlier long segment wins.
  const Preprocessor pre;
  const auto out = pre.process_drive(series_on_days({1, 2, 3, 4, 30, 31}));
  ASSERT_EQ(out.records.size(), 4u);
  EXPECT_EQ(out.records.back().day, 4);
  EXPECT_EQ(out.dropped_records, 2u);
}

TEST(Preprocess, ConfigurableGapPolicy) {
  PreprocessConfig cfg;
  cfg.drop_gap = 5;
  cfg.fill_gap = 1;  // no filling
  const Preprocessor pre(cfg);
  const auto out = pre.process_drive(series_on_days({1, 2, 3, 8, 9, 10}));
  // Gap of 5 cuts; the later 3-record segment is kept.
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.records.front().day, 8);
  for (const auto& r : out.records) EXPECT_FALSE(r.synthetic);
}

TEST(Preprocess, BatchDropsUnusableDrives) {
  const Preprocessor pre;
  std::vector<sim::DriveTimeSeries> batch;
  batch.push_back(series_on_days({1, 2, 3, 4}));   // usable
  batch.push_back(series_on_days({5}));            // too few records
  batch.push_back(series_on_days({}));             // empty
  PreprocessStats stats;
  const auto out = pre.process(batch, &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.drives_in, 3u);
  EXPECT_EQ(stats.drives_out, 1u);
  EXPECT_EQ(stats.records_in, 5u);
}

TEST(Preprocess, StatsCountFilledAndLongGaps) {
  const Preprocessor pre;
  std::vector<sim::DriveTimeSeries> batch;
  batch.push_back(series_on_days({37, 39, 40, 41}));          // 1 fill (day 38)
  batch.push_back(series_on_days({1, 2, 3, 40, 41, 42}));     // 1 long gap
  PreprocessStats stats;
  pre.process(batch, &stats);
  EXPECT_EQ(stats.records_filled, 1u);
  EXPECT_EQ(stats.long_gaps, 1u);
  EXPECT_EQ(stats.records_dropped, 3u);  // pre-gap segment of drive 2
}

TEST(Preprocess, FirmwareVersionStringMapsCatalog) {
  EXPECT_EQ(firmware_version_string(0, 0), "I_F_1");
  EXPECT_EQ(firmware_version_string(0, 4), "I_F_5");
  EXPECT_EQ(firmware_version_string(1, 2), "II_F_3");
  // Out-of-catalog (drift release) synthesizes the next name.
  EXPECT_EQ(firmware_version_string(0, 5), "I_F_6");
  EXPECT_EQ(firmware_version_string(3, 2), "IV_F_3");
}

TEST(Preprocess, GroundTruthCarriedThrough) {
  const Preprocessor pre;
  auto raw = series_on_days({1, 2, 3});
  raw.failed = true;
  raw.failure_day = 3;
  const auto out = pre.process_drive(raw);
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.failure_day, 3);
  EXPECT_EQ(out.drive_id, 42u);
}

TEST(Preprocess, FirmwareEncoderCoversAllVersions) {
  const Preprocessor pre;
  std::vector<ProcessedDrive> drives;
  drives.push_back(pre.process_drive(series_on_days({1, 2, 3}, 0)));
  drives.push_back(pre.process_drive(series_on_days({1, 2, 3}, 1)));
  const auto encoder = Preprocessor::fit_firmware_encoder(drives);
  EXPECT_EQ(encoder.num_classes(), 2u);  // I_F_1 and II_F_1
  EXPECT_TRUE(encoder.contains("I_F_1"));
  EXPECT_TRUE(encoder.contains("II_F_1"));
}

}  // namespace
}  // namespace mfpa::core
