// Graceful-degradation ingestion: lenient CSV reads, RecordSanitizer
// semantics (duplicate-day idempotence, rollback drops, counter-reset
// re-basing, bad-value repair, quarantine), and the batch-vs-streaming
// equivalence invariant under every structured fault mode.
#include "core/robust_ingest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/string_util.hpp"
#include "core/preprocess.hpp"
#include "core/streaming.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fleet.hpp"
#include "sim/telemetry_io.hpp"

namespace mfpa::core {
namespace {

constexpr auto kPoh = static_cast<std::size_t>(sim::SmartAttr::kPowerOnHours);

RobustnessConfig lenient() {
  RobustnessConfig config;
  config.mode = IngestMode::kLenient;
  return config;
}

sim::DailyRecord raw_record(DayIndex day, float poh = 0.0f) {
  sim::DailyRecord r;
  r.day = day;
  r.smart[kPoh] = poh;
  r.w[0] = 1;
  return r;
}

/// One-drive CSV with `days.size()` rows, for line-surgery tests.
std::string small_csv(std::size_t rows = 5) {
  sim::DriveTimeSeries s;
  s.drive_id = 1;
  for (std::size_t i = 0; i < rows; ++i) {
    s.records.push_back(raw_record(static_cast<DayIndex>(i + 1),
                                   100.0f + 10.0f * static_cast<float>(i)));
  }
  std::stringstream ss;
  sim::write_telemetry_csv(ss, {s});
  return ss.str();
}

/// Replaces one comma-separated field of one line (0-based indices).
std::string patch_field(const std::string& csv, std::size_t line_idx,
                        std::size_t field_idx, const std::string& value) {
  auto lines = split(csv, '\n');
  auto fields = split(lines.at(line_idx), ',');
  fields.at(field_idx) = value;
  lines[line_idx] = join(fields, ",");
  return join(lines, "\n");
}

// ---------------------------------------------------------------------------
// Lenient / strict CSV reading
// ---------------------------------------------------------------------------

TEST(RobustIngest, StrictReadErrorNamesLineAndColumn) {
  // Header is line 1; the second data row is line 3. Field 1 is "vendor".
  const std::string csv = patch_field(small_csv(), 2, 1, "garbage");
  std::stringstream ss(csv);
  try {
    (void)sim::read_telemetry_csv(ss);
    FAIL() << "strict read of a bad cell must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("vendor"), std::string::npos) << what;
  }
}

TEST(RobustIngest, LenientReadSkipsBadRowsWithDiagnostics) {
  const std::string csv = patch_field(small_csv(), 2, 1, "garbage");
  std::stringstream ss(csv);
  IngestStats stats;
  const auto batch = sim::read_telemetry_csv(ss, lenient(), &stats);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].records.size(), 4u);  // one of five rows dropped
  EXPECT_EQ(stats.rows_read, 5u);
  EXPECT_EQ(stats.rows_dropped, 1u);
  EXPECT_EQ(stats.bad_cells, 1u);
  ASSERT_FALSE(stats.diagnostics.empty());
  EXPECT_NE(stats.diagnostics[0].find("line 3"), std::string::npos)
      << stats.diagnostics[0];
}

TEST(RobustIngest, LenientReadSurvivesShortRows) {
  std::string csv = small_csv();
  csv += "1,0,0,7\n";  // wrong arity
  std::stringstream ss(csv);
  IngestStats stats;
  const auto batch = sim::read_telemetry_csv(ss, lenient(), &stats);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].records.size(), 5u);
  EXPECT_EQ(stats.short_rows, 1u);
  EXPECT_EQ(stats.rows_dropped, 1u);
}

TEST(RobustIngest, LenientReadRepairsMalformedFirmware) {
  const std::string csv = patch_field(small_csv(), 1, 6, "fw_corrupt!");
  std::stringstream ss(csv);
  IngestStats stats;
  const auto batch = sim::read_telemetry_csv(ss, lenient(), &stats);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].records.size(), 5u);  // row kept, field repaired
  EXPECT_EQ(stats.firmware_repairs, 1u);
  EXPECT_EQ(batch[0].records[0].firmware_index, 0u);
}

TEST(RobustIngest, LenientTicketReadDropsBadRows) {
  std::stringstream ss(
      "sn,vendor,imt,category\n"
      "1,0,5,Not A Category\n"
      "2,1,9,Storage drive failure\n");
  IngestStats stats;
  const auto tickets = sim::read_tickets_csv(ss, lenient(), &stats);
  ASSERT_EQ(tickets.size(), 1u);
  EXPECT_EQ(tickets[0].drive_id, 2u);
  EXPECT_EQ(stats.tickets_dropped, 1u);
  ASSERT_FALSE(stats.diagnostics.empty());
  EXPECT_NE(stats.diagnostics[0].find("line 2"), std::string::npos)
      << stats.diagnostics[0];
}

// ---------------------------------------------------------------------------
// RecordSanitizer semantics
// ---------------------------------------------------------------------------

TEST(RobustIngest, StrictSanitizerThrowsOnNonIncreasingDays) {
  RecordSanitizer sanitizer;  // strict by default
  EXPECT_TRUE(sanitizer.sanitize(raw_record(10)).has_value());
  EXPECT_THROW((void)sanitizer.sanitize(raw_record(10)),
               std::invalid_argument);
  EXPECT_THROW((void)sanitizer.sanitize(raw_record(5)),
               std::invalid_argument);
}

TEST(RobustIngest, LenientDuplicateDayIsIdempotentDrop) {
  RecordSanitizer sanitizer(lenient());
  EXPECT_TRUE(sanitizer.sanitize(raw_record(10, 100.0f)).has_value());
  // The same day re-delivered (upload retry): dropped, no state change —
  // however many times it is retried.
  for (int retry = 0; retry < 3; ++retry) {
    EXPECT_FALSE(sanitizer.sanitize(raw_record(10, 100.0f)).has_value());
  }
  EXPECT_EQ(sanitizer.stats().duplicate_days, 3u);
  // The next day still sanitizes as if no retry ever happened.
  const auto next = sanitizer.sanitize(raw_record(11, 110.0f));
  ASSERT_TRUE(next.has_value());
  EXPECT_FLOAT_EQ(next->smart[kPoh], 110.0f);
}

TEST(RobustIngest, LenientClockRollbackIsDropped) {
  RecordSanitizer sanitizer(lenient());
  EXPECT_TRUE(sanitizer.sanitize(raw_record(10)).has_value());
  EXPECT_FALSE(sanitizer.sanitize(raw_record(4)).has_value());
  EXPECT_EQ(sanitizer.stats().clock_rollbacks, 1u);
  EXPECT_EQ(sanitizer.stats().rows_dropped, 1u);
  EXPECT_TRUE(sanitizer.sanitize(raw_record(11)).has_value());
}

TEST(RobustIngest, CounterResetIsRebasedOntoPriorPlateau) {
  RecordSanitizer sanitizer(lenient());
  (void)sanitizer.sanitize(raw_record(1, 100.0f));
  (void)sanitizer.sanitize(raw_record(2, 110.0f));
  // Firmware update resets power-on hours to 5; the effective value must
  // continue from the pre-reset plateau: 110 + 5 = 115.
  const auto rebased = sanitizer.sanitize(raw_record(3, 5.0f));
  ASSERT_TRUE(rebased.has_value());
  EXPECT_FLOAT_EQ(rebased->smart[kPoh], 115.0f);
  EXPECT_EQ(sanitizer.stats().counter_resets_rebased, 1u);
  // A second reset accumulates both plateaus: 110 + 5 + 2 = 117.
  const auto again = sanitizer.sanitize(raw_record(4, 2.0f));
  ASSERT_TRUE(again.has_value());
  EXPECT_FLOAT_EQ(again->smart[kPoh], 117.0f);
}

TEST(RobustIngest, BadValuesRepairedToLastGood) {
  RecordSanitizer sanitizer(lenient());
  (void)sanitizer.sanitize(raw_record(1, 100.0f));
  const auto nan_fixed =
      sanitizer.sanitize(raw_record(2, std::nanf("")));
  ASSERT_TRUE(nan_fixed.has_value());
  EXPECT_FLOAT_EQ(nan_fixed->smart[kPoh], 100.0f);
  const auto neg_fixed = sanitizer.sanitize(raw_record(3, -7.0f));
  ASSERT_TRUE(neg_fixed.has_value());
  EXPECT_FLOAT_EQ(neg_fixed->smart[kPoh], 100.0f);
  EXPECT_EQ(sanitizer.stats().values_repaired, 2u);
  EXPECT_EQ(sanitizer.stats().rows_repaired, 2u);
  // Good data afterwards passes through untouched.
  const auto good = sanitizer.sanitize(raw_record(4, 130.0f));
  ASSERT_TRUE(good.has_value());
  EXPECT_FLOAT_EQ(good->smart[kPoh], 130.0f);
}

TEST(RobustIngest, QuarantineTripsOnMajorityBadRows) {
  RecordSanitizer sanitizer(lenient());
  for (DayIndex day : {1, 2, 3}) (void)sanitizer.sanitize(raw_record(day));
  EXPECT_FALSE(sanitizer.quarantined(3));
  for (int i = 0; i < 10; ++i) (void)sanitizer.sanitize(raw_record(3));
  EXPECT_TRUE(sanitizer.quarantined(3));  // 10 of 13 delivered dropped
}

// ---------------------------------------------------------------------------
// Consumers: StreamingIngestor and batch Preprocessor under corruption
// ---------------------------------------------------------------------------

TEST(RobustIngest, StreamingLenientDuplicateDayIsIdempotent) {
  PreprocessConfig config;
  config.robustness = lenient();
  StreamingIngestor ingestor(1, 0, config);
  ingestor.ingest(raw_record(10));
  ingestor.ingest(raw_record(11));
  const auto before = ingestor.segment();
  EXPECT_TRUE(ingestor.ingest(raw_record(11)).empty());  // no throw
  EXPECT_EQ(ingestor.segment().size(), before.size());   // no state change
  EXPECT_EQ(ingestor.ingest_stats().duplicate_days, 1u);
  const auto produced = ingestor.ingest(raw_record(12));
  ASSERT_EQ(produced.size(), 1u);
  EXPECT_DOUBLE_EQ(produced[0].w_cum[0], 3.0);  // retry not double counted
}

TEST(RobustIngest, StreamingQuarantineMakesDriveUnusable) {
  PreprocessConfig config;
  config.robustness = lenient();
  StreamingIngestor ingestor(1, 0, config);
  for (DayIndex day : {1, 2, 3}) ingestor.ingest(raw_record(day));
  EXPECT_TRUE(ingestor.usable());
  for (int i = 0; i < 10; ++i) ingestor.ingest(raw_record(3));
  EXPECT_TRUE(ingestor.quarantined());
  EXPECT_FALSE(ingestor.usable());
}

TEST(RobustIngest, BatchLenientDropsRepeatedDriveIds) {
  sim::DriveTimeSeries a;
  a.drive_id = 7;
  for (DayIndex day : {1, 2, 3, 4}) a.records.push_back(raw_record(day));
  sim::DriveTimeSeries impostor = a;  // same id, delivered again
  PreprocessConfig config;
  config.robustness = lenient();
  const Preprocessor pre(config);
  IngestStats stats;
  const auto out = pre.process({a, impostor}, nullptr, &stats);
  ASSERT_EQ(out.size(), 1u);  // first occurrence wins
  EXPECT_EQ(stats.duplicate_drives, 1u);
}

TEST(RobustIngest, BatchStrictModeIsUnchangedByConfigDefault) {
  // The historical (strict) path must behave exactly as before: no
  // sanitation, no accounting.
  sim::FleetSimulator fleet(sim::tiny_scenario(61));
  const auto telemetry = fleet.generate_telemetry();
  const Preprocessor pre;
  IngestStats stats;
  (void)pre.process(telemetry, nullptr, &stats);
  EXPECT_TRUE(stats.clean());
}

TEST(RobustIngest, BatchAndStreamingAgreeUnderEveryStructuredFault) {
  // The streaming.hpp equivalence invariant, extended to corrupted input:
  // under the same RobustnessConfig, the batch Preprocessor and the
  // StreamingIngestor must produce identical ProcessedRecords for every
  // drive whose final segment the batch keeps.
  const std::vector<sim::FaultMode> structured = {
      sim::FaultMode::kDuplicateDay,    sim::FaultMode::kOutOfOrderUpload,
      sim::FaultMode::kClockRollback,   sim::FaultMode::kCounterReset,
      sim::FaultMode::kNanField,        sim::FaultMode::kNegativeField,
      sim::FaultMode::kSaturatedField,  sim::FaultMode::kDuplicateDriveId};
  sim::FleetSimulator fleet(sim::tiny_scenario(61));
  const auto clean = fleet.generate_telemetry();

  PreprocessConfig config;
  config.robustness = lenient();
  const Preprocessor batch(config);

  for (const auto mode : structured) {
    SCOPED_TRACE(sim::fault_mode_name(mode));
    sim::FaultInjector injector({{{mode, 0.05}}, 71});
    const auto corrupted = injector.corrupt(clean);
    ASSERT_GT(injector.stats().of(mode), 0u);

    std::size_t compared = 0;
    for (const auto& series : corrupted) {
      if (series.records.size() < 5) continue;
      const auto expected = batch.process_drive(series);
      if (expected.records.empty()) continue;  // quarantined or all dropped

      // "Batch kept the final segment" — judged against the *sanitized*
      // delivery sequence, since dropped raw tails don't count.
      RecordSanitizer probe(config.robustness);
      DayIndex last_kept = -1;
      bool any_kept = false;
      for (const auto& raw : series.records) {
        if (const auto kept = probe.sanitize(raw)) {
          last_kept = kept->day;
          any_kept = true;
        }
      }
      if (!any_kept || expected.records.back().day != last_kept) continue;

      StreamingIngestor ingestor(series.drive_id, series.vendor, config);
      for (const auto& raw : series.records) {
        ASSERT_NO_THROW(ingestor.ingest(raw));
      }
      const auto& streamed = ingestor.segment();
      ASSERT_EQ(streamed.size(), expected.records.size()) << series.drive_id;
      for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i].day, expected.records[i].day);
        EXPECT_EQ(streamed[i].synthetic, expected.records[i].synthetic);
        EXPECT_EQ(streamed[i].firmware, expected.records[i].firmware);
        EXPECT_EQ(streamed[i].w_cum, expected.records[i].w_cum);
        EXPECT_EQ(streamed[i].b_cum, expected.records[i].b_cum);
        EXPECT_EQ(streamed[i].smart, expected.records[i].smart);
      }
      ++compared;
      if (compared >= 30) break;
    }
    EXPECT_GE(compared, 5u);
  }
}

TEST(RobustIngest, LenientPipelineSurvivesTextualCorruption) {
  // CSV-level faults reach the pipeline only through the lenient reader;
  // the round-trip must not throw and must account for every mangled row.
  sim::FleetSimulator fleet(sim::tiny_scenario(61));
  std::stringstream wire;
  sim::write_telemetry_csv(wire, fleet.generate_telemetry());
  sim::FaultInjector injector(
      {{{sim::FaultMode::kTruncatedRow, 0.05},
        {sim::FaultMode::kDroppedColumn, 0.05}},
       73});
  std::stringstream corrupted(injector.corrupt_csv(wire.str()));
  IngestStats stats;
  const auto batch =
      sim::read_telemetry_csv(corrupted, lenient(), &stats);
  EXPECT_FALSE(batch.empty());
  // A truncation that lands inside the last field can leave a parseable
  // row, so dropped <= injected; everything else must be accounted for.
  EXPECT_GT(stats.rows_dropped, 0u);
  EXPECT_LE(stats.rows_dropped, injector.stats().total());
  EXPECT_GT(stats.short_rows, 0u);
  EXPECT_EQ(stats.rows_dropped, stats.short_rows + stats.bad_cells);
}

}  // namespace
}  // namespace mfpa::core
