#include "core/failure_time.hpp"

#include <gtest/gtest.h>

namespace mfpa::core {
namespace {

ProcessedDrive drive_with_records(const std::vector<DayIndex>& days,
                                  std::uint64_t id = 1) {
  ProcessedDrive d;
  d.drive_id = id;
  for (DayIndex day : days) {
    ProcessedRecord r;
    r.day = day;
    d.records.push_back(r);
  }
  return d;
}

sim::TroubleTicket ticket(std::uint64_t id, DayIndex imt) {
  sim::TroubleTicket t;
  t.drive_id = id;
  t.imt = imt;
  return t;
}

TEST(FailureTime, AnchorsToRecordWithinTheta) {
  const FailureTimeIdentifier identifier(7);
  const auto drive = drive_with_records({10, 20, 30});
  // IMT 5 days after the last record: ti = 5 <= 7 -> anchor to day 30.
  const auto out = identifier.identify(ticket(1, 35), drive);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->labeled_failure_day, 30);
  EXPECT_TRUE(out->anchored_to_record);
}

TEST(FailureTime, ExactlyThetaStillAnchors) {
  const FailureTimeIdentifier identifier(7);
  const auto drive = drive_with_records({10});
  const auto out = identifier.identify(ticket(1, 17), drive);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->labeled_failure_day, 10);
  EXPECT_TRUE(out->anchored_to_record);
}

TEST(FailureTime, FallsBackToImtMinusTheta) {
  const FailureTimeIdentifier identifier(7);
  const auto drive = drive_with_records({10});
  // ti = 30 - 10 = 20 > 7 -> label IMT - theta = 23.
  const auto out = identifier.identify(ticket(1, 30), drive);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->labeled_failure_day, 23);
  EXPECT_FALSE(out->anchored_to_record);
}

TEST(FailureTime, PicksClosestRecordNotAfterImt) {
  const FailureTimeIdentifier identifier(7);
  const auto drive = drive_with_records({10, 20, 40});
  // IMT 25: record 40 is after IMT and must be ignored; 20 is the anchor.
  const auto out = identifier.identify(ticket(1, 25), drive);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->labeled_failure_day, 20);
}

TEST(FailureTime, RecordOnImtDayAnchorsExactly) {
  const FailureTimeIdentifier identifier(7);
  const auto drive = drive_with_records({10, 25});
  const auto out = identifier.identify(ticket(1, 25), drive);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->labeled_failure_day, 25);
  EXPECT_TRUE(out->anchored_to_record);
}

TEST(FailureTime, AllRecordsAfterImtFallsBack) {
  const FailureTimeIdentifier identifier(7);
  const auto drive = drive_with_records({50, 60});
  const auto out = identifier.identify(ticket(1, 30), drive);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->labeled_failure_day, 23);
  EXPECT_FALSE(out->anchored_to_record);
}

TEST(FailureTime, EmptyDriveYieldsNothing) {
  const FailureTimeIdentifier identifier(7);
  const ProcessedDrive empty;
  EXPECT_FALSE(identifier.identify(ticket(1, 30), empty).has_value());
}

TEST(FailureTime, ThetaZeroLabelsAtImtUnlessSameDayRecord) {
  const FailureTimeIdentifier identifier(0);
  const auto drive = drive_with_records({10});
  const auto late = identifier.identify(ticket(1, 15), drive);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(late->labeled_failure_day, 15);  // IMT - 0
  const auto same_day = identifier.identify(ticket(1, 10), drive);
  ASSERT_TRUE(same_day.has_value());
  EXPECT_EQ(same_day->labeled_failure_day, 10);
  EXPECT_TRUE(same_day->anchored_to_record);
}

TEST(FailureTime, IdentifyAllSkipsUntrackedDrives) {
  const FailureTimeIdentifier identifier(7);
  std::vector<ProcessedDrive> drives;
  drives.push_back(drive_with_records({10, 20}, 1));
  drives.push_back(drive_with_records({15, 25}, 2));
  const std::vector<sim::TroubleTicket> tickets{
      ticket(1, 22), ticket(2, 27), ticket(999, 30)};
  const auto out = identifier.identify_all(tickets, drives);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.at(1).labeled_failure_day, 20);
  EXPECT_EQ(out.at(2).labeled_failure_day, 25);
  EXPECT_FALSE(out.contains(999));
}

TEST(FailureTime, LargerThetaAnchorsMoreDrives) {
  std::vector<ProcessedDrive> drives;
  drives.push_back(drive_with_records({10}, 1));  // ti = 12
  const std::vector<sim::TroubleTicket> tickets{ticket(1, 22)};
  const auto narrow = FailureTimeIdentifier(7).identify_all(tickets, drives);
  const auto wide = FailureTimeIdentifier(14).identify_all(tickets, drives);
  EXPECT_FALSE(narrow.at(1).anchored_to_record);
  EXPECT_TRUE(wide.at(1).anchored_to_record);
}

}  // namespace
}  // namespace mfpa::core
