#include "core/online_predictor.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/fleet.hpp"

namespace mfpa::core {
namespace {

class OnlinePredictorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleet_ = new sim::FleetSimulator(sim::small_scenario(13));
    telemetry_ =
        new std::vector<sim::DriveTimeSeries>(fleet_->generate_telemetry());
    tickets_ = new std::vector<sim::TroubleTicket>(fleet_->tickets());
    MfpaConfig config;
    config.vendor = 0;
    config.seed = 13;
    pipeline_ = new MfpaPipeline(config);
    report_ = new MfpaReport(pipeline_->run(*telemetry_, *tickets_));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete pipeline_;
    delete tickets_;
    delete telemetry_;
    delete fleet_;
  }
  static sim::FleetSimulator* fleet_;
  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static std::vector<sim::TroubleTicket>* tickets_;
  static MfpaPipeline* pipeline_;
  static MfpaReport* report_;
};

sim::FleetSimulator* OnlinePredictorTest::fleet_ = nullptr;
std::vector<sim::DriveTimeSeries>* OnlinePredictorTest::telemetry_ = nullptr;
std::vector<sim::TroubleTicket>* OnlinePredictorTest::tickets_ = nullptr;
MfpaPipeline* OnlinePredictorTest::pipeline_ = nullptr;
MfpaReport* OnlinePredictorTest::report_ = nullptr;

TEST_F(OnlinePredictorTest, ScoresEveryRecordOfADrive) {
  OnlinePredictor predictor(*pipeline_);
  const Preprocessor pre;
  // Find a vendor-0 failed drive with telemetry.
  for (const auto& series : *telemetry_) {
    if (series.vendor != 0 || !series.failed) continue;
    const auto drive = pre.process_drive(series);
    if (drive.records.size() < 5) continue;
    const auto scores = predictor.score_drive(drive);
    EXPECT_EQ(scores.size(), drive.records.size());
    for (double s : scores) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
    return;
  }
  FAIL() << "no suitable drive found";
}

TEST_F(OnlinePredictorTest, FailingDriveTriggersAlert) {
  OnlinePredictor predictor(*pipeline_);
  const Preprocessor pre;
  std::size_t alerted = 0, scored = 0;
  for (const auto& series : *telemetry_) {
    if (series.vendor != 0 || !series.failed) continue;
    const auto drive = pre.process_drive(series);
    if (drive.records.size() < 3) continue;
    predictor.clear_alerts();
    predictor.score_drive(drive);
    ++scored;
    if (!predictor.alerts().empty()) ++alerted;
  }
  ASSERT_GT(scored, 0u);
  EXPECT_GT(static_cast<double>(alerted) / static_cast<double>(scored), 0.5);
}

TEST_F(OnlinePredictorTest, AlertsCarryDriveAndDay) {
  OnlinePredictor predictor(*pipeline_);
  const Preprocessor pre;
  for (const auto& series : *telemetry_) {
    if (series.vendor != 0 || !series.failed) continue;
    const auto drive = pre.process_drive(series);
    if (drive.records.empty()) continue;
    predictor.score_drive(drive);
    for (const auto& alert : predictor.alerts()) {
      EXPECT_EQ(alert.drive_id, drive.drive_id);
      EXPECT_GE(alert.score, pipeline_->threshold());
    }
    if (!predictor.alerts().empty()) return;
  }
}

TEST_F(OnlinePredictorTest, MonthlyBreakdownPartitionsTestSet) {
  const auto months = OnlinePredictor::monthly_breakdown(*report_);
  ASSERT_FALSE(months.empty());
  std::size_t total = 0;
  for (const auto& m : months) total += m.cm.total();
  EXPECT_EQ(total, report_->test_size);
  for (std::size_t i = 1; i < months.size(); ++i) {
    EXPECT_LT(months[i - 1].month, months[i].month);
  }
}

TEST_F(OnlinePredictorTest, DriveLevelMetricsConsistent) {
  const auto dl = OnlinePredictor::drive_level(*report_);
  EXPECT_GT(dl.faulty_drives, 0u);
  EXPECT_GT(dl.healthy_drives, 0u);
  EXPECT_LE(dl.detected_drives, dl.faulty_drives);
  EXPECT_LE(dl.false_alarm_drives, dl.healthy_drives);
  EXPECT_GE(dl.drive_tpr(), report_->cm.tpr() - 0.05);  // any-hit >= per-sample
}

TEST_F(OnlinePredictorTest, HysteresisRequiresConsecutiveCrossings) {
  AlertPolicy strict;
  strict.min_consecutive = 3;
  OnlinePredictor eager(*pipeline_);
  OnlinePredictor patient(*pipeline_, strict);
  const Preprocessor pre;
  std::size_t eager_total = 0, patient_total = 0;
  for (const auto& series : *telemetry_) {
    if (series.vendor != 0) continue;
    const auto drive = pre.process_drive(series);
    if (drive.records.size() < 3) continue;
    eager.score_drive(drive);
    patient.score_drive(drive);
  }
  eager_total = eager.alerts().size();
  patient_total = patient.alerts().size();
  ASSERT_GT(eager_total, 0u);
  EXPECT_LT(patient_total, eager_total);
}

TEST_F(OnlinePredictorTest, CooldownRateLimitsRepeats) {
  AlertPolicy quiet;
  quiet.cooldown_days = 10000;  // at most one alert per drive
  OnlinePredictor predictor(*pipeline_, quiet);
  const Preprocessor pre;
  std::map<std::uint64_t, std::size_t> per_drive;
  for (const auto& series : *telemetry_) {
    if (series.vendor != 0) continue;
    const auto drive = pre.process_drive(series);
    if (drive.records.size() < 3) continue;
    predictor.score_drive(drive);
  }
  for (const auto& alert : predictor.alerts()) ++per_drive[alert.drive_id];
  ASSERT_FALSE(per_drive.empty());
  for (const auto& [id, count] : per_drive) {
    EXPECT_EQ(count, 1u) << "drive " << id;
  }
}

TEST_F(OnlinePredictorTest, SequenceModelScoresOnline) {
  // The CNN_LSTM path builds padded sequence rows during online scoring.
  MfpaConfig config;
  config.vendor = 0;
  config.seed = 13;
  config.algorithm = "CNN_LSTM";
  config.seq_len = 3;
  config.hyperparams = {{"epochs", 2.0}, {"channels", 4.0}, {"hidden", 6.0}};
  MfpaPipeline pipeline(config);
  pipeline.run(*telemetry_, *tickets_);
  OnlinePredictor predictor(pipeline);
  const Preprocessor pre;
  for (const auto& series : *telemetry_) {
    if (series.vendor != 0) continue;
    const auto drive = pre.process_drive(series);
    if (drive.records.size() < 5) continue;
    const auto scores = predictor.score_drive(drive);
    ASSERT_EQ(scores.size(), drive.records.size());
    for (double s : scores) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
    return;
  }
  FAIL() << "no suitable drive";
}

TEST_F(OnlinePredictorTest, ClearAlertsResets) {
  OnlinePredictor predictor(*pipeline_);
  const Preprocessor pre;
  for (const auto& series : *telemetry_) {
    if (series.vendor != 0 || !series.failed) continue;
    const auto drive = pre.process_drive(series);
    if (drive.records.empty()) continue;
    predictor.score_drive(drive);
    if (!predictor.alerts().empty()) {
      predictor.clear_alerts();
      EXPECT_TRUE(predictor.alerts().empty());
      return;
    }
  }
}

}  // namespace
}  // namespace mfpa::core
