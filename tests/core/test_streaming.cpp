#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include "sim/fleet.hpp"

namespace mfpa::core {
namespace {

sim::DailyRecord raw_record(DayIndex day, float poh = 0.0f) {
  sim::DailyRecord r;
  r.day = day;
  r.smart[static_cast<std::size_t>(sim::SmartAttr::kPowerOnHours)] = poh;
  r.w[0] = 1;
  return r;
}

TEST(Streaming, RejectsOutOfOrderDays) {
  // Strict (default) mode: the historical fail-fast contract.
  StreamingIngestor ingestor(1, 0);
  ingestor.ingest(raw_record(10));
  EXPECT_THROW(ingestor.ingest(raw_record(10)), std::invalid_argument);
  EXPECT_THROW(ingestor.ingest(raw_record(5)), std::invalid_argument);
}

TEST(Streaming, LenientModeDropsOutOfOrderDaysIdempotently) {
  // Lenient mode: a retried upload (same day again) must not throw and must
  // not change state — see the ingest() contract and test_robust_ingest.cpp.
  PreprocessConfig cfg;
  cfg.robustness.mode = IngestMode::kLenient;
  StreamingIngestor ingestor(1, 0, cfg);
  ingestor.ingest(raw_record(10));
  EXPECT_TRUE(ingestor.ingest(raw_record(10)).empty());
  EXPECT_TRUE(ingestor.ingest(raw_record(5)).empty());
  EXPECT_EQ(ingestor.segment().size(), 1u);
  EXPECT_EQ(ingestor.ingest_stats().duplicate_days, 1u);
  EXPECT_EQ(ingestor.ingest_stats().clock_rollbacks, 1u);
}

TEST(Streaming, AccumulatesCumulativeCounters) {
  StreamingIngestor ingestor(1, 0);
  ingestor.ingest(raw_record(10));
  const auto produced = ingestor.ingest(raw_record(11));
  ASSERT_EQ(produced.size(), 1u);
  EXPECT_DOUBLE_EQ(produced[0].w_cum[0], 2.0);
}

TEST(Streaming, FillsShortGaps) {
  StreamingIngestor ingestor(1, 0);
  ingestor.ingest(raw_record(10, 100.0f));
  const auto produced = ingestor.ingest(raw_record(13, 130.0f));
  ASSERT_EQ(produced.size(), 3u);  // days 11, 12 synthetic + day 13
  EXPECT_TRUE(produced[0].synthetic);
  EXPECT_EQ(produced[0].day, 11);
  const std::size_t poh = static_cast<std::size_t>(sim::SmartAttr::kPowerOnHours);
  EXPECT_NEAR(produced[0].smart[poh], 110.0, 1e-9);
  EXPECT_FALSE(produced[2].synthetic);
}

TEST(Streaming, LongGapStartsFreshSegment) {
  StreamingIngestor ingestor(1, 0);
  ingestor.ingest(raw_record(10));
  ingestor.ingest(raw_record(11));
  ingestor.ingest(raw_record(12));
  EXPECT_TRUE(ingestor.usable());
  const auto produced = ingestor.ingest(raw_record(30));
  ASSERT_EQ(produced.size(), 1u);
  EXPECT_DOUBLE_EQ(produced[0].w_cum[0], 1.0);  // counters reset
  EXPECT_EQ(ingestor.segment().size(), 1u);
  EXPECT_EQ(ingestor.segments_started(), 1);
  EXPECT_FALSE(ingestor.usable());
}

TEST(Streaming, UsableAfterMinRecords) {
  StreamingIngestor ingestor(1, 0);
  EXPECT_FALSE(ingestor.usable());
  ingestor.ingest(raw_record(1));
  ingestor.ingest(raw_record(2));
  EXPECT_FALSE(ingestor.usable());
  ingestor.ingest(raw_record(3));
  EXPECT_TRUE(ingestor.usable());
}

TEST(Streaming, SyntheticFillsDoNotCountTowardUsable) {
  PreprocessConfig cfg;
  cfg.min_records = 3;
  StreamingIngestor ingestor(1, 0, cfg);
  ingestor.ingest(raw_record(10));
  ingestor.ingest(raw_record(13));  // two fills + one real
  EXPECT_EQ(ingestor.segment().size(), 4u);
  EXPECT_FALSE(ingestor.usable());  // only two real records
}

TEST(Streaming, SnapshotCarriesIdentity) {
  StreamingIngestor ingestor(99, 2);
  ingestor.ingest(raw_record(5));
  const auto drive = ingestor.snapshot();
  EXPECT_EQ(drive.drive_id, 99u);
  EXPECT_EQ(drive.vendor, 2);
  EXPECT_EQ(drive.records.size(), 1u);
}

TEST(Streaming, MatchesBatchPreprocessorOnRealTelemetry) {
  // The defining invariant: streaming the records of a drive one by one
  // yields the same cleaned sequence as the batch path whenever the batch
  // keeps the *final* segment.
  sim::FleetSimulator fleet(sim::tiny_scenario(61));
  const Preprocessor batch;
  std::size_t compared = 0;
  for (const auto& series : fleet.generate_telemetry()) {
    if (series.records.size() < 5) continue;
    const auto expected = batch.process_drive(series);
    if (expected.records.empty()) continue;
    // Batch kept the final segment iff its last record matches the raw last.
    if (expected.records.back().day != series.records.back().day) continue;

    StreamingIngestor ingestor(series.drive_id, series.vendor);
    for (const auto& raw : series.records) ingestor.ingest(raw);
    const auto& streamed = ingestor.segment();
    ASSERT_EQ(streamed.size(), expected.records.size()) << series.drive_id;
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].day, expected.records[i].day);
      EXPECT_EQ(streamed[i].synthetic, expected.records[i].synthetic);
      EXPECT_EQ(streamed[i].firmware, expected.records[i].firmware);
      EXPECT_EQ(streamed[i].w_cum, expected.records[i].w_cum);
      EXPECT_EQ(streamed[i].b_cum, expected.records[i].b_cum);
      EXPECT_EQ(streamed[i].smart, expected.records[i].smart);
    }
    ++compared;
    if (compared >= 40) break;
  }
  EXPECT_GE(compared, 10u);
}

TEST(Streaming, CompactBoundsMemoryWithoutChangingFutureOutput) {
  // Two ingestors fed identically; one compacts aggressively after every
  // record. Their produced records must stay byte-identical — conversion
  // state (cumulative counters, gap fill) is independent of retained rows.
  StreamingIngestor full(1, 0);
  StreamingIngestor compacted(1, 0);
  std::vector<ProcessedRecord> from_full, from_compacted;
  for (DayIndex day = 10; day < 40; ++day) {
    // An irregular cadence with short gaps exercises the fill path.
    if (day % 5 == 2) continue;
    const auto a = full.ingest(raw_record(day, 100.0f + day));
    const auto b = compacted.ingest(raw_record(day, 100.0f + day));
    from_full.insert(from_full.end(), a.begin(), a.end());
    from_compacted.insert(from_compacted.end(), b.begin(), b.end());
    compacted.compact(2);
    EXPECT_LE(compacted.segment().size(), 2u);
  }
  ASSERT_EQ(from_full.size(), from_compacted.size());
  for (std::size_t i = 0; i < from_full.size(); ++i) {
    EXPECT_EQ(from_full[i].day, from_compacted[i].day);
    EXPECT_EQ(from_full[i].synthetic, from_compacted[i].synthetic);
    EXPECT_EQ(from_full[i].smart, from_compacted[i].smart);
    EXPECT_EQ(from_full[i].w_cum, from_compacted[i].w_cum);
    EXPECT_EQ(from_full[i].b_cum, from_compacted[i].b_cum);
  }
  const std::size_t dropped = full.compact(1);
  EXPECT_EQ(full.segment().size(), 1u);
  EXPECT_GT(dropped, 0u);
}

}  // namespace
}  // namespace mfpa::core
