#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace mfpa::core {
namespace {

TEST(CostModel, TotalIsLinearInCounts) {
  const MisclassificationCosts costs{100.0, 4.0, 1.0};
  ml::ConfusionMatrix cm{/*tp=*/3, /*fp=*/5, /*tn=*/90, /*fn=*/2};
  EXPECT_DOUBLE_EQ(costs.total(cm), 2 * 100.0 + 5 * 4.0 + 3 * 1.0);
  EXPECT_DOUBLE_EQ(costs.per_sample(cm), costs.total(cm) / 100.0);
}

TEST(CostModel, EmptyMatrixCostsNothing) {
  const MisclassificationCosts costs;
  EXPECT_DOUBLE_EQ(costs.per_sample(ml::ConfusionMatrix{}), 0.0);
}

TEST(CostModel, PerfectPredictionCostsOnlyMigrations) {
  const MisclassificationCosts costs{100.0, 4.0, 1.0};
  ml::ConfusionMatrix cm{/*tp=*/10, /*fp=*/0, /*tn=*/90, /*fn=*/0};
  EXPECT_DOUBLE_EQ(costs.total(cm), 10.0);
}

TEST(CostModel, OptimalThresholdSeparatesCleanData) {
  const std::vector<int> y{0, 0, 0, 1, 1};
  const std::vector<double> s{0.1, 0.2, 0.3, 0.8, 0.9};
  const MisclassificationCosts costs;
  const double t = cost_optimal_threshold(y, s, costs);
  const auto cm = ml::confusion_at(y, s, t);
  EXPECT_EQ(cm.fn, 0u);
  EXPECT_EQ(cm.fp, 0u);
}

TEST(CostModel, ExpensiveMissesLowerTheThreshold) {
  // Borderline positive at 0.4 among negatives at 0.3/0.5: when misses are
  // ruinous the optimizer accepts a false alarm to catch it.
  const std::vector<int> y{0, 0, 1, 0, 1};
  const std::vector<double> s{0.1, 0.3, 0.4, 0.5, 0.9};
  MisclassificationCosts miss_averse{1000.0, 1.0, 0.1};
  MisclassificationCosts alarm_averse{2.0, 50.0, 0.1};
  const double t_low = cost_optimal_threshold(y, s, miss_averse);
  const double t_high = cost_optimal_threshold(y, s, alarm_averse);
  EXPECT_LE(t_low, 0.4);
  EXPECT_GT(t_high, 0.4);
  const auto cm_low = ml::confusion_at(y, s, t_low);
  EXPECT_EQ(cm_low.fn, 0u);  // catches everything
}

TEST(CostModel, MinCostMatchesThreshold) {
  const std::vector<int> y{0, 1, 0, 1, 0, 1, 0, 0};
  const std::vector<double> s{0.2, 0.7, 0.4, 0.9, 0.1, 0.6, 0.8, 0.3};
  const MisclassificationCosts costs;
  const double t = cost_optimal_threshold(y, s, costs);
  EXPECT_DOUBLE_EQ(min_cost_per_sample(y, s, costs),
                   costs.per_sample(ml::confusion_at(y, s, t)));
}

TEST(CostModel, BetterRankingNeverCostsMore) {
  // A perfect ranking admits a zero-error threshold; a random one doesn't.
  const std::vector<int> y{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<double> good{0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9};
  const std::vector<double> bad{0.6, 0.2, 0.9, 0.4, 0.3, 0.7, 0.1, 0.8};
  const MisclassificationCosts costs;
  EXPECT_LT(min_cost_per_sample(y, good, costs),
            min_cost_per_sample(y, bad, costs));
}

}  // namespace
}  // namespace mfpa::core
