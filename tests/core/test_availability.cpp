#include "core/availability.hpp"

#include <gtest/gtest.h>

namespace mfpa::core {
namespace {

TEST(Availability, PlannedWhenWarnedEarly) {
  FailureDays failures{{1, 100}};
  const std::vector<FirstAlert> alerts{{1, 90}};
  const auto out = evaluate_availability(alerts, failures);
  EXPECT_EQ(out.planned, 1u);
  EXPECT_EQ(out.rushed, 0u);
  EXPECT_EQ(out.missed, 0u);
  EXPECT_DOUBLE_EQ(out.downtime_hours, AvailabilityParams{}.planned_swap_hours);
  EXPECT_DOUBLE_EQ(out.expected_data_loss_events, 0.0);
}

TEST(Availability, RushedWhenWarnedLate) {
  FailureDays failures{{1, 100}};
  const std::vector<FirstAlert> alerts{{1, 99}};  // 1 day < required 2
  const auto out = evaluate_availability(alerts, failures);
  EXPECT_EQ(out.rushed, 1u);
  EXPECT_DOUBLE_EQ(out.downtime_hours, AvailabilityParams{}.rushed_swap_hours);
}

TEST(Availability, ExactLeadBoundaryIsPlanned) {
  FailureDays failures{{1, 100}};
  const std::vector<FirstAlert> alerts{{1, 98}};  // exactly 2 days
  const auto out = evaluate_availability(alerts, failures);
  EXPECT_EQ(out.planned, 1u);
}

TEST(Availability, MissedWithoutAlert) {
  FailureDays failures{{1, 100}};
  const auto out = evaluate_availability({}, failures);
  EXPECT_EQ(out.missed, 1u);
  EXPECT_DOUBLE_EQ(out.downtime_hours,
                   AvailabilityParams{}.unplanned_outage_hours);
  EXPECT_DOUBLE_EQ(out.expected_data_loss_events,
                   AvailabilityParams{}.data_loss_probability);
}

TEST(Availability, AlertAfterFailureIsNoWarning) {
  FailureDays failures{{1, 100}};
  const std::vector<FirstAlert> alerts{{1, 105}};
  const auto out = evaluate_availability(alerts, failures);
  EXPECT_EQ(out.missed, 1u);
}

TEST(Availability, FalseAlarmOnHealthyDrive) {
  FailureDays failures;
  const std::vector<FirstAlert> alerts{{7, 50}};
  const auto out = evaluate_availability(alerts, failures);
  EXPECT_EQ(out.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(out.downtime_hours, AvailabilityParams{}.false_alarm_hours);
}

TEST(Availability, EarliestAlertWins) {
  FailureDays failures{{1, 100}};
  const std::vector<FirstAlert> alerts{{1, 99}, {1, 80}};
  const auto out = evaluate_availability(alerts, failures);
  EXPECT_EQ(out.planned, 1u);  // the day-80 alert gives plenty of lead
}

TEST(Availability, MixedFleetAccounting) {
  FailureDays failures{{1, 100}, {2, 200}, {3, 300}};
  const std::vector<FirstAlert> alerts{{1, 90}, {2, 199}, {9, 50}};
  AvailabilityParams params;
  const auto out = evaluate_availability(alerts, failures, params);
  EXPECT_EQ(out.failures, 3u);
  EXPECT_EQ(out.planned, 1u);
  EXPECT_EQ(out.rushed, 1u);
  EXPECT_EQ(out.missed, 1u);
  EXPECT_EQ(out.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(out.downtime_hours,
                   params.planned_swap_hours + params.rushed_swap_hours +
                       params.unplanned_outage_hours + params.false_alarm_hours);
}

TEST(Availability, ReactiveBaselineAllMissed) {
  const auto out = reactive_baseline(10);
  EXPECT_EQ(out.failures, 10u);
  EXPECT_EQ(out.missed, 10u);
  EXPECT_DOUBLE_EQ(out.downtime_hours,
                   10 * AvailabilityParams{}.unplanned_outage_hours);
}

TEST(Availability, ProactiveBeatsReactiveWhenWellPredicted) {
  FailureDays failures;
  std::vector<FirstAlert> alerts;
  for (std::uint64_t i = 0; i < 20; ++i) {
    failures[i] = static_cast<DayIndex>(100 + i);
    if (i < 18) alerts.push_back({i, static_cast<DayIndex>(90 + i)});
  }
  const auto proactive = evaluate_availability(alerts, failures);
  const auto reactive = reactive_baseline(failures.size());
  EXPECT_LT(proactive.downtime_hours, reactive.downtime_hours / 5.0);
  EXPECT_LT(proactive.expected_data_loss_events,
            reactive.expected_data_loss_events);
}

TEST(Availability, DowntimePerFailure) {
  const auto out = reactive_baseline(4);
  EXPECT_DOUBLE_EQ(out.downtime_per_failure(),
                   AvailabilityParams{}.unplanned_outage_hours);
  AvailabilityOutcome empty;
  EXPECT_DOUBLE_EQ(empty.downtime_per_failure(), 0.0);
}

}  // namespace
}  // namespace mfpa::core
