#include "serve/drive_state_store.hpp"

#include <gtest/gtest.h>

#include "sim/catalog.hpp"

namespace mfpa::serve {
namespace {

sim::DailyRecord raw_record(DayIndex day, float poh = 0.0f) {
  sim::DailyRecord r;
  r.day = day;
  r.smart[static_cast<std::size_t>(sim::SmartAttr::kPowerOnHours)] = poh;
  r.w[0] = 1;
  return r;
}

StoreConfig small_config(std::size_t shards = 2) {
  StoreConfig config;
  config.shards = shards;
  return config;
}

TEST(DriveStateStore, WithholdsRowsUntilSegmentUsable) {
  DriveStateStore store(small_config());
  std::vector<PendingRow> out;
  store.ingest(7, 0, raw_record(10), out);
  store.ingest(7, 0, raw_record(11), out);
  EXPECT_TRUE(out.empty());  // min_records = 3 not reached
  store.ingest(7, 0, raw_record(12), out);
  ASSERT_EQ(out.size(), 3u);  // catch-up burst, in day order
  EXPECT_EQ(out[0].record.day, 10);
  EXPECT_EQ(out[2].record.day, 12);
  EXPECT_EQ(out[0].drive_id, 7u);
}

TEST(DriveStateStore, EmitsIncrementallyAfterCatchUp) {
  DriveStateStore store(small_config());
  std::vector<PendingRow> out;
  for (DayIndex day = 10; day <= 12; ++day) store.ingest(7, 0, raw_record(day), out);
  out.clear();
  store.ingest(7, 0, raw_record(13), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].record.day, 13);
  EXPECT_FALSE(out[0].record.synthetic);
}

TEST(DriveStateStore, GapFillRowsAreEmitted) {
  DriveStateStore store(small_config());
  std::vector<PendingRow> out;
  for (DayIndex day = 10; day <= 12; ++day) store.ingest(7, 0, raw_record(day), out);
  out.clear();
  store.ingest(7, 0, raw_record(15), out);  // 2-day gap -> mean fill
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].record.synthetic);
  EXPECT_EQ(out[0].record.day, 13);
  EXPECT_TRUE(out[1].record.synthetic);
  EXPECT_FALSE(out[2].record.synthetic);
  EXPECT_EQ(out[2].record.day, 15);
}

TEST(DriveStateStore, LongGapRestartsSegmentAndEmission) {
  DriveStateStore store(small_config());
  std::vector<PendingRow> out;
  for (DayIndex day = 10; day <= 13; ++day) store.ingest(7, 0, raw_record(day), out);
  out.clear();
  // >= drop_gap days of silence: the batch path would discard the old
  // segment, so the store must restart emission from scratch.
  store.ingest(7, 0, raw_record(40), out);
  store.ingest(7, 0, raw_record(41), out);
  EXPECT_TRUE(out.empty());
  store.ingest(7, 0, raw_record(42), out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].record.day, 40);
  EXPECT_EQ(store.stats().segments_restarted, 1u);
}

TEST(DriveStateStore, CumulativeCountersSurviveCompaction) {
  StoreConfig config = small_config();
  config.max_records_per_drive = 4;
  DriveStateStore store(config);
  std::vector<PendingRow> out;
  for (DayIndex day = 10; day < 40; ++day) store.ingest(7, 0, raw_record(day), out);
  // Every raw record emitted exactly once despite the retained window being
  // capped at 4 records.
  ASSERT_EQ(out.size(), 30u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].record.day, 10 + static_cast<DayIndex>(i));
    // w[0] = 1 every day, so the cumulative counter keeps climbing across
    // compactions.
    EXPECT_DOUBLE_EQ(out[i].record.w_cum[0], static_cast<double>(i + 1));
  }
}

TEST(DriveStateStore, ShardsAreIndependent) {
  DriveStateStore store(small_config(4));
  EXPECT_EQ(store.shard_count(), 4u);
  std::vector<PendingRow> out;
  for (std::uint64_t drive = 0; drive < 32; ++drive) {
    for (DayIndex day = 10; day <= 12; ++day) {
      store.ingest(drive, 0, raw_record(day), out);
    }
  }
  EXPECT_EQ(out.size(), 32u * 3u);
  const auto stats = store.stats();
  EXPECT_EQ(stats.drives_tracked, 32u);
  EXPECT_EQ(stats.records_ingested, 32u * 3u);
  EXPECT_EQ(stats.rows_emitted, 32u * 3u);
}

TEST(DriveStateStore, StrictModePropagatesDayOrderViolations) {
  DriveStateStore store(small_config());
  std::vector<PendingRow> out;
  store.ingest(7, 0, raw_record(10), out);
  EXPECT_THROW(store.ingest(7, 0, raw_record(10), out), std::invalid_argument);
}

TEST(DriveStateStore, LenientModeAbsorbsAndAccounts) {
  StoreConfig config = small_config();
  config.preprocess.robustness.mode = IngestMode::kLenient;
  DriveStateStore store(config);
  std::vector<PendingRow> out;
  store.ingest(7, 0, raw_record(10), out);
  EXPECT_NO_THROW(store.ingest(7, 0, raw_record(10), out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(store.stats().ingest.duplicate_days, 1u);
}

TEST(DriveStateStore, AlertHysteresisMatchesPolicy) {
  DriveStateStore store(small_config());
  std::vector<PendingRow> out;
  for (DayIndex day = 10; day <= 12; ++day) store.ingest(7, 0, raw_record(day), out);
  core::AlertPolicy policy;
  policy.min_consecutive = 2;
  const int seg = out.front().segment;
  // First crossing arms, second fires.
  EXPECT_FALSE(store.should_alert(7, 10, seg, true, policy));
  EXPECT_TRUE(store.should_alert(7, 11, seg, true, policy));
  // A miss resets the consecutive counter.
  EXPECT_FALSE(store.should_alert(7, 12, seg, false, policy));
  EXPECT_FALSE(store.should_alert(7, 13, seg, true, policy));
  EXPECT_TRUE(store.should_alert(7, 14, seg, true, policy));
}

TEST(DriveStateStore, SegmentChangeResetsHysteresisAtScoringTime) {
  DriveStateStore store(small_config());
  std::vector<PendingRow> out;
  for (DayIndex day = 10; day <= 12; ++day) {
    store.ingest(7, 0, raw_record(day), out);
  }
  core::AlertPolicy policy;
  policy.min_consecutive = 2;
  const int seg = out.front().segment;
  // The streak arms on the old segment...
  EXPECT_FALSE(store.should_alert(7, 10, seg, true, policy));
  EXPECT_TRUE(store.should_alert(7, 11, seg, true, policy));
  EXPECT_TRUE(store.should_alert(7, 12, seg, true, policy));  // no cooldown
  // ...and a row tagged with a newer segment restarts it from zero, no
  // matter how ingestion was batched relative to scoring.
  EXPECT_FALSE(store.should_alert(7, 40, seg + 1, true, policy));
  EXPECT_TRUE(store.should_alert(7, 41, seg + 1, true, policy));
}

TEST(DriveStateStore, AlertCooldownSilencesRepeats) {
  DriveStateStore store(small_config());
  std::vector<PendingRow> out;
  for (DayIndex day = 10; day <= 12; ++day) store.ingest(7, 0, raw_record(day), out);
  core::AlertPolicy policy;
  policy.cooldown_days = 5;
  const int seg = out.front().segment;
  EXPECT_TRUE(store.should_alert(7, 10, seg, true, policy));
  EXPECT_FALSE(store.should_alert(7, 12, seg, true, policy));  // in cooldown
  EXPECT_TRUE(store.should_alert(7, 15, seg, true, policy));   // cooldown over
}

TEST(DriveStateStore, ShouldAlertForUnknownDriveThrows) {
  DriveStateStore store(small_config());
  EXPECT_THROW(store.should_alert(99, 10, 1, true, core::AlertPolicy{}),
               std::logic_error);
}

}  // namespace
}  // namespace mfpa::serve
