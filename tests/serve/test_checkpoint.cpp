#include "serve/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/drive_state_store.hpp"
#include "serve/wal.hpp"

namespace mfpa::serve {
namespace {
namespace fs = std::filesystem;

sim::DailyRecord make_record(DayIndex day, float base) {
  sim::DailyRecord rec;
  rec.day = day;
  for (std::size_t i = 0; i < rec.smart.size(); ++i) {
    rec.smart[i] = base + static_cast<float>(i);
  }
  rec.w[0] = static_cast<std::uint16_t>(day);
  rec.b[1] = 2;
  return rec;
}

std::string store_image(const DriveStateStore& store) {
  std::ostringstream os;
  store.save_state(os);
  return os.str();
}

StoreConfig store_config() {
  StoreConfig config;
  config.shards = 2;
  return config;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("mfpa_ckpt_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DurabilityConfig durability_config() const {
    DurabilityConfig config;
    config.dir = dir_.string();
    config.wal_shards = 2;
    config.fsync = false;  // throwaway tmpdir
    config.checkpoint_interval_records = 0;  // explicit checkpoints only
    return config;
  }

  /// Feeds `n` records for `drives` drives through both the manager's WAL
  /// and the store — the engine's WAL-before-apply discipline in miniature.
  static void feed(DurabilityManager& manager, DriveStateStore& store,
                   int drives, int n, DayIndex day0) {
    std::vector<PendingRow> rows;
    for (int day = 0; day < n; ++day) {
      for (int d = 0; d < drives; ++d) {
        const std::uint64_t id = static_cast<std::uint64_t>(d + 1);
        const sim::DailyRecord rec = make_record(day0 + day, 1.5f + d);
        manager.append(id, 0, rec);
        store.ingest(id, 0, rec, rows);
      }
    }
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, CheckpointFileRoundTrips) {
  DriveStateStore store(store_config());
  std::vector<PendingRow> rows;
  for (int day = 0; day < 12; ++day) {
    store.ingest(7, 0, make_record(day, 2.0f), rows);
  }
  const std::string path = (dir_ / "ckpt-42.mfc").string();
  write_checkpoint_file(path, store, 42, 5, 3, /*fsync=*/false);

  const CheckpointImage image = load_checkpoint_file(path);
  EXPECT_EQ(image.lsn, 42u);
  EXPECT_EQ(image.alert_count, 5u);
  EXPECT_EQ(image.model_version, 3);
  EXPECT_EQ(image.store_state, store_image(store));

  DriveStateStore restored(store_config());
  std::istringstream is(image.store_state);
  restored.load_state(is);
  EXPECT_EQ(store_image(restored), store_image(store));
}

TEST_F(CheckpointTest, CorruptPayloadIsRejected) {
  DriveStateStore store(store_config());
  const std::string path = (dir_ / "ckpt-1.mfc").string();
  write_checkpoint_file(path, store, 1, 0, 1, /*fsync=*/false);

  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x04;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_checkpoint_file(path), std::runtime_error);
}

TEST_F(CheckpointTest, ListCheckpointsSortsByLsnNumerically) {
  DriveStateStore store(store_config());
  fs::create_directories(dir_ / "ckpt");
  for (const std::uint64_t lsn : {512u, 4096u, 40u}) {
    write_checkpoint_file((dir_ / "ckpt" / ("ckpt-" + std::to_string(lsn) +
                                            ".mfc")).string(),
                          store, lsn, 0, 1, false);
  }
  const auto listed = list_checkpoints(dir_.string());
  ASSERT_EQ(listed.size(), 3u);
  EXPECT_EQ(listed[0].first, 40u);   // lexicographic would put 4096 first
  EXPECT_EQ(listed[1].first, 512u);
  EXPECT_EQ(listed[2].first, 4096u);
}

TEST_F(CheckpointTest, FullCycleCheckpointThenRecover) {
  std::string live_image;
  {
    DriveStateStore store(store_config());
    DurabilityManager manager(durability_config());
    const auto fresh = manager.recover(store, 1);
    EXPECT_FALSE(fresh.checkpoint_loaded);
    EXPECT_TRUE(fresh.tail.empty());
    manager.finish_recovery(store, 1);

    feed(manager, store, /*drives=*/3, /*n=*/10, /*day0=*/0);
    manager.append_alert({2, 8, 0.91});
    manager.checkpoint_now(store, 1);
    feed(manager, store, 3, 4, 10);  // post-checkpoint tail, flushed not ckpted
    manager.flush();
    live_image = store_image(store);
    EXPECT_EQ(manager.last_lsn(), 42u);
  }
  // "Crash": nothing sealed after the flush. A fresh manager must land the
  // checkpoint plus a 12-record WAL tail.
  DriveStateStore store(store_config());
  DurabilityManager manager(durability_config());
  const auto recovered = manager.recover(store, 1);
  EXPECT_TRUE(recovered.checkpoint_loaded);
  EXPECT_EQ(recovered.checkpoint_lsn, 30u);
  EXPECT_EQ(recovered.model_version, 1);
  ASSERT_EQ(recovered.tail.size(), 12u);
  EXPECT_EQ(recovered.tail.front().lsn, 31u);
  EXPECT_EQ(recovered.durable_records, 42u);
  ASSERT_EQ(recovered.alerts.size(), 1u);
  EXPECT_EQ(recovered.alerts.front().drive_id, 2u);

  // Re-applying the tail through the store reproduces the live state.
  std::vector<PendingRow> rows;
  for (const auto& entry : recovered.tail) {
    store.ingest(entry.drive_id, entry.vendor, entry.record, rows);
  }
  EXPECT_EQ(store_image(store), live_image);
  manager.finish_recovery(store, 1);
  EXPECT_EQ(manager.last_lsn(), 42u);
}

TEST_F(CheckpointTest, RecoveryIsIdempotent) {
  {
    DriveStateStore store(store_config());
    DurabilityManager manager(durability_config());
    manager.recover(store, 2);
    manager.finish_recovery(store, 2);
    feed(manager, store, 2, 6, 0);
    manager.checkpoint_now(store, 2);
  }
  std::string first_image;
  for (int round = 0; round < 2; ++round) {
    // Recover, seal, and crash again without appending anything: every
    // round must land on the identical state and LSN.
    DriveStateStore store(store_config());
    DurabilityManager manager(durability_config());
    const auto recovered = manager.recover(store, 2);
    EXPECT_TRUE(recovered.checkpoint_loaded);
    EXPECT_TRUE(recovered.tail.empty());
    EXPECT_EQ(recovered.durable_records, 12u);
    manager.finish_recovery(store, 2);
    if (round == 0) {
      first_image = store_image(store);
    } else {
      EXPECT_EQ(store_image(store), first_image);
    }
  }
}

TEST_F(CheckpointTest, FallsBackToOlderCheckpointWhenNewestIsCorrupt) {
  {
    DriveStateStore store(store_config());
    DurabilityManager manager(durability_config());
    manager.recover(store, 1);
    manager.finish_recovery(store, 1);
    feed(manager, store, 2, 5, 0);
    manager.checkpoint_now(store, 1);  // ckpt @ 10
    feed(manager, store, 2, 5, 5);
    manager.checkpoint_now(store, 1);  // ckpt @ 20
  }
  // Corrupt the newest checkpoint; the WAL retains segments back to the
  // previous one, so recovery replays LSNs 11..20 over it instead.
  const auto ckpts = list_checkpoints(dir_.string());
  ASSERT_GE(ckpts.size(), 2u);
  {
    std::fstream f(ckpts.back().second,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);
    f.put('\x7f');
  }
  DriveStateStore store(store_config());
  DurabilityManager manager(durability_config());
  const auto recovered = manager.recover(store, 1);
  EXPECT_TRUE(recovered.checkpoint_loaded);
  EXPECT_EQ(recovered.checkpoint_lsn, 10u);
  EXPECT_EQ(recovered.checkpoints_skipped, 1u);
  ASSERT_EQ(recovered.tail.size(), 10u);
  EXPECT_EQ(recovered.durable_records, 20u);
}

TEST_F(CheckpointTest, RefusesWhenEveryCheckpointIsCorrupt) {
  {
    DriveStateStore store(store_config());
    DurabilityManager manager(durability_config());
    manager.recover(store, 1);
    manager.finish_recovery(store, 1);
    feed(manager, store, 1, 4, 0);
    manager.checkpoint_now(store, 1);
  }
  for (const auto& [lsn, path] : list_checkpoints(dir_.string())) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(25);
    f.put('\x7f');
  }
  DriveStateStore store(store_config());
  DurabilityManager manager(durability_config());
  EXPECT_THROW(manager.recover(store, 1), std::runtime_error);
}

TEST_F(CheckpointTest, ModelVersionMismatchRefusesLoudly) {
  {
    DriveStateStore store(store_config());
    DurabilityManager manager(durability_config());
    manager.recover(store, 4);
    manager.finish_recovery(store, 4);
    feed(manager, store, 1, 3, 0);
    manager.checkpoint_now(store, 4);
  }
  DriveStateStore store(store_config());
  DurabilityManager manager(durability_config());
  EXPECT_THROW(manager.recover(store, 5), std::runtime_error);
}

TEST_F(CheckpointTest, WalOnlyStartReplaysEverything) {
  {
    // A writer that never checkpoints: the durable state is the WAL alone.
    WalWriterConfig config;
    config.dir = dir_.string();
    config.shards = 2;
    config.fsync = false;
    WalWriter writer(config);
    writer.open_generation(0);
    for (int i = 0; i < 9; ++i) {
      writer.append(static_cast<std::uint64_t>(i % 2 + 1), 0,
                    make_record(i / 2, 3.0f));
    }
    writer.flush();
  }
  DriveStateStore store(store_config());
  DurabilityManager manager(durability_config());
  const auto recovered = manager.recover(store, 1);
  EXPECT_FALSE(recovered.checkpoint_loaded);
  EXPECT_EQ(recovered.tail.size(), 9u);
  EXPECT_EQ(recovered.durable_records, 9u);
}

TEST_F(CheckpointTest, RetainsOnlyTwoNewestCheckpoints) {
  DriveStateStore store(store_config());
  DurabilityManager manager(durability_config());
  manager.recover(store, 1);
  manager.finish_recovery(store, 1);
  for (int round = 0; round < 5; ++round) {
    feed(manager, store, 1, 2, round * 2);
    manager.checkpoint_now(store, 1);
  }
  const auto ckpts = list_checkpoints(dir_.string());
  ASSERT_EQ(ckpts.size(), 2u);
  EXPECT_EQ(ckpts.back().first, manager.last_lsn());
}

TEST_F(CheckpointTest, AppendBeforeFinishRecoveryIsAContractViolation) {
  DriveStateStore store(store_config());
  DurabilityManager manager(durability_config());
  manager.recover(store, 1);
  EXPECT_THROW(manager.append(1, 0, make_record(0, 1.0f)), std::logic_error);
}

TEST_F(CheckpointTest, EmptyDirConfigIsRejected) {
  EXPECT_THROW(DurabilityManager{DurabilityConfig{}}, std::invalid_argument);
}

}  // namespace
}  // namespace mfpa::serve
