// Satellite of docs/ROBUSTNESS.md at the serving tier: a fault-injected
// upload stream feeds the scoring service in lenient mode. Bad records are
// repaired or quarantined inside the per-drive ingestors — the queue never
// stalls, nothing is silently lost, and the accounting surfaces in the
// engine/store stats.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "core/mfpa.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_engine.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fleet.hpp"

namespace mfpa::serve {
namespace {
namespace fs = std::filesystem;

class ServeRobustTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetSimulator fleet(sim::tiny_scenario(53));
    clean_ = new std::vector<sim::DriveTimeSeries>(fleet.generate_telemetry());
    // A channel dirty enough to quarantine the worst drives.
    sim::FaultInjector channel({{{sim::FaultMode::kDuplicateDay, 0.08},
                                 {sim::FaultMode::kClockRollback, 0.04},
                                 {sim::FaultMode::kNanField, 0.05},
                                 {sim::FaultMode::kNegativeField, 0.03}},
                                53});
    corrupt_ =
        new std::vector<sim::DriveTimeSeries>(channel.corrupt(*clean_));
    core::MfpaConfig config;
    config.seed = 53;
    config.hyperparams = {{"n_trees", 10.0}, {"seed", 1.0}};
    pipeline_ = new core::MfpaPipeline(config);
    pipeline_->run(*clean_, fleet.tickets());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete corrupt_;
    delete clean_;
  }
  void SetUp() override {
    // Unique per test: ctest runs discovered tests as parallel processes.
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("mfpa_robust_registry_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<sim::DriveTimeSeries>* clean_;
  static std::vector<sim::DriveTimeSeries>* corrupt_;
  static core::MfpaPipeline* pipeline_;
  fs::path dir_;
};

std::vector<sim::DriveTimeSeries>* ServeRobustTest::clean_ = nullptr;
std::vector<sim::DriveTimeSeries>* ServeRobustTest::corrupt_ = nullptr;
core::MfpaPipeline* ServeRobustTest::pipeline_ = nullptr;

TEST_F(ServeRobustTest, LenientServiceDigestsDirtyStreamWithoutStalling) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  EngineConfig config;
  config.store.preprocess.robustness.mode = IngestMode::kLenient;
  config.queue_capacity = 256;  // real drain thread, real backpressure
  ScoringEngine engine(registry, config);
  const FleetReplayer replayer(*corrupt_);
  const auto report = replayer.replay(engine);
  engine.stop();

  // Every upload was accepted and drained; a stalled queue would deadlock
  // the replay (blocking submit) long before this point.
  EXPECT_EQ(report.engine.accepted, replayer.total_records());
  EXPECT_EQ(report.engine.shed, 0u);
  EXPECT_EQ(report.engine.rejected, 0u);  // lenient mode absorbs, not throws
  EXPECT_EQ(report.engine.records_processed, replayer.total_records());
  // The channel faults actually landed and were accounted for.
  const auto& ingest = report.store.ingest;
  EXPECT_GT(ingest.duplicate_days + ingest.clock_rollbacks, 0u);
  EXPECT_GT(ingest.values_repaired + ingest.rows_dropped, 0u);
  // Scoring continued despite the noise.
  EXPECT_GT(report.engine.rows_scored, 0u);
}

TEST_F(ServeRobustTest, StrictServiceCountsRejectionsButKeepsDraining) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  EngineConfig config;  // strict store: day-order violations throw inside
  config.queue_capacity = 256;
  ScoringEngine engine(registry, config);
  const FleetReplayer replayer(*corrupt_);
  const auto report = replayer.replay(engine);
  engine.stop();
  EXPECT_EQ(report.engine.accepted, replayer.total_records());
  EXPECT_GT(report.engine.rejected, 0u);  // duplicates/rollbacks rejected
  EXPECT_EQ(report.engine.records_processed + report.engine.rejected,
            replayer.total_records());
  EXPECT_GT(report.engine.rows_scored, 0u);
}

TEST_F(ServeRobustTest, QuarantinedDrivesStopEmittingButStayAccounted) {
  // A drive whose stream is mostly garbage must be quarantined by the store
  // exactly like the batch path would, while the rest of the fleet keeps
  // scoring.
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  EngineConfig config;
  config.store.preprocess.robustness.mode = IngestMode::kLenient;
  config.manual_drain = true;
  config.queue_capacity = 4096;
  ScoringEngine engine(registry, config);

  // Hand-build a hopeless drive: every record after the first repeats day 10.
  sim::DailyRecord base;
  base.day = 10;
  for (int i = 0; i < 12; ++i) {
    engine.submit({999, 0, base});
    engine.flush();
  }
  const auto stats = engine.store().stats();
  EXPECT_EQ(stats.drives_quarantined, 1u);
  EXPECT_EQ(engine.stats().rows_scored, 0u);  // never became usable

  // The rest of the fleet is unaffected.
  sim::DailyRecord healthy;
  for (DayIndex day = 10; day <= 12; ++day) {
    healthy.day = day;
    engine.submit({1000, 0, healthy});
  }
  engine.flush();
  EXPECT_EQ(engine.stats().rows_scored, 3u);
}

TEST_F(ServeRobustTest, DirtyAndCleanStreamsAgreeOnSurvivingRows) {
  // The graceful-degradation contract: scores for rows that survive the
  // lenient repair must equal the clean-stream scores for the same
  // (drive, day) — corruption elsewhere must not perturb them.
  auto run = [&](const std::vector<sim::DriveTimeSeries>& stream,
                 const fs::path& dir) {
    ModelRegistry registry(dir.string());
    registry.publish_pipeline(*pipeline_, 0, 100);
    EngineConfig config;
    config.store.preprocess.robustness.mode = IngestMode::kLenient;
    config.manual_drain = true;
    config.record_scores = true;
    config.queue_capacity = 1u << 20;
    ScoringEngine engine(registry, config);
    const FleetReplayer replayer(stream);
    replayer.replay(engine);
    return engine.take_scored_rows();
  };
  const auto clean_rows = run(*clean_, dir_ / "clean");
  const auto dirty_rows = run(*corrupt_, dir_ / "dirty");
  std::map<std::pair<std::uint64_t, DayIndex>, double> clean_scores;
  for (const auto& row : clean_rows) {
    clean_scores[{row.drive_id, row.day}] = row.score;
  }
  std::size_t matched = 0;
  for (const auto& row : dirty_rows) {
    const auto it = clean_scores.find({row.drive_id, row.day});
    if (it == clean_scores.end()) continue;
    // NaN/negative repairs interpolate values, so only rows from untouched
    // stretches are byte-identical; they must be the majority.
    matched += row.score == it->second;
  }
  ASSERT_GT(dirty_rows.size(), 0u);
  EXPECT_GT(matched, dirty_rows.size() / 2);
}

}  // namespace
}  // namespace mfpa::serve
