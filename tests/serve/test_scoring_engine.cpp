#include "serve/scoring_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>

#include "core/mfpa.hpp"
#include "core/preprocess.hpp"
#include "serve/model_registry.hpp"
#include "sim/fleet.hpp"

namespace mfpa::serve {
namespace {
namespace fs = std::filesystem;

/// Telemetry flattened into service arrival order (day, then drive id).
std::vector<TelemetryUpdate> arrival_order(
    const std::vector<sim::DriveTimeSeries>& telemetry) {
  std::vector<TelemetryUpdate> updates;
  for (const auto& series : telemetry) {
    for (const auto& record : series.records) {
      updates.push_back({series.drive_id, series.vendor, record});
    }
  }
  std::stable_sort(updates.begin(), updates.end(),
                   [](const TelemetryUpdate& a, const TelemetryUpdate& b) {
                     if (a.record.day != b.record.day) {
                       return a.record.day < b.record.day;
                     }
                     return a.drive_id < b.drive_id;
                   });
  return updates;
}

class ScoringEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetSimulator fleet(sim::tiny_scenario(52));
    telemetry_ = new std::vector<sim::DriveTimeSeries>(
        fleet.generate_telemetry());
    const auto tickets = fleet.tickets();
    core::MfpaConfig config_a;
    config_a.seed = 52;
    config_a.hyperparams = {{"n_trees", 10.0}, {"seed", 1.0}};
    pipeline_a_ = new core::MfpaPipeline(config_a);
    pipeline_a_->run(*telemetry_, tickets);
    core::MfpaConfig config_b = config_a;
    config_b.hyperparams = {{"n_trees", 7.0}, {"seed", 9.0}};
    pipeline_b_ = new core::MfpaPipeline(config_b);
    pipeline_b_->run(*telemetry_, tickets);
    updates_ = new std::vector<TelemetryUpdate>(arrival_order(*telemetry_));
  }
  static void TearDownTestSuite() {
    delete updates_;
    delete pipeline_b_;
    delete pipeline_a_;
    delete telemetry_;
  }
  void SetUp() override {
    // Unique per test: ctest runs discovered tests as parallel processes.
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("mfpa_engine_registry_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static core::MfpaPipeline* pipeline_a_;
  static core::MfpaPipeline* pipeline_b_;
  static std::vector<TelemetryUpdate>* updates_;
  fs::path dir_;
};

std::vector<sim::DriveTimeSeries>* ScoringEngineTest::telemetry_ = nullptr;
core::MfpaPipeline* ScoringEngineTest::pipeline_a_ = nullptr;
core::MfpaPipeline* ScoringEngineTest::pipeline_b_ = nullptr;
std::vector<TelemetryUpdate>* ScoringEngineTest::updates_ = nullptr;

TEST_F(ScoringEngineTest, KeepsDrainingWithoutAModel) {
  ModelRegistry registry(dir_.string());  // nothing published
  EngineConfig config;
  config.manual_drain = true;
  config.queue_capacity = updates_->size() + 1;
  ScoringEngine engine(registry, config);
  for (const auto& update : *updates_) engine.submit(update);
  engine.flush();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.accepted, updates_->size());
  EXPECT_EQ(stats.records_processed, updates_->size());
  EXPECT_EQ(stats.rows_scored, 0u);
  EXPECT_GT(stats.unscored_no_model, 0u);
  EXPECT_TRUE(engine.alerts().empty());
}

TEST_F(ScoringEngineTest, ShedOnFullDropsWithAccounting) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_a_, 0, 100);
  EngineConfig config;
  config.manual_drain = true;
  config.shed_on_full = true;
  config.queue_capacity = 2;
  ScoringEngine engine(registry, config);
  EXPECT_TRUE(engine.submit((*updates_)[0]));
  EXPECT_TRUE(engine.submit((*updates_)[1]));
  EXPECT_FALSE(engine.submit((*updates_)[2]));  // full -> shed, not blocked
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.shed, 1u);
}

TEST_F(ScoringEngineTest, BlockingBackpressureLosesNothing) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_a_, 0, 100);
  EngineConfig config;
  config.queue_capacity = 64;  // far smaller than the stream
  config.max_batch = 32;
  ScoringEngine engine(registry, config);
  for (const auto& update : *updates_) engine.submit(update);
  engine.flush();
  engine.stop();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.accepted, updates_->size());
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.records_processed, updates_->size());
  EXPECT_LE(stats.max_queue_depth, 64u);
  EXPECT_GT(stats.rows_scored, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.latency_us.total(), updates_->size());
}

TEST_F(ScoringEngineTest, ResultsIndependentOfBatchSize) {
  auto run_with_batch = [&](std::size_t max_batch) {
    const fs::path dir = dir_ / ("b" + std::to_string(max_batch));
    ModelRegistry registry(dir.string());
    registry.publish_pipeline(*pipeline_a_, 0, 100);
    EngineConfig config;
    config.manual_drain = true;
    config.record_scores = true;
    config.queue_capacity = updates_->size() + 1;
    config.max_batch = max_batch;
    ScoringEngine engine(registry, config);
    for (const auto& update : *updates_) engine.submit(update);
    engine.flush();
    return std::make_pair(engine.alerts(), engine.take_scored_rows());
  };
  const auto [alerts_1, rows_1] = run_with_batch(1);
  const auto [alerts_big, rows_big] = run_with_batch(256);
  ASSERT_EQ(rows_1.size(), rows_big.size());
  ASSERT_GT(rows_1.size(), 0u);
  for (std::size_t i = 0; i < rows_1.size(); ++i) {
    EXPECT_EQ(rows_1[i].drive_id, rows_big[i].drive_id);
    EXPECT_EQ(rows_1[i].day, rows_big[i].day);
    EXPECT_DOUBLE_EQ(rows_1[i].score, rows_big[i].score);
  }
  ASSERT_EQ(alerts_1.size(), alerts_big.size());
  for (std::size_t i = 0; i < alerts_1.size(); ++i) {
    EXPECT_EQ(alerts_1[i].drive_id, alerts_big[i].drive_id);
    EXPECT_EQ(alerts_1[i].day, alerts_big[i].day);
  }
}

// The hot-swap acceptance check: publish A, stream half the fleet, publish
// B mid-stream, stream the rest. Nothing may be dropped or blocked, and
// every scored row must match the model that was live when its batch ran —
// verified against scores recomputed directly from the on-disk artifacts.
TEST_F(ScoringEngineTest, HotSwapKeepsEveryRecordAndSwitchesModels) {
  ModelRegistry registry(dir_.string());
  const int v1 = registry.publish_pipeline(*pipeline_a_, 0, 100);
  EngineConfig config;
  config.manual_drain = true;
  config.record_scores = true;
  config.queue_capacity = updates_->size() + 1;
  ScoringEngine engine(registry, config);

  const std::size_t half = updates_->size() / 2;
  for (std::size_t i = 0; i < half; ++i) engine.submit((*updates_)[i]);
  engine.flush();
  const std::size_t rows_before_swap = engine.stats().rows_scored;
  const int v2 = registry.publish_pipeline(*pipeline_b_, 0, 130);
  for (std::size_t i = half; i < updates_->size(); ++i) {
    engine.submit((*updates_)[i]);
  }
  engine.flush();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.accepted, updates_->size());
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.records_processed, updates_->size());
  EXPECT_EQ(stats.model_swaps, 1u);

  // Independent reference: batch-preprocess each drive and score its cleaned
  // records with both artifacts as loaded from disk.
  const auto model_a = registry.load_version(v1);
  const auto model_b = registry.load_version(v2);
  const auto builder_a = model_a->make_builder();
  const auto builder_b = model_b->make_builder();
  const core::Preprocessor pre;
  std::map<std::pair<std::uint64_t, DayIndex>, core::ProcessedRecord> batch;
  for (const auto& series : *telemetry_) {
    const auto drive = pre.process_drive(series);
    for (const auto& r : drive.records) batch.insert({{drive.drive_id, r.day}, r});
  }

  const auto rows = engine.take_scored_rows();
  ASSERT_GT(rows.size(), rows_before_swap);
  std::size_t verified = 0;
  for (const auto& row : rows) {
    EXPECT_TRUE(row.model_version == v1 || row.model_version == v2);
    const auto it = batch.find({row.drive_id, row.day});
    if (it == batch.end()) continue;  // batch kept an earlier segment
    const bool on_v1 = row.model_version == v1;
    data::Matrix X(0, 0);
    X.add_row(on_v1 ? builder_a.features_of(it->second)
                    : builder_b.features_of(it->second));
    const double expected =
        (on_v1 ? model_a : model_b)->classifier->predict_proba(X)[0];
    ASSERT_DOUBLE_EQ(row.score, expected)
        << "drive " << row.drive_id << " day " << row.day << " v"
        << row.model_version;
    ++verified;
  }
  EXPECT_GT(verified, rows.size() / 2);
  // Both versions actually scored traffic.
  EXPECT_GT(rows_before_swap, 0u);
  EXPECT_TRUE(std::any_of(rows.begin(), rows.end(), [&](const ScoredRow& r) {
    return r.model_version == v2;
  }));
  // Rows scored before the publish all carry v1.
  for (std::size_t i = 0; i < rows_before_swap; ++i) {
    EXPECT_EQ(rows[i].model_version, v1);
  }
}

TEST_F(ScoringEngineTest, ThreadedDrainMatchesManualDrain) {
  auto run = [&](bool manual, const fs::path& dir) {
    ModelRegistry registry(dir.string());
    registry.publish_pipeline(*pipeline_a_, 0, 100);
    EngineConfig config;
    config.manual_drain = manual;
    config.record_scores = true;
    config.queue_capacity = manual ? updates_->size() + 1 : 128;
    ScoringEngine engine(registry, config);
    for (const auto& update : *updates_) engine.submit(update);
    engine.flush();
    engine.stop();
    return engine.take_scored_rows();
  };
  const auto manual = run(true, dir_ / "manual");
  const auto threaded = run(false, dir_ / "threaded");
  ASSERT_EQ(manual.size(), threaded.size());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    EXPECT_EQ(manual[i].drive_id, threaded[i].drive_id);
    EXPECT_EQ(manual[i].day, threaded[i].day);
    EXPECT_DOUBLE_EQ(manual[i].score, threaded[i].score);
  }
}

TEST_F(ScoringEngineTest, RejectsZeroSizedQueueOrBatch) {
  ModelRegistry registry(dir_.string());
  EngineConfig config;
  config.queue_capacity = 0;
  EXPECT_THROW(ScoringEngine(registry, config), std::invalid_argument);
}

// Two engines in one process must keep disjoint stats: the registry is
// process-wide, but each engine gets its own mfpa_serve_* family members.
TEST_F(ScoringEngineTest, StatsAreIsolatedPerEngineInstance) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_a_, 0, 100);
  EngineConfig config;
  config.manual_drain = true;
  config.queue_capacity = updates_->size() + 1;
  ScoringEngine busy(registry, config);
  ScoringEngine idle(registry, config);
  for (std::size_t i = 0; i < 100; ++i) busy.submit((*updates_)[i]);
  busy.flush();
  EXPECT_EQ(busy.stats().submitted, 100u);
  EXPECT_EQ(idle.stats().submitted, 0u);
  EXPECT_EQ(idle.stats().batches, 0u);
  EXPECT_EQ(idle.stats().latency_us.total(), 0u);
}

// Concurrency hammer: multiple producers racing the threaded drain loop,
// repeated hot swaps racing the batch snapshot, and a stats() reader racing
// everything. The engine must neither lose accounting (conservation laws
// below) nor crash/tear; run under TSan this is the serving data-race gate.
TEST_F(ScoringEngineTest, HammerConcurrentSubmitSwapAndStats) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_a_, 0, 100);
  EngineConfig config;
  config.queue_capacity = 64;
  config.max_batch = 16;
  ScoringEngine engine(registry, config);

  constexpr int kProducers = 3;
  const std::size_t per_producer = updates_->size() / kProducers;
  std::atomic<bool> done{false};

  std::thread swapper([&] {
    // Alternate the published pipeline while traffic flows; every publish
    // is a full artifact write + RCU swap.
    int flips = 0;
    while (!done.load(std::memory_order_acquire) && flips < 6) {
      registry.publish_pipeline(flips % 2 == 0 ? *pipeline_b_ : *pipeline_a_,
                                0, 100 + flips);
      ++flips;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::thread reader([&] {
    // Snapshots while the hot path runs: totals must be monotone.
    std::uint64_t last_accepted = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto stats = engine.stats();
      EXPECT_GE(stats.accepted, last_accepted);
      EXPECT_LE(stats.accepted, stats.submitted);
      last_accepted = stats.accepted;
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::size_t lo = static_cast<std::size_t>(p) * per_producer;
      for (std::size_t i = lo; i < lo + per_producer; ++i) {
        engine.submit((*updates_)[i]);
      }
    });
  }
  for (auto& t : producers) t.join();
  engine.flush();
  done.store(true, std::memory_order_release);
  swapper.join();
  reader.join();
  engine.stop();

  const auto stats = engine.stats();
  const std::uint64_t sent = static_cast<std::uint64_t>(kProducers) *
                             per_producer;
  EXPECT_EQ(stats.submitted, sent);
  EXPECT_EQ(stats.accepted, sent);  // blocking backpressure: nothing shed
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.records_processed + stats.rejected, sent);
  EXPECT_EQ(stats.latency_us.total(), sent);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.rows_scored, 0u);
}

}  // namespace
}  // namespace mfpa::serve
