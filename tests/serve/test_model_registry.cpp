#include "serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/mfpa.hpp"
#include "core/preprocess.hpp"
#include "ml/flat_forest.hpp"
#include "ml/quantized_forest.hpp"
#include "sim/fleet.hpp"

namespace mfpa::serve {
namespace {
namespace fs = std::filesystem;

/// One trained pipeline shared by every test (training is the slow part).
class ModelRegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetSimulator fleet(sim::tiny_scenario(51));
    telemetry_ = new std::vector<sim::DriveTimeSeries>(
        fleet.generate_telemetry());
    core::MfpaConfig config;
    config.seed = 51;
    config.hyperparams = {{"n_trees", 10.0}, {"seed", 1.0}};
    pipeline_ = new core::MfpaPipeline(config);
    pipeline_->run(*telemetry_, fleet.tickets());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete telemetry_;
  }
  void SetUp() override {
    // Unique per test: ctest runs discovered tests as parallel processes.
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("mfpa_registry_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Scorable feature rows from the fitted pipeline's own builder.
  data::Matrix probe_rows(std::size_t limit = 64) const {
    const core::Preprocessor pre;
    const auto builder = pipeline_->make_builder();
    data::Matrix X(0, 0);
    for (const auto& series : *telemetry_) {
      const auto drive = pre.process_drive(series);
      for (const auto& r : drive.records) {
        if (X.rows() >= limit) return X;
        X.add_row(builder.features_of(r));
      }
    }
    return X;
  }

  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static core::MfpaPipeline* pipeline_;
  fs::path dir_;
};

std::vector<sim::DriveTimeSeries>* ModelRegistryTest::telemetry_ = nullptr;
core::MfpaPipeline* ModelRegistryTest::pipeline_ = nullptr;

TEST_F(ModelRegistryTest, StartsEmpty) {
  ModelRegistry registry(dir_.string());
  EXPECT_EQ(registry.current(), nullptr);
  EXPECT_EQ(registry.current_version(), 0);
  EXPECT_TRUE(registry.versions().empty());
}

TEST_F(ModelRegistryTest, PublishAssignsSequentialVersions) {
  ModelRegistry registry(dir_.string());
  EXPECT_EQ(registry.publish_pipeline(*pipeline_, 0, 100), 1);
  EXPECT_EQ(registry.publish_pipeline(*pipeline_, 0, 130), 2);
  EXPECT_EQ(registry.versions(), (std::vector<int>{1, 2}));
  EXPECT_EQ(registry.current_version(), 2);
}

TEST_F(ModelRegistryTest, ManifestCarriesDeploymentMetadata) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 17, 212);
  const auto model = registry.current();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->manifest.version, 1);
  EXPECT_EQ(model->manifest.algorithm, "RF");
  EXPECT_EQ(model->manifest.group, pipeline_->config().group);
  EXPECT_DOUBLE_EQ(model->manifest.threshold, pipeline_->threshold());
  EXPECT_EQ(model->manifest.train_lo, 17);
  EXPECT_EQ(model->manifest.train_hi, 212);
  EXPECT_NE(model->manifest.checksum, 0u);
  EXPECT_EQ(model->encoder.classes(),
            pipeline_->firmware_encoder().classes());
}

TEST_F(ModelRegistryTest, LoadedModelScoresIdentically) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  const auto X = probe_rows();
  ASSERT_GT(X.rows(), 0u);
  EXPECT_EQ(registry.current()->classifier->predict_proba(X),
            pipeline_->model().predict_proba(X));
}

TEST_F(ModelRegistryTest, ReopenRestoresCurrentVersion) {
  {
    ModelRegistry registry(dir_.string());
    registry.publish_pipeline(*pipeline_, 0, 100);
    registry.publish_pipeline(*pipeline_, 0, 130);
  }
  ModelRegistry reopened(dir_.string());
  EXPECT_EQ(reopened.current_version(), 2);
  EXPECT_EQ(reopened.current()->manifest.train_hi, 130);
}

TEST_F(ModelRegistryTest, ActivateRollsBackAndPersists) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  registry.publish_pipeline(*pipeline_, 0, 130);
  registry.activate(1);
  EXPECT_EQ(registry.current_version(), 1);
  ModelRegistry reopened(dir_.string());
  EXPECT_EQ(reopened.current_version(), 1);
}

TEST_F(ModelRegistryTest, PublishIsAnRcuSwap) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  // A reader's snapshot stays valid and unchanged across a publish.
  const auto snapshot = registry.current();
  registry.publish_pipeline(*pipeline_, 0, 130);
  EXPECT_EQ(snapshot->manifest.version, 1);
  EXPECT_EQ(snapshot->manifest.train_hi, 100);
  EXPECT_EQ(registry.current()->manifest.version, 2);
  const auto X = probe_rows();
  EXPECT_EQ(snapshot->classifier->predict_proba(X),
            pipeline_->model().predict_proba(X));
}

// quantize_models activation: loading a version compiles the uint8-code
// QuantizedForest form, and — because compile() quantizes against the
// ensemble's own thresholds — scoring through it stays bit-identical to
// the pipeline's float model.
TEST_F(ModelRegistryTest, QuantizeModelsActivatesQuantizedForm) {
  ModelRegistry registry(dir_.string(), 1, /*compile_models=*/false,
                         /*quantize_models=*/true);
  registry.publish_pipeline(*pipeline_, 0, 100);
  const auto model = registry.current();
  ASSERT_NE(model, nullptr);
  const auto* compiled =
      dynamic_cast<const ml::CompiledInference*>(model->classifier.get());
  ASSERT_NE(compiled, nullptr);
  ASSERT_NE(compiled->quantized(), nullptr);
  EXPECT_TRUE(compiled->quantized()->exact());
  const auto X = probe_rows();
  ASSERT_GT(X.rows(), 0u);
  EXPECT_EQ(model->classifier->predict_proba(X),
            pipeline_->model().predict_proba(X));
}

TEST_F(ModelRegistryTest, MissingVersionThrows) {
  ModelRegistry registry(dir_.string());
  EXPECT_THROW(registry.load_version(9), std::runtime_error);
  EXPECT_THROW(registry.activate(9), std::runtime_error);
}

TEST_F(ModelRegistryTest, CorruptPayloadIsRejected) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  const fs::path artifact = dir_ / "v000001.model";
  std::string bytes;
  {
    std::ifstream f(artifact, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  bytes[bytes.size() - bytes.size() / 4] ^= 0x01;  // deep inside the payload
  {
    std::ofstream f(artifact, std::ios::binary | std::ios::trunc);
    f << bytes;
  }
  EXPECT_THROW(registry.load_version(1), std::runtime_error);
}

TEST_F(ModelRegistryTest, ManifestChecksumMismatchIsRejected) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  const fs::path artifact = dir_ / "v000001.model";
  std::string bytes;
  {
    std::ifstream f(artifact, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  // Tamper with the manifest's checksum line (the first hex occurrence);
  // it no longer matches the payload framing.
  const std::size_t pos = bytes.find("checksum ") + 9;
  bytes[pos] = bytes[pos] == '0' ? '1' : '0';
  {
    std::ofstream f(artifact, std::ios::binary | std::ios::trunc);
    f << bytes;
  }
  EXPECT_THROW(registry.load_version(1), std::runtime_error);
}

TEST_F(ModelRegistryTest, TruncatedArtifactIsRejected) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  const fs::path artifact = dir_ / "v000001.model";
  fs::resize_file(artifact, fs::file_size(artifact) / 2);
  EXPECT_THROW(registry.load_version(1), std::runtime_error);
}

TEST_F(ModelRegistryTest, NoTempFilesLeftBehind) {
  ModelRegistry registry(dir_.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_FALSE(entry.path().filename().string().starts_with("."))
        << entry.path();
  }
}

// A crash between atomic_write's temp write and its rename leaves a
// ".<name>.tmp" orphan. It was never referenced by CURRENT, so the next
// registry to open the directory must sweep it and carry on serving the
// last durably published version.
TEST_F(ModelRegistryTest, SweepsStrayTempFilesFromACrashedPublish) {
  {
    ModelRegistry registry(dir_.string());
    registry.publish_pipeline(*pipeline_, 0, 100);
  }
  // Simulated mid-publish crash: the next artifact and a CURRENT marker
  // update both died before their renames.
  {
    std::ofstream tmp(dir_ / ".v000002.model.tmp", std::ios::binary);
    tmp << "partial artifact bytes";
    std::ofstream marker(dir_ / ".CURRENT.tmp", std::ios::binary);
    marker << "v000002\n";
  }
  ModelRegistry registry(dir_.string());
  EXPECT_EQ(registry.current_version(), 1);  // durable truth survives
  EXPECT_EQ(registry.versions(), (std::vector<int>{1}));
  EXPECT_FALSE(fs::exists(dir_ / ".v000002.model.tmp"));
  EXPECT_FALSE(fs::exists(dir_ / ".CURRENT.tmp"));
  // The sweep must not eat real artifacts: the next publish still works
  // and lands version 2.
  EXPECT_EQ(registry.publish_pipeline(*pipeline_, 0, 130), 2);
}

}  // namespace
}  // namespace mfpa::serve
