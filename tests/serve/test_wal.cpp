#include "serve/wal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace mfpa::serve {
namespace {
namespace fs = std::filesystem;

sim::DailyRecord make_record(DayIndex day, float seed) {
  sim::DailyRecord rec;
  rec.day = day;
  for (std::size_t i = 0; i < rec.smart.size(); ++i) {
    rec.smart[i] = seed + static_cast<float>(i) * 0.5f;
  }
  rec.firmware_index = static_cast<std::uint8_t>(day % 7);
  for (std::size_t i = 0; i < rec.w.size(); ++i) {
    rec.w[i] = static_cast<std::uint16_t>(day + static_cast<DayIndex>(i));
  }
  for (std::size_t i = 0; i < rec.b.size(); ++i) {
    rec.b[i] = static_cast<std::uint16_t>(i * 3);
  }
  return rec;
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

std::string read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("mfpa_wal_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  WalWriterConfig writer_config(std::size_t shards = 2) const {
    WalWriterConfig config;
    config.dir = dir_.string();
    config.shards = shards;
    config.fsync = false;  // throwaway tmpdir
    return config;
  }

  fs::path dir_;
};

TEST_F(WalTest, WalPayloadRoundTripsEveryField) {
  const sim::DailyRecord rec = make_record(37, 2.25f);
  const std::string payload = encode_wal_payload(991, 3, rec);
  const WalEntry entry = decode_wal_payload(55, payload);
  EXPECT_EQ(entry.lsn, 55u);
  EXPECT_EQ(entry.drive_id, 991u);
  EXPECT_EQ(entry.vendor, 3);
  EXPECT_EQ(entry.record.day, rec.day);
  EXPECT_EQ(entry.record.firmware_index, rec.firmware_index);
  EXPECT_EQ(entry.record.smart, rec.smart);
  EXPECT_EQ(entry.record.w, rec.w);
  EXPECT_EQ(entry.record.b, rec.b);
}

TEST_F(WalTest, AlertPayloadRoundTrips) {
  core::Alert alert;
  alert.drive_id = 123456789;
  alert.day = 87;
  alert.score = 0.73125;
  const core::Alert back = decode_alert_payload(encode_alert_payload(alert));
  EXPECT_EQ(back.drive_id, alert.drive_id);
  EXPECT_EQ(back.day, alert.day);
  EXPECT_DOUBLE_EQ(back.score, alert.score);
}

TEST_F(WalTest, FrameScanReturnsFramesInOrder) {
  std::string buf;
  append_frame(buf, 1, "alpha");
  append_frame(buf, 2, "beta");
  append_frame(buf, 3, std::string("\0binary\xff", 8));
  const std::string path = (dir_ / "frames.bin").string();
  write_bytes(path, buf);
  const FrameScan scan = scan_frames(path);
  ASSERT_EQ(scan.frames.size(), 3u);
  EXPECT_EQ(scan.frames[0].lsn, 1u);
  EXPECT_EQ(scan.frames[0].payload, "alpha");
  EXPECT_EQ(scan.frames[1].payload, "beta");
  EXPECT_EQ(scan.frames[2].payload, std::string("\0binary\xff", 8));
  EXPECT_EQ(scan.valid_bytes, buf.size());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST_F(WalTest, TornTailIsDiscardedNotFatal) {
  std::string buf;
  append_frame(buf, 1, "first");
  append_frame(buf, 2, "second");
  const std::size_t full = buf.size();
  buf.resize(full - 7);  // power loss mid final frame
  const std::string path = (dir_ / "torn.bin").string();
  write_bytes(path, buf);
  const FrameScan scan = scan_frames(path);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0].payload, "first");
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_GT(scan.torn_bytes, 0u);
}

TEST_F(WalTest, MidStreamCorruptionThrows) {
  std::string buf;
  append_frame(buf, 1, "first");
  const std::size_t first_end = buf.size();
  append_frame(buf, 2, "second");
  buf[first_end / 2] ^= 0x40;  // flip a bit inside frame 1's payload
  const std::string path = (dir_ / "hole.bin").string();
  write_bytes(path, buf);
  EXPECT_THROW(scan_frames(path), std::runtime_error);
}

TEST_F(WalTest, WriterRecoverRoundTripAcrossShards) {
  WalWriter writer(writer_config(3));
  writer.open_generation(0);
  std::vector<std::uint64_t> lsns;
  for (int i = 0; i < 40; ++i) {
    lsns.push_back(writer.append(static_cast<std::uint64_t>(i * 17 + 1), i % 4,
                                 make_record(10 + i, 1.0f)));
  }
  writer.flush();
  for (std::size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);

  WalRecoveryStats stats;
  const auto tail = recover_wal(dir_.string(), 0, &stats);
  ASSERT_EQ(tail.size(), 40u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].lsn, i + 1);
    EXPECT_EQ(tail[i].drive_id, i * 17 + 1);
    EXPECT_EQ(tail[i].record.day, 10 + static_cast<DayIndex>(i));
  }
  EXPECT_EQ(stats.records_replayable, 40u);
  EXPECT_EQ(stats.torn_tails, 0u);
}

TEST_F(WalTest, RecoverSkipsRecordsCoveredByCheckpoint) {
  WalWriter writer(writer_config());
  writer.open_generation(0);
  for (int i = 0; i < 20; ++i) {
    writer.append(static_cast<std::uint64_t>(i + 1), 0, make_record(i, 1.0f));
  }
  writer.flush();
  WalRecoveryStats stats;
  const auto tail = recover_wal(dir_.string(), 15, &stats);
  ASSERT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail.front().lsn, 16u);
  EXPECT_EQ(stats.records_skipped_applied, 15u);
}

TEST_F(WalTest, EmptyWalDirectoryRecoversToNothing) {
  WalRecoveryStats stats;
  const auto tail = recover_wal(dir_.string(), 0, &stats);  // no wal/ at all
  EXPECT_TRUE(tail.empty());
  EXPECT_EQ(stats.segments_scanned, 0u);

  fs::create_directories(dir_ / "wal");  // wal/ exists but is empty
  EXPECT_TRUE(recover_wal(dir_.string(), 0).empty());
}

TEST_F(WalTest, ZeroLengthSegmentIsHarmless) {
  WalWriter writer(writer_config());
  writer.open_generation(0);
  for (int i = 0; i < 8; ++i) {
    writer.append(static_cast<std::uint64_t>(i + 1), 0, make_record(i, 1.0f));
  }
  writer.flush();
  write_bytes((dir_ / "wal" / "shard-999.c0.wal").string(), "");
  const auto tail = recover_wal(dir_.string(), 0);
  EXPECT_EQ(tail.size(), 8u);
}

TEST_F(WalTest, ExactDuplicateFramesAreDropped) {
  WalWriter writer(writer_config(1));
  writer.open_generation(0);
  for (int i = 0; i < 6; ++i) {
    writer.append(static_cast<std::uint64_t>(i + 1), 0, make_record(i, 1.0f));
  }
  writer.flush();
  // Replay the whole segment onto itself: every LSN now appears twice with
  // identical bytes.
  std::string seg;
  for (const auto& entry : fs::directory_iterator(dir_ / "wal")) {
    seg = entry.path().string();
  }
  ASSERT_FALSE(seg.empty());
  const std::string bytes = read_bytes(seg);
  std::ofstream os(seg, std::ios::binary | std::ios::app);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.close();

  WalRecoveryStats stats;
  const auto tail = recover_wal(dir_.string(), 0, &stats);
  ASSERT_EQ(tail.size(), 6u);
  EXPECT_EQ(stats.records_skipped_duplicate, 6u);
}

TEST_F(WalTest, LsnCollisionWithDifferentBytesThrows) {
  fs::create_directories(dir_ / "wal");
  std::string buf;
  append_frame(buf, 1, "one payload");
  append_frame(buf, 1, "a different payload");  // same LSN, different bytes
  write_bytes((dir_ / "wal" / "shard-000.c0.wal").string(), buf);
  EXPECT_THROW(recover_wal(dir_.string(), 0), std::runtime_error);
}

TEST_F(WalTest, RecordsBeyondAnLsnGapAreDiscarded) {
  fs::create_directories(dir_ / "wal");
  std::string buf;
  append_frame(buf, 1, encode_wal_payload(1, 0, make_record(1, 1.0f)));
  append_frame(buf, 2, encode_wal_payload(2, 0, make_record(2, 1.0f)));
  // LSN 3 lost with its shard file; 4 survives but is past the gap.
  append_frame(buf, 4, encode_wal_payload(4, 0, make_record(4, 1.0f)));
  write_bytes((dir_ / "wal" / "shard-000.c0.wal").string(), buf);
  WalRecoveryStats stats;
  const auto tail = recover_wal(dir_.string(), 0, &stats);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.back().lsn, 2u);
  EXPECT_EQ(stats.records_skipped_gap, 1u);
}

TEST_F(WalTest, RotateRetainsFallbackGenerationAndDropsOlder) {
  WalWriter writer(writer_config(1));
  writer.open_generation(0);
  writer.append(1, 0, make_record(1, 1.0f));
  writer.rotate(/*ckpt_lsn=*/1, /*keep_from_lsn=*/0);   // gen c0 retained
  writer.append(2, 0, make_record(2, 1.0f));
  writer.rotate(/*ckpt_lsn=*/2, /*keep_from_lsn=*/1);   // c0 dropped, c1 kept
  writer.append(3, 0, make_record(3, 1.0f));
  writer.flush();

  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir_ / "wal")) {
    names.push_back(entry.path().filename().string());
  }
  EXPECT_EQ(names.size(), 2u);  // generations c1 and c2
  for (const auto& name : names) {
    EXPECT_EQ(name.find(".c0."), std::string::npos) << name;
  }
  // All three records still recoverable from the retained generations.
  const auto tail = recover_wal(dir_.string(), 1);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.front().lsn, 2u);
  EXPECT_EQ(tail.back().lsn, 3u);
}

TEST_F(WalTest, AlertLogRoundTripAndTruncation) {
  {
    AlertLog log(dir_.string(), /*fsync=*/false);
    log.open(0);
    for (int i = 0; i < 10; ++i) {
      log.append({static_cast<std::uint64_t>(i + 1), i, 0.5 + i * 0.01});
    }
    log.flush();
    EXPECT_EQ(log.count(), 10u);
  }
  // Checkpoint pinned only 7 durable alerts: the tail must be cut.
  const auto durable = recover_alert_log(dir_.string(), 7);
  ASSERT_EQ(durable.size(), 7u);
  EXPECT_EQ(durable.back().drive_id, 7u);
  // Appending after recovery continues at ordinal 8.
  AlertLog log(dir_.string(), /*fsync=*/false);
  log.open(7);
  log.append({99, 50, 0.9});
  log.flush();
  const auto again = recover_alert_log(dir_.string(), 8);
  ASSERT_EQ(again.size(), 8u);
  EXPECT_EQ(again.back().drive_id, 99u);
}

TEST_F(WalTest, AlertLogShorterThanPinnedCountThrows) {
  AlertLog log(dir_.string(), /*fsync=*/false);
  log.open(0);
  log.append({1, 1, 0.6});
  log.flush();
  EXPECT_THROW(recover_alert_log(dir_.string(), 5), std::runtime_error);
}

}  // namespace
}  // namespace mfpa::serve
