// Cross-implementation property tests: fast algorithms checked against
// brute-force reference implementations on randomized inputs.
#include <gtest/gtest.h>

#include <numeric>

#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

/// O(n^2) reference AUC: fraction of (pos, neg) pairs ranked correctly,
/// ties counting half.
double brute_force_auc(const std::vector<int>& y,
                       const std::vector<double>& s) {
  double wins = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] != 1) continue;
    for (std::size_t j = 0; j < y.size(); ++j) {
      if (y[j] != 0) continue;
      ++pairs;
      if (s[i] > s[j]) {
        wins += 1.0;
      } else if (s[i] == s[j]) {
        wins += 0.5;
      }
    }
  }
  return pairs ? wins / static_cast<double>(pairs) : 0.5;
}

class AucPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(AucPropertySweep, RankAucMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 40 + static_cast<std::size_t>(rng.uniform_int(0, 160));
  std::vector<int> y(n);
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.bernoulli(0.3) ? 1 : 0;
    // Quantize to force frequent ties.
    s[i] = static_cast<double>(rng.uniform_int(0, 9)) / 10.0;
  }
  // Guarantee both classes.
  y[0] = 1;
  y[1] = 0;
  EXPECT_NEAR(auc(y, s), brute_force_auc(y, s), 1e-12);
}

TEST_P(AucPropertySweep, AucInvariantUnderMonotoneTransform) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const std::size_t n = 100;
  std::vector<int> y(n);
  std::vector<double> s(n), transformed(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.bernoulli(0.4) ? 1 : 0;
    s[i] = rng.uniform();
    transformed[i] = 3.0 * s[i] * s[i] + 1.0;  // strictly increasing on [0,1]
  }
  y[0] = 1;
  y[1] = 0;
  EXPECT_NEAR(auc(y, s), auc(y, transformed), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucPropertySweep, ::testing::Range(1, 11));

class TreePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(TreePropertySweep, PredictionInvariantUnderRowPermutation) {
  // With all features considered at every split, the CART fit is a
  // deterministic function of the (X, y) *set* — shuffling rows must not
  // change the learned function.
  const auto [X, y] =
      testing::make_blobs(80, 3, 1.5, static_cast<std::uint64_t>(GetParam()));
  DecisionTreeClassifier a({{"max_depth", 6}, {"seed", 1}});
  a.fit(X, y);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const auto perm = rng.permutation(X.rows());
  data::Matrix Xp(X.rows(), X.cols());
  std::vector<int> yp(y.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    for (std::size_t c = 0; c < X.cols(); ++c) Xp(i, c) = X(perm[i], c);
    yp[i] = y[perm[i]];
  }
  DecisionTreeClassifier b({{"max_depth", 6}, {"seed", 1}});
  b.fit(Xp, yp);

  data::Matrix probe(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t c = 0; c < 3; ++c) probe(i, c) = rng.uniform(-3.0, 6.0);
  }
  const auto pa = a.predict_proba(probe);
  const auto pb = b.predict_proba(probe);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(pa[i], pb[i], 1e-12);
  }
}

TEST_P(TreePropertySweep, PredictionInvariantUnderFeatureScaling) {
  // Threshold splits are scale-equivariant: multiplying a feature by a
  // positive constant must not change predictions for likewise-scaled
  // probes.
  const auto [X, y] =
      testing::make_blobs(60, 2, 2.0, static_cast<std::uint64_t>(GetParam()) + 77);
  data::Matrix Xs = X;
  for (std::size_t r = 0; r < Xs.rows(); ++r) Xs(r, 0) *= 1000.0;

  DecisionTreeClassifier a({{"max_depth", 5}, {"seed", 1}});
  DecisionTreeClassifier b({{"max_depth", 5}, {"seed", 1}});
  a.fit(X, y);
  b.fit(Xs, y);

  const auto pa = a.predict_proba(X);
  const auto pb = b.predict_proba(Xs);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(pa[i], pb[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertySweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace mfpa::ml
