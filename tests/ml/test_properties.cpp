// Cross-implementation property tests: fast algorithms checked against
// brute-force reference implementations on randomized inputs, plus the
// observability no-interference properties (instrumented pipelines must be
// bit-identical to uninstrumented ones; span streams must stay well-formed
// under randomized threaded workloads).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <thread>

#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

/// O(n^2) reference AUC: fraction of (pos, neg) pairs ranked correctly,
/// ties counting half.
double brute_force_auc(const std::vector<int>& y,
                       const std::vector<double>& s) {
  double wins = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] != 1) continue;
    for (std::size_t j = 0; j < y.size(); ++j) {
      if (y[j] != 0) continue;
      ++pairs;
      if (s[i] > s[j]) {
        wins += 1.0;
      } else if (s[i] == s[j]) {
        wins += 0.5;
      }
    }
  }
  return pairs ? wins / static_cast<double>(pairs) : 0.5;
}

class AucPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(AucPropertySweep, RankAucMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 40 + static_cast<std::size_t>(rng.uniform_int(0, 160));
  std::vector<int> y(n);
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.bernoulli(0.3) ? 1 : 0;
    // Quantize to force frequent ties.
    s[i] = static_cast<double>(rng.uniform_int(0, 9)) / 10.0;
  }
  // Guarantee both classes.
  y[0] = 1;
  y[1] = 0;
  EXPECT_NEAR(auc(y, s), brute_force_auc(y, s), 1e-12);
}

TEST_P(AucPropertySweep, AucInvariantUnderMonotoneTransform) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const std::size_t n = 100;
  std::vector<int> y(n);
  std::vector<double> s(n), transformed(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.bernoulli(0.4) ? 1 : 0;
    s[i] = rng.uniform();
    transformed[i] = 3.0 * s[i] * s[i] + 1.0;  // strictly increasing on [0,1]
  }
  y[0] = 1;
  y[1] = 0;
  EXPECT_NEAR(auc(y, s), auc(y, transformed), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucPropertySweep, ::testing::Range(1, 11));

class TreePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(TreePropertySweep, PredictionInvariantUnderRowPermutation) {
  // With all features considered at every split, the CART fit is a
  // deterministic function of the (X, y) *set* — shuffling rows must not
  // change the learned function.
  const auto [X, y] =
      testing::make_blobs(80, 3, 1.5, static_cast<std::uint64_t>(GetParam()));
  DecisionTreeClassifier a({{"max_depth", 6}, {"seed", 1}});
  a.fit(X, y);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const auto perm = rng.permutation(X.rows());
  data::Matrix Xp(X.rows(), X.cols());
  std::vector<int> yp(y.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    for (std::size_t c = 0; c < X.cols(); ++c) Xp(i, c) = X(perm[i], c);
    yp[i] = y[perm[i]];
  }
  DecisionTreeClassifier b({{"max_depth", 6}, {"seed", 1}});
  b.fit(Xp, yp);

  data::Matrix probe(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t c = 0; c < 3; ++c) probe(i, c) = rng.uniform(-3.0, 6.0);
  }
  const auto pa = a.predict_proba(probe);
  const auto pb = b.predict_proba(probe);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(pa[i], pb[i], 1e-12);
  }
}

TEST_P(TreePropertySweep, PredictionInvariantUnderFeatureScaling) {
  // Threshold splits are scale-equivariant: multiplying a feature by a
  // positive constant must not change predictions for likewise-scaled
  // probes.
  const auto [X, y] =
      testing::make_blobs(60, 2, 2.0, static_cast<std::uint64_t>(GetParam()) + 77);
  data::Matrix Xs = X;
  for (std::size_t r = 0; r < Xs.rows(); ++r) Xs(r, 0) *= 1000.0;

  DecisionTreeClassifier a({{"max_depth", 5}, {"seed", 1}});
  DecisionTreeClassifier b({{"max_depth", 5}, {"seed", 1}});
  a.fit(X, y);
  b.fit(Xs, y);

  const auto pa = a.predict_proba(X);
  const auto pb = b.predict_proba(Xs);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(pa[i], pb[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertySweep, ::testing::Range(1, 9));

class ObservabilityPropertySweep : public ::testing::TestWithParam<int> {};

// Metrics and spans are pure observers: a pipeline run with the registry
// hammered and tracing fully on must produce *bit-identical* predictions to
// one run with everything at defaults. Catches any instrumentation that
// leaks into RNG draws, iteration order, or numeric state.
TEST_P(ObservabilityPropertySweep, InstrumentedFitPredictIsBitIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto [X, y] = testing::make_blobs(60, 4, 1.0, seed);
  Rng rng(seed + 1234);
  data::Matrix probe(40, 4);
  for (std::size_t i = 0; i < probe.rows(); ++i) {
    for (std::size_t c = 0; c < probe.cols(); ++c) {
      probe(i, c) = rng.uniform(-3.0, 4.0);
    }
  }
  const Hyperparams params = {
      {"n_trees", 12}, {"max_depth", 5}, {"seed", 7}, {"threads", 2}};

  auto run = [&](bool instrumented) {
    auto registry = obs::MetricsRegistry::create_isolated();
    obs::Tracer tracer;
    obs::ScopedMetricsOverride metrics_scope(*registry);
    obs::ScopedTracerOverride trace_scope(tracer);
    if (instrumented) tracer.set_sample_every(1);  // trace everything
    RandomForestClassifier model(params);
    model.fit(X, y);
    auto scores = model.predict_proba(probe);
    if (instrumented) {
      // The instrumented run must actually have exercised the registry.
      EXPECT_GT(registry->size(), 0u);
    }
    return scores;
  };
  const auto baseline = run(false);
  const auto instrumented = run(true);
  ASSERT_EQ(baseline.size(), instrumented.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(baseline[i], instrumented[i]) << "probe row " << i;
  }
}

// Randomized threaded workload: arbitrary interleavings of nested spans on
// several threads must always export a well-formed stream — per (thread,
// root) the depths step by at most one, intervals nest, and nothing is
// recorded past its parent's close.
TEST_P(ObservabilityPropertySweep, SpanNestingStaysWellFormedUnderThreads) {
  obs::Tracer tracer;
  tracer.set_sample_every(1);
  obs::ScopedTracerOverride scope(tracer);
  const auto seed = static_cast<std::uint64_t>(GetParam());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([seed, t] {
      Rng rng(seed * 97 + static_cast<std::uint64_t>(t));
      static constexpr const char* kNames[] = {"alpha", "beta", "gamma",
                                               "delta"};
      for (int root = 0; root < 8; ++root) {
        obs::ScopedSpan top("root");
        // Random recursive nesting up to depth 4.
        std::function<void(int)> descend = [&](int depth) {
          if (depth >= 4 || !rng.bernoulli(0.6)) return;
          obs::ScopedSpan span(kNames[depth]);
          descend(depth + 1);
          if (rng.bernoulli(0.3)) {
            obs::ScopedSpan sibling(kNames[depth]);
            descend(depth + 1);
          }
        };
        descend(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::map<std::uint64_t, std::vector<obs::SpanRecord>> by_thread;
  for (auto& s : tracer.take_spans()) by_thread[s.thread].push_back(s);
  EXPECT_EQ(by_thread.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, spans] : by_thread) {
    // Exactly 8 roots per thread, each closing after its whole subtree.
    EXPECT_EQ(std::count_if(
                  spans.begin(), spans.end(),
                  [](const obs::SpanRecord& s) { return s.depth == 0; }),
              8);
    // Spans close LIFO: any span recorded before span S with greater depth
    // and start within S's window must be fully contained in S.
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_LE(spans[i].start_ns, spans[i].end_ns);
      for (std::size_t j = 0; j < i; ++j) {
        if (spans[j].depth > spans[i].depth &&
            spans[j].start_ns >= spans[i].start_ns) {
          EXPECT_LE(spans[j].end_ns, spans[i].end_ns)
              << "thread " << tid << ": deeper span escaped its ancestor";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObservabilityPropertySweep,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace mfpa::ml
