#include <gtest/gtest.h>

#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

using testing::accuracy_of;
using testing::make_blobs;
using testing::make_xor;

TEST(RandomForest, SolvesXor) {
  const auto [X, y] = make_xor(500, 31);
  RandomForestClassifier rf({{"n_trees", 30}, {"max_depth", 8}});
  rf.fit(X, y);
  EXPECT_GT(accuracy_of(rf.predict_proba(X), y), 0.95);
}

TEST(RandomForest, DeterministicGivenSeed) {
  const auto [X, y] = make_blobs(100, 3, 2.0, 32);
  RandomForestClassifier a({{"n_trees", 10}, {"seed", 5}});
  RandomForestClassifier b({{"n_trees", 10}, {"seed", 5}});
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.predict_proba(X), b.predict_proba(X));
}

TEST(RandomForest, DifferentSeedsDiffer) {
  const auto [X, y] = make_blobs(100, 3, 1.0, 33);
  RandomForestClassifier a({{"n_trees", 5}, {"seed", 1}});
  RandomForestClassifier b({{"n_trees", 5}, {"seed", 2}});
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_NE(a.predict_proba(X), b.predict_proba(X));
}

TEST(RandomForest, ThreadedMatchesSerial) {
  const auto [X, y] = make_blobs(150, 4, 2.0, 34);
  RandomForestClassifier serial({{"n_trees", 12}, {"seed", 7}, {"threads", 1}});
  RandomForestClassifier parallel({{"n_trees", 12}, {"seed", 7}, {"threads", 4}});
  serial.fit(X, y);
  parallel.fit(X, y);
  EXPECT_EQ(serial.predict_proba(X), parallel.predict_proba(X));
}

TEST(RandomForest, TreeCountMatchesParam) {
  const auto [X, y] = make_blobs(50, 2, 2.0, 35);
  RandomForestClassifier rf({{"n_trees", 17}});
  rf.fit(X, y);
  EXPECT_EQ(rf.tree_count(), 17u);
}

TEST(RandomForest, ProbabilitiesInRange) {
  const auto [X, y] = make_blobs(100, 2, 1.0, 36);
  RandomForestClassifier rf({{"n_trees", 20}});
  rf.fit(X, y);
  for (double p : rf.predict_proba(X)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForest, ImportanceFindsInformativeFeatures) {
  // Features 0-1 carry the signal; 2-5 are noise.
  Rng rng(37);
  data::Matrix X(400, 6);
  std::vector<int> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t d = 0; d < 6; ++d) X(i, d) = rng.uniform(-1.0, 1.0);
    y[i] = (X(i, 0) + X(i, 1)) > 0.0 ? 1 : 0;
  }
  RandomForestClassifier rf({{"n_trees", 30}});
  rf.fit(X, y);
  const auto imp = rf.feature_importance();
  ASSERT_EQ(imp.size(), 6u);
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(imp[0] + imp[1], 0.7);
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForestClassifier rf;
  data::Matrix X{{0.0}};
  EXPECT_THROW(rf.predict_proba(X), std::logic_error);
}

TEST(RandomForest, NoBootstrapStillFits) {
  const auto [X, y] = make_blobs(100, 2, 3.0, 38);
  RandomForestClassifier rf({{"n_trees", 5}, {"bootstrap", 0}});
  rf.fit(X, y);
  EXPECT_GT(accuracy_of(rf.predict_proba(X), y), 0.95);
}

TEST(Gbdt, SolvesXor) {
  const auto [X, y] = make_xor(500, 41);
  GbdtClassifier gbdt({{"n_rounds", 40}, {"max_depth", 4}});
  gbdt.fit(X, y);
  EXPECT_GT(accuracy_of(gbdt.predict_proba(X), y), 0.95);
}

TEST(Gbdt, SeparatesBlobs) {
  const auto [X, y] = make_blobs(200, 3, 2.5, 42);
  GbdtClassifier gbdt;
  gbdt.fit(X, y);
  EXPECT_GT(accuracy_of(gbdt.predict_proba(X), y), 0.97);
}

TEST(Gbdt, RoundCountMatchesParam) {
  const auto [X, y] = make_blobs(50, 2, 2.0, 43);
  GbdtClassifier gbdt({{"n_rounds", 13}});
  gbdt.fit(X, y);
  EXPECT_EQ(gbdt.round_count(), 13u);
}

TEST(Gbdt, BaseScoreReflectsImbalance) {
  // Without informative features, predictions approach the base rate.
  Rng rng(44);
  data::Matrix X(200, 1);
  std::vector<int> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    X(i, 0) = rng.uniform();
    y[i] = i < 20 ? 1 : 0;  // 10% positive
  }
  GbdtClassifier gbdt({{"n_rounds", 5}, {"max_depth", 2}});
  gbdt.fit(X, y);
  double mean_p = 0.0;
  for (double p : gbdt.predict_proba(X)) mean_p += p;
  EXPECT_NEAR(mean_p / 200.0, 0.1, 0.06);
}

TEST(Gbdt, DeterministicGivenSeed) {
  const auto [X, y] = make_blobs(100, 2, 2.0, 45);
  GbdtClassifier a({{"seed", 3}}), b({{"seed", 3}});
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.predict_proba(X), b.predict_proba(X));
}

TEST(Gbdt, MoreRoundsFitTighter) {
  const auto [X, y] = make_xor(400, 46);
  GbdtClassifier small({{"n_rounds", 3}, {"max_depth", 3}});
  GbdtClassifier big({{"n_rounds", 60}, {"max_depth", 3}});
  small.fit(X, y);
  big.fit(X, y);
  EXPECT_GT(accuracy_of(big.predict_proba(X), y),
            accuracy_of(small.predict_proba(X), y));
}

TEST(Gbdt, ImportanceNormalized) {
  const auto [X, y] = make_blobs(100, 4, 2.0, 47);
  GbdtClassifier gbdt({{"n_rounds", 10}});
  gbdt.fit(X, y);
  const auto imp = gbdt.feature_importance();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Gbdt, PredictBeforeFitThrows) {
  GbdtClassifier gbdt;
  data::Matrix X{{0.0}};
  EXPECT_THROW(gbdt.predict_proba(X), std::logic_error);
}

}  // namespace
}  // namespace mfpa::ml
