// QuantizedForest suite: the tolerance contract under test is the one
// documented in ml/quantized_forest.hpp — compile() (cuts from the
// ensemble's own thresholds) is *bit-identical* to the node-pointer path,
// compile_binned() is bit-identical exactly when every threshold is found
// among the binning's cuts (always true for hist-trained models), and the
// BinnedMatrix scoring overload matches the Matrix overload on NaN-free
// data.
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/binned_matrix.hpp"
#include "data/matrix.hpp"
#include "ml/gbdt.hpp"
#include "ml/quantized_forest.hpp"
#include "ml/random_forest.hpp"

namespace mfpa::ml {
namespace {

std::pair<data::Matrix, std::vector<int>> blob_data(std::size_t n,
                                                    std::size_t d,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  data::Matrix X(n, d);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i % 3 == 0 ? 1 : 0;
    y[i] = label;
    for (std::size_t c = 0; c < d; ++c) {
      X(i, c) = rng.normal(label * 1.5, 1.0);
    }
  }
  return {std::move(X), std::move(y)};
}

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

TEST(QuantizedForest, RfParityBitIdentical) {
  const auto [X, y] = blob_data(400, 12, 7);
  RandomForestClassifier rf({{"n_trees", 25}, {"seed", 3}});
  rf.fit(X, y);
  const auto pointer = rf.predict_proba(X);
  ASSERT_TRUE(rf.compile_quantized());
  ASSERT_NE(rf.quantized(), nullptr);
  EXPECT_TRUE(rf.quantized()->exact());
  const auto quantized = rf.predict_proba(X);
  expect_bit_identical(pointer, quantized);
}

TEST(QuantizedForest, GbdtParityBitIdentical) {
  const auto [X, y] = blob_data(400, 12, 11);
  GbdtClassifier gbdt({{"n_rounds", 30}, {"seed", 5}});
  gbdt.fit(X, y);
  const auto pointer = gbdt.predict_proba(X);
  ASSERT_TRUE(gbdt.compile_quantized());
  EXPECT_TRUE(gbdt.quantized()->exact());
  expect_bit_identical(pointer, gbdt.predict_proba(X));
}

TEST(QuantizedForest, PreferredOverFlatWhenBothCompiled) {
  const auto [X, y] = blob_data(200, 8, 13);
  RandomForestClassifier rf({{"n_trees", 10}, {"seed", 1}});
  rf.fit(X, y);
  const auto pointer = rf.predict_proba(X);
  ASSERT_TRUE(rf.compile());
  ASSERT_TRUE(rf.compile_quantized());
  // Routing order is unobservable through probabilities (all three paths
  // are bit-identical); this pins the contract that enabling both never
  // changes results.
  expect_bit_identical(pointer, rf.predict_proba(X));
}

TEST(QuantizedForest, NanFeaturesDescendRightLikeFloat) {
  const auto [X, y] = blob_data(300, 8, 17);
  RandomForestClassifier rf({{"n_trees", 15}, {"seed", 2}});
  rf.fit(X, y);
  data::Matrix dirty = X;
  Rng rng(23);
  for (std::size_t r = 0; r < dirty.rows(); ++r) {
    for (std::size_t c = 0; c < dirty.cols(); ++c) {
      if (rng.bernoulli(0.15)) {
        dirty(r, c) = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  const auto pointer = rf.predict_proba(dirty);
  ASSERT_TRUE(rf.compile_quantized());
  const auto quantized = rf.predict_proba(dirty);
  expect_bit_identical(pointer, quantized);
  for (const double p : quantized) EXPECT_FALSE(std::isnan(p));
}

TEST(QuantizedForest, SingleNodeTreesQuantize) {
  data::Matrix X(50, 4, 1.0);  // constant features: every tree is a leaf
  std::vector<int> y(50, 0);
  for (std::size_t i = 0; i < 25; ++i) y[i] = 1;
  RandomForestClassifier rf({{"n_trees", 5}, {"seed", 1}});
  rf.fit(X, y);
  const auto pointer = rf.predict_proba(X);
  ASSERT_TRUE(rf.compile_quantized());
  EXPECT_EQ(rf.quantized()->node_count(), 5u);
  EXPECT_EQ(rf.quantized()->leaf_count(), 5u);
  expect_bit_identical(pointer, rf.predict_proba(X));
}

TEST(QuantizedForest, CompileBinnedHistTrainedIsExact) {
  const auto [X, y] = blob_data(500, 10, 19);
  RandomForestClassifier rf({{"n_trees", 20}, {"seed", 4}});
  rf.fit(X, y);  // hist split (the default): thresholds are bin cuts
  const auto pointer = rf.predict_proba(X);

  const data::BinnedMatrix bins(X);
  const auto quant = QuantizedForest::compile_binned(
      rf.trees(), bins, QuantizedForest::Output::kMeanClamp, 1.0, 0.0);
  // Hist-trained thresholds are drawn from exactly these cuts, so every
  // node code is exact and scoring is bit-identical to the float paths.
  EXPECT_TRUE(quant.exact());
  expect_bit_identical(pointer, quant.predict(X));
  // Scoring the pre-binned codes directly skips the encode entirely and
  // must agree (no NaNs here, so the BinnedMatrix encoding caveat is moot).
  expect_bit_identical(pointer, quant.predict(bins));
}

TEST(QuantizedForest, BinnedScoringRejectsForeignCuts) {
  const auto [X, y] = blob_data(300, 6, 29);
  RandomForestClassifier rf({{"n_trees", 8}, {"seed", 4}});
  rf.fit(X, y);
  const data::BinnedMatrix bins(X);
  const auto quant = QuantizedForest::compile_binned(
      rf.trees(), bins, QuantizedForest::Output::kMeanClamp, 1.0, 0.0);
  // A binning with different edges produces codes that are meaningless
  // under this forest's cut arrays; scoring must refuse them.
  const auto [X2, y2] = blob_data(300, 6, 31);
  const data::BinnedMatrix other(X2);
  std::vector<double> out(other.rows());
  EXPECT_THROW(quant.predict_into(other, out), std::invalid_argument);
}

TEST(QuantizedForest, TooManyDistinctThresholdsRefusesToQuantize) {
  // Exact-split training on a large continuous column produces far more
  // than 255 distinct midpoint thresholds across a deep bagged ensemble.
  const auto [X, y] = blob_data(2000, 2, 37);
  RandomForestClassifier rf({{"n_trees", 30},
                             {"seed", 1},
                             {"split_method", 0},
                             {"max_depth", 20}});
  rf.fit(X, y);
  std::size_t max_distinct = 0;
  {
    std::vector<std::vector<double>> thr(2);
    for (const auto& tree : rf.trees()) {
      for (const auto& node : tree.nodes()) {
        if (node.feature >= 0) {
          thr[static_cast<std::size_t>(node.feature)].push_back(
              node.threshold);
        }
      }
    }
    for (auto& t : thr) {
      std::sort(t.begin(), t.end());
      t.erase(std::unique(t.begin(), t.end()), t.end());
      max_distinct = std::max(max_distinct, t.size());
    }
  }
  ASSERT_GT(max_distinct, 255u) << "fixture no longer stresses the cap";
  EXPECT_THROW(QuantizedForest::compile(rf.trees(),
                                        QuantizedForest::Output::kMeanClamp,
                                        1.0, 0.0),
               std::invalid_argument);
  // The classifier entry point reports the same condition gracefully.
  EXPECT_FALSE(rf.compile_quantized());
  EXPECT_EQ(rf.quantized(), nullptr);
}

TEST(QuantizedForest, ExactSplitLowCardinalityStillQuantizes) {
  // Exact-split training over a handful of distinct values stays under the
  // 255-threshold cap, so even the exact path quantizes bit-identically.
  Rng rng(41);
  data::Matrix X(300, 5);
  std::vector<int> y(300);
  for (std::size_t r = 0; r < 300; ++r) {
    y[r] = r % 4 == 0 ? 1 : 0;
    for (std::size_t c = 0; c < 5; ++c) {
      X(r, c) = static_cast<double>(rng.uniform_int(0, 9)) + y[r];
    }
  }
  RandomForestClassifier rf(
      {{"n_trees", 12}, {"seed", 2}, {"split_method", 0}});
  rf.fit(X, y);
  const auto pointer = rf.predict_proba(X);
  ASSERT_TRUE(rf.compile_quantized());
  EXPECT_TRUE(rf.quantized()->exact());
  expect_bit_identical(pointer, rf.predict_proba(X));
}

TEST(QuantizedForest, ThreadCountInvariance) {
  const auto [X, y] = blob_data(500, 9, 43);
  GbdtClassifier gbdt({{"n_rounds", 20}, {"seed", 6}});
  gbdt.fit(X, y);
  ASSERT_TRUE(gbdt.compile_quantized());
  const QuantizedForest& quant = *gbdt.quantized();
  const auto t1 = quant.predict(X, 1);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (std::size_t t = 2; t <= std::min<std::size_t>(hw, 8); ++t) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    expect_bit_identical(t1, quant.predict(X, t));
  }
  expect_bit_identical(t1, quant.predict(X, 0));
}

TEST(QuantizedForest, RefitAndReloadInvalidateQuantizedForm) {
  const auto [X, y] = blob_data(120, 5, 47);
  RandomForestClassifier rf({{"n_trees", 6}, {"seed", 4}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile_quantized());
  ASSERT_NE(rf.quantized(), nullptr);
  rf.fit(X, y);
  EXPECT_EQ(rf.quantized(), nullptr) << "stale quantized trees would mis-score";
}

TEST(QuantizedForest, CompileBeforeFitReturnsFalse) {
  RandomForestClassifier rf;
  EXPECT_FALSE(rf.compile_quantized());
  EXPECT_EQ(rf.quantized(), nullptr);
  GbdtClassifier gbdt;
  EXPECT_FALSE(gbdt.compile_quantized());
}

TEST(QuantizedForest, LayoutAccounting) {
  const auto [X, y] = blob_data(200, 7, 53);
  RandomForestClassifier rf({{"n_trees", 9}, {"seed", 2}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile_quantized());
  const QuantizedForest& quant = *rf.quantized();
  std::size_t expected_nodes = 0;
  std::size_t expected_leaves = 0;
  for (const auto& tree : rf.trees()) {
    expected_nodes += tree.nodes().size();
    for (const auto& node : tree.nodes()) expected_leaves += node.feature < 0;
  }
  EXPECT_EQ(quant.tree_count(), 9u);
  EXPECT_EQ(quant.node_count(), expected_nodes);
  EXPECT_EQ(quant.leaf_count(), expected_leaves);
  std::size_t cut_bytes = 0;
  for (std::size_t f = 0; f < quant.n_features(); ++f) {
    EXPECT_LE(quant.cuts(f).size(), 255u);
    cut_bytes += quant.cuts(f).size() * sizeof(double);
  }
  // 9 bytes of traversal data per node (int32 feat, uint8 code, int32
  // left) plus hoisted leaf doubles, roots, and the cut arrays.
  EXPECT_EQ(quant.bytes(),
            expected_nodes * (2 * sizeof(std::int32_t) + 1) +
                expected_leaves * sizeof(double) +
                quant.tree_count() * sizeof(std::int32_t) + cut_bytes);
}

TEST(QuantizedForest, ErrorPaths) {
  const QuantizedForest empty;
  data::Matrix X(3, 2, 0.0);
  std::vector<double> out(3);
  EXPECT_THROW(empty.predict_into(X, out), std::logic_error);
  EXPECT_THROW(QuantizedForest::compile({}, QuantizedForest::Output::kMeanClamp,
                                        1.0, 0.0),
               std::invalid_argument);

  const auto [Xf, yf] = blob_data(60, 4, 59);
  RandomForestClassifier rf({{"n_trees", 3}, {"seed", 1}});
  rf.fit(Xf, yf);
  ASSERT_TRUE(rf.compile_quantized());
  std::vector<double> wrong(Xf.rows() + 1);
  EXPECT_THROW(rf.quantized()->predict_into(Xf, wrong), std::invalid_argument);
  data::Matrix narrow(10, 1, 0.5);  // fewer columns than the feature space
  std::vector<double> nout(10);
  EXPECT_THROW(rf.quantized()->predict_into(narrow, nout),
               std::invalid_argument);
}

}  // namespace
}  // namespace mfpa::ml
