#include <gtest/gtest.h>

#include "ml/logistic.hpp"
#include "ml/svm.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

using testing::accuracy_of;
using testing::make_blobs;
using testing::make_xor;

TEST(LogisticRegression, SeparatesBlobs) {
  const auto [X, y] = make_blobs(200, 4, 3.0, 11);
  LogisticRegression lr;
  lr.fit(X, y);
  EXPECT_GT(accuracy_of(lr.predict_proba(X), y), 0.97);
}

TEST(LogisticRegression, WeightsPointTowardPositives) {
  const auto [X, y] = make_blobs(200, 3, 3.0, 12);
  LogisticRegression lr;
  lr.fit(X, y);
  for (double w : lr.weights()) EXPECT_GT(w, 0.0);
}

TEST(LogisticRegression, CannotSolveXor) {
  const auto [X, y] = make_xor(400, 13);
  LogisticRegression lr;
  lr.fit(X, y);
  EXPECT_LT(accuracy_of(lr.predict_proba(X), y), 0.70);
}

TEST(LogisticRegression, DeterministicGivenSeed) {
  const auto [X, y] = make_blobs(50, 2, 2.0, 14);
  LogisticRegression a({{"seed", 9}}), b({{"seed", 9}});
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(LogisticRegression, PredictBeforeFitThrows) {
  LogisticRegression lr;
  data::Matrix X{{0.0}};
  EXPECT_THROW(lr.predict_proba(X), std::logic_error);
}

TEST(LogisticRegression, ScalesInternally) {
  // Wildly different feature scales would break unscaled SGD.
  Rng rng(15);
  data::Matrix X(200, 2);
  std::vector<int> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const int label = i < 100 ? 0 : 1;
    y[i] = label;
    X(i, 0) = rng.normal(label * 3.0, 1.0) * 1e6;
    X(i, 1) = rng.normal(label * 3.0, 1.0) * 1e-6;
  }
  LogisticRegression lr;
  lr.fit(X, y);
  EXPECT_GT(accuracy_of(lr.predict_proba(X), y), 0.95);
}

TEST(LinearSVM, SeparatesBlobs) {
  const auto [X, y] = make_blobs(200, 4, 3.0, 21);
  LinearSVM svm;
  svm.fit(X, y);
  EXPECT_GT(accuracy_of(svm.predict_proba(X), y), 0.97);
}

TEST(LinearSVM, DecisionFunctionSignMatchesClass) {
  const auto [X, y] = make_blobs(200, 2, 4.0, 22);
  LinearSVM svm;
  svm.fit(X, y);
  const auto margins = svm.decision_function(X);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    correct += (margins[i] > 0.0) == (y[i] == 1);
  }
  // The raw Pegasos bias is only lightly tuned (Platt calibration fixes the
  // operating point), so the uncalibrated sign is merely "mostly right".
  EXPECT_GT(static_cast<double>(correct) / y.size(), 0.9);
}

TEST(LinearSVM, PlattProbabilitiesCalibratedDirection) {
  const auto [X, y] = make_blobs(200, 2, 4.0, 23);
  LinearSVM svm;
  svm.fit(X, y);
  const auto probs = svm.predict_proba(X);
  double mean_pos = 0.0, mean_neg = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    (y[i] == 1 ? mean_pos : mean_neg) += probs[i];
  }
  mean_pos /= 200.0;
  mean_neg /= 200.0;
  EXPECT_GT(mean_pos, 0.8);
  EXPECT_LT(mean_neg, 0.2);
}

TEST(LinearSVM, CannotSolveXor) {
  const auto [X, y] = make_xor(400, 24);
  LinearSVM svm;
  svm.fit(X, y);
  EXPECT_LE(accuracy_of(svm.predict_proba(X), y), 0.72);
}

TEST(LinearSVM, PredictBeforeFitThrows) {
  LinearSVM svm;
  data::Matrix X{{0.0}};
  EXPECT_THROW(svm.predict_proba(X), std::logic_error);
  EXPECT_THROW(svm.decision_function(X), std::logic_error);
}

TEST(LinearSVM, CloneCarriesParams) {
  LinearSVM svm({{"lambda", 0.5}});
  auto clone = svm.clone_unfitted();
  EXPECT_EQ(clone->name(), "SVM");
}

// Regularization sweep: stronger lambda shrinks the weight norm.
class SvmLambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmLambdaSweep, FitsAtAllStrengths) {
  const auto [X, y] = make_blobs(100, 2, 3.0, 25);
  LinearSVM svm({{"lambda", GetParam()}});
  svm.fit(X, y);
  EXPECT_GT(accuracy_of(svm.predict_proba(X), y), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, SvmLambdaSweep,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 1e-2));

}  // namespace
}  // namespace mfpa::ml
