// FlatForest compiled-inference suite: the contract under test is that the
// compiled path is *bit-identical* to the node-pointer path — every
// serving-parity and alert-equality guarantee in the serve tier leans on
// this — plus the structural properties of the flattened layout.
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/matrix.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"

namespace mfpa::ml {
namespace {

std::pair<data::Matrix, std::vector<int>> blob_data(std::size_t n,
                                                    std::size_t d,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  data::Matrix X(n, d);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i % 3 == 0 ? 1 : 0;
    y[i] = label;
    for (std::size_t c = 0; c < d; ++c) {
      X(i, c) = rng.normal(label * 1.5, 1.0);
    }
  }
  return {std::move(X), std::move(y)};
}

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bit-identical for
    // non-NaN values, which probabilities always are.
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

TEST(FlatForest, RfParityBitIdentical) {
  const auto [X, y] = blob_data(400, 12, 7);
  RandomForestClassifier rf({{"n_trees", 25}, {"seed", 3}});
  rf.fit(X, y);
  const auto pointer = rf.predict_proba(X);
  ASSERT_TRUE(rf.compile());
  ASSERT_NE(rf.flat(), nullptr);
  const auto compiled = rf.predict_proba(X);
  expect_bit_identical(pointer, compiled);
}

TEST(FlatForest, GbdtParityBitIdentical) {
  const auto [X, y] = blob_data(400, 12, 11);
  GbdtClassifier gbdt({{"n_rounds", 30}, {"seed", 5}});
  gbdt.fit(X, y);
  const auto pointer = gbdt.predict_proba(X);
  ASSERT_TRUE(gbdt.compile());
  const auto compiled = gbdt.predict_proba(X);
  expect_bit_identical(pointer, compiled);
}

TEST(FlatForest, ExactSplitEnsembleParity) {
  const auto [X, y] = blob_data(200, 6, 13);
  RandomForestClassifier rf(
      {{"n_trees", 10}, {"seed", 1}, {"split_method", 0}});
  rf.fit(X, y);
  const auto pointer = rf.predict_proba(X);
  ASSERT_TRUE(rf.compile());
  expect_bit_identical(pointer, rf.predict_proba(X));
}

TEST(FlatForest, NanFeaturesTakeTheSamePath) {
  const auto [X, y] = blob_data(300, 8, 17);
  RandomForestClassifier rf({{"n_trees", 15}, {"seed", 2}});
  rf.fit(X, y);

  // Scatter NaNs over the scoring matrix: the pointer path's
  // `x <= thr ? left : right` sends NaN right (the comparison is false),
  // and the compiled kernel must do exactly the same.
  data::Matrix dirty = X;
  Rng rng(23);
  for (std::size_t r = 0; r < dirty.rows(); ++r) {
    for (std::size_t c = 0; c < dirty.cols(); ++c) {
      if (rng.bernoulli(0.15)) {
        dirty(r, c) = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  const auto pointer = rf.predict_proba(dirty);
  ASSERT_TRUE(rf.compile());
  const auto compiled = rf.predict_proba(dirty);
  expect_bit_identical(pointer, compiled);
  for (const double p : pointer) EXPECT_FALSE(std::isnan(p));
}

TEST(FlatForest, SingleNodeTreesCompile) {
  // Constant features force every tree to stay a bare root leaf; the
  // compiled walk must terminate after zero descends.
  data::Matrix X(50, 4, 1.0);
  std::vector<int> y(50, 0);
  for (std::size_t i = 0; i < 25; ++i) y[i] = 1;
  RandomForestClassifier rf({{"n_trees", 5}, {"seed", 1}});
  rf.fit(X, y);
  const auto pointer = rf.predict_proba(X);
  ASSERT_TRUE(rf.compile());
  EXPECT_EQ(rf.flat()->node_count(), 5u);  // one root leaf per tree
  expect_bit_identical(pointer, rf.predict_proba(X));
}

TEST(FlatForest, SerializationRoundTripOfCompiledModel) {
  const auto [X, y] = blob_data(250, 10, 29);
  RandomForestClassifier rf({{"n_trees", 12}, {"seed", 9}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile());
  const auto before = rf.predict_proba(X);

  // The compiled form is derived state: save_state writes the trees, and a
  // reload + recompile must reproduce identical probabilities.
  std::stringstream buffer;
  save_classifier(buffer, rf);
  auto loaded = load_classifier(buffer);
  const auto uncompiled = loaded->predict_proba(X);
  expect_bit_identical(before, uncompiled);

  auto& compilable = dynamic_cast<CompiledInference&>(*loaded);
  EXPECT_EQ(compilable.flat(), nullptr);  // load never implies compile
  ASSERT_TRUE(compilable.compile());
  expect_bit_identical(before, loaded->predict_proba(X));
}

TEST(FlatForest, RefitInvalidatesCompiledForm) {
  const auto [X, y] = blob_data(120, 5, 31);
  GbdtClassifier gbdt({{"n_rounds", 8}, {"seed", 4}});
  gbdt.fit(X, y);
  ASSERT_TRUE(gbdt.compile());
  ASSERT_NE(gbdt.flat(), nullptr);
  gbdt.fit(X, y);
  EXPECT_EQ(gbdt.flat(), nullptr) << "stale compiled trees would mis-score";
}

TEST(FlatForest, CompileBeforeFitReturnsFalse) {
  RandomForestClassifier rf;
  EXPECT_FALSE(rf.compile());
  EXPECT_EQ(rf.flat(), nullptr);
  GbdtClassifier gbdt;
  EXPECT_FALSE(gbdt.compile());
}

TEST(FlatForest, ThreadCountInvariance) {
  const auto [X, y] = blob_data(500, 9, 37);
  RandomForestClassifier rf({{"n_trees", 20}, {"seed", 6}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile());
  const FlatForest& flat = *rf.flat();
  const auto t1 = flat.predict(X, 1);
  // Sweep every count up to hardware plus awkward ones past it: block
  // boundaries land differently for each count (500 rows split t ways), so
  // any partition-dependent accumulation would show up somewhere in the
  // sweep rather than only at the lucky {1, 4, hw} samples.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (std::size_t t = 2; t <= std::min<std::size_t>(hw, 12); ++t) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    expect_bit_identical(t1, flat.predict(X, t));
  }
  for (const std::size_t t : {std::size_t{17}, std::size_t{33},
                              std::size_t{499}, std::size_t{500}}) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    expect_bit_identical(t1, flat.predict(X, t));
  }
  expect_bit_identical(t1, flat.predict(X, 0));
}

TEST(FlatForest, TreeParallelDeterministicAndEquivalent) {
  const auto [X, y] = blob_data(300, 9, 41);
  GbdtClassifier gbdt({{"n_rounds", 24}, {"seed", 8}});
  gbdt.fit(X, y);
  ASSERT_TRUE(gbdt.compile());
  const FlatForest& flat = *gbdt.flat();
  const auto serial = flat.predict(X, 1);

  // Fixed thread count → deterministic; vs serial only near-equal (the
  // tree-sliced partial sums regroup the additions). Sweep worker counts so
  // every tree-slice partition shape — including more workers than trees —
  // exercises the shared row-block kernel writing into the partial vectors.
  for (const std::size_t workers :
       {std::size_t{2}, std::size_t{3}, std::size_t{4}, std::size_t{8},
        std::size_t{24}, std::size_t{64}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    std::vector<double> run1(X.rows()), run2(X.rows());
    flat.predict_tree_parallel_into(X, run1, workers);
    flat.predict_tree_parallel_into(X, run2, workers);
    expect_bit_identical(run1, run2);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_NEAR(serial[i], run1[i], 1e-12) << i;
    }
  }
}

TEST(FlatForest, FlattenedLayoutAccounting) {
  const auto [X, y] = blob_data(200, 7, 43);
  RandomForestClassifier rf({{"n_trees", 9}, {"seed", 2}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile());
  const FlatForest& flat = *rf.flat();
  std::size_t expected_nodes = 0;
  for (const auto& tree : rf.trees()) expected_nodes += tree.nodes().size();
  EXPECT_EQ(flat.tree_count(), 9u);
  EXPECT_EQ(flat.node_count(), expected_nodes);
  // Per node: feat (int32) + thr (double) + left (int32) + the packed
  // (feat, left) pair the vector kernels gather (uint64).
  EXPECT_EQ(flat.bytes(),
            expected_nodes * (sizeof(double) + 2 * sizeof(std::int32_t) +
                              sizeof(std::uint64_t)) +
                flat.tree_count() * sizeof(std::int32_t));
}

TEST(FlatForest, EmptyForestThrows) {
  const FlatForest flat;
  data::Matrix X(3, 2, 0.0);
  std::vector<double> out(3);
  EXPECT_THROW(flat.predict_into(X, out), std::logic_error);
  EXPECT_THROW(FlatForest::compile({}, FlatForest::Output::kMeanClamp, 1.0, 0.0),
               std::invalid_argument);
}

TEST(FlatForest, OutputSizeMismatchThrows) {
  const auto [X, y] = blob_data(60, 4, 47);
  RandomForestClassifier rf({{"n_trees", 3}, {"seed", 1}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile());
  std::vector<double> wrong(X.rows() + 1);
  EXPECT_THROW(rf.flat()->predict_into(X, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace mfpa::ml
