// SIMD dispatch and kernel-parity suite. The contract: every kernel tier
// (scalar / NEON / AVX2) executes the identical operation sequence, so
// predictions are bit-identical no matter which tier dispatch selects —
// the vector kernels are pure speed, never a numerics change. The tests
// force tiers through the process-wide override and diff against the
// scalar reference; on hardware without a vector tier the forced legs
// degrade to scalar and the comparisons hold trivially.
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/matrix.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "ml/simd.hpp"

namespace mfpa::ml {
namespace {

/// Restores auto-dispatch no matter how a test exits, so an override can
/// never leak into later tests in the binary.
struct SimdOverrideGuard {
  SimdOverrideGuard() = default;
  ~SimdOverrideGuard() { set_simd_override(std::nullopt); }
};

std::pair<data::Matrix, std::vector<int>> blob_data(std::size_t n,
                                                    std::size_t d,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  data::Matrix X(n, d);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i % 3 == 0 ? 1 : 0;
    y[i] = label;
    for (std::size_t c = 0; c < d; ++c) {
      X(i, c) = rng.normal(label * 1.5, 1.0);
    }
  }
  return {std::move(X), std::move(y)};
}

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

/// Predicts under every dispatchable tier and asserts all results equal the
/// scalar reference bit-for-bit.
void expect_all_tiers_identical(const FlatForest& flat, const data::Matrix& X) {
  SimdOverrideGuard guard;
  set_simd_override(SimdLevel::kScalar);
  const auto scalar = flat.predict(X);
  for (const SimdLevel level : {SimdLevel::kNeon, SimdLevel::kAvx2}) {
    set_simd_override(level);
    SCOPED_TRACE(std::string("forced=") + std::string(to_string(level)) +
                 " active=" + std::string(to_string(active_simd_level())));
    expect_bit_identical(scalar, flat.predict(X));
  }
  set_simd_override(std::nullopt);
  expect_bit_identical(scalar, flat.predict(X));
}

TEST(SimdDispatch, ParseFlagValues) {
  std::optional<SimdLevel> level;
  EXPECT_TRUE(parse_simd_level("auto", level));
  EXPECT_FALSE(level.has_value());
  EXPECT_TRUE(parse_simd_level("scalar", level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  EXPECT_TRUE(parse_simd_level("neon", level));
  EXPECT_EQ(level, SimdLevel::kNeon);
  EXPECT_TRUE(parse_simd_level("avx2", level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  EXPECT_FALSE(parse_simd_level("sse9", level));
  EXPECT_FALSE(parse_simd_level("", level));
}

TEST(SimdDispatch, RoundTripNames) {
  EXPECT_EQ(to_string(SimdLevel::kScalar), "scalar");
  EXPECT_EQ(to_string(SimdLevel::kNeon), "neon");
  EXPECT_EQ(to_string(SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatch, OverrideClampsToDetected) {
  SimdOverrideGuard guard;
  const SimdLevel detected = detected_simd_level();
  EXPECT_EQ(active_simd_level(), detected);  // no override -> auto
  // Forcing scalar is always honored: it is the weakest tier.
  set_simd_override(SimdLevel::kScalar);
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);
  // Forcing a tier the hardware lacks degrades to the detected one; forcing
  // one it has is honored exactly.
  for (const SimdLevel forced : {SimdLevel::kNeon, SimdLevel::kAvx2}) {
    set_simd_override(forced);
    const SimdLevel active = active_simd_level();
    if (static_cast<int>(forced) <= static_cast<int>(detected)) {
      EXPECT_EQ(active, forced);
    } else {
      EXPECT_EQ(active, detected);
    }
  }
  set_simd_override(std::nullopt);
  EXPECT_EQ(active_simd_level(), detected);
}

TEST(SimdParity, RfAllTiersBitIdentical) {
  const auto [X, y] = blob_data(700, 13, 7);
  RandomForestClassifier rf({{"n_trees", 30}, {"seed", 3}});
  rf.fit(X, y);
  const auto pointer = rf.predict_proba(X);
  ASSERT_TRUE(rf.compile());
  SimdOverrideGuard guard;
  set_simd_override(SimdLevel::kScalar);
  // The scalar compiled path is itself the anchored reference: identical
  // to the pointer path, and then to every vector tier.
  expect_bit_identical(pointer, rf.predict_proba(X));
  expect_all_tiers_identical(*rf.flat(), X);
}

TEST(SimdParity, GbdtAllTiersBitIdentical) {
  const auto [X, y] = blob_data(700, 13, 11);
  GbdtClassifier gbdt({{"n_rounds", 40}, {"seed", 5}});
  gbdt.fit(X, y);
  const auto pointer = gbdt.predict_proba(X);
  ASSERT_TRUE(gbdt.compile());
  SimdOverrideGuard guard;
  set_simd_override(SimdLevel::kScalar);
  expect_bit_identical(pointer, gbdt.predict_proba(X));
  expect_all_tiers_identical(*gbdt.flat(), X);
}

TEST(SimdParity, NanColumnsBitIdentical) {
  const auto [X, y] = blob_data(300, 8, 17);
  RandomForestClassifier rf({{"n_trees", 15}, {"seed", 2}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile());
  data::Matrix dirty = X;
  Rng rng(23);
  // A fully-NaN column plus scattered NaNs: the vector compare must treat
  // NaN exactly like the scalar `!(x <= thr)` — unordered -> right child.
  for (std::size_t r = 0; r < dirty.rows(); ++r) {
    dirty(r, 3) = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t c = 0; c < dirty.cols(); ++c) {
      if (rng.bernoulli(0.2)) {
        dirty(r, c) = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  expect_all_tiers_identical(*rf.flat(), dirty);
}

TEST(SimdParity, SingleNodeTreesBitIdentical) {
  data::Matrix X(100, 4, 1.0);  // constant features -> root-leaf trees
  std::vector<int> y(100, 0);
  for (std::size_t i = 0; i < 50; ++i) y[i] = 1;
  RandomForestClassifier rf({{"n_trees", 7}, {"seed", 1}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile());
  expect_all_tiers_identical(*rf.flat(), X);
}

TEST(SimdParity, DeepUnbalancedTreesBitIdentical) {
  // Exponentially skewed features make exact splits carve tiny slices off
  // one side, producing deep, maximally unbalanced trees — the worst case
  // for the all-lanes-at-a-leaf termination test.
  Rng rng(31);
  data::Matrix X(400, 6);
  std::vector<int> y(400);
  for (std::size_t r = 0; r < 400; ++r) {
    y[r] = r % 5 == 0 ? 1 : 0;
    for (std::size_t c = 0; c < 6; ++c) {
      const double u = std::max(rng.uniform(), 1e-12);
      X(r, c) = -std::log(u) * (1.0 + static_cast<double>(y[r]));
    }
  }
  RandomForestClassifier rf({{"n_trees", 10},
                             {"seed", 9},
                             {"split_method", 0},
                             {"max_depth", 30},
                             {"min_samples_leaf", 1}});
  rf.fit(X, y);
  ASSERT_TRUE(rf.compile());
  expect_all_tiers_identical(*rf.flat(), X);
}

TEST(SimdParity, RaggedRowCountsBitIdentical) {
  // Row counts straddling the vector kernels' 16-row groups, 8-row tail,
  // and scalar tail (1..17 plus block-boundary cases around 96).
  const auto [Xfull, y] = blob_data(200, 9, 37);
  RandomForestClassifier rf({{"n_trees", 12}, {"seed", 4}});
  rf.fit(Xfull, y);
  ASSERT_TRUE(rf.compile());
  for (const std::size_t rows :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{95}, std::size_t{96}, std::size_t{97}}) {
    SCOPED_TRACE("rows=" + std::to_string(rows));
    data::Matrix X(rows, Xfull.cols());
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < Xfull.cols(); ++c) X(r, c) = Xfull(r, c);
    }
    expect_all_tiers_identical(*rf.flat(), X);
  }
}

}  // namespace
}  // namespace mfpa::ml
