// Shared synthetic-data helpers for the ML tests.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "data/matrix.hpp"

namespace mfpa::ml::testing {

/// Two Gaussian blobs separated along every feature by `gap` sigma.
inline std::pair<data::Matrix, std::vector<int>> make_blobs(
    std::size_t n_per_class, std::size_t dims, double gap, std::uint64_t seed) {
  Rng rng(seed);
  data::Matrix X(2 * n_per_class, dims);
  std::vector<int> y(2 * n_per_class);
  for (std::size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    y[i] = label;
    for (std::size_t d = 0; d < dims; ++d) {
      X(i, d) = rng.normal(label == 1 ? gap : 0.0, 1.0);
    }
  }
  return {std::move(X), std::move(y)};
}

/// XOR-style dataset that linear models cannot separate but trees can:
/// label = (x0 > 0) != (x1 > 0).
inline std::pair<data::Matrix, std::vector<int>> make_xor(std::size_t n,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  data::Matrix X(n, 2);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    X(i, 0) = a;
    X(i, 1) = b;
    y[i] = (a > 0.0) != (b > 0.0) ? 1 : 0;
  }
  return {std::move(X), std::move(y)};
}

/// Fraction of correct hard predictions at threshold 0.5.
inline double accuracy_of(const std::vector<double>& probs,
                          const std::vector<int>& y) {
  std::size_t hit = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if ((probs[i] >= 0.5 ? 1 : 0) == y[i]) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(y.size());
}

}  // namespace mfpa::ml::testing
