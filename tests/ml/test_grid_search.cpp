#include "ml/grid_search.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

TEST(ExpandGrid, CartesianProduct) {
  const ParamGrid grid{{"a", {1.0, 2.0}}, {"b", {10.0, 20.0, 30.0}}};
  const auto points = expand_grid(grid);
  EXPECT_EQ(points.size(), 6u);
  // Every combination present exactly once.
  std::set<std::pair<double, double>> seen;
  for (const auto& p : points) {
    seen.emplace(p.at("a"), p.at("b"));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ExpandGrid, EmptyGridIsSinglePoint) {
  const auto points = expand_grid({});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].empty());
}

TEST(ExpandGrid, EmptyValueListThrows) {
  EXPECT_THROW(expand_grid({{"a", {}}}), std::invalid_argument);
}

TEST(GridSearch, FindsDepthThatSolvesXor) {
  const auto [X, y] = testing::make_xor(400, 71);
  const auto splits = kfold_splits(y.size(), 4, 1);
  const auto result =
      grid_search("DT", {{"seed", 1}}, {{"max_depth", {1.0, 6.0}}}, X, y,
                  splits, CvMetric::kAuc);
  EXPECT_DOUBLE_EQ(result.best_params.at("max_depth"), 6.0);
  EXPECT_GT(result.best_score, 0.9);
  EXPECT_EQ(result.all.size(), 2u);
}

TEST(GridSearch, BaseParamsForwarded) {
  const auto [X, y] = testing::make_blobs(60, 2, 3.0, 72);
  const auto splits = kfold_splits(y.size(), 3, 2);
  const auto result = grid_search("RF", {{"n_trees", 4.0}, {"seed", 5.0}},
                                  {{"max_depth", {3.0}}}, X, y, splits);
  EXPECT_DOUBLE_EQ(result.best_params.at("n_trees"), 4.0);
  EXPECT_DOUBLE_EQ(result.best_params.at("seed"), 5.0);
}

TEST(GridSearch, GridOverridesBase) {
  const auto [X, y] = testing::make_blobs(60, 2, 3.0, 73);
  const auto splits = kfold_splits(y.size(), 3, 3);
  const auto result = grid_search("DT", {{"max_depth", 2.0}},
                                  {{"max_depth", {5.0}}}, X, y, splits);
  EXPECT_DOUBLE_EQ(result.best_params.at("max_depth"), 5.0);
}

TEST(GridSearch, ParallelMatchesSerial) {
  const auto [X, y] = testing::make_blobs(80, 3, 2.5, 74);
  const auto splits = kfold_splits(y.size(), 3, 4);
  const ParamGrid grid{{"max_depth", {2.0, 4.0, 6.0, 8.0}},
                       {"min_samples_leaf", {1.0, 4.0}}};
  const auto serial =
      grid_search("DT", {{"seed", 1}}, grid, X, y, splits, CvMetric::kAuc, 1);
  const auto parallel =
      grid_search("DT", {{"seed", 1}}, grid, X, y, splits, CvMetric::kAuc, 4);
  EXPECT_EQ(serial.best_params, parallel.best_params);
  EXPECT_DOUBLE_EQ(serial.best_score, parallel.best_score);
  ASSERT_EQ(serial.all.size(), parallel.all.size());
  for (std::size_t i = 0; i < serial.all.size(); ++i) {
    EXPECT_EQ(serial.all[i].first, parallel.all[i].first);
    EXPECT_DOUBLE_EQ(serial.all[i].second, parallel.all[i].second);
  }
}

TEST(GridSearch, UnknownAlgorithmThrows) {
  data::Matrix X{{1.0}, {2.0}};
  const std::vector<int> y{0, 1};
  EXPECT_THROW(
      grid_search("NoSuchAlgo", {}, {}, X, y, kfold_splits(2, 2, 1)),
      std::invalid_argument);
}

}  // namespace
}  // namespace mfpa::ml
