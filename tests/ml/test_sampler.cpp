#include "ml/sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mfpa::ml {
namespace {

std::vector<int> labels(std::size_t pos, std::size_t neg) {
  std::vector<int> y(pos, 1);
  y.insert(y.end(), neg, 0);
  return y;
}

TEST(RandomUnderSampler, KeepsAllMinority) {
  const auto y = labels(10, 100);
  RandomUnderSampler sampler(3.0, 1);
  const auto idx = sampler.sample_indices(y);
  std::size_t pos_kept = 0;
  for (std::size_t i : idx) pos_kept += y[i] == 1;
  EXPECT_EQ(pos_kept, 10u);
}

TEST(RandomUnderSampler, RatioRespected) {
  const auto y = labels(10, 100);
  RandomUnderSampler sampler(3.0, 1);
  const auto idx = sampler.sample_indices(y);
  std::size_t neg_kept = 0;
  for (std::size_t i : idx) neg_kept += y[i] == 0;
  EXPECT_EQ(neg_kept, 30u);
}

TEST(RandomUnderSampler, RatioLargerThanMajorityKeepsAll) {
  const auto y = labels(10, 15);
  RandomUnderSampler sampler(5.0, 1);
  const auto idx = sampler.sample_indices(y);
  EXPECT_EQ(idx.size(), 25u);
}

TEST(RandomUnderSampler, ZeroRatioKeepsEverything) {
  const auto y = labels(5, 50);
  RandomUnderSampler sampler(0.0, 1);
  EXPECT_EQ(sampler.sample_indices(y).size(), 55u);
}

TEST(RandomUnderSampler, HandlesPositiveMajority) {
  const auto y = labels(100, 10);
  RandomUnderSampler sampler(2.0, 1);
  const auto idx = sampler.sample_indices(y);
  std::size_t pos_kept = 0, neg_kept = 0;
  for (std::size_t i : idx) (y[i] == 1 ? pos_kept : neg_kept)++;
  EXPECT_EQ(neg_kept, 10u);   // minority kept whole
  EXPECT_EQ(pos_kept, 20u);   // majority sampled at 2:1
}

TEST(RandomUnderSampler, IndicesSortedAndUnique) {
  const auto y = labels(20, 200);
  RandomUnderSampler sampler(3.0, 7);
  const auto idx = sampler.sample_indices(y);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  EXPECT_EQ(std::adjacent_find(idx.begin(), idx.end()), idx.end());
}

TEST(RandomUnderSampler, DeterministicGivenSeed) {
  const auto y = labels(10, 100);
  RandomUnderSampler a(3.0, 42), b(3.0, 42), c(3.0, 43);
  EXPECT_EQ(a.sample_indices(y), b.sample_indices(y));
  EXPECT_NE(a.sample_indices(y), c.sample_indices(y));
}

TEST(RandomUnderSampler, SingleClassKeepsEverything) {
  const auto y = labels(0, 30);
  RandomUnderSampler sampler(3.0, 1);
  EXPECT_EQ(sampler.sample_indices(y).size(), 30u);
}

TEST(RandomUnderSampler, ResampleDatasetKeepsAlignment) {
  data::Dataset ds;
  ds.feature_names = {"x"};
  for (int i = 0; i < 40; ++i) {
    ds.add(std::vector<double>{static_cast<double>(i)}, i < 4 ? 1 : 0,
           {static_cast<std::uint64_t>(i), i, 0});
  }
  RandomUnderSampler sampler(2.0, 3);
  const auto out = sampler.resample(ds);
  EXPECT_EQ(out.positives(), 4u);
  EXPECT_EQ(out.negatives(), 8u);
  // Feature value still equals the drive id used at construction.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.X(i, 0), static_cast<double>(out.meta[i].drive_id));
  }
}

}  // namespace
}  // namespace mfpa::ml
