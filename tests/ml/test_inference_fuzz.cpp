// Randomized differential fuzz over the inference kernel matrix: for each
// seed, train a random ensemble on a random fixture (NaN-riddled columns,
// constant columns, skewed deep-tree data, tiny and block-straddling row
// counts), then require
//
//   node-pointer == flat-scalar == flat-vector == quantized(compile)
//
// bit-for-bit, and the quantized compile_binned() form to respect its
// documented tolerance contract: bit-identical whenever exact(), and
// otherwise differing only on rows where some feature value shares a bin
// with a snapped threshold. Heavy configurations live in this binary,
// which the test tier labels `slow` (per-commit sanitizer CI skips it; the
// Release and nightly jobs run it).
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/binned_matrix.hpp"
#include "data/matrix.hpp"
#include "ml/gbdt.hpp"
#include "ml/quantized_forest.hpp"
#include "ml/random_forest.hpp"
#include "ml/simd.hpp"

namespace mfpa::ml {
namespace {

struct SimdOverrideGuard {
  SimdOverrideGuard() = default;
  ~SimdOverrideGuard() { set_simd_override(std::nullopt); }
};

struct Fixture {
  data::Matrix X;       ///< training matrix
  data::Matrix dirty;   ///< scoring matrix (NaNs scattered in)
  std::vector<int> y;
};

Fixture random_fixture(Rng& rng) {
  const std::size_t rows =
      16 + static_cast<std::size_t>(rng.uniform_int(0, 1200));
  const std::size_t cols = 1 + static_cast<std::size_t>(rng.uniform_int(0, 15));
  Fixture fx{data::Matrix(rows, cols), data::Matrix(rows, cols),
             std::vector<int>(rows)};
  const double nan_prob = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.3) : 0.0;
  // Per-column generators: constant, low-cardinality integer, skewed
  // exponential, or plain gaussian — the shapes that stress binning runs,
  // single-node trees, and unbalanced descends respectively.
  std::vector<int> col_kind(cols);
  for (auto& k : col_kind) k = static_cast<int>(rng.uniform_int(0, 3));
  for (std::size_t r = 0; r < rows; ++r) {
    fx.y[r] = rng.bernoulli(0.35) ? 1 : 0;
    for (std::size_t c = 0; c < cols; ++c) {
      double v = 0.0;
      switch (col_kind[c]) {
        case 0: v = 1.5; break;  // constant column
        case 1: v = static_cast<double>(rng.uniform_int(0, 6)) + fx.y[r]; break;
        case 2: {
          const double u = std::max(rng.uniform(), 1e-12);
          v = -std::log(u) * (1.0 + fx.y[r]);
          break;
        }
        default: v = rng.normal(fx.y[r] * 1.2, 1.0); break;
      }
      fx.X(r, c) = v;
      fx.dirty(r, c) = rng.bernoulli(nan_prob)
                           ? std::numeric_limits<double>::quiet_NaN()
                           : v;
    }
  }
  return fx;
}

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " row " << i;
  }
}

/// One differential round: pointer vs flat (scalar + every vector tier) vs
/// quantized, all bit-identical on the NaN-riddled scoring matrix.
template <typename Model>
void differential_round(Model& model, const Fixture& fx) {
  const auto pointer = model.predict_proba(fx.dirty);
  ASSERT_TRUE(model.compile());
  SimdOverrideGuard guard;
  set_simd_override(SimdLevel::kScalar);
  const auto scalar = model.predict_proba(fx.dirty);
  expect_bit_identical(pointer, scalar, "flat-scalar");
  for (const SimdLevel level : {SimdLevel::kNeon, SimdLevel::kAvx2}) {
    set_simd_override(level);
    expect_bit_identical(scalar, model.predict_proba(fx.dirty), "flat-vector");
  }
  set_simd_override(std::nullopt);
  if (model.compile_quantized()) {
    ASSERT_TRUE(model.quantized()->exact());
    expect_bit_identical(pointer, model.predict_proba(fx.dirty), "quantized");
  }
}

TEST(InferenceFuzz, RandomForestDifferential) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 7919);
    const Fixture fx = random_fixture(rng);
    RandomForestClassifier rf(
        {{"n_trees", 5 + static_cast<double>(rng.uniform_int(0, 35))},
         {"seed", static_cast<double>(seed)},
         {"max_depth", 3 + static_cast<double>(rng.uniform_int(0, 15))},
         {"split_method", rng.bernoulli(0.8) ? 1.0 : 0.0}});
    rf.fit(fx.X, fx.y);
    differential_round(rf, fx);
  }
}

TEST(InferenceFuzz, GbdtDifferential) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 104729);
    const Fixture fx = random_fixture(rng);
    GbdtClassifier gbdt(
        {{"n_rounds", 5 + static_cast<double>(rng.uniform_int(0, 45))},
         {"seed", static_cast<double>(seed)},
         {"max_depth", 2 + static_cast<double>(rng.uniform_int(0, 6))},
         {"split_method", rng.bernoulli(0.8) ? 1.0 : 0.0}});
    gbdt.fit(fx.X, fx.y);
    differential_round(gbdt, fx);
  }
}

TEST(InferenceFuzz, CompileBinnedToleranceContract) {
  // Exercise the inexact regime deliberately: exact-split training draws
  // midpoint thresholds that need not coincide with a coarse binning's
  // cuts, so compile_binned() snaps them down. The documented contract: a
  // row may differ from the float prediction ONLY if some feature value
  // lands in the same bin as a snapped (inexact) threshold — every other
  // row must stay bit-identical.
  std::size_t total_clean_rows = 0;
  std::size_t inexact_models = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 15485863);
    Fixture fx = random_fixture(rng);
    RandomForestClassifier rf(
        {{"n_trees", 4 + static_cast<double>(rng.uniform_int(0, 12))},
         {"seed", static_cast<double>(seed)},
         {"max_depth", 3 + static_cast<double>(rng.uniform_int(0, 7))},
         {"split_method", 0.0}});
    rf.fit(fx.X, fx.y);
    const auto pointer = rf.predict_proba(fx.X);

    // A coarse binning guarantees snapping actually happens.
    const data::BinnedMatrix bins(fx.X, 16);
    const auto quant = QuantizedForest::compile_binned(
        rf.trees(), bins, QuantizedForest::Output::kMeanClamp, 1.0, 0.0);
    const auto quantized = quant.predict(fx.X);

    if (quant.exact()) {
      expect_bit_identical(pointer, quantized, "binned-exact");
      continue;
    }
    ++inexact_models;
    // Per feature, the set of codes occupied by inexact thresholds: a
    // value whose code avoids this set on every feature cannot change any
    // descend decision relative to the float model.
    std::vector<std::set<std::uint8_t>> fuzzy(quant.n_features());
    for (const auto& tree : rf.trees()) {
      for (const auto& node : tree.nodes()) {
        if (node.feature < 0) continue;
        const auto f = static_cast<std::size_t>(node.feature);
        const auto& cuts = quant.cuts(f);
        const auto it =
            std::lower_bound(cuts.begin(), cuts.end(), node.threshold);
        if (it == cuts.end() || *it != node.threshold) {
          fuzzy[f].insert(static_cast<std::uint8_t>(
              std::lower_bound(cuts.begin(), cuts.end(), node.threshold) -
              cuts.begin()));
        }
      }
    }
    std::size_t clean_rows = 0;
    for (std::size_t r = 0; r < fx.X.rows(); ++r) {
      bool clean = true;
      for (std::size_t f = 0; f < quant.n_features() && clean; ++f) {
        const auto& cuts = quant.cuts(f);
        const auto code = static_cast<std::uint8_t>(
            std::lower_bound(cuts.begin(), cuts.end(), fx.X(r, f)) -
            cuts.begin());
        clean = fuzzy[f].count(code) == 0;
      }
      if (clean) {
        ++clean_rows;
        ASSERT_EQ(pointer[r], quantized[r]) << "clean row " << r;
      }
    }
    total_clean_rows += clean_rows;
  }
  // Fixture-quality guards, aggregated across seeds (a single seed may
  // legitimately snap a threshold into every occupied bin, leaving no
  // clean rows to check): the sweep as a whole must exercise both the
  // inexact regime and some bit-identity-required rows within it.
  EXPECT_GT(inexact_models, 0u);
  EXPECT_GT(total_clean_rows, 0u);
}

}  // namespace
}  // namespace mfpa::ml
