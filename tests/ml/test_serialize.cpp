#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include <unistd.h>

#include "baselines/statistical.hpp"
#include "ml/checksum.hpp"
#include "ml/factory.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

Hyperparams fast_params(const std::string& name) {
  Hyperparams p = default_hyperparams(name);
  p["seed"] = 3;
  if (name == "RF") p["n_trees"] = 8;
  if (name == "GBDT") p["n_rounds"] = 10;
  if (name == "CNN_LSTM") {
    p["timesteps"] = 2;
    p["epochs"] = 2;
    p["channels"] = 4;
    p["hidden"] = 6;
  }
  if (name == "SVM") p["epochs"] = 5;
  if (name == "LR") p["epochs"] = 10;
  return p;
}

class SerializeSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializeSweep, RoundTripPredictsIdentically) {
  const auto [X, y] = testing::make_blobs(80, 4, 3.0, 111);
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  model->fit(X, y);

  std::stringstream ss;
  save_classifier(ss, *model);
  const auto restored = load_classifier(ss);
  ASSERT_EQ(restored->name(), model->name());
  EXPECT_EQ(restored->predict_proba(X), model->predict_proba(X)) << GetParam();
}

TEST_P(SerializeSweep, UnfittedSaveThrows) {
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  std::stringstream ss;
  EXPECT_THROW(save_classifier(ss, *model), std::logic_error) << GetParam();
}

TEST_P(SerializeSweep, HyperparamsSurviveRoundTrip) {
  const auto [X, y] = testing::make_blobs(60, 4, 3.0, 112);
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  model->fit(X, y);
  std::stringstream ss;
  save_classifier(ss, *model);
  const auto restored = load_classifier(ss);
  EXPECT_EQ(restored->hyperparams(), model->hyperparams()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SerializeSweep,
                         ::testing::Values("Bayes", "SVM", "RF", "GBDT",
                                           "CNN_LSTM", "LR", "DT"));

TEST(Serialize, FileRoundTrip) {
  const auto [X, y] = testing::make_blobs(60, 3, 3.0, 113);
  auto model = make_classifier("RF", {{"n_trees", 5.0}, {"seed", 1.0}});
  model->fit(X, y);
  // pid-unique so parallel test processes (ctest -j, sanitizer jobs) never
  // race on the same file.
  const std::string path = ::testing::TempDir() + "/mfpa_model_test_" +
                           std::to_string(::getpid()) + ".txt";
  save_classifier_file(path, *model);
  const auto restored = load_classifier_file(path);
  EXPECT_EQ(restored->predict_proba(X), model->predict_proba(X));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_classifier_file("/nonexistent/mfpa.model"),
               std::runtime_error);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss("this is not a model");
  EXPECT_THROW(load_classifier(ss), std::runtime_error);
}

TEST(Serialize, RejectsWrongVersion) {
  std::stringstream ss("mfpa_model 99\nRF\nparams 0\n");
  EXPECT_THROW(load_classifier(ss), std::runtime_error);
}

TEST(Serialize, RejectsUnknownAlgorithm) {
  std::stringstream ss("mfpa_model 1\nQuantumNet\nparams 0\n");
  EXPECT_ANY_THROW(load_classifier(ss));
}

TEST(Serialize, RejectsTruncatedState) {
  const auto [X, y] = testing::make_blobs(40, 3, 3.0, 114);
  auto model = make_classifier("GBDT", {{"n_rounds", 4.0}});
  model->fit(X, y);
  std::stringstream ss;
  save_classifier(ss, *model);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // chop mid-state
  std::stringstream truncated(text);
  EXPECT_THROW(load_classifier(truncated), std::runtime_error);
}

TEST(Serialize, StatisticalDetectorsRoundTrip) {
  const auto [X, y] = testing::make_blobs(80, 3, 2.0, 115);
  for (auto* det : {static_cast<Classifier*>(new baselines::ParametricDetector()),
                    static_cast<Classifier*>(new baselines::RankSumDetector())}) {
    std::unique_ptr<Classifier> owned(det);
    owned->fit(X, y);
    std::stringstream ss;
    owned->save_state(ss);
    auto clone = owned->clone_unfitted();
    clone->load_state(ss);
    EXPECT_EQ(clone->predict_proba(X), owned->predict_proba(X))
        << owned->name();
  }
}

TEST(Serialize, VectorHelpersRoundTrip) {
  std::stringstream ss;
  const std::vector<double> values{1.0, -2.5, 3.14159265358979312, 1e-300};
  io::write_vector(ss, "vals", values);
  EXPECT_EQ(io::read_vector(ss, "vals"), values);
}

TEST(Serialize, ExpectTokenMismatchThrows) {
  std::stringstream ss("wrong");
  EXPECT_THROW(io::expect_token(ss, "right"), std::runtime_error);
}

// --- Checksummed framing (format version 2) -------------------------------

namespace {

/// A fitted model serialized to a string, for corruption tests.
std::string serialized_model(const data::Matrix& X, const std::vector<int>& y) {
  auto model = make_classifier("RF", {{"n_trees", 5.0}, {"seed", 1.0}});
  model->fit(X, y);
  std::ostringstream os;
  save_classifier(os, *model);
  return os.str();
}

}  // namespace

TEST(SerializeChecksum, SaveReturnsPayloadDigest) {
  const auto [X, y] = testing::make_blobs(60, 3, 3.0, 114);
  auto model = make_classifier("RF", {{"n_trees", 5.0}, {"seed", 1.0}});
  model->fit(X, y);
  std::ostringstream os;
  const std::uint64_t digest = save_classifier(os, *model);
  const std::string artifact = os.str();
  const std::size_t body_start = artifact.find('\n') + 1;
  EXPECT_EQ(digest, fnv1a(artifact.substr(body_start)));
  EXPECT_NE(artifact.find(checksum_hex(digest)), std::string::npos);
}

TEST(SerializeChecksum, ByteFlipIsRejected) {
  const auto [X, y] = testing::make_blobs(60, 3, 3.0, 115);
  std::string artifact = serialized_model(X, y);
  // Flip one payload byte well past the header.
  const std::size_t body_start = artifact.find('\n') + 1;
  artifact[body_start + (artifact.size() - body_start) / 2] ^= 0x01;
  std::istringstream is(artifact);
  try {
    load_classifier(is);
    FAIL() << "corrupt artifact was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(SerializeChecksum, TruncationIsRejected) {
  const auto [X, y] = testing::make_blobs(60, 3, 3.0, 116);
  const std::string artifact = serialized_model(X, y);
  std::istringstream is(artifact.substr(0, artifact.size() - 10));
  try {
    load_classifier(is);
    FAIL() << "truncated artifact was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(SerializeChecksum, GarbageHeaderIsRejected) {
  std::istringstream is("mfpa_model 9 12 deadbeef\nrest");
  EXPECT_THROW(load_classifier(is), std::runtime_error);
}

TEST(SerializeChecksum, LegacyV1StillLoads) {
  const auto [X, y] = testing::make_blobs(60, 3, 3.0, 117);
  auto model = make_classifier("RF", {{"n_trees", 5.0}, {"seed", 1.0}});
  model->fit(X, y);
  std::ostringstream os;
  save_classifier(os, *model);
  const std::string artifact = os.str();
  // Re-frame the body the way pre-checksum builds wrote it.
  std::istringstream legacy("mfpa_model 1\n" +
                            artifact.substr(artifact.find('\n') + 1));
  const auto restored = load_classifier(legacy);
  EXPECT_EQ(restored->predict_proba(X), model->predict_proba(X));
}

TEST(SerializeChecksum, LoadAppliesOverrides) {
  const auto [X, y] = testing::make_blobs(60, 3, 3.0, 118);
  auto model = make_classifier("RF", {{"n_trees", 5.0}, {"seed", 1.0}});
  model->fit(X, y);
  std::stringstream ss;
  save_classifier(ss, *model);
  const auto restored = load_classifier(ss, {{"threads", 3.0}});
  EXPECT_EQ(restored->hyperparams().at("threads"), 3.0);
  EXPECT_EQ(restored->predict_proba(X), model->predict_proba(X));
}

TEST(SerializeChecksum, HexHelpersRoundTrip) {
  EXPECT_EQ(parse_checksum_hex(checksum_hex(0)), 0u);
  EXPECT_EQ(parse_checksum_hex(checksum_hex(kFnv1aOffset)), kFnv1aOffset);
  EXPECT_THROW(parse_checksum_hex("xyz"), std::runtime_error);
}

}  // namespace
}  // namespace mfpa::ml
