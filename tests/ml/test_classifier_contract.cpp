// Interface-contract sweep over every algorithm in the factory: each must
// fit separable data, return calibrated-range probabilities, clone unfitted,
// reject malformed inputs, and be deterministic under a fixed seed.
#include <gtest/gtest.h>

#include "ml/factory.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

Hyperparams fast_params(const std::string& name) {
  Hyperparams p = default_hyperparams(name);
  p["seed"] = 3;
  if (name == "RF") p["n_trees"] = 10;
  if (name == "GBDT") p["n_rounds"] = 15;
  if (name == "CNN_LSTM") {
    p["timesteps"] = 2;  // blobs have 4 features -> T=2, F=2
    p["epochs"] = 4;
    p["channels"] = 6;
    p["hidden"] = 8;
  }
  if (name == "SVM") p["epochs"] = 10;
  if (name == "LR") p["epochs"] = 20;
  return p;
}

class ContractSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ContractSweep, FitsSeparableBlobs) {
  const auto [X, y] = testing::make_blobs(150, 4, 3.5, 91);
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  model->fit(X, y);
  EXPECT_GT(testing::accuracy_of(model->predict_proba(X), y), 0.85)
      << GetParam();
}

TEST_P(ContractSweep, ProbabilitiesInUnitInterval) {
  const auto [X, y] = testing::make_blobs(60, 4, 2.0, 92);
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  model->fit(X, y);
  for (double p : model->predict_proba(X)) {
    EXPECT_GE(p, 0.0) << GetParam();
    EXPECT_LE(p, 1.0) << GetParam();
  }
}

TEST_P(ContractSweep, PredictBeforeFitThrows) {
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  data::Matrix X(1, 4, 0.0);
  EXPECT_ANY_THROW(model->predict_proba(X)) << GetParam();
}

TEST_P(ContractSweep, RejectsMismatchedLabels) {
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  data::Matrix X(4, 4, 0.0);
  const std::vector<int> y{0, 1};  // wrong size
  EXPECT_THROW(model->fit(X, y), std::invalid_argument) << GetParam();
}

TEST_P(ContractSweep, RejectsNonBinaryLabels) {
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  data::Matrix X(2, 4, 0.0);
  const std::vector<int> y{0, 7};
  EXPECT_THROW(model->fit(X, y), std::invalid_argument) << GetParam();
}

TEST_P(ContractSweep, CloneIsUnfittedAndRefittable) {
  const auto [X, y] = testing::make_blobs(60, 4, 3.0, 93);
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  model->fit(X, y);
  auto clone = model->clone_unfitted();
  EXPECT_EQ(clone->name(), model->name());
  EXPECT_ANY_THROW(clone->predict_proba(X));
  clone->fit(X, y);
  EXPECT_EQ(clone->predict_proba(X).size(), y.size());
}

TEST_P(ContractSweep, DeterministicGivenSeed) {
  const auto [X, y] = testing::make_blobs(60, 4, 2.0, 94);
  auto a = make_classifier(GetParam(), fast_params(GetParam()));
  auto b = make_classifier(GetParam(), fast_params(GetParam()));
  a->fit(X, y);
  b->fit(X, y);
  EXPECT_EQ(a->predict_proba(X), b->predict_proba(X)) << GetParam();
}

TEST_P(ContractSweep, PredictProbaSizeMatchesRows) {
  const auto [X, y] = testing::make_blobs(40, 4, 2.0, 95);
  auto model = make_classifier(GetParam(), fast_params(GetParam()));
  model->fit(X, y);
  data::Matrix probe(7, 4, 0.5);
  EXPECT_EQ(model->predict_proba(probe).size(), 7u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ContractSweep,
                         ::testing::Values("Bayes", "SVM", "RF", "GBDT",
                                           "CNN_LSTM", "LR", "DT"));

TEST(Factory, KnownAlgorithmsBuild) {
  for (const auto& name : known_algorithms()) {
    EXPECT_NO_THROW(make_classifier(name, default_hyperparams(name))) << name;
  }
}

TEST(Factory, UnknownThrows) {
  EXPECT_THROW(make_classifier("Perceptron"), std::invalid_argument);
  EXPECT_THROW(default_hyperparams("Perceptron"), std::invalid_argument);
}

TEST(Factory, NameRoundTrip) {
  for (const auto& name : known_algorithms()) {
    const auto model = make_classifier(name, default_hyperparams(name));
    EXPECT_EQ(model->name(), name);
  }
}

}  // namespace
}  // namespace mfpa::ml
