#include "ml/cnn_lstm.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

using testing::accuracy_of;

/// Sequence dataset: label 1 iff the feature trend over time is rising.
std::pair<data::Matrix, std::vector<int>> make_trend(std::size_t n, int T,
                                                     int F, std::uint64_t seed) {
  Rng rng(seed);
  data::Matrix X(n, static_cast<std::size_t>(T) * F);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    y[i] = label;
    const double slope = label == 1 ? 1.0 : -1.0;
    for (int t = 0; t < T; ++t) {
      for (int f = 0; f < F; ++f) {
        X(i, static_cast<std::size_t>(t) * F + f) =
            slope * t + rng.normal(0.0, 0.3);
      }
    }
  }
  return {std::move(X), std::move(y)};
}

TEST(CnnLstm, RequiresTimesteps) {
  CnnLstmClassifier model;  // no "timesteps" param
  data::Matrix X{{1.0, 2.0}};
  const std::vector<int> y{1};
  EXPECT_THROW(model.fit(X, y), std::invalid_argument);
}

TEST(CnnLstm, RejectsEvenKernel) {
  EXPECT_THROW(CnnLstmClassifier({{"kernel", 4}}), std::invalid_argument);
}

TEST(CnnLstm, RejectsIndivisibleColumns) {
  CnnLstmClassifier model({{"timesteps", 3}});
  data::Matrix X{{1.0, 2.0, 3.0, 4.0}};  // 4 cols not divisible by 3
  const std::vector<int> y{1};
  EXPECT_THROW(model.fit(X, y), std::invalid_argument);
}

TEST(CnnLstm, LearnsTemporalTrend) {
  const int T = 5, F = 3;
  const auto [X, y] = make_trend(300, T, F, 51);
  CnnLstmClassifier model({{"timesteps", T},
                           {"channels", 8},
                           {"hidden", 12},
                           {"epochs", 8},
                           {"lr", 5e-3},
                           {"seed", 1}});
  model.fit(X, y);
  EXPECT_GT(accuracy_of(model.predict_proba(X), y), 0.9);
}

TEST(CnnLstm, ProbabilitiesInRange) {
  const auto [X, y] = make_trend(100, 4, 2, 52);
  CnnLstmClassifier model({{"timesteps", 4}, {"epochs", 2}});
  model.fit(X, y);
  for (double p : model.predict_proba(X)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(CnnLstm, DeterministicGivenSeed) {
  const auto [X, y] = make_trend(80, 4, 2, 53);
  const Hyperparams params{{"timesteps", 4}, {"epochs", 3}, {"seed", 9}};
  CnnLstmClassifier a(params), b(params);
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.predict_proba(X), b.predict_proba(X));
}

TEST(CnnLstm, PredictBeforeFitThrows) {
  CnnLstmClassifier model({{"timesteps", 4}});
  data::Matrix X{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_THROW(model.predict_proba(X), std::logic_error);
}

TEST(CnnLstm, ParameterCountMatchesArchitecture) {
  const int T = 4, F = 2, C = 8, H = 12, K = 3;
  const auto [X, y] = make_trend(40, T, F, 54);
  CnnLstmClassifier model({{"timesteps", T},
                           {"channels", C},
                           {"hidden", H},
                           {"kernel", K},
                           {"epochs", 1}});
  model.fit(X, y);
  const std::size_t expected = static_cast<std::size_t>(C) * F * K + C  // conv
                               + 4 * H * C + 4 * H * H + 4 * H          // lstm
                               + H + 1;                                 // dense
  EXPECT_EQ(model.parameter_count(), expected);
}

TEST(CnnLstm, CloneIsUnfittedWithSameName) {
  CnnLstmClassifier model({{"timesteps", 4}});
  auto clone = model.clone_unfitted();
  EXPECT_EQ(clone->name(), "CNN_LSTM");
  data::Matrix X{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_THROW(clone->predict_proba(X), std::logic_error);
}

TEST(CnnLstm, DescentPropertyAcrossSeeds) {
  // Adam on the BCE objective must reduce the training loss relative to the
  // untrained (epochs = 0) network for any initialization seed — a coarse
  // but implementation-revealing check on the hand-written backprop.
  const auto [X, y] = make_trend(150, 4, 2, 56);
  auto bce = [&](const std::vector<double>& p) {
    double total = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double q = std::clamp(p[i], 1e-9, 1.0 - 1e-9);
      total += y[i] == 1 ? -std::log(q) : -std::log(1.0 - q);
    }
    return total / static_cast<double>(p.size());
  };
  for (double seed : {1.0, 2.0, 3.0, 4.0}) {
    CnnLstmClassifier untrained(
        {{"timesteps", 4}, {"epochs", 0}, {"seed", seed}});
    CnnLstmClassifier trained(
        {{"timesteps", 4}, {"epochs", 4}, {"seed", seed}});
    untrained.fit(X, y);
    trained.fit(X, y);
    EXPECT_LT(bce(trained.predict_proba(X)), bce(untrained.predict_proba(X)))
        << "seed " << seed;
  }
}

TEST(CnnLstm, TrainingReducesLoss) {
  // Accuracy after 6 epochs beats accuracy after 1 on the same data.
  const auto [X, y] = make_trend(200, 5, 2, 55);
  CnnLstmClassifier quick({{"timesteps", 5}, {"epochs", 1}, {"seed", 2}});
  CnnLstmClassifier longer({{"timesteps", 5}, {"epochs", 6}, {"seed", 2}});
  quick.fit(X, y);
  longer.fit(X, y);
  EXPECT_GE(accuracy_of(longer.predict_proba(X), y),
            accuracy_of(quick.predict_proba(X), y));
}

}  // namespace
}  // namespace mfpa::ml
