#include "ml/feature_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/decision_tree.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

/// Dataset where features "good0"/"good1" carry the label and "noise*" don't.
data::Dataset make_sfs_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  data::Dataset ds;
  ds.feature_names = {"good0", "noise0", "good1", "noise1", "noise2"};
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    std::vector<double> row(5);
    row[0] = rng.normal(label * 2.0, 1.0);
    row[1] = rng.uniform();
    row[2] = rng.normal(label * 2.0, 1.0);
    row[3] = rng.uniform();
    row[4] = rng.uniform();
    ds.add(row, label,
           {static_cast<std::uint64_t>(i), static_cast<DayIndex>(i), 0});
  }
  return ds;
}

TEST(Sfs, SelectsInformativeFeaturesFirst) {
  const auto ds = make_sfs_dataset(400, 81);
  DecisionTreeClassifier dt({{"max_depth", 4}});
  const auto result = sequential_forward_selection(dt, ds, 3, 1e-3);
  ASSERT_FALSE(result.selected.empty());
  EXPECT_TRUE(result.selected[0] == "good0" || result.selected[0] == "good1");
}

TEST(Sfs, TrajectoryScoresNonDecreasing) {
  const auto ds = make_sfs_dataset(400, 82);
  DecisionTreeClassifier dt({{"max_depth", 4}});
  const auto result = sequential_forward_selection(dt, ds, 3, 0.0);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i].score, result.trajectory[i - 1].score);
  }
}

TEST(Sfs, SubsetGrowsByOne) {
  const auto ds = make_sfs_dataset(300, 83);
  DecisionTreeClassifier dt({{"max_depth", 4}});
  const auto result = sequential_forward_selection(dt, ds, 3, 1e-3);
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    EXPECT_EQ(result.trajectory[i].subset.size(), i + 1);
    EXPECT_EQ(result.trajectory[i].subset.back(),
              result.trajectory[i].added_feature);
  }
}

TEST(Sfs, MaxFeaturesCapRespected) {
  const auto ds = make_sfs_dataset(300, 84);
  DecisionTreeClassifier dt({{"max_depth", 4}});
  const auto result = sequential_forward_selection(dt, ds, 3, 0.0, 2);
  EXPECT_LE(result.selected.size(), 2u);
}

TEST(Sfs, StopsBeforeExhaustingNoise) {
  const auto ds = make_sfs_dataset(400, 85);
  DecisionTreeClassifier dt({{"max_depth", 4}});
  // Demand a real improvement per feature: noise features should not enter.
  const auto result = sequential_forward_selection(dt, ds, 3, 5e-3);
  EXPECT_LT(result.selected.size(), 5u);
  for (const auto& name : result.selected) {
    EXPECT_TRUE(name.find("noise") == std::string::npos ||
                result.selected.size() <= 3)
        << "unexpected noise feature " << name;
  }
}

}  // namespace
}  // namespace mfpa::ml
