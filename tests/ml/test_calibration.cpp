#include "ml/calibration.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace mfpa::ml {
namespace {

TEST(Isotonic, RequiresBothClassesAndSize) {
  IsotonicCalibrator cal;
  const std::vector<double> s{0.1, 0.9};
  EXPECT_THROW(cal.fit(s, std::vector<int>{1, 1}), std::invalid_argument);
  EXPECT_THROW(cal.fit(std::vector<double>{0.5}, std::vector<int>{1}),
               std::invalid_argument);
  EXPECT_THROW(cal.fit(s, std::vector<int>{1}), std::invalid_argument);
}

TEST(Isotonic, TransformBeforeFitThrows) {
  IsotonicCalibrator cal;
  EXPECT_THROW(cal.transform_one(0.5), std::logic_error);
}

TEST(Isotonic, PerfectSeparationMapsToZeroOne) {
  IsotonicCalibrator cal;
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  const std::vector<int> y{0, 0, 1, 1};
  cal.fit(s, y);
  EXPECT_DOUBLE_EQ(cal.transform_one(0.05), 0.0);
  EXPECT_DOUBLE_EQ(cal.transform_one(0.95), 1.0);
  EXPECT_EQ(cal.block_count(), 2u);
}

TEST(Isotonic, PoolsViolators) {
  // Sorted labels 0,1,0,1: the middle violation pools into one block.
  IsotonicCalibrator cal;
  const std::vector<double> s{0.1, 0.2, 0.3, 0.4};
  const std::vector<int> y{0, 1, 0, 1};
  cal.fit(s, y);
  // PAV on [0,1,0,1] -> blocks [0], [1,0,(1?)]: specifically [0] then
  // pooled {1,0} = 0.5 then [1]; 0.5 < 1 so three blocks survive.
  EXPECT_LE(cal.block_count(), 3u);
  // Monotonicity of the mapping.
  double prev = -1.0;
  for (double x : {0.0, 0.15, 0.25, 0.35, 0.5}) {
    const double v = cal.transform_one(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Isotonic, OutputAlwaysInUnitInterval) {
  Rng rng(1);
  std::vector<double> s(300);
  std::vector<int> y(300);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = rng.uniform();
    y[i] = rng.bernoulli(s[i]) ? 1 : 0;
  }
  IsotonicCalibrator cal;
  cal.fit(s, y);
  for (double x : {-1.0, 0.0, 0.3, 0.7, 1.0, 2.0}) {
    const double v = cal.transform_one(x);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Isotonic, ImprovesBrierOfMiscalibratedScores) {
  // Scores systematically overconfident: s = sqrt(true probability).
  Rng rng(2);
  std::vector<double> s(2000);
  std::vector<int> y(2000);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double p = rng.uniform();
    y[i] = rng.bernoulli(p) ? 1 : 0;
    s[i] = std::sqrt(p);
  }
  IsotonicCalibrator cal;
  cal.fit(s, y);
  const auto calibrated = cal.transform(s);
  EXPECT_LT(brier_score(y, calibrated), brier_score(y, s) - 0.01);
  // Ranking is preserved (monotone map): AUC unchanged up to ties.
  EXPECT_NEAR(auc(y, calibrated), auc(y, s), 0.01);
}

TEST(Reliability, BinsPartitionSamples) {
  const std::vector<double> s{0.05, 0.15, 0.95, 0.55};
  const std::vector<int> y{0, 0, 1, 1};
  const auto bins = reliability_curve(s, y, 10);
  ASSERT_EQ(bins.size(), 10u);
  std::size_t total = 0;
  for (const auto& b : bins) total += b.count;
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[9].count, 1u);
  EXPECT_DOUBLE_EQ(bins[9].observed_rate, 1.0);
}

TEST(Reliability, ScoreOneLandsInLastBin) {
  const std::vector<double> s{1.0};
  const std::vector<int> y{1};
  const auto bins = reliability_curve(s, y, 5);
  EXPECT_EQ(bins[4].count, 1u);
}

TEST(Reliability, WellCalibratedScoresTrackDiagonal) {
  Rng rng(3);
  std::vector<double> s(20000);
  std::vector<int> y(20000);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = rng.uniform();
    y[i] = rng.bernoulli(s[i]) ? 1 : 0;
  }
  for (const auto& bin : reliability_curve(s, y, 10)) {
    if (bin.count < 100) continue;
    EXPECT_NEAR(bin.observed_rate, bin.mean_score, 0.05);
  }
}

TEST(Reliability, Errors) {
  const std::vector<double> s{0.5};
  const std::vector<int> y{1, 0};
  EXPECT_THROW(reliability_curve(s, y), std::invalid_argument);
  const std::vector<int> y1{1};
  EXPECT_THROW(reliability_curve(s, y1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mfpa::ml
