#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mfpa::ml {
namespace {

TEST(ConfusionMatrix, BasicRates) {
  // 10 pos (8 caught), 90 neg (3 false alarms).
  ConfusionMatrix cm{/*tp=*/8, /*fp=*/3, /*tn=*/87, /*fn=*/2};
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.8);
  EXPECT_DOUBLE_EQ(cm.fpr(), 3.0 / 90.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 95.0 / 100.0);
  EXPECT_DOUBLE_EQ(cm.pdr(), 11.0 / 100.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 8.0 / 11.0);
  EXPECT_NEAR(cm.f1(), 2.0 * (8.0 / 11.0) * 0.8 / ((8.0 / 11.0) + 0.8), 1e-12);
  EXPECT_DOUBLE_EQ(cm.tnr(), 1.0 - cm.fpr());
}

TEST(ConfusionMatrix, EmptyIsZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(ConfusionMatrix, FromPredictions) {
  const std::vector<int> yt{1, 1, 0, 0, 1};
  const std::vector<int> yp{1, 0, 0, 1, 1};
  const auto cm = confusion_matrix(yt, yp);
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 1u);
}

TEST(ConfusionMatrix, SizeMismatchThrows) {
  const std::vector<int> a{1};
  const std::vector<int> b{1, 0};
  EXPECT_THROW(confusion_matrix(a, b), std::invalid_argument);
}

TEST(ConfusionAt, ThresholdBoundaryIsPositive) {
  const std::vector<int> yt{1, 0};
  const std::vector<double> s{0.5, 0.49};
  const auto cm = confusion_at(yt, s, 0.5);
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.tn, 1u);
}

TEST(Roc, PerfectSeparation) {
  const std::vector<int> yt{0, 0, 1, 1};
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(auc(yt, s), 1.0);
  const auto curve = roc_curve(yt, s);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
}

TEST(Roc, ReversedScoresGiveZeroAuc) {
  const std::vector<int> yt{0, 0, 1, 1};
  const std::vector<double> s{0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(auc(yt, s), 0.0);
}

TEST(Roc, RandomScoresGiveHalf) {
  const std::vector<int> yt{0, 1, 0, 1};
  const std::vector<double> s{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(yt, s), 0.5);  // all tied -> midrank -> 0.5
}

TEST(Roc, SingleClassGivesHalf) {
  const std::vector<int> yt{1, 1};
  const std::vector<double> s{0.3, 0.9};
  EXPECT_DOUBLE_EQ(auc(yt, s), 0.5);
}

TEST(Roc, HandComputedAuc) {
  // pos scores {0.8, 0.4}, neg scores {0.6, 0.2}:
  // pairs: (0.8>0.6),(0.8>0.2),(0.4<0.6 -> 0),(0.4>0.2) => 3/4.
  const std::vector<int> yt{1, 0, 1, 0};
  const std::vector<double> s{0.8, 0.6, 0.4, 0.2};
  EXPECT_DOUBLE_EQ(auc(yt, s), 0.75);
}

TEST(Roc, TiesUseMidrank) {
  // pos {0.5}, neg {0.5}: tie counts 1/2.
  const std::vector<int> yt{1, 0};
  const std::vector<double> s{0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(yt, s), 0.5);
}

TEST(Roc, CurveMonotone) {
  const std::vector<int> yt{0, 1, 0, 1, 1, 0, 0, 1};
  const std::vector<double> s{0.1, 0.9, 0.3, 0.6, 0.55, 0.52, 0.8, 0.2};
  const auto curve = roc_curve(yt, s);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
}

TEST(Thresholds, YoudenPicksSeparator) {
  const std::vector<int> yt{0, 0, 1, 1};
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  const double t = best_youden_threshold(yt, s);
  const auto cm = confusion_at(yt, s, t);
  EXPECT_DOUBLE_EQ(cm.tpr(), 1.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.0);
}

TEST(Thresholds, WeightedYoudenIsMoreConservative) {
  // One noisy negative at 0.7; heavy FPR weight should push the threshold
  // above it even at the cost of a missed positive at 0.6.
  const std::vector<int> yt{0, 0, 0, 1, 1, 1};
  const std::vector<double> s{0.1, 0.2, 0.7, 0.6, 0.8, 0.9};
  const double t_plain = best_youden_threshold(yt, s);
  const double t_weighted = best_weighted_youden_threshold(yt, s, 10.0);
  EXPECT_LE(t_plain, 0.6);
  EXPECT_GT(t_weighted, 0.7);
}

TEST(Thresholds, ThresholdForFprRespectsBudget) {
  const std::vector<int> yt{0, 0, 0, 0, 1, 1};
  const std::vector<double> s{0.1, 0.2, 0.3, 0.9, 0.8, 0.95};
  // FPR budget 0: threshold must exceed every negative score.
  const double t = threshold_for_fpr(yt, s, 0.0);
  const auto cm = confusion_at(yt, s, t);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.0);
  // 25% budget admits the 0.9 negative.
  const double t25 = threshold_for_fpr(yt, s, 0.25);
  const auto cm25 = confusion_at(yt, s, t25);
  EXPECT_LE(cm25.fpr(), 0.25);
  EXPECT_DOUBLE_EQ(cm25.tpr(), 1.0);
}

TEST(PrCurve, PerfectRankingHasUnitPrecision) {
  const std::vector<int> yt{0, 0, 1, 1};
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  for (const auto& p : pr_curve(yt, s)) {
    if (p.threshold >= 0.8) {
      EXPECT_DOUBLE_EQ(p.precision, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(average_precision(yt, s), 1.0);
}

TEST(PrCurve, RecallNonDecreasing) {
  const std::vector<int> yt{0, 1, 0, 1, 1, 0, 0, 1};
  const std::vector<double> s{0.1, 0.9, 0.3, 0.6, 0.55, 0.52, 0.8, 0.2};
  const auto curve = pr_curve(yt, s);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(PrCurve, HandComputedAp) {
  // Descending scores: pos, neg, pos. AP = 1.0*0.5 + (2/3)*0.5 = 5/6.
  const std::vector<int> yt{1, 0, 1};
  const std::vector<double> s{0.9, 0.8, 0.7};
  EXPECT_NEAR(average_precision(yt, s), 5.0 / 6.0, 1e-12);
}

TEST(PrCurve, NoPositivesGivesZeroAp) {
  const std::vector<int> yt{0, 0};
  const std::vector<double> s{0.4, 0.6};
  EXPECT_DOUBLE_EQ(average_precision(yt, s), 0.0);
}

TEST(PrCurve, SizeMismatchThrows) {
  const std::vector<int> yt{1};
  const std::vector<double> s{0.5, 0.6};
  EXPECT_THROW(pr_curve(yt, s), std::invalid_argument);
}

TEST(BrierScore, PerfectForecastIsZero) {
  const std::vector<int> yt{0, 1};
  const std::vector<double> s{0.0, 1.0};
  EXPECT_DOUBLE_EQ(brier_score(yt, s), 0.0);
}

TEST(BrierScore, UninformativeHalfIsQuarter) {
  const std::vector<int> yt{0, 1, 0, 1};
  const std::vector<double> s{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(brier_score(yt, s), 0.25);
}

TEST(BrierScore, PenalizesConfidentWrongness) {
  const std::vector<int> yt{1};
  EXPECT_DOUBLE_EQ(brier_score(yt, std::vector<double>{0.0}), 1.0);
  EXPECT_GT(brier_score(yt, std::vector<double>{0.1}),
            brier_score(yt, std::vector<double>{0.4}));
}

TEST(BrierScore, EmptyIsZeroAndMismatchThrows) {
  EXPECT_DOUBLE_EQ(brier_score({}, {}), 0.0);
  const std::vector<int> yt{1};
  const std::vector<double> s{0.5, 0.5};
  EXPECT_THROW(brier_score(yt, s), std::invalid_argument);
}

TEST(Summarize, ContainsKeyNumbers) {
  ConfusionMatrix cm{8, 3, 87, 2};
  const std::string s = summarize(cm);
  EXPECT_NE(s.find("TPR=80.00%"), std::string::npos);
  EXPECT_NE(s.find("TP=8"), std::string::npos);
}

}  // namespace
}  // namespace mfpa::ml
