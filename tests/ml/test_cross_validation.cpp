#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ml/naive_bayes.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

TEST(KFold, PartitionsEverything) {
  const auto splits = kfold_splits(100, 5, 1);
  ASSERT_EQ(splits.size(), 5u);
  std::set<std::size_t> all_val;
  for (const auto& s : splits) {
    EXPECT_EQ(s.train.size() + s.validation.size(), 100u);
    for (std::size_t i : s.validation) all_val.insert(i);
  }
  EXPECT_EQ(all_val.size(), 100u);  // every row validated exactly once
}

TEST(KFold, TrainValDisjoint) {
  for (const auto& s : kfold_splits(50, 4, 2)) {
    std::set<std::size_t> train(s.train.begin(), s.train.end());
    for (std::size_t i : s.validation) EXPECT_FALSE(train.contains(i));
  }
}

TEST(KFold, InvalidArgsThrow) {
  EXPECT_THROW(kfold_splits(10, 1, 1), std::invalid_argument);
  EXPECT_THROW(kfold_splits(3, 5, 1), std::invalid_argument);
}

TEST(TimeSeriesCv, NoFutureLeakage) {
  // The defining property (paper Fig. 8(b)(2)): every training index
  // precedes every validation index.
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    for (const auto& s : time_series_splits(100, k)) {
      const std::size_t max_train =
          *std::max_element(s.train.begin(), s.train.end());
      const std::size_t min_val =
          *std::min_element(s.validation.begin(), s.validation.end());
      EXPECT_LT(max_train, min_val);
    }
  }
}

TEST(TimeSeriesCv, ProducesKIterations) {
  EXPECT_EQ(time_series_splits(100, 4).size(), 4u);
}

TEST(TimeSeriesCv, TrainSpansKSubsets) {
  const std::size_t n = 120, k = 3;  // 6 subsets of 20
  const auto splits = time_series_splits(n, k);
  EXPECT_EQ(splits[0].train.size(), 60u);       // subsets 0..2
  EXPECT_EQ(splits[0].validation.size(), 20u);  // subset 3
  EXPECT_EQ(splits[0].train.front(), 0u);
  EXPECT_EQ(splits[0].validation.front(), 60u);
  // Second iteration slides forward by one subset.
  EXPECT_EQ(splits[1].train.front(), 20u);
  EXPECT_EQ(splits[1].validation.front(), 80u);
}

TEST(TimeSeriesCv, TooSmallThrows) {
  EXPECT_THROW(time_series_splits(5, 3), std::invalid_argument);
  EXPECT_THROW(time_series_splits(10, 0), std::invalid_argument);
}

TEST(CrossValScore, HighForSeparableData) {
  const auto [X, y] = testing::make_blobs(100, 3, 4.0, 61);
  GaussianNB nb;
  const auto splits = kfold_splits(y.size(), 5, 3);
  EXPECT_GT(cross_val_score(nb, X, y, splits, CvMetric::kAuc), 0.95);
  EXPECT_GT(cross_val_score(nb, X, y, splits, CvMetric::kAccuracy), 0.9);
}

TEST(CrossValScore, NearChanceForNoise) {
  Rng rng(62);
  data::Matrix X(300, 2);
  std::vector<int> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    X(i, 0) = rng.uniform();
    X(i, 1) = rng.uniform();
    y[i] = rng.bernoulli(0.5) ? 1 : 0;
  }
  GaussianNB nb;
  const auto splits = kfold_splits(y.size(), 5, 4);
  EXPECT_NEAR(cross_val_score(nb, X, y, splits, CvMetric::kAuc), 0.5, 0.1);
}

TEST(CrossValScore, SkipsSingleClassFolds) {
  // All positives at the end: first time-series folds may lack positives in
  // train; the scorer must skip those instead of throwing.
  data::Matrix X(40, 1);
  std::vector<int> y(40, 0);
  for (std::size_t i = 0; i < 40; ++i) X(i, 0) = static_cast<double>(i);
  for (std::size_t i = 30; i < 40; ++i) y[i] = 1;
  GaussianNB nb;
  const auto splits = time_series_splits(40, 4);
  EXPECT_NO_THROW(cross_val_score(nb, X, y, splits));
}

TEST(CrossValScore, EmptySplitsThrow) {
  data::Matrix X{{1.0}};
  const std::vector<int> y{1};
  GaussianNB nb;
  EXPECT_THROW(cross_val_score(nb, X, y, {}), std::invalid_argument);
}

TEST(CrossValScore, YoudenMetricBounded) {
  const auto [X, y] = testing::make_blobs(80, 2, 3.0, 63);
  GaussianNB nb;
  const auto splits = kfold_splits(y.size(), 4, 5);
  const double j = cross_val_score(nb, X, y, splits, CvMetric::kYouden);
  EXPECT_GE(j, -1.0);
  EXPECT_LE(j, 1.0);
  EXPECT_GT(j, 0.8);  // separable data
}

}  // namespace
}  // namespace mfpa::ml
