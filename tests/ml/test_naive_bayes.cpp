#include "ml/naive_bayes.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

using testing::accuracy_of;
using testing::make_blobs;

TEST(GaussianNB, SeparatesBlobs) {
  const auto [X, y] = make_blobs(200, 4, 4.0, 1);
  GaussianNB nb;
  nb.fit(X, y);
  EXPECT_GT(accuracy_of(nb.predict_proba(X), y), 0.98);
}

TEST(GaussianNB, ProbabilitiesInRange) {
  const auto [X, y] = make_blobs(100, 3, 2.0, 2);
  GaussianNB nb;
  nb.fit(X, y);
  for (double p : nb.predict_proba(X)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(GaussianNB, LearnsPriorImbalance) {
  // Identical feature distributions; only the prior differs (90/10).
  Rng rng(3);
  data::Matrix X(100, 1);
  std::vector<int> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    X(i, 0) = rng.normal(0.0, 1.0);
    y[i] = i < 90 ? 0 : 1;
  }
  GaussianNB nb;
  nb.fit(X, y);
  double mean_p = 0.0;
  for (double p : nb.predict_proba(X)) mean_p += p;
  mean_p /= 100.0;
  EXPECT_NEAR(mean_p, 0.1, 0.05);
}

TEST(GaussianNB, SingleClassThrows) {
  data::Matrix X{{1.0}, {2.0}};
  const std::vector<int> y{0, 0};
  GaussianNB nb;
  EXPECT_THROW(nb.fit(X, y), std::invalid_argument);
}

TEST(GaussianNB, PredictBeforeFitThrows) {
  GaussianNB nb;
  data::Matrix X{{1.0}};
  EXPECT_THROW(nb.predict_proba(X), std::logic_error);
}

TEST(GaussianNB, FeatureMismatchThrows) {
  const auto [X, y] = make_blobs(20, 2, 3.0, 4);
  GaussianNB nb;
  nb.fit(X, y);
  data::Matrix bad{{1.0, 2.0, 3.0}};
  EXPECT_THROW(nb.predict_proba(bad), std::invalid_argument);
}

TEST(GaussianNB, ConstantFeatureHandledBySmoothing) {
  data::Matrix X{{0.0, 1.0}, {0.0, 2.0}, {0.0, 10.0}, {0.0, 11.0}};
  const std::vector<int> y{0, 0, 1, 1};
  GaussianNB nb;
  ASSERT_NO_THROW(nb.fit(X, y));
  const auto p = nb.predict_proba(X);
  EXPECT_LT(p[0], 0.5);
  EXPECT_GT(p[3], 0.5);
}

TEST(GaussianNB, HardPredictThreshold) {
  const auto [X, y] = make_blobs(100, 2, 5.0, 5);
  GaussianNB nb;
  nb.fit(X, y);
  const auto labels = nb.predict(X);
  std::size_t hit = 0;
  for (std::size_t i = 0; i < y.size(); ++i) hit += labels[i] == y[i];
  EXPECT_GT(static_cast<double>(hit) / y.size(), 0.98);
}

TEST(GaussianNB, CloneIsUnfitted) {
  const auto [X, y] = make_blobs(20, 2, 3.0, 6);
  GaussianNB nb;
  nb.fit(X, y);
  auto clone = nb.clone_unfitted();
  EXPECT_EQ(clone->name(), "Bayes");
  EXPECT_THROW(clone->predict_proba(X), std::logic_error);
}

}  // namespace
}  // namespace mfpa::ml
