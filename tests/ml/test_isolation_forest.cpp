#include "ml/isolation_forest.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/metrics.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

/// Dense healthy cluster + a few far-away anomalies.
std::pair<data::Matrix, std::vector<int>> make_anomalies(std::size_t normal,
                                                         std::size_t outliers,
                                                         std::uint64_t seed) {
  Rng rng(seed);
  data::Matrix X(normal + outliers, 3);
  std::vector<int> y(normal + outliers, 0);
  for (std::size_t i = 0; i < normal + outliers; ++i) {
    for (std::size_t c = 0; c < 3; ++c) X(i, c) = rng.normal(0.0, 1.0);
    if (i >= normal) {
      y[i] = 1;
      for (std::size_t c = 0; c < 3; ++c) X(i, c) += rng.uniform(6.0, 10.0);
    }
  }
  return {std::move(X), std::move(y)};
}

TEST(IsolationForest, RanksOutliersHigher) {
  const auto [X, y] = make_anomalies(400, 20, 1);
  IsolationForest forest({{"n_trees", 60}, {"seed", 2}});
  forest.fit(X, y);
  EXPECT_GT(auc(y, forest.predict_proba(X)), 0.95);
}

TEST(IsolationForest, IgnoresLabels) {
  const auto [X, y] = make_anomalies(200, 10, 3);
  std::vector<int> shuffled_labels(y.size(), 0);  // all zero: no information
  IsolationForest a({{"n_trees", 30}, {"seed", 4}});
  IsolationForest b({{"n_trees", 30}, {"seed", 4}});
  a.fit(X, y);
  b.fit(X, shuffled_labels);
  EXPECT_EQ(a.predict_proba(X), b.predict_proba(X));
}

TEST(IsolationForest, ScoresInUnitInterval) {
  const auto [X, y] = make_anomalies(150, 10, 5);
  IsolationForest forest({{"n_trees", 25}, {"seed", 6}});
  forest.fit(X, y);
  for (double s : forest.predict_proba(X)) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForest, InliersScoreBelowHalfish) {
  // The canonical iForest property: average points score ~0.5 or below,
  // clear anomalies approach 1.
  const auto [X, y] = make_anomalies(400, 5, 7);
  IsolationForest forest({{"n_trees", 80}, {"seed", 8}});
  forest.fit(X, y);
  const auto scores = forest.predict_proba(X);
  double inlier_mean = 0.0, outlier_mean = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    (y[i] == 1 ? outlier_mean : inlier_mean) += scores[i];
  }
  inlier_mean /= 400.0;
  outlier_mean /= 5.0;
  EXPECT_LT(inlier_mean, 0.55);
  EXPECT_GT(outlier_mean, inlier_mean + 0.1);
}

TEST(IsolationForest, DeterministicGivenSeed) {
  const auto [X, y] = make_anomalies(100, 5, 9);
  IsolationForest a({{"seed", 11}}), b({{"seed", 11}});
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.predict_proba(X), b.predict_proba(X));
}

TEST(IsolationForest, PredictBeforeFitThrows) {
  IsolationForest forest;
  data::Matrix X{{0.0}};
  EXPECT_THROW(forest.predict_proba(X), std::logic_error);
}

TEST(IsolationForest, SerializationRoundTrip) {
  const auto [X, y] = make_anomalies(120, 8, 13);
  IsolationForest forest({{"n_trees", 20}, {"seed", 14}});
  forest.fit(X, y);
  std::stringstream ss;
  forest.save_state(ss);
  IsolationForest restored({{"n_trees", 20}, {"seed", 14}});
  restored.load_state(ss);
  EXPECT_EQ(restored.predict_proba(X), forest.predict_proba(X));
}

TEST(IsolationForest, AveragePathLengthFormula) {
  EXPECT_DOUBLE_EQ(IsolationForest::average_path_length(0), 0.0);
  EXPECT_DOUBLE_EQ(IsolationForest::average_path_length(1), 0.0);
  // c(2) = 2*(ln(1) + gamma) - 2*1/2 = 2*gamma - 1 ~ 0.1544.
  EXPECT_NEAR(IsolationForest::average_path_length(2), 0.1544, 1e-3);
  // c(n) grows logarithmically.
  EXPECT_GT(IsolationForest::average_path_length(256),
            IsolationForest::average_path_length(64));
}

TEST(IsolationForest, ConstantDataDoesNotCrash) {
  data::Matrix X(50, 2, 3.0);
  const std::vector<int> y(50, 0);
  IsolationForest forest({{"n_trees", 10}, {"seed", 15}});
  ASSERT_NO_THROW(forest.fit(X, y));
  const auto scores = forest.predict_proba(X);
  // Nothing is separable: all scores equal.
  for (double s : scores) EXPECT_DOUBLE_EQ(s, scores[0]);
}

}  // namespace
}  // namespace mfpa::ml
