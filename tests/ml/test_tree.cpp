#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

using testing::accuracy_of;
using testing::make_blobs;
using testing::make_xor;

std::vector<std::size_t> all_rows(std::size_t n) {
  std::vector<std::size_t> rows(n);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return rows;
}

TEST(RegressionTree, SingleSplitRecoversThreshold) {
  // y = 1 iff x > 5; one split at ~5 suffices.
  data::Matrix X(100, 1);
  std::vector<double> g(100);
  for (std::size_t i = 0; i < 100; ++i) {
    X(i, 0) = static_cast<double>(i) / 10.0;
    g[i] = X(i, 0) > 5.0 ? 1.0 : 0.0;
  }
  RegressionTree tree(TreeParams{.max_depth = 1});
  Rng rng(1);
  tree.fit(X, g, {}, all_rows(100), rng);
  ASSERT_TRUE(tree.fitted());
  const auto& root = tree.nodes()[0];
  EXPECT_EQ(root.feature, 0);
  EXPECT_NEAR(root.threshold, 5.0, 0.11);
  EXPECT_NEAR(tree.predict_row(std::vector<double>{9.0}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict_row(std::vector<double>{1.0}), 0.0, 1e-9);
}

TEST(RegressionTree, DepthLimitRespected) {
  const auto [X, y] = make_xor(300, 2);
  std::vector<double> g(y.begin(), y.end());
  RegressionTree tree(TreeParams{.max_depth = 3});
  Rng rng(2);
  tree.fit(X, g, {}, all_rows(300), rng);
  EXPECT_LE(tree.depth(), 4);  // root at depth 1
}

TEST(RegressionTree, LeafValueIsMean) {
  data::Matrix X{{1.0}, {1.0}, {1.0}};
  const std::vector<double> g{0.0, 1.0, 1.0};
  RegressionTree tree;
  Rng rng(3);
  tree.fit(X, g, {}, all_rows(3), rng);
  // Constant feature: no split possible; root is a leaf with the mean.
  EXPECT_NEAR(tree.predict_row(std::vector<double>{1.0}), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(tree.nodes().size(), 1u);
}

TEST(RegressionTree, MinSamplesLeafBlocksTinySplits) {
  data::Matrix X(10, 1);
  std::vector<double> g(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) X(i, 0) = static_cast<double>(i);
  g[9] = 1.0;  // only a 9|1 split would isolate it
  RegressionTree tree(TreeParams{.min_samples_leaf = 3});
  Rng rng(4);
  tree.fit(X, g, {}, all_rows(10), rng);
  for (const auto& node : tree.nodes()) {
    if (node.feature >= 0) {
      EXPECT_GE(tree.nodes()[static_cast<std::size_t>(node.left)].samples, 3u);
      EXPECT_GE(tree.nodes()[static_cast<std::size_t>(node.right)].samples, 3u);
    }
  }
}

TEST(RegressionTree, NewtonLeafUsesHessian) {
  // With hessians, leaf = sum(g)/(sum(h)+lambda).
  data::Matrix X{{1.0}, {1.0}};
  const std::vector<double> g{1.0, 1.0};
  const std::vector<double> h{0.5, 0.5};
  RegressionTree tree(TreeParams{.lambda = 1.0});
  Rng rng(5);
  tree.fit(X, g, h, all_rows(2), rng);
  EXPECT_NEAR(tree.predict_row(std::vector<double>{1.0}), 2.0 / 2.0, 1e-12);
}

TEST(RegressionTree, EmptyRowsThrows) {
  data::Matrix X{{1.0}};
  const std::vector<double> g{1.0};
  RegressionTree tree;
  Rng rng(6);
  EXPECT_THROW(tree.fit(X, g, {}, {}, rng), std::invalid_argument);
}

TEST(RegressionTree, GradSizeMismatchThrows) {
  data::Matrix X{{1.0}, {2.0}};
  const std::vector<double> g{1.0};
  RegressionTree tree;
  Rng rng(7);
  EXPECT_THROW(tree.fit(X, g, {}, all_rows(2), rng), std::invalid_argument);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  RegressionTree tree;
  EXPECT_THROW(tree.predict_row(std::vector<double>{1.0}), std::logic_error);
}

TEST(RegressionTree, ImportanceConcentratesOnInformativeFeature) {
  // Feature 1 is label-defining, feature 0 is noise.
  Rng data_rng(8);
  data::Matrix X(200, 2);
  std::vector<double> g(200);
  for (std::size_t i = 0; i < 200; ++i) {
    X(i, 0) = data_rng.uniform();
    X(i, 1) = data_rng.uniform();
    g[i] = X(i, 1) > 0.5 ? 1.0 : 0.0;
  }
  RegressionTree tree(TreeParams{.max_depth = 4});
  Rng rng(9);
  tree.fit(X, g, {}, all_rows(200), rng);
  std::vector<double> imp(2, 0.0);
  tree.accumulate_importance(imp);
  EXPECT_GT(imp[1], imp[0] * 10.0);
}

TEST(DecisionTreeClassifier, SolvesXor) {
  const auto [X, y] = make_xor(500, 10);
  DecisionTreeClassifier dt({{"max_depth", 6}});
  dt.fit(X, y);
  EXPECT_GT(accuracy_of(dt.predict_proba(X), y), 0.95);
}

TEST(DecisionTreeClassifier, ProbaIsLeafFraction) {
  data::Matrix X{{0.0}, {0.0}, {0.0}, {10.0}};
  const std::vector<int> y{0, 0, 1, 1};
  DecisionTreeClassifier dt({{"max_depth", 1}});
  dt.fit(X, y);
  const auto p = dt.predict_proba(X);
  EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-9);  // left leaf has 1 of 3 positive
  EXPECT_NEAR(p[3], 1.0, 1e-9);
}

TEST(DecisionTreeClassifier, SeparatesBlobs) {
  const auto [X, y] = make_blobs(150, 3, 3.0, 11);
  DecisionTreeClassifier dt;
  dt.fit(X, y);
  EXPECT_GT(accuracy_of(dt.predict_proba(X), y), 0.97);
}

// Depth sweep: deeper trees fit XOR better (until saturation).
class DepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DepthSweep, AccuracyImprovesWithDepth) {
  const auto [X, y] = make_xor(400, 12);
  DecisionTreeClassifier dt({{"max_depth", static_cast<double>(GetParam())}});
  dt.fit(X, y);
  const double acc = accuracy_of(dt.predict_proba(X), y);
  if (GetParam() >= 4) {
    EXPECT_GT(acc, 0.9);
  }
  EXPECT_GT(acc, 0.45);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace mfpa::ml
