// Exact-vs-histogram split-path parity suite: the hist path must find the
// same splits as the exact sorted path on low-cardinality data, stay within
// metric noise of it on continuous data, serialize identically, and remain
// deterministic across thread counts and shared-bin reuse.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "data/binned_matrix.hpp"
#include "ml/cross_validation.hpp"
#include "ml/factory.hpp"
#include "ml/gbdt.hpp"
#include "ml/grid_search.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "test_helpers.hpp"

namespace mfpa::ml {
namespace {

using testing::accuracy_of;
using testing::make_blobs;
using testing::make_xor;

std::vector<std::size_t> all_rows(std::size_t n) {
  std::vector<std::size_t> rows(n);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return rows;
}

TreeParams with_method(TreeParams tp, SplitMethod m) {
  tp.split_method = m;
  return tp;
}

// Low-cardinality features (fewer distinct values than bins): the binned
// candidate-cut set equals the exact path's distinct-boundary set, so both
// paths must grow the identical tree — same features, node sample counts,
// gains, and partition-equivalent thresholds. (Thresholds may differ as
// doubles when a node is missing a feature value: several cuts then tie on
// gain and the two paths pick different representatives of the same gap.)
TEST(HistTree, IdenticalTreeOnLowCardinalityData) {
  Rng data_rng(101);
  const std::size_t n = 400;
  data::Matrix X(n, 3);
  std::vector<double> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    X(i, 0) = static_cast<double>(data_rng.uniform_int(0, 9));
    X(i, 1) = static_cast<double>(data_rng.uniform_int(0, 19));
    X(i, 2) = static_cast<double>(data_rng.uniform_int(0, 4));
    g[i] = (X(i, 0) + X(i, 1) > 12.0) ? 1.0 : 0.0;
  }
  const TreeParams base{.max_depth = 6};

  RegressionTree exact(with_method(base, SplitMethod::kExact));
  RegressionTree hist(with_method(base, SplitMethod::kHist));
  Rng rng_a(1), rng_b(1);
  exact.fit(X, g, {}, all_rows(n), rng_a);
  hist.fit(X, g, {}, all_rows(n), rng_b);

  ASSERT_EQ(exact.nodes().size(), hist.nodes().size());
  // Route every row down the exact tree (children are appended after their
  // parent, so one ascending pass fills node_rows before it is consumed).
  std::vector<std::vector<std::size_t>> node_rows(exact.nodes().size());
  node_rows[0] = all_rows(n);
  for (std::size_t i = 0; i < exact.nodes().size(); ++i) {
    const auto& e = exact.nodes()[i];
    const auto& h = hist.nodes()[i];
    EXPECT_EQ(e.feature, h.feature) << "node " << i;
    EXPECT_EQ(e.samples, h.samples) << "node " << i;
    EXPECT_EQ(e.left, h.left) << "node " << i;
    EXPECT_EQ(e.right, h.right) << "node " << i;
    if (e.feature >= 0) {
      const auto f = static_cast<std::size_t>(e.feature);
      for (const std::size_t r : node_rows[i]) {
        // Thresholds must split this node's rows identically even when they
        // differ as doubles (different representatives of an empty gap).
        ASSERT_EQ(X(r, f) <= e.threshold, X(r, f) <= h.threshold)
            << "node " << i << " row " << r;
        auto& child = node_rows[static_cast<std::size_t>(
            X(r, f) <= e.threshold ? e.left : e.right)];
        child.push_back(r);
      }
      EXPECT_NEAR(e.gain, h.gain, 1e-9 * (1.0 + std::abs(e.gain)))
          << "node " << i;
    } else {
      EXPECT_NEAR(e.value, h.value, 1e-12) << "node " << i;
    }
  }
}

TEST(HistTree, PrebuiltBinsMatchInternalBinning) {
  const auto [X, y] = make_xor(300, 102);
  std::vector<double> g(y.begin(), y.end());
  const TreeParams tp{.max_depth = 6};

  RegressionTree internal(tp), prebuilt(tp);
  Rng rng_a(2), rng_b(2);
  internal.fit(X, g, {}, all_rows(300), rng_a);
  const data::BinnedMatrix bins(X, tp.max_bins);
  prebuilt.fit(bins, g, {}, all_rows(300), rng_b);

  EXPECT_EQ(internal.predict(X), prebuilt.predict(X));
}

TEST(HistTree, SolvesXorAndBlobs) {
  {
    const auto [X, y] = make_xor(500, 103);
    RandomForestClassifier rf({{"n_trees", 30}, {"max_depth", 8}});
    rf.fit(X, y);
    EXPECT_GT(accuracy_of(rf.predict_proba(X), y), 0.95);
  }
  {
    const auto [X, y] = make_blobs(200, 3, 2.5, 104);
    GbdtClassifier gbdt;
    gbdt.fit(X, y);
    EXPECT_GT(accuracy_of(gbdt.predict_proba(X), y), 0.97);
  }
}

// Train/test TPR/FPR of the hist path must sit within metric noise of the
// exact path on overlapping continuous-feature data (the fleet-style
// acceptance check; the full-pipeline variant lives in
// tests/integration/test_hist_parity.cpp).
TEST(HistTree, EnsembleTprFprWithinNoiseOfExactPath) {
  const auto [Xtr, ytr] = make_blobs(1500, 10, 2.0, 105);
  const auto [Xte, yte] = make_blobs(1500, 10, 2.0, 106);

  const auto eval = [&](const Hyperparams& params, bool rf) {
    std::unique_ptr<Classifier> model;
    if (rf) {
      model = std::make_unique<RandomForestClassifier>(params);
    } else {
      model = std::make_unique<GbdtClassifier>(params);
    }
    model->fit(Xtr, ytr);
    return confusion_at(yte, model->predict_proba(Xte), 0.5);
  };

  for (const bool rf : {true, false}) {
    const Hyperparams base{{"seed", 1}};
    Hyperparams exact = base, hist = base;
    exact["split_method"] = 0;
    hist["split_method"] = 1;
    const auto cm_exact = eval(exact, rf);
    const auto cm_hist = eval(hist, rf);
    EXPECT_NEAR(cm_hist.tpr(), cm_exact.tpr(), 0.005) << (rf ? "RF" : "GBDT");
    EXPECT_NEAR(cm_hist.fpr(), cm_exact.fpr(), 0.0025) << (rf ? "RF" : "GBDT");
  }
}

TEST(HistTree, ExactPathStillSelectable) {
  const auto [X, y] = make_xor(400, 107);
  RandomForestClassifier exact({{"n_trees", 20}, {"split_method", 0}});
  RandomForestClassifier hist({{"n_trees", 20}, {"split_method", 1}});
  exact.fit(X, y);
  hist.fit(X, y);
  EXPECT_GT(accuracy_of(exact.predict_proba(X), y), 0.95);
  EXPECT_GT(accuracy_of(hist.predict_proba(X), y), 0.95);
}

TEST(HistTree, SerializationRoundTripOfHistTrainedEnsembles) {
  const auto [X, y] = make_blobs(150, 5, 2.0, 108);
  for (const std::string algo : {"RF", "GBDT"}) {
    Hyperparams p{{"seed", 3}, {"split_method", 1}};
    if (algo == "RF") p["n_trees"] = 8;
    if (algo == "GBDT") p["n_rounds"] = 10;
    auto model = make_classifier(algo, p);
    model->fit(X, y);
    std::stringstream ss;
    save_classifier(ss, *model);
    const auto restored = load_classifier(ss);
    EXPECT_EQ(restored->predict_proba(X), model->predict_proba(X)) << algo;
  }
}

TEST(HistTree, DeterministicAcrossThreadCounts) {
  const auto [X, y] = make_blobs(300, 6, 1.5, 109);
  // RF: threaded hist fit and threaded predict must be invariant.
  RandomForestClassifier rf1({{"n_trees", 12}, {"seed", 7}, {"threads", 1}});
  RandomForestClassifier rf4({{"n_trees", 12}, {"seed", 7}, {"threads", 4}});
  rf1.fit(X, y);
  rf4.fit(X, y);
  EXPECT_EQ(rf1.predict_proba(X), rf4.predict_proba(X));

  // GBDT: per-round score updates and predict_proba are row-parallel; the
  // model and its outputs must be identical for any thread count.
  GbdtClassifier g1({{"n_rounds", 15}, {"seed", 7}, {"threads", 1}});
  GbdtClassifier g4({{"n_rounds", 15}, {"seed", 7}, {"threads", 4}});
  GbdtClassifier ghw({{"n_rounds", 15}, {"seed", 7}, {"threads", 0}});
  g1.fit(X, y);
  g4.fit(X, y);
  ghw.fit(X, y);
  EXPECT_EQ(g1.predict_proba(X), g4.predict_proba(X));
  EXPECT_EQ(g1.predict_proba(X), ghw.predict_proba(X));
}

TEST(HistTree, SharedBinsMatchSelfBinnedFit) {
  const auto [X, y] = make_blobs(200, 4, 2.0, 110);
  const auto bins = std::make_shared<const data::BinnedMatrix>(X);

  RandomForestClassifier plain({{"n_trees", 10}, {"seed", 5}});
  RandomForestClassifier shared({{"n_trees", 10}, {"seed", 5}});
  shared.set_shared_bins(bins);
  plain.fit(X, y);
  shared.fit(X, y);
  EXPECT_EQ(plain.predict_proba(X), shared.predict_proba(X));

  GbdtClassifier gplain({{"n_rounds", 12}, {"seed", 5}});
  GbdtClassifier gshared({{"n_rounds", 12}, {"seed", 5}});
  gshared.set_shared_bins(bins);
  gplain.fit(X, y);
  gshared.fit(X, y);
  EXPECT_EQ(gplain.predict_proba(X), gshared.predict_proba(X));
}

TEST(HistTree, MismatchedSharedBinsAreIgnored) {
  const auto [X, y] = make_blobs(100, 3, 2.0, 111);
  const auto [Xother, yother] = make_blobs(60, 3, 2.0, 112);
  const auto stale = std::make_shared<const data::BinnedMatrix>(Xother);

  RandomForestClassifier plain({{"n_trees", 8}, {"seed", 9}});
  RandomForestClassifier with_stale({{"n_trees", 8}, {"seed", 9}});
  with_stale.set_shared_bins(stale);  // wrong row count -> silently re-bins
  plain.fit(X, y);
  with_stale.fit(X, y);
  EXPECT_EQ(plain.predict_proba(X), with_stale.predict_proba(X));
}

TEST(HistTree, CvCacheScoresMatchDirectCrossValScore) {
  const auto [X, y] = make_blobs(120, 4, 1.5, 113);
  const auto splits = kfold_splits(X.rows(), 4, 42);
  for (const std::string algo : {"RF", "GBDT"}) {
    Hyperparams p{{"seed", 2}};
    if (algo == "RF") p["n_trees"] = 8;
    if (algo == "GBDT") p["n_rounds"] = 8;
    const auto model = make_classifier(algo, p);
    const double direct = cross_val_score(*model, X, y, splits);
    const auto cache = build_cv_cache(X, y, splits, true);
    const double cached = cross_val_score(*model, cache);
    EXPECT_DOUBLE_EQ(direct, cached) << algo;
  }
}

TEST(HistTree, GridSearchSharedBinsDeterministicAcrossThreads) {
  const auto [X, y] = make_blobs(100, 3, 1.5, 114);
  const auto splits = kfold_splits(X.rows(), 3, 7);
  const ParamGrid grid{{"n_trees", {5, 10}}, {"max_depth", {4, 8}}};
  const auto serial = grid_search("RF", {{"seed", 1}}, grid, X, y, splits,
                                  CvMetric::kAuc, 1);
  const auto threaded = grid_search("RF", {{"seed", 1}}, grid, X, y, splits,
                                    CvMetric::kAuc, 4);
  EXPECT_EQ(serial.best_params, threaded.best_params);
  ASSERT_EQ(serial.all.size(), threaded.all.size());
  for (std::size_t i = 0; i < serial.all.size(); ++i) {
    EXPECT_EQ(serial.all[i].second, threaded.all[i].second);
  }
}

TEST(HistTree, GridSearchExactBaseStillWorks) {
  const auto [X, y] = make_blobs(60, 3, 2.0, 115);
  const auto splits = kfold_splits(X.rows(), 3, 8);
  const ParamGrid grid{{"n_trees", {4, 8}}};
  const auto result = grid_search("RF", {{"seed", 1}, {"split_method", 0}},
                                  grid, X, y, splits);
  EXPECT_GT(result.best_score, 0.5);
}

}  // namespace
}  // namespace mfpa::ml
