#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace mfpa::cli {
namespace {

TEST(CommandLineParse, VerbAndOptions) {
  const auto cmd = parse_command_line(
      {"train", "--telemetry=t.csv", "--vendor=2", "--report"});
  EXPECT_EQ(cmd.command, "train");
  EXPECT_EQ(cmd.get("telemetry"), "t.csv");
  EXPECT_DOUBLE_EQ(cmd.get_number("vendor", -1), 2.0);
  EXPECT_TRUE(cmd.has("report"));
  EXPECT_FALSE(cmd.has("model"));
}

TEST(CommandLineParse, EmptyThrows) {
  EXPECT_THROW(parse_command_line({}), std::invalid_argument);
}

TEST(CommandLineParse, BarePositionalRejected) {
  EXPECT_THROW(parse_command_line({"train", "stray"}), std::invalid_argument);
}

TEST(CommandLineParse, ValueWithEquals) {
  const auto cmd = parse_command_line({"x", "--path=a=b"});
  EXPECT_EQ(cmd.get("path"), "a=b");
}

TEST(CommandLineAccessors, Defaults) {
  const auto cmd = parse_command_line({"x"});
  EXPECT_EQ(cmd.get("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(cmd.get_number("missing", 3.5), 3.5);
  EXPECT_THROW(cmd.require("missing"), std::invalid_argument);
}

TEST(CommandLineAccessors, MalformedNumberThrows) {
  const auto cmd = parse_command_line({"x", "--n=abc", "--m=1.5x"});
  EXPECT_THROW(cmd.get_number("n", 0), std::invalid_argument);
  EXPECT_THROW(cmd.get_number("m", 0), std::invalid_argument);
}

TEST(RunCommand, HelpPrintsUsage) {
  std::ostringstream out, err;
  const int rc = run_command(parse_command_line({"help"}), out, err);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("simulate"), std::string::npos);
  EXPECT_NE(out.str().find("predict"), std::string::npos);
}

TEST(RunCommand, UnknownCommandFails) {
  std::ostringstream out, err;
  const int rc = run_command(parse_command_line({"frobnicate"}), out, err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(err.str().find("unknown command"), std::string::npos);
}

TEST(RunCommand, MissingRequiredOptionIsUserError) {
  std::ostringstream out, err;
  const int rc = run_command(parse_command_line({"simulate"}), out, err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(err.str().find("--telemetry"), std::string::npos);
}

TEST(RunCommand, MissingFileIsRuntimeFailure) {
  std::ostringstream out, err;
  const int rc = run_command(
      parse_command_line({"info", "--model=/nonexistent/m.txt"}), out, err);
  EXPECT_EQ(rc, 2);
}

TEST(RunCommand, FullWorkflowSimulateTrainPredictInfo) {
  const std::string dir = ::testing::TempDir();
  const std::string telemetry = dir + "/mfpa_cli_t.csv";
  const std::string tickets = dir + "/mfpa_cli_k.csv";
  const std::string model = dir + "/mfpa_cli_m.txt";

  std::ostringstream out, err;
  ASSERT_EQ(run_command(parse_command_line({"simulate",
                                            "--telemetry=" + telemetry,
                                            "--tickets=" + tickets,
                                            "--scenario=tiny", "--seed=6"}),
                        out, err),
            0)
      << err.str();

  out.str("");
  ASSERT_EQ(run_command(parse_command_line(
                            {"train", "--telemetry=" + telemetry,
                             "--tickets=" + tickets, "--model=" + model,
                             "--report", "--algorithm=DT", "--seed=6"}),
                        out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("TPR"), std::string::npos);

  out.str("");
  ASSERT_EQ(run_command(parse_command_line({"predict",
                                            "--telemetry=" + telemetry,
                                            "--model=" + model, "--top=3"}),
                        out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("risk score"), std::string::npos);

  out.str("");
  ASSERT_EQ(run_command(parse_command_line({"info", "--model=" + model}), out,
                        err),
            0);
  EXPECT_NE(out.str().find("algorithm: DT"), std::string::npos);

  std::remove(telemetry.c_str());
  std::remove(tickets.c_str());
  std::remove(model.c_str());
}

TEST(RunCommand, EvaluateReportsDriveLevelMetrics) {
  const std::string dir = ::testing::TempDir();
  const std::string telemetry = dir + "/mfpa_cli_e.csv";
  const std::string tickets = dir + "/mfpa_cli_ek.csv";
  std::ostringstream out, err;
  ASSERT_EQ(run_command(parse_command_line({"simulate",
                                            "--telemetry=" + telemetry,
                                            "--tickets=" + tickets,
                                            "--scenario=tiny", "--seed=6"}),
                        out, err),
            0);
  out.str("");
  ASSERT_EQ(run_command(parse_command_line(
                            {"evaluate", "--telemetry=" + telemetry,
                             "--tickets=" + tickets, "--algorithm=DT",
                             "--seed=6"}),
                        out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("drive-level"), std::string::npos);
  EXPECT_NE(out.str().find("AUC"), std::string::npos);
  std::remove(telemetry.c_str());
  std::remove(tickets.c_str());
}

TEST(RunCommand, TrainRejectsUnknownGroup) {
  std::ostringstream out, err;
  const int rc = run_command(
      parse_command_line({"train", "--telemetry=a", "--tickets=b",
                          "--model=c", "--group=NOPE"}),
      out, err);
  EXPECT_EQ(rc, 1);
}

TEST(Usage, MentionsEveryCommand) {
  const std::string text = usage();
  for (const char* cmd :
       {"simulate", "train", "evaluate", "predict", "validate", "info"}) {
    EXPECT_NE(text.find(cmd), std::string::npos) << cmd;
  }
}

TEST(RunCommand, ValidateCleanSimulatedBatch) {
  const std::string dir = ::testing::TempDir();
  const std::string telemetry = dir + "/mfpa_cli_v.csv";
  const std::string tickets = dir + "/mfpa_cli_vk.csv";
  std::ostringstream out, err;
  ASSERT_EQ(run_command(parse_command_line({"simulate",
                                            "--telemetry=" + telemetry,
                                            "--tickets=" + tickets,
                                            "--scenario=tiny", "--seed=8"}),
                        out, err),
            0);
  out.str("");
  EXPECT_EQ(run_command(
                parse_command_line({"validate", "--telemetry=" + telemetry}),
                out, err),
            0);
  EXPECT_NE(out.str().find("batch is clean"), std::string::npos);
  std::remove(telemetry.c_str());
  std::remove(tickets.c_str());
}

TEST(RunCommand, MetricsCommandPrintsPrometheusText) {
  auto reg = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride scope(*reg);
  reg->counter("mfpa_cli_probe_total").inc(2);
  std::ostringstream out, err;
  ASSERT_EQ(run_command(parse_command_line({"metrics"}), out, err), 0)
      << err.str();
  EXPECT_NE(out.str().find("# TYPE mfpa_cli_probe_total counter"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("mfpa_cli_probe_total 2"), std::string::npos);
}

TEST(RunCommand, MetricsOutWritesSchemaStableJson) {
  auto reg = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride scope(*reg);
  const std::string dir = ::testing::TempDir();
  const std::string telemetry = dir + "/mfpa_cli_mo.csv";
  const std::string tickets = dir + "/mfpa_cli_mok.csv";
  const std::string metrics = dir + "/mfpa_cli_mo_metrics.json";
  std::ostringstream out, err;
  ASSERT_EQ(run_command(parse_command_line(
                            {"simulate", "--telemetry=" + telemetry,
                             "--tickets=" + tickets, "--scenario=tiny",
                             "--seed=6", "--metrics-out=" + metrics}),
                        out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("wrote metrics to"), std::string::npos);
  std::ifstream in(metrics);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"schema\": \"mfpa.metrics.v1\""),
            std::string::npos)
      << buf.str();
  std::remove(telemetry.c_str());
  std::remove(tickets.c_str());
  std::remove(metrics.c_str());
}

TEST(Usage, DocumentsObservabilityFlags) {
  const std::string text = usage();
  EXPECT_NE(text.find("metrics"), std::string::npos);
  EXPECT_NE(text.find("--metrics-out"), std::string::npos);
}

TEST(Usage, DocumentsCompiledInferenceFlag) {
  const std::string text = usage();
  EXPECT_NE(text.find("--no-flat"), std::string::npos);
}

TEST(Usage, DocumentsQuantizedAndSimdFlags) {
  const std::string text = usage();
  EXPECT_NE(text.find("--quantized"), std::string::npos);
  EXPECT_NE(text.find("--simd=auto|scalar|neon|avx2"), std::string::npos);
}

TEST(ServeReplayCommand, RejectsBadSimdValue) {
  std::ostringstream out, err;
  EXPECT_NE(run_command(parse_command_line({"serve-replay", "--simd=sse9"}),
                        out, err),
            0);
  EXPECT_NE(err.str().find("--simd"), std::string::npos);
}

TEST(Usage, DocumentsShardedServing) {
  const std::string text = usage();
  EXPECT_NE(text.find("fleet-replay"), std::string::npos);
  EXPECT_NE(text.find("--shards"), std::string::npos);
  EXPECT_NE(text.find("--chunk-drives"), std::string::npos);
}

TEST(ServeReplayCommand, RejectsNonPositiveShards) {
  std::ostringstream out, err;
  EXPECT_EQ(run_command(parse_command_line({"serve-replay", "--shards=0"}),
                        out, err),
            1);
  EXPECT_NE(err.str().find("--shards"), std::string::npos);
  err.str("");
  EXPECT_EQ(run_command(parse_command_line({"serve-replay", "--shards=2.5"}),
                        out, err),
            1);
  EXPECT_NE(err.str().find("--shards"), std::string::npos);
}

TEST(FleetReplayCommand, RejectsBadChunkAndSeed) {
  std::ostringstream out, err;
  EXPECT_EQ(run_command(
                parse_command_line({"fleet-replay", "--chunk-drives=0"}),
                out, err),
            1);
  EXPECT_NE(err.str().find("--chunk-drives"), std::string::npos);
  err.str("");
  EXPECT_EQ(run_command(parse_command_line({"fleet-replay", "--seed=-3"}),
                        out, err),
            1);
  EXPECT_NE(err.str().find("--seed"), std::string::npos);
}

TEST(RunCommand, SimulateScaleOverride) {
  const std::string dir = ::testing::TempDir();
  const std::string telemetry = dir + "/mfpa_cli_s.csv";
  const std::string tickets = dir + "/mfpa_cli_sk.csv";
  std::ostringstream out, err;
  ASSERT_EQ(run_command(parse_command_line(
                            {"simulate", "--telemetry=" + telemetry,
                             "--tickets=" + tickets, "--scenario=tiny",
                             "--seed=8", "--scale=0.002", "--no-drift"}),
                        out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("wrote"), std::string::npos);
  std::remove(telemetry.c_str());
  std::remove(tickets.c_str());
}

}  // namespace
}  // namespace mfpa::cli
