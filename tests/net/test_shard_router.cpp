// ShardRouter: drive-id hash distribution, routing stability, config
// validation, per-shard metric labels, and the canonical alert merge.
#include "net/shard_router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/model_registry.hpp"

namespace mfpa::net {
namespace {
namespace fs = std::filesystem;

fs::path test_dir() {
  return fs::path(::testing::TempDir()) /
         (std::string("mfpa_router_") +
          ::testing::UnitTest::GetInstance()->current_test_info()->name());
}

TEST(ShardRouterHash, DistributesRealisticIdsUniformly) {
  // Fleet drive ids are dense per-vendor ranges (v * 10M + i) — the worst
  // case for naive modulo sharding. The Fibonacci hash must spread them
  // within ~30% of the mean bucket for every shard count we deploy.
  for (const std::size_t shards : {2u, 3u, 4u, 8u, 16u}) {
    std::vector<std::size_t> load(shards, 0);
    std::size_t total = 0;
    for (std::uint64_t v = 1; v <= 4; ++v) {
      for (std::uint64_t i = 0; i < 5000; ++i) {
        ++load[serve::drive_shard(v * 10'000'000ULL + i, shards)];
        ++total;
      }
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_LT(static_cast<double>(load[s]), mean * 1.3)
          << "shards=" << shards << " shard=" << s;
      EXPECT_GT(static_cast<double>(load[s]), mean * 0.7)
          << "shards=" << shards << " shard=" << s;
    }
  }
}

TEST(ShardRouterHash, SingleShardTakesEverything) {
  for (std::uint64_t id : {0ULL, 1ULL, 10'000'017ULL, ~0ULL}) {
    EXPECT_EQ(serve::drive_shard(id, 1), 0u);
  }
}

TEST(ShardRouter, RejectsZeroShards) {
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  config.shards = 0;
  EXPECT_THROW(ShardRouter(registry, config), std::invalid_argument);
}

TEST(ShardRouter, RoutesEveryDriveToExactlyOneStableShard) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());  // no model needed
  ShardRouterConfig config;
  config.shards = 4;
  config.engine.manual_drain = true;
  ShardRouter router(registry, config);

  sim::DailyRecord record;
  record.day = 1;
  for (std::uint64_t id = 10'000'000; id < 10'000'200; ++id) {
    const std::size_t expect = router.shard_of(id);
    EXPECT_EQ(expect, serve::drive_shard(id, 4));
    router.submit({id, 1, record});
    // The record landed on exactly the predicted shard's queue.
    std::size_t with_submissions = 0;
    for (std::size_t s = 0; s < router.shard_count(); ++s) {
      if (router.shard(s).stats().submitted > 0) ++with_submissions;
    }
    EXPECT_GE(with_submissions, 1u);
  }
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    total += router.shard(s).stats().submitted;
  }
  EXPECT_EQ(total, 200u);
  router.stop();
}

TEST(ShardRouter, PerShardMetricsAreLabeled) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  config.shards = 3;
  config.engine.manual_drain = true;
  ShardRouter router(registry, config);

  std::set<std::string> labels;
  for (const auto& metric : isolated->snapshot().metrics) {
    if (metric.name != "mfpa_serve_submitted_total") continue;
    for (const auto& [k, v] : metric.labels) {
      if (k == "engine") labels.insert(v);
    }
  }
  EXPECT_EQ(labels, (std::set<std::string>{"shard-0", "shard-1", "shard-2"}));
  router.stop();
}

TEST(ShardRouter, StatsAggregateAcrossShards) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  config.shards = 4;
  config.engine.manual_drain = true;
  ShardRouter router(registry, config);

  sim::DailyRecord record;
  record.day = 1;
  for (std::uint64_t id = 0; id < 100; ++id) router.submit({id, 0, record});
  router.flush();
  const RouterStats stats = router.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.records_processed, 100u);
  std::uint64_t per_shard = 0;
  std::size_t max_depth = 0;
  for (const auto& s : stats.shards) {
    per_shard += s.records_processed;
    max_depth = std::max(max_depth, s.max_queue_depth);
  }
  EXPECT_EQ(per_shard, 100u);
  // The queue high-water mark surfaces both per shard and at router level.
  EXPECT_EQ(stats.max_queue_depth, max_depth);
  EXPECT_GT(stats.max_queue_depth, 0u);
  router.stop();
}

TEST(ShardRouter, ResumeRecordsZeroWithoutDurability) {
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  config.shards = 2;
  config.engine.manual_drain = true;
  ShardRouter router(registry, config);
  const auto resume = router.resume_records();
  ASSERT_EQ(resume.size(), 2u);
  EXPECT_EQ(resume[0] + resume[1], 0u);
  router.stop();
}

}  // namespace
}  // namespace mfpa::net
