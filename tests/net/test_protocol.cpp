// Binary ingestion protocol: frame round-trips and the robustness contract
// — truncated frames wait for more bytes, any corruption (magic, length,
// digest, body) latches a typed error, and a hostile length field is
// rejected without any proportional allocation.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/wire.hpp"
#include "ml/checksum.hpp"

namespace mfpa::net {
namespace {

sim::DailyRecord make_record(DayIndex day) {
  sim::DailyRecord rec;
  rec.day = day;
  rec.firmware_index = 2;
  for (std::size_t i = 0; i < rec.smart.size(); ++i) {
    rec.smart[i] = static_cast<float>(i) * 1.5f + static_cast<float>(day);
  }
  rec.w[0] = 3;
  rec.b[1] = 1;
  return rec;
}

TEST(NetProtocol, RecordFrameRoundTrips) {
  std::string buf;
  const sim::DailyRecord rec = make_record(17);
  append_record_frame(buf, 42, 9001, 2, rec);

  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  ASSERT_EQ(decoder.next(msg), FrameDecoder::Status::kMessage);
  EXPECT_EQ(msg.type, MessageType::kRecord);
  EXPECT_EQ(msg.seq, 42u);
  EXPECT_EQ(msg.drive_id, 9001u);
  EXPECT_EQ(msg.vendor, 2);
  EXPECT_EQ(msg.record.day, 17);
  EXPECT_EQ(msg.record.firmware_index, 2);
  EXPECT_EQ(msg.record.smart, rec.smart);
  EXPECT_EQ(msg.record.w, rec.w);
  EXPECT_EQ(msg.record.b, rec.b);
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetProtocol, ControlAndAckFramesRoundTrip) {
  std::string buf;
  append_control_frame(buf, 1, MessageType::kFlush);
  append_flush_ack_frame(buf, 2, {100, 7, 3});
  append_control_frame(buf, 3, MessageType::kGoodbye);

  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  ASSERT_EQ(decoder.next(msg), FrameDecoder::Status::kMessage);
  EXPECT_EQ(msg.type, MessageType::kFlush);
  ASSERT_EQ(decoder.next(msg), FrameDecoder::Status::kMessage);
  EXPECT_EQ(msg.type, MessageType::kFlushAck);
  EXPECT_EQ(msg.ack.records_processed, 100u);
  EXPECT_EQ(msg.ack.alerts, 7u);
  EXPECT_EQ(msg.ack.shed, 3u);
  ASSERT_EQ(decoder.next(msg), FrameDecoder::Status::kMessage);
  EXPECT_EQ(msg.type, MessageType::kGoodbye);
  EXPECT_EQ(msg.seq, 3u);
}

TEST(NetProtocol, DecodesAcrossArbitraryChunkBoundaries) {
  // TCP can deliver any byte split; feeding one byte at a time must yield
  // the identical message stream.
  std::string buf;
  for (int i = 0; i < 5; ++i) {
    append_record_frame(buf, static_cast<std::uint64_t>(i + 1),
                        1000 + static_cast<std::uint64_t>(i), 1,
                        make_record(i));
  }
  FrameDecoder decoder;
  std::vector<std::uint64_t> drive_ids;
  NetMessage msg;
  for (char c : buf) {
    decoder.feed(&c, 1);
    while (decoder.next(msg) == FrameDecoder::Status::kMessage) {
      drive_ids.push_back(msg.drive_id);
    }
  }
  EXPECT_EQ(drive_ids, (std::vector<std::uint64_t>{1000, 1001, 1002, 1003,
                                                   1004}));
  EXPECT_EQ(decoder.error(), DecodeError::kNone);
}

TEST(NetProtocol, TruncatedFrameWaitsForMoreBytes) {
  std::string buf;
  append_record_frame(buf, 1, 555, 0, make_record(3));
  FrameDecoder decoder;
  NetMessage msg;
  // Every strict prefix is incomplete, never an error.
  decoder.feed(buf.data(), buf.size() - 1);
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.error(), DecodeError::kNone);
  // The last byte completes it.
  decoder.feed(buf.data() + buf.size() - 1, 1);
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kMessage);
  EXPECT_EQ(msg.drive_id, 555u);
}

TEST(NetProtocol, BitFlipAnywhereIsRejectedByDigest) {
  std::string pristine;
  append_record_frame(pristine, 7, 123456789, 3, make_record(88));
  // Flip one bit in every byte position after the magic (flipping the magic
  // itself reports kBadMagic, tested separately); all must latch an error,
  // none may produce a message.
  for (std::size_t pos = 4; pos < pristine.size(); ++pos) {
    std::string corrupt = pristine;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    FrameDecoder decoder;
    decoder.feed(corrupt.data(), corrupt.size());
    NetMessage msg;
    auto status = decoder.next(msg);
    if (status == FrameDecoder::Status::kNeedMore) {
      // A size-field flip can only enlarge the claimed frame; the decoder
      // rightly waits. Once the claimed bytes arrive (in a live stream,
      // from the next frame), the digest must reject.
      ASSERT_GE(pos, 4u) << "only the length field may defer detection";
      ASSERT_LT(pos, 8u) << "byte " << pos;
      const std::string filler(kMaxNetPayload, '\0');
      decoder.feed(filler.data(), filler.size());
      status = decoder.next(msg);
    }
    ASSERT_EQ(status, FrameDecoder::Status::kError) << "byte " << pos;
    ASSERT_NE(decoder.error(), DecodeError::kNone) << "byte " << pos;
    // Latched: the decoder never recovers on this stream.
    EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kError);
  }
}

TEST(NetProtocol, BadMagicIsReported) {
  std::string buf;
  append_control_frame(buf, 1, MessageType::kFlush);
  buf[0] = 'X';
  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), DecodeError::kBadMagic);
  EXPECT_STREQ(error_name(decoder.error()), "bad_magic");
}

TEST(NetProtocol, OversizedLengthRejectedFromHeaderAlone) {
  // A hostile frame claiming a 4 GiB payload: only the 16-byte header is
  // ever delivered. The decoder must reject from the header — buffering
  // nothing proportional to the claimed size and never asking for more.
  std::string buf;
  wire::put_u32(buf, kNetFrameMagic);
  wire::put_u32(buf, 0xFFFFFFF0U);
  wire::put_u64(buf, 1);
  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), DecodeError::kOversized);
  // The decoder holds exactly the bytes fed, not the claimed payload.
  EXPECT_EQ(decoder.buffered_bytes(), kNetFrameHeaderBytes);
}

TEST(NetProtocol, JustOverMaxPayloadRejected) {
  std::string buf;
  wire::put_u32(buf, kNetFrameMagic);
  wire::put_u32(buf, kMaxNetPayload + 1);
  wire::put_u64(buf, 1);
  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), DecodeError::kOversized);
}

TEST(NetProtocol, DigestValidFrameWithMalformedBodyIsBadMessage) {
  // A correctly framed record whose payload is truncated mid-field: the
  // digest passes (it covers what was framed) but the body decode fails.
  std::string record_payload;
  record_payload.push_back(static_cast<char>(MessageType::kRecord));
  record_payload += "short";  // nothing like a WAL record payload
  std::string buf;
  const std::size_t body_start = buf.size() + 4;
  wire::put_u32(buf, kNetFrameMagic);
  wire::put_u32(buf, static_cast<std::uint32_t>(record_payload.size()));
  wire::put_u64(buf, 9);
  buf += record_payload;
  const std::uint64_t digest = ml::fnv1a(
      std::string_view(buf.data() + body_start, buf.size() - body_start));
  wire::put_u64(buf, digest);

  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), DecodeError::kBadMessage);
}

TEST(NetProtocol, ControlFrameWithTrailingBytesIsBadMessage) {
  std::string payload;
  payload.push_back(static_cast<char>(MessageType::kFlush));
  payload.push_back('x');  // kFlush takes no body
  std::string buf;
  const std::size_t body_start = buf.size() + 4;
  wire::put_u32(buf, kNetFrameMagic);
  wire::put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  wire::put_u64(buf, 1);
  buf += payload;
  wire::put_u64(buf, ml::fnv1a(std::string_view(buf.data() + body_start,
                                                buf.size() - body_start)));
  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), DecodeError::kBadMessage);
}

TEST(NetProtocol, HelloFramesRoundTrip) {
  std::string buf;
  Hello claim;
  claim.shard_index = 3;
  claim.shard_count = 8;
  claim.model_version = 12;
  append_hello_frame(buf, 1, MessageType::kHello, claim);
  Hello identity;
  identity.shard_index = kAnyShard;
  identity.shard_count = 8;
  identity.model_version = 12;
  append_hello_frame(buf, 2, MessageType::kHelloAck, identity);

  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  ASSERT_EQ(decoder.next(msg), FrameDecoder::Status::kMessage);
  EXPECT_EQ(msg.type, MessageType::kHello);
  EXPECT_EQ(msg.seq, 1u);
  EXPECT_EQ(msg.hello.shard_index, 3u);
  EXPECT_EQ(msg.hello.shard_count, 8u);
  EXPECT_EQ(msg.hello.model_version, 12u);
  ASSERT_EQ(decoder.next(msg), FrameDecoder::Status::kMessage);
  EXPECT_EQ(msg.type, MessageType::kHelloAck);
  EXPECT_EQ(msg.hello.shard_index, kAnyShard);
  EXPECT_EQ(msg.hello.shard_count, 8u);
}

TEST(NetProtocol, HelloFrameRejectsNonHelloType) {
  std::string buf;
  EXPECT_THROW(append_hello_frame(buf, 1, MessageType::kRecord, Hello{}),
               std::invalid_argument);
}

TEST(NetProtocol, HelloMismatchNamesTheDisagreeingField) {
  Hello server;
  server.shard_index = 2;
  server.shard_count = 4;
  server.model_version = 9;

  Hello claim = server;
  EXPECT_EQ(claim.mismatch(server), nullptr);

  claim = server;
  claim.shard_index = 3;
  EXPECT_STREQ(claim.mismatch(server), "shard_mismatch");

  claim = server;
  claim.shard_count = 8;
  EXPECT_STREQ(claim.mismatch(server), "topology_mismatch");

  claim = server;
  claim.model_version = 10;
  EXPECT_STREQ(claim.mismatch(server), "version_mismatch");

  // Field priority: the shard disagreement wins when several fields are
  // wrong, so the reported label is deterministic.
  claim.shard_index = 0;
  claim.shard_count = 99;
  EXPECT_STREQ(claim.mismatch(server), "shard_mismatch");
}

TEST(NetProtocol, HelloWildcardsSkipTheirChecks) {
  Hello server;
  server.shard_index = 2;
  server.shard_count = 4;
  server.model_version = 9;

  // A default claim is all wildcards: compatible with any identity.
  EXPECT_EQ(Hello{}.mismatch(server), nullptr);

  // Wildcards on the server side skip too (router-mode endpoints answer
  // for any shard; version 0 means "no version pinned").
  Hello router_identity;
  router_identity.shard_count = 4;
  Hello claim;
  claim.shard_index = 1;
  claim.shard_count = 4;
  claim.model_version = 3;
  EXPECT_EQ(claim.mismatch(router_identity), nullptr);

  // But a concrete disagreement still rejects.
  claim.shard_count = 2;
  EXPECT_STREQ(claim.mismatch(router_identity), "topology_mismatch");
}

TEST(NetProtocol, HelloBitFlipAnywhereIsRejected) {
  // Same single-bit-per-position sweep the record frame gets: a corrupted
  // handshake must never decode into a (wrong) topology claim.
  std::string pristine;
  Hello claim;
  claim.shard_index = 5;
  claim.shard_count = 16;
  claim.model_version = 3;
  append_hello_frame(pristine, 11, MessageType::kHello, claim);
  for (std::size_t pos = 4; pos < pristine.size(); ++pos) {
    std::string corrupt = pristine;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    FrameDecoder decoder;
    decoder.feed(corrupt.data(), corrupt.size());
    NetMessage msg;
    auto status = decoder.next(msg);
    if (status == FrameDecoder::Status::kNeedMore) {
      ASSERT_GE(pos, 4u) << "only the length field may defer detection";
      ASSERT_LT(pos, 8u) << "byte " << pos;
      const std::string filler(kMaxNetPayload, '\0');
      decoder.feed(filler.data(), filler.size());
      status = decoder.next(msg);
    }
    ASSERT_EQ(status, FrameDecoder::Status::kError) << "byte " << pos;
    ASSERT_NE(decoder.error(), DecodeError::kNone) << "byte " << pos;
  }
}

TEST(NetProtocol, TruncatedHelloBodyIsBadMessage) {
  // Digest-valid kHello with a short body (two fields instead of three).
  std::string payload;
  payload.push_back(static_cast<char>(MessageType::kHello));
  wire::put_u32(payload, 1);
  wire::put_u32(payload, 4);
  std::string buf;
  const std::size_t body_start = buf.size() + 4;
  wire::put_u32(buf, kNetFrameMagic);
  wire::put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  wire::put_u64(buf, 5);
  buf += payload;
  wire::put_u64(buf, ml::fnv1a(std::string_view(buf.data() + body_start,
                                                buf.size() - body_start)));
  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  NetMessage msg;
  EXPECT_EQ(decoder.next(msg), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), DecodeError::kBadMessage);
}

TEST(NetProtocol, BufferCompactionKeepsStreamBounded) {
  // A long stream through one decoder: the consumed prefix must be
  // reclaimed, keeping the buffer near one frame, not the whole stream.
  FrameDecoder decoder;
  NetMessage msg;
  std::string frame;
  append_record_frame(frame, 1, 77, 0, make_record(5));
  for (int i = 0; i < 2000; ++i) {
    decoder.feed(frame.data(), frame.size());
    ASSERT_EQ(decoder.next(msg), FrameDecoder::Status::kMessage);
    ASSERT_EQ(decoder.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace mfpa::net
