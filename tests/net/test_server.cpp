// IngestServer: loopback end-to-end ingestion, protocol-error accounting
// on hostile bytes, concurrent connections, and idempotent graceful stop.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/wire.hpp"
#include "net/client.hpp"
#include "net/forwarding_sink.hpp"
#include "net/protocol.hpp"
#include "net/sharded_client.hpp"
#include "obs/metrics.hpp"
#include "serve/drive_state_store.hpp"
#include "serve/model_registry.hpp"

namespace mfpa::net {
namespace {
namespace fs = std::filesystem;

fs::path test_dir() {
  return fs::path(::testing::TempDir()) /
         (std::string("mfpa_server_") +
          ::testing::UnitTest::GetInstance()->current_test_info()->name());
}

sim::DailyRecord make_record(DayIndex day) {
  sim::DailyRecord rec;
  rec.day = day;
  for (std::size_t i = 0; i < rec.smart.size(); ++i) {
    rec.smart[i] = static_cast<float>(i + day);
  }
  return rec;
}

std::uint64_t counter_total(const obs::MetricsRegistry& reg,
                            const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& metric : reg.snapshot().metrics) {
    if (metric.name == name) total += metric.counter;
  }
  return total;
}

/// Polls the isolated registry until `name` reaches `want` (the I/O thread
/// updates counters asynchronously) or a generous deadline passes.
std::uint64_t wait_for_counter(const obs::MetricsRegistry& reg,
                               const std::string& name, std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t seen = counter_total(reg, name);
  while (seen < want && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    seen = counter_total(reg, name);
  }
  return seen;
}

/// A raw loopback socket for speaking deliberately broken protocol.
class RawConnection {
 public:
  explicit RawConnection(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }
  void send_bytes(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  /// True when the peer closed the connection (recv sees EOF).
  bool closed_by_peer() {
    char buf[64];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
};

TEST(IngestServer, LoopbackEndToEndProcessesRecords) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  config.shards = 2;
  ShardRouter router(registry, config);
  IngestServer server(router, {});
  ASSERT_GT(server.port(), 0);

  {
    TelemetryClient client(server.port());
    for (std::uint64_t id = 100; id < 150; ++id) {
      client.send_record(id, 0, make_record(1));
    }
    const FlushAck ack = client.sync();
    EXPECT_EQ(ack.records_processed, 50u);
    EXPECT_EQ(ack.shed, 0u);
    client.close();
  }
  server.stop();
  router.stop();

  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(counter_total(*isolated, "mfpa_net_records_total"), 50u);
  EXPECT_EQ(counter_total(*isolated, "mfpa_net_flushes_total"), 1u);
  EXPECT_EQ(counter_total(*isolated, "mfpa_net_protocol_errors_total"), 0u);
  EXPECT_EQ(router.stats().records_processed, 50u);
}

TEST(IngestServer, GarbageBytesCloseConnectionAndAreCounted) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  ShardRouter router(registry, config);
  IngestServer server(router, {});

  RawConnection raw(server.port());
  raw.send_bytes("this is not a frame, definitely not 'MFNP'");
  // The server rejects the stream and closes only this connection.
  EXPECT_TRUE(raw.closed_by_peer());
  EXPECT_EQ(wait_for_counter(*isolated, "mfpa_net_protocol_errors_total", 1),
            1u);

  // The server keeps serving well-formed clients afterwards.
  TelemetryClient client(server.port());
  client.send_record(7, 0, make_record(1));
  EXPECT_EQ(client.sync().records_processed, 1u);
  client.close();
  server.stop();
  router.stop();
}

TEST(IngestServer, OversizedFrameRejectedAndCounted) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  ShardRouter router(registry, config);
  IngestServer server(router, {});

  std::string header;
  wire::put_u32(header, kNetFrameMagic);
  wire::put_u32(header, 0xFFFFFFF0U);  // hostile 4 GiB claim
  wire::put_u64(header, 1);
  RawConnection raw(server.port());
  raw.send_bytes(header);
  EXPECT_TRUE(raw.closed_by_peer());
  EXPECT_EQ(wait_for_counter(*isolated, "mfpa_net_protocol_errors_total", 1),
            1u);
  bool saw_oversized_label = false;
  for (const auto& metric : isolated->snapshot().metrics) {
    if (metric.name != "mfpa_net_protocol_errors_total") continue;
    for (const auto& [k, v] : metric.labels) {
      if (k == "kind" && v == "oversized") saw_oversized_label = true;
    }
  }
  EXPECT_TRUE(saw_oversized_label);
  server.stop();
  router.stop();
}

TEST(IngestServer, BitFlippedPayloadIsRejectedByDigest) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  ShardRouter router(registry, config);
  IngestServer server(router, {});

  std::string frame;
  append_record_frame(frame, 1, 42, 0, make_record(2));
  frame[frame.size() / 2] ^= 0x04;  // corrupt mid-payload
  RawConnection raw(server.port());
  raw.send_bytes(frame);
  EXPECT_TRUE(raw.closed_by_peer());
  EXPECT_EQ(wait_for_counter(*isolated, "mfpa_net_protocol_errors_total", 1),
            1u);
  // The corrupt record never reached a shard.
  router.flush();
  EXPECT_EQ(router.stats().records_processed, 0u);
  server.stop();
  router.stop();
}

TEST(IngestServer, ServesMultipleConnections) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  config.shards = 4;
  ShardRouter router(registry, config);
  IngestServer server(router, {});

  TelemetryClient a(server.port());
  TelemetryClient b(server.port());
  for (std::uint64_t i = 0; i < 30; ++i) {
    a.send_record(1000 + i, 0, make_record(1));
    b.send_record(2000 + i, 1, make_record(1));
  }
  a.sync();
  b.sync();
  a.close();
  b.close();
  server.stop();
  router.stop();
  EXPECT_EQ(server.connections_accepted(), 2u);
  EXPECT_EQ(router.stats().records_processed, 60u);
}

TEST(IngestServer, StopIsGracefulAndIdempotent) {
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  ShardRouter router(registry, config);
  IngestServer server(router, {});
  TelemetryClient client(server.port());
  client.send_record(5, 0, make_record(1));
  client.sync();  // everything sent is processed before we stop
  client.close();
  server.request_stop();
  server.stop();
  server.stop();  // second stop is a no-op
  router.flush();
  EXPECT_EQ(router.stats().records_processed, 1u);
  router.stop();
}

TEST(IngestServer, HandshakeAcceptsMatchingClaimAndReportsIdentity) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  // A process-local slice: this server owns global shard 2 of 4.
  ShardRouterConfig config;
  config.shards = 1;
  config.first_shard = 2;
  config.topology_shards = 4;
  ShardRouter router(registry, config);
  RouterSink sink(router, /*model_version=*/7);
  ServerConfig server_config;
  server_config.require_hello = true;
  IngestServer server(sink, server_config);

  TelemetryClient client(server.port());
  Hello claim;
  claim.shard_index = 2;
  claim.shard_count = 4;
  claim.model_version = 7;
  const Hello identity = client.handshake(claim);
  EXPECT_EQ(identity.shard_index, 2u);
  EXPECT_EQ(identity.shard_count, 4u);
  EXPECT_EQ(identity.model_version, 7u);

  // The handshaken connection serves records for the owned slice.
  std::uint64_t owned = 0;
  while (serve::drive_shard(owned, 4) != 2) ++owned;
  client.send_record(owned, 0, make_record(1));
  EXPECT_EQ(client.sync().records_processed, 1u);
  client.close();
  server.stop();
  router.stop();

  bool saw_ok = false;
  for (const auto& metric : isolated->snapshot().metrics) {
    if (metric.name != "mfpa_net_handshakes_total") continue;
    for (const auto& [k, v] : metric.labels) {
      if (k == "result" && v == "ok") saw_ok = metric.counter == 1;
    }
  }
  EXPECT_TRUE(saw_ok);
}

TEST(IngestServer, HandshakeRejectsWrongShardTopologyAndVersion) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  config.shards = 1;
  config.first_shard = 1;
  config.topology_shards = 4;
  ShardRouter router(registry, config);
  RouterSink sink(router, /*model_version=*/3);
  ServerConfig server_config;
  server_config.require_hello = true;
  IngestServer server(sink, server_config);

  struct Case {
    std::uint32_t index, count, version;
    const char* label;
  };
  const Case cases[] = {
      {2, 4, 3, "shard_mismatch"},     // wrong shard index
      {1, 8, 3, "topology_mismatch"},  // wrong shard count
      {1, 4, 9, "version_mismatch"},   // stale model version
  };
  for (const auto& c : cases) {
    TelemetryClient client(server.port());
    Hello claim;
    claim.shard_index = c.index;
    claim.shard_count = c.count;
    claim.model_version = c.version;
    // The server's ack names its own identity, so the client throws with
    // the disagreeing field.
    EXPECT_THROW(client.handshake(claim), std::runtime_error) << c.label;
  }
  server.stop();
  router.stop();

  std::uint64_t rejections = 0;
  for (const auto& metric : isolated->snapshot().metrics) {
    if (metric.name != "mfpa_net_handshakes_total") continue;
    for (const auto& [k, v] : metric.labels) {
      if (k == "result" && v != "ok") rejections += metric.counter;
    }
  }
  EXPECT_EQ(rejections, 3u);
}

TEST(IngestServer, RequireHelloRejectsUnintroducedRecords) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  ShardRouter router(registry, config);
  RouterSink sink(router);
  ServerConfig server_config;
  server_config.require_hello = true;
  IngestServer server(sink, server_config);

  // A legacy client that skips the handshake: first record closes the
  // connection and nothing reaches the shard.
  std::string frame;
  append_record_frame(frame, 1, 42, 0, make_record(1));
  RawConnection raw(server.port());
  raw.send_bytes(frame);
  EXPECT_TRUE(raw.closed_by_peer());
  server.stop();
  router.flush();
  EXPECT_EQ(router.stats().records_processed, 0u);
  router.stop();

  bool saw_missing = false;
  for (const auto& metric : isolated->snapshot().metrics) {
    if (metric.name != "mfpa_net_handshakes_total") continue;
    for (const auto& [k, v] : metric.labels) {
      if (k == "result" && v == "missing") saw_missing = true;
    }
  }
  EXPECT_TRUE(saw_missing);
}

TEST(IngestServer, MisroutedRecordClosesConnectionBeforeAnyState) {
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  ShardRouterConfig config;
  config.shards = 1;
  config.first_shard = 0;
  config.topology_shards = 4;
  ShardRouter router(registry, config);
  RouterSink sink(router);
  IngestServer server(sink, {});

  std::uint64_t foreign = 0;
  while (serve::drive_shard(foreign, 4) == 0) ++foreign;
  std::string frame;
  append_record_frame(frame, 1, foreign, 0, make_record(1));
  RawConnection raw(server.port());
  raw.send_bytes(frame);
  EXPECT_TRUE(raw.closed_by_peer());
  EXPECT_EQ(
      wait_for_counter(*isolated, "mfpa_net_misrouted_records_total", 1), 1u);
  server.stop();
  router.flush();
  EXPECT_EQ(router.stats().records_processed, 0u);
  router.stop();
}

TEST(ShardedClient, RoutesEveryRecordToItsOwningShardProcessAnalogue) {
  // Four single-shard sliced routers behind four servers — the in-test
  // analogue of four shard-serve processes — fed by one ShardedClient.
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  constexpr std::size_t kShards = 4;
  std::vector<std::unique_ptr<ShardRouter>> routers;
  std::vector<std::unique_ptr<RouterSink>> sinks;
  std::vector<std::unique_ptr<IngestServer>> servers;
  ShardedClientConfig client_config;
  for (std::size_t k = 0; k < kShards; ++k) {
    ShardRouterConfig config;
    config.shards = 1;
    config.first_shard = k;
    config.topology_shards = kShards;
    routers.push_back(std::make_unique<ShardRouter>(registry, config));
    sinks.push_back(std::make_unique<RouterSink>(*routers.back()));
    ServerConfig server_config;
    server_config.require_hello = true;
    servers.push_back(
        std::make_unique<IngestServer>(*sinks.back(), server_config));
    client_config.ports.push_back(servers.back()->port());
  }

  ShardedClient client(client_config);
  constexpr std::uint64_t kDrives = 200;
  std::vector<std::uint64_t> expected(kShards, 0);
  for (std::uint64_t id = 0; id < kDrives; ++id) {
    client.send_record(id, 0, make_record(1));
    ++expected[serve::drive_shard(id, kShards)];
  }
  const FlushAck ack = client.sync();
  EXPECT_EQ(ack.records_processed, kDrives);
  EXPECT_EQ(client.records_sent(), kDrives);
  client.close();

  // Every shard processed exactly its hash slice — the fan-out is the
  // same partition an in-process ShardRouter would produce.
  for (std::size_t k = 0; k < kShards; ++k) {
    servers[k]->stop();
    routers[k]->flush();
    EXPECT_EQ(routers[k]->stats().records_processed, expected[k])
        << "shard " << k;
    routers[k]->stop();
  }
}

TEST(ShardedClient, WildcardClaimFeedsThroughForwardingRouter) {
  // Router-process topology in miniature: shard servers behind a
  // ForwardingSink server, fed by a client that claims the wildcard
  // identity (one connection is not the topology).
  auto isolated = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride override_metrics(*isolated);
  serve::ModelRegistry registry(test_dir().string());
  constexpr std::size_t kShards = 2;
  std::vector<std::unique_ptr<ShardRouter>> routers;
  std::vector<std::unique_ptr<RouterSink>> sinks;
  std::vector<std::unique_ptr<IngestServer>> servers;
  ShardedClientConfig downstream_config;
  for (std::size_t k = 0; k < kShards; ++k) {
    ShardRouterConfig config;
    config.shards = 1;
    config.first_shard = k;
    config.topology_shards = kShards;
    routers.push_back(std::make_unique<ShardRouter>(registry, config));
    sinks.push_back(std::make_unique<RouterSink>(*routers.back()));
    ServerConfig server_config;
    server_config.require_hello = true;
    servers.push_back(
        std::make_unique<IngestServer>(*sinks.back(), server_config));
    downstream_config.ports.push_back(servers.back()->port());
  }
  ShardedClient downstream(downstream_config);
  ForwardingSink forward(downstream);
  IngestServer router_server(forward, {});

  ShardedClientConfig feed_config;
  feed_config.ports = {router_server.port()};
  feed_config.claim_topology = false;
  ShardedClient feed(feed_config);
  for (std::uint64_t id = 0; id < 100; ++id) {
    feed.send_record(id, 0, make_record(2));
  }
  EXPECT_EQ(feed.sync().records_processed, 100u);
  feed.close();
  router_server.stop();
  downstream.close();

  std::uint64_t total = 0;
  for (std::size_t k = 0; k < kShards; ++k) {
    servers[k]->stop();
    routers[k]->flush();
    total += routers[k]->stats().records_processed;
    routers[k]->stop();
  }
  EXPECT_EQ(total, 100u);
}

}  // namespace
}  // namespace mfpa::net
