#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace mfpa::csv {
namespace {

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(escape_field("hello"), "hello");
  EXPECT_EQ(escape_field(""), "");
}

TEST(Csv, EscapeComma) {
  EXPECT_EQ(escape_field("a,b"), "\"a,b\"");
}

TEST(Csv, EscapeQuote) {
  EXPECT_EQ(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapeNewline) {
  EXPECT_EQ(escape_field("a\nb"), "\"a\nb\"");
}

TEST(Csv, ParseSimpleLine) {
  const auto fields = parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParsePreservesEmptyFields) {
  const auto fields = parse_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Csv, ParseQuotedComma) {
  const auto fields = parse_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST(Csv, ParseEscapedQuote) {
  const auto fields = parse_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(Csv, ParseToleratesCr) {
  const auto fields = parse_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(Csv, ParseUnterminatedQuoteThrows) {
  EXPECT_THROW(parse_line("\"oops"), std::invalid_argument);
}

TEST(Csv, RowRoundTrip) {
  const std::vector<std::string> row{"plain", "with,comma", "with\"quote",
                                     "multi\nline", ""};
  std::ostringstream os;
  write_row(os, row);
  // Multi-line fields are quoted, so parse up to the embedded newline count.
  const std::string text = os.str();
  // Re-split manually: the row has one embedded newline inside quotes.
  const auto fields = parse_line(text.substr(0, text.size() - 1));
  ASSERT_EQ(fields.size(), row.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].find('\n') == std::string::npos) {
      EXPECT_EQ(fields[i], row[i]);
    }
  }
}

TEST(Csv, DocumentRoundTripViaStream) {
  Document doc;
  doc.header = {"name", "value"};
  doc.rows = {{"alpha", "1"}, {"beta,comma", "2"}};
  std::stringstream ss;
  write(ss, doc);
  const Document back = read(ss);
  EXPECT_EQ(back.header, doc.header);
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_EQ(back.rows[1][0], "beta,comma");
}

TEST(Csv, ColumnIndexLookup) {
  Document doc;
  doc.header = {"a", "b", "c"};
  EXPECT_EQ(doc.column_index("b"), 1u);
  EXPECT_THROW(doc.column_index("zzz"), std::out_of_range);
}

TEST(Csv, FileRoundTrip) {
  // pid-unique so parallel test processes never race on the same file.
  const std::string path = ::testing::TempDir() + "/mfpa_csv_test_" +
                           std::to_string(::getpid()) + ".csv";
  Document doc;
  doc.header = {"x"};
  doc.rows = {{"1"}, {"2"}};
  write_file(path, doc);
  const Document back = read_file(path);
  EXPECT_EQ(back.rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/path/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace mfpa::csv
