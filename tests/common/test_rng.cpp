#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace mfpa {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, CopyContinuesIndependently) {
  Rng a(5);
  a.next_u64();
  Rng b = a;
  EXPECT_EQ(a.next_u64(), b.next_u64());
  a.next_u64();  // advance only a
  Rng c = a;
  EXPECT_EQ(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 8.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 8.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(41);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(0.5);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.06);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(47);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.poisson(2.5);
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(53);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const int x = rng.poisson(100.0);
    EXPECT_GE(x, 0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 100.0, 1.0);
}

TEST(Rng, GeometricMean) {
  Rng rng(59);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.geometric(0.25);
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(61);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.geometric(1.0), 0);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(67);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.weibull(1.0, 5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(71);
  std::vector<int> counts(3, 0);
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.categorical({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.25, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.50, 0.01);
}

TEST(Rng, CategoricalIgnoresNegativeWeights) {
  Rng rng(73);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.categorical({-5.0, 1.0, -2.0}), 1u);
  }
}

TEST(Rng, CategoricalAllZeroReturnsFirst) {
  Rng rng(79);
  EXPECT_EQ(rng.categorical({0.0, 0.0}), 0u);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(83);
  const auto p = rng.permutation(100);
  ASSERT_EQ(p.size(), 100u);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, PermutationEmpty) {
  Rng rng(89);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(97);
  const auto s = rng.sample_without_replacement(50, 20);
  ASSERT_EQ(s.size(), 20u);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(101);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SplitStreamsAreIndependentOfParentDraws) {
  Rng a(5);
  const Rng child1 = a.split(9);
  Rng b(5);
  const Rng child2 = b.split(9);
  Rng c1 = child1, c2 = child2;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, SplitDifferentStreamsDiffer) {
  const Rng parent(5);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(103);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ChoiceReturnsMember) {
  Rng rng(107);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int c = rng.choice(v);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

// Distribution sweep: lognormal medians for several (mu, sigma).
class LognormalSweep : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LognormalSweep, MedianMatchesExpMu) {
  const auto [mu, sigma] = GetParam();
  Rng rng(1234);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal(mu, sigma);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(mu), std::exp(mu) * 0.08);
}

INSTANTIATE_TEST_SUITE_P(Moments, LognormalSweep,
                         ::testing::Values(std::pair{0.0, 0.5},
                                           std::pair{1.0, 0.25},
                                           std::pair{2.0, 1.0}));

}  // namespace
}  // namespace mfpa
