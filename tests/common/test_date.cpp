#include "common/date.hpp"

#include <gtest/gtest.h>

namespace mfpa {
namespace {

TEST(Date, EpochIsDay0) {
  const CalendarDate c = to_calendar(0);
  EXPECT_EQ(c.year, 2021);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
}

TEST(Date, DayIndexRoundTrip) {
  for (DayIndex d = -400; d <= 800; d += 13) {
    EXPECT_EQ(to_day_index(to_calendar(d)), d) << "day " << d;
  }
}

TEST(Date, KnownDates) {
  EXPECT_EQ(to_day_index({2021, 1, 2}), 1);
  EXPECT_EQ(to_day_index({2021, 2, 1}), 31);
  EXPECT_EQ(to_day_index({2022, 1, 1}), 365);
  EXPECT_EQ(to_day_index({2020, 12, 31}), -1);
}

TEST(Date, LeapYears) {
  EXPECT_TRUE(is_leap_year(2024));
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_FALSE(is_leap_year(2021));
  EXPECT_FALSE(is_leap_year(1900));
}

TEST(Date, DaysInMonth) {
  EXPECT_EQ(days_in_month(2021, 2), 28);
  EXPECT_EQ(days_in_month(2024, 2), 29);
  EXPECT_EQ(days_in_month(2021, 4), 30);
  EXPECT_EQ(days_in_month(2021, 12), 31);
}

TEST(Date, FormatBasic) {
  EXPECT_EQ(format_date(0), "2021-01-01");
  EXPECT_EQ(format_date(31), "2021-02-01");
  EXPECT_EQ(format_date(365 + 58), "2022-02-28");
}

TEST(Date, ParseRoundTrip) {
  for (DayIndex d : {0, 1, 59, 365, 366, 730, 900}) {
    EXPECT_EQ(parse_date(format_date(d)), d);
  }
}

TEST(Date, ParseRejectsGarbage) {
  EXPECT_THROW(parse_date("not a date"), std::invalid_argument);
  EXPECT_THROW(parse_date("2021-13-01"), std::invalid_argument);
  EXPECT_THROW(parse_date("2021-02-30"), std::invalid_argument);
  EXPECT_THROW(parse_date(""), std::invalid_argument);
}

TEST(Date, MonthOfEpoch) {
  EXPECT_EQ(month_of(0), 0);
  EXPECT_EQ(month_of(30), 0);
  EXPECT_EQ(month_of(31), 1);
  EXPECT_EQ(month_of(365), 12);
}

TEST(Date, MonthOfIsNonDecreasing) {
  int prev = month_of(0);
  for (DayIndex d = 1; d < 800; ++d) {
    const int m = month_of(d);
    EXPECT_GE(m, prev);
    EXPECT_LE(m - prev, 1);
    prev = m;
  }
}

// Leap-february sweep.
class LeapSweep : public ::testing::TestWithParam<int> {};

TEST_P(LeapSweep, FebruaryLength) {
  const int year = GetParam();
  const int expect = is_leap_year(year) ? 29 : 28;
  EXPECT_EQ(days_in_month(year, 2), expect);
  // Round-trip the last day of February.
  const DayIndex d = to_day_index({year, 2, expect});
  EXPECT_EQ(to_calendar(d).day, expect);
}

INSTANTIATE_TEST_SUITE_P(Years, LeapSweep,
                         ::testing::Values(2020, 2021, 2022, 2023, 2024, 2025,
                                           2100, 2400));

}  // namespace
}  // namespace mfpa
