#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mfpa::stats {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceBasic) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-8);          // n-1
  EXPECT_NEAR(population_variance(xs), 4.0, 1e-12);      // n
}

TEST(Stats, VarianceDegenerate) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevIsSqrtVariance) {
  const std::vector<double> xs{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, QuantileErrors) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(std::vector<double>{1.0}, 1.5), std::invalid_argument);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = ys;
  for (auto& v : neg) v = -v;
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(RunningStats, MatchesBatch) {
  const std::vector<double> xs{1.5, -2.0, 7.0, 3.0, 3.0, 0.5};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0};
  RunningStats ra, rb, rall;
  for (double x : a) {
    ra.add(x);
    rall.add(x);
  }
  for (double x : b) {
    rb.add(x);
    rall.add(x);
  }
  ra.merge(rb);
  EXPECT_EQ(ra.count(), rall.count());
  EXPECT_NEAR(ra.mean(), rall.mean(), 1e-12);
  EXPECT_NEAR(ra.variance(), rall.variance(), 1e-12);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, BinAssignment) {
  stats::Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  stats::Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, BinEdges) {
  stats::Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(stats::Histogram(1.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(stats::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AddCountMergesTallies) {
  stats::Histogram h(0.0, 10.0, 5);
  h.add_count(1.0, 3);
  h.add_count(9.0, 2);
  EXPECT_EQ(h.bin_count(0), 3u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, QuantileInterpolatesWithinBins) {
  stats::Histogram h(0.0, 100.0, 100);  // 1-wide bins
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  // With one observation per 1-wide bin the quantile is ~the value itself.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1e-9);
}

TEST(Histogram, QuantileEdgeCases) {
  stats::Histogram empty(0.0, 10.0, 5);
  EXPECT_EQ(empty.quantile(0.5), 0.0);  // lo for an empty histogram
  stats::Histogram h(0.0, 10.0, 5);
  h.add(3.0);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
  // A single observation lands inside its bin.
  EXPECT_GE(h.quantile(0.5), 2.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
}

}  // namespace
}  // namespace mfpa::stats
