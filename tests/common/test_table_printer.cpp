#include "common/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mfpa {
namespace {

TEST(TablePrinter, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, RowArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"x", "100"});
  t.add_row({"longer", "2"});
  const std::string out = t.to_string();
  // Header, separator, two rows.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  EXPECT_TRUE(line.find("name") != std::string::npos);
  std::getline(is, line);
  EXPECT_TRUE(line.find("---") != std::string::npos);
  std::getline(is, line);
  EXPECT_TRUE(line.find("100") != std::string::npos);
  // Columns align: "v" column starts at the same offset in both data rows.
  const std::string r1 = out.substr(out.find("x "));
  EXPECT_NE(out.find("longer  2"), std::string::npos);
}

TEST(TablePrinter, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, SectionBanner) {
  std::ostringstream os;
  print_section(os, "Fig. 9");
  EXPECT_EQ(os.str(), "\n=== Fig. 9 ===\n");
}

}  // namespace
}  // namespace mfpa
