#include "common/progress.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace mfpa {
namespace {

TEST(StageTimer, RecordsStagesInOrder) {
  StageTimer timer;
  timer.begin("a");
  timer.end(10, 100);
  timer.begin("b");
  timer.end(20, 200);
  const auto& records = timer.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "a");
  EXPECT_EQ(records[0].items, 10u);
  EXPECT_EQ(records[0].bytes, 100u);
  EXPECT_EQ(records[1].name, "b");
}

TEST(StageTimer, BeginImplicitlyEndsOpenStage) {
  StageTimer timer;
  timer.begin("first");
  timer.begin("second");  // closes "first" with zero items
  timer.end();
  const auto& records = timer.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "first");
  EXPECT_EQ(records[0].items, 0u);
}

TEST(StageTimer, EndWithoutBeginIsNoop) {
  StageTimer timer;
  timer.end(5);
  EXPECT_TRUE(timer.records().empty());
}

TEST(StageTimer, MeasuresElapsedTime) {
  StageTimer timer;
  timer.begin("sleep");
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.end();
  ASSERT_EQ(timer.records().size(), 1u);
  EXPECT_GE(timer.records()[0].seconds, 0.010);
  EXPECT_LT(timer.records()[0].seconds, 5.0);
}

TEST(StageTimer, TotalSumsStages) {
  StageTimer timer;
  timer.begin("a");
  timer.end();
  timer.begin("b");
  timer.end();
  double total = 0.0;
  for (const auto& r : timer.records()) total += r.seconds;
  EXPECT_DOUBLE_EQ(timer.total_seconds(), total);
}

TEST(StageTimer, DoubleEndRecordsOnce) {
  StageTimer timer;
  timer.begin("x");
  timer.end(1);
  timer.end(2);  // no open stage: ignored
  EXPECT_EQ(timer.records().size(), 1u);
}

}  // namespace
}  // namespace mfpa
