#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace mfpa {
namespace {

TEST(StringUtil, SplitBasic) {
  const auto parts = split("a:b:c", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitPreservesEmpty) {
  const auto parts = split("::x:", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, TrimWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_FALSE(starts_with("hello", "hello world"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_EQ(to_lower("123-XY"), "123-xy");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(StringUtil, FormatPercent) {
  EXPECT_EQ(format_percent(0.9818), "98.18%");
  EXPECT_EQ(format_percent(0.0056), "0.56%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(StringUtil, FormatWithCommas) {
  EXPECT_EQ(format_with_commas(0), "0");
  EXPECT_EQ(format_with_commas(999), "999");
  EXPECT_EQ(format_with_commas(1000), "1,000");
  EXPECT_EQ(format_with_commas(1001278), "1,001,278");
  EXPECT_EQ(format_with_commas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace mfpa
