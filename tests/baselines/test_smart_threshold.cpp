#include "baselines/smart_threshold.hpp"

#include <gtest/gtest.h>

#include "core/feature_groups.hpp"

namespace mfpa::baselines {
namespace {

/// Dataset with named SMART columns; rows are all-healthy defaults that
/// individual tests perturb.
data::Dataset make_smart_dataset(std::size_t rows) {
  data::Dataset ds;
  ds.feature_names = core::smart_feature_names();
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> row(16, 0.0);
    row[1] = 35.0;   // temperature
    row[2] = 100.0;  // available spare
    row[3] = 10.0;   // spare threshold
    row[4] = 5.0;    // percentage used
    ds.add(row, 0, {i, static_cast<DayIndex>(i), 0});
  }
  return ds;
}

TEST(SmartThreshold, HealthyRowsPass) {
  const auto ds = make_smart_dataset(10);
  const SmartThresholdDetector detector;
  for (int alarm : detector.predict(ds)) EXPECT_EQ(alarm, 0);
}

TEST(SmartThreshold, CriticalWarningFires) {
  auto ds = make_smart_dataset(3);
  ds.X(1, 0) = 1.0;  // S_1 critical warning
  const SmartThresholdDetector detector;
  const auto alarms = detector.predict(ds);
  EXPECT_EQ(alarms[0], 0);
  EXPECT_EQ(alarms[1], 1);
}

TEST(SmartThreshold, SpareExhaustionFires) {
  auto ds = make_smart_dataset(2);
  ds.X(0, 2) = 10.0;  // spare == threshold
  const SmartThresholdDetector detector;
  EXPECT_EQ(detector.predict(ds)[0], 1);
}

TEST(SmartThreshold, WearExhaustionFires) {
  auto ds = make_smart_dataset(2);
  ds.X(0, 4) = 100.0;  // percentage used
  const SmartThresholdDetector detector;
  EXPECT_EQ(detector.predict(ds)[0], 1);
}

TEST(SmartThreshold, MediaErrorCountFires) {
  auto ds = make_smart_dataset(2);
  ds.X(0, 13) = 51.0;  // media errors beyond default 50
  const SmartThresholdDetector detector;
  EXPECT_EQ(detector.predict(ds)[0], 1);
}

TEST(SmartThreshold, RulesConfigurable) {
  auto ds = make_smart_dataset(1);
  ds.X(0, 13) = 20.0;
  SmartThresholdRules rules;
  rules.max_media_errors = 10.0;
  const SmartThresholdDetector strict(rules);
  const SmartThresholdDetector lax;
  EXPECT_EQ(strict.predict(ds)[0], 1);
  EXPECT_EQ(lax.predict(ds)[0], 0);
}

TEST(SmartThreshold, EvaluateBuildsConfusion) {
  auto ds = make_smart_dataset(4);
  ds.y[0] = 1;
  ds.X(0, 0) = 1.0;  // caught positive
  ds.y[1] = 1;       // missed positive
  ds.X(2, 13) = 99.0;  // false alarm
  const SmartThresholdDetector detector;
  const auto cm = detector.evaluate(ds);
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 1u);
}

TEST(SmartThreshold, RequiresSmartColumns) {
  data::Dataset ds;
  ds.feature_names = {"W_7"};
  ds.add(std::vector<double>{1.0}, 0, {});
  const SmartThresholdDetector detector;
  EXPECT_THROW(detector.predict(ds), std::out_of_range);
}

}  // namespace
}  // namespace mfpa::baselines
