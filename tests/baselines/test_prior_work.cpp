#include "baselines/prior_work.hpp"

#include <gtest/gtest.h>

namespace mfpa::baselines {
namespace {

TEST(PriorWork, ListsFiveProxiesPlusMfpa) {
  const auto models = prior_work_models(0, 42);
  EXPECT_EQ(models.size(), 6u);
  EXPECT_EQ(models.back().label, "MFPA (ours)");
}

TEST(PriorWork, MfpaUsesFullSfwbAndTheta) {
  const auto models = prior_work_models(0, 42);
  const auto& mfpa = models.back().config;
  EXPECT_EQ(mfpa.group, core::FeatureGroup::kSFWB);
  EXPECT_EQ(mfpa.algorithm, "RF");
  EXPECT_EQ(mfpa.theta, 7);
}

TEST(PriorWork, ProxiesUseNarrowerFeatures) {
  for (const auto& m : prior_work_models(0, 42)) {
    if (m.label == "MFPA (ours)") continue;
    EXPECT_NE(m.config.group, core::FeatureGroup::kSFWB) << m.label;
  }
}

TEST(PriorWork, AllModelsShareMfpaLabeling) {
  // The comparison isolates features + algorithm; labeling and segmentation
  // are held at the MFPA defaults for every entry.
  for (const auto& m : prior_work_models(0, 42)) {
    EXPECT_EQ(m.config.theta, 7) << m.label;
    EXPECT_TRUE(m.config.time_split) << m.label;
  }
}

TEST(PriorWork, TransferProxyPoolsVendors) {
  const auto models = prior_work_models(2, 42);
  bool found = false;
  for (const auto& m : models) {
    if (m.label.find("TPDS'20") != std::string::npos) {
      found = true;
      EXPECT_EQ(m.config.vendor, -1);  // pooled fleet
    } else if (m.label.find("MFPA") != std::string::npos ||
               m.label.find("SoCC'20") != std::string::npos) {
      EXPECT_EQ(m.config.vendor, 2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PriorWork, SeedPropagated) {
  for (const auto& m : prior_work_models(0, 1234)) {
    EXPECT_EQ(m.config.seed, 1234u) << m.label;
  }
}

TEST(PriorWork, DescriptionsNonEmpty) {
  for (const auto& m : prior_work_models(0, 1)) {
    EXPECT_FALSE(m.description.empty());
    EXPECT_FALSE(m.label.empty());
  }
}

}  // namespace
}  // namespace mfpa::baselines
