#include "baselines/statistical.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace mfpa::baselines {
namespace {

/// Healthy features ~ N(0,1); faulty rows shifted by `shift` sigma on one
/// feature.
std::pair<ml::Matrix, std::vector<int>> make_anomaly_data(std::size_t healthy,
                                                          std::size_t faulty,
                                                          double shift,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  ml::Matrix X(healthy + faulty, 3);
  std::vector<int> y(healthy + faulty, 0);
  for (std::size_t i = 0; i < healthy + faulty; ++i) {
    for (std::size_t c = 0; c < 3; ++c) X(i, c) = rng.normal(0.0, 1.0);
    if (i >= healthy) {
      y[i] = 1;
      X(i, 1) += shift;
    }
  }
  return {std::move(X), std::move(y)};
}

TEST(ParametricDetector, DetectsLargeDeviations) {
  const auto [X, y] = make_anomaly_data(300, 30, 6.0, 1);
  ParametricDetector det;
  det.fit(X, y);
  EXPECT_GT(ml::auc(y, det.predict_proba(X)), 0.9);
}

TEST(ParametricDetector, WeakOnSmallShifts) {
  const auto [X, y] = make_anomaly_data(300, 30, 0.5, 2);
  ParametricDetector det;
  det.fit(X, y);
  const double a = ml::auc(y, det.predict_proba(X));
  EXPECT_LT(a, 0.85);  // statistical methods plateau (paper: TPR 56-70%)
  EXPECT_GT(a, 0.4);
}

TEST(ParametricDetector, FitsOnHealthyPopulationOnly) {
  // Shifting the faulty rows must not move the healthy baseline: scores of
  // healthy rows stay identical whatever the faulty rows look like.
  auto [X1, y] = make_anomaly_data(200, 20, 3.0, 3);
  auto X2 = X1;
  for (std::size_t i = 200; i < 220; ++i) X2(i, 0) += 100.0;
  ParametricDetector d1, d2;
  d1.fit(X1, y);
  d2.fit(X2, y);
  const auto s1 = d1.predict_proba(X1);
  const auto s2 = d2.predict_proba(X1);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_DOUBLE_EQ(s1[i], s2[i]);
}

TEST(ParametricDetector, NeedsHealthySamples) {
  ml::Matrix X{{1.0}, {2.0}};
  const std::vector<int> y{1, 1};
  ParametricDetector det;
  EXPECT_THROW(det.fit(X, y), std::invalid_argument);
}

TEST(ParametricDetector, PredictBeforeFitThrows) {
  ParametricDetector det;
  ml::Matrix X{{1.0}};
  EXPECT_THROW(det.predict_proba(X), std::logic_error);
}

TEST(ParametricDetector, ScoresBounded) {
  const auto [X, y] = make_anomaly_data(100, 10, 50.0, 4);
  ParametricDetector det;
  det.fit(X, y);
  for (double s : det.predict_proba(X)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(RankSumDetector, DetectsLargeDeviations) {
  const auto [X, y] = make_anomaly_data(300, 30, 6.0, 5);
  RankSumDetector det;
  det.fit(X, y);
  EXPECT_GT(ml::auc(y, det.predict_proba(X)), 0.85);
}

TEST(RankSumDetector, RobustToHeavyTails) {
  // Lognormal healthy distribution breaks the Gaussian assumption; the
  // rank detector should still rank a genuine outlier near the top.
  Rng rng(6);
  ml::Matrix X(201, 1);
  std::vector<int> y(201, 0);
  for (std::size_t i = 0; i < 200; ++i) X(i, 0) = rng.lognormal(0.0, 1.0);
  X(200, 0) = 1e5;
  y[200] = 1;
  RankSumDetector det;
  det.fit(X, y);
  const auto scores = det.predict_proba(X);
  std::size_t higher = 0;
  for (std::size_t i = 0; i < 200; ++i) higher += scores[i] >= scores[200];
  EXPECT_LT(higher, 5u);
}

TEST(RankSumDetector, PredictBeforeFitThrows) {
  RankSumDetector det;
  ml::Matrix X{{1.0}};
  EXPECT_THROW(det.predict_proba(X), std::logic_error);
}

TEST(RankSumDetector, CloneContract) {
  RankSumDetector det;
  auto clone = det.clone_unfitted();
  EXPECT_EQ(clone->name(), "RankSum");
}

TEST(StatisticalDetectors, MiddleRungBetweenThresholdAndMl) {
  // The paper's hierarchy: statistical methods beat naive thresholds but
  // lose to learned models. Verify the detectors produce informative but
  // imperfect rankings on moderately-separated data.
  const auto [X, y] = make_anomaly_data(400, 40, 2.5, 7);
  ParametricDetector det;
  det.fit(X, y);
  const double a = ml::auc(y, det.predict_proba(X));
  EXPECT_GT(a, 0.7);
  EXPECT_LT(a, 0.99);
}

}  // namespace
}  // namespace mfpa::baselines
