// Cross-module integration: simulator -> preprocessing -> labeling ->
// pipeline -> online scoring, exercised together on one shared scenario.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "baselines/smart_threshold.hpp"
#include "core/mfpa.hpp"
#include "core/online_predictor.hpp"
#include "sim/fleet.hpp"

namespace mfpa {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleet_ = new sim::FleetSimulator(sim::small_scenario(21));
    telemetry_ =
        new std::vector<sim::DriveTimeSeries>(fleet_->generate_telemetry());
    tickets_ = new std::vector<sim::TroubleTicket>(fleet_->tickets());
  }
  static void TearDownTestSuite() {
    delete tickets_;
    delete telemetry_;
    delete fleet_;
  }
  static sim::FleetSimulator* fleet_;
  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static std::vector<sim::TroubleTicket>* tickets_;
};

sim::FleetSimulator* EndToEndTest::fleet_ = nullptr;
std::vector<sim::DriveTimeSeries>* EndToEndTest::telemetry_ = nullptr;
std::vector<sim::TroubleTicket>* EndToEndTest::tickets_ = nullptr;

TEST_F(EndToEndTest, TicketStreamCoversTrackedFailures) {
  std::unordered_set<std::uint64_t> ticketed;
  for (const auto& t : *tickets_) ticketed.insert(t.drive_id);
  for (const auto& series : *telemetry_) {
    if (series.failed) {
      EXPECT_TRUE(ticketed.contains(series.drive_id)) << series.drive_id;
    }
  }
}

TEST_F(EndToEndTest, IdentifiedFailureDaysNearGroundTruth) {
  const core::Preprocessor pre;
  const auto drives = pre.process(*telemetry_);
  const core::FailureTimeIdentifier identifier(7);
  const auto failures = identifier.identify_all(*tickets_, drives);
  std::unordered_map<std::uint64_t, DayIndex> truth;
  for (const auto& d : drives) {
    if (d.failed) truth[d.drive_id] = d.failure_day;
  }
  ASSERT_FALSE(failures.empty());
  std::size_t close = 0, total = 0;
  for (const auto& [id, f] : failures) {
    const auto it = truth.find(id);
    if (it == truth.end()) continue;
    ++total;
    if (std::abs(f.labeled_failure_day - it->second) <= 7) ++close;
  }
  ASSERT_GT(total, 0u);
  // The theta rule recovers the true failure day within a week for the
  // overwhelming majority of drives.
  EXPECT_GT(static_cast<double>(close) / static_cast<double>(total), 0.9);
}

TEST_F(EndToEndTest, PipelineBeatsSmartThresholdBaseline) {
  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = 21;
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(*telemetry_, *tickets_);

  // Build the same-style dataset with S features for the threshold detector.
  const core::Preprocessor pre;
  std::vector<sim::DriveTimeSeries> vendor0;
  for (const auto& s : *telemetry_) {
    if (s.vendor == 0) vendor0.push_back(s);
  }
  const auto drives = pre.process(vendor0);
  const core::FailureTimeIdentifier identifier(7);
  const auto failures = identifier.identify_all(*tickets_, drives);
  core::SampleConfig sc;
  sc.group = core::FeatureGroup::kS;
  const core::SampleBuilder builder(sc, nullptr);
  const auto ds = builder.build(drives, failures);

  const baselines::SmartThresholdDetector detector;
  const auto cm = detector.evaluate(ds);
  // The vendor-style threshold detector catches only a sliver of failures
  // (paper: 3-10% TPR); MFPA must dominate it by a wide margin.
  EXPECT_LT(cm.tpr(), report.cm.tpr() - 0.3);
}

TEST_F(EndToEndTest, OnlinePredictorAgreesWithPipelineThreshold) {
  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = 21;
  core::MfpaPipeline pipeline(config);
  pipeline.run(*telemetry_, *tickets_);
  core::OnlinePredictor predictor(pipeline);

  const core::Preprocessor pre;
  for (const auto& series : *telemetry_) {
    if (series.vendor != 0) continue;
    const auto drive = pre.process_drive(series);
    if (drive.records.size() < 3) continue;
    const auto scores = predictor.score_drive(drive);
    std::size_t above = 0;
    for (double s : scores) above += s >= pipeline.threshold();
    EXPECT_EQ(above, predictor.alerts().size());
    break;
  }
}

TEST_F(EndToEndTest, PreprocessingReducesDiscontinuity) {
  const core::Preprocessor pre;
  core::PreprocessStats stats;
  const auto drives = pre.process(*telemetry_, &stats);
  EXPECT_GT(stats.records_filled, 0u);  // short gaps existed and were filled
  // After preprocessing no kept sequence may contain a >= drop_gap jump
  // (long gaps become segment boundaries, short ones are filled).
  for (const auto& d : drives) {
    for (std::size_t i = 1; i < d.records.size(); ++i) {
      EXPECT_LT(d.records[i].day - d.records[i - 1].day,
                pre.config().drop_gap);
    }
  }
}

TEST_F(EndToEndTest, CumulativeCountsNeverDecreasePerDrive) {
  const core::Preprocessor pre;
  const auto drives = pre.process(*telemetry_);
  for (const auto& d : drives) {
    for (std::size_t i = 1; i < d.records.size(); ++i) {
      for (std::size_t w = 0; w < sim::kNumWindowsEvents; ++w) {
        EXPECT_GE(d.records[i].w_cum[w], d.records[i - 1].w_cum[w]);
      }
    }
  }
}

}  // namespace
}  // namespace mfpa
