// Acceptance guard for the histogram split path: the full MFPA pipeline on a
// simulated fleet must not degrade RF/GBDT TPR/FPR relative to the exact-path
// baseline. The small scenario has only ~120 test positives, so a single
// seed's TPR moves in ~0.8% steps; metrics are averaged over three seeds and
// the bound is one-sided — the coarser cut grid acts as mild regularization
// and may legitimately score a little *better* here. (The paper's
// ±0.5%/±0.25% two-sided criterion is checked at full scale via exp_fig10_14.)
#include <gtest/gtest.h>

#include "core/mfpa.hpp"
#include "ml/factory.hpp"
#include "sim/fleet.hpp"

namespace mfpa {
namespace {

class HistParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleet_ = new sim::FleetSimulator(sim::small_scenario(33));
    telemetry_ =
        new std::vector<sim::DriveTimeSeries>(fleet_->generate_telemetry());
    tickets_ = new std::vector<sim::TroubleTicket>(fleet_->tickets());
  }
  static void TearDownTestSuite() {
    delete tickets_;
    delete telemetry_;
    delete fleet_;
  }

  struct MeanRates {
    double tpr = 0.0;
    double fpr = 0.0;
  };

  static MeanRates mean_rates(const std::string& algo, double split_method) {
    constexpr std::uint64_t kSeeds[] = {33, 34, 35};
    MeanRates mean;
    for (const std::uint64_t seed : kSeeds) {
      core::MfpaConfig config;
      config.vendor = 0;
      config.seed = seed;
      config.algorithm = algo;
      config.hyperparams = ml::default_hyperparams(algo);
      config.hyperparams["split_method"] = split_method;
      core::MfpaPipeline pipeline(config);
      const auto report = pipeline.run(*telemetry_, *tickets_);
      mean.tpr += report.cm.tpr() / std::size(kSeeds);
      mean.fpr += report.cm.fpr() / std::size(kSeeds);
    }
    return mean;
  }

  static sim::FleetSimulator* fleet_;
  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static std::vector<sim::TroubleTicket>* tickets_;
};

sim::FleetSimulator* HistParityTest::fleet_ = nullptr;
std::vector<sim::DriveTimeSeries>* HistParityTest::telemetry_ = nullptr;
std::vector<sim::TroubleTicket>* HistParityTest::tickets_ = nullptr;

TEST_F(HistParityTest, RfHistMatchesExactOnSimulatedFleet) {
  const auto exact = mean_rates("RF", 0.0);
  const auto hist = mean_rates("RF", 1.0);
  EXPECT_GT(hist.tpr, exact.tpr - 0.02);
  EXPECT_LT(hist.fpr, exact.fpr + 0.02);
  EXPECT_GT(hist.tpr, 0.85);
  EXPECT_LT(hist.fpr, 0.05);
}

TEST_F(HistParityTest, GbdtHistMatchesExactOnSimulatedFleet) {
  const auto exact = mean_rates("GBDT", 0.0);
  const auto hist = mean_rates("GBDT", 1.0);
  EXPECT_GT(hist.tpr, exact.tpr - 0.02);
  EXPECT_LT(hist.fpr, exact.fpr + 0.02);
  EXPECT_GT(hist.tpr, 0.85);
  EXPECT_LT(hist.fpr, 0.05);
}

}  // namespace
}  // namespace mfpa
