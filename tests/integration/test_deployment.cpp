// Deployment-surface integration: the trained pipeline's model round-trips
// through the serializer and keeps scoring identically; telemetry round-trips
// through CSV and trains to identical metrics; scenario presets all drive
// the full pipeline.
#include <gtest/gtest.h>

#include <sstream>

#include "core/mfpa.hpp"
#include "ml/serialize.hpp"
#include "sim/fleet.hpp"
#include "sim/telemetry_io.hpp"

namespace mfpa {
namespace {

TEST(Deployment, PipelineModelSerializesAndScoresIdentically) {
  sim::FleetSimulator fleet(sim::small_scenario(41));
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();
  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = 41;
  core::MfpaPipeline pipeline(config);
  pipeline.run(telemetry, tickets);

  std::stringstream ss;
  ml::save_classifier(ss, pipeline.model());
  const auto restored = ml::load_classifier(ss);

  // Build scoring samples via the pipeline's own builder and compare.
  const core::Preprocessor pre;
  const auto builder = pipeline.make_builder();
  data::Dataset probe;
  probe.feature_names = builder.feature_names();
  for (const auto& series : telemetry) {
    if (series.vendor != 0 || probe.size() >= 200) continue;
    const auto drive = pre.process_drive(series);
    for (const auto& r : drive.records) {
      if (probe.size() >= 200) break;
      probe.add(builder.features_of(r), 0, {drive.drive_id, r.day, 0});
    }
  }
  ASSERT_GT(probe.size(), 50u);
  EXPECT_EQ(pipeline.model().predict_proba(probe.X),
            restored->predict_proba(probe.X));
}

TEST(Deployment, TelemetryCsvRoundTripTrainsIdentically) {
  sim::FleetSimulator fleet(sim::tiny_scenario(43));
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();

  std::stringstream ts, ks;
  sim::write_telemetry_csv(ts, telemetry);
  sim::write_tickets_csv(ks, tickets);
  const auto telemetry2 = sim::read_telemetry_csv(ts);
  const auto tickets2 = sim::read_tickets_csv(ks);

  core::MfpaConfig config;
  config.seed = 43;
  config.hyperparams = {{"n_trees", 10.0}, {"seed", 1.0}};
  core::MfpaPipeline a(config), b(config);
  const auto ra = a.run(telemetry, tickets);
  const auto rb = b.run(telemetry2, tickets2);
  EXPECT_EQ(ra.cm.tp, rb.cm.tp);
  EXPECT_EQ(ra.cm.fp, rb.cm.fp);
  EXPECT_EQ(ra.test_size, rb.test_size);
  // Scores match to float-serialization precision.
  ASSERT_EQ(ra.test_scores.size(), rb.test_scores.size());
  for (std::size_t i = 0; i < ra.test_scores.size(); ++i) {
    EXPECT_NEAR(ra.test_scores[i], rb.test_scores[i], 1e-6);
  }
}

class ScenarioSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioSweep, FullPipelineRuns) {
  sim::FleetSimulator fleet(sim::scenario_by_name(GetParam(), 51));
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();
  core::MfpaConfig config;
  config.seed = 51;  // all vendors pooled: even tiny has enough positives
  config.hyperparams = {{"n_trees", 15.0}, {"seed", 1.0}};
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(telemetry, tickets);
  EXPECT_GT(report.test_size, 0u) << GetParam();
  EXPECT_GE(report.auc, 0.5) << GetParam();
  EXPECT_NO_THROW(report.cm.tpr());
}

INSTANTIATE_TEST_SUITE_P(Presets, ScenarioSweep,
                         ::testing::Values("tiny", "small"));

TEST(Deployment, ScenarioByNameRejectsUnknown) {
  EXPECT_THROW(sim::scenario_by_name("gigantic"), std::invalid_argument);
}

}  // namespace
}  // namespace mfpa
