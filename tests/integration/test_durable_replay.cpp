// Crash-recovery proof for the durable scoring service, driven through the
// real CLI binary: a baseline run, a run killed mid-stream with SIGKILL (as
// close to power loss as a process can get), and a resuming run whose final
// alert stream must be byte-identical to the baseline's. Disk-fault
// variants then corrupt the durable directory between the kill and the
// resume: recovery either absorbs the damage (torn tails, a deleted newest
// checkpoint) and still reproduces the baseline bytes, or refuses loudly —
// never a silently wrong alert stream.
//
// The three runs share one model registry (--reuse-registry): recovery
// refuses to replay WAL records under a model the crashed process never
// scored with, so the test would fail loudly if each run retrained.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/fault_injector.hpp"

#ifndef MFPA_CLI_BINARY
#error "MFPA_CLI_BINARY must point at the mfpa executable"
#endif

namespace mfpa {
namespace {
namespace fs = std::filesystem;

// The tiny scenario at seed 7 replays 14233 records; killing at 9000 leaves
// checkpoints at LSN 4096 and 8192 on disk plus a flushed WAL tail, so every
// recovery shape (checkpoint + tail, checkpoint fallback) is reachable.
constexpr const char* kCommonArgs =
    "serve-replay --scenario=tiny --seed=7 --threads=2 "
    "--checkpoint-interval=4096";
constexpr std::size_t kKillAfter = 9000;

std::string read_bytes(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

class DurableReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            (std::string("mfpa_durable_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
    registry_ = root_ / "registry";
    durable_ = root_ / "durable";
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Runs the CLI with the shared scenario/registry flags plus `extra`,
  /// capturing stdout+stderr to `<root>/<log_name>.log`. Returns the exit
  /// code (128 + signal for a signalled child — SIGKILL surfaces as 137).
  int run_cli(const std::string& extra, const std::string& log_name) {
    const std::string cmd = std::string(MFPA_CLI_BINARY) + " " + kCommonArgs +
                            " --registry=" + registry_.string() + " " + extra +
                            " > " + (root_ / (log_name + ".log")).string() +
                            " 2>&1";
    const int status = std::system(cmd.c_str());
    if (status == -1) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  std::string log_of(const std::string& log_name) const {
    return read_bytes(root_ / (log_name + ".log"));
  }

  /// Baseline (trains + publishes the shared model) and the SIGKILLed
  /// durable run every recovery test starts from.
  void baseline_then_kill() {
    ASSERT_EQ(run_cli("--alerts-out=" + (root_ / "base.alerts").string(),
                      "baseline"),
              0)
        << log_of("baseline");
    baseline_alerts_ = read_bytes(root_ / "base.alerts");
    ASSERT_FALSE(baseline_alerts_.empty());
    ASSERT_EQ(run_cli("--reuse-registry --durable-dir=" + durable_.string() +
                          " --kill-after=" + std::to_string(kKillAfter),
                      "crash"),
              137)
        << log_of("crash");
    ASSERT_TRUE(fs::exists(durable_ / "wal"));
    ASSERT_TRUE(fs::exists(durable_ / "ckpt"));
  }

  /// Resumes from `durable_` and returns the exit code; on success the
  /// resumed alert bytes land in `resumed_alerts_`.
  int resume(const std::string& log_name) {
    const fs::path out = root_ / (log_name + ".alerts");
    const int rc = run_cli("--reuse-registry --durable-dir=" +
                               durable_.string() + " --alerts-out=" +
                               out.string(),
                           log_name);
    resumed_alerts_ = read_bytes(out);
    return rc;
  }

  fs::path root_, registry_, durable_;
  std::string baseline_alerts_, resumed_alerts_;
};

TEST_F(DurableReplayTest, KillAndResumeReproducesBaselineAlertsByteForByte) {
  baseline_then_kill();
  ASSERT_EQ(resume("resume"), 0) << log_of("resume");
  const std::string log = log_of("resume");
  EXPECT_NE(log.find("durable recovery:"), std::string::npos) << log;
  EXPECT_NE(log.find("resuming feed after"), std::string::npos) << log;
  EXPECT_EQ(resumed_alerts_, baseline_alerts_);
}

TEST_F(DurableReplayTest, SecondResumeAfterCleanShutdownIsIdempotent) {
  baseline_then_kill();
  ASSERT_EQ(resume("resume1"), 0) << log_of("resume1");
  ASSERT_EQ(resumed_alerts_, baseline_alerts_);
  // The first resume sealed everything; running again replays nothing new
  // and must reproduce the identical stream from durable state alone.
  ASSERT_EQ(resume("resume2"), 0) << log_of("resume2");
  EXPECT_EQ(resumed_alerts_, baseline_alerts_);
}

TEST_F(DurableReplayTest, TornFinalWritesAreAbsorbed) {
  baseline_then_kill();
  // Tear the tail of every WAL segment: those records were never
  // acknowledged durable, so the resuming feed re-delivers them.
  sim::FaultInjector injector({{{sim::FaultMode::kTornFinalWrite, 1.0}}, 61});
  std::uint64_t salt = 0;
  for (const auto& entry : fs::directory_iterator(durable_ / "wal")) {
    injector.corrupt_file(entry.path().string(),
                          sim::FaultMode::kTornFinalWrite, ++salt);
  }
  ASSERT_GT(injector.stats().of(sim::FaultMode::kTornFinalWrite), 0u);
  ASSERT_EQ(resume("resume"), 0) << log_of("resume");
  EXPECT_EQ(resumed_alerts_, baseline_alerts_);
}

TEST_F(DurableReplayTest, StaleCheckpointFallsBackAndStillMatches) {
  baseline_then_kill();
  // Delete the newest checkpoint: recovery must fall back to the retained
  // older one and replay the longer WAL tail over it.
  sim::FaultInjector injector({{{sim::FaultMode::kStaleCheckpoint, 1.0}}, 67});
  ASSERT_EQ(injector.corrupt_durable_dir(durable_.string()), 1u);
  ASSERT_EQ(resume("resume"), 0) << log_of("resume");
  EXPECT_EQ(resumed_alerts_, baseline_alerts_);
}

TEST_F(DurableReplayTest, BitFlipRecoversOrFailsLoudlyNeverSilentlyWrong) {
  baseline_then_kill();
  sim::FaultInjector injector({{{sim::FaultMode::kBitFlip, 1.0}}, 71});
  for (const auto& entry : fs::directory_iterator(durable_ / "wal")) {
    injector.corrupt_file(entry.path().string(), sim::FaultMode::kBitFlip);
    break;  // one flipped segment is the scenario
  }
  const int rc = resume("resume");
  if (rc == 0) {
    // The flip landed in a discardable tail; the stream must still match.
    EXPECT_EQ(resumed_alerts_, baseline_alerts_);
  } else {
    // Mid-stream corruption: recovery must refuse, not rebuild over a hole.
    EXPECT_NE(log_of("resume").find("wal"), std::string::npos);
  }
}

TEST_F(DurableReplayTest, EveryCheckpointCorruptRefusesLoudly) {
  baseline_then_kill();
  sim::FaultInjector injector({{{sim::FaultMode::kBitFlip, 1.0}}, 73});
  std::uint64_t salt = 100;
  for (const auto& entry : fs::directory_iterator(durable_ / "ckpt")) {
    injector.corrupt_file(entry.path().string(), sim::FaultMode::kBitFlip,
                          ++salt);
  }
  ASSERT_GE(injector.stats().of(sim::FaultMode::kBitFlip), 2u);
  EXPECT_NE(resume("resume"), 0);
  EXPECT_NE(log_of("resume").find("checkpoint"), std::string::npos)
      << log_of("resume");
}

}  // namespace
}  // namespace mfpa
