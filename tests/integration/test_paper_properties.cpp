// Paper-shape properties: the qualitative claims of the DATE'23 paper that
// the reproduction must preserve, tested at the (fast) small scale with
// loose bounds. The quantitative series live in the bench/ harnesses.
#include <gtest/gtest.h>

#include <map>

#include "core/mfpa.hpp"
#include "sim/fleet.hpp"

namespace mfpa {
namespace {

class PaperPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleet_ = new sim::FleetSimulator(sim::small_scenario(31));
    telemetry_ =
        new std::vector<sim::DriveTimeSeries>(fleet_->generate_telemetry());
    tickets_ = new std::vector<sim::TroubleTicket>(fleet_->tickets());
  }
  static void TearDownTestSuite() {
    delete tickets_;
    delete telemetry_;
    delete fleet_;
  }
  static core::MfpaReport run_group(core::FeatureGroup group,
                                    const std::string& algorithm = "RF") {
    core::MfpaConfig config;
    config.vendor = 0;
    config.group = group;
    config.algorithm = algorithm;
    config.seed = 31;
    core::MfpaPipeline pipeline(config);
    return pipeline.run(*telemetry_, *tickets_);
  }
  static sim::FleetSimulator* fleet_;
  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static std::vector<sim::TroubleTicket>* tickets_;
};

sim::FleetSimulator* PaperPropertyTest::fleet_ = nullptr;
std::vector<sim::DriveTimeSeries>* PaperPropertyTest::telemetry_ = nullptr;
std::vector<sim::TroubleTicket>* PaperPropertyTest::tickets_ = nullptr;

TEST_F(PaperPropertyTest, SfwbBeatsSmartOnlyOnAuc) {
  // The paper's central claim (Fig. 9/13): multidimensional SFWB beats the
  // SMART-only baseline.
  const auto sfwb = run_group(core::FeatureGroup::kSFWB);
  const auto s = run_group(core::FeatureGroup::kS);
  EXPECT_GT(sfwb.auc, s.auc - 0.002);
  // The FPR advantage is the headline ("86% lower"): allow noise but demand
  // SFWB not lose on FPR while winning or tying TPR.
  EXPECT_LE(sfwb.cm.fpr(), s.cm.fpr() + 0.005);
}

TEST_F(PaperPropertyTest, SingleDimensionGroupsAreWeaker) {
  const auto sfwb = run_group(core::FeatureGroup::kSFWB);
  const auto b = run_group(core::FeatureGroup::kB);
  EXPECT_GT(sfwb.auc, b.auc + 0.02);  // B alone is the weakest group
}

TEST_F(PaperPropertyTest, BathtubFailureDistribution) {
  // Fig. 2: failures concentrate in infancy and wear-out. (The horizon
  // window clips the deep wear-out tail, so "late" is age > 600 days.)
  std::vector<double> ages;
  for (const auto& d : fleet_->drives()) {
    if (d.outcome.fails) ages.push_back(d.outcome.age_at_failure);
  }
  ASSERT_GT(ages.size(), 30u);
  std::size_t early = 0, late = 0;
  for (double a : ages) {
    if (a < 90.0) ++early;
    if (a > 600.0) ++late;
  }
  EXPECT_GT(early, ages.size() / 10);
  EXPECT_GT(late, ages.size() / 20);
}

TEST_F(PaperPropertyTest, EarlierFirmwareHasHigherFailureRate) {
  // Fig. 3 / Observation #2, on realized (simulated) failures.
  std::map<int, std::pair<std::size_t, std::size_t>> by_fw;  // fails, total
  for (const auto& d : fleet_->drives()) {
    if (d.vendor != 0) continue;
    auto& [fails, total] = by_fw[d.firmware_initial];
    ++total;
    if (d.outcome.fails) ++fails;
  }
  ASSERT_GE(by_fw.size(), 5u);
  const auto rate = [&](int fw) {
    const auto& [fails, total] = by_fw[fw];
    return total ? static_cast<double>(fails) / static_cast<double>(total) : 0.0;
  };
  EXPECT_GT(rate(0), rate(4) * 2.0);  // I_F_1 far worse than I_F_5
}

TEST_F(PaperPropertyTest, FaultyDrivesAccumulateMoreEvents) {
  // Observations #3/#4 (Figs. 4-5): cumulative W/B counts of faulty drives
  // exceed healthy drives' before failure.
  const core::Preprocessor pre;
  const auto drives = pre.process(*telemetry_);
  double faulty_sum = 0.0, healthy_sum = 0.0;
  std::size_t faulty_n = 0, healthy_n = 0;
  for (const auto& d : drives) {
    if (d.records.empty()) continue;
    double total_w = 0.0;
    for (double w : d.records.back().w_cum) total_w += w;
    if (d.failed) {
      faulty_sum += total_w;
      ++faulty_n;
    } else {
      healthy_sum += total_w;
      ++healthy_n;
    }
  }
  ASSERT_GT(faulty_n, 10u);
  ASSERT_GT(healthy_n, 10u);
  EXPECT_GT(faulty_sum / faulty_n, 3.0 * healthy_sum / healthy_n);
}

TEST_F(PaperPropertyTest, TimeSplitIsMoreHonestThanRandomSplit) {
  // Fig. 8 motivation: random splits let the model peek at the future, so
  // their measured AUC is at least as high (optimistic) as the time split's.
  core::MfpaConfig time_cfg;
  time_cfg.vendor = 0;
  time_cfg.seed = 31;
  core::MfpaConfig rand_cfg = time_cfg;
  rand_cfg.time_split = false;
  core::MfpaPipeline tp(time_cfg), rp(rand_cfg);
  const auto tr = tp.run(*telemetry_, *tickets_);
  const auto rr = rp.run(*telemetry_, *tickets_);
  EXPECT_GE(rr.auc, tr.auc - 0.02);
}

TEST_F(PaperPropertyTest, LookaheadDecay) {
  // Fig. 19: TPR decays as the lookahead distance grows.
  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = 31;
  core::MfpaPipeline pipeline(config);
  pipeline.run(*telemetry_, *tickets_);

  const core::Preprocessor pre;
  std::vector<sim::DriveTimeSeries> vendor0;
  for (const auto& s : *telemetry_) {
    if (s.vendor == 0) vendor0.push_back(s);
  }
  const auto drives = pre.process(vendor0);
  const auto builder = pipeline.make_builder();
  auto tpr_at = [&](int lo, int hi) {
    const auto ds = builder.build_positives_at_distance(drives, lo, hi);
    if (ds.empty()) return -1.0;
    const auto scores = pipeline.score(ds);
    std::size_t hit = 0;
    for (double s : scores) hit += s >= pipeline.threshold();
    return static_cast<double>(hit) / static_cast<double>(ds.size());
  };
  const double near = tpr_at(0, 4);
  const double far = tpr_at(15, 21);
  ASSERT_GE(near, 0.0);
  ASSERT_GE(far, 0.0);
  EXPECT_GT(near, far + 0.15);
}

TEST_F(PaperPropertyTest, VendorFourIsHardest) {
  // Fig. 11/15: vendor IV's model underperforms because it has the fewest
  // faulty drives. Compare positive-sample counts (the cause).
  std::size_t fails[4] = {0, 0, 0, 0};
  for (const auto& s : *telemetry_) {
    if (s.failed) ++fails[static_cast<std::size_t>(s.vendor)];
  }
  EXPECT_LT(fails[3], fails[0]);
  EXPECT_LT(fails[3], fails[1] + fails[2]);
}

}  // namespace
}  // namespace mfpa
