// Failure-injection tests: corrupted model files and mangled telemetry CSVs
// must produce clean exceptions, never crashes or silent misreads.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "ml/factory.hpp"
#include "ml/serialize.hpp"
#include "sim/fleet.hpp"
#include "sim/telemetry_io.hpp"

namespace mfpa {
namespace {

std::string serialized_model() {
  Rng rng(1);
  data::Matrix X(60, 4);
  std::vector<int> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    y[i] = i % 3 == 0 ? 1 : 0;
    for (std::size_t c = 0; c < 4; ++c) X(i, c) = rng.normal(y[i] * 2.0, 1.0);
  }
  auto model = ml::make_classifier("GBDT", {{"n_rounds", 6.0}, {"seed", 1.0}});
  model->fit(X, y);
  std::stringstream ss;
  ml::save_classifier(ss, *model);
  return ss.str();
}

class ModelCorruptionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModelCorruptionSweep, TruncationAlwaysThrows) {
  const std::string intact = serialized_model();
  // Truncate at a pseudo-random interior offset.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto cut = static_cast<std::size_t>(
      rng.uniform_int(10, static_cast<std::int64_t>(intact.size()) - 2));
  std::stringstream ss(intact.substr(0, cut));
  EXPECT_THROW((void)ml::load_classifier(ss), std::exception) << "cut=" << cut;
}

TEST_P(ModelCorruptionSweep, ByteFlipThrowsOrStaysFinite) {
  const std::string intact = serialized_model();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  std::string mutated = intact;
  const auto pos = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
  mutated[pos] = static_cast<char>('!' + rng.uniform_int(0, 50));
  std::stringstream ss(mutated);
  // A flipped byte may still parse (e.g. a digit changed); the contract is
  // "no crash, and any loaded model produces finite probabilities".
  try {
    const auto model = ml::load_classifier(ss);
    data::Matrix probe(3, 4, 0.5);
    for (double p : model->predict_proba(probe)) {
      EXPECT_TRUE(std::isfinite(p));
    }
  } catch (const std::exception&) {
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCorruptionSweep,
                         ::testing::Range(1, 13));

TEST(TelemetryRobustness, TruncatedCsvThrowsCleanly) {
  sim::FleetSimulator fleet(sim::tiny_scenario(71));
  std::stringstream ss;
  sim::write_telemetry_csv(ss, fleet.generate_telemetry());
  std::string text = ss.str();
  // Chop mid-row: the row either disappears (line-based read) or fails the
  // arity check; both are acceptable, crashes and misparses are not.
  text.resize(text.size() * 2 / 3);
  // Re-terminate so the final partial line is still "a row".
  std::stringstream truncated(text);
  try {
    const auto batch = sim::read_telemetry_csv(truncated);
    for (const auto& series : batch) {
      for (const auto& rec : series.records) {
        EXPECT_GE(rec.day, 0);
      }
    }
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(TelemetryRobustness, NonNumericCellThrows) {
  std::stringstream ss;
  sim::write_telemetry_csv(ss, {});
  std::string text = ss.str();
  // Append a row with the right arity but a garbage day field.
  std::string row = "1,0,0,NOTADAY,0,-1,0";
  for (std::size_t i = 0;
       i < sim::kNumSmartAttrs + sim::kNumWindowsEvents + sim::kNumBsodCodes;
       ++i) {
    row += ",0";
  }
  text += row + "\n";
  std::stringstream bad(text);
  EXPECT_THROW((void)sim::read_telemetry_csv(bad), std::exception);
}

}  // namespace
}  // namespace mfpa
