// Sharded serving parity: the ShardRouter's merged alert stream must be
// identical for every shard count (single engine included), identical over
// the loopback binary protocol and in-process submission, identical under
// chunked streamed generation, and restartable from per-shard durable
// state without changing a single alert.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/mfpa.hpp"
#include "net/fleet_replay.hpp"
#include "net/shard_router.hpp"
#include "obs/metrics.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "sim/fleet.hpp"
#include "sim/scenario.hpp"

namespace mfpa {
namespace {
namespace fs = std::filesystem;

::testing::AssertionResult same_alerts(const std::vector<core::Alert>& a,
                                       const std::vector<core::Alert>& b) {
  if (a.size() != b.size()) {
    auto result = ::testing::AssertionFailure()
                  << "alert counts differ: " << a.size() << " vs " << b.size();
    for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
      const bool differ =
          i >= a.size() || i >= b.size() || a[i].drive_id != b[i].drive_id ||
          a[i].day != b[i].day || a[i].score != b[i].score;
      if (!differ) continue;
      if (i < a.size()) {
        result << "; a[" << i << "]={" << a[i].drive_id << "," << a[i].day
               << "," << a[i].score << "}";
      }
      if (i < b.size()) {
        result << " b[" << i << "]={" << b[i].drive_id << "," << b[i].day
               << "," << b[i].score << "}";
      }
      break;
    }
    return result;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].drive_id != b[i].drive_id || a[i].day != b[i].day ||
        a[i].score != b[i].score) {
      return ::testing::AssertionFailure()
             << "alert " << i << " differs: drive " << a[i].drive_id << "/"
             << b[i].drive_id << " day " << a[i].day << "/" << b[i].day
             << " score " << a[i].score << "/" << b[i].score;
    }
  }
  return ::testing::AssertionSuccess();
}

class FleetServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleet_ = new sim::FleetSimulator(sim::tiny_scenario(61));
    telemetry_ = new std::vector<sim::DriveTimeSeries>(
        fleet_->generate_telemetry());
    core::MfpaConfig config;
    config.seed = 61;
    config.hyperparams = {{"n_trees", 10.0}, {"seed", 1.0}};
    pipeline_ = new core::MfpaPipeline(config);
    pipeline_->run(*telemetry_, fleet_->tickets());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete telemetry_;
    delete fleet_;
  }

  /// A registry directory unique to (test, tag) — ctest runs discovered
  /// tests as parallel processes.
  static fs::path unique_dir(const std::string& tag) {
    const fs::path dir =
        fs::path(::testing::TempDir()) /
        (std::string("mfpa_fleet_serving_") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         "_" + tag);
    fs::remove_all(dir);
    return dir;
  }

  static net::ShardRouterConfig router_config(std::size_t shards) {
    net::ShardRouterConfig config;
    config.shards = shards;
    config.engine.alert_policy.min_consecutive = 2;
    config.engine.alert_policy.cooldown_days = 7;
    return config;
  }

  /// Runs one sharded replay and returns its canonical merged alerts.
  static net::ShardedReplayReport run_sharded(std::size_t shards,
                                              bool loopback,
                                              const std::string& tag) {
    // Engine/net instruments resolve by (name, labels) in the active
    // registry; isolating per run keeps each report's counters this run's
    // own (shard labels repeat across the routers this suite builds).
    auto metrics = obs::MetricsRegistry::create_isolated();
    obs::ScopedMetricsOverride metrics_scope(*metrics);
    const fs::path dir = unique_dir(tag);
    serve::ModelRegistry registry(dir.string());
    registry.publish_pipeline(*pipeline_, 0, 100);
    net::ShardRouter router(registry, router_config(shards));
    const serve::FleetReplayer replayer(*telemetry_);
    const auto report = loopback
                            ? net::replay_over_loopback(router, replayer)
                            : net::replay_sharded(router, replayer);
    router.stop();
    EXPECT_EQ(report.replay.records_submitted, replayer.total_records());
    EXPECT_EQ(report.replay.engine.shed, 0u);
    EXPECT_EQ(report.replay.engine.unscored_no_model, 0u);
    EXPECT_EQ(report.replay.engine.rejected, 0u);
    fs::remove_all(dir);
    return report;
  }

  static sim::FleetSimulator* fleet_;
  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static core::MfpaPipeline* pipeline_;
};

sim::FleetSimulator* FleetServingTest::fleet_ = nullptr;
std::vector<sim::DriveTimeSeries>* FleetServingTest::telemetry_ = nullptr;
core::MfpaPipeline* FleetServingTest::pipeline_ = nullptr;

// Satellite: batch-vs-sharded alert parity. The canonical merged stream —
// order included — must not depend on the shard count, because each drive's
// records stay on one shard in submission order and the merge is a total
// order over (day, drive id).
TEST_F(FleetServingTest, AlertStreamIdenticalAcrossShardCounts) {
  const auto n1 = run_sharded(1, false, "n1");
  const auto n2 = run_sharded(2, false, "n2");
  const auto n4 = run_sharded(4, false, "n4");
  ASSERT_GT(n1.replay.alerts.size(), 0u)
      << "degenerate scenario: no alerts to compare";
  EXPECT_TRUE(same_alerts(n1.replay.alerts, n2.replay.alerts));
  EXPECT_TRUE(same_alerts(n1.replay.alerts, n4.replay.alerts));
  // Per-drive ordering is preserved shard-locally: the merged stream is
  // day-ascending, and within a drive strictly so.
  for (std::size_t i = 1; i < n4.replay.alerts.size(); ++i) {
    EXPECT_GE(n4.replay.alerts[i].day, n4.replay.alerts[i - 1].day);
  }
}

// The loopback binary protocol is a transparent transport: encode → TCP →
// decode → route must yield the same alerts as in-process submission.
TEST_F(FleetServingTest, LoopbackMatchesInProcess) {
  const auto in_process = run_sharded(4, false, "mem");
  const auto loopback = run_sharded(4, true, "tcp");
  ASSERT_GT(in_process.replay.alerts.size(), 0u);
  EXPECT_TRUE(same_alerts(in_process.replay.alerts, loopback.replay.alerts));
  EXPECT_EQ(loopback.protocol_errors, 0u);
}

// Streamed chunked generation must reproduce the unchunked replay's alert
// stream (per-drive records are chunk-invariant; the canonical merge
// removes the interleaving difference).
TEST_F(FleetServingTest, StreamedChunksMatchUnchunkedReplay) {
  const auto reference = run_sharded(2, false, "ref");

  auto metrics = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride metrics_scope(*metrics);
  const fs::path dir = unique_dir("streamed");
  serve::ModelRegistry registry(dir.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  net::ShardRouter router(registry, router_config(2));
  sim::FleetSimulator fleet(sim::tiny_scenario(61));
  net::StreamedFleetOptions options;
  options.chunk_drives = 7;  // deliberately awkward chunking
  const auto streamed = net::replay_fleet_streamed(router, fleet, options);
  router.stop();
  fs::remove_all(dir);

  EXPECT_GT(streamed.chunks, 1u);
  // Tracked selection precedes empty-series dropping, so it can only be
  // at least as large as the generated telemetry.
  EXPECT_GE(streamed.drives_tracked, telemetry_->size());
  EXPECT_TRUE(
      same_alerts(reference.replay.alerts, streamed.sharded.replay.alerts));
}

// Satellite: per-shard durable resume. Stop mid-stream after a clean seal,
// restart new engines from the shard directories, skip each shard's durable
// prefix, and finish — the final alert stream must equal an uninterrupted
// run's exactly.
TEST_F(FleetServingTest, DurableShardedResumeReproducesAlerts) {
  const auto reference = run_sharded(2, false, "ref");

  auto metrics = obs::MetricsRegistry::create_isolated();
  obs::ScopedMetricsOverride metrics_scope(*metrics);
  const fs::path dir = unique_dir("reg");
  const fs::path durable = unique_dir("wal");
  serve::ModelRegistry registry(dir.string());
  registry.publish_pipeline(*pipeline_, 0, 100);
  net::ShardRouterConfig config = router_config(2);
  config.durable_root = durable.string();

  const serve::FleetReplayer replayer(*telemetry_);
  const std::size_t cut = replayer.total_records() / 2;
  {
    net::ShardRouter first(registry, config);
    const auto& arrivals = replayer.arrivals();
    for (std::size_t i = 0; i < cut; ++i) {
      first.submit({arrivals[i].drive_id, arrivals[i].vendor,
                    *arrivals[i].record});
    }
    first.stop();  // seals per-shard checkpoints
  }

  net::ShardRouter second(registry, config);
  const auto resume = second.resume_records();
  ASSERT_EQ(resume.size(), 2u);
  EXPECT_EQ(resume[0] + resume[1], cut)
      << "per-shard durable counts must cover exactly the sealed prefix";
  net::ShardedReplayOptions options;
  options.skip_records = resume;
  const auto resumed = net::replay_sharded(second, replayer, options);
  second.stop();
  fs::remove_all(dir);
  fs::remove_all(durable);

  EXPECT_EQ(resumed.replay.records_skipped, cut);
  EXPECT_EQ(resumed.replay.records_submitted,
            replayer.total_records() - cut);
  ASSERT_GT(reference.replay.alerts.size(), 0u);
  EXPECT_TRUE(same_alerts(reference.replay.alerts, resumed.replay.alerts));
}

}  // namespace
}  // namespace mfpa
