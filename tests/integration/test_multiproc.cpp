// Cross-process parity and crash-recovery proof for multi-process sharded
// serving, driven through the real CLI binary. The same fleet stream is
// replayed through every topology the serving stack offers — in-process
// router, shard-aware client over N shard-serve processes, and a
// forwarding router process in front of those shards — across shard
// counts 1 and 4, and every merged alert stream must be byte-identical.
// A second suite SIGKILLs one shard process mid-replay, asserts the
// supervisor surfaces the death (exit code 2, per-shard status 137), and
// proves a resumed run recovers from the per-shard WALs to reproduce the
// uninterrupted stream byte-for-byte.
//
// All runs inside a test share one model registry (--reuse-registry after
// the first): alert parity across topologies is only meaningful under one
// model, and WAL recovery refuses to replay under a model the killed
// processes never scored with.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef MFPA_CLI_BINARY
#error "MFPA_CLI_BINARY must point at the mfpa executable"
#endif

namespace mfpa {
namespace {
namespace fs = std::filesystem;

constexpr const char* kCommonArgs = "fleet-replay --scenario=tiny --seed=7";

std::string read_bytes(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

class MultiprocReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            (std::string("mfpa_multiproc_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
    registry_ = root_ / "registry";
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Runs the CLI with the shared scenario/registry flags plus `extra`,
  /// capturing stdout+stderr to `<root>/<name>.log`. Every run after the
  /// first passes --reuse-registry so the whole test scores one model.
  int run_cli(const std::string& extra, const std::string& name) {
    std::string cmd = std::string(MFPA_CLI_BINARY) + " " + kCommonArgs +
                      " --registry=" + registry_.string();
    if (trained_) cmd += " --reuse-registry";
    trained_ = true;
    cmd += " --proc-dir=" + (root_ / ("proc-" + name)).string();
    cmd += " " + extra + " > " + (root_ / (name + ".log")).string() + " 2>&1";
    const int status = std::system(cmd.c_str());
    if (status == -1) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  std::string log_of(const std::string& name) const {
    return read_bytes(root_ / (name + ".log"));
  }

  /// Runs one topology with --alerts-out and returns its alert bytes;
  /// asserts the run exited 0 and produced a non-empty stream.
  std::string alerts_of(const std::string& extra, const std::string& name) {
    const fs::path out = root_ / (name + ".alerts");
    EXPECT_EQ(run_cli(extra + " --alerts-out=" + out.string(), name), 0)
        << log_of(name);
    const std::string bytes = read_bytes(out);
    EXPECT_FALSE(bytes.empty()) << log_of(name);
    return bytes;
  }

  fs::path root_, registry_;
  bool trained_ = false;
};

TEST_F(MultiprocReplayTest, EveryTopologyProducesByteIdenticalAlerts) {
  // Reference: the in-process router with a single shard.
  const std::string baseline = alerts_of("--shards=1 --in-process", "inproc1");
  ASSERT_FALSE(baseline.empty());

  // In-process, 4 shards: drive-hash partitioning must not change alerts.
  EXPECT_EQ(alerts_of("--shards=4 --in-process", "inproc4"), baseline);

  // Shard-aware client feeding shard-serve OS processes directly.
  EXPECT_EQ(alerts_of("--processes=1", "direct1"), baseline);
  EXPECT_EQ(alerts_of("--processes=4", "direct4"), baseline);

  // Shard-oblivious client feeding a forwarding router process that fans
  // out to the shard processes.
  EXPECT_EQ(alerts_of("--processes=1 --via-router", "router1"), baseline);
  EXPECT_EQ(alerts_of("--processes=4 --via-router", "router4"), baseline);
}

TEST_F(MultiprocReplayTest, KilledShardProcessResumesToIdenticalAlerts) {
  // Uninterrupted multi-process reference stream (also trains the model).
  const std::string baseline = alerts_of("--processes=4", "baseline");
  ASSERT_FALSE(baseline.empty());

  // SIGKILL shard 2 mid-replay: the supervisor must report the signalled
  // child (137 = 128 + SIGKILL) and the run must exit 2, leaving durable
  // per-shard WAL state behind.
  const fs::path durable = root_ / "durable";
  ASSERT_EQ(run_cli("--processes=4 --durable-dir=" + durable.string() +
                        " --kill-shard-after=9000 --kill-shard=2",
                    "crash"),
            2)
      << log_of("crash");
  EXPECT_NE(log_of("crash").find("shard-2=137"), std::string::npos)
      << log_of("crash");
  ASSERT_TRUE(fs::exists(durable / "shard-002" / "wal")) << log_of("crash");

  // Resume: fresh shard processes recover their slices from the WALs,
  // report durable progress, skip what was already absorbed, and the
  // merged stream must reproduce the uninterrupted bytes exactly.
  const fs::path out = root_ / "resume.alerts";
  ASSERT_EQ(run_cli("--processes=4 --durable-dir=" + durable.string() +
                        " --alerts-out=" + out.string(),
                    "resume"),
            0)
      << log_of("resume");
  EXPECT_NE(log_of("resume").find("resuming feed after"), std::string::npos)
      << log_of("resume");
  EXPECT_EQ(read_bytes(out), baseline);
}

}  // namespace
}  // namespace mfpa
