// Batch/online serving parity: the fleet-scale ScoringEngine must raise
// exactly the alerts that the batch MfpaPipeline + OnlinePredictor replay
// raises, for every drive whose batch-kept segment is its final segment
// (the streaming service, having no hindsight, always scores the final
// segment) — and identically across scoring thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>

#include "core/mfpa.hpp"
#include "core/online_predictor.hpp"
#include "core/preprocess.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_engine.hpp"
#include "sim/fleet.hpp"

namespace mfpa {
namespace {
namespace fs = std::filesystem;

struct AlertKey {
  std::uint64_t drive_id;
  DayIndex day;
  double score;
  bool operator==(const AlertKey&) const = default;
  bool operator<(const AlertKey& o) const {
    if (drive_id != o.drive_id) return drive_id < o.drive_id;
    return day < o.day;
  }
};

std::vector<AlertKey> sorted_keys(const std::vector<core::Alert>& alerts) {
  std::vector<AlertKey> keys;
  keys.reserve(alerts.size());
  for (const auto& a : alerts) keys.push_back({a.drive_id, a.day, a.score});
  std::sort(keys.begin(), keys.end());
  return keys;
}

class ServingParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::FleetSimulator fleet(sim::tiny_scenario(54));
    telemetry_ = new std::vector<sim::DriveTimeSeries>(
        fleet.generate_telemetry());
    core::MfpaConfig config;
    config.seed = 54;
    config.hyperparams = {{"n_trees", 10.0}, {"seed", 1.0}};
    pipeline_ = new core::MfpaPipeline(config);
    pipeline_->run(*telemetry_, fleet.tickets());

    // Batch reference: clean each drive with the batch preprocessor and
    // score it with the OnlinePredictor, restricted to drives whose kept
    // segment is the final one (else the online path, lacking hindsight,
    // legitimately scores different records). The live service also scores
    // *earlier* usable segments as they streamed past — the batch path never
    // sees those — so each comparison drive records the first day of its
    // kept segment and engine alerts are compared within that window (alert
    // hysteresis resets on segment restart, exactly like the batch).
    windows_ = new std::map<std::uint64_t, DayIndex>();
    const core::Preprocessor pre;
    core::OnlinePredictor predictor(*pipeline_, policy());
    for (const auto& series : *telemetry_) {
      const auto drive = pre.process_drive(series);
      if (drive.records.empty()) continue;
      if (drive.records.back().day != series.records.back().day) continue;
      (*windows_)[drive.drive_id] = drive.records.front().day;
      predictor.score_drive(drive);
    }
    reference_ = new std::vector<core::Alert>(predictor.alerts());
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete windows_;
    delete pipeline_;
    delete telemetry_;
  }

  /// Engine alerts inside the batch-comparable windows.
  static std::vector<core::Alert> comparable(
      const std::vector<core::Alert>& alerts) {
    std::vector<core::Alert> out;
    for (const auto& alert : alerts) {
      const auto it = windows_->find(alert.drive_id);
      if (it != windows_->end() && alert.day >= it->second) {
        out.push_back(alert);
      }
    }
    return out;
  }

  static core::AlertPolicy policy() {
    core::AlertPolicy p;
    p.min_consecutive = 2;
    p.cooldown_days = 7;
    return p;
  }

  std::vector<core::Alert> serve_alerts(std::size_t threads,
                                        bool compile = true,
                                        bool quantize = false) {
    // Keyed by test name as well as thread count: ctest runs discovered
    // tests as parallel processes, and both tests publish at threads=1.
    const fs::path dir =
        fs::path(::testing::TempDir()) /
        (std::string("mfpa_parity_registry_") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         "_t" + std::to_string(threads) + (compile ? "_flat" : "_ptr") +
         (quantize ? "_q" : ""));
    fs::remove_all(dir);
    serve::ModelRegistry registry(dir.string(), threads, compile, quantize);
    registry.publish_pipeline(*pipeline_, 0, 100);
    serve::EngineConfig config;
    config.alert_policy = policy();
    serve::ScoringEngine engine(registry, config);
    const serve::FleetReplayer replayer(*telemetry_);
    const auto report = replayer.replay(engine);
    engine.stop();
    EXPECT_EQ(report.engine.accepted, replayer.total_records());
    EXPECT_EQ(report.engine.shed, 0u);
    fs::remove_all(dir);
    return report.alerts;
  }

  static std::vector<sim::DriveTimeSeries>* telemetry_;
  static core::MfpaPipeline* pipeline_;
  static std::vector<core::Alert>* reference_;
  static std::map<std::uint64_t, DayIndex>* windows_;
};

std::vector<sim::DriveTimeSeries>* ServingParityTest::telemetry_ = nullptr;
core::MfpaPipeline* ServingParityTest::pipeline_ = nullptr;
std::vector<core::Alert>* ServingParityTest::reference_ = nullptr;
std::map<std::uint64_t, DayIndex>* ServingParityTest::windows_ = nullptr;

TEST_F(ServingParityTest, EngineAlertsMatchBatchReplay) {
  const auto reference = sorted_keys(*reference_);
  ASSERT_GT(reference.size(), 0u)
      << "degenerate scenario: reference raised no alerts";
  const auto served = sorted_keys(comparable(serve_alerts(1)));
  ASSERT_EQ(served.size(), reference.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].drive_id, reference[i].drive_id) << i;
    EXPECT_EQ(served[i].day, reference[i].day) << i;
    EXPECT_DOUBLE_EQ(served[i].score, reference[i].score) << i;
  }
}

// The registry compiles models into the flat-forest format by default, so
// this invariance run exercises compiled inference at every thread count.
TEST_F(ServingParityTest, AlertsIdenticalAcrossThreadCounts) {
  const auto t1 = sorted_keys(serve_alerts(1));
  const auto t4 = sorted_keys(serve_alerts(4));
  const auto t_hw = sorted_keys(serve_alerts(0));  // hardware concurrency
  ASSERT_GT(t1.size(), 0u);
  EXPECT_TRUE(t1 == t4);
  EXPECT_TRUE(t1 == t_hw);
}

// Flat-vs-pointer serving parity: disabling compilation must change
// nothing — same alerts, same days, bit-identical scores (AlertKey
// equality compares the score doubles exactly).
TEST_F(ServingParityTest, CompiledAndPointerEnginesIdentical) {
  const auto compiled = sorted_keys(serve_alerts(1, true));
  const auto pointer = sorted_keys(serve_alerts(1, false));
  ASSERT_GT(compiled.size(), 0u);
  EXPECT_TRUE(compiled == pointer);
  const auto compiled_mt = sorted_keys(serve_alerts(4, true));
  const auto pointer_mt = sorted_keys(serve_alerts(4, false));
  EXPECT_TRUE(compiled_mt == pointer_mt);
  EXPECT_TRUE(compiled == compiled_mt);
}

// Quantized serving parity: with --quantized activation the registry scores
// through the uint8-code QuantizedForest. The pipeline's forest is
// hist-trained, so compile() from its own thresholds is exact and the alert
// stream must equal the compiled (and pointer) engines' bit-for-bit —
// same drives, same days, same score doubles — at every thread count.
TEST_F(ServingParityTest, QuantizedEngineAlertStreamEquivalent) {
  const auto compiled = sorted_keys(serve_alerts(1, true, false));
  const auto quantized = sorted_keys(serve_alerts(1, true, true));
  ASSERT_GT(compiled.size(), 0u);
  EXPECT_TRUE(compiled == quantized);
  const auto quantized_mt = sorted_keys(serve_alerts(4, true, true));
  EXPECT_TRUE(compiled == quantized_mt);
  // Quantize-only activation (no flat compile) routes through the same
  // QuantizedForest and must be indistinguishable too.
  const auto quant_only = sorted_keys(serve_alerts(1, false, true));
  EXPECT_TRUE(compiled == quant_only);
}

}  // namespace
}  // namespace mfpa
