// Deterministic random number generation for simulation and ML.
//
// Everything in this repository that is stochastic draws from mfpa::Rng so
// that a single 64-bit seed reproduces an entire experiment bit-for-bit.
// The generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64;
// it is much faster than std::mt19937_64 and has no observable bias for the
// distributions used here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mfpa {

/// Deterministic pseudo-random generator with a small set of distribution
/// helpers. Copyable; copies continue independently from the same state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator state through SplitMix64 so that small/sequential
  /// seeds still produce well-distributed states.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;
  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;
  /// Exponential with given rate lambda > 0.
  double exponential(double lambda) noexcept;
  /// Poisson count with given mean >= 0 (Knuth for small, PTRS for large mean).
  int poisson(double mean) noexcept;
  /// Geometric number of failures before first success, p in (0,1].
  int geometric(double p) noexcept;
  /// Weibull with shape k > 0 and scale lambda > 0.
  double weibull(double shape, double scale) noexcept;
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Index in [0, weights.size()) sampled proportionally to `weights`
  /// (non-negative, not all zero).
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of an index range [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Samples k distinct indices from [0, n) without replacement (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derives an independent child generator (stable: depends only on the
  /// parent state at the call point and `stream`).
  Rng split(std::uint64_t stream) const noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mfpa
