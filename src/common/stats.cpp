#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mfpa::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double population_variance(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t n = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(
      t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

void Histogram::add_count(double x, std::size_t n) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(
      t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(i)] += n;
  total_ += n;
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Histogram::quantile: q outside [0,1]");
  }
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c == 0.0) continue;
    if (seen + c >= target) {
      const double frac = c == 0.0 ? 0.0 : std::max(0.0, target - seen) / c;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    seen += c;
  }
  return hi_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

}  // namespace mfpa::stats
