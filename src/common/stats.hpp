// Small descriptive-statistics helpers shared by the simulator, the ML
// library, and the experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mfpa::stats {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 values.
double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Population variance (n denominator); 0 for an empty span.
double population_variance(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts internally.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); values outside clamp into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  /// Adds `n` identical observations (merging pre-counted tallies).
  void add_count(double x, std::size_t n) noexcept;

  /// Value at quantile q in [0, 1], linearly interpolated inside the
  /// containing bin (the usual latency-histogram estimator: exact to one bin
  /// width). Returns lo for an empty histogram; values clamped into the edge
  /// bins report edge-bin positions. Throws on q outside [0, 1].
  double quantile(double q) const;

  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  /// Left edge of bin i.
  double bin_lo(std::size_t i) const noexcept;
  /// Right edge of bin i.
  double bin_hi(std::size_t i) const noexcept;
  const std::vector<std::size_t>& counts() const noexcept { return counts_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mfpa::stats
