#include "common/robustness.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/table_printer.hpp"

namespace mfpa {

void IngestStats::note(std::string diagnostic, std::size_t cap) {
  if (diagnostics.size() < cap) diagnostics.push_back(std::move(diagnostic));
}

void IngestStats::merge(const IngestStats& other, std::size_t diag_cap) {
  rows_read += other.rows_read;
  rows_repaired += other.rows_repaired;
  rows_dropped += other.rows_dropped;
  short_rows += other.short_rows;
  bad_cells += other.bad_cells;
  firmware_repairs += other.firmware_repairs;
  duplicate_days += other.duplicate_days;
  clock_rollbacks += other.clock_rollbacks;
  counter_resets_rebased += other.counter_resets_rebased;
  values_repaired += other.values_repaired;
  duplicate_drives += other.duplicate_drives;
  drives_quarantined += other.drives_quarantined;
  tickets_dropped += other.tickets_dropped;
  for (const auto& d : other.diagnostics) note(d, diag_cap);
}

std::size_t IngestStats::faults_total() const noexcept {
  return short_rows + bad_cells + firmware_repairs + duplicate_days +
         clock_rollbacks + counter_resets_rebased + values_repaired +
         duplicate_drives + drives_quarantined + tickets_dropped;
}

std::vector<std::pair<std::string, std::size_t>> IngestStats::counter_rows()
    const {
  std::vector<std::pair<std::string, std::size_t>> rows;
  const auto add = [&rows](const char* label, std::size_t count) {
    if (count > 0) rows.emplace_back(label, count);
  };
  add("short rows (truncated / dropped column)", short_rows);
  add("unparsable cells", bad_cells);
  add("malformed firmware strings", firmware_repairs);
  add("duplicate days", duplicate_days);
  add("clock rollbacks", clock_rollbacks);
  add("counter resets re-based", counter_resets_rebased);
  add("NaN / negative / saturated fields", values_repaired);
  add("duplicate drive ids", duplicate_drives);
  add("drives quarantined", drives_quarantined);
  add("tickets dropped", tickets_dropped);
  return rows;
}

std::string IngestStats::summary() const {
  std::string out = "rows " + std::to_string(rows_read) + " (repaired " +
                    std::to_string(rows_repaired) + ", dropped " +
                    std::to_string(rows_dropped) + "), faults " +
                    std::to_string(faults_total());
  if (drives_quarantined > 0) {
    out += ", quarantined drives " + std::to_string(drives_quarantined);
  }
  return out;
}

void IngestStats::save(std::ostream& os) const {
  os << "ingest_stats 1 " << rows_read << ' ' << rows_repaired << ' '
     << rows_dropped << ' ' << short_rows << ' ' << bad_cells << ' '
     << firmware_repairs << ' ' << duplicate_days << ' ' << clock_rollbacks
     << ' ' << counter_resets_rebased << ' ' << values_repaired << ' '
     << duplicate_drives << ' ' << drives_quarantined << ' ' << tickets_dropped
     << '\n';
  os << "diagnostics " << diagnostics.size() << '\n';
  for (const auto& d : diagnostics) {
    os << d.size() << ' ' << d << '\n';
  }
}

void IngestStats::load(std::istream& is) {
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "ingest_stats" || version != 1) {
    throw std::runtime_error("IngestStats: malformed header");
  }
  if (!(is >> rows_read >> rows_repaired >> rows_dropped >> short_rows >>
        bad_cells >> firmware_repairs >> duplicate_days >> clock_rollbacks >>
        counter_resets_rebased >> values_repaired >> duplicate_drives >>
        drives_quarantined >> tickets_dropped)) {
    throw std::runtime_error("IngestStats: truncated counters");
  }
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "diagnostics" || n > 10000) {
    throw std::runtime_error("IngestStats: malformed diagnostics count");
  }
  diagnostics.clear();
  diagnostics.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t len = 0;
    if (!(is >> len) || len > (1u << 20) || is.get() != ' ') {
      throw std::runtime_error("IngestStats: malformed diagnostic length");
    }
    std::string d(len, '\0');
    if (!is.read(d.data(), static_cast<std::streamsize>(len))) {
      throw std::runtime_error("IngestStats: truncated diagnostic");
    }
    diagnostics.push_back(std::move(d));
  }
}

void print_ingest_stats(const IngestStats& stats, std::ostream& os) {
  os << "ingest: " << stats.summary() << "\n";
  const auto rows = stats.counter_rows();
  if (!rows.empty()) {
    TablePrinter table({"fault", "count"});
    for (const auto& [label, count] : rows) {
      table.add_row({label, std::to_string(count)});
    }
    table.print(os);
  }
  if (!stats.diagnostics.empty()) {
    os << "sample diagnostics:\n";
    for (const auto& d : stats.diagnostics) os << "  " << d << "\n";
  }
}

}  // namespace mfpa
