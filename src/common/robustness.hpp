// Graceful-degradation policy shared by every telemetry consumer.
//
// Production consumer-storage telemetry is dirty by construction: agents
// retry uploads after lost ACKs (duplicate days), machine clocks roll back,
// firmware updates reset cumulative counters, and rows arrive truncated or
// with garbage cells. `RobustnessConfig` selects between failing fast on the
// first anomaly (strict — the right mode for simulator round-trips and CI)
// and repairing / dropping / quarantining with full accounting (lenient —
// the right mode for a deployed fleet). `IngestStats` is the structured
// report every ingestion path emits either way, so "how dirty was this
// batch" is a first-class output of the pipeline (see docs/ROBUSTNESS.md).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace mfpa {

enum class IngestMode {
  kStrict,   ///< throw on the first anomaly, with a located diagnostic
  kLenient,  ///< repair what is repairable, drop the rest, count everything
};

struct RobustnessConfig {
  IngestMode mode = IngestMode::kStrict;

  /// Lenient mode: re-base monotone SMART counters (power-on hours, power
  /// cycles, data units, media errors, error-log entries) after a reset so
  /// downstream deltas stay meaningful (effective = raw + sum of pre-reset
  /// plateaus).
  bool rebase_counter_resets = true;

  /// Lenient mode: replace NaN / negative / saturated fields with the last
  /// good value seen for that attribute (0 when there is none).
  bool repair_bad_values = true;

  /// Lenient mode: a drive whose sanitizer-dropped-row fraction exceeds this
  /// (once at least `min_records` rows were delivered) is quarantined —
  /// excluded from output entirely, with the drop recorded.
  double quarantine_bad_fraction = 0.5;

  /// Lenient mode: tickets whose IMT falls more than this many days outside
  /// the observed telemetry window are dropped before failure labeling.
  int ticket_window_slack_days = 45;

  /// Cap on the retained line-numbered diagnostic samples.
  std::size_t max_diagnostics = 20;

  bool lenient() const noexcept { return mode == IngestMode::kLenient; }
};

/// Structured accounting of one ingestion pass (CSV read, batch preprocess,
/// or streaming). All counters are additive; merge() combines reports from
/// sharded readers or per-drive streaming agents.
struct IngestStats {
  // Row-level accounting.
  std::size_t rows_read = 0;      ///< data rows / records delivered
  std::size_t rows_repaired = 0;  ///< kept after at least one field repair
  std::size_t rows_dropped = 0;   ///< discarded (unparsable or quarantine policy)

  // Per-fault-mode counters (each dropped/repaired row also increments the
  // matching cause below).
  std::size_t short_rows = 0;             ///< wrong arity: truncated / dropped column
  std::size_t bad_cells = 0;              ///< unparsable numeric field
  std::size_t firmware_repairs = 0;       ///< malformed firmware string, index reset
  std::size_t duplicate_days = 0;         ///< same day delivered again (retries)
  std::size_t clock_rollbacks = 0;        ///< day earlier than one already seen
  std::size_t counter_resets_rebased = 0; ///< monotone SMART counter re-based
  std::size_t values_repaired = 0;        ///< NaN / negative / saturated fields fixed
  std::size_t duplicate_drives = 0;       ///< repeated drive id in one batch
  std::size_t drives_quarantined = 0;     ///< drives dropped by the bad-fraction policy
  std::size_t tickets_dropped = 0;        ///< unparsable tickets or IMT out of window

  /// Capped sample of human-readable, line-numbered diagnostics.
  std::vector<std::string> diagnostics;

  /// Appends a diagnostic unless the cap is already reached.
  void note(std::string diagnostic, std::size_t cap);

  /// Adds `other` into this report (diagnostics capped at `diag_cap`).
  void merge(const IngestStats& other, std::size_t diag_cap = 20);

  /// Total anomalies observed (sum of the per-cause counters).
  std::size_t faults_total() const noexcept;

  bool clean() const noexcept { return faults_total() == 0; }

  /// (label, count) rows for table rendering; zero-count causes omitted.
  std::vector<std::pair<std::string, std::size_t>> counter_rows() const;

  /// One-line summary ("rows 1200 (repaired 3, dropped 2), faults: ...").
  std::string summary() const;

  /// Whitespace-tokenized serialization (used inside durable checkpoints;
  /// integrity is the enclosing format's job). Diagnostics are
  /// length-prefixed so embedded spaces survive the round trip.
  void save(std::ostream& os) const;
  void load(std::istream& is);
};

/// Renders the full report (summary, per-cause table, diagnostics) to `os`.
void print_ingest_stats(const IngestStats& stats, std::ostream& os);

}  // namespace mfpa
