#include "common/string_util.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace mfpa {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string format_with_commas(long long value) {
  const bool neg = value < 0;
  unsigned long long v = neg ? static_cast<unsigned long long>(-(value + 1)) + 1ULL
                             : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

std::string format_json_number(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mfpa
