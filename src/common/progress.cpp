#include "common/progress.hpp"

namespace mfpa {

void StageTimer::begin(const std::string& name) {
  if (open_) end();
  open_name_ = name;
  open_start_ = Clock::now();
  open_ = true;
}

void StageTimer::end(std::size_t items, std::size_t bytes) {
  if (!open_) return;
  const double secs =
      std::chrono::duration<double>(Clock::now() - open_start_).count();
  records_.push_back({open_name_, secs, items, bytes});
  open_ = false;
}

double StageTimer::total_seconds() const noexcept {
  double total = 0.0;
  for (const auto& r : records_) total += r.seconds;
  return total;
}

}  // namespace mfpa
