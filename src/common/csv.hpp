// Minimal CSV reading/writing (RFC 4180 quoting) used to export simulated
// telemetry and experiment results.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mfpa::csv {

/// Quotes a field if it contains a comma, quote, or newline.
std::string escape_field(std::string_view field);

/// Writes one CSV row (fields are escaped as needed).
void write_row(std::ostream& os, const std::vector<std::string>& fields);

/// Parses one CSV line into fields, honoring double-quote escaping.
/// Throws std::invalid_argument on an unterminated quoted field.
std::vector<std::string> parse_line(std::string_view line);

/// A fully materialized CSV document.
struct Document {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range if absent.
  std::size_t column_index(std::string_view name) const;
};

/// Reads a whole document from a stream; the first row is the header.
Document read(std::istream& is);

/// Reads a document from a file path; throws std::runtime_error if unreadable.
Document read_file(const std::string& path);

/// Writes a document (header + rows) to a stream.
void write(std::ostream& os, const Document& doc);

/// Writes a document to a file path; throws std::runtime_error on failure.
void write_file(const std::string& path, const Document& doc);

}  // namespace mfpa::csv
