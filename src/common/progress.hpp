// Wall-clock instrumentation for the overhead experiment (paper Fig. 20):
// per-stage timers with item counts and approximate working-set size.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace mfpa {

/// One completed pipeline stage measurement.
struct StageRecord {
  std::string name;
  double seconds = 0.0;
  std::size_t items = 0;        ///< data items processed by the stage
  std::size_t bytes = 0;        ///< approximate working-set size in bytes
};

/// Accumulates named stage timings. Not thread-safe; one per pipeline run.
class StageTimer {
 public:
  /// Starts timing a stage; implicitly finishes any open stage.
  void begin(const std::string& name);

  /// Finishes the open stage, recording item/byte counts.
  void end(std::size_t items = 0, std::size_t bytes = 0);

  const std::vector<StageRecord>& records() const noexcept { return records_; }

  /// Sum of all recorded stage durations.
  double total_seconds() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;
  std::vector<StageRecord> records_;
  std::string open_name_;
  Clock::time_point open_start_{};
  bool open_ = false;
};

}  // namespace mfpa
