#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace mfpa {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

int Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double l = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // large-mean background rates used in the simulator.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

int Rng::geometric(double p) noexcept {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return static_cast<int>(std::log(u) / std::log1p(-p));
}

double Rng::weibull(double shape, double scale) noexcept {
  assert(shape > 0.0 && scale > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm would be better for k << n; the simulator only uses
  // moderate k so a partial Fisher-Yates keeps the code simple.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    using std::swap;
    swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Mix the current state with the stream id; the child is independent of
  // subsequent draws from the parent.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 13) ^ (stream * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(s));
}

}  // namespace mfpa
