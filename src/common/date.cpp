#include "common/date.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace mfpa {
namespace {

// Day index of 2021-01-01 in the "days since civil epoch 1970-01-01" scale.
// Computed with the Howard Hinnant civil-days algorithm below.
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;                     // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr std::int64_t kEpochCivil = days_from_civil(2021, 1, 1);

void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);                    // [1, 31]
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));                         // [1, 12]
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

bool is_leap_year(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) noexcept {
  static constexpr std::array<int, 13> kDays = {0, 31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[static_cast<std::size_t>(month)];
}

CalendarDate to_calendar(DayIndex day) noexcept {
  CalendarDate out;
  civil_from_days(kEpochCivil + day, out.year, out.month, out.day);
  return out;
}

DayIndex to_day_index(const CalendarDate& date) noexcept {
  return static_cast<DayIndex>(days_from_civil(date.year, date.month, date.day) -
                               kEpochCivil);
}

std::string format_date(DayIndex day) {
  const CalendarDate c = to_calendar(day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

DayIndex parse_date(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || d > days_in_month(y, m)) {
    throw std::invalid_argument("parse_date: malformed date '" + text + "'");
  }
  return to_day_index({y, m, d});
}

int month_of(DayIndex day) noexcept {
  const CalendarDate c = to_calendar(day);
  return (c.year - 2021) * 12 + (c.month - 1);
}

}  // namespace mfpa
