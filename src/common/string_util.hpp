// String helpers used by CSV I/O, table printing, and the CLI parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mfpa {

/// Splits on a single-character delimiter; preserves empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

/// printf-style double formatting with fixed precision.
std::string format_double(double value, int precision = 4);

/// Formats a fraction as a percentage string, e.g. 0.9818 -> "98.18%".
std::string format_percent(double fraction, int precision = 2);

/// Formats an integer with thousands separators, e.g. 1001278 -> "1,001,278".
std::string format_with_commas(long long value);

/// Deterministic JSON number rendering: integral values print without a
/// fractional part, everything else as shortest-ish %.9g; non-finite values
/// (JSON has no NaN/Inf) print as 0. Shared by the metrics exporter and the
/// benchmark JSON writers.
std::string format_json_number(double value);

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view text);

}  // namespace mfpa
