// Day-index calendar used across the dataset and simulator.
//
// Consumer telemetry in the paper is collected at day granularity; all code
// in this repository represents time as an integer number of days since the
// observation epoch (2021-01-01, "day 0"). This header provides conversion
// to and from calendar dates for logs and CSV output only — arithmetic is
// always on the raw day index.
#pragma once

#include <cstdint>
#include <string>

namespace mfpa {

/// Days since the observation epoch (2021-01-01). May be negative for
/// manufacture dates that precede the observation window.
using DayIndex = std::int32_t;

/// A calendar date (proleptic Gregorian).
struct CalendarDate {
  int year = 2021;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend bool operator==(const CalendarDate&, const CalendarDate&) = default;
};

/// True if `year` is a Gregorian leap year.
bool is_leap_year(int year) noexcept;

/// Number of days in the given month (1..12) of `year`.
int days_in_month(int year, int month) noexcept;

/// Converts a day index to the corresponding calendar date.
CalendarDate to_calendar(DayIndex day) noexcept;

/// Converts a calendar date to its day index. Date fields must be valid.
DayIndex to_day_index(const CalendarDate& date) noexcept;

/// Formats as "YYYY-MM-DD".
std::string format_date(DayIndex day);

/// Parses "YYYY-MM-DD"; throws std::invalid_argument on malformed input.
DayIndex parse_date(const std::string& text);

/// Month bucket (0-based, relative to the epoch) containing `day`; used by
/// the time-period portability experiment to group predictions by month.
int month_of(DayIndex day) noexcept;

}  // namespace mfpa
