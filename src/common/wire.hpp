// Little-endian fixed-width byte packing shared by every binary format in
// the tree: the WAL / alert-log frames (serve/wal), the durable checkpoint
// images (serve/checkpoint), and the network ingestion protocol
// (net/protocol). The durable formats are host-local (written and recovered
// on the same machine) and the wire format is loopback-first, but pinning
// the byte order keeps each framing well-defined, portable across mixed
// client/server builds, and lets tests craft exact corruption.
//
// Writers append to a std::string (cheap, append-only, reusable buffer);
// ByteReader walks a payload with bounds checks and throws
// std::runtime_error naming the caller's context on a short or overlong
// payload — the shared "refuse, don't misparse" discipline.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace mfpa::wire {

inline void put_u16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v & 0xFF));
  buf.push_back(static_cast<char>((v >> 8) & 0xFF));
}

inline void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_i32(std::string& buf, std::int32_t v) {
  put_u32(buf, static_cast<std::uint32_t>(v));
}

inline void put_f32(std::string& buf, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(buf, bits);
}

inline void put_f64(std::string& buf, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(buf, bits);
}

/// Reads fixed-width little-endian values at an arbitrary byte offset
/// (no bounds check — the caller has already sized the buffer).
inline std::uint32_t read_u32_at(const char* bytes, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

inline std::uint64_t read_u64_at(const char* bytes, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

/// Sequential bounds-checked reader over one payload. `what` names the
/// payload kind in diagnostics ("wal record", "net frame", ...).
class ByteReader {
 public:
  ByteReader(const std::string& bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  std::uint16_t u16() { return static_cast<std::uint16_t>(u(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(u(4)); }
  std::uint64_t u64() { return u(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - off_; }

  void expect_done() const {
    if (off_ != bytes_.size()) {
      throw std::runtime_error(std::string(what_) + ": trailing payload bytes");
    }
  }

 private:
  std::uint64_t u(int n) {
    if (off_ + static_cast<std::size_t>(n) > bytes_.size()) {
      throw std::runtime_error(std::string(what_) + ": short payload");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[off_ + i]))
           << (8 * i);
    }
    off_ += static_cast<std::size_t>(n);
    return v;
  }

  const std::string& bytes_;
  const char* what_;
  std::size_t off_ = 0;
};

}  // namespace mfpa::wire
