// Aligned ASCII table output for the experiment harnesses, so every bench
// prints rows in the same shape as the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mfpa {

/// Collects rows of string cells and prints them column-aligned.
///
///   TablePrinter t({"Vendor", "TPR", "FPR"});
///   t.add_row({"I", "98.18%", "0.56%"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header separator and 2-space column gaps.
  void print(std::ostream& os) const;

  /// Renders to a string (for tests).
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner:  "=== title ===".
void print_section(std::ostream& os, const std::string& title);

}  // namespace mfpa
