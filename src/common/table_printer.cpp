#include "common/table_printer.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mfpa {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TablePrinter: header must be non-empty");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TablePrinter: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace mfpa
