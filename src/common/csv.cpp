#include "common/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mfpa::csv {

std::string escape_field(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_row(std::ostream& os, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os << ',';
    os << escape_field(fields[i]);
  }
  os << '\n';
}

std::vector<std::string> parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      current += c;
    }
    ++i;
  }
  if (in_quotes) {
    throw std::invalid_argument("csv: unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::size_t Document::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("csv: no column named '" + std::string(name) + "'");
}

Document read(std::istream& is) {
  Document doc;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty() && is.peek() == std::char_traits<char>::eof()) break;
    auto fields = parse_line(line);
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      doc.rows.push_back(std::move(fields));
    }
  }
  return doc;
}

Document read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open '" + path + "' for reading");
  return read(f);
}

void write(std::ostream& os, const Document& doc) {
  write_row(os, doc.header);
  for (const auto& row : doc.rows) write_row(os, row);
}

void write_file(const std::string& path, const Document& doc) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open '" + path + "' for writing");
  write(f, doc);
}

}  // namespace mfpa::csv
