// Per-drive health explanation — the paper's cited line of work on
// explaining disk-failure predictions (DFPE, MSST'19 [9]) applied to MFPA:
// when the model flags a drive, the deployment needs to tell the user *why*
// ("media errors climbing, 3 controller-error events this week") rather
// than ship a bare probability.
//
// The explanation is model-agnostic: each feature's observed value is
// contrasted with the healthy-population distribution learned at training
// time (robust z-score against median/MAD), and the most anomalous features
// are reported with human-readable descriptions.
#pragma once

#include <string>
#include <vector>

#include "core/preprocess.hpp"
#include "core/sample_builder.hpp"
#include "data/dataset.hpp"

namespace mfpa::core {

/// One contributing feature in an explanation.
struct FeatureFinding {
  std::string feature;      ///< "S_14", "W_11", ...
  std::string description;  ///< catalog text
  double value = 0.0;       ///< observed value
  double healthy_median = 0.0;
  double severity = 0.0;    ///< robust z-score vs the healthy population
};

/// The full explanation of one scored observation.
struct HealthReport {
  std::uint64_t drive_id = 0;
  DayIndex day = 0;
  double risk_score = 0.0;
  std::vector<FeatureFinding> findings;  ///< sorted by descending severity

  /// Renders a short human-readable summary.
  std::string to_string() const;
};

/// Learns the healthy feature distribution and explains flagged samples.
class HealthExplainer {
 public:
  /// Fits the healthy reference from a labeled dataset (rows with y == 0).
  /// Feature names must be set. Throws std::invalid_argument when there are
  /// fewer than 8 healthy rows.
  void fit(const data::Dataset& reference);

  bool fitted() const noexcept { return !medians_.empty(); }

  /// Explains one feature row (same layout as the reference dataset).
  /// `top_k` limits the findings; features below `min_severity` are omitted.
  HealthReport explain(std::span<const double> features,
                       std::uint64_t drive_id, DayIndex day, double risk_score,
                       std::size_t top_k = 5,
                       double min_severity = 2.0) const;

  const std::vector<std::string>& feature_names() const noexcept {
    return names_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<double> medians_;
  std::vector<double> mads_;  ///< median absolute deviation (scaled)
};

/// Human-readable description of a feature name ("S_14" -> Table II text,
/// "W_11"/"B_50" -> event catalog text, "F" -> firmware).
std::string describe_feature(const std::string& name);

}  // namespace mfpa::core
