// System-availability accounting — the paper's end goal ("proactive fault
// tolerance mechanisms can anticipate failures and migrate data and services
// out of the unhealthy storage drives, which can reduce downtime costs and
// significantly improve system availability").
//
// Given the ground-truth failure times and the alerts a predictor raised,
// this module scores each failing drive's outcome:
//   * predicted with enough lead time  -> planned migration: short downtime,
//     no data loss;
//   * predicted too late (< lead time) -> rushed swap: medium downtime;
//   * missed                           -> unplanned failure: long downtime
//     (reinstall + data recovery) and possible data loss.
// False alarms on healthy drives cost a needless maintenance visit each.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/date.hpp"

namespace mfpa::core {

/// Downtime/risk parameters of one deployment (hours per event).
struct AvailabilityParams {
  double planned_swap_hours = 1.0;     ///< backup done ahead, quick swap
  double rushed_swap_hours = 6.0;      ///< backup under pressure
  double unplanned_outage_hours = 48.0;///< reinstall, recovery attempts
  double false_alarm_hours = 0.5;      ///< needless check/backup visit
  int required_lead_days = 2;          ///< warning needed to plan the swap
  double data_loss_probability = 0.4;  ///< when a failure strikes unwarned
};

/// One failing drive's adjudicated outcome.
enum class FailureHandling { kPlanned, kRushed, kMissed };

struct AvailabilityOutcome {
  std::size_t failures = 0;
  std::size_t planned = 0;
  std::size_t rushed = 0;
  std::size_t missed = 0;
  std::size_t false_alarms = 0;          ///< healthy drives alerted
  double downtime_hours = 0.0;           ///< total across the fleet
  double expected_data_loss_events = 0.0;

  double downtime_per_failure() const noexcept {
    return failures ? downtime_hours / static_cast<double>(failures) : 0.0;
  }
};

/// Minimal alert record: drive id + first alert day.
struct FirstAlert {
  std::uint64_t drive_id = 0;
  DayIndex day = 0;
};

/// Ground truth for adjudication: failing drives and their failure days.
using FailureDays = std::unordered_map<std::uint64_t, DayIndex>;

/// Scores a prediction run. `alerts` may contain at most one entry per
/// drive (use the earliest alert); alerts on drives absent from `failures`
/// count as false alarms. `healthy_population` is the number of healthy
/// drives monitored (for context in the outcome).
AvailabilityOutcome evaluate_availability(const std::vector<FirstAlert>& alerts,
                                          const FailureDays& failures,
                                          const AvailabilityParams& params = {});

/// The reactive baseline: nobody is warned; every failure is unplanned.
AvailabilityOutcome reactive_baseline(std::size_t failure_count,
                                      const AvailabilityParams& params = {});

}  // namespace mfpa::core
