#include "core/failure_time.hpp"

#include <algorithm>
#include <cstdlib>

namespace mfpa::core {

std::optional<IdentifiedFailure> FailureTimeIdentifier::identify(
    const sim::TroubleTicket& ticket, const ProcessedDrive& drive) const {
  if (drive.records.empty()) return std::nullopt;

  // Closest tracking point not after the IMT (records are sorted by day).
  const auto it = std::upper_bound(
      drive.records.begin(), drive.records.end(), ticket.imt,
      [](DayIndex day, const ProcessedRecord& r) { return day < r.day; });

  IdentifiedFailure out;
  out.drive_id = ticket.drive_id;
  out.imt = ticket.imt;
  if (it != drive.records.begin()) {
    const ProcessedRecord& last_before = *(it - 1);
    const DayIndex ti = ticket.imt - last_before.day;
    if (ti <= theta_) {
      out.labeled_failure_day = last_before.day;
      out.anchored_to_record = true;
      return out;
    }
  }
  out.labeled_failure_day = ticket.imt - theta_;
  out.anchored_to_record = false;
  return out;
}

std::unordered_map<std::uint64_t, IdentifiedFailure>
FailureTimeIdentifier::identify_all(
    const std::vector<sim::TroubleTicket>& tickets,
    const std::vector<ProcessedDrive>& drives) const {
  std::unordered_map<std::uint64_t, const ProcessedDrive*> by_id;
  by_id.reserve(drives.size());
  for (const auto& d : drives) by_id.emplace(d.drive_id, &d);

  std::unordered_map<std::uint64_t, IdentifiedFailure> out;
  for (const auto& ticket : tickets) {
    const auto it = by_id.find(ticket.drive_id);
    if (it == by_id.end()) continue;
    if (auto labeled = identify(ticket, *it->second)) {
      out.emplace(ticket.drive_id, *labeled);
    }
  }
  return out;
}

}  // namespace mfpa::core
