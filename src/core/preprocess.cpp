#include "core/preprocess.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/robust_ingest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/catalog.hpp"

namespace mfpa::core {

std::string firmware_version_string(int vendor, unsigned firmware_index) {
  const auto& cfg = sim::vendor_catalog().at(static_cast<std::size_t>(vendor));
  if (firmware_index < cfg.firmware.size()) {
    return cfg.firmware[firmware_index].version;
  }
  // Post-catalog release (drift): synthesize the next name in the vendor's
  // chronological convention.
  return cfg.name + "_F_" + std::to_string(firmware_index + 1);
}

ProcessedDrive Preprocessor::process_drive(const sim::DriveTimeSeries& series,
                                           IngestStats* ingest) const {
  if (!config_.robustness.lenient()) return process_well_formed(series);

  // Lenient path: sanitize in delivery order (duplicate/rollback drops,
  // value repair, counter-reset re-basing), then run the unchanged gap
  // policy over the now well-formed sequence.
  RecordSanitizer sanitizer(config_.robustness);
  sim::DriveTimeSeries repaired;
  repaired.drive_id = series.drive_id;
  repaired.vendor = series.vendor;
  repaired.model = series.model;
  repaired.failed = series.failed;
  repaired.failure_day = series.failure_day;
  repaired.records.reserve(series.records.size());
  for (const auto& raw : series.records) {
    if (auto rec = sanitizer.sanitize(raw)) {
      repaired.records.push_back(*rec);
    }
  }
  const bool quarantined =
      sanitizer.quarantined(static_cast<std::size_t>(config_.min_records));
  if (quarantined) {
    obs::registry().counter("mfpa_ingest_drives_quarantined_total").inc();
  }
  if (ingest != nullptr) {
    ingest->merge(sanitizer.stats(), config_.robustness.max_diagnostics);
    if (quarantined) {
      ++ingest->drives_quarantined;
      ingest->note("drive " + std::to_string(series.drive_id) +
                       ": quarantined (" +
                       std::to_string(sanitizer.stats().rows_dropped) + "/" +
                       std::to_string(sanitizer.stats().rows_read) +
                       " records dropped)",
                   config_.robustness.max_diagnostics);
    }
  }
  if (quarantined) {
    ProcessedDrive out;
    out.drive_id = series.drive_id;
    out.vendor = series.vendor;
    out.model = series.model;
    out.failed = series.failed;
    out.failure_day = series.failure_day;
    out.dropped_records = series.records.size();
    return out;
  }
  ProcessedDrive out = process_well_formed(repaired);
  out.dropped_records += series.records.size() - repaired.records.size();
  return out;
}

ProcessedDrive Preprocessor::process_well_formed(
    const sim::DriveTimeSeries& series) const {
  ProcessedDrive out;
  out.drive_id = series.drive_id;
  out.vendor = series.vendor;
  out.model = series.model;
  out.failed = series.failed;
  out.failure_day = series.failure_day;
  if (series.records.empty()) return out;

  // 1. Split into segments at long gaps.
  std::vector<std::pair<std::size_t, std::size_t>> segments;  // [lo, hi)
  std::size_t lo = 0;
  for (std::size_t i = 1; i < series.records.size(); ++i) {
    const int gap = series.records[i].day - series.records[i - 1].day;
    if (gap >= config_.drop_gap) {
      segments.emplace_back(lo, i);
      lo = i;
    }
  }
  segments.emplace_back(lo, series.records.size());

  // 2. Keep only the most recent segment that is long enough to be usable
  // ("remove the data with a long interval", §III-C(1)); everything before
  // it is dropped. Cumulative W/B counters run across the kept sequence.
  std::array<double, sim::kNumWindowsEvents> w_cum{};
  std::array<double, sim::kNumBsodCodes> b_cum{};

  auto to_processed = [&](const sim::DailyRecord& raw) {
    ProcessedRecord rec;
    rec.day = raw.day;
    for (std::size_t a = 0; a < sim::kNumSmartAttrs; ++a) {
      rec.smart[a] = static_cast<double>(raw.smart[a]);
    }
    rec.firmware = firmware_version_string(series.vendor, raw.firmware_index);
    for (std::size_t i = 0; i < sim::kNumWindowsEvents; ++i) {
      w_cum[i] += static_cast<double>(raw.w[i]);
    }
    for (std::size_t i = 0; i < sim::kNumBsodCodes; ++i) {
      b_cum[i] += static_cast<double>(raw.b[i]);
    }
    rec.w_cum = w_cum;
    rec.b_cum = b_cum;
    return rec;
  };

  // Pick the last segment meeting the minimum-length requirement.
  std::size_t chosen = segments.size();
  for (std::size_t s = segments.size(); s-- > 0;) {
    if (segments[s].second - segments[s].first >=
        static_cast<std::size_t>(config_.min_records)) {
      chosen = s;
      break;
    }
  }
  if (chosen == segments.size()) {
    out.dropped_records = series.records.size();
    return out;
  }
  out.dropped_records = segments[chosen].first +
                        (series.records.size() - segments[chosen].second);

  const auto [seg_lo, seg_hi] = segments[chosen];
  for (std::size_t i = seg_lo; i < seg_hi; ++i) {
    const auto& raw = series.records[i];
    // 3. Short-gap repair: synthesize records for missing days between the
    // previous kept record and this one when the gap is small.
    if (!out.records.empty()) {
      const ProcessedRecord prev = out.records.back();  // copy: loop reallocates
      const int gap = raw.day - prev.day;
      if (gap >= 2 && gap <= config_.fill_gap) {
        // Interpolated SMART; cumulative W/B advance linearly toward the
        // values they will reach at this record.
        ProcessedRecord next_actual = to_processed(raw);
        for (int d = 1; d < gap; ++d) {
          const double t = static_cast<double>(d) / static_cast<double>(gap);
          ProcessedRecord fill;
          fill.day = prev.day + d;
          fill.synthetic = true;
          fill.firmware = prev.firmware;
          for (std::size_t a = 0; a < sim::kNumSmartAttrs; ++a) {
            fill.smart[a] =
                prev.smart[a] + t * (next_actual.smart[a] - prev.smart[a]);
          }
          for (std::size_t w = 0; w < sim::kNumWindowsEvents; ++w) {
            fill.w_cum[w] =
                prev.w_cum[w] + t * (next_actual.w_cum[w] - prev.w_cum[w]);
          }
          for (std::size_t b = 0; b < sim::kNumBsodCodes; ++b) {
            fill.b_cum[b] =
                prev.b_cum[b] + t * (next_actual.b_cum[b] - prev.b_cum[b]);
          }
          out.records.push_back(std::move(fill));
        }
        out.records.push_back(std::move(next_actual));
        continue;
      }
    }
    out.records.push_back(to_processed(raw));
  }
  return out;
}

std::vector<ProcessedDrive> Preprocessor::process(
    const std::vector<sim::DriveTimeSeries>& batch,
    PreprocessStats* stats, IngestStats* ingest) const {
  obs::ScopedSpan span("ingest.batch");
  obs::ScopedTimer batch_timer(
      obs::registry().histogram("mfpa_ingest_batch_seconds", 0.0, 60.0, 256));
  PreprocessStats local;
  IngestStats local_ingest;
  const bool lenient = config_.robustness.lenient();
  std::unordered_set<std::uint64_t> seen_ids;
  std::vector<ProcessedDrive> out;
  out.reserve(batch.size());
  for (const auto& series : batch) {
    ++local.drives_in;
    local.records_in += series.records.size();
    if (lenient && !seen_ids.insert(series.drive_id).second) {
      // A repeated drive id in one batch is an upload-path bug (or an
      // injected fault); the first occurrence wins.
      ++local_ingest.duplicate_drives;
      local_ingest.rows_read += series.records.size();
      local_ingest.rows_dropped += series.records.size();
      local_ingest.note("drive " + std::to_string(series.drive_id) +
                            ": duplicate series dropped",
                        config_.robustness.max_diagnostics);
      local.records_dropped += series.records.size();
      continue;
    }
    // Long-gap accounting for the discontinuity experiment.
    for (std::size_t i = 1; i < series.records.size(); ++i) {
      if (series.records[i].day - series.records[i - 1].day >=
          config_.drop_gap) {
        ++local.long_gaps;
      }
    }
    ProcessedDrive drive = process_drive(series, &local_ingest);
    local.records_dropped += drive.dropped_records;
    std::size_t real_records = 0;
    for (const auto& r : drive.records) {
      r.synthetic ? ++local.records_filled : ++real_records;
    }
    if (real_records < static_cast<std::size_t>(config_.min_records)) {
      continue;  // unusable drive (like F3 in the paper's Fig. 6)
    }
    local.records_out += drive.records.size();
    ++local.drives_out;
    out.push_back(std::move(drive));
  }
  if (stats != nullptr) *stats = local;
  if (ingest != nullptr) {
    ingest->merge(local_ingest, config_.robustness.max_diagnostics);
  }
  return out;
}

data::LabelEncoder Preprocessor::fit_firmware_encoder(
    const std::vector<ProcessedDrive>& drives) {
  data::LabelEncoder encoder;
  std::vector<std::string> versions;
  for (const auto& d : drives) {
    for (const auto& r : d.records) versions.push_back(r.firmware);
  }
  encoder.fit(versions);
  return encoder;
}

}  // namespace mfpa::core
