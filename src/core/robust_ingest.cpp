#include "core/robust_ingest.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <type_traits>

#include "ml/serialize.hpp"

namespace mfpa::core {
namespace {

/// A SMART float at/above this is a saturated/overflowed upload, not data
/// (the largest legitimate counter in the catalog is orders of magnitude
/// smaller).
constexpr float kSaturationThreshold = 1e30f;

bool bad_smart_value(float v) noexcept {
  return !std::isfinite(v) || v < 0.0f || v >= kSaturationThreshold;
}

}  // namespace

const std::array<sim::SmartAttr, 6>& monotone_smart_attrs() noexcept {
  static const std::array<sim::SmartAttr, 6> kAttrs = {
      sim::SmartAttr::kPowerOnHours,  sim::SmartAttr::kPowerCycles,
      sim::SmartAttr::kDataUnitsRead, sim::SmartAttr::kDataUnitsWritten,
      sim::SmartAttr::kMediaErrors,   sim::SmartAttr::kErrorLogEntries,
  };
  return kAttrs;
}

RecordSanitizer::RecordSanitizer(RobustnessConfig config) : config_(config) {
  auto& reg = obs::registry();
  metrics_.records = &reg.counter("mfpa_ingest_records_total");
  metrics_.rows_repaired = &reg.counter("mfpa_ingest_rows_repaired_total");
  metrics_.rows_dropped = &reg.counter("mfpa_ingest_rows_dropped_total");
  metrics_.duplicate_days =
      &reg.counter("mfpa_ingest_faults_total", {{"cause", "duplicate_day"}});
  metrics_.clock_rollbacks =
      &reg.counter("mfpa_ingest_faults_total", {{"cause", "clock_rollback"}});
  metrics_.counter_resets = &reg.counter(
      "mfpa_ingest_faults_total", {{"cause", "counter_reset_rebased"}});
  metrics_.values_repaired =
      &reg.counter("mfpa_ingest_faults_total", {{"cause", "value_repaired"}});
}

void RecordSanitizer::reset() {
  stats_ = IngestStats{};
  last_day_.reset();
  last_raw_.fill(0.0f);
  rebase_offset_.fill(0.0);
  last_good_.fill(0.0f);
}

bool RecordSanitizer::quarantined(std::size_t min_delivered) const noexcept {
  return config_.lenient() && stats_.rows_read >= min_delivered &&
         static_cast<double>(stats_.rows_dropped) >
             config_.quarantine_bad_fraction *
                 static_cast<double>(stats_.rows_read);
}

std::optional<sim::DailyRecord> RecordSanitizer::sanitize(
    const sim::DailyRecord& raw) {
  ++stats_.rows_read;
  metrics_.records->inc();

  // Day-order policy. Strict keeps the historical fail-fast contract;
  // lenient treats a re-delivered day as an idempotent retry and a rollback
  // as clock skew, dropping the record either way.
  if (last_day_.has_value() && raw.day <= *last_day_) {
    if (!config_.lenient()) {
      throw std::invalid_argument(
          "records must arrive in strictly increasing day order (day " +
          std::to_string(raw.day) + " after day " + std::to_string(*last_day_) +
          ")");
    }
    ++stats_.rows_dropped;
    metrics_.rows_dropped->inc();
    if (raw.day == *last_day_) {
      ++stats_.duplicate_days;
      metrics_.duplicate_days->inc();
      stats_.note("day " + std::to_string(raw.day) + ": duplicate upload",
                  config_.max_diagnostics);
    } else {
      ++stats_.clock_rollbacks;
      metrics_.clock_rollbacks->inc();
      stats_.note("day " + std::to_string(raw.day) + ": clock rollback past " +
                      std::to_string(*last_day_),
                  config_.max_diagnostics);
    }
    return std::nullopt;
  }
  last_day_ = raw.day;
  if (!config_.lenient()) return raw;

  sim::DailyRecord rec = raw;
  const std::size_t values_before = stats_.values_repaired;
  bool repaired = false;

  // Monotone counters first: re-base resets on the raw scale, then repair
  // garbage on the effective scale so output stays monotone.
  std::array<bool, sim::kNumSmartAttrs> handled{};
  if (config_.rebase_counter_resets) {
    const auto& monotone = monotone_smart_attrs();
    for (std::size_t m = 0; m < monotone.size(); ++m) {
      const auto a = static_cast<std::size_t>(monotone[m]);
      handled[a] = true;
      float& v = rec.smart[a];
      if (config_.repair_bad_values && bad_smart_value(v)) {
        v = last_good_[a];
        ++stats_.values_repaired;
        repaired = true;
        continue;  // a garbage value must not shift the re-basing state
      }
      if (v + 1e-3f < last_raw_[m]) {
        // Counter restarted (firmware update / controller reset): carry the
        // pre-reset total forward so deltas stay meaningful.
        rebase_offset_[m] += static_cast<double>(last_raw_[m]);
        ++stats_.counter_resets_rebased;
        metrics_.counter_resets->inc();
        stats_.note("day " + std::to_string(rec.day) + ": counter reset (" +
                        sim::smart_attr_names()[a] + " " +
                        std::to_string(last_raw_[m]) + " -> " +
                        std::to_string(v) + "), re-based",
                    config_.max_diagnostics);
        repaired = true;
      }
      last_raw_[m] = v;
      v = static_cast<float>(static_cast<double>(v) + rebase_offset_[m]);
      last_good_[a] = v;
    }
  }

  if (config_.repair_bad_values) {
    for (std::size_t a = 0; a < sim::kNumSmartAttrs; ++a) {
      if (handled[a]) continue;
      float& v = rec.smart[a];
      if (bad_smart_value(v)) {
        v = last_good_[a];
        ++stats_.values_repaired;
        repaired = true;
      } else {
        last_good_[a] = v;
      }
    }
    // Saturated daily event counts are transport artifacts, not activity:
    // zero them rather than pollute the cumulative W/B features.
    for (auto& v : rec.w) {
      if (v == std::numeric_limits<std::uint16_t>::max()) {
        v = 0;
        ++stats_.values_repaired;
        repaired = true;
      }
    }
    for (auto& v : rec.b) {
      if (v == std::numeric_limits<std::uint16_t>::max()) {
        v = 0;
        ++stats_.values_repaired;
        repaired = true;
      }
    }
  }

  metrics_.values_repaired->inc(stats_.values_repaired - values_before);
  if (repaired) {
    ++stats_.rows_repaired;
    metrics_.rows_repaired->inc();
  }
  return rec;
}

void RecordSanitizer::save_state(std::ostream& os) const {
  os << "sanitizer 1\n";
  stats_.save(os);
  os << "last_day " << (last_day_.has_value() ? 1 : 0) << ' '
     << (last_day_.has_value() ? *last_day_ : 0) << '\n';
  const auto write_array = [&os](const char* tag, const auto& values) {
    os << tag << ' ' << values.size();
    for (const auto v : values) {
      os << ' ';
      ml::io::write_double(os, static_cast<double>(v));
    }
    os << '\n';
  };
  write_array("last_raw", last_raw_);
  write_array("rebase_offset", rebase_offset_);
  write_array("last_good", last_good_);
}

void RecordSanitizer::load_state(std::istream& is) {
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "sanitizer" || version != 1) {
    throw std::runtime_error("RecordSanitizer: malformed state header");
  }
  stats_.load(is);
  int has = 0;
  DayIndex day = 0;
  if (!(is >> tag >> has >> day) || tag != "last_day") {
    throw std::runtime_error("RecordSanitizer: malformed last_day");
  }
  last_day_ = has ? std::optional<DayIndex>(day) : std::nullopt;
  const auto read_array = [&is](const char* expect_tag, auto& values) {
    std::string t;
    std::size_t n = 0;
    if (!(is >> t >> n) || t != expect_tag || n != values.size()) {
      throw std::runtime_error(std::string("RecordSanitizer: malformed ") +
                               expect_tag);
    }
    for (auto& v : values) {
      v = static_cast<std::decay_t<decltype(v)>>(ml::io::read_double(is));
    }
  };
  read_array("last_raw", last_raw_);
  read_array("rebase_offset", rebase_offset_);
  read_array("last_good", last_good_);
}

}  // namespace mfpa::core
