#include "core/health_report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"
#include "sim/catalog.hpp"

namespace mfpa::core {
namespace {

double median_of(std::vector<double> values) {
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

}  // namespace

std::string describe_feature(const std::string& name) {
  if (name == "F") return "FirmwareVersion (label-encoded)";
  if (name.rfind("S_", 0) == 0) {
    const auto idx = std::stoul(name.substr(2));
    if (idx >= 1 && idx <= sim::kNumSmartAttrs) {
      return sim::smart_attr_descriptions()[idx - 1];
    }
  }
  if (name.rfind("W_", 0) == 0) {
    const int id = std::stoi(name.substr(2));
    return sim::windows_event_types()[sim::windows_event_index(id)].description;
  }
  if (name.rfind("B_", 0) == 0) {
    for (const auto& code : sim::bsod_code_types()) {
      if (code.name == name) return code.description;
    }
  }
  return name;
}

std::string HealthReport::to_string() const {
  std::ostringstream ss;
  ss << "drive " << drive_id << " @ " << format_date(day) << ": risk "
     << format_double(risk_score, 3);
  if (findings.empty()) {
    ss << " (no single feature stands out)";
    return ss.str();
  }
  ss << "\n";
  for (const auto& f : findings) {
    ss << "  - " << f.feature << " = " << format_double(f.value, 1)
       << " (healthy median " << format_double(f.healthy_median, 1)
       << ", severity " << format_double(f.severity, 1) << "): "
       << f.description << "\n";
  }
  return ss.str();
}

void HealthExplainer::fit(const data::Dataset& reference) {
  if (reference.feature_names.empty()) {
    throw std::invalid_argument("HealthExplainer: dataset lacks feature names");
  }
  std::vector<std::size_t> healthy_rows;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference.y[i] == 0) healthy_rows.push_back(i);
  }
  if (healthy_rows.size() < 8) {
    throw std::invalid_argument("HealthExplainer: need >= 8 healthy rows");
  }
  names_ = reference.feature_names;
  const std::size_t d = reference.num_features();
  medians_.assign(d, 0.0);
  mads_.assign(d, 1.0);
  std::vector<double> column(healthy_rows.size());
  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t k = 0; k < healthy_rows.size(); ++k) {
      column[k] = reference.X(healthy_rows[k], c);
    }
    medians_[c] = median_of(column);
    for (auto& v : column) v = std::abs(v - medians_[c]);
    // 1.4826 * MAD estimates sigma for Gaussian data. Count-like features
    // are often constant (MAD = 0) in a healthy population; flooring the
    // scale at one unit makes their severity read as "events above the
    // healthy median" instead of exploding.
    mads_[c] = std::max(1.4826 * median_of(column), 1.0);
  }
}

HealthReport HealthExplainer::explain(std::span<const double> features,
                                      std::uint64_t drive_id, DayIndex day,
                                      double risk_score, std::size_t top_k,
                                      double min_severity) const {
  if (!fitted()) throw std::logic_error("HealthExplainer: explain before fit");
  if (features.size() != medians_.size()) {
    throw std::invalid_argument("HealthExplainer: feature arity mismatch");
  }
  HealthReport report;
  report.drive_id = drive_id;
  report.day = day;
  report.risk_score = risk_score;
  for (std::size_t c = 0; c < features.size(); ++c) {
    // Only *elevations* are symptoms: counters and temperatures going up.
    // (Available Spare falls when failing, so its deviation is inverted.)
    double severity = (features[c] - medians_[c]) / mads_[c];
    if (names_[c] == "S_3") severity = -severity;  // spare depletion
    if (severity < min_severity) continue;
    report.findings.push_back({names_[c], describe_feature(names_[c]),
                               features[c], medians_[c], severity});
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const FeatureFinding& a, const FeatureFinding& b) {
              return a.severity > b.severity;
            });
  if (report.findings.size() > top_k) report.findings.resize(top_k);
  return report;
}

}  // namespace mfpa::core
