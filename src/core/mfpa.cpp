#include "core/mfpa.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "ml/cross_validation.hpp"
#include "ml/factory.hpp"
#include "ml/sampler.hpp"

namespace mfpa::core {

MfpaPipeline::MfpaPipeline(MfpaConfig config) : config_(std::move(config)) {
  if (config_.train_fraction <= 0.0 || config_.train_fraction >= 1.0) {
    throw std::invalid_argument("MfpaPipeline: train_fraction must be in (0,1)");
  }
}

SampleConfig MfpaPipeline::make_sample_config() const {
  SampleConfig sc;
  sc.group = config_.group;
  sc.positive_window = config_.positive_window;
  sc.lookahead = config_.lookahead;
  sc.neg_per_pos = config_.neg_per_pos;
  sc.sequences = wants_sequences();
  sc.seq_len = config_.seq_len;
  sc.include_deltas = config_.include_deltas && !wants_sequences();
  sc.delta_days = config_.delta_days;
  sc.seed = config_.seed;
  return sc;
}

MfpaReport MfpaPipeline::run(const std::vector<sim::DriveTimeSeries>& telemetry,
                             const std::vector<sim::TroubleTicket>& tickets) {
  MfpaReport report;
  StageTimer timer;

  // Stage 1: vendor filter + preprocessing.
  timer.begin("preprocess");
  std::vector<sim::DriveTimeSeries> filtered;
  const std::vector<sim::DriveTimeSeries>* input = &telemetry;
  if (config_.vendor >= 0) {
    filtered.reserve(telemetry.size());
    for (const auto& s : telemetry) {
      if (s.vendor == config_.vendor) filtered.push_back(s);
    }
    input = &filtered;
  }
  const Preprocessor preprocessor(config_.preprocess);
  const auto drives = preprocessor.process(*input, &report.preprocess_stats,
                                           &report.ingest_stats);
  std::size_t raw_records = 0;
  for (const auto& s : *input) raw_records += s.records.size();
  timer.end(raw_records, raw_records * sizeof(sim::DailyRecord));
  if (drives.empty()) {
    throw std::runtime_error("MfpaPipeline: no usable drives after preprocessing");
  }

  // Observation window of the cleaned batch (used for the timepoint split
  // and for lenient ticket filtering).
  DayIndex day_lo = std::numeric_limits<DayIndex>::max();
  DayIndex day_hi = std::numeric_limits<DayIndex>::min();
  for (const auto& d : drives) {
    if (d.records.empty()) continue;
    day_lo = std::min(day_lo, d.records.front().day);
    day_hi = std::max(day_hi, d.records.back().day);
  }

  // Stage 2: failure-time identification from tickets. Lenient mode drops
  // tickets whose IMT sits far outside the observation window (a wrong
  // timestamp cannot be theta-matched to any tracking point and would only
  // distort labeling).
  timer.begin("failure_labeling");
  const RobustnessConfig& robustness = config_.preprocess.robustness;
  std::vector<sim::TroubleTicket> kept_tickets;
  const std::vector<sim::TroubleTicket>* ticket_input = &tickets;
  if (robustness.lenient()) {
    const DayIndex slack = robustness.ticket_window_slack_days;
    kept_tickets.reserve(tickets.size());
    for (const auto& t : tickets) {
      if (t.imt < day_lo - slack || t.imt > day_hi + slack) {
        ++report.ingest_stats.tickets_dropped;
        report.ingest_stats.note(
            "ticket for drive " + std::to_string(t.drive_id) + ": IMT day " +
                std::to_string(t.imt) + " outside observation window [" +
                std::to_string(day_lo) + ", " + std::to_string(day_hi) + "]",
            robustness.max_diagnostics);
        continue;
      }
      kept_tickets.push_back(t);
    }
    ticket_input = &kept_tickets;
  }
  const FailureTimeIdentifier identifier(config_.theta);
  const auto failures = identifier.identify_all(*ticket_input, drives);
  timer.end(ticket_input->size(),
            ticket_input->size() * sizeof(sim::TroubleTicket));

  const DayIndex split_day =
      day_lo + static_cast<DayIndex>(
                   static_cast<double>(day_hi - day_lo) * config_.train_fraction);
  report.split_day = split_day;

  // Stage 3: firmware label encoding — fit on the training period only so a
  // deployed model meets genuinely unseen versions in later months.
  timer.begin("feature_engineering");
  std::vector<std::string> train_versions;
  for (const auto& d : drives) {
    for (const auto& r : d.records) {
      if (r.day <= split_day) train_versions.push_back(r.firmware);
    }
  }
  fw_encoder_.fit(train_versions);

  // Stage 4: sample construction.
  const SampleBuilder builder(make_sample_config(), &fw_encoder_);
  data::Dataset all = builder.build(drives, failures);
  std::size_t feature_values = all.size() * all.num_features();
  timer.end(all.size(), feature_values * sizeof(double));
  if (all.positives() == 0) {
    throw std::runtime_error("MfpaPipeline: no positive samples built");
  }

  // Stage 5: segmentation (timepoint-based by default; optional random
  // split to reproduce the paper's Fig. 8 comparison).
  timer.begin("segmentation");
  data::Dataset train, test;
  if (config_.time_split) {
    auto [tr, te] = all.split_by_day(split_day);
    train = std::move(tr);
    test = std::move(te);
  } else {
    Rng rng(config_.seed);
    auto order = rng.permutation(all.size());
    const std::size_t n_train = static_cast<std::size_t>(
        static_cast<double>(all.size()) * config_.train_fraction);
    std::vector<std::size_t> tr_idx(order.begin(),
                                    order.begin() + static_cast<std::ptrdiff_t>(n_train));
    std::vector<std::size_t> te_idx(order.begin() + static_cast<std::ptrdiff_t>(n_train),
                                    order.end());
    std::sort(tr_idx.begin(), tr_idx.end());
    std::sort(te_idx.begin(), te_idx.end());
    train = all.select_rows(tr_idx);
    test = all.select_rows(te_idx);
  }
  if (train.positives() == 0 || train.negatives() == 0) {
    throw std::runtime_error("MfpaPipeline: training slice lacks a class");
  }
  if (test.empty()) {
    throw std::runtime_error("MfpaPipeline: empty test slice");
  }

  // Stage 6: class balancing of the training slice.
  if (config_.undersample_ratio > 0.0) {
    const ml::RandomUnderSampler sampler(config_.undersample_ratio,
                                         config_.seed ^ 0xba1cULL);
    train = sampler.resample(train);
  }
  timer.end(train.size() + test.size());
  report.train_size = train.size();
  report.train_positives = train.positives();
  report.test_size = test.size();
  report.test_positives = test.positives();

  // Stage 7: model training.
  timer.begin("training");
  ml::Hyperparams params = config_.hyperparams.empty()
                               ? ml::default_hyperparams(config_.algorithm)
                               : config_.hyperparams;
  if (wants_sequences()) {
    params["timesteps"] = static_cast<double>(config_.seq_len);
  }
  if (!params.contains("seed")) {
    params["seed"] = static_cast<double>(config_.seed);
  }
  model_ = ml::make_classifier(config_.algorithm, params);
  model_->fit(train.X, train.y);
  timer.end(train.size(), train.size() * train.num_features() * sizeof(double));

  // Stage 8: threshold selection. Training scores of a flexible model are
  // overfit (near 0/1), so the operating point is tuned on *out-of-fold*
  // scores from time-series CV over the training slice; plain training-score
  // Youden is the fallback when the slice is too small to fold.
  timer.begin("threshold_selection");
  if (config_.decision_threshold >= 0.0) {
    threshold_ = config_.decision_threshold;
  } else {
    std::vector<double> oof_scores;
    std::vector<int> oof_labels;
    const data::Dataset sorted_train = train.sorted_by_time();
    constexpr std::size_t kFolds = 3;
    if (sorted_train.size() >= 2 * kFolds * 8) {
      for (const auto& split :
           ml::time_series_splits(sorted_train.size(), kFolds)) {
        std::vector<int> ytr;
        bool has_pos = false, has_neg = false;
        for (std::size_t i : split.train) {
          ytr.push_back(sorted_train.y[i]);
          (sorted_train.y[i] == 1 ? has_pos : has_neg) = true;
        }
        if (!has_pos || !has_neg) continue;
        auto fold_model = model_->clone_unfitted();
        fold_model->fit(sorted_train.X.select_rows(split.train), ytr);
        const auto scores =
            fold_model->predict_proba(sorted_train.X.select_rows(split.validation));
        for (std::size_t k = 0; k < split.validation.size(); ++k) {
          oof_scores.push_back(scores[k]);
          oof_labels.push_back(sorted_train.y[split.validation[k]]);
        }
      }
    }
    const bool oof_usable =
        std::count(oof_labels.begin(), oof_labels.end(), 1) >= 5 &&
        std::count(oof_labels.begin(), oof_labels.end(), 0) >= 5;
    if (oof_usable) {
      threshold_ = ml::best_weighted_youden_threshold(oof_labels, oof_scores,
                                                      config_.fpr_weight);
    } else {
      const auto train_scores = model_->predict_proba(train.X);
      threshold_ = ml::best_weighted_youden_threshold(train.y, train_scores,
                                                      config_.fpr_weight);
    }
  }
  timer.end(train.size());

  // Stage 9: evaluation.
  timer.begin("prediction");
  report.test_scores = model_->predict_proba(test.X);
  timer.end(test.size(), test.size() * test.num_features() * sizeof(double));
  report.test_labels = test.y;
  report.test_meta = test.meta;
  report.threshold = threshold_;
  report.cm = ml::confusion_at(test.y, report.test_scores, threshold_);
  report.auc = ml::auc(test.y, report.test_scores);
  report.stages = timer.records();
  return report;
}

const ml::Classifier& MfpaPipeline::model() const {
  if (!model_) throw std::logic_error("MfpaPipeline: model() before run()");
  return *model_;
}

const data::LabelEncoder& MfpaPipeline::firmware_encoder() const {
  if (!model_) throw std::logic_error("MfpaPipeline: encoder before run()");
  return fw_encoder_;
}

SampleBuilder MfpaPipeline::make_builder(int lookahead) const {
  if (!model_) throw std::logic_error("MfpaPipeline: make_builder before run()");
  SampleConfig sc = make_sample_config();
  sc.lookahead = lookahead;
  return SampleBuilder(sc, &fw_encoder_);
}

std::vector<double> MfpaPipeline::score(const data::Dataset& ds) const {
  if (!model_) throw std::logic_error("MfpaPipeline: score before run()");
  return model_->predict_proba(ds.X);
}

}  // namespace mfpa::core
