// Identification of the eventual failure time (paper §III-C(2), Fig. 7).
//
// Trouble tickets record the *initial maintenance time* (IMT), not the day
// the drive actually failed — users bring machines in late. For a ticketed
// drive, let Pt_d be the tracking point in the dataset closest to (and not
// after) the IMT, and ti = IMT - Pt_d. With threshold theta:
//   ti <= theta  -> label Pt_d as the failure day,
//   ti >  theta  -> label (IMT - theta) as the failure day.
// The paper sets theta = 7 via a sensitivity test (reproduced in
// bench/exp_theta_sensitivity).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/date.hpp"
#include "core/preprocess.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::core {

/// Pipeline-visible label for one ticketed drive.
struct IdentifiedFailure {
  std::uint64_t drive_id = 0;
  DayIndex imt = 0;
  DayIndex labeled_failure_day = 0;
  bool anchored_to_record = false;  ///< true when ti <= theta (used a Pt_d)
};

class FailureTimeIdentifier {
 public:
  explicit FailureTimeIdentifier(int theta = 7) : theta_(theta) {}

  int theta() const noexcept { return theta_; }

  /// Labels one drive from its ticket and cleaned record history. Returns
  /// nullopt when the drive has no records at all.
  std::optional<IdentifiedFailure> identify(
      const sim::TroubleTicket& ticket, const ProcessedDrive& drive) const;

  /// Labels every ticketed drive found in `drives`. Tickets without a
  /// matching drive (not tracked / dropped by preprocessing) are skipped.
  std::unordered_map<std::uint64_t, IdentifiedFailure> identify_all(
      const std::vector<sim::TroubleTicket>& tickets,
      const std::vector<ProcessedDrive>& drives) const;

 private:
  int theta_;
};

}  // namespace mfpa::core
