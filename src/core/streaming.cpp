#include "core/streaming.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "ml/serialize.hpp"

namespace mfpa::core {

StreamingIngestor::StreamingIngestor(std::uint64_t drive_id, int vendor,
                                     PreprocessConfig config)
    : drive_id_(drive_id),
      vendor_(vendor),
      config_(config),
      sanitizer_(config.robustness) {
  auto& reg = obs::registry();
  metrics_.rows_real =
      &reg.counter("mfpa_stream_rows_total", {{"kind", "real"}});
  metrics_.rows_synthetic =
      &reg.counter("mfpa_stream_rows_total", {{"kind", "synthetic"}});
  metrics_.segments_restarted =
      &reg.counter("mfpa_stream_segments_restarted_total");
}

ProcessedRecord StreamingIngestor::convert(const sim::DailyRecord& raw) {
  // Mirrors the batch Preprocessor's to_processed exactly.
  ProcessedRecord rec;
  rec.day = raw.day;
  for (std::size_t a = 0; a < sim::kNumSmartAttrs; ++a) {
    rec.smart[a] = static_cast<double>(raw.smart[a]);
  }
  rec.firmware = firmware_version_string(vendor_, raw.firmware_index);
  for (std::size_t i = 0; i < sim::kNumWindowsEvents; ++i) {
    w_cum_[i] += static_cast<double>(raw.w[i]);
  }
  for (std::size_t i = 0; i < sim::kNumBsodCodes; ++i) {
    b_cum_[i] += static_cast<double>(raw.b[i]);
  }
  rec.w_cum = w_cum_;
  rec.b_cum = b_cum_;
  return rec;
}

std::vector<ProcessedRecord> StreamingIngestor::ingest(
    const sim::DailyRecord& raw) {
  // The sanitizer enforces the day-order contract (strict: throws; lenient:
  // idempotent duplicate / rollback drops) and repairs values; the gap
  // logic below then sees exactly what the batch Preprocessor would.
  std::optional<sim::DailyRecord> sanitized;
  try {
    sanitized = sanitizer_.sanitize(raw);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("StreamingIngestor: ") + e.what());
  }
  if (!sanitized.has_value()) return {};
  const sim::DailyRecord& record = *sanitized;

  std::vector<ProcessedRecord> produced;
  const bool first = !last_day_.has_value();
  const int gap = first ? 1 : record.day - *last_day_;
  last_day_ = record.day;

  if (!first && gap >= config_.drop_gap) {
    // Long gap: the accumulated segment is unusable going forward; start
    // fresh (counters included), exactly like the batch segment cut.
    segment_.clear();
    real_records_ = 0;
    w_cum_.fill(0.0);
    b_cum_.fill(0.0);
    ++segments_started_;
    metrics_.segments_restarted->inc();
  } else if (!first && gap >= 2 && gap <= config_.fill_gap &&
             !segment_.empty()) {
    const ProcessedRecord prev = segment_.back();
    ProcessedRecord next_actual = convert(record);
    for (int d = 1; d < gap; ++d) {
      const double t = static_cast<double>(d) / static_cast<double>(gap);
      ProcessedRecord fill;
      fill.day = prev.day + d;
      fill.synthetic = true;
      fill.firmware = prev.firmware;
      for (std::size_t a = 0; a < sim::kNumSmartAttrs; ++a) {
        fill.smart[a] = prev.smart[a] + t * (next_actual.smart[a] - prev.smart[a]);
      }
      for (std::size_t w = 0; w < sim::kNumWindowsEvents; ++w) {
        fill.w_cum[w] = prev.w_cum[w] + t * (next_actual.w_cum[w] - prev.w_cum[w]);
      }
      for (std::size_t b = 0; b < sim::kNumBsodCodes; ++b) {
        fill.b_cum[b] = prev.b_cum[b] + t * (next_actual.b_cum[b] - prev.b_cum[b]);
      }
      segment_.push_back(fill);
      produced.push_back(std::move(fill));
      metrics_.rows_synthetic->inc();
    }
    segment_.push_back(next_actual);
    ++real_records_;
    metrics_.rows_real->inc();
    produced.push_back(std::move(next_actual));
    return produced;
  }

  ProcessedRecord rec = convert(record);
  segment_.push_back(rec);
  ++real_records_;
  metrics_.rows_real->inc();
  produced.push_back(std::move(rec));
  return produced;
}

std::size_t StreamingIngestor::compact(std::size_t max_records) {
  max_records = std::max<std::size_t>(1, max_records);
  if (segment_.size() <= max_records) return 0;
  const std::size_t drop = segment_.size() - max_records;
  segment_.erase(segment_.begin(),
                 segment_.begin() + static_cast<std::ptrdiff_t>(drop));
  return drop;
}

bool StreamingIngestor::usable() const noexcept {
  return real_records_ >= static_cast<std::size_t>(config_.min_records) &&
         !quarantined();
}

bool StreamingIngestor::quarantined() const noexcept {
  return sanitizer_.quarantined(static_cast<std::size_t>(config_.min_records));
}

ProcessedDrive StreamingIngestor::snapshot() const {
  ProcessedDrive out;
  out.drive_id = drive_id_;
  out.vendor = vendor_;
  out.records = segment_;
  return out;
}

void StreamingIngestor::save_state(std::ostream& os) const {
  os << "ingestor 1\n";
  sanitizer_.save_state(os);
  os << "counters " << real_records_ << ' ' << segments_started_ << ' '
     << (last_day_.has_value() ? 1 : 0) << ' '
     << (last_day_.has_value() ? *last_day_ : 0) << '\n';
  const auto write_doubles = [&os](const auto& values) {
    for (const double v : values) {
      os << ' ';
      ml::io::write_double(os, v);
    }
  };
  os << "w_cum";
  write_doubles(w_cum_);
  os << "\nb_cum";
  write_doubles(b_cum_);
  os << '\n';
  os << "segment " << segment_.size() << '\n';
  for (const auto& rec : segment_) {
    os << rec.day << ' ' << (rec.synthetic ? 1 : 0) << ' '
       << rec.firmware.size() << ' ' << rec.firmware;
    write_doubles(rec.smart);
    write_doubles(rec.w_cum);
    write_doubles(rec.b_cum);
    os << '\n';
  }
}

void StreamingIngestor::load_state(std::istream& is) {
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "ingestor" || version != 1) {
    throw std::runtime_error("StreamingIngestor: malformed state header");
  }
  sanitizer_.load_state(is);
  int has_day = 0;
  DayIndex day = 0;
  if (!(is >> tag >> real_records_ >> segments_started_ >> has_day >> day) ||
      tag != "counters") {
    throw std::runtime_error("StreamingIngestor: malformed counters");
  }
  last_day_ = has_day ? std::optional<DayIndex>(day) : std::nullopt;
  const auto read_doubles = [&is](auto& values) {
    for (double& v : values) v = ml::io::read_double(is);
  };
  if (!(is >> tag) || tag != "w_cum") {
    throw std::runtime_error("StreamingIngestor: malformed w_cum");
  }
  read_doubles(w_cum_);
  if (!(is >> tag) || tag != "b_cum") {
    throw std::runtime_error("StreamingIngestor: malformed b_cum");
  }
  read_doubles(b_cum_);
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "segment" || n > (1u << 24)) {
    throw std::runtime_error("StreamingIngestor: malformed segment size");
  }
  segment_.clear();
  segment_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ProcessedRecord rec;
    int synthetic = 0;
    std::size_t fw_len = 0;
    if (!(is >> rec.day >> synthetic >> fw_len) || fw_len > 4096 ||
        is.get() != ' ') {
      throw std::runtime_error("StreamingIngestor: malformed segment record");
    }
    rec.synthetic = synthetic != 0;
    rec.firmware.assign(fw_len, '\0');
    if (!is.read(rec.firmware.data(), static_cast<std::streamsize>(fw_len))) {
      throw std::runtime_error("StreamingIngestor: truncated firmware string");
    }
    read_doubles(rec.smart);
    read_doubles(rec.w_cum);
    read_doubles(rec.b_cum);
    segment_.push_back(std::move(rec));
  }
  if (!is) {
    throw std::runtime_error("StreamingIngestor: truncated state");
  }
}

}  // namespace mfpa::core
