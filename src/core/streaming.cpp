#include "core/streaming.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mfpa::core {

StreamingIngestor::StreamingIngestor(std::uint64_t drive_id, int vendor,
                                     PreprocessConfig config)
    : drive_id_(drive_id),
      vendor_(vendor),
      config_(config),
      sanitizer_(config.robustness) {
  auto& reg = obs::registry();
  metrics_.rows_real =
      &reg.counter("mfpa_stream_rows_total", {{"kind", "real"}});
  metrics_.rows_synthetic =
      &reg.counter("mfpa_stream_rows_total", {{"kind", "synthetic"}});
  metrics_.segments_restarted =
      &reg.counter("mfpa_stream_segments_restarted_total");
}

ProcessedRecord StreamingIngestor::convert(const sim::DailyRecord& raw) {
  // Mirrors the batch Preprocessor's to_processed exactly.
  ProcessedRecord rec;
  rec.day = raw.day;
  for (std::size_t a = 0; a < sim::kNumSmartAttrs; ++a) {
    rec.smart[a] = static_cast<double>(raw.smart[a]);
  }
  rec.firmware = firmware_version_string(vendor_, raw.firmware_index);
  for (std::size_t i = 0; i < sim::kNumWindowsEvents; ++i) {
    w_cum_[i] += static_cast<double>(raw.w[i]);
  }
  for (std::size_t i = 0; i < sim::kNumBsodCodes; ++i) {
    b_cum_[i] += static_cast<double>(raw.b[i]);
  }
  rec.w_cum = w_cum_;
  rec.b_cum = b_cum_;
  return rec;
}

std::vector<ProcessedRecord> StreamingIngestor::ingest(
    const sim::DailyRecord& raw) {
  // The sanitizer enforces the day-order contract (strict: throws; lenient:
  // idempotent duplicate / rollback drops) and repairs values; the gap
  // logic below then sees exactly what the batch Preprocessor would.
  std::optional<sim::DailyRecord> sanitized;
  try {
    sanitized = sanitizer_.sanitize(raw);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("StreamingIngestor: ") + e.what());
  }
  if (!sanitized.has_value()) return {};
  const sim::DailyRecord& record = *sanitized;

  std::vector<ProcessedRecord> produced;
  const bool first = !last_day_.has_value();
  const int gap = first ? 1 : record.day - *last_day_;
  last_day_ = record.day;

  if (!first && gap >= config_.drop_gap) {
    // Long gap: the accumulated segment is unusable going forward; start
    // fresh (counters included), exactly like the batch segment cut.
    segment_.clear();
    real_records_ = 0;
    w_cum_.fill(0.0);
    b_cum_.fill(0.0);
    ++segments_started_;
    metrics_.segments_restarted->inc();
  } else if (!first && gap >= 2 && gap <= config_.fill_gap &&
             !segment_.empty()) {
    const ProcessedRecord prev = segment_.back();
    ProcessedRecord next_actual = convert(record);
    for (int d = 1; d < gap; ++d) {
      const double t = static_cast<double>(d) / static_cast<double>(gap);
      ProcessedRecord fill;
      fill.day = prev.day + d;
      fill.synthetic = true;
      fill.firmware = prev.firmware;
      for (std::size_t a = 0; a < sim::kNumSmartAttrs; ++a) {
        fill.smart[a] = prev.smart[a] + t * (next_actual.smart[a] - prev.smart[a]);
      }
      for (std::size_t w = 0; w < sim::kNumWindowsEvents; ++w) {
        fill.w_cum[w] = prev.w_cum[w] + t * (next_actual.w_cum[w] - prev.w_cum[w]);
      }
      for (std::size_t b = 0; b < sim::kNumBsodCodes; ++b) {
        fill.b_cum[b] = prev.b_cum[b] + t * (next_actual.b_cum[b] - prev.b_cum[b]);
      }
      segment_.push_back(fill);
      produced.push_back(std::move(fill));
      metrics_.rows_synthetic->inc();
    }
    segment_.push_back(next_actual);
    ++real_records_;
    metrics_.rows_real->inc();
    produced.push_back(std::move(next_actual));
    return produced;
  }

  ProcessedRecord rec = convert(record);
  segment_.push_back(rec);
  ++real_records_;
  metrics_.rows_real->inc();
  produced.push_back(std::move(rec));
  return produced;
}

std::size_t StreamingIngestor::compact(std::size_t max_records) {
  max_records = std::max<std::size_t>(1, max_records);
  if (segment_.size() <= max_records) return 0;
  const std::size_t drop = segment_.size() - max_records;
  segment_.erase(segment_.begin(),
                 segment_.begin() + static_cast<std::ptrdiff_t>(drop));
  return drop;
}

bool StreamingIngestor::usable() const noexcept {
  return real_records_ >= static_cast<std::size_t>(config_.min_records) &&
         !quarantined();
}

bool StreamingIngestor::quarantined() const noexcept {
  return sanitizer_.quarantined(static_cast<std::size_t>(config_.min_records));
}

ProcessedDrive StreamingIngestor::snapshot() const {
  ProcessedDrive out;
  out.drive_id = drive_id_;
  out.vendor = vendor_;
  out.records = segment_;
  return out;
}

}  // namespace mfpa::core
