#include "core/online_predictor.hpp"

#include <algorithm>
#include <limits>

#include "common/date.hpp"

namespace mfpa::core {

OnlinePredictor::OnlinePredictor(const MfpaPipeline& pipeline,
                                 AlertPolicy policy)
    : pipeline_(&pipeline),
      builder_(pipeline.make_builder()),
      policy_(policy) {}

std::vector<double> OnlinePredictor::score_drive(const ProcessedDrive& drive) {
  data::Dataset ds;
  ds.feature_names = builder_.feature_names();
  for (std::size_t r = 0; r < drive.records.size(); ++r) {
    // Online scoring sees one observation at a time; sequence models get the
    // history up to r via the builder's padding rules.
    if (builder_.config().sequences) {
      // Reuse build_positives_at_distance-style row assembly: construct via a
      // one-record "window" by temporarily treating r as the anchor.
      // SampleBuilder::features_of is flat-only; sequence rows come from the
      // private row_for, so we re-implement the padded window here.
      std::vector<double> row;
      const int T = builder_.config().seq_len;
      for (int t = T - 1; t >= 0; --t) {
        const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(r) - t;
        const std::size_t clamped = idx < 0 ? 0 : static_cast<std::size_t>(idx);
        const auto step = builder_.features_of(drive.records[clamped]);
        row.insert(row.end(), step.begin(), step.end());
      }
      ds.add(row, 0, {drive.drive_id, drive.records[r].day, drive.vendor});
    } else {
      ds.add(builder_.features_of(drive.records[r]), 0,
             {drive.drive_id, drive.records[r].day, drive.vendor});
    }
  }
  if (ds.empty()) return {};
  const auto scores = pipeline_->score(ds);
  int consecutive = 0;
  DayIndex last_alert = std::numeric_limits<DayIndex>::min();
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] < pipeline_->threshold()) {
      consecutive = 0;
      continue;
    }
    ++consecutive;
    if (consecutive < policy_.min_consecutive) continue;
    const DayIndex day = ds.meta[i].day;
    if (policy_.cooldown_days > 0 && last_alert > std::numeric_limits<DayIndex>::min() &&
        day - last_alert < policy_.cooldown_days) {
      continue;
    }
    alerts_.push_back({drive.drive_id, day, scores[i]});
    last_alert = day;
  }
  return scores;
}

std::vector<MonthlyMetrics> OnlinePredictor::monthly_breakdown(
    const MfpaReport& report) {
  std::map<int, ml::ConfusionMatrix> by_month;
  for (std::size_t i = 0; i < report.test_scores.size(); ++i) {
    const int month = month_of(report.test_meta[i].day);
    auto& cm = by_month[month];
    const bool pred = report.test_scores[i] >= report.threshold;
    if (report.test_labels[i] == 1) {
      pred ? ++cm.tp : ++cm.fn;
    } else {
      pred ? ++cm.fp : ++cm.tn;
    }
  }
  std::vector<MonthlyMetrics> out;
  out.reserve(by_month.size());
  for (const auto& [month, cm] : by_month) out.push_back({month, cm});
  return out;
}

DriveLevelMetrics OnlinePredictor::drive_level(const MfpaReport& report) {
  struct DriveState {
    bool any_positive_label = false;
    bool any_flag_on_positive = false;
    bool any_flag = false;
  };
  std::unordered_map<std::uint64_t, DriveState> drives;
  for (std::size_t i = 0; i < report.test_scores.size(); ++i) {
    auto& st = drives[report.test_meta[i].drive_id];
    const bool pred = report.test_scores[i] >= report.threshold;
    if (report.test_labels[i] == 1) {
      st.any_positive_label = true;
      if (pred) st.any_flag_on_positive = true;
    }
    if (pred) st.any_flag = true;
  }
  DriveLevelMetrics out;
  for (const auto& [id, st] : drives) {
    (void)id;
    if (st.any_positive_label) {
      ++out.faulty_drives;
      if (st.any_flag_on_positive) ++out.detected_drives;
    } else {
      ++out.healthy_drives;
      if (st.any_flag) ++out.false_alarm_drives;
    }
  }
  return out;
}

}  // namespace mfpa::core
