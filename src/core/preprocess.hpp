// Preprocessing of raw discontinuous CSS telemetry (paper §III-C(1)):
//
//  * gap handling — record sequences are cut where the interval between
//    adjacent observations is >= `drop_gap` days; only the most recent
//    segment with at least `min_records` observations is kept (data with a
//    long interval "cannot be used for subsequent model training"); inside
//    the kept segment, gaps of <= `fill_gap` days are repaired by inserting
//    synthetic records interpolating the adjacent observations;
//  * cumulative W/B — daily WindowsEvent/BSOD counts are accumulated per
//    drive because daily values are too sparse to show trends;
//  * firmware label encoding — the firmware version character string is
//    label-encoded (unseen versions map to the encoder's unknown code).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/date.hpp"
#include "common/robustness.hpp"
#include "data/label_encoder.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::core {

struct PreprocessConfig {
  int drop_gap = 10;      ///< cut sequences at gaps >= this many days
  int fill_gap = 3;       ///< interpolate gaps <= this many days
  int min_records = 3;    ///< drop drives with fewer usable records

  /// Dirty-input policy. Strict (default) assumes well-formed series (the
  /// historical behavior); lenient runs every record through a
  /// RecordSanitizer (core/robust_ingest.hpp) — dropping duplicate days and
  /// clock rollbacks, repairing bad values, re-basing counter resets — and
  /// quarantines drives whose bad-row fraction exceeds the configured limit.
  RobustnessConfig robustness;
};

/// One cleaned observation with accumulated W/B counters.
struct ProcessedRecord {
  DayIndex day = 0;
  bool synthetic = false;  ///< inserted by gap filling
  std::array<double, sim::kNumSmartAttrs> smart{};
  std::string firmware;    ///< vendor firmware version string
  std::array<double, sim::kNumWindowsEvents> w_cum{};
  std::array<double, sim::kNumBsodCodes> b_cum{};
};

/// A drive's cleaned history. `failed`/`failure_day` carry the simulator's
/// ground truth for *evaluation only* — the pipeline itself labels failures
/// from trouble tickets (see FailureTimeIdentifier).
struct ProcessedDrive {
  std::uint64_t drive_id = 0;
  int vendor = 0;
  int model = 0;
  bool failed = false;
  DayIndex failure_day = -1;
  std::vector<ProcessedRecord> records;  ///< ascending by day
  std::size_t dropped_records = 0;       ///< removed by the gap policy
};

/// Summary counters of one preprocessing run (reported in the overhead and
/// discontinuity experiments).
struct PreprocessStats {
  std::size_t drives_in = 0;
  std::size_t drives_out = 0;
  std::size_t records_in = 0;
  std::size_t records_out = 0;
  std::size_t records_filled = 0;
  std::size_t records_dropped = 0;
  std::size_t long_gaps = 0;   ///< gaps >= drop_gap encountered
};

/// Converts the firmware index of a raw record into the vendor's version
/// string (out-of-catalog indices — post-training releases — get synthetic
/// consecutive names).
std::string firmware_version_string(int vendor, unsigned firmware_index);

class Preprocessor {
 public:
  explicit Preprocessor(PreprocessConfig config = {}) : config_(config) {}

  const PreprocessConfig& config() const noexcept { return config_; }

  /// Cleans one drive's raw series (gap policy + cumulative counters). In
  /// lenient mode the series is sanitized first (records in delivery order);
  /// a quarantined drive comes back with no records and `dropped_records`
  /// covering the whole series. Sanitation accounting is merged into
  /// `ingest` when non-null.
  ProcessedDrive process_drive(const sim::DriveTimeSeries& series,
                               IngestStats* ingest = nullptr) const;

  /// Cleans a whole telemetry batch; drops drives with too few usable
  /// records (and, leniently, repeated drive ids and quarantined drives);
  /// fills `stats` / `ingest` if non-null.
  std::vector<ProcessedDrive> process(
      const std::vector<sim::DriveTimeSeries>& batch,
      PreprocessStats* stats = nullptr, IngestStats* ingest = nullptr) const;

  /// Fits a firmware label encoder over every record of `drives`.
  static data::LabelEncoder fit_firmware_encoder(
      const std::vector<ProcessedDrive>& drives);

 private:
  PreprocessConfig config_;

  /// The historical gap-policy algorithm, assuming a well-formed series.
  ProcessedDrive process_well_formed(const sim::DriveTimeSeries& series) const;
};

}  // namespace mfpa::core
