// Sample construction (paper §III-C(3)).
//
// Positive samples: records of ticketed drives within `positive_window` days
// before the identified failure day (optionally shifted back by a lookahead
// distance for the Fig. 19 experiment). Negative samples: records of healthy
// drives, sampled at `neg_per_pos` per positive. Supports flat rows (one
// observation) and sequence rows (the last `seq_len` observations flattened,
// for CNN_LSTM).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/failure_time.hpp"
#include "core/feature_groups.hpp"
#include "core/preprocess.hpp"
#include "data/dataset.hpp"
#include "data/label_encoder.hpp"

namespace mfpa::core {

struct SampleConfig {
  FeatureGroup group = FeatureGroup::kSFWB;
  int positive_window = 7;   ///< days before the labeled failure day
  int lookahead = 0;         ///< extra distance between sample and failure
  double neg_per_pos = 3.0;  ///< negative:positive sampling ratio (0 = all)
  bool sequences = false;    ///< build seq_len x F rows instead of flat rows
  int seq_len = 5;
  /// Appends rate-of-change columns ("d<k>_<name>"): each feature's delta
  /// against the drive's newest record at least `delta_days` older (zero
  /// when no such record exists). An extension beyond the paper — counters
  /// accelerating matters as much as their level. Flat rows only.
  bool include_deltas = false;
  int delta_days = 7;
  std::uint64_t seed = 7;
};

class SampleBuilder {
 public:
  /// `fw_encoder` must outlive the builder; it supplies the firmware code
  /// for groups containing F (may be null for groups without F).
  SampleBuilder(SampleConfig config, const data::LabelEncoder* fw_encoder);

  const SampleConfig& config() const noexcept { return config_; }

  /// Feature vector of one record under the configured group.
  std::vector<double> features_of(const ProcessedRecord& record) const;

  /// Feature names of the built dataset (flat or sequence-expanded).
  std::vector<std::string> feature_names() const;

  /// Builds the labeled dataset. `failures` maps drive id -> identified
  /// failure; drives present in the map yield positives (within the window),
  /// all other drives yield negative candidates.
  data::Dataset build(
      const std::vector<ProcessedDrive>& drives,
      const std::unordered_map<std::uint64_t, IdentifiedFailure>& failures)
      const;

  /// Builds *positive-only* samples whose distance to the drive's true
  /// failure day is exactly in [distance_lo, distance_hi] — used by the
  /// lookahead experiment (Fig. 19), which probes a fixed model at varying
  /// horizons. Uses ground-truth failure days from the ProcessedDrive.
  data::Dataset build_positives_at_distance(
      const std::vector<ProcessedDrive>& drives, int distance_lo,
      int distance_hi) const;

 private:
  SampleConfig config_;
  const data::LabelEncoder* fw_encoder_;
  // Resolved column selectors.
  bool use_smart_ = false;
  bool use_firmware_ = false;
  std::vector<std::size_t> w_indices_;
  std::vector<std::size_t> b_indices_;

  std::vector<double> row_for(const ProcessedDrive& drive,
                              std::size_t record_index) const;
};

}  // namespace mfpa::core
