// MFPA — the paper's Multidimensional-based Failure Prediction Approach,
// end to end:
//
//   raw telemetry + trouble tickets
//     -> Preprocessor            (gap drop / mean fill, cumulative W/B)
//     -> FailureTimeIdentifier   (theta-matching of IMT to tracking points)
//     -> SampleBuilder           (positive windows, negative sampling)
//     -> timepoint segmentation  (train strictly before test, Fig. 8(a)(2))
//     -> RandomUnderSampler      (class balancing of the training slice)
//     -> Classifier              (Bayes / SVM / RF / GBDT / CNN_LSTM)
//     -> threshold selection + evaluation (TPR/FPR/ACC/PDR/AUC)
//
// Every stage is timed (StageRecord) so the overhead experiment (Fig. 20)
// falls out of a normal run.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/progress.hpp"
#include "core/failure_time.hpp"
#include "core/feature_groups.hpp"
#include "core/preprocess.hpp"
#include "core/sample_builder.hpp"
#include "data/dataset.hpp"
#include "data/label_encoder.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"

namespace mfpa::core {

struct MfpaConfig {
  std::string algorithm = "RF";
  ml::Hyperparams hyperparams;      ///< empty -> ml::default_hyperparams
  FeatureGroup group = FeatureGroup::kSFWB;
  PreprocessConfig preprocess;
  int theta = 7;                    ///< failure-time identification threshold
  int positive_window = 7;          ///< days of pre-failure data labeled positive
  int lookahead = 0;
  double neg_per_pos = 3.0;         ///< dataset-level negative sampling
  double undersample_ratio = 3.0;   ///< training-slice under-sampling (<=0 off)
  double train_fraction = 0.7;      ///< timepoint split position in the window
  double decision_threshold = 0.5;  ///< < 0: tuned on out-of-fold scores
  double fpr_weight = 2.5;          ///< FPR aversion of the tuned threshold
  int vendor = -1;                  ///< -1 = all vendors
  int seq_len = 5;                  ///< sequence length for CNN_LSTM
  bool include_deltas = false;      ///< append d<k>_ rate-of-change features
  int delta_days = 7;
  bool time_split = true;           ///< false: random split (the Fig. 8 strawman)
  std::uint64_t seed = 7;
};

/// Everything a bench needs to print a paper table/figure row.
struct MfpaReport {
  ml::ConfusionMatrix cm;         ///< test set at the chosen threshold
  double auc = 0.0;
  double threshold = 0.5;
  DayIndex split_day = 0;
  std::size_t train_size = 0;
  std::size_t train_positives = 0;
  std::size_t test_size = 0;
  std::size_t test_positives = 0;
  std::vector<double> test_scores;        ///< aligned with test_labels/meta
  std::vector<int> test_labels;
  std::vector<data::RowMeta> test_meta;
  PreprocessStats preprocess_stats;
  IngestStats ingest_stats;               ///< dirty-input accounting (lenient)
  std::vector<StageRecord> stages;        ///< per-stage timing (Fig. 20)
};

/// The pipeline. One instance = one trained deployment; run() trains and
/// evaluates, after which the fitted artifacts stay available for online
/// scoring (examples, Fig. 12/16 time-portability bench).
class MfpaPipeline {
 public:
  explicit MfpaPipeline(MfpaConfig config);

  const MfpaConfig& config() const noexcept { return config_; }

  /// Full train + evaluate flow.
  MfpaReport run(const std::vector<sim::DriveTimeSeries>& telemetry,
                 const std::vector<sim::TroubleTicket>& tickets);

  // --- Fitted artifacts (valid after run()) -------------------------------
  bool trained() const noexcept { return model_ != nullptr; }
  const ml::Classifier& model() const;
  const data::LabelEncoder& firmware_encoder() const;
  double threshold() const noexcept { return threshold_; }

  /// Builds a sample-ready builder bound to this pipeline's fitted encoder
  /// and feature group (for scoring new data).
  SampleBuilder make_builder(int lookahead = 0) const;

  /// Scores prepared samples with the fitted model.
  std::vector<double> score(const data::Dataset& ds) const;

 private:
  MfpaConfig config_;
  std::unique_ptr<ml::Classifier> model_;
  data::LabelEncoder fw_encoder_;
  double threshold_ = 0.5;

  bool wants_sequences() const noexcept {
    return config_.algorithm == "CNN_LSTM";
  }
  SampleConfig make_sample_config() const;
};

}  // namespace mfpa::core
