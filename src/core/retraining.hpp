// Periodic model iteration (paper §IV(5) and Fig. 20 caption: "The model is
// iterated every two months and pushed to the user for updates").
//
// The RetrainingScheduler replays the deployment timeline month by month:
// it trains an initial model, evaluates each subsequent month with the model
// that was live at the time, and retrains — re-fitting the firmware encoder
// and the forest on all data available up to that point — either on a fixed
// cadence or reactively when the observed monthly FPR crosses a trip wire.
// Retraining is what absorbs the drift (seasonal temperature, firmware
// releases unseen at training time) that Fig. 12/16 show accumulating.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/failure_time.hpp"
#include "core/mfpa.hpp"
#include "core/preprocess.hpp"
#include "data/label_encoder.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"

namespace mfpa::core {

/// Callback invoked whenever the scheduler ships a model (the initial train
/// and every refresh). The serving tier wires this to
/// serve::ModelRegistry::publish so a deployment's registry receives every
/// iteration without core depending on the serve layer. `train_lo`/`train_hi`
/// bound the data the model saw (the manifest's training window).
using ModelPublishHook = std::function<void(
    const ml::Classifier& model, const data::LabelEncoder& encoder,
    DayIndex train_lo, DayIndex train_hi)>;

struct RetrainingPolicy {
  /// Retrain after this many months regardless of metrics (paper: 2).
  int cadence_months = 2;
  /// Retrain early when a month's observed FPR exceeds this (<= 0 disables).
  double fpr_trip_wire = 0.03;
  /// Disables all retraining (baseline for comparison).
  bool enabled = true;
};

struct DeploymentMonth {
  int month = 0;                ///< months since the epoch
  ml::ConfusionMatrix cm;       ///< that month's samples, live model
  int model_age_months = 0;     ///< age of the model that scored the month
  bool retrained_after = false; ///< a refresh shipped at month end
};

/// Replays a deployment with periodic iteration.
class RetrainingScheduler {
 public:
  RetrainingScheduler(MfpaConfig config, RetrainingPolicy policy)
      : config_(std::move(config)), policy_(policy) {}

  /// Trains on data through `initial_train_end`, then walks month by month
  /// to the end of the telemetry. Returns the per-month outcomes.
  std::vector<DeploymentMonth> run(
      const std::vector<sim::DriveTimeSeries>& telemetry,
      const std::vector<sim::TroubleTicket>& tickets,
      DayIndex initial_train_end);

  /// Number of times a refreshed model shipped during the last run().
  int retrain_count() const noexcept { return retrain_count_; }

  /// Registers the publish hook (may be empty to unregister).
  void set_publish_hook(ModelPublishHook hook) {
    publish_hook_ = std::move(hook);
  }

 private:
  MfpaConfig config_;
  RetrainingPolicy policy_;
  int retrain_count_ = 0;
  ModelPublishHook publish_hook_;

  // Live deployment state.
  data::LabelEncoder encoder_;
  std::unique_ptr<ml::Classifier> model_;

  /// (Re)trains on every sample with day <= cutoff.
  void train(const std::vector<ProcessedDrive>& drives,
             const std::vector<sim::TroubleTicket>& tickets, DayIndex cutoff);

  /// Builds the evaluation samples of [lo, hi) with the live encoder.
  data::Dataset month_samples(
      const std::vector<ProcessedDrive>& drives,
      const std::unordered_map<std::uint64_t, IdentifiedFailure>& failures,
      DayIndex lo, DayIndex hi) const;
};

}  // namespace mfpa::core
