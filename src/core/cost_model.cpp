#include "core/cost_model.hpp"

#include <cmath>
#include <limits>

namespace mfpa::core {

double MisclassificationCosts::total(const ml::ConfusionMatrix& cm) const noexcept {
  return static_cast<double>(cm.fn) * missed_failure +
         static_cast<double>(cm.fp) * false_alarm +
         static_cast<double>(cm.tp) * planned_migration;
}

double MisclassificationCosts::per_sample(
    const ml::ConfusionMatrix& cm) const noexcept {
  const std::size_t n = cm.total();
  return n == 0 ? 0.0 : total(cm) / static_cast<double>(n);
}

double cost_optimal_threshold(std::span<const int> y_true,
                              std::span<const double> scores,
                              const MisclassificationCosts& costs) {
  double best_cost = std::numeric_limits<double>::infinity();
  double best_threshold = 0.5;
  for (const auto& point : ml::roc_curve(y_true, scores)) {
    if (!std::isfinite(point.threshold)) continue;
    const auto cm = ml::confusion_at(y_true, scores, point.threshold);
    const double cost = costs.total(cm);
    if (cost < best_cost) {
      best_cost = cost;
      best_threshold = point.threshold;
    }
  }
  return best_threshold;
}

double min_cost_per_sample(std::span<const int> y_true,
                           std::span<const double> scores,
                           const MisclassificationCosts& costs) {
  const double t = cost_optimal_threshold(y_true, scores, costs);
  return costs.per_sample(ml::confusion_at(y_true, scores, t));
}

}  // namespace mfpa::core
