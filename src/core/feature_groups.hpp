// Feature-group definitions (paper Table V): which attributes of the
// multidimensional SFWB space each experiment uses.
//
//   SFWB = 16 SMART + 1 Firmware + 5 WindowsEvent + 23 BSOD  (45 features)
//   SFW  = 16 + 1 + 5
//   SFB  = 16 + 1 + 23
//   SF   = 16 + 1
//   S    = 16            (the traditional SMART-only baseline)
//   W    = 5
//   B    = 23
//
// W and B features are *cumulative* event counts (the paper accumulates the
// daily counts because daily values are too sparse to show trends).
#pragma once

#include <string>
#include <vector>

namespace mfpa::core {

enum class FeatureGroup { kSFWB, kSFW, kSFB, kSF, kS, kW, kB };

inline constexpr std::size_t kNumFeatureGroups = 7;

/// All groups in the paper's Table V order.
const std::vector<FeatureGroup>& all_feature_groups();

/// Display name ("SFWB", "SFW", ...).
std::string feature_group_name(FeatureGroup g);

/// Parses a display name; throws std::invalid_argument for unknown names.
FeatureGroup feature_group_from_name(const std::string& name);

/// Names of the 16 SMART features ("S_1".."S_16").
const std::vector<std::string>& smart_feature_names();

/// Name of the firmware feature ("F").
const std::string& firmware_feature_name();

/// Names of the 5 tracked WindowsEvent cumulative features
/// ("W_7", "W_11", "W_49", "W_51", "W_161").
const std::vector<std::string>& windows_feature_names();

/// Names of the 23 BSOD cumulative features ("B_23".."B_C00").
const std::vector<std::string>& bsod_feature_names();

/// Full ordered feature-name list of a group.
std::vector<std::string> feature_names_of(FeatureGroup g);

/// Number of features in a group (Table V row sums).
std::size_t feature_count_of(FeatureGroup g);

}  // namespace mfpa::core
