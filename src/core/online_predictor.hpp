// Deployment-style online scoring on top of a trained MFPA pipeline:
// score incoming drive histories day by day, raise at-risk alerts, and
// report drive-level / monthly metrics. Backs the time-period portability
// experiment (Fig. 12/16: "predict for 2-3 months without iteration") and
// the fleet-monitoring example.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/mfpa.hpp"
#include "core/preprocess.hpp"
#include "ml/metrics.hpp"

namespace mfpa::core {

/// One raised alert.
struct Alert {
  std::uint64_t drive_id = 0;
  DayIndex day = 0;       ///< observation day that triggered the alert
  double score = 0.0;
};

/// When to actually bother the user. Raw threshold crossings are noisy;
/// deployments require persistence (hysteresis) and rate-limit repeats.
struct AlertPolicy {
  int min_consecutive = 1;  ///< crossings in a row before the first alert
  int cooldown_days = 0;    ///< silence after an alert (0 = alert every time)
};

/// Monthly sample-level evaluation row (Fig. 12/16 series).
struct MonthlyMetrics {
  int month = 0;          ///< months since the epoch (common/date.hpp)
  ml::ConfusionMatrix cm;
};

/// Drive-level evaluation: a faulty drive counts as detected if any of its
/// pre-failure samples is flagged; a healthy drive counts as a false alarm
/// if any of its samples is flagged.
struct DriveLevelMetrics {
  std::size_t faulty_drives = 0;
  std::size_t detected_drives = 0;
  std::size_t healthy_drives = 0;
  std::size_t false_alarm_drives = 0;
  double drive_tpr() const noexcept {
    return faulty_drives == 0 ? 0.0
                              : static_cast<double>(detected_drives) /
                                    static_cast<double>(faulty_drives);
  }
  double drive_fpr() const noexcept {
    return healthy_drives == 0 ? 0.0
                               : static_cast<double>(false_alarm_drives) /
                                     static_cast<double>(healthy_drives);
  }
};

class OnlinePredictor {
 public:
  /// Binds to a trained pipeline (must outlive the predictor).
  explicit OnlinePredictor(const MfpaPipeline& pipeline,
                           AlertPolicy policy = {});

  const AlertPolicy& policy() const noexcept { return policy_; }

  /// Scores every record of a cleaned drive history; records alerts per the
  /// AlertPolicy (consecutive-crossing hysteresis, per-drive cooldown).
  /// Returns per-record scores.
  std::vector<double> score_drive(const ProcessedDrive& drive);

  const std::vector<Alert>& alerts() const noexcept { return alerts_; }
  void clear_alerts() { alerts_.clear(); }

  /// Fleet-side ingest accounting: deployments fold the per-drive
  /// `StreamingIngestor::ingest_stats()` (or a batch reader's report) in
  /// here so "how dirty is the fleet's telemetry" is available next to the
  /// alert stream.
  void absorb_ingest(const IngestStats& stats) { ingest_stats_.merge(stats); }
  const IngestStats& ingest_stats() const noexcept { return ingest_stats_; }
  void clear_ingest_stats() { ingest_stats_ = IngestStats{}; }

  /// Groups labeled test predictions by calendar month (Fig. 12/16).
  static std::vector<MonthlyMetrics> monthly_breakdown(
      const MfpaReport& report);

  /// Drive-level evaluation of a report (one verdict per drive).
  static DriveLevelMetrics drive_level(const MfpaReport& report);

 private:
  const MfpaPipeline* pipeline_;
  SampleBuilder builder_;
  AlertPolicy policy_;
  std::vector<Alert> alerts_;
  IngestStats ingest_stats_;
};

}  // namespace mfpa::core
