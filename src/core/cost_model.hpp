// Cost-sensitive evaluation of an operating point.
//
// The paper motivates proactive prediction economically (downtime cost
// $8,851/min in 2016; consumer data recovery "even several times the price
// of the SSD") and introduces PDR precisely because flagged drives cost
// money to migrate. This module prices a confusion matrix: a missed failure
// costs data recovery + replacement + downtime; a false alarm costs an
// unnecessary backup/migration; a true positive costs the planned migration.
#pragma once

#include <span>

#include "ml/metrics.hpp"

namespace mfpa::core {

/// Per-event costs in arbitrary currency units (defaults loosely follow the
/// paper's motivation: recovery after an unpredicted failure is an order of
/// magnitude above a planned migration).
struct MisclassificationCosts {
  double missed_failure = 100.0;   ///< FN: data loss, recovery, downtime
  double false_alarm = 4.0;        ///< FP: needless backup + replacement visit
  double planned_migration = 1.0;  ///< TP: backup + swap on user's schedule

  /// Total cost of a confusion matrix.
  double total(const ml::ConfusionMatrix& cm) const noexcept;

  /// Cost per monitored drive-sample (total / population).
  double per_sample(const ml::ConfusionMatrix& cm) const noexcept;
};

/// Threshold minimizing the expected cost over the score distribution.
double cost_optimal_threshold(std::span<const int> y_true,
                              std::span<const double> scores,
                              const MisclassificationCosts& costs);

/// Cost at the best threshold (convenience for benches).
double min_cost_per_sample(std::span<const int> y_true,
                           std::span<const double> scores,
                           const MisclassificationCosts& costs);

}  // namespace mfpa::core
