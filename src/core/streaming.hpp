// Streaming ingestion — the client-agent view of preprocessing.
//
// The batch Preprocessor assumes a drive's full history is in hand; a
// deployed agent instead sees one upload at a time and must maintain the
// same cleaned state incrementally: cumulative W/B counters, the short-gap
// fill, and the long-gap cut (a gap >= drop_gap starts a fresh segment,
// discarding accumulated context exactly as the batch path would).
//
// Invariant (tested): feeding a drive's records one by one through a
// StreamingIngestor yields byte-identical ProcessedRecords to running the
// batch Preprocessor over the same series, whenever the batch keeps the
// final segment (the streaming agent cannot know a *future* gap will
// invalidate its current segment; it always lives in the newest one).
// The invariant holds in *both* robustness modes: lenient mode runs the
// same RecordSanitizer in front of the same gap logic as the batch path,
// so it extends verbatim to corrupted input (tested in
// tests/core/test_robust_ingest.cpp).
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "core/preprocess.hpp"
#include "core/robust_ingest.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::core {

/// Incremental per-drive preprocessing state.
class StreamingIngestor {
 public:
  StreamingIngestor(std::uint64_t drive_id, int vendor,
                    PreprocessConfig config = {});

  /// Ingests the next raw daily record. Returns the cleaned records this
  /// upload produced: possibly several (gap-fill synthesizes intermediate
  /// days), possibly the start of a fresh segment (long gap), possibly none.
  ///
  /// Day-order contract (config().robustness):
  ///  * strict — days must be strictly increasing; throws
  ///    std::invalid_argument otherwise (the historical behavior);
  ///  * lenient — a re-delivered day (an agent retrying an upload after a
  ///    lost ACK) is IDEMPOTENT: the call returns empty, changes no state,
  ///    and counts a `duplicate_days` fault; a day earlier than one already
  ///    seen is dropped the same way as a `clock_rollbacks` fault. Bad
  ///    values are repaired and counter resets re-based per the config.
  std::vector<ProcessedRecord> ingest(const sim::DailyRecord& record);

  /// Records of the *current* segment, oldest first.
  const std::vector<ProcessedRecord>& segment() const noexcept {
    return segment_;
  }

  /// True when the current segment has enough real records to be usable for
  /// scoring (min_records of the config) and the drive is not quarantined.
  bool usable() const noexcept;

  /// Lenient mode: true when the sanitizer-dropped fraction of delivered
  /// records exceeds the configured quarantine threshold — the drive's
  /// uploads are too corrupt to score. Matches the batch Preprocessor's
  /// per-drive quarantine decision on the same delivery sequence.
  bool quarantined() const noexcept;

  /// Sanitation accounting for this drive (delivered / repaired / dropped
  /// records and per-fault counters).
  const IngestStats& ingest_stats() const noexcept {
    return sanitizer_.stats();
  }

  /// Drops the oldest records of the current segment until at most
  /// `max_records` remain; returns how many were dropped. The conversion
  /// state (cumulative counters, last-day, sanitizer) is independent of the
  /// retained records, and gap filling only reads segment().back(), so
  /// compaction never changes future ingest output — it only bounds memory
  /// for long-running per-drive state (the serving tier's DriveStateStore
  /// compacts after every emit). `max_records` is clamped to >= 1.
  std::size_t compact(std::size_t max_records);

  /// Number of long-gap cuts seen so far.
  int segments_started() const noexcept { return segments_started_; }

  std::uint64_t drive_id() const noexcept { return drive_id_; }
  int vendor() const noexcept { return vendor_; }

  /// Materializes the current segment as a ProcessedDrive (for scoring
  /// through SampleBuilder / OnlinePredictor).
  ProcessedDrive snapshot() const;

  /// Serializes the full incremental state (sanitizer, current segment,
  /// cumulative counters, day cursor) for durable checkpoints. Identity
  /// (drive_id, vendor) and config are NOT serialized — the loader must
  /// construct the ingestor with the same arguments, after which a loaded
  /// ingestor continues the ingest sequence bit-identically.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  std::uint64_t drive_id_;
  int vendor_;
  PreprocessConfig config_;
  RecordSanitizer sanitizer_;
  // Fleet-wide registry mirrors (mfpa_stream_*): cleaned-row production by
  // kind and long-gap segment cuts, accumulated over every ingestor.
  struct Metrics {
    obs::Counter* rows_real = nullptr;
    obs::Counter* rows_synthetic = nullptr;
    obs::Counter* segments_restarted = nullptr;
  };
  Metrics metrics_;
  std::vector<ProcessedRecord> segment_;
  std::size_t real_records_ = 0;
  int segments_started_ = 0;
  std::array<double, sim::kNumWindowsEvents> w_cum_{};
  std::array<double, sim::kNumBsodCodes> b_cum_{};
  std::optional<DayIndex> last_day_;

  ProcessedRecord convert(const sim::DailyRecord& raw);
};

}  // namespace mfpa::core
