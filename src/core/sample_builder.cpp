#include "core/sample_builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "sim/catalog.hpp"

namespace mfpa::core {
namespace {

/// Parses "W_11" -> tracked index via the catalog.
std::size_t w_index_of(const std::string& name) {
  return sim::windows_event_index(std::stoi(name.substr(2)));
}

}  // namespace

SampleBuilder::SampleBuilder(SampleConfig config,
                             const data::LabelEncoder* fw_encoder)
    : config_(config), fw_encoder_(fw_encoder) {
  const FeatureGroup g = config_.group;
  use_smart_ = g == FeatureGroup::kSFWB || g == FeatureGroup::kSFW ||
               g == FeatureGroup::kSFB || g == FeatureGroup::kSF ||
               g == FeatureGroup::kS;
  use_firmware_ = g == FeatureGroup::kSFWB || g == FeatureGroup::kSFW ||
                  g == FeatureGroup::kSFB || g == FeatureGroup::kSF;
  if (use_firmware_ && fw_encoder_ == nullptr) {
    throw std::invalid_argument(
        "SampleBuilder: firmware encoder required for groups containing F");
  }
  if (g == FeatureGroup::kSFWB || g == FeatureGroup::kSFW ||
      g == FeatureGroup::kW) {
    for (const auto& name : windows_feature_names()) {
      w_indices_.push_back(w_index_of(name));
    }
  }
  if (g == FeatureGroup::kSFWB || g == FeatureGroup::kSFB ||
      g == FeatureGroup::kB) {
    for (std::size_t i = 0; i < sim::kNumBsodCodes; ++i) b_indices_.push_back(i);
  }
  if (config_.positive_window < 1) {
    throw std::invalid_argument("SampleBuilder: positive_window must be >= 1");
  }
  if (config_.sequences && config_.seq_len < 1) {
    throw std::invalid_argument("SampleBuilder: seq_len must be >= 1");
  }
  if (config_.include_deltas && config_.sequences) {
    throw std::invalid_argument(
        "SampleBuilder: deltas and sequences are mutually exclusive");
  }
  if (config_.include_deltas && config_.delta_days < 1) {
    throw std::invalid_argument("SampleBuilder: delta_days must be >= 1");
  }
}

std::vector<double> SampleBuilder::features_of(
    const ProcessedRecord& record) const {
  std::vector<double> out;
  out.reserve(feature_count_of(config_.group));
  if (use_smart_) {
    out.insert(out.end(), record.smart.begin(), record.smart.end());
  }
  if (use_firmware_) {
    out.push_back(fw_encoder_->transform_one(record.firmware));
  }
  for (std::size_t w : w_indices_) out.push_back(record.w_cum[w]);
  for (std::size_t b : b_indices_) out.push_back(record.b_cum[b]);
  return out;
}

std::vector<std::string> SampleBuilder::feature_names() const {
  const auto base = feature_names_of(config_.group);
  if (config_.sequences) {
    std::vector<std::string> out;
    out.reserve(base.size() * static_cast<std::size_t>(config_.seq_len));
    for (int t = 0; t < config_.seq_len; ++t) {
      const std::string prefix =
          "t-" + std::to_string(config_.seq_len - 1 - t) + "_";
      for (const auto& name : base) out.push_back(prefix + name);
    }
    return out;
  }
  if (config_.include_deltas) {
    std::vector<std::string> out = base;
    const std::string prefix = "d" + std::to_string(config_.delta_days) + "_";
    for (const auto& name : base) out.push_back(prefix + name);
    return out;
  }
  return base;
}

std::vector<double> SampleBuilder::row_for(const ProcessedDrive& drive,
                                           std::size_t record_index) const {
  if (!config_.sequences) {
    std::vector<double> row = features_of(drive.records[record_index]);
    if (config_.include_deltas) {
      // Newest record at least delta_days older than this one.
      const DayIndex anchor_day =
          drive.records[record_index].day - config_.delta_days;
      std::vector<double> past(row.size(), 0.0);
      bool found = false;
      for (std::size_t r = record_index; r-- > 0;) {
        if (drive.records[r].day <= anchor_day) {
          past = features_of(drive.records[r]);
          found = true;
          break;
        }
      }
      const std::size_t base = row.size();
      row.resize(2 * base, 0.0);
      if (found) {
        for (std::size_t c = 0; c < base; ++c) row[base + c] = row[c] - past[c];
      }
    }
    return row;
  }
  // Sequence row: the seq_len records ending at record_index, earliest
  // first, padded by repeating the oldest available record.
  std::vector<double> out;
  const int T = config_.seq_len;
  out.reserve(feature_count_of(config_.group) * static_cast<std::size_t>(T));
  for (int t = T - 1; t >= 0; --t) {
    const std::ptrdiff_t idx =
        static_cast<std::ptrdiff_t>(record_index) - t;
    const std::size_t clamped =
        idx < 0 ? 0 : static_cast<std::size_t>(idx);
    const auto step = features_of(drive.records[clamped]);
    out.insert(out.end(), step.begin(), step.end());
  }
  return out;
}

data::Dataset SampleBuilder::build(
    const std::vector<ProcessedDrive>& drives,
    const std::unordered_map<std::uint64_t, IdentifiedFailure>& failures)
    const {
  data::Dataset ds;
  ds.feature_names = feature_names();

  // Positives + collect negative candidates.
  std::vector<std::pair<std::size_t, std::size_t>> negative_candidates;
  std::size_t n_pos = 0;
  for (std::size_t d = 0; d < drives.size(); ++d) {
    const ProcessedDrive& drive = drives[d];
    const auto it = failures.find(drive.drive_id);
    if (it == failures.end()) {
      for (std::size_t r = 0; r < drive.records.size(); ++r) {
        negative_candidates.emplace_back(d, r);
      }
      continue;
    }
    const DayIndex fail = it->second.labeled_failure_day;
    const DayIndex hi = fail - config_.lookahead;
    const DayIndex lo = hi - config_.positive_window + 1;
    for (std::size_t r = 0; r < drive.records.size(); ++r) {
      const DayIndex day = drive.records[r].day;
      if (day < lo || day > hi) continue;
      ds.add(row_for(drive, r), 1, {drive.drive_id, day, drive.vendor});
      ++n_pos;
    }
  }

  // Sampled negatives.
  std::vector<std::size_t> chosen;
  if (config_.neg_per_pos > 0.0 && n_pos > 0) {
    const auto want = std::min<std::size_t>(
        negative_candidates.size(),
        static_cast<std::size_t>(static_cast<double>(n_pos) *
                                     config_.neg_per_pos +
                                 0.5));
    Rng rng(config_.seed);
    chosen = rng.sample_without_replacement(negative_candidates.size(), want);
    std::sort(chosen.begin(), chosen.end());
  } else {
    chosen.resize(negative_candidates.size());
    for (std::size_t i = 0; i < chosen.size(); ++i) chosen[i] = i;
  }
  for (std::size_t c : chosen) {
    const auto [d, r] = negative_candidates[c];
    const ProcessedDrive& drive = drives[d];
    ds.add(row_for(drive, r), 0,
           {drive.drive_id, drive.records[r].day, drive.vendor});
  }
  ds.check_invariants();
  return ds;
}

data::Dataset SampleBuilder::build_positives_at_distance(
    const std::vector<ProcessedDrive>& drives, int distance_lo,
    int distance_hi) const {
  if (distance_lo > distance_hi) {
    throw std::invalid_argument(
        "build_positives_at_distance: lo must be <= hi");
  }
  data::Dataset ds;
  ds.feature_names = feature_names();
  for (const ProcessedDrive& drive : drives) {
    if (!drive.failed) continue;
    for (std::size_t r = 0; r < drive.records.size(); ++r) {
      const int dist = drive.failure_day - drive.records[r].day;
      if (dist < distance_lo || dist > distance_hi) continue;
      ds.add(row_for(drive, r), 1,
             {drive.drive_id, drive.records[r].day, drive.vendor});
    }
  }
  ds.check_invariants();
  return ds;
}

}  // namespace mfpa::core
