#include "core/feature_groups.hpp"

#include <stdexcept>

#include "sim/catalog.hpp"

namespace mfpa::core {

const std::vector<FeatureGroup>& all_feature_groups() {
  static const std::vector<FeatureGroup> kGroups = {
      FeatureGroup::kSFWB, FeatureGroup::kSFW, FeatureGroup::kSFB,
      FeatureGroup::kSF,   FeatureGroup::kS,   FeatureGroup::kW,
      FeatureGroup::kB};
  return kGroups;
}

std::string feature_group_name(FeatureGroup g) {
  switch (g) {
    case FeatureGroup::kSFWB: return "SFWB";
    case FeatureGroup::kSFW: return "SFW";
    case FeatureGroup::kSFB: return "SFB";
    case FeatureGroup::kSF: return "SF";
    case FeatureGroup::kS: return "S";
    case FeatureGroup::kW: return "W";
    case FeatureGroup::kB: return "B";
  }
  return "?";
}

FeatureGroup feature_group_from_name(const std::string& name) {
  for (FeatureGroup g : all_feature_groups()) {
    if (feature_group_name(g) == name) return g;
  }
  throw std::invalid_argument("feature_group_from_name: unknown group '" +
                              name + "'");
}

const std::vector<std::string>& smart_feature_names() {
  static const std::vector<std::string> kNames = [] {
    const auto& arr = sim::smart_attr_names();
    return std::vector<std::string>(arr.begin(), arr.end());
  }();
  return kNames;
}

const std::string& firmware_feature_name() {
  static const std::string kName = "F";
  return kName;
}

const std::vector<std::string>& windows_feature_names() {
  // The paper's Table V counts five W attributes; Fig. 17 names W_11, W_49,
  // W_51 and W_161 among the features requiring special attention. W_7
  // (bad block) completes the set.
  static const std::vector<std::string> kNames = {"W_7", "W_11", "W_49",
                                                  "W_51", "W_161"};
  return kNames;
}

const std::vector<std::string>& bsod_feature_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& code : sim::bsod_code_types()) names.push_back(code.name);
    return names;
  }();
  return kNames;
}

std::vector<std::string> feature_names_of(FeatureGroup g) {
  std::vector<std::string> names;
  const bool has_s = g == FeatureGroup::kSFWB || g == FeatureGroup::kSFW ||
                     g == FeatureGroup::kSFB || g == FeatureGroup::kSF ||
                     g == FeatureGroup::kS;
  const bool has_f = g == FeatureGroup::kSFWB || g == FeatureGroup::kSFW ||
                     g == FeatureGroup::kSFB || g == FeatureGroup::kSF;
  const bool has_w = g == FeatureGroup::kSFWB || g == FeatureGroup::kSFW ||
                     g == FeatureGroup::kW;
  const bool has_b = g == FeatureGroup::kSFWB || g == FeatureGroup::kSFB ||
                     g == FeatureGroup::kB;
  if (has_s) {
    const auto& s = smart_feature_names();
    names.insert(names.end(), s.begin(), s.end());
  }
  if (has_f) names.push_back(firmware_feature_name());
  if (has_w) {
    const auto& w = windows_feature_names();
    names.insert(names.end(), w.begin(), w.end());
  }
  if (has_b) {
    const auto& b = bsod_feature_names();
    names.insert(names.end(), b.begin(), b.end());
  }
  return names;
}

std::size_t feature_count_of(FeatureGroup g) {
  return feature_names_of(g).size();
}

}  // namespace mfpa::core
