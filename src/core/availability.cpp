#include "core/availability.hpp"

#include <stdexcept>
#include <unordered_set>

namespace mfpa::core {

AvailabilityOutcome evaluate_availability(const std::vector<FirstAlert>& alerts,
                                          const FailureDays& failures,
                                          const AvailabilityParams& params) {
  AvailabilityOutcome out;
  out.failures = failures.size();

  std::unordered_map<std::uint64_t, DayIndex> first_alert;
  for (const auto& alert : alerts) {
    const auto [it, inserted] = first_alert.emplace(alert.drive_id, alert.day);
    if (!inserted && alert.day < it->second) it->second = alert.day;
  }

  for (const auto& [drive_id, fail_day] : failures) {
    const auto it = first_alert.find(drive_id);
    if (it == first_alert.end() || it->second > fail_day) {
      // Never warned (an alert after the failure day is no warning).
      ++out.missed;
      out.downtime_hours += params.unplanned_outage_hours;
      out.expected_data_loss_events += params.data_loss_probability;
    } else if (fail_day - it->second >= params.required_lead_days) {
      ++out.planned;
      out.downtime_hours += params.planned_swap_hours;
    } else {
      ++out.rushed;
      out.downtime_hours += params.rushed_swap_hours;
    }
  }
  for (const auto& [drive_id, day] : first_alert) {
    (void)day;
    if (!failures.contains(drive_id)) {
      ++out.false_alarms;
      out.downtime_hours += params.false_alarm_hours;
    }
  }
  return out;
}

AvailabilityOutcome reactive_baseline(std::size_t failure_count,
                                      const AvailabilityParams& params) {
  AvailabilityOutcome out;
  out.failures = failure_count;
  out.missed = failure_count;
  out.downtime_hours =
      params.unplanned_outage_hours * static_cast<double>(failure_count);
  out.expected_data_loss_events =
      params.data_loss_probability * static_cast<double>(failure_count);
  return out;
}

}  // namespace mfpa::core
