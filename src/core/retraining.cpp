#include "core/retraining.hpp"

#include <algorithm>

#include "common/date.hpp"
#include "ml/factory.hpp"
#include "ml/sampler.hpp"

namespace mfpa::core {
namespace {

/// First day of the calendar month containing `day`.
DayIndex month_start(int month) {
  const int year = 2021 + month / 12;
  return to_day_index({year, month % 12 + 1, 1});
}

}  // namespace

void RetrainingScheduler::train(
    const std::vector<ProcessedDrive>& drives,
    const std::vector<sim::TroubleTicket>& tickets, DayIndex cutoff) {
  // Only tickets filed by the cutoff are known to the trainer (no oracle).
  std::vector<sim::TroubleTicket> known;
  for (const auto& t : tickets) {
    if (t.imt <= cutoff) known.push_back(t);
  }
  const FailureTimeIdentifier identifier(config_.theta);
  const auto failures = identifier.identify_all(known, drives);

  // Firmware vocabulary as of the cutoff.
  std::vector<std::string> versions;
  for (const auto& d : drives) {
    for (const auto& r : d.records) {
      if (r.day <= cutoff) versions.push_back(r.firmware);
    }
  }
  encoder_.fit(versions);

  SampleConfig sc;
  sc.group = config_.group;
  sc.positive_window = config_.positive_window;
  sc.neg_per_pos = config_.neg_per_pos;
  sc.seed = config_.seed;
  const SampleBuilder builder(sc, &encoder_);
  data::Dataset all = builder.build(drives, failures);
  const data::Dataset train =
      all.filter([cutoff](const data::RowMeta& m, int) { return m.day <= cutoff; });
  data::Dataset balanced = train;
  if (config_.undersample_ratio > 0.0) {
    const ml::RandomUnderSampler sampler(config_.undersample_ratio,
                                         config_.seed ^ 0xba1cULL);
    balanced = sampler.resample(train);
  }

  ml::Hyperparams params = config_.hyperparams.empty()
                               ? ml::default_hyperparams(config_.algorithm)
                               : config_.hyperparams;
  if (!params.contains("seed")) {
    params["seed"] = static_cast<double>(config_.seed);
  }
  model_ = ml::make_classifier(config_.algorithm, params);
  model_->fit(balanced.X, balanced.y);

  if (publish_hook_) {
    DayIndex lo = cutoff;
    for (const auto& d : drives) {
      if (!d.records.empty()) lo = std::min(lo, d.records.front().day);
    }
    publish_hook_(*model_, encoder_, lo, cutoff);
  }
}

data::Dataset RetrainingScheduler::month_samples(
    const std::vector<ProcessedDrive>& drives,
    const std::unordered_map<std::uint64_t, IdentifiedFailure>& failures,
    DayIndex lo, DayIndex hi) const {
  SampleConfig sc;
  sc.group = config_.group;
  sc.positive_window = config_.positive_window;
  sc.neg_per_pos = config_.neg_per_pos;
  sc.seed = config_.seed ^ static_cast<std::uint64_t>(lo);
  const SampleBuilder builder(sc, &encoder_);
  const data::Dataset all = builder.build(drives, failures);
  return all.filter([lo, hi](const data::RowMeta& m, int) {
    return m.day >= lo && m.day < hi;
  });
}

std::vector<DeploymentMonth> RetrainingScheduler::run(
    const std::vector<sim::DriveTimeSeries>& telemetry,
    const std::vector<sim::TroubleTicket>& tickets,
    DayIndex initial_train_end) {
  retrain_count_ = 0;
  std::vector<sim::DriveTimeSeries> filtered;
  const std::vector<sim::DriveTimeSeries>* input = &telemetry;
  if (config_.vendor >= 0) {
    for (const auto& s : telemetry) {
      if (s.vendor == config_.vendor) filtered.push_back(s);
    }
    input = &filtered;
  }
  const Preprocessor preprocessor(config_.preprocess);
  const auto drives = preprocessor.process(*input);
  if (drives.empty()) {
    throw std::runtime_error("RetrainingScheduler: no usable drives");
  }
  DayIndex last_day = initial_train_end;
  for (const auto& d : drives) {
    if (!d.records.empty()) last_day = std::max(last_day, d.records.back().day);
  }

  // Ground-truth failure labels for *evaluation* use every ticket (metrics
  // are computed in hindsight); training inside train() sees only the
  // tickets filed by its cutoff.
  const FailureTimeIdentifier identifier(config_.theta);
  const auto eval_failures = identifier.identify_all(tickets, drives);

  train(drives, tickets, initial_train_end);
  int model_age = 0;

  std::vector<DeploymentMonth> out;
  const double threshold =
      config_.decision_threshold >= 0.0 ? config_.decision_threshold : 0.5;
  for (int month = month_of(initial_train_end) + 1; month_start(month) <= last_day;
       ++month) {
    const DayIndex lo = month_start(month);
    const DayIndex hi = month_start(month + 1);
    const data::Dataset samples = month_samples(drives, eval_failures, lo, hi);
    DeploymentMonth row;
    row.month = month;
    row.model_age_months = model_age;
    if (!samples.empty()) {
      const auto scores = model_->predict_proba(samples.X);
      row.cm = ml::confusion_at(samples.y, scores, threshold);
    }
    ++model_age;
    const bool cadence_due =
        policy_.enabled && model_age >= policy_.cadence_months;
    const bool tripped = policy_.enabled && policy_.fpr_trip_wire > 0.0 &&
                         row.cm.fpr() > policy_.fpr_trip_wire;
    if ((cadence_due || tripped) && hi <= last_day) {
      train(drives, tickets, hi - 1);
      model_age = 0;
      row.retrained_after = true;
      ++retrain_count_;
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace mfpa::core
