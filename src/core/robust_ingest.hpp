// Per-drive record sanitation — the graceful-degradation front half of both
// ingestion paths. `RecordSanitizer` is a small state machine fed a drive's
// raw records *in delivery order*; it decides, identically for the batch
// `Preprocessor` and the `StreamingIngestor`, whether each record is kept
// (possibly repaired) or dropped with a recorded reason:
//
//  * duplicate day (upload retry)            -> dropped, idempotent
//  * clock rollback (day earlier than seen)  -> dropped
//  * NaN / negative / saturated SMART field  -> repaired to last good value
//  * saturated daily W/B count               -> repaired to zero
//  * monotone SMART counter reset            -> re-based (effective = raw +
//                                               accumulated pre-reset total)
//
// Because both consumers run the same sanitizer in front of their existing
// (well-formed-input) logic, the batch-vs-streaming equivalence invariant of
// streaming.hpp extends verbatim to corrupted input.
//
// Strict mode performs only the day-order check and throws
// std::invalid_argument — the historical StreamingIngestor contract.
#pragma once

#include <array>
#include <iosfwd>
#include <optional>

#include "common/robustness.hpp"
#include "obs/metrics.hpp"
#include "sim/catalog.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::core {

/// The SMART attributes that are cumulative counters (and therefore
/// re-basable after a reset). Mirrors sim/validate.cpp's monotone set.
const std::array<sim::SmartAttr, 6>& monotone_smart_attrs() noexcept;

class RecordSanitizer {
 public:
  explicit RecordSanitizer(RobustnessConfig config = {});

  const RobustnessConfig& config() const noexcept { return config_; }

  /// Sanitizes the next delivered record. Returns the (possibly repaired)
  /// record to process, or std::nullopt when it must be dropped. Strict
  /// mode throws std::invalid_argument on non-increasing days instead.
  std::optional<sim::DailyRecord> sanitize(const sim::DailyRecord& raw);

  /// Accounting so far: rows_read counts delivered records, rows_dropped /
  /// rows_repaired and the per-cause counters explain what happened.
  const IngestStats& stats() const noexcept { return stats_; }

  /// Records delivered so far (kept + dropped).
  std::size_t delivered() const noexcept { return stats_.rows_read; }

  /// True when the bad-row fraction exceeds the configured quarantine
  /// threshold (only ever true in lenient mode, and only once at least
  /// `min_delivered` records were delivered).
  bool quarantined(std::size_t min_delivered) const noexcept;

  /// Resets all state for a new drive.
  void reset();

  /// Serializes the full sanitizer state (day-order cursor, re-basing
  /// offsets, last-good values, accounting) for durable checkpoints; a
  /// loaded sanitizer continues the delivery sequence bit-identically.
  /// Doubles round-trip at full precision; integrity is the enclosing
  /// checkpoint's checksum.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  RobustnessConfig config_;
  IngestStats stats_;
  // Fleet-wide registry mirrors (mfpa_ingest_*). IngestStats stays the
  // per-drive/per-run accounting; these accumulate the same events across
  // every sanitizer in the process so exporters see ingestion as one layer.
  struct Metrics {
    obs::Counter* records = nullptr;
    obs::Counter* rows_repaired = nullptr;
    obs::Counter* rows_dropped = nullptr;
    obs::Counter* duplicate_days = nullptr;
    obs::Counter* clock_rollbacks = nullptr;
    obs::Counter* counter_resets = nullptr;
    obs::Counter* values_repaired = nullptr;
  };
  Metrics metrics_;
  std::optional<DayIndex> last_day_;
  // Counter-reset re-basing state, indexed over monotone_smart_attrs().
  std::array<float, 6> last_raw_{};
  std::array<double, 6> rebase_offset_{};
  // Last good (finite, non-negative, unsaturated) value per SMART attr.
  std::array<float, sim::kNumSmartAttrs> last_good_{};
};

}  // namespace mfpa::core
