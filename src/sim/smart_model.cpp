#include "sim/smart_model.hpp"

#include <algorithm>
#include <cmath>

namespace mfpa::sim {
namespace {

/// Archetype-specific degradation strengths (per fully-degraded day).
struct DegradationProfile {
  double media_errors_per_day;
  double error_log_per_day;      ///< on top of media errors
  double spare_loss_per_error;   ///< % spare lost per media error
  double extra_wear_mult;        ///< multiplier on wear accumulation
  double busy_time_mult;         ///< controller busy-time inflation
  double unsafe_shutdown_boost;  ///< extra unsafe shutdowns per day
  double temp_boost;             ///< degrees added at full degradation
};

const DegradationProfile& degradation_profile(FailureArchetype a) noexcept {
  static constexpr DegradationProfile kProfiles[kNumArchetypes] = {
      // media/day, log/day, spare/err, wear, busy, unsafe/day, temp
      {4.0, 6.0, 0.35, 2.5, 1.3, 0.05, 3.0},    // wearout
      {14.0, 20.0, 0.30, 1.3, 1.5, 0.08, 2.0},  // media
      {0.8, 8.0, 0.05, 1.0, 3.5, 0.45, 6.0},    // controller
      {1.0, 5.0, 0.04, 1.0, 1.2, 0.25, 1.0},    // sudden
  };
  return kProfiles[static_cast<std::size_t>(a)];
}

constexpr double kGbPerDataUnitK = 0.512;  // 1000 NVMe data units = 0.512 GB

}  // namespace

double degradation_level(const DriveOutcome& outcome, DayIndex day) noexcept {
  if (!outcome.fails || outcome.onset_days <= 0) return 0.0;
  const DayIndex onset = outcome.failure_day - outcome.onset_days;
  if (day <= onset) return 0.0;
  if (day >= outcome.failure_day) return 1.0;
  const double progress = static_cast<double>(day - onset) /
                          static_cast<double>(outcome.onset_days);
  return std::pow(progress, 0.8);  // early-rising concave ramp
}

SmartState SmartModel::init_state(const DriveHardware& /*hw*/, UserProfile profile,
                                  double age_days, Rng& rng) {
  SmartState s;
  age_days = std::max(0.0, age_days);
  const UsageParams& up = UsageModel::params(profile);
  const double used_days = age_days * up.p_power_on;

  s.temp_offset = rng.normal(0.0, 2.5);
  s.wear_rate_mult = std::clamp(rng.lognormal(0.0, 0.25), 0.5, 2.5);
  s.grumpy = rng.bernoulli(0.08);

  s.poh_hours = used_days * up.mean_hours * rng.uniform(0.9, 1.1);
  s.power_cycles = used_days * rng.uniform(1.0, 3.0);
  s.unsafe_shutdowns = used_days * up.p_unsafe_shutdown * rng.uniform(0.5, 2.0);
  s.gb_written = used_days * up.mean_write_gb * s.wear_rate_mult *
                 rng.uniform(0.8, 1.2);
  s.gb_read = s.gb_written * rng.uniform(1.5, 3.0);
  // ~4 KB mean transfer -> ~0.26M commands per GB; fold variation in.
  s.host_write_cmds_m = s.gb_written * rng.uniform(0.15, 0.35);
  s.host_read_cmds_m = s.gb_read * rng.uniform(0.15, 0.35);
  s.busy_time_min = s.poh_hours * rng.uniform(0.4, 1.2);

  if (s.grumpy) {
    // Unhealthy-looking but not failing: the source of SMART-only false
    // positives. Bad PSU/cooling/habits, not a bad drive.
    s.unsafe_shutdowns += rng.uniform(5.0, 40.0);
    s.temp_offset += rng.uniform(3.0, 8.0);
    s.media_errors = static_cast<double>(rng.poisson(4.0));
    s.error_log_entries =
        s.media_errors + static_cast<double>(rng.poisson(10.0));
  } else {
    s.media_errors = rng.bernoulli(0.02) ? 1.0 : 0.0;
    s.error_log_entries = s.media_errors + static_cast<double>(rng.poisson(0.3));
  }
  s.spare_pct = 100.0 - s.media_errors * 0.2;
  return s;
}

void SmartModel::advance(SmartState& s, const DriveHardware& hw,
                         UserProfile profile, const DriveOutcome& outcome,
                         DayIndex day, int elapsed_days, Rng& rng) {
  if (elapsed_days <= 0) return;
  const UsageParams& up = UsageModel::params(profile);
  const double level = degradation_level(outcome, day);
  const DegradationProfile& dp = degradation_profile(outcome.archetype);
  const double used_days =
      static_cast<double>(elapsed_days) * up.p_power_on;

  const double wear_mult =
      s.wear_rate_mult * (1.0 + (dp.extra_wear_mult - 1.0) * level);
  const double gb_w =
      used_days * up.mean_write_gb * wear_mult * rng.uniform(0.7, 1.3);
  const double gb_r = gb_w * rng.uniform(1.5, 3.0);

  s.poh_hours += used_days * up.mean_hours * rng.uniform(0.85, 1.15);
  s.power_cycles += used_days * rng.uniform(1.0, 3.0);
  s.gb_written += gb_w;
  s.gb_read += gb_r;
  s.host_write_cmds_m += gb_w * rng.uniform(0.15, 0.35);
  s.host_read_cmds_m += gb_r * rng.uniform(0.15, 0.35);
  s.busy_time_min += used_days * up.mean_hours * rng.uniform(0.4, 1.2) *
                     (1.0 + (dp.busy_time_mult - 1.0) * level);

  double unsafe_rate = up.p_unsafe_shutdown * (s.grumpy ? 6.0 : 1.0);
  unsafe_rate += dp.unsafe_shutdown_boost * level;
  s.unsafe_shutdowns +=
      static_cast<double>(rng.poisson(used_days * unsafe_rate));

  // Media errors: tiny background (grumpy drives higher) plus the ramp.
  double media_rate = s.grumpy ? 0.06 : 0.0015;
  media_rate += dp.media_errors_per_day * level;
  double new_media =
      static_cast<double>(rng.poisson(static_cast<double>(elapsed_days) * media_rate));
  // Transient scare burst on otherwise healthy drives.
  if (s.scare_day >= 0) {
    const DayIndex burst_lo = std::max(s.scare_day, day - elapsed_days + 1);
    const DayIndex burst_hi = std::min<DayIndex>(s.scare_day + s.scare_len, day + 1);
    if (burst_lo < burst_hi) {
      new_media += static_cast<double>(
          rng.poisson(5.0 * static_cast<double>(burst_hi - burst_lo)));
    }
  }
  s.media_errors += new_media;

  double log_rate = s.grumpy ? 0.05 : 0.006;
  log_rate += dp.error_log_per_day * level;
  s.error_log_entries +=
      new_media +
      static_cast<double>(rng.poisson(static_cast<double>(elapsed_days) * log_rate));

  s.spare_pct -= new_media * dp.spare_loss_per_error * rng.uniform(0.5, 1.5);
  // Wear also consumes spare blocks slowly once past ~80% of endurance.
  const double used_fraction =
      (s.gb_written / 1000.0) / std::max(1.0, hw.endurance_tbw());
  if (used_fraction > 0.8) {
    s.spare_pct -= used_days * (used_fraction - 0.8) * 0.4;
  }
  s.spare_pct = std::max(0.0, s.spare_pct);
}

std::array<float, kNumSmartAttrs> SmartModel::observe(
    const SmartState& s, const DriveHardware& hw, const DriveOutcome& outcome,
    DayIndex day, bool enable_drift, Rng& rng) {
  const double level = degradation_level(outcome, day);
  const DegradationProfile& dp = degradation_profile(outcome.archetype);

  double temp = 36.0 + s.temp_offset + dp.temp_boost * level + rng.normal(0.0, 1.5);
  if (enable_drift) {
    // Seasonal ambient-temperature swing (northern-hemisphere summer peak).
    temp += 4.0 * std::sin(2.0 * M_PI * static_cast<double>(day + 220) / 365.0);
  }

  const double pct_used = std::min(
      255.0, (s.gb_written / 1000.0) / std::max(1.0, hw.endurance_tbw()) * 100.0);
  const double spare = std::floor(std::clamp(s.spare_pct, 0.0, 100.0));
  constexpr double kSpareThreshold = 10.0;
  const bool critical =
      spare <= kSpareThreshold || pct_used >= 100.0 || temp > 75.0;

  std::array<float, kNumSmartAttrs> out{};
  auto set = [&out](SmartAttr a, double v) {
    out[static_cast<std::size_t>(a)] = static_cast<float>(v);
  };
  set(SmartAttr::kCriticalWarning, critical ? 1.0 : 0.0);
  set(SmartAttr::kCompositeTemperature, std::round(temp));
  set(SmartAttr::kAvailableSpare, spare);
  set(SmartAttr::kAvailableSpareThreshold, kSpareThreshold);
  set(SmartAttr::kPercentageUsed, std::floor(pct_used));
  set(SmartAttr::kDataUnitsRead, s.gb_read / kGbPerDataUnitK);
  set(SmartAttr::kDataUnitsWritten, s.gb_written / kGbPerDataUnitK);
  set(SmartAttr::kHostReadCommands, s.host_read_cmds_m);
  set(SmartAttr::kHostWriteCommands, s.host_write_cmds_m);
  set(SmartAttr::kControllerBusyTime, s.busy_time_min);
  set(SmartAttr::kPowerCycles, std::floor(s.power_cycles));
  set(SmartAttr::kPowerOnHours, std::floor(s.poh_hours));
  set(SmartAttr::kUnsafeShutdowns, std::floor(s.unsafe_shutdowns));
  set(SmartAttr::kMediaErrors, std::floor(s.media_errors));
  set(SmartAttr::kErrorLogEntries, std::floor(s.error_log_entries));
  set(SmartAttr::kCapacity, hw.capacity_gb);
  return out;
}

}  // namespace mfpa::sim
