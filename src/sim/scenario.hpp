// Scenario presets: knobs that size a simulation run. Benches default to a
// scaled-down fleet that preserves the paper's per-vendor replacement rates;
// unit tests use a tiny scenario.
#pragma once

#include <cstdint>
#include <string>

#include "common/date.hpp"

namespace mfpa::sim {

/// All knobs of a simulation run.
struct Scenario {
  std::uint64_t seed = 42;

  /// Linear fleet scale relative to the paper's Table VI (1.0 = 2.33M drives).
  double fleet_scale = 0.02;

  /// Observation horizon in days (paper: ~2 years of logs).
  DayIndex horizon_days = 540;

  /// Telemetry window [telemetry_start, telemetry_end): detailed daily logs
  /// are generated only inside this window (full-horizon telemetry for 2M+
  /// drives would be pointless — the pipeline undersamples healthy drives
  /// anyway, mirroring the paper's RandomUnderSampler usage).
  DayIndex telemetry_start = 360;
  DayIndex telemetry_end = 540;

  /// Healthy drives tracked per failed drive (telemetry sampling ratio).
  double healthy_per_failed = 8.0;

  /// Upper bound on tracked healthy drives per vendor (0 = no cap).
  std::size_t max_healthy_tracked = 0;

  /// Enables distribution drift over calendar time (seasonal temperature,
  /// late firmware releases) — required by the time-period portability
  /// experiment (Fig. 12/16), harmless elsewhere.
  bool enable_drift = true;

  /// Mean user repair delay in days (failure -> ticket IMT).
  double mean_repair_delay = 4.0;
};

/// Named presets.
Scenario tiny_scenario(std::uint64_t seed = 42);     ///< unit tests (~2k drives)
Scenario small_scenario(std::uint64_t seed = 42);    ///< fast benches (~23k drives)
Scenario default_scenario(std::uint64_t seed = 42);  ///< headline benches (~47k)
Scenario large_scenario(std::uint64_t seed = 42);    ///< slow/overnight (~230k)
/// Full-scale fleet (~2.33M drives, telemetry only in the final 180-day
/// window) — the `fleet-replay` CLI's default; sized for streamed
/// (chunked) telemetry generation, not an in-memory fleet.
Scenario fleet_scenario(std::uint64_t seed = 42);

/// Looks a preset up by name ("tiny", "small", "default", "large",
/// "fleet"); throws std::invalid_argument for an unknown name.
Scenario scenario_by_name(const std::string& name, std::uint64_t seed = 42);

}  // namespace mfpa::sim
