#include "sim/scenario.hpp"

#include <stdexcept>

namespace mfpa::sim {

Scenario tiny_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.fleet_scale = 0.004;  // ~9.3k drives, ~13 failures
  s.horizon_days = 360;
  s.telemetry_start = 0;
  s.telemetry_end = 360;
  s.healthy_per_failed = 6.0;
  return s;
}

Scenario small_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.fleet_scale = 0.02;  // ~47k drives, ~63 failures
  s.horizon_days = 540;
  s.telemetry_start = 0;
  s.telemetry_end = 540;
  s.healthy_per_failed = 7.0;
  return s;
}

Scenario default_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.fleet_scale = 0.1;  // ~233k drives, ~320 failures (vendor I ~185)
  s.horizon_days = 540;
  s.telemetry_start = 0;
  s.telemetry_end = 540;
  s.healthy_per_failed = 7.0;
  return s;
}

Scenario large_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.fleet_scale = 0.3;  // ~700k drives, ~950 failures
  s.horizon_days = 540;
  s.telemetry_start = 0;
  s.telemetry_end = 540;
  s.healthy_per_failed = 7.0;
  return s;
}

Scenario fleet_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.fleet_scale = 1.0;  // the paper's full Table VI fleet, ~2.33M drives
  s.horizon_days = 540;
  // Lifetimes span the whole horizon (~1.2B drive-days of destiny
  // simulation); daily telemetry is only materialized for the tracked
  // subset inside the final 180-day window, and the cap below bounds the
  // healthy cohort so the stream stays in the low millions of records —
  // sized for chunked generation (generate_telemetry_chunk), not for
  // holding the whole fleet's telemetry in memory.
  s.telemetry_start = 360;
  s.telemetry_end = 540;
  s.healthy_per_failed = 8.0;
  s.max_healthy_tracked = 4000;
  return s;
}

Scenario scenario_by_name(const std::string& name, std::uint64_t seed) {
  if (name == "tiny") return tiny_scenario(seed);
  if (name == "small") return small_scenario(seed);
  if (name == "default") return default_scenario(seed);
  if (name == "large") return large_scenario(seed);
  if (name == "fleet") return fleet_scenario(seed);
  throw std::invalid_argument("scenario_by_name: unknown scenario '" + name + "'");
}

}  // namespace mfpa::sim
