#include "sim/failure_model.hpp"

#include <algorithm>
#include <cmath>

namespace mfpa::sim {
namespace {

/// Archetype weights per bathtub mixture component: infant deaths skew to
/// controller/sudden faults, wear-out deaths to gradual wear.
constexpr double kArchetypeByComponent[3][kNumArchetypes] = {
    // wearout, media, controller, sudden
    {0.05, 0.25, 0.35, 0.35},  // infant
    {0.15, 0.35, 0.25, 0.25},  // random
    {0.55, 0.30, 0.07, 0.08},  // wear-out
};

/// P(drive-level manifestation | archetype): gradual archetypes get flagged
/// at the drive level more often; sudden deaths look like system failures.
constexpr double kDriveLevelByArchetype[kNumArchetypes] = {0.60, 0.45, 0.12,
                                                           0.08};

}  // namespace

const char* archetype_name(FailureArchetype a) noexcept {
  switch (a) {
    case FailureArchetype::kWearout: return "wearout";
    case FailureArchetype::kMedia: return "media";
    case FailureArchetype::kController: return "controller";
    case FailureArchetype::kSudden: return "sudden";
  }
  return "unknown";
}

double FailureModel::mean_firmware_multiplier(
    const VendorConfig& vendor) noexcept {
  double mean = 0.0;
  double share = 0.0;
  for (const auto& fw : vendor.firmware) {
    mean += fw.failure_multiplier * fw.market_share;
    share += fw.market_share;
  }
  return share > 0.0 ? mean / share : 1.0;
}

double FailureModel::sample_failure_age(Rng& rng,
                                        FailureArchetype* archetype_hint) const {
  const BathtubParams& p = bathtub_;
  const std::size_t component =
      rng.categorical({p.infant_weight, p.random_weight, p.wearout_weight});
  double age = 0.0;
  switch (component) {
    case 0: age = rng.weibull(p.infant_shape, p.infant_scale); break;
    case 1: age = rng.exponential(1.0 / p.random_mean); break;
    default: age = rng.weibull(p.wearout_shape, p.wearout_scale); break;
  }
  if (archetype_hint != nullptr) {
    const double* w = kArchetypeByComponent[component];
    const std::size_t a = rng.categorical({w[0], w[1], w[2], w[3]});
    *archetype_hint = static_cast<FailureArchetype>(a);
  }
  return age;
}

DriveOutcome FailureModel::sample_outcome(const VendorConfig& vendor,
                                          std::size_t firmware_index,
                                          DayIndex horizon, Rng& rng) const {
  DriveOutcome out;
  // Deployment: drives entered service up to ~two years before the
  // observation window and keep entering during it (consumer PCs ship
  // continuously), so the observed fleet spans infancy through wear-out.
  out.deploy_day = static_cast<DayIndex>(rng.uniform_int(-720, horizon - 30));

  const double fw_mult =
      vendor.firmware.at(firmware_index).failure_multiplier /
      mean_firmware_multiplier(vendor);
  const double p_fail = std::clamp(vendor.replacement_rate * fw_mult, 0.0, 1.0);
  out.fails = rng.bernoulli(p_fail);
  if (!out.fails) return out;

  // Rejection-sample an age that places the failure inside the observation
  // window; fall back to a uniform draw if the window is hard to hit (e.g.
  // drives deployed at the very end of the horizon).
  FailureArchetype archetype = FailureArchetype::kWearout;
  bool placed = false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double age = sample_failure_age(rng, &archetype);
    // Even DOA drives survive the first power-on day.
    const DayIndex day =
        out.deploy_day + std::max<DayIndex>(1, static_cast<DayIndex>(age));
    if (day >= 0 && day < horizon) {
      out.age_at_failure = age;
      out.failure_day = day;
      placed = true;
      break;
    }
  }
  if (!placed) {
    const DayIndex lo = std::max<DayIndex>(0, out.deploy_day + 1);
    out.failure_day = static_cast<DayIndex>(rng.uniform_int(lo, horizon - 1));
    out.age_at_failure = static_cast<double>(out.failure_day - out.deploy_day);
    archetype = rng.bernoulli(0.5) ? FailureArchetype::kController
                                   : FailureArchetype::kSudden;
  }
  out.archetype = archetype;
  out.category = sample_ticket_category(archetype, rng);

  // Degradation lead time before the failure day (how early precursors
  // start). Gradual archetypes degrade for weeks; sudden deaths for days.
  switch (archetype) {
    case FailureArchetype::kWearout:
      out.onset_days = static_cast<int>(std::clamp(rng.lognormal(3.45, 0.25), 20.0, 60.0));
      break;
    case FailureArchetype::kMedia:
      out.onset_days = static_cast<int>(std::clamp(rng.lognormal(3.1, 0.30), 14.0, 45.0));
      break;
    case FailureArchetype::kController:
      out.onset_days = static_cast<int>(std::clamp(rng.lognormal(2.8, 0.30), 12.0, 30.0));
      break;
    case FailureArchetype::kSudden:
      out.onset_days = static_cast<int>(std::clamp(rng.lognormal(2.6, 0.25), 10.0, 21.0));
      break;
  }
  return out;
}

TicketCategory sample_ticket_category(FailureArchetype archetype, Rng& rng) {
  const bool drive_level =
      rng.bernoulli(kDriveLevelByArchetype[static_cast<std::size_t>(archetype)]);
  const auto& cats = ticket_categories();
  std::vector<double> weights(cats.size(), 0.0);
  for (std::size_t i = 0; i < cats.size(); ++i) {
    const bool is_drive = cats[i].level == FailureLevel::kDriveLevel;
    if (is_drive == drive_level) weights[i] = cats[i].fraction;
  }
  return cats[rng.categorical(weights)].category;
}

}  // namespace mfpa::sim
