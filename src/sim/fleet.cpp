#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "sim/event_model.hpp"
#include "sim/smart_model.hpp"

namespace mfpa::sim {
namespace {

// Salts for deriving independent per-drive random streams.
constexpr std::uint64_t kLifetimeSalt = 0x11ce;
constexpr std::uint64_t kTelemetrySalt = 0x7e1e;
constexpr std::uint64_t kTicketSalt = 0x71c3;

/// Daily probability that a user applies a pending firmware update. The
/// paper observes most drives stay on their shipped firmware; a low rate
/// reproduces that.
constexpr double kFirmwareUpdateDailyP = 0.0012;

}  // namespace

FleetSimulator::FleetSimulator(Scenario scenario) : scenario_(scenario) {
  if (scenario_.telemetry_start < 0 ||
      scenario_.telemetry_end > scenario_.horizon_days ||
      scenario_.telemetry_start >= scenario_.telemetry_end) {
    throw std::invalid_argument("FleetSimulator: bad telemetry window");
  }
  if (scenario_.fleet_scale <= 0.0) {
    throw std::invalid_argument("FleetSimulator: fleet_scale must be > 0");
  }
}

void FleetSimulator::simulate_lifetimes() {
  if (lifetimes_done_) return;
  const Rng base(scenario_.seed);
  const auto& catalog = vendor_catalog();

  std::size_t total_drives = 0;
  for (const auto& vendor : catalog) {
    total_drives += static_cast<std::size_t>(std::max(
        50.0, std::round(static_cast<double>(vendor.fleet_size) *
                         scenario_.fleet_scale)));
  }
  drives_.clear();
  drives_.reserve(total_drives);

  for (std::size_t v = 0; v < catalog.size(); ++v) {
    const VendorConfig& vendor = catalog[v];
    const auto n = static_cast<std::size_t>(std::max(
        50.0, std::round(static_cast<double>(vendor.fleet_size) *
                         scenario_.fleet_scale)));
    std::vector<double> fw_shares;
    fw_shares.reserve(vendor.firmware.size());
    for (const auto& fw : vendor.firmware) fw_shares.push_back(fw.market_share);
    std::vector<double> model_shares;
    model_shares.reserve(vendor.models.size());
    for (const auto& m : vendor.models) model_shares.push_back(m.fleet_fraction);

    for (std::size_t i = 0; i < n; ++i) {
      DriveInfo info;
      info.drive_id = (static_cast<std::uint64_t>(v) + 1) * 10'000'000ULL + i;
      info.vendor = static_cast<int>(v);
      Rng rng = base.split(info.drive_id ^ kLifetimeSalt);
      info.model = static_cast<int>(rng.categorical(model_shares));
      info.firmware_initial =
          static_cast<std::uint8_t>(rng.categorical(fw_shares));
      info.profile = UsageModel::sample_profile(rng);
      info.outcome = failure_model_.sample_outcome(
          vendor, info.firmware_initial, scenario_.horizon_days, rng);
      drives_.push_back(info);
    }
  }
  lifetimes_done_ = true;
}

const std::vector<DriveInfo>& FleetSimulator::drives() {
  simulate_lifetimes();
  return drives_;
}

std::vector<VendorSummary> FleetSimulator::summarize() {
  simulate_lifetimes();
  const auto& catalog = vendor_catalog();
  std::vector<VendorSummary> out(catalog.size());
  for (std::size_t v = 0; v < catalog.size(); ++v) {
    out[v].vendor_name = catalog[v].name;
  }
  for (const auto& d : drives_) {
    auto& s = out[static_cast<std::size_t>(d.vendor)];
    ++s.total;
    if (d.outcome.fails) ++s.failures;
  }
  for (auto& s : out) {
    s.replacement_rate =
        s.total > 0 ? static_cast<double>(s.failures) /
                          static_cast<double>(s.total)
                    : 0.0;
  }
  return out;
}

std::vector<TroubleTicket> FleetSimulator::tickets() {
  simulate_lifetimes();
  const Rng base(scenario_.seed);
  std::vector<TroubleTicket> out;
  const double mean_delay = std::max(0.5, scenario_.mean_repair_delay);
  const double p = 1.0 / (1.0 + mean_delay);
  for (const auto& d : drives_) {
    if (!d.outcome.fails) continue;
    Rng rng = base.split(d.drive_id ^ kTicketSalt);
    TroubleTicket t;
    t.drive_id = d.drive_id;
    t.vendor = d.vendor;
    // The user notices the failure and brings the machine in after a delay;
    // at least one day elapses before the after-sales desk logs the case.
    t.imt = d.outcome.failure_day + 1 + static_cast<DayIndex>(rng.geometric(p));
    t.category = d.outcome.category;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(), [](const TroubleTicket& a, const TroubleTicket& b) {
    if (a.imt != b.imt) return a.imt < b.imt;
    return a.drive_id < b.drive_id;
  });
  return out;
}

DriveHardware FleetSimulator::hardware_of(const DriveInfo& info) const {
  const auto& model = vendor_catalog()[static_cast<std::size_t>(info.vendor)]
                          .models[static_cast<std::size_t>(info.model)];
  return {model.capacity_gb, model.flash_layers};
}

DriveTimeSeries FleetSimulator::generate_drive_telemetry(
    const DriveInfo& info) const {
  const Rng base(scenario_.seed);
  Rng rng = base.split(info.drive_id ^ kTelemetrySalt);

  DriveTimeSeries series;
  series.drive_id = info.drive_id;
  series.vendor = info.vendor;
  series.model = info.model;
  series.failed = info.outcome.fails;
  series.failure_day = info.outcome.fails ? info.outcome.failure_day : -1;

  const DayIndex window_start =
      std::max(scenario_.telemetry_start, info.outcome.deploy_day);
  const DayIndex window_end =
      info.outcome.fails
          ? std::min(scenario_.telemetry_end,
                     static_cast<DayIndex>(info.outcome.failure_day + 1))
          : scenario_.telemetry_end;
  if (window_start >= window_end) return series;

  auto days =
      UsageModel::observation_days(info.profile, window_start, window_end, rng);
  if (info.outcome.fails) {
    // A failing drive surfaces symptoms; the user powers the machine on and
    // the final days are very likely to be captured.
    static constexpr double kCaptureP[3] = {0.85, 0.65, 0.50};
    for (int back = 0; back < 3; ++back) {
      const DayIndex d =
          static_cast<DayIndex>(info.outcome.failure_day - back);
      if (d >= window_start && d < window_end && rng.bernoulli(kCaptureP[back])) {
        days.push_back(d);
      }
    }
    std::sort(days.begin(), days.end());
    days.erase(std::unique(days.begin(), days.end()), days.end());
  }
  if (days.empty()) return series;

  const DriveHardware hw = hardware_of(info);
  const auto& vendor = vendor_catalog()[static_cast<std::size_t>(info.vendor)];
  SmartState state = SmartModel::init_state(
      hw, info.profile,
      static_cast<double>(window_start - info.outcome.deploy_day), rng);
  // A slice of healthy drives suffers a transient SMART scare (media-error
  // burst without any W/B storage signature) somewhere in the window.
  if (!info.outcome.fails && rng.bernoulli(0.22) &&
      window_end - window_start > 30) {
    state.scare_day = static_cast<DayIndex>(
        rng.uniform_int(window_start + 10, window_end - 10));
    state.scare_len = static_cast<int>(rng.uniform_int(4, 12));
  }
  const bool grumpy_os = state.grumpy || rng.bernoulli(0.05);
  const EventRates base_rates = EventModel::healthy_base(grumpy_os);
  const EventRates& boost = EventModel::archetype_boost(info.outcome.archetype);

  // Firmware versions available over time: the shipped catalog, plus (under
  // drift) one out-of-catalog release appearing mid-window that a trained
  // model has never seen.
  const auto catalog_fw = vendor.firmware.size();
  const DayIndex drift_release_day =
      scenario_.telemetry_start +
      static_cast<DayIndex>(
          (scenario_.telemetry_end - scenario_.telemetry_start) * 55 / 100);
  std::uint8_t fw = info.firmware_initial;

  series.records.reserve(days.size());
  DayIndex prev_day = window_start;
  for (const DayIndex day : days) {
    const int elapsed = std::max(1, day - prev_day);
    SmartModel::advance(state, hw, info.profile, info.outcome, day, elapsed,
                        rng);

    const std::size_t latest_fw =
        (scenario_.enable_drift && day >= drift_release_day) ? catalog_fw
                                                             : catalog_fw - 1;
    if (fw < latest_fw &&
        rng.bernoulli(1.0 - std::pow(1.0 - kFirmwareUpdateDailyP, elapsed))) {
      ++fw;  // users move one release forward when they do update
    }

    DailyRecord rec;
    rec.day = day;
    rec.firmware_index = fw;
    rec.smart = SmartModel::observe(state, hw, info.outcome, day,
                                    scenario_.enable_drift, rng);
    const double level = degradation_level(info.outcome, day);
    EventModel::sample_day(base_rates, boost, level, rng, rec.w, rec.b);
    series.records.push_back(rec);
    prev_day = day;
  }
  return series;
}

std::vector<std::size_t> FleetSimulator::tracked_drives() {
  simulate_lifetimes();
  const Rng base(scenario_.seed);
  const auto& catalog = vendor_catalog();

  // Track: every drive failing inside the telemetry window + per-vendor
  // sampled healthy drives.
  std::vector<std::vector<std::size_t>> healthy_by_vendor(catalog.size());
  std::vector<std::size_t> tracked;
  std::vector<std::size_t> failed_per_vendor(catalog.size(), 0);
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    const auto& d = drives_[i];
    if (d.outcome.fails) {
      if (d.outcome.failure_day >= scenario_.telemetry_start &&
          d.outcome.failure_day < scenario_.telemetry_end) {
        tracked.push_back(i);
        ++failed_per_vendor[static_cast<std::size_t>(d.vendor)];
      }
    } else {
      healthy_by_vendor[static_cast<std::size_t>(d.vendor)].push_back(i);
    }
  }
  for (std::size_t v = 0; v < catalog.size(); ++v) {
    auto& pool = healthy_by_vendor[v];
    std::size_t want = static_cast<std::size_t>(
        std::ceil(static_cast<double>(failed_per_vendor[v]) *
                  scenario_.healthy_per_failed));
    want = std::max<std::size_t>(want, 16);  // floor for tiny scenarios
    if (scenario_.max_healthy_tracked > 0) {
      want = std::min(want, scenario_.max_healthy_tracked);
    }
    want = std::min(want, pool.size());
    Rng rng = base.split(0x5a17 + v);
    const auto pick = rng.sample_without_replacement(pool.size(), want);
    for (std::size_t k : pick) tracked.push_back(pool[k]);
  }
  std::sort(tracked.begin(), tracked.end());
  return tracked;
}

std::vector<DriveTimeSeries> FleetSimulator::generate_telemetry_chunk(
    const std::vector<std::size_t>& tracked, std::size_t begin,
    std::size_t end, std::size_t threads) {
  simulate_lifetimes();
  end = std::min(end, tracked.size());
  begin = std::min(begin, end);
  const std::size_t count = end - begin;

  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<DriveTimeSeries> generated(count);
  if (threads <= 1 || count <= 1) {
    for (std::size_t k = 0; k < count; ++k) {
      generated[k] = generate_drive_telemetry(drives_[tracked[begin + k]]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    const std::size_t workers = std::min(threads, count);
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t k = next.fetch_add(1); k < count;
             k = next.fetch_add(1)) {
          generated[k] = generate_drive_telemetry(drives_[tracked[begin + k]]);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  std::vector<DriveTimeSeries> out;
  out.reserve(generated.size());
  for (auto& series : generated) {
    if (!series.records.empty()) out.push_back(std::move(series));
  }
  return out;
}

std::vector<DriveTimeSeries> FleetSimulator::generate_telemetry(
    std::size_t threads) {
  const std::vector<std::size_t> tracked = tracked_drives();
  return generate_telemetry_chunk(tracked, 0, tracked.size(), threads);
}

}  // namespace mfpa::sim
