// Telemetry data-quality validation — the ingestion guard in front of the
// pipeline. Production telemetry arrives from millions of heterogeneous
// client agents; before training on a batch you want to know how
// discontinuous it is, whether counters run backwards (agent bugs, clock
// resets), and whether values sit in physically sensible ranges.
#pragma once

#include <string>
#include <vector>

#include "sim/telemetry.hpp"

namespace mfpa::sim {

/// One detected problem.
struct ValidationIssue {
  enum class Kind {
    kNonMonotonicDays,      ///< records not strictly increasing by day
    kCounterRegression,     ///< a monotone SMART counter decreased
    kValueOutOfRange,       ///< spare/temperature/etc. outside sane bounds
    kFirmwareDowngrade,     ///< firmware index decreased
    kEmptySeries,           ///< drive with no records
    kDuplicateDrive,        ///< drive id appears in two series
  };
  Kind kind;
  std::uint64_t drive_id = 0;
  DayIndex day = 0;
  std::string detail;
};

const char* validation_issue_name(ValidationIssue::Kind kind) noexcept;

/// Batch summary + the first `max_issues` concrete findings.
struct ValidationReport {
  std::size_t drives = 0;
  std::size_t records = 0;
  std::size_t issues_total = 0;
  std::vector<ValidationIssue> issues;   ///< capped sample
  // Discontinuity profile (per-drive adjacent-record gaps).
  std::size_t gaps_short = 0;   ///< 2..3 days (fillable)
  std::size_t gaps_medium = 0;  ///< 4..9 days
  std::size_t gaps_long = 0;    ///< >= 10 days (segment cuts)

  bool clean() const noexcept { return issues_total == 0; }
};

/// Validates a telemetry batch. Monotone counters checked: power-on hours,
/// power cycles, data units read/written, media errors, error-log entries.
ValidationReport validate_telemetry(const std::vector<DriveTimeSeries>& batch,
                                    std::size_t max_issues = 50);

}  // namespace mfpa::sim
