#include "sim/telemetry_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/string_util.hpp"

namespace mfpa::sim {
namespace {

std::string category_name(TicketCategory c) {
  return ticket_category_info(c).description;
}

TicketCategory category_from_name(const std::string& name) {
  for (const auto& info : ticket_categories()) {
    if (info.description == name) return info.category;
  }
  throw std::runtime_error("telemetry_io: unknown ticket category '" + name +
                           "'");
}

}  // namespace

std::vector<std::string> telemetry_csv_header() {
  std::vector<std::string> header{"sn",    "vendor",   "model",
                                  "day",   "failed",   "failure_day",
                                  "firmware_index"};
  for (const auto& name : smart_attr_names()) header.push_back(name);
  for (const auto& e : windows_event_types()) header.push_back(e.name);
  for (const auto& b : bsod_code_types()) header.push_back(b.name);
  return header;
}

void write_telemetry_csv(std::ostream& os,
                         const std::vector<DriveTimeSeries>& batch) {
  csv::write_row(os, telemetry_csv_header());
  std::vector<std::string> row;
  for (const auto& series : batch) {
    for (const auto& rec : series.records) {
      row.clear();
      row.push_back(std::to_string(series.drive_id));
      row.push_back(std::to_string(series.vendor));
      row.push_back(std::to_string(series.model));
      row.push_back(std::to_string(rec.day));
      row.push_back(series.failed ? "1" : "0");
      row.push_back(std::to_string(series.failure_day));
      row.push_back(std::to_string(static_cast<int>(rec.firmware_index)));
      for (float v : rec.smart) row.push_back(format_double(v, 6));
      for (auto v : rec.w) row.push_back(std::to_string(v));
      for (auto v : rec.b) row.push_back(std::to_string(v));
      csv::write_row(os, row);
    }
  }
}

std::vector<DriveTimeSeries> read_telemetry_csv(std::istream& is) {
  const csv::Document doc = csv::read(is);
  const auto expected = telemetry_csv_header();
  if (doc.header != expected) {
    throw std::runtime_error("telemetry_io: unexpected telemetry header");
  }
  constexpr std::size_t kFixed = 7;
  const std::size_t arity =
      kFixed + kNumSmartAttrs + kNumWindowsEvents + kNumBsodCodes;

  std::map<std::uint64_t, DriveTimeSeries> by_drive;
  for (const auto& row : doc.rows) {
    if (row.size() != arity) {
      throw std::runtime_error("telemetry_io: row arity mismatch");
    }
    const std::uint64_t sn = std::stoull(row[0]);
    DriveTimeSeries& series = by_drive[sn];
    series.drive_id = sn;
    series.vendor = std::stoi(row[1]);
    series.model = std::stoi(row[2]);
    series.failed = row[4] == "1";
    series.failure_day = std::stoi(row[5]);

    DailyRecord rec;
    rec.day = std::stoi(row[3]);
    rec.firmware_index = static_cast<std::uint8_t>(std::stoi(row[6]));
    std::size_t col = kFixed;
    for (auto& v : rec.smart) v = std::stof(row[col++]);
    for (auto& v : rec.w) v = static_cast<std::uint16_t>(std::stoi(row[col++]));
    for (auto& v : rec.b) v = static_cast<std::uint16_t>(std::stoi(row[col++]));
    series.records.push_back(rec);
  }
  std::vector<DriveTimeSeries> out;
  out.reserve(by_drive.size());
  for (auto& [sn, series] : by_drive) {
    std::sort(series.records.begin(), series.records.end(),
              [](const DailyRecord& a, const DailyRecord& b) {
                return a.day < b.day;
              });
    out.push_back(std::move(series));
  }
  return out;
}

void write_tickets_csv(std::ostream& os,
                       const std::vector<TroubleTicket>& tickets) {
  csv::write_row(os, {"sn", "vendor", "imt", "category"});
  for (const auto& t : tickets) {
    csv::write_row(os, {std::to_string(t.drive_id), std::to_string(t.vendor),
                        std::to_string(t.imt), category_name(t.category)});
  }
}

std::vector<TroubleTicket> read_tickets_csv(std::istream& is) {
  const csv::Document doc = csv::read(is);
  if (doc.header != std::vector<std::string>{"sn", "vendor", "imt", "category"}) {
    throw std::runtime_error("telemetry_io: unexpected ticket header");
  }
  std::vector<TroubleTicket> out;
  out.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    if (row.size() != 4) {
      throw std::runtime_error("telemetry_io: ticket row arity mismatch");
    }
    TroubleTicket t;
    t.drive_id = std::stoull(row[0]);
    t.vendor = std::stoi(row[1]);
    t.imt = std::stoi(row[2]);
    t.category = category_from_name(row[3]);
    out.push_back(t);
  }
  return out;
}

void write_telemetry_file(const std::string& path,
                          const std::vector<DriveTimeSeries>& batch) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("telemetry_io: cannot open " + path);
  write_telemetry_csv(f, batch);
}

std::vector<DriveTimeSeries> read_telemetry_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("telemetry_io: cannot open " + path);
  return read_telemetry_csv(f);
}

void write_tickets_file(const std::string& path,
                        const std::vector<TroubleTicket>& tickets) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("telemetry_io: cannot open " + path);
  write_tickets_csv(f, tickets);
}

std::vector<TroubleTicket> read_tickets_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("telemetry_io: cannot open " + path);
  return read_tickets_csv(f);
}

}  // namespace mfpa::sim
