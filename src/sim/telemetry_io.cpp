#include "sim/telemetry_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/string_util.hpp"

namespace mfpa::sim {
namespace {

std::string category_name(TicketCategory c) {
  return ticket_category_info(c).description;
}

bool category_from_name(const std::string& name, TicketCategory& out) {
  for (const auto& info : ticket_categories()) {
    if (info.description == name) {
      out = info.category;
      return true;
    }
  }
  return false;
}

template <typename T>
bool parse_number(const std::string& text, T& out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

/// Shared row-fault funnel: strict throws a located std::runtime_error,
/// lenient records the diagnostic and counts the drop/repair.
struct RowContext {
  const RobustnessConfig& robustness;
  IngestStats& stats;
  std::size_t line = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("telemetry_io: line " + std::to_string(line) +
                             ": " + what);
  }
  [[noreturn]] void fail_column(const std::string& column,
                                const std::string& what) const {
    throw std::runtime_error("telemetry_io: line " + std::to_string(line) +
                             ", column '" + column + "': " + what);
  }
  void diagnose(const std::string& what) {
    stats.note("line " + std::to_string(line) + ": " + what,
               robustness.max_diagnostics);
  }
};

}  // namespace

std::vector<std::string> telemetry_csv_header() {
  std::vector<std::string> header{"sn",    "vendor",   "model",
                                  "day",   "failed",   "failure_day",
                                  "firmware_index"};
  for (const auto& name : smart_attr_names()) header.push_back(name);
  for (const auto& e : windows_event_types()) header.push_back(e.name);
  for (const auto& b : bsod_code_types()) header.push_back(b.name);
  return header;
}

void write_telemetry_csv(std::ostream& os,
                         const std::vector<DriveTimeSeries>& batch) {
  csv::write_row(os, telemetry_csv_header());
  std::vector<std::string> row;
  for (const auto& series : batch) {
    for (const auto& rec : series.records) {
      row.clear();
      row.push_back(std::to_string(series.drive_id));
      row.push_back(std::to_string(series.vendor));
      row.push_back(std::to_string(series.model));
      row.push_back(std::to_string(rec.day));
      row.push_back(series.failed ? "1" : "0");
      row.push_back(std::to_string(series.failure_day));
      row.push_back(std::to_string(static_cast<int>(rec.firmware_index)));
      for (float v : rec.smart) row.push_back(format_double(v, 6));
      for (auto v : rec.w) row.push_back(std::to_string(v));
      for (auto v : rec.b) row.push_back(std::to_string(v));
      csv::write_row(os, row);
    }
  }
}

std::vector<DriveTimeSeries> read_telemetry_csv(
    std::istream& is, const RobustnessConfig& robustness, IngestStats* stats) {
  const auto header = telemetry_csv_header();
  const std::size_t arity = header.size();
  constexpr std::size_t kFixed = 7;

  IngestStats local;
  RowContext ctx{robustness, local};
  const bool lenient = robustness.lenient();

  std::string line;
  if (!std::getline(is, line) || csv::parse_line(line) != header) {
    // A wrong header means the columns cannot be interpreted at all; no
    // degradation is possible, so both modes fail fast.
    throw std::runtime_error("telemetry_io: unexpected telemetry header");
  }

  std::map<std::uint64_t, DriveTimeSeries> by_drive;
  for (std::size_t line_no = 2; std::getline(is, line); ++line_no) {
    if (line.empty() && is.peek() == std::char_traits<char>::eof()) break;
    ctx.line = line_no;
    ++local.rows_read;

    std::vector<std::string> row;
    try {
      row = csv::parse_line(line);
    } catch (const std::invalid_argument& e) {
      if (!lenient) ctx.fail(e.what());
      ++local.bad_cells;
      ++local.rows_dropped;
      ctx.diagnose(e.what());
      continue;
    }
    if (row.size() != arity) {
      const std::string what = "expected " + std::to_string(arity) +
                               " fields, got " + std::to_string(row.size());
      if (!lenient) ctx.fail(what);
      ++local.short_rows;
      ++local.rows_dropped;
      ctx.diagnose(what);
      continue;
    }

    // Fixed identity/label columns. A bad cell invalidates the whole row.
    std::uint64_t sn = 0;
    int vendor = 0, model = 0, failure_day = 0, day = 0;
    bool row_ok = true, repaired = false;
    const auto need = [&](bool ok, std::size_t col) {
      if (ok) return true;
      if (!lenient) {
        ctx.fail_column(header[col], "cannot parse '" + row[col] + "'");
      }
      ++local.bad_cells;
      ctx.diagnose("column '" + header[col] + "': cannot parse '" + row[col] +
                   "'");
      row_ok = false;
      return false;
    };
    if (!need(parse_number(row[0], sn), 0) ||
        !need(parse_number(row[1], vendor) && vendor >= 0 &&
                  vendor < static_cast<int>(kNumVendors),
              1) ||
        !need(parse_number(row[2], model) && model >= 0, 2) ||
        !need(parse_number(row[3], day), 3) ||
        !need(parse_number(row[5], failure_day), 5)) {
      ++local.rows_dropped;
      continue;
    }

    DailyRecord rec;
    rec.day = day;
    // Malformed firmware is repairable: the version string is a feature, not
    // an identity, so lenient mode resets it to the vendor's first release.
    int fw = 0;
    if (parse_number(row[6], fw) && fw >= 0 && fw <= 255) {
      rec.firmware_index = static_cast<std::uint8_t>(fw);
    } else if (lenient) {
      rec.firmware_index = 0;
      ++local.firmware_repairs;
      ctx.diagnose("column 'firmware_index': repaired malformed '" + row[6] +
                   "'");
      repaired = true;
    } else {
      ctx.fail_column(header[6], "cannot parse '" + row[6] + "'");
    }

    std::size_t col = kFixed;
    for (auto& v : rec.smart) {
      if (!need(parse_number(row[col], v), col)) break;
      ++col;
    }
    if (row_ok) {
      for (auto& v : rec.w) {
        int count = 0;
        if (!need(parse_number(row[col], count) && count >= 0 && count <= 65535,
                  col)) {
          break;
        }
        v = static_cast<std::uint16_t>(count);
        ++col;
      }
    }
    if (row_ok) {
      for (auto& v : rec.b) {
        int count = 0;
        if (!need(parse_number(row[col], count) && count >= 0 && count <= 65535,
                  col)) {
          break;
        }
        v = static_cast<std::uint16_t>(count);
        ++col;
      }
    }
    if (!row_ok) {
      ++local.rows_dropped;
      continue;
    }
    if (repaired) ++local.rows_repaired;

    DriveTimeSeries& series = by_drive[sn];
    series.drive_id = sn;
    series.vendor = vendor;
    series.model = model;
    series.failed = row[4] == "1";
    series.failure_day = failure_day;
    series.records.push_back(rec);
  }

  std::vector<DriveTimeSeries> out;
  out.reserve(by_drive.size());
  for (auto& [sn, series] : by_drive) {
    // Stable sort keeps duplicate days in file order, so lenient-mode
    // "first upload wins" is deterministic.
    std::stable_sort(series.records.begin(), series.records.end(),
                     [](const DailyRecord& a, const DailyRecord& b) {
                       return a.day < b.day;
                     });
    out.push_back(std::move(series));
  }
  if (stats != nullptr) stats->merge(local, robustness.max_diagnostics);
  return out;
}

std::vector<DriveTimeSeries> read_telemetry_csv(std::istream& is) {
  return read_telemetry_csv(is, RobustnessConfig{});
}

void write_tickets_csv(std::ostream& os,
                       const std::vector<TroubleTicket>& tickets) {
  csv::write_row(os, {"sn", "vendor", "imt", "category"});
  for (const auto& t : tickets) {
    csv::write_row(os, {std::to_string(t.drive_id), std::to_string(t.vendor),
                        std::to_string(t.imt), category_name(t.category)});
  }
}

std::vector<TroubleTicket> read_tickets_csv(std::istream& is,
                                            const RobustnessConfig& robustness,
                                            IngestStats* stats) {
  static const std::vector<std::string> kHeader = {"sn", "vendor", "imt",
                                                   "category"};
  IngestStats local;
  RowContext ctx{robustness, local};
  const bool lenient = robustness.lenient();

  std::string line;
  if (!std::getline(is, line) || csv::parse_line(line) != kHeader) {
    throw std::runtime_error("telemetry_io: unexpected ticket header");
  }

  std::vector<TroubleTicket> out;
  for (std::size_t line_no = 2; std::getline(is, line); ++line_no) {
    if (line.empty() && is.peek() == std::char_traits<char>::eof()) break;
    ctx.line = line_no;
    ++local.rows_read;

    const auto drop = [&](const std::string& what) {
      ++local.tickets_dropped;
      ++local.rows_dropped;
      ctx.diagnose(what);
    };

    std::vector<std::string> row;
    try {
      row = csv::parse_line(line);
    } catch (const std::invalid_argument& e) {
      if (!lenient) ctx.fail(e.what());
      ++local.bad_cells;
      drop(e.what());
      continue;
    }
    if (row.size() != kHeader.size()) {
      const std::string what = "expected 4 fields, got " +
                               std::to_string(row.size());
      if (!lenient) ctx.fail(what);
      ++local.short_rows;
      drop(what);
      continue;
    }
    TroubleTicket t;
    if (!parse_number(row[0], t.drive_id)) {
      if (!lenient) ctx.fail_column("sn", "cannot parse '" + row[0] + "'");
      ++local.bad_cells;
      drop("column 'sn': cannot parse '" + row[0] + "'");
      continue;
    }
    if (!parse_number(row[1], t.vendor)) {
      if (!lenient) ctx.fail_column("vendor", "cannot parse '" + row[1] + "'");
      ++local.bad_cells;
      drop("column 'vendor': cannot parse '" + row[1] + "'");
      continue;
    }
    if (!parse_number(row[2], t.imt)) {
      if (!lenient) ctx.fail_column("imt", "cannot parse '" + row[2] + "'");
      ++local.bad_cells;
      drop("column 'imt': cannot parse '" + row[2] + "'");
      continue;
    }
    if (!category_from_name(row[3], t.category)) {
      if (!lenient) {
        ctx.fail_column("category", "unknown ticket category '" + row[3] + "'");
      }
      ++local.bad_cells;
      drop("column 'category': unknown ticket category '" + row[3] + "'");
      continue;
    }
    out.push_back(t);
  }
  if (stats != nullptr) stats->merge(local, robustness.max_diagnostics);
  return out;
}

std::vector<TroubleTicket> read_tickets_csv(std::istream& is) {
  return read_tickets_csv(is, RobustnessConfig{});
}

void write_telemetry_file(const std::string& path,
                          const std::vector<DriveTimeSeries>& batch) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("telemetry_io: cannot open " + path);
  write_telemetry_csv(f, batch);
}

std::vector<DriveTimeSeries> read_telemetry_file(
    const std::string& path, const RobustnessConfig& robustness,
    IngestStats* stats) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("telemetry_io: cannot open " + path);
  return read_telemetry_csv(f, robustness, stats);
}

void write_tickets_file(const std::string& path,
                        const std::vector<TroubleTicket>& tickets) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("telemetry_io: cannot open " + path);
  write_tickets_csv(f, tickets);
}

std::vector<TroubleTicket> read_tickets_file(const std::string& path,
                                             const RobustnessConfig& robustness,
                                             IngestStats* stats) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("telemetry_io: cannot open " + path);
  return read_tickets_csv(f, robustness, stats);
}

}  // namespace mfpa::sim
