#include "sim/catalog.hpp"

#include <stdexcept>

namespace mfpa::sim {

const std::array<std::string, kNumSmartAttrs>& smart_attr_names() {
  static const std::array<std::string, kNumSmartAttrs> kNames = {
      "S_1",  "S_2",  "S_3",  "S_4",  "S_5",  "S_6",  "S_7",  "S_8",
      "S_9",  "S_10", "S_11", "S_12", "S_13", "S_14", "S_15", "S_16"};
  return kNames;
}

const std::array<std::string, kNumSmartAttrs>& smart_attr_descriptions() {
  static const std::array<std::string, kNumSmartAttrs> kDescriptions = {
      "Critical Warning",
      "Composite Temperature",
      "Available Spare",
      "Available Spare Threshold",
      "Percentage Used",
      "Data Units Read",
      "Data Units Written",
      "Host Read Commands",
      "Host Write Commands",
      "Controller Busy Time",
      "Power Cycles",
      "Power On Hours",
      "Unsafe Shutdowns",
      "Media and Data Integrity Errors",
      "Number of Error Information Log Entries",
      "Capacity"};
  return kDescriptions;
}

const std::array<WindowsEventType, kNumWindowsEvents>& windows_event_types() {
  static const std::array<WindowsEventType, kNumWindowsEvents> kEvents = {{
      {7, "W_7", "The device has a bad block"},
      {11, "W_11", "The driver detects a controller error on Disk_i"},
      {15, "W_15", "The Disk_i is not ready for access yet"},
      {49, "W_49", "Configuring the page file for crash dump fails"},
      {51, "W_51", "An error is detected on device during a paging operation"},
      {52, "W_52", "The driver detects that device has predicted it will fail"},
      {154, "W_154", "The IO operation at logical block address fails due to a hardware error"},
      {157, "W_157", "Disk has been surprisingly removed"},
      {161, "W_161", "File System error during IO on database"},
  }};
  return kEvents;
}

std::size_t windows_event_index(int id) {
  const auto& events = windows_event_types();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].id == id) return i;
  }
  throw std::out_of_range("windows_event_index: unknown event id " +
                          std::to_string(id));
}

const std::array<BsodCodeType, kNumBsodCodes>& bsod_code_types() {
  static const std::array<BsodCodeType, kNumBsodCodes> kCodes = {{
      {0x23, "B_23", "FAT_FILE_SYSTEM"},
      {0x24, "B_24", "NTFS_FILE_SYSTEM"},
      {0x48, "B_48", "CANCEL_STATE_IN_COMPLETED_IRP"},
      {0x50, "B_50", "PAGE_FAULT_IN_NONPAGED_AREA"},
      {0x6B, "B_6B", "PROCESS1_INITIALIZATION_FAILED"},
      {0x77, "B_77", "KERNEL_STACK_INPAGE_ERROR"},
      {0x7A, "B_7A", "KERNEL_DATA_INPAGE_ERROR"},
      {0x7B, "B_7B", "INACCESSIBLE_BOOT_DEVICE"},  // reconstructed 23rd code
      {0x80, "B_80", "NMI_HARDWARE_FAILURE"},
      {0x9B, "B_9B", "UDFS_FILE_SYSTEM"},
      {0xC7, "B_C7", "TIMER_OR_DPC_INVALID"},
      {0xDA, "B_DA", "SYSTEM_PTE_MISUSE"},
      {0xE4, "B_E4", "WORKER_INVALID"},
      {0xFC, "B_FC", "ATTEMPTED_EXECUTE_OF_NOEXECUTE_MEMORY"},
      {0x10C, "B_10C", "FSRTL_EXTRA_CREATE_PARAMETER_VIOLATION"},
      {0x12C, "B_12C", "EXFAT_FILE_SYSTEM"},
      {0x135, "B_135", "REGISTRY_FILTER_DRIVER_EXCEPTION"},
      {0x13B, "B_13B", "PASSIVE_INTERRUPT_ERROR"},
      {0x157, "B_157", "KERNEL_THREAD_PRIORITY_FLOOR_VIOLATION"},
      {0x17E, "B_17E", "MICROCODE_REVISION_MISMATCH"},
      {0x189, "B_189", "BAD_OBJECT_HEADER"},
      {0x1DB, "B_1DB", "IPI_WATCHDOG_TIMEOUT"},
      {0xC00, "B_C00", "STATUS_CANNOT_LOAD"},
  }};
  return kCodes;
}

std::size_t bsod_code_index(int code) {
  const auto& codes = bsod_code_types();
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i].code == code) return i;
  }
  throw std::out_of_range("bsod_code_index: unknown stop code " +
                          std::to_string(code));
}

const std::array<TicketCategoryInfo, kNumTicketCategories>& ticket_categories() {
  static const std::array<TicketCategoryInfo, kNumTicketCategories> kCategories = {{
      {TicketCategory::kStorageDriveFailure, FailureLevel::kDriveLevel,
       "Components failure", "Storage drive failure", 0.3113},
      {TicketCategory::kFirmwareUpgradeFailure, FailureLevel::kDriveLevel,
       "Components failure", "Firmware upgrade failure", 0.0042},
      {TicketCategory::kOvertemperature, FailureLevel::kDriveLevel,
       "Components failure", "Overtemperature", 0.0007},
      {TicketCategory::kBlueBlackScreenAfterStartup, FailureLevel::kSystemLevel,
       "Boot/Shutdown failure", "Blue/Black screen after startup", 0.2144},
      {TicketCategory::kUnableToBootShutdown, FailureLevel::kSystemLevel,
       "Boot/Shutdown failure", "Unable to boot/shutdown", 0.1857},
      {TicketCategory::kBootloop, FailureLevel::kSystemLevel,
       "Boot/Shutdown failure", "Bootloop", 0.0500},
      {TicketCategory::kStuckStartupIcon, FailureLevel::kSystemLevel,
       "Boot/Shutdown failure", "Stuck startup icon", 0.0320},
      {TicketCategory::kResponseDelayBlueScreen, FailureLevel::kSystemLevel,
       "System running failure", "Response delay/blue screen", 0.0866},
      {TicketCategory::kUnauthorizedSystemInstall, FailureLevel::kSystemLevel,
       "System running failure", "Unauthorized system installation", 0.0543},
      {TicketCategory::kSystemPartitionDamage, FailureLevel::kSystemLevel,
       "System running failure", "System partition damage", 0.0258},
      {TicketCategory::kAutomaticShutdownRestart, FailureLevel::kSystemLevel,
       "System running failure", "Automatic shutdown/restart", 0.0194},
      {TicketCategory::kSystemUpgradeRecoveryFailure, FailureLevel::kSystemLevel,
       "System running failure", "System upgrade/recovery failure", 0.0078},
      {TicketCategory::kAppsCrash, FailureLevel::kSystemLevel,
       "Application error", "Apps crash/report errors/stuck", 0.0077},
  }};
  return kCategories;
}

const TicketCategoryInfo& ticket_category_info(TicketCategory c) {
  return ticket_categories()[static_cast<std::size_t>(c)];
}

const std::array<VendorConfig, kNumVendors>& vendor_catalog() {
  static const std::array<VendorConfig, kNumVendors> kVendors = {{
      // Vendor I: smallest fleet, by far the highest replacement rate, five
      // firmware generations with the two earliest clearly worst (Fig. 3).
      {"I",
       270325,
       0.0068,
       {{"I_F_1", 3.0, 0.12},
        {"I_F_2", 2.4, 0.18},
        {"I_F_3", 1.2, 0.30},
        {"I_F_4", 0.7, 0.25},
        {"I_F_5", 0.4, 0.15}},
       {{"I-M128", 128, 32, 0.20},
        {"I-M256", 256, 48, 0.35},
        {"I-M512", 512, 64, 0.30},
        {"I-M1T", 1024, 64, 0.15}},
       {0.25, 0.30, 0.25, 0.20}},
      // Vendor II: the largest and most reliable fleet.
      {"II",
       1001278,
       0.0007,
       {{"II_F_1", 1.9, 0.25}, {"II_F_2", 1.0, 0.45}, {"II_F_3", 0.5, 0.30}},
       {{"II-M256", 256, 64, 0.40},
        {"II-M512", 512, 64, 0.40},
        {"II-M1T", 1024, 96, 0.20}},
       {0.30, 0.30, 0.22, 0.18}},
      // Vendor III.
      {"III",
       908037,
       0.0005,
       {{"III_F_1", 1.6, 0.40}, {"III_F_2", 0.6, 0.60}},
       {{"III-M128", 128, 48, 0.25},
        {"III-M256", 256, 64, 0.45},
        {"III-M512", 512, 96, 0.30}},
       {0.28, 0.32, 0.22, 0.18}},
      // Vendor IV: small fleet; fewest absolute failures (the paper notes its
      // model underperforms for exactly that reason).
      {"IV",
       152405,
       0.0011,
       {{"IV_F_1", 1.5, 0.55}, {"IV_F_2", 0.5, 0.45}},
       {{"IV-M256", 256, 64, 0.60}, {"IV-M512", 512, 96, 0.40}},
       {0.22, 0.28, 0.28, 0.22}},
  }};
  return kVendors;
}

}  // namespace mfpa::sim
