#include "sim/validate.hpp"

#include <unordered_set>

namespace mfpa::sim {
namespace {

constexpr std::array<SmartAttr, 6> kMonotoneCounters = {
    SmartAttr::kPowerOnHours,    SmartAttr::kPowerCycles,
    SmartAttr::kDataUnitsRead,   SmartAttr::kDataUnitsWritten,
    SmartAttr::kMediaErrors,     SmartAttr::kErrorLogEntries,
};

float attr(const DailyRecord& rec, SmartAttr a) {
  return rec.smart[static_cast<std::size_t>(a)];
}

}  // namespace

const char* validation_issue_name(ValidationIssue::Kind kind) noexcept {
  switch (kind) {
    case ValidationIssue::Kind::kNonMonotonicDays: return "non-monotonic days";
    case ValidationIssue::Kind::kCounterRegression: return "counter regression";
    case ValidationIssue::Kind::kValueOutOfRange: return "value out of range";
    case ValidationIssue::Kind::kFirmwareDowngrade: return "firmware downgrade";
    case ValidationIssue::Kind::kEmptySeries: return "empty series";
    case ValidationIssue::Kind::kDuplicateDrive: return "duplicate drive";
  }
  return "unknown";
}

ValidationReport validate_telemetry(const std::vector<DriveTimeSeries>& batch,
                                    std::size_t max_issues) {
  ValidationReport report;
  std::unordered_set<std::uint64_t> seen;
  auto add_issue = [&](ValidationIssue::Kind kind, std::uint64_t drive,
                       DayIndex day, std::string detail) {
    ++report.issues_total;
    if (report.issues.size() < max_issues) {
      report.issues.push_back({kind, drive, day, std::move(detail)});
    }
  };

  for (const auto& series : batch) {
    ++report.drives;
    report.records += series.records.size();
    if (!seen.insert(series.drive_id).second) {
      add_issue(ValidationIssue::Kind::kDuplicateDrive, series.drive_id, 0,
                "drive id appears in multiple series");
    }
    if (series.records.empty()) {
      add_issue(ValidationIssue::Kind::kEmptySeries, series.drive_id, 0,
                "no records");
      continue;
    }
    const DailyRecord* prev = nullptr;
    for (const auto& rec : series.records) {
      // Range checks.
      const float spare = attr(rec, SmartAttr::kAvailableSpare);
      if (spare < 0.0f || spare > 100.0f) {
        add_issue(ValidationIssue::Kind::kValueOutOfRange, series.drive_id,
                  rec.day, "available spare " + std::to_string(spare));
      }
      const float temp = attr(rec, SmartAttr::kCompositeTemperature);
      if (temp < -20.0f || temp > 110.0f) {
        add_issue(ValidationIssue::Kind::kValueOutOfRange, series.drive_id,
                  rec.day, "temperature " + std::to_string(temp));
      }
      const float used = attr(rec, SmartAttr::kPercentageUsed);
      if (used < 0.0f || used > 255.0f) {
        add_issue(ValidationIssue::Kind::kValueOutOfRange, series.drive_id,
                  rec.day, "percentage used " + std::to_string(used));
      }

      if (prev != nullptr) {
        const int gap = rec.day - prev->day;
        if (gap <= 0) {
          add_issue(ValidationIssue::Kind::kNonMonotonicDays, series.drive_id,
                    rec.day, "day repeats or goes backwards");
        } else if (gap >= 2 && gap <= 3) {
          ++report.gaps_short;
        } else if (gap <= 9) {
          if (gap >= 4) ++report.gaps_medium;
        } else {
          ++report.gaps_long;
        }
        for (SmartAttr a : kMonotoneCounters) {
          if (attr(rec, a) < attr(*prev, a) - 0.5f) {
            add_issue(ValidationIssue::Kind::kCounterRegression,
                      series.drive_id, rec.day,
                      std::string(smart_attr_descriptions()
                                      [static_cast<std::size_t>(a)]) +
                          " decreased");
          }
        }
        if (rec.firmware_index < prev->firmware_index) {
          add_issue(ValidationIssue::Kind::kFirmwareDowngrade, series.drive_id,
                    rec.day, "firmware index decreased");
        }
      }
      prev = &rec;
    }
  }
  return report;
}

}  // namespace mfpa::sim
