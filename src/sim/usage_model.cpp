#include "sim/usage_model.hpp"

#include <algorithm>
#include <array>

namespace mfpa::sim {
namespace {

constexpr std::array<UsageParams, kNumUserProfiles> kProfiles = {{
    // p_on, hours, write_gb, p_vacation, p_unsafe, weekend_factor
    {0.97, 16.0, 45.0, 0.001, 0.010, 1.0},   // always-on
    {0.72, 8.0, 18.0, 0.004, 0.025, 0.45},   // regular (office: quiet weekends)
    {0.38, 3.5, 6.0, 0.008, 0.050, 1.35},    // sporadic (personal: busy weekends)
}};

}  // namespace

bool is_weekend(DayIndex day) noexcept {
  // Day 0 = 2021-01-01 = Friday; Saturday = 1 mod 7, Sunday = 2 mod 7.
  const int dow = ((day % 7) + 7) % 7;
  return dow == 1 || dow == 2;
}

const char* user_profile_name(UserProfile p) noexcept {
  switch (p) {
    case UserProfile::kAlwaysOn: return "always_on";
    case UserProfile::kRegular: return "regular";
    case UserProfile::kSporadic: return "sporadic";
  }
  return "unknown";
}

UserProfile UsageModel::sample_profile(Rng& rng) {
  const std::size_t i = rng.categorical({0.20, 0.55, 0.25});
  return static_cast<UserProfile>(i);
}

const UsageParams& UsageModel::params(UserProfile p) noexcept {
  return kProfiles[static_cast<std::size_t>(p)];
}

std::vector<DayIndex> UsageModel::observation_days(UserProfile p, DayIndex start,
                                                   DayIndex end, Rng& rng) {
  const UsageParams& up = params(p);
  // Telemetry upload is not guaranteed even on powered-on days (agent may be
  // disabled, machine offline, upload dropped).
  constexpr double kUploadProbability = 0.95;
  std::vector<DayIndex> days;
  int vacation_left = 0;
  for (DayIndex d = start; d < end; ++d) {
    if (vacation_left > 0) {
      --vacation_left;
      continue;
    }
    if (rng.bernoulli(up.p_vacation_start)) {
      vacation_left = static_cast<int>(rng.uniform_int(7, 21));
      continue;
    }
    const double p_on = std::min(
        1.0, up.p_power_on * (is_weekend(d) ? up.weekend_factor : 1.0));
    if (rng.bernoulli(p_on) && rng.bernoulli(kUploadProbability)) {
      days.push_back(d);
    }
  }
  return days;
}

double UsageModel::effective_hours_per_day(UserProfile p) noexcept {
  const UsageParams& up = params(p);
  return up.p_power_on * up.mean_hours;
}

}  // namespace mfpa::sim
