// Static catalog of the simulated consumer-SSD population: vendors, models,
// firmware versions, SMART attribute names (paper Table II), WindowsEvent
// types (Table III), BlueScreenOfDeath codes (Table IV), and the RaSRF
// trouble-ticket taxonomy (Table I).
//
// The numbers mirror the paper's Table VI population: four vendors (I..IV),
// twelve M.2 NVMe models, per-vendor firmware version counts {5,3,2,2} with
// "earlier firmware fails more" multipliers (Observation #2 / Fig. 3).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace mfpa::sim {

// ---------------------------------------------------------------------------
// SMART attributes (paper Table II; NVMe health-log derived, 16 attributes)
// ---------------------------------------------------------------------------

/// Column indices into the SMART value array. Order matches Table II.
enum class SmartAttr : std::size_t {
  kCriticalWarning = 0,
  kCompositeTemperature,
  kAvailableSpare,
  kAvailableSpareThreshold,
  kPercentageUsed,
  kDataUnitsRead,
  kDataUnitsWritten,
  kHostReadCommands,
  kHostWriteCommands,
  kControllerBusyTime,
  kPowerCycles,
  kPowerOnHours,
  kUnsafeShutdowns,
  kMediaErrors,          // Media and Data Integrity Errors
  kErrorLogEntries,      // Number of Error Information Log Entries
  kCapacity,
};

inline constexpr std::size_t kNumSmartAttrs = 16;

/// Canonical feature names ("S_1".."S_16" plus human-readable description).
const std::array<std::string, kNumSmartAttrs>& smart_attr_names();
const std::array<std::string, kNumSmartAttrs>& smart_attr_descriptions();

// ---------------------------------------------------------------------------
// WindowsEvent types (paper Table III; 9 tracked event ids)
// ---------------------------------------------------------------------------

struct WindowsEventType {
  int id;                   ///< Windows event id (e.g. 161)
  std::string name;         ///< "W_161"
  std::string description;  ///< Table III description
};

inline constexpr std::size_t kNumWindowsEvents = 9;
const std::array<WindowsEventType, kNumWindowsEvents>& windows_event_types();

/// Position of event id in the tracked array; throws std::out_of_range.
std::size_t windows_event_index(int id);

// ---------------------------------------------------------------------------
// BlueScreenOfDeath codes (paper Table IV; 23 tracked stop codes).
// Table IV of the paper prints 22 rows but the feature-group table (Table V)
// counts 23 B attributes; we add 0x7B INACCESSIBLE_BOOT_DEVICE — the
// canonical storage-related stop code — as the reconstructed 23rd entry.
// ---------------------------------------------------------------------------

struct BsodCodeType {
  int code;                 ///< stop code (e.g. 0x7A)
  std::string name;         ///< "B_7A"
  std::string description;  ///< stop-code symbolic name
};

inline constexpr std::size_t kNumBsodCodes = 23;
const std::array<BsodCodeType, kNumBsodCodes>& bsod_code_types();

/// Position of stop code in the tracked array; throws std::out_of_range.
std::size_t bsod_code_index(int code);

// ---------------------------------------------------------------------------
// RaSRF trouble-ticket taxonomy (paper Table I)
// ---------------------------------------------------------------------------

/// Failure manifestation level.
enum class FailureLevel { kDriveLevel, kSystemLevel };

/// Ticket category. Percentages from Table I; the two boot/shutdown rows
/// whose values are illegible in the source scan are reconstructed so the
/// category group sums match the paper's totals (48.21% boot/shutdown).
enum class TicketCategory : std::size_t {
  // Drive level (31.62% total)
  kStorageDriveFailure = 0,      // 31.13%
  kFirmwareUpgradeFailure,       //  0.42%
  kOvertemperature,              //  0.07%
  // System level: boot/shutdown (48.21% total)
  kBlueBlackScreenAfterStartup,  // 21.44%
  kUnableToBootShutdown,         // 18.57% (reconstructed)
  kBootloop,                     //  5.00% (reconstructed)
  kStuckStartupIcon,             //  3.20%
  // System level: running (19.39% total)
  kResponseDelayBlueScreen,      //  8.66%
  kUnauthorizedSystemInstall,    //  5.43%
  kSystemPartitionDamage,        //  2.58%
  kAutomaticShutdownRestart,     //  1.94%
  kSystemUpgradeRecoveryFailure, //  0.78%
  // System level: application (0.77%)
  kAppsCrash,                    //  0.77%
};

inline constexpr std::size_t kNumTicketCategories = 13;

struct TicketCategoryInfo {
  TicketCategory category;
  FailureLevel level;
  std::string group;        ///< "Components failure", "Boot/Shutdown failure", ...
  std::string description;  ///< Table I cause text
  double fraction;          ///< population fraction (sums to ~1 across rows)
};

const std::array<TicketCategoryInfo, kNumTicketCategories>& ticket_categories();
const TicketCategoryInfo& ticket_category_info(TicketCategory c);

// ---------------------------------------------------------------------------
// Vendors / models / firmware (paper Table VI + Fig. 3)
// ---------------------------------------------------------------------------

struct FirmwareConfig {
  std::string version;       ///< vendor naming, e.g. "I_F_1"
  double failure_multiplier; ///< relative hazard vs vendor baseline (Fig. 3)
  double market_share;       ///< fraction of the vendor fleet shipped with it
};

struct ModelConfig {
  std::string name;       ///< e.g. "I-M256"
  int capacity_gb;        ///< 128..1024
  int flash_layers;       ///< 32..96 (3D TLC)
  double fleet_fraction;  ///< fraction of the vendor fleet
};

/// Mix of failure archetypes for a vendor; fractions sum to 1.
/// Archetypes control which precursors (SMART vs W/B) a failing drive emits.
struct ArchetypeMix {
  double wearout = 0.25;     ///< gradual wear: strong SMART precursors
  double media = 0.30;       ///< media errors: SMART + paging W/B signals
  double controller = 0.25;  ///< controller faults: weak SMART, strong W/B
  double sudden = 0.20;      ///< abrupt death: W/B burst only, little SMART
};

struct VendorConfig {
  std::string name;                     ///< "I".."IV"
  std::size_t fleet_size;               ///< Table VI "Total" (at scale 1)
  double replacement_rate;              ///< Table VI "Sum_RR"
  std::vector<FirmwareConfig> firmware; ///< chronological (earliest first)
  std::vector<ModelConfig> models;
  ArchetypeMix archetypes;
};

inline constexpr std::size_t kNumVendors = 4;

/// The paper's four-vendor catalog (12 models in total).
const std::array<VendorConfig, kNumVendors>& vendor_catalog();

}  // namespace mfpa::sim
