// Fleet-level orchestration: samples the entire drive population's destinies
// (cheap, O(drives)), produces the RaSRF ticket stream, and generates daily
// telemetry for the tracked subset (all failed drives + a sampled healthy
// cohort, mirroring the paper's undersampling of the healthy majority).
#pragma once

#include <cstdint>
#include <vector>

#include "common/date.hpp"
#include "common/rng.hpp"
#include "sim/catalog.hpp"
#include "sim/failure_model.hpp"
#include "sim/scenario.hpp"
#include "sim/smart_model.hpp"
#include "sim/telemetry.hpp"
#include "sim/usage_model.hpp"

namespace mfpa::sim {

/// Lifetime-only record of one drive (no telemetry).
struct DriveInfo {
  std::uint64_t drive_id = 0;
  int vendor = 0;
  int model = 0;
  std::uint8_t firmware_initial = 0;
  UserProfile profile = UserProfile::kRegular;
  DriveOutcome outcome;

  /// Approximate power-on hours at failure (for the Fig. 2 bathtub plot).
  double poh_at_failure() const noexcept {
    return outcome.age_at_failure * UsageModel::effective_hours_per_day(profile);
  }
};

/// Per-vendor fleet summary (paper Table VI).
struct VendorSummary {
  std::string vendor_name;
  std::size_t total = 0;
  std::size_t failures = 0;
  double replacement_rate = 0.0;  ///< realized failures / total
};

/// Deterministic fleet simulator. Two phases:
///   1. simulate_lifetimes(): destinies for the full (scaled) fleet.
///   2. generate_telemetry(): daily records for the tracked subset within
///      the scenario's telemetry window.
class FleetSimulator {
 public:
  explicit FleetSimulator(Scenario scenario);

  const Scenario& scenario() const noexcept { return scenario_; }

  /// Phase 1. Idempotent; called implicitly by the accessors below.
  void simulate_lifetimes();

  /// All drives with their destinies (phase 1 output).
  const std::vector<DriveInfo>& drives();

  /// Per-vendor totals (Table VI).
  std::vector<VendorSummary> summarize();

  /// RaSRF trouble tickets for every failure (IMT = failure day + repair
  /// delay), sorted by IMT.
  std::vector<TroubleTicket> tickets();

  /// Phase 2: telemetry for all failed drives whose failure lies inside the
  /// telemetry window plus `healthy_per_failed` sampled healthy drives per
  /// vendor. Deterministic given the scenario seed — per-drive random
  /// streams derive from (seed, drive id), so `threads` (0 = hardware
  /// concurrency) changes only wall-clock time, never output.
  std::vector<DriveTimeSeries> generate_telemetry(std::size_t threads = 1);

  /// Indices into drives() of the telemetry-tracked subset (every drive
  /// failing inside the telemetry window + the sampled healthy cohort),
  /// ascending — exactly the set generate_telemetry() materializes.
  /// Deterministic given the scenario seed.
  std::vector<std::size_t> tracked_drives();

  /// Telemetry for tracked drives [begin, end) of `tracked` (a
  /// tracked_drives() result) — the streaming primitive behind the fleet
  /// scenario: generate a chunk, feed it, free it. Per-drive output is
  /// identical whatever the chunk boundaries (per-drive random streams
  /// derive from (seed, drive id)), so any chunked walk of `tracked`
  /// reproduces generate_telemetry()'s records drive-for-drive. Drops
  /// drives whose window produced no records, like generate_telemetry().
  std::vector<DriveTimeSeries> generate_telemetry_chunk(
      const std::vector<std::size_t>& tracked, std::size_t begin,
      std::size_t end, std::size_t threads = 1);

  /// Telemetry for one specific drive (used by examples/tests).
  DriveTimeSeries generate_drive_telemetry(const DriveInfo& info) const;

  /// Hardware parameters of a drive's model.
  DriveHardware hardware_of(const DriveInfo& info) const;

 private:
  Scenario scenario_;
  FailureModel failure_model_;
  std::vector<DriveInfo> drives_;
  bool lifetimes_done_ = false;
};

}  // namespace mfpa::sim
