#include "sim/event_model.hpp"

namespace mfpa::sim {
namespace {

// Tracked-array indices (see catalog.cpp ordering).
enum WIdx : std::size_t {
  kW7 = 0, kW11, kW15, kW49, kW51, kW52, kW154, kW157, kW161,
};
enum BIdx : std::size_t {
  kB23 = 0, kB24, kB48, kB50, kB6B, kB77, kB7A, kB7B, kB80, kB9B, kBC7,
  kBDA, kBE4, kBFC, kB10C, kB12C, kB135, kB13B, kB157, kB17E, kB189,
  kB1DB, kBC00,
};

EventRates make_healthy_base() noexcept {
  EventRates r;
  r.w[kW7] = 4e-4;    // occasional remapped block, not fatal
  r.w[kW11] = 6e-4;   // transient controller/bus hiccup
  r.w[kW15] = 4e-4;
  r.w[kW49] = 8e-4;   // pagefile misconfiguration happens on healthy machines
  r.w[kW51] = 6e-4;
  r.w[kW52] = 2e-5;   // SMART-predicted failure is essentially never benign
  r.w[kW154] = 2e-4;
  r.w[kW157] = 3e-4;  // sleep/resume glitches look like surprise removal
  r.w[kW161] = 9e-4;
  // Blue screens are rarer than event-log entries on healthy machines.
  for (auto& x : r.b) x = 2e-5;
  r.b[kB50] = 1.2e-4;  // PAGE_FAULT_IN_NONPAGED_AREA: common, often RAM/driver
  r.b[kB24] = 6e-5;    // NTFS
  r.b[kB7A] = 5e-5;
  r.b[kB77] = 3e-5;
  r.b[kBFC] = 4e-5;    // driver bugs
  r.b[kB135] = 4e-5;
  return r;
}

}  // namespace

EventRates EventModel::healthy_base(bool grumpy_os) noexcept {
  static const EventRates kBase = make_healthy_base();
  if (!grumpy_os) return kBase;
  // Machines with unrelated OS/driver trouble: noisier on generic channels,
  // but NOT on the storage-specific signatures — that asymmetry is what lets
  // W/B features rescue SMART-only false positives.
  EventRates r = kBase;
  for (auto& x : r.w) x *= 3.0;
  for (auto& x : r.b) x *= 3.5;
  // Events that also fire for *other* disks on the machine (USB drives,
  // secondary HDDs reference the same event ids) are much noisier on grumpy
  // machines; SSD-specific signatures stay comparatively clean.
  r.w[kW51] *= 3.0;
  r.w[kW161] *= 3.0;
  r.w[kW11] *= 2.5;
  r.w[kW52] = kBase.w[kW52];     // "predicted failure" stays rare
  r.w[kW154] = kBase.w[kW154] * 1.5;
  r.b[kB7B] = kBase.b[kB7B];     // boot-device loss stays rare
  return r;
}

const EventRates& EventModel::archetype_boost(FailureArchetype a) noexcept {
  static const std::array<EventRates, kNumArchetypes> kBoosts = [] {
    std::array<EventRates, kNumArchetypes> boosts{};

    // Wear-out: firmware announces the end (W_52), paging strain, data-inpage
    // stops as worn cells fail to read.
    EventRates& wear = boosts[static_cast<std::size_t>(FailureArchetype::kWearout)];
    wear.w[kW52] = 0.65;
    wear.w[kW51] = 0.30;
    wear.w[kW7] = 0.20;
    wear.w[kW161] = 0.25;
    wear.b[kB7A] = 0.10;
    wear.b[kB77] = 0.06;
    wear.b[kB50] = 0.08;

    // Media: bad blocks, LBA-level IO errors, file-system stops.
    EventRates& media = boosts[static_cast<std::size_t>(FailureArchetype::kMedia)];
    media.w[kW7] = 0.90;
    media.w[kW51] = 0.60;
    media.w[kW154] = 0.50;
    media.w[kW161] = 0.45;
    media.b[kB50] = 0.18;
    media.b[kB7A] = 0.16;
    media.b[kB24] = 0.10;
    media.b[kB23] = 0.04;
    media.b[kB12C] = 0.03;
    media.b[kB77] = 0.08;

    // Controller: device drops off the bus, not-ready, surprise removal,
    // hardware NMI / watchdog stops.
    EventRates& ctrl =
        boosts[static_cast<std::size_t>(FailureArchetype::kController)];
    ctrl.w[kW11] = 1.60;
    ctrl.w[kW15] = 0.80;
    ctrl.w[kW157] = 0.60;
    ctrl.w[kW161] = 0.45;
    ctrl.w[kW49] = 0.35;
    ctrl.b[kB80] = 0.12;
    ctrl.b[kB1DB] = 0.06;
    ctrl.b[kB13B] = 0.05;
    ctrl.b[kB48] = 0.04;
    ctrl.b[kBC7] = 0.03;

    // Sudden: short violent burst — boot-device loss, init failures, crash
    // dump configuration failures as the system loses its disk.
    EventRates& sudden =
        boosts[static_cast<std::size_t>(FailureArchetype::kSudden)];
    sudden.w[kW49] = 1.30;
    sudden.w[kW15] = 1.00;
    sudden.w[kW11] = 0.80;
    sudden.w[kW157] = 0.65;
    sudden.w[kW161] = 0.55;
    sudden.b[kB7B] = 0.45;
    sudden.b[kB6B] = 0.18;
    sudden.b[kBC00] = 0.12;
    sudden.b[kB189] = 0.04;
    sudden.b[kBE4] = 0.03;
    return boosts;
  }();
  return kBoosts[static_cast<std::size_t>(a)];
}

void EventModel::sample_day(const EventRates& base, const EventRates& boost,
                            double level, Rng& rng,
                            std::array<std::uint16_t, kNumWindowsEvents>& w_out,
                            std::array<std::uint16_t, kNumBsodCodes>& b_out) {
  for (std::size_t i = 0; i < kNumWindowsEvents; ++i) {
    const double rate = base.w[i] + boost.w[i] * level;
    w_out[i] = static_cast<std::uint16_t>(std::min(rng.poisson(rate), 65535));
  }
  for (std::size_t i = 0; i < kNumBsodCodes; ++i) {
    const double rate = base.b[i] + boost.b[i] * level;
    b_out[i] = static_cast<std::uint16_t>(std::min(rng.poisson(rate), 65535));
  }
}

}  // namespace mfpa::sim
