// Lifetime and failure-mode model for a simulated drive.
//
// The per-drive failure probability follows the vendor replacement rate
// scaled by the firmware multiplier (Observation #2 / Fig. 3). The age at
// failure follows a bathtub mixture (Fig. 2): infant mortality (Weibull
// shape < 1), random failures (exponential), and wear-out (Weibull
// shape >> 1). Each failing drive is assigned a failure *archetype* that
// controls which precursors it emits, and a RaSRF ticket category whose
// marginal distribution matches Table I.
#pragma once

#include "common/date.hpp"
#include "common/rng.hpp"
#include "sim/catalog.hpp"

namespace mfpa::sim {

/// Precursor archetype of a failing drive.
enum class FailureArchetype {
  kWearout,     ///< gradual wear: strong SMART drift, W_52 "predicted failure"
  kMedia,       ///< media/bad-block: media errors + paging events
  kController,  ///< controller fault: weak SMART, strong W_11/W_157 bursts
  kSudden,      ///< abrupt death: short W/B burst only (system-level symptoms)
};

inline constexpr std::size_t kNumArchetypes = 4;

/// Name for logs ("wearout", "media", "controller", "sudden").
const char* archetype_name(FailureArchetype a) noexcept;

/// Complete sampled destiny of one drive.
struct DriveOutcome {
  bool fails = false;
  DayIndex deploy_day = 0;       ///< first powered-on day (may precede day 0)
  DayIndex failure_day = -1;     ///< calendar day of failure; valid iff fails
  double age_at_failure = 0.0;   ///< days between deployment and failure
  FailureArchetype archetype = FailureArchetype::kWearout;
  TicketCategory category = TicketCategory::kStorageDriveFailure;
  int onset_days = 0;            ///< degradation lead time before failure
};

/// Parameters of the bathtub age-at-failure mixture (densities over days of
/// drive age). Defaults reproduce the paper's Fig. 2 shape.
struct BathtubParams {
  double infant_weight = 0.30;
  double infant_shape = 0.6;    ///< Weibull shape < 1: decreasing hazard
  double infant_scale = 90.0;
  double random_weight = 0.35;
  double random_mean = 400.0;   ///< exponential mean
  double wearout_weight = 0.35;
  double wearout_shape = 5.0;   ///< Weibull shape >> 1: increasing hazard
  double wearout_scale = 950.0;
};

/// Samples drive destinies; stateless apart from configuration.
class FailureModel {
 public:
  FailureModel() = default;
  explicit FailureModel(BathtubParams params) : bathtub_(params) {}

  /// Samples a complete outcome for one drive of `vendor` shipped with
  /// firmware index `firmware_index`. The failure probability is calibrated
  /// so the fleet-average observed failure fraction over [0, horizon)
  /// matches the vendor replacement rate.
  DriveOutcome sample_outcome(const VendorConfig& vendor,
                              std::size_t firmware_index, DayIndex horizon,
                              Rng& rng) const;

  /// Age-at-failure density sample (unconditioned on the window).
  double sample_failure_age(Rng& rng, FailureArchetype* archetype_hint) const;

  const BathtubParams& bathtub() const noexcept { return bathtub_; }

  /// Mean firmware failure multiplier of a vendor fleet (share-weighted).
  static double mean_firmware_multiplier(const VendorConfig& vendor) noexcept;

 private:
  BathtubParams bathtub_;
};

/// Samples a ticket category given the archetype. Drive-level categories are
/// more likely for wear/media archetypes, system-level for controller/sudden,
/// with weights chosen so the *marginal* category distribution matches
/// Table I when archetypes follow the default vendor mixes.
TicketCategory sample_ticket_category(FailureArchetype archetype, Rng& rng);

}  // namespace mfpa::sim
