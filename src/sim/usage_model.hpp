// Consumer usage model: when a machine is powered on (hence when telemetry
// can be uploaded), how many hours per day it runs, and how much it writes.
// This is the source of the *data discontinuity* the paper identifies as a
// defining property of CSS datasets (§II challenge (2), Fig. 6).
#pragma once

#include <vector>

#include "common/date.hpp"
#include "common/rng.hpp"

namespace mfpa::sim {

/// Consumer usage style.
enum class UserProfile {
  kAlwaysOn,  ///< home server / workstation left running
  kRegular,   ///< office machine, most weekdays
  kSporadic,  ///< occasional-use laptop
};

inline constexpr std::size_t kNumUserProfiles = 3;

const char* user_profile_name(UserProfile p) noexcept;

/// Static parameters of a usage profile.
struct UsageParams {
  double p_power_on;        ///< daily probability the machine is used
  double mean_hours;        ///< mean powered-on hours per used day
  double mean_write_gb;     ///< mean host writes per used day (GB)
  double p_vacation_start;  ///< daily probability a multi-day gap begins
  double p_unsafe_shutdown; ///< per-used-day probability of an unsafe shutdown
  double weekend_factor;    ///< multiplier on p_power_on for Sat/Sun (office
                            ///< machines sleep through weekends; personal
                            ///< laptops get used more)
};

/// True when the day index falls on a Saturday or Sunday (day 0, the epoch
/// 2021-01-01, is a Friday).
bool is_weekend(DayIndex day) noexcept;

/// Per-drive usage behaviour.
class UsageModel {
 public:
  /// Samples a profile with the population mix (20% always-on, 55% regular,
  /// 25% sporadic).
  static UserProfile sample_profile(Rng& rng);

  static const UsageParams& params(UserProfile p) noexcept;

  /// Generates the strictly increasing list of days in [start, end) on which
  /// the machine is powered on *and* the telemetry agent uploads a record.
  /// Includes multi-day vacation gaps; this is what makes per-drive record
  /// sequences discontinuous.
  static std::vector<DayIndex> observation_days(UserProfile p, DayIndex start,
                                                DayIndex end, Rng& rng);

  /// Mean powered-on hours per *calendar* day (used to convert drive age in
  /// days into power-on hours for the S_12 attribute).
  static double effective_hours_per_day(UserProfile p) noexcept;
};

}  // namespace mfpa::sim
