// CSV interchange for simulated telemetry and tickets, in the same flat
// schema the paper describes for its dataset ("S/N, model, timestamp,
// interface, capacity, S{1..m}, F, W{1..i}, B{1..i}"). One row per drive
// per observed day; tickets go to a second file (S/N, IMT, category).
//
// This lets the simulator's output feed external analysis tools, and lets
// externally produced telemetry (in the same schema) flow back into the
// pipeline.
// Both readers come in two modes (common/robustness.hpp): strict fails fast
// with a line-numbered, column-named diagnostic; lenient skips bad rows,
// repairs what it can, and reports everything through `IngestStats`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/robustness.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::sim {

/// Header of the telemetry CSV (fixed column order: identity, day, firmware,
/// 16 SMART, 9 W, 23 B).
std::vector<std::string> telemetry_csv_header();

/// Writes a batch of drive series as flat rows.
void write_telemetry_csv(std::ostream& os,
                         const std::vector<DriveTimeSeries>& batch);

/// Reads rows written by write_telemetry_csv, regrouping them by drive
/// (records of one drive need not be adjacent; output series are sorted by
/// drive id with records ascending by day, duplicate days preserved in file
/// order). Strict mode throws std::runtime_error on the first malformed row
/// ("line N, column 'X': ..."); lenient mode drops unparsable rows, repairs
/// malformed firmware fields, and accounts for both in `stats`.
std::vector<DriveTimeSeries> read_telemetry_csv(
    std::istream& is, const RobustnessConfig& robustness,
    IngestStats* stats = nullptr);
/// Strict-mode convenience (back-compat signature).
std::vector<DriveTimeSeries> read_telemetry_csv(std::istream& is);

/// Ticket CSV (drive_id, vendor, imt, category name).
void write_tickets_csv(std::ostream& os,
                       const std::vector<TroubleTicket>& tickets);
std::vector<TroubleTicket> read_tickets_csv(std::istream& is,
                                            const RobustnessConfig& robustness,
                                            IngestStats* stats = nullptr);
std::vector<TroubleTicket> read_tickets_csv(std::istream& is);

/// File-path conveniences (throw std::runtime_error on IO failure).
void write_telemetry_file(const std::string& path,
                          const std::vector<DriveTimeSeries>& batch);
std::vector<DriveTimeSeries> read_telemetry_file(
    const std::string& path, const RobustnessConfig& robustness = {},
    IngestStats* stats = nullptr);
void write_tickets_file(const std::string& path,
                        const std::vector<TroubleTicket>& tickets);
std::vector<TroubleTicket> read_tickets_file(
    const std::string& path, const RobustnessConfig& robustness = {},
    IngestStats* stats = nullptr);

}  // namespace mfpa::sim
