// WindowsEvent (Table III) and BlueScreenOfDeath (Table IV) generation —
// the system-level failure signals of Observations #3 and #4.
//
// Healthy machines log these events at low background rates (higher for the
// "grumpy OS" minority whose software problems are unrelated to the SSD).
// Failing drives superimpose archetype-specific event bursts that grow with
// the degradation ramp, so cumulative counts separate faulty from healthy
// drives (paper Figs. 4-5).
#pragma once

#include <array>

#include "common/date.hpp"
#include "common/rng.hpp"
#include "sim/catalog.hpp"
#include "sim/failure_model.hpp"

namespace mfpa::sim {

/// Per-type daily event rates.
struct EventRates {
  std::array<double, kNumWindowsEvents> w{};
  std::array<double, kNumBsodCodes> b{};
};

class EventModel {
 public:
  /// Background rates of a healthy machine. `grumpy_os` marks the minority
  /// with unrelated OS/driver problems (elevated noise on all channels).
  static EventRates healthy_base(bool grumpy_os) noexcept;

  /// Peak additional rates at full degradation for an archetype; the actual
  /// addition is boost * degradation_level.
  static const EventRates& archetype_boost(FailureArchetype a) noexcept;

  /// Samples one day of W/B counts for a drive.
  /// `level` is the degradation ramp in [0,1] (0 for healthy drives).
  static void sample_day(const EventRates& base, const EventRates& boost,
                         double level, Rng& rng,
                         std::array<std::uint16_t, kNumWindowsEvents>& w_out,
                         std::array<std::uint16_t, kNumBsodCodes>& b_out);
};

}  // namespace mfpa::sim
