#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace mfpa::sim {
namespace {

constexpr std::array<SmartAttr, 6> kMonotoneCounters = {
    SmartAttr::kPowerOnHours,    SmartAttr::kPowerCycles,
    SmartAttr::kDataUnitsRead,   SmartAttr::kDataUnitsWritten,
    SmartAttr::kMediaErrors,     SmartAttr::kErrorLogEntries,
};

constexpr const char* kFaultNames[kNumFaultModes] = {
    "duplicate_day",      "out_of_order_upload", "clock_rollback",
    "counter_reset",      "nan_field",           "negative_field",
    "saturated_field",    "duplicate_drive_id",  "dropped_column",
    "truncated_row",      "malformed_firmware",  "ticket_imt_out_of_window",
};

}  // namespace

const char* fault_mode_name(FaultMode mode) noexcept {
  return kFaultNames[static_cast<std::size_t>(mode)];
}

bool fault_mode_is_textual(FaultMode mode) noexcept {
  return mode == FaultMode::kDroppedColumn ||
         mode == FaultMode::kTruncatedRow ||
         mode == FaultMode::kMalformedFirmware;
}

bool fault_mode_is_ticket(FaultMode mode) noexcept {
  return mode == FaultMode::kTicketImtOutOfWindow;
}

std::size_t InjectionStats::total() const noexcept {
  return std::accumulate(injected.begin(), injected.end(), std::size_t{0});
}

std::vector<DriveTimeSeries> FaultInjector::corrupt(
    const std::vector<DriveTimeSeries>& batch) {
  std::vector<DriveTimeSeries> out = batch;

  // Faults apply in enum order regardless of plan order, each over its own
  // seed-derived stream, so composition is deterministic.
  std::vector<FaultSpec> ordered = plan_.faults;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.mode < b.mode;
                   });

  for (const FaultSpec& spec : ordered) {
    if (fault_mode_is_textual(spec.mode) || fault_mode_is_ticket(spec.mode)) {
      continue;
    }
    Rng rng = Rng(plan_.seed).split(static_cast<std::uint64_t>(spec.mode) + 1);
    std::size_t& count = stats_.injected[static_cast<std::size_t>(spec.mode)];
    std::vector<DriveTimeSeries> duplicated;

    for (auto& series : out) {
      auto& recs = series.records;
      switch (spec.mode) {
        case FaultMode::kDuplicateDay: {
          std::vector<DailyRecord> with_dups;
          with_dups.reserve(recs.size());
          for (const auto& rec : recs) {
            with_dups.push_back(rec);
            if (rng.bernoulli(spec.rate)) {
              with_dups.push_back(rec);  // the agent retried this upload
              ++count;
            }
          }
          recs = std::move(with_dups);
          break;
        }
        case FaultMode::kOutOfOrderUpload:
          for (std::size_t i = 1; i < recs.size(); ++i) {
            if (recs[i - 1].day != recs[i].day && rng.bernoulli(spec.rate)) {
              std::swap(recs[i - 1], recs[i]);
              ++count;
            }
          }
          break;
        case FaultMode::kClockRollback:
          for (std::size_t i = 1; i < recs.size(); ++i) {
            if (rng.bernoulli(spec.rate)) {
              recs[i].day = recs[i - 1].day -
                            static_cast<DayIndex>(rng.uniform_int(0, 5));
              ++count;
            }
          }
          break;
        case FaultMode::kCounterReset:
          for (std::size_t i = 1; i < recs.size(); ++i) {
            if (!rng.bernoulli(spec.rate)) continue;
            // Firmware update / power event: the cumulative counters restart
            // near zero and keep growing from there.
            std::array<float, kMonotoneCounters.size()> base;
            for (std::size_t a = 0; a < kMonotoneCounters.size(); ++a) {
              base[a] =
                  recs[i].smart[static_cast<std::size_t>(kMonotoneCounters[a])];
            }
            for (std::size_t j = i; j < recs.size(); ++j) {
              for (std::size_t a = 0; a < kMonotoneCounters.size(); ++a) {
                float& v =
                    recs[j].smart[static_cast<std::size_t>(kMonotoneCounters[a])];
                v = std::max(0.0f, v - base[a]);
              }
            }
            ++count;
          }
          break;
        case FaultMode::kNanField:
          for (auto& rec : recs) {
            if (rng.bernoulli(spec.rate)) {
              rec.smart[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(kNumSmartAttrs) - 1))] =
                  std::numeric_limits<float>::quiet_NaN();
              ++count;
            }
          }
          break;
        case FaultMode::kNegativeField:
          for (auto& rec : recs) {
            if (rng.bernoulli(spec.rate)) {
              float& v = rec.smart[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(kNumSmartAttrs) - 1))];
              v = -std::abs(v) - 1.0f;
              ++count;
            }
          }
          break;
        case FaultMode::kSaturatedField:
          for (auto& rec : recs) {
            if (!rng.bernoulli(spec.rate)) continue;
            if (rng.bernoulli(0.5)) {
              rec.smart[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(kNumSmartAttrs) - 1))] =
                  std::numeric_limits<float>::max();
            } else {
              rec.w[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(kNumWindowsEvents) - 1))] =
                  std::numeric_limits<std::uint16_t>::max();
            }
            ++count;
          }
          break;
        case FaultMode::kDuplicateDriveId:
          if (rng.bernoulli(spec.rate)) {
            duplicated.push_back(series);
            ++count;
          }
          break;
        default:
          break;
      }
    }
    for (auto& series : duplicated) out.push_back(std::move(series));
  }
  return out;
}

std::string FaultInjector::corrupt_csv(const std::string& text) {
  std::vector<std::string> lines = split(text, '\n');
  // split() keeps the empty field after a trailing newline; remember whether
  // to restore it so uncorrupted text round-trips byte-identically.
  const bool trailing_newline = !lines.empty() && lines.back().empty();
  if (trailing_newline) lines.pop_back();

  std::vector<FaultSpec> ordered = plan_.faults;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.mode < b.mode;
                   });

  for (const FaultSpec& spec : ordered) {
    if (!fault_mode_is_textual(spec.mode)) continue;
    Rng rng = Rng(plan_.seed).split(static_cast<std::uint64_t>(spec.mode) + 1);
    std::size_t& count = stats_.injected[static_cast<std::size_t>(spec.mode)];

    for (std::size_t li = 1; li < lines.size(); ++li) {  // never the header
      std::string& line = lines[li];
      if (line.empty() || !rng.bernoulli(spec.rate)) continue;
      switch (spec.mode) {
        case FaultMode::kDroppedColumn: {
          auto fields = split(line, ',');
          if (fields.size() < 2) break;
          fields.erase(fields.begin() +
                       rng.uniform_int(0, static_cast<std::int64_t>(
                                              fields.size()) - 1));
          line = join(fields, ",");
          ++count;
          break;
        }
        case FaultMode::kTruncatedRow:
          line.resize(static_cast<std::size_t>(rng.uniform_int(
              1, static_cast<std::int64_t>(line.size()) - 1)));
          ++count;
          break;
        case FaultMode::kMalformedFirmware: {
          auto fields = split(line, ',');
          if (fields.size() < 7) break;
          fields[6] = "fw_corrupt!";  // firmware_index column
          line = join(fields, ",");
          ++count;
          break;
        }
        default:
          break;
      }
    }
  }
  std::string out = join(lines, "\n");
  if (trailing_newline) out += '\n';
  return out;
}

std::vector<TroubleTicket> FaultInjector::corrupt_tickets(
    const std::vector<TroubleTicket>& tickets, DayIndex window_lo,
    DayIndex window_hi) {
  std::vector<TroubleTicket> out = tickets;
  for (const FaultSpec& spec : plan_.faults) {
    if (!fault_mode_is_ticket(spec.mode)) continue;
    Rng rng = Rng(plan_.seed).split(static_cast<std::uint64_t>(spec.mode) + 1);
    std::size_t& count = stats_.injected[static_cast<std::size_t>(spec.mode)];
    for (auto& ticket : out) {
      if (!rng.bernoulli(spec.rate)) continue;
      const DayIndex offset = static_cast<DayIndex>(rng.uniform_int(200, 2000));
      ticket.imt = rng.bernoulli(0.5) ? window_hi + offset : window_lo - offset;
      ++count;
    }
  }
  return out;
}

}  // namespace mfpa::sim
