#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace mfpa::sim {
namespace {

constexpr std::array<SmartAttr, 6> kMonotoneCounters = {
    SmartAttr::kPowerOnHours,    SmartAttr::kPowerCycles,
    SmartAttr::kDataUnitsRead,   SmartAttr::kDataUnitsWritten,
    SmartAttr::kMediaErrors,     SmartAttr::kErrorLogEntries,
};

constexpr const char* kFaultNames[kNumFaultModes] = {
    "duplicate_day",      "out_of_order_upload", "clock_rollback",
    "counter_reset",      "nan_field",           "negative_field",
    "saturated_field",    "duplicate_drive_id",  "dropped_column",
    "truncated_row",      "malformed_firmware",  "ticket_imt_out_of_window",
    "torn_final_write",   "file_truncation",     "bit_flip",
    "duplicate_segment",  "stale_checkpoint",
};

}  // namespace

const char* fault_mode_name(FaultMode mode) noexcept {
  return kFaultNames[static_cast<std::size_t>(mode)];
}

bool fault_mode_is_textual(FaultMode mode) noexcept {
  return mode == FaultMode::kDroppedColumn ||
         mode == FaultMode::kTruncatedRow ||
         mode == FaultMode::kMalformedFirmware;
}

bool fault_mode_is_ticket(FaultMode mode) noexcept {
  return mode == FaultMode::kTicketImtOutOfWindow;
}

bool fault_mode_is_disk(FaultMode mode) noexcept {
  return mode == FaultMode::kTornFinalWrite ||
         mode == FaultMode::kFileTruncation || mode == FaultMode::kBitFlip ||
         mode == FaultMode::kDuplicateSegment ||
         mode == FaultMode::kStaleCheckpoint;
}

std::size_t InjectionStats::total() const noexcept {
  return std::accumulate(injected.begin(), injected.end(), std::size_t{0});
}

std::vector<DriveTimeSeries> FaultInjector::corrupt(
    const std::vector<DriveTimeSeries>& batch) {
  std::vector<DriveTimeSeries> out = batch;

  // Faults apply in enum order regardless of plan order, each over its own
  // seed-derived stream, so composition is deterministic.
  std::vector<FaultSpec> ordered = plan_.faults;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.mode < b.mode;
                   });

  for (const FaultSpec& spec : ordered) {
    if (fault_mode_is_textual(spec.mode) || fault_mode_is_ticket(spec.mode)) {
      continue;
    }
    Rng rng = Rng(plan_.seed).split(static_cast<std::uint64_t>(spec.mode) + 1);
    std::size_t& count = stats_.injected[static_cast<std::size_t>(spec.mode)];
    std::vector<DriveTimeSeries> duplicated;

    for (auto& series : out) {
      auto& recs = series.records;
      switch (spec.mode) {
        case FaultMode::kDuplicateDay: {
          std::vector<DailyRecord> with_dups;
          with_dups.reserve(recs.size());
          for (const auto& rec : recs) {
            with_dups.push_back(rec);
            if (rng.bernoulli(spec.rate)) {
              with_dups.push_back(rec);  // the agent retried this upload
              ++count;
            }
          }
          recs = std::move(with_dups);
          break;
        }
        case FaultMode::kOutOfOrderUpload:
          for (std::size_t i = 1; i < recs.size(); ++i) {
            if (recs[i - 1].day != recs[i].day && rng.bernoulli(spec.rate)) {
              std::swap(recs[i - 1], recs[i]);
              ++count;
            }
          }
          break;
        case FaultMode::kClockRollback:
          for (std::size_t i = 1; i < recs.size(); ++i) {
            if (rng.bernoulli(spec.rate)) {
              recs[i].day = recs[i - 1].day -
                            static_cast<DayIndex>(rng.uniform_int(0, 5));
              ++count;
            }
          }
          break;
        case FaultMode::kCounterReset:
          for (std::size_t i = 1; i < recs.size(); ++i) {
            if (!rng.bernoulli(spec.rate)) continue;
            // Firmware update / power event: the cumulative counters restart
            // near zero and keep growing from there.
            std::array<float, kMonotoneCounters.size()> base;
            for (std::size_t a = 0; a < kMonotoneCounters.size(); ++a) {
              base[a] =
                  recs[i].smart[static_cast<std::size_t>(kMonotoneCounters[a])];
            }
            for (std::size_t j = i; j < recs.size(); ++j) {
              for (std::size_t a = 0; a < kMonotoneCounters.size(); ++a) {
                float& v =
                    recs[j].smart[static_cast<std::size_t>(kMonotoneCounters[a])];
                v = std::max(0.0f, v - base[a]);
              }
            }
            ++count;
          }
          break;
        case FaultMode::kNanField:
          for (auto& rec : recs) {
            if (rng.bernoulli(spec.rate)) {
              rec.smart[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(kNumSmartAttrs) - 1))] =
                  std::numeric_limits<float>::quiet_NaN();
              ++count;
            }
          }
          break;
        case FaultMode::kNegativeField:
          for (auto& rec : recs) {
            if (rng.bernoulli(spec.rate)) {
              float& v = rec.smart[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(kNumSmartAttrs) - 1))];
              v = -std::abs(v) - 1.0f;
              ++count;
            }
          }
          break;
        case FaultMode::kSaturatedField:
          for (auto& rec : recs) {
            if (!rng.bernoulli(spec.rate)) continue;
            if (rng.bernoulli(0.5)) {
              rec.smart[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(kNumSmartAttrs) - 1))] =
                  std::numeric_limits<float>::max();
            } else {
              rec.w[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(kNumWindowsEvents) - 1))] =
                  std::numeric_limits<std::uint16_t>::max();
            }
            ++count;
          }
          break;
        case FaultMode::kDuplicateDriveId:
          if (rng.bernoulli(spec.rate)) {
            duplicated.push_back(series);
            ++count;
          }
          break;
        default:
          break;
      }
    }
    for (auto& series : duplicated) out.push_back(std::move(series));
  }
  return out;
}

std::string FaultInjector::corrupt_csv(const std::string& text) {
  std::vector<std::string> lines = split(text, '\n');
  // split() keeps the empty field after a trailing newline; remember whether
  // to restore it so uncorrupted text round-trips byte-identically.
  const bool trailing_newline = !lines.empty() && lines.back().empty();
  if (trailing_newline) lines.pop_back();

  std::vector<FaultSpec> ordered = plan_.faults;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.mode < b.mode;
                   });

  for (const FaultSpec& spec : ordered) {
    if (!fault_mode_is_textual(spec.mode)) continue;
    Rng rng = Rng(plan_.seed).split(static_cast<std::uint64_t>(spec.mode) + 1);
    std::size_t& count = stats_.injected[static_cast<std::size_t>(spec.mode)];

    for (std::size_t li = 1; li < lines.size(); ++li) {  // never the header
      std::string& line = lines[li];
      if (line.empty() || !rng.bernoulli(spec.rate)) continue;
      switch (spec.mode) {
        case FaultMode::kDroppedColumn: {
          auto fields = split(line, ',');
          if (fields.size() < 2) break;
          fields.erase(fields.begin() +
                       rng.uniform_int(0, static_cast<std::int64_t>(
                                              fields.size()) - 1));
          line = join(fields, ",");
          ++count;
          break;
        }
        case FaultMode::kTruncatedRow:
          line.resize(static_cast<std::size_t>(rng.uniform_int(
              1, static_cast<std::int64_t>(line.size()) - 1)));
          ++count;
          break;
        case FaultMode::kMalformedFirmware: {
          auto fields = split(line, ',');
          if (fields.size() < 7) break;
          fields[6] = "fw_corrupt!";  // firmware_index column
          line = join(fields, ",");
          ++count;
          break;
        }
        default:
          break;
      }
    }
  }
  std::string out = join(lines, "\n");
  if (trailing_newline) out += '\n';
  return out;
}

std::vector<TroubleTicket> FaultInjector::corrupt_tickets(
    const std::vector<TroubleTicket>& tickets, DayIndex window_lo,
    DayIndex window_hi) {
  std::vector<TroubleTicket> out = tickets;
  for (const FaultSpec& spec : plan_.faults) {
    if (!fault_mode_is_ticket(spec.mode)) continue;
    Rng rng = Rng(plan_.seed).split(static_cast<std::uint64_t>(spec.mode) + 1);
    std::size_t& count = stats_.injected[static_cast<std::size_t>(spec.mode)];
    for (auto& ticket : out) {
      if (!rng.bernoulli(spec.rate)) continue;
      const DayIndex offset = static_cast<DayIndex>(rng.uniform_int(200, 2000));
      ticket.imt = rng.bernoulli(0.5) ? window_hi + offset : window_lo - offset;
      ++count;
    }
  }
  return out;
}

namespace {

namespace fs = std::filesystem;

std::string read_all_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("fault_injector: cannot read " + path);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_all_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("fault_injector: cannot write " + path);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("fault_injector: short write " + path);
}

/// Files in `dir` whose names end with `suffix`, sorted by name so the
/// per-file fault selection is independent of directory iteration order.
std::vector<std::string> sorted_files_with_suffix(const fs::path& dir,
                                                  const std::string& suffix) {
  std::vector<std::string> out;
  if (!fs::is_directory(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The checkpoint with the highest LSN embedded in its `ckpt-<lsn>.mfc`
/// name. Lexicographic order is wrong here (ckpt-512 > ckpt-4096), so the
/// LSN is parsed numerically.
std::string newest_checkpoint(const std::vector<std::string>& ckpts) {
  std::string best;
  std::uint64_t best_lsn = 0;
  bool found = false;
  for (const auto& path : ckpts) {
    const std::string name = fs::path(path).filename().string();
    if (name.size() < 10) continue;  // "ckpt-N.mfc"
    try {
      const std::uint64_t lsn = std::stoull(name.substr(5));
      if (!found || lsn >= best_lsn) {
        best_lsn = lsn;
        best = path;
        found = true;
      }
    } catch (const std::exception&) {
      continue;
    }
  }
  return best;
}

}  // namespace

void FaultInjector::corrupt_file(const std::string& path, FaultMode mode,
                                 std::uint64_t salt) {
  if (mode == FaultMode::kStaleCheckpoint) {
    if (fs::remove(path)) {
      ++stats_.injected[static_cast<std::size_t>(mode)];
    }
    return;
  }
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec || size == 0) return;  // nothing to corrupt

  Rng rng = Rng(plan_.seed ^ (salt * 0x9E3779B97F4A7C15ULL))
                .split(static_cast<std::uint64_t>(mode) + 1);
  std::size_t& count = stats_.injected[static_cast<std::size_t>(mode)];

  switch (mode) {
    case FaultMode::kTornFinalWrite: {
      // Power loss mid-append: the last 1..40 bytes never reached the
      // platter, leaving a partial frame at the tail.
      const std::uintmax_t cut = std::min<std::uintmax_t>(
          size, static_cast<std::uintmax_t>(rng.uniform_int(1, 40)));
      fs::resize_file(path, size - cut);
      ++count;
      break;
    }
    case FaultMode::kFileTruncation: {
      fs::resize_file(path,
                      static_cast<std::uintmax_t>(rng.uniform_int(
                          0, static_cast<std::int64_t>(size) - 1)));
      ++count;
      break;
    }
    case FaultMode::kBitFlip: {
      std::string bytes = read_all_bytes(path);
      const std::size_t offset = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[offset] = static_cast<char>(
          static_cast<unsigned char>(bytes[offset]) ^
          (1u << rng.uniform_int(0, 7)));
      write_all_bytes(path, bytes);
      ++count;
      break;
    }
    case FaultMode::kDuplicateSegment: {
      // A replayed copy of the segment's own frames lands after the
      // originals — every LSN appears twice with identical payloads, which
      // recovery must deduplicate rather than double-apply.
      const std::string bytes = read_all_bytes(path);
      std::ofstream os(path, std::ios::binary | std::ios::app);
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!os) {
        throw std::runtime_error("fault_injector: append failed " + path);
      }
      ++count;
      break;
    }
    default:
      break;
  }
}

std::size_t FaultInjector::corrupt_durable_dir(const std::string& dir) {
  const std::vector<std::string> wal_files =
      sorted_files_with_suffix(fs::path(dir) / "wal", ".wal");
  const std::vector<std::string> ckpt_files =
      sorted_files_with_suffix(fs::path(dir) / "ckpt", ".mfc");

  std::vector<FaultSpec> ordered = plan_.faults;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.mode < b.mode;
                   });

  std::size_t injected = 0;
  for (const FaultSpec& spec : ordered) {
    if (!fault_mode_is_disk(spec.mode)) continue;
    Rng rng = Rng(plan_.seed).split(static_cast<std::uint64_t>(spec.mode) + 1);

    if (spec.mode == FaultMode::kStaleCheckpoint) {
      // Deletes the newest checkpoint: recovery must fall back to the older
      // one and replay the (now longer) WAL tail over it.
      const std::string newest = newest_checkpoint(ckpt_files);
      if (!newest.empty() && rng.bernoulli(spec.rate)) {
        const std::size_t before = stats_.of(spec.mode);
        corrupt_file(newest, spec.mode);
        injected += stats_.of(spec.mode) - before;
      }
      continue;
    }

    // WAL segments are always eligible; checkpoints additionally for the
    // byte-level modes (a duplicated checkpoint file is not a meaningful
    // failure shape — checkpoint replay never concatenates).
    std::vector<std::string> targets = wal_files;
    if (spec.mode != FaultMode::kDuplicateSegment) {
      targets.insert(targets.end(), ckpt_files.begin(), ckpt_files.end());
    }
    std::uint64_t salt = 0;
    for (const std::string& path : targets) {
      ++salt;
      if (!rng.bernoulli(spec.rate)) continue;
      const std::size_t before = stats_.of(spec.mode);
      corrupt_file(path, spec.mode, salt);
      injected += stats_.of(spec.mode) - before;
    }
  }
  return injected;
}

}  // namespace mfpa::sim
