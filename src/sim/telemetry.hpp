// Telemetry record types emitted by the fleet simulator: one DailyRecord per
// drive per *observed* day (consumer machines are not always on, so the
// record sequence per drive is irregular — the discontinuity the MFPA
// pipeline must repair).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/date.hpp"
#include "sim/catalog.hpp"

namespace mfpa::sim {

/// One observation of one drive on one day. Values are "as uploaded by the
/// telemetry agent": SMART is the device health log, W/B are the counts of
/// matching Windows events / blue screens logged that day.
struct DailyRecord {
  DayIndex day = 0;
  std::array<float, kNumSmartAttrs> smart{};        ///< Table II values
  std::uint8_t firmware_index = 0;                  ///< index into vendor FW list
  std::array<std::uint16_t, kNumWindowsEvents> w{}; ///< per-event daily counts
  std::array<std::uint16_t, kNumBsodCodes> b{};     ///< per-code daily counts
};

/// The full observed time series of one drive plus its identity.
struct DriveTimeSeries {
  std::uint64_t drive_id = 0;
  int vendor = 0;                 ///< vendor index into vendor_catalog()
  int model = 0;                  ///< model index into VendorConfig::models
  bool failed = false;            ///< failed within the simulation horizon
  DayIndex failure_day = -1;      ///< actual failure day (valid when failed)
  std::vector<DailyRecord> records;  ///< strictly increasing by day
};

/// A RaSRF trouble ticket (paper Fig. 7): the after-sales record of a failed
/// drive. `imt` (initial maintenance time) trails the actual failure day by
/// the user's repair delay, which is why the pipeline must re-identify the
/// failure timestamp.
struct TroubleTicket {
  std::uint64_t drive_id = 0;
  int vendor = 0;
  DayIndex imt = 0;               ///< initial maintenance time
  TicketCategory category = TicketCategory::kStorageDriveFailure;
};

}  // namespace mfpa::sim
