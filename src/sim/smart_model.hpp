// SMART telemetry evolution (paper Table II / Observation #1).
//
// Healthy drives accumulate wear proportional to their usage profile, with
// measurement noise and a "grumpy" minority whose SMART looks unhealthy
// without the drive actually failing (elevated temperature, unsafe
// shutdowns, sporadic media errors). This overlap is what limits the
// SMART-only model's precision in the paper.
//
// Failing drives additionally run a degradation ramp between their onset day
// and failure day whose strength per attribute depends on the failure
// archetype: wear-out drives drift in wear/spare, media drives accumulate
// media errors and log entries, controller drives spike busy time and unsafe
// shutdowns, sudden drives show almost nothing until the final days.
#pragma once

#include <array>

#include "common/date.hpp"
#include "common/rng.hpp"
#include "sim/catalog.hpp"
#include "sim/failure_model.hpp"
#include "sim/usage_model.hpp"

namespace mfpa::sim {

/// Physical parameters of one drive.
struct DriveHardware {
  int capacity_gb = 256;
  int flash_layers = 64;

  /// Rated endurance in terabytes written (consumer TLC heuristic:
  /// ~0.3 drive writes/day for 5 years ≈ 600 P/E cycles).
  double endurance_tbw() const noexcept {
    return static_cast<double>(capacity_gb) * 0.6;  // e.g. 256 GB -> ~150 TBW
  }
};

/// Mutable accumulator state of one drive's SMART counters (doubles for
/// accumulation precision; quantized on observation).
struct SmartState {
  double poh_hours = 0.0;
  double power_cycles = 0.0;
  double unsafe_shutdowns = 0.0;
  double gb_read = 0.0;
  double gb_written = 0.0;
  double host_read_cmds_m = 0.0;   ///< millions
  double host_write_cmds_m = 0.0;  ///< millions
  double busy_time_min = 0.0;
  double media_errors = 0.0;
  double error_log_entries = 0.0;
  double spare_pct = 100.0;
  // Per-drive idiosyncrasies.
  double temp_offset = 0.0;   ///< machine cooling quality
  double wear_rate_mult = 1.0;
  bool grumpy = false;        ///< noisy-but-healthy minority

  // Transient "scare": a short burst of media errors on a *healthy* drive
  // (bad cable/driver CRC storms, one-off remap events). Looks alarming in
  // SMART but carries no W/B storage signature — the raw material of the
  // SMART-only model's false positives that SFWB rescues. Set by the fleet
  // simulator; -1 = no scare.
  DayIndex scare_day = -1;
  int scare_len = 0;
};

/// Degradation intensity in [0, 1]: 0 before onset, accelerating to 1 at the
/// failure day. Returns 0 for healthy drives.
double degradation_level(const DriveOutcome& outcome, DayIndex day) noexcept;

/// Stateless generator for SMART trajectories.
class SmartModel {
 public:
  /// Initializes the accumulator for a drive that is `age_days` old at the
  /// start of the telemetry window (analytic fast-forward of its history).
  static SmartState init_state(const DriveHardware& hw, UserProfile profile,
                               double age_days, Rng& rng);

  /// Advances the accumulators across `elapsed_days` calendar days ending at
  /// `day` (expected usage over the stretch), applying degradation effects.
  static void advance(SmartState& state, const DriveHardware& hw,
                      UserProfile profile, const DriveOutcome& outcome,
                      DayIndex day, int elapsed_days, Rng& rng);

  /// Produces the observed SMART vector for `day` (quantization, measurement
  /// noise, seasonal temperature drift when `enable_drift`).
  static std::array<float, kNumSmartAttrs> observe(const SmartState& state,
                                                   const DriveHardware& hw,
                                                   const DriveOutcome& outcome,
                                                   DayIndex day,
                                                   bool enable_drift, Rng& rng);
};

}  // namespace mfpa::sim
