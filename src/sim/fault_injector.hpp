// Seeded, composable telemetry corruptor — the adversary the ingestion path
// is hardened against. Applies the real-world fault modes cataloged for
// hyperscale NVMe monitoring (counter resets, clock skew, truncated uploads,
// retry duplicates, ...) to in-memory `DriveTimeSeries` batches, serialized
// CSV text, and ticket streams, with exact per-mode accounting.
//
// Determinism contract: the same `FaultPlan` (modes + rates + seed) applied
// to the same input produces byte-identical corruption, independent of how
// many times the injector is invoked (each corrupt* call re-derives its
// random stream from the plan seed).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/telemetry.hpp"

namespace mfpa::sim {

/// Every injectable fault. Structured modes mutate `DriveTimeSeries`
/// batches; textual modes mangle serialized CSV rows; ticket modes mutate
/// `TroubleTicket` streams.
enum class FaultMode : std::size_t {
  // --- structured (in-memory batch) ---------------------------------------
  kDuplicateDay = 0,     ///< record re-delivered (upload retry after lost ACK)
  kOutOfOrderUpload,     ///< adjacent records swapped in delivery order
  kClockRollback,        ///< one record's day moved backwards (clock skew)
  kCounterReset,         ///< monotone SMART counters restart near zero
  kNanField,             ///< a SMART field becomes NaN
  kNegativeField,        ///< a SMART field becomes negative
  kSaturatedField,       ///< a SMART field / W count saturates its type
  kDuplicateDriveId,     ///< a whole series re-appears under the same id
  // --- textual (serialized CSV) -------------------------------------------
  kDroppedColumn,        ///< one field removed from a row
  kTruncatedRow,         ///< row cut mid-field (interrupted upload)
  kMalformedFirmware,    ///< firmware field becomes a garbage string
  // --- tickets --------------------------------------------------------------
  kTicketImtOutOfWindow, ///< IMT displaced outside the observation window
  // --- on-disk durable state (WAL segments, checkpoints, alert log) --------
  kTornFinalWrite,       ///< trailing bytes cut mid-frame (power loss mid-write)
  kFileTruncation,       ///< file cut to a random fraction of its length
  kBitFlip,              ///< one bit flipped at a random offset (media corruption)
  kDuplicateSegment,     ///< a WAL segment's frames appended again (replayed copy)
  kStaleCheckpoint,      ///< newest checkpoint deleted (older one + newer WAL stay)
};

inline constexpr std::size_t kNumFaultModes = 17;

const char* fault_mode_name(FaultMode mode) noexcept;

/// True when the mode applies to serialized CSV text (corrupt_csv).
bool fault_mode_is_textual(FaultMode mode) noexcept;
/// True when the mode applies to ticket streams (corrupt_tickets).
bool fault_mode_is_ticket(FaultMode mode) noexcept;
/// True when the mode applies to on-disk durable state (corrupt_durable_dir).
bool fault_mode_is_disk(FaultMode mode) noexcept;

/// One fault mode at an injection rate (fraction of eligible sites hit).
struct FaultSpec {
  FaultMode mode = FaultMode::kDuplicateDay;
  double rate = 0.01;
};

/// A composable corruption recipe: the listed faults are applied in enum
/// order, each over its own deterministic random stream.
struct FaultPlan {
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 1;
};

/// Exact per-mode counts of injected faults (accumulated across calls).
struct InjectionStats {
  std::array<std::size_t, kNumFaultModes> injected{};

  std::size_t of(FaultMode mode) const noexcept {
    return injected[static_cast<std::size_t>(mode)];
  }
  std::size_t total() const noexcept;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const noexcept { return plan_; }
  const InjectionStats& stats() const noexcept { return stats_; }

  /// Applies the plan's structured modes to a telemetry batch (textual and
  /// ticket modes in the plan are ignored here).
  std::vector<DriveTimeSeries> corrupt(
      const std::vector<DriveTimeSeries>& batch);

  /// Applies the plan's textual modes to serialized CSV text (the header
  /// line is never touched).
  std::string corrupt_csv(const std::string& text);

  /// Applies the plan's ticket modes; displaced IMTs land outside
  /// [window_lo, window_hi] by a margin larger than any plausible slack.
  std::vector<TroubleTicket> corrupt_tickets(
      const std::vector<TroubleTicket>& tickets, DayIndex window_lo,
      DayIndex window_hi);

  /// Applies the plan's disk modes to a scoring-service durable directory
  /// (`<dir>/wal/*.wal` segments, `<dir>/ckpt/ckpt-*.mfc`, `alerts.log`) —
  /// the power-loss simulator of the crash-recovery tests. Torn writes,
  /// truncation, bit flips, and duplicated segments hit rate-selected files
  /// (names sorted, so selection is deterministic); a stale-checkpoint
  /// fault deletes the newest checkpoint outright. Returns faults injected.
  std::size_t corrupt_durable_dir(const std::string& dir);

  /// Applies one disk mode to one file (deterministic in plan seed + salt).
  /// kStaleCheckpoint deletes the file regardless of its name.
  void corrupt_file(const std::string& path, FaultMode mode,
                    std::uint64_t salt = 0);

 private:
  FaultPlan plan_;
  InjectionStats stats_;
};

}  // namespace mfpa::sim
