// Proxies for the state-of-the-art SSD failure predictors the paper
// compares against in Fig. 18 ([19]-[22]). The original systems ran on
// proprietary data-center telemetry; each proxy re-creates the *method
// shape* (feature family + algorithm + labeling policy) on our CSS data:
//
//  [19] Alter/Jacob et al., SC'19  — error-log-driven models -> RF on the
//       B (crash-log) and W (event-log) cumulative counts, no SMART.
//  [20] Zhang et al., TPDS'20      — transfer learning for minority disks ->
//       pooled all-vendor LR applied to the target vendor.
//  [21] Chakraborttii et al., SoCC'20 — interpretable SMART-only trees ->
//       single decision tree on S.
//  [22] Pinciroli et al., TDSC'21  — lifespan/failure models -> GBDT on S.
//
// Each proxy is expressed as an MfpaConfig so it runs through exactly the
// same harness (labeling, segmentation, balancing) as MFPA itself; what
// differs is the feature family and the algorithm — the part each prior
// system contributes.
#pragma once

#include <string>
#include <vector>

#include "core/mfpa.hpp"

namespace mfpa::baselines {

struct PriorWorkModel {
  std::string label;        ///< e.g. "SC'19 [19]"
  std::string description;  ///< one-line method summary
  core::MfpaConfig config;  ///< harness configuration of the proxy
};

/// The four proxies plus MFPA itself (last), all bound to `vendor` and
/// sharing `seed`.
std::vector<PriorWorkModel> prior_work_models(int vendor, std::uint64_t seed);

}  // namespace mfpa::baselines
