// Statistical failure detectors (the paper's §II middle rung between
// threshold rules and ML: "Statistical Methods can improve failure detection
// accuracy... TPR only increases to 56%-70%, FPR decreases to nearly 1%").
//
// Two classic detectors, both implementing the ml::Classifier interface so
// they drop into the same evaluation harnesses:
//  * ParametricDetector  — per-feature Gaussian z-score against the healthy
//    training population; alarms on the maximum absolute z.
//  * RankSumDetector     — non-parametric: per-feature healthy-population
//    percentile; alarms on the most extreme percentile.
#pragma once

#include "ml/model.hpp"

#include <vector>

namespace mfpa::ml {}

namespace mfpa::baselines {

using ml::Classifier;
using ml::Hyperparams;
using ml::Matrix;

/// Hyperparams: "z_cap" (8.0) — z-scores are clamped before squashing.
class ParametricDetector final : public Classifier {
 public:
  explicit ParametricDetector(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "Parametric"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  Hyperparams params_;
  double z_cap_;
  std::vector<double> mean_;
  std::vector<double> std_;
  bool fitted_ = false;
};

/// Hyperparams: none. Stores sorted healthy-population values per feature.
class RankSumDetector final : public Classifier {
 public:
  explicit RankSumDetector(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "RankSum"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  Hyperparams params_;
  std::vector<std::vector<double>> healthy_sorted_;  ///< per feature
  bool fitted_ = false;
};

}  // namespace mfpa::baselines
