#include "baselines/smart_threshold.hpp"

namespace mfpa::baselines {

std::vector<int> SmartThresholdDetector::predict(const data::Dataset& ds) const {
  const std::size_t c_warn = ds.feature_index("S_1");
  const std::size_t c_spare = ds.feature_index("S_3");
  const std::size_t c_spare_thr = ds.feature_index("S_4");
  const std::size_t c_used = ds.feature_index("S_5");
  const std::size_t c_media = ds.feature_index("S_14");

  std::vector<int> out(ds.size(), 0);
  for (std::size_t r = 0; r < ds.size(); ++r) {
    const auto row = ds.X.row(r);
    const bool alarm =
        (rules_.use_critical_warning && row[c_warn] >= 1.0) ||
        row[c_spare] <= row[c_spare_thr] + rules_.min_spare_margin ||
        row[c_used] >= rules_.max_percentage_used ||
        row[c_media] > rules_.max_media_errors;
    out[r] = alarm ? 1 : 0;
  }
  return out;
}

ml::ConfusionMatrix SmartThresholdDetector::evaluate(
    const data::Dataset& ds) const {
  return ml::confusion_matrix(ds.y, predict(ds));
}

}  // namespace mfpa::baselines
