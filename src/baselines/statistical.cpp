#include "baselines/statistical.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "ml/serialize.hpp"

namespace mfpa::baselines {

ParametricDetector::ParametricDetector(Hyperparams params)
    : params_(std::move(params)),
      z_cap_(ml::param_or(params_, "z_cap", 8.0)) {}

void ParametricDetector::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  const std::size_t d = X.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  std::size_t n_healthy = 0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    if (y[r] != 0) continue;
    ++n_healthy;
    const auto row = X.row(r);
    for (std::size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  if (n_healthy < 2) {
    throw std::invalid_argument("ParametricDetector: need >= 2 healthy samples");
  }
  for (auto& m : mean_) m /= static_cast<double>(n_healthy);
  std::vector<double> ss(d, 0.0);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    if (y[r] != 0) continue;
    const auto row = X.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double delta = row[c] - mean_[c];
      ss[c] += delta * delta;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double var = ss[c] / static_cast<double>(n_healthy - 1);
    std_[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  fitted_ = true;
}

std::vector<double> ParametricDetector::predict_proba(const Matrix& X) const {
  if (!fitted_) throw std::logic_error("ParametricDetector: predict before fit");
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    double max_z = 0.0;
    for (std::size_t c = 0; c < row.size(); ++c) {
      const double z = std::abs(row[c] - mean_[c]) / std_[c];
      max_z = std::max(max_z, z);
    }
    // Squash the capped z into (0,1); z = 3 maps to ~0.5.
    out[r] = std::min(max_z, z_cap_) / (z_cap_ * 2.0) +
             (max_z >= 3.0 ? 0.25 : 0.0);
    out[r] = std::min(out[r], 1.0);
  }
  return out;
}

std::unique_ptr<Classifier> ParametricDetector::clone_unfitted() const {
  return std::make_unique<ParametricDetector>(params_);
}

void ParametricDetector::save_state(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("ParametricDetector: save before fit");
  ml::io::write_vector(os, "mean", mean_);
  ml::io::write_vector(os, "std", std_);
}

void ParametricDetector::load_state(std::istream& is) {
  mean_ = ml::io::read_vector(is, "mean");
  std_ = ml::io::read_vector(is, "std");
  if (mean_.size() != std_.size()) {
    throw std::runtime_error("ParametricDetector: inconsistent state");
  }
  fitted_ = true;
}

RankSumDetector::RankSumDetector(Hyperparams params)
    : params_(std::move(params)) {}

void RankSumDetector::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  const std::size_t d = X.cols();
  healthy_sorted_.assign(d, {});
  for (std::size_t r = 0; r < X.rows(); ++r) {
    if (y[r] != 0) continue;
    const auto row = X.row(r);
    for (std::size_t c = 0; c < d; ++c) healthy_sorted_[c].push_back(row[c]);
  }
  if (healthy_sorted_.empty() || healthy_sorted_[0].size() < 2) {
    throw std::invalid_argument("RankSumDetector: need >= 2 healthy samples");
  }
  for (auto& col : healthy_sorted_) std::sort(col.begin(), col.end());
  fitted_ = true;
}

std::vector<double> RankSumDetector::predict_proba(const Matrix& X) const {
  if (!fitted_) throw std::logic_error("RankSumDetector: predict before fit");
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    double most_extreme = 0.0;  // distance from the median percentile
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto& col = healthy_sorted_[c];
      const auto lo =
          std::lower_bound(col.begin(), col.end(), row[c]) - col.begin();
      const double pct =
          static_cast<double>(lo) / static_cast<double>(col.size());
      most_extreme = std::max(most_extreme, std::abs(pct - 0.5) * 2.0);
    }
    out[r] = most_extreme;
  }
  return out;
}

std::unique_ptr<Classifier> RankSumDetector::clone_unfitted() const {
  return std::make_unique<RankSumDetector>(params_);
}

void RankSumDetector::save_state(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("RankSumDetector: save before fit");
  os << "ranksum " << healthy_sorted_.size() << '\n';
  for (std::size_t c = 0; c < healthy_sorted_.size(); ++c) {
    ml::io::write_vector(os, "col" + std::to_string(c), healthy_sorted_[c]);
  }
}

void RankSumDetector::load_state(std::istream& is) {
  ml::io::expect_token(is, "ranksum");
  std::size_t cols = 0;
  if (!(is >> cols) || cols > 100000) {
    throw std::runtime_error("RankSumDetector: bad column count");
  }
  healthy_sorted_.assign(cols, {});
  for (std::size_t c = 0; c < cols; ++c) {
    healthy_sorted_[c] = ml::io::read_vector(is, "col" + std::to_string(c));
  }
  fitted_ = true;
}

}  // namespace mfpa::baselines
