#include "baselines/prior_work.hpp"

namespace mfpa::baselines {

std::vector<PriorWorkModel> prior_work_models(int vendor, std::uint64_t seed) {
  std::vector<PriorWorkModel> out;

  // All proxies share MFPA's labeling and segmentation so the comparison
  // isolates what each prior system actually contributes: its feature family
  // and algorithm. (IMT-labeling the proxies would give them *easier*
  // positives — samples closer to failure — and skew the comparison.)
  {
    // [19]: error/crash-log features only.
    PriorWorkModel m;
    m.label = "SC'19 [19]";
    m.description = "RF on crash logs only (B)";
    m.config.algorithm = "RF";
    m.config.group = core::FeatureGroup::kB;
    m.config.vendor = vendor;
    m.config.seed = seed;
    out.push_back(m);
    // The W+B combination is not one of the paper's Table V groups; the B
    // group covers the crash-log half and a second W-only row covers the
    // event-log half of [19].
    PriorWorkModel w = m;
    w.label = "SC'19 [19] (events)";
    w.description = "RF on Windows event logs only (W)";
    w.config.group = core::FeatureGroup::kW;
    out.push_back(w);
  }
  {
    // [20]: pooled/transfer-style linear model across vendors.
    PriorWorkModel m;
    m.label = "TPDS'20 [20]";
    m.description = "pooled all-vendor logistic model on SMART";
    m.config.algorithm = "LR";
    m.config.group = core::FeatureGroup::kS;
    m.config.vendor = -1;  // trained on the pooled fleet
    m.config.seed = seed;
    out.push_back(m);
  }
  {
    // [21]: interpretable SMART-only tree.
    PriorWorkModel m;
    m.label = "SoCC'20 [21]";
    m.description = "single decision tree on SMART";
    m.config.algorithm = "DT";
    m.config.group = core::FeatureGroup::kS;
    m.config.vendor = vendor;
    m.config.seed = seed;
    out.push_back(m);
  }
  {
    // [22]: boosted lifespan model on SMART.
    PriorWorkModel m;
    m.label = "TDSC'21 [22]";
    m.description = "GBDT on SMART";
    m.config.algorithm = "GBDT";
    m.config.group = core::FeatureGroup::kS;
    m.config.vendor = vendor;
    m.config.seed = seed;
    out.push_back(m);
  }
  {
    // MFPA itself: SFWB + every pipeline optimization.
    PriorWorkModel m;
    m.label = "MFPA (ours)";
    m.description = "RF on SFWB with theta-labeling and time-split";
    m.config.algorithm = "RF";
    m.config.group = core::FeatureGroup::kSFWB;
    m.config.vendor = vendor;
    m.config.seed = seed;
    out.push_back(m);
  }
  return out;
}

}  // namespace mfpa::baselines
