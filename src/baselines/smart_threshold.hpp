// The vendor-style SMART threshold detector ("almost all disk vendors use
// the original threshold-based algorithms to trigger a failure alarm when a
// single SMART attribute exceeds the threshold value" — paper §II; reported
// there at 3-10% TPR / ~0.1% FPR).
//
// Stateless rule set over the 16 SMART features (column order = Table II):
// an alarm fires when Critical Warning is set, Available Spare falls to its
// threshold, Percentage Used reaches 100, or Media Errors exceed a fixed
// count.
#pragma once

#include "data/dataset.hpp"
#include "ml/metrics.hpp"

#include <vector>

namespace mfpa::baselines {

struct SmartThresholdRules {
  double max_media_errors = 50.0;   ///< alarm above this many media errors
  double min_spare_margin = 0.0;    ///< alarm when spare <= threshold + margin
  double max_percentage_used = 100.0;
  bool use_critical_warning = true;
};

class SmartThresholdDetector {
 public:
  explicit SmartThresholdDetector(SmartThresholdRules rules = {})
      : rules_(rules) {}

  /// 0/1 alarm per row. `ds` must contain the SMART features (S_1..S_16) by
  /// name; other columns are ignored.
  std::vector<int> predict(const data::Dataset& ds) const;

  /// Alarm evaluation against the dataset labels.
  ml::ConfusionMatrix evaluate(const data::Dataset& ds) const;

 private:
  SmartThresholdRules rules_;
};

}  // namespace mfpa::baselines
