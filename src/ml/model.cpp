#include "ml/model.hpp"

#include <stdexcept>

namespace mfpa::ml {

double param_or(const Hyperparams& params, const std::string& key,
                double fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::vector<int> Classifier::predict(const Matrix& X, double threshold) const {
  const auto probs = predict_proba(X);
  std::vector<int> out(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    out[i] = probs[i] >= threshold ? 1 : 0;
  }
  return out;
}

void Classifier::validate_fit_args(const Matrix& X, const std::vector<int>& y) {
  if (X.rows() != y.size()) {
    throw std::invalid_argument("Classifier::fit: X/y size mismatch");
  }
  if (X.rows() == 0) {
    throw std::invalid_argument("Classifier::fit: empty training set");
  }
  for (int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("Classifier::fit: labels must be 0/1");
    }
  }
}

}  // namespace mfpa::ml
