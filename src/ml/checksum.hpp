// Content checksums for model artifacts. Serialized models travel from the
// training fleet to the serving tier (and onward to client agents) through
// object stores and flaky links; a truncated or bit-flipped artifact must be
// rejected at load time, not discovered as silently wrong scores. FNV-1a is
// enough: the threat model is corruption, not an adversary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mfpa::ml {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// FNV-1a 64-bit over a byte range; pass a previous digest to chain blocks.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = kFnv1aOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Fixed-width (16 digit) lowercase hex rendering of a digest.
std::string checksum_hex(std::uint64_t digest);

/// Parses checksum_hex output; throws std::runtime_error on malformed input.
std::uint64_t parse_checksum_hex(const std::string& hex);

}  // namespace mfpa::ml
