// Compiled inference representation for the tree ensembles.
//
// A trained RF/GBDT walks per-tree `std::vector<TreeNode>` arrays whose
// 56-byte nodes scatter the fields the hot loop needs (feature, threshold,
// children) across cache lines, and visits the trees row-by-row so no tree
// stays resident. FlatForest flattens the whole ensemble once into
// structure-of-arrays node storage (16 bytes per node in total):
//
//   feat_[n]  int32   split feature, < 0 marks a leaf
//   thr_[n]   double  split threshold — or the leaf value when feat_[n] < 0
//   left_[n]  int32   absolute index of the left child; children are laid
//                     out adjacently, so the right child is left_[n] + 1
//                     (leaves point at themselves)
//   fl_[n]    uint64  (feat_[n], left_[n]) packed little-endian — feat in
//                     the low dword, left in the high dword
//
// fl_ is redundant with feat_/left_; it exists for the vector kernels,
// whose descend is load-bound (x, thr, node metadata, every level). The
// packed pair fetches feature AND child base as ONE 8-byte gather lane —
// 3 loads per row per level versus the scalar kernel's 4.
//
// Nodes are breadth-first per tree, so the top levels every row traverses
// sit contiguously, and scoring iterates trees in the *outer* loop over a
// block of rows: one tree's arrays stay cache-resident while the whole
// block walks it, and eight rows step in lockstep so eight independent
// compare/descend chains overlap in flight (see accumulate_range).
//
// Equivalence contract: for every row the accumulator applies the exact
// operation sequence of the node-pointer path — tree-order additions,
// per-term scaling, identical descend predicate (x <= thr takes the left
// child; a NaN comparison is false, so NaN takes the right child, exactly
// like RegressionTree::predict_row) — so compiled probabilities are
// bit-identical to the uncompiled ones, and every serving-parity and
// alert-equality contract holds with compilation on or off.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "data/matrix.hpp"

namespace mfpa::ml {

class RegressionTree;
class QuantizedForest;

/// Numerically stable logistic shared by the GBDT pointer path and the
/// compiled path — a single definition keeps the two bit-identical.
inline double stable_sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Flattened, immutable ensemble. Cheap to move; thread-safe to share.
class FlatForest {
 public:
  /// How per-row tree sums become probabilities.
  enum class Output {
    kMeanClamp,  ///< clamp(sum / n_trees, 0, 1) — random forest
    kSigmoid,    ///< sigmoid(base + sum) — boosted trees
  };

  FlatForest() = default;

  /// Flattens fitted trees. `per_tree_scale` multiplies every leaf
  /// contribution (1 for RF, learning_rate for GBDT) and `base` seeds the
  /// accumulator (0 for RF, the log-odds prior for GBDT). Throws
  /// std::invalid_argument on an empty or unfitted ensemble.
  static FlatForest compile(std::span<const RegressionTree> trees,
                            Output output, double per_tree_scale,
                            double base);

  bool empty() const noexcept { return roots_.empty(); }
  std::size_t tree_count() const noexcept { return roots_.size(); }
  std::size_t node_count() const noexcept { return feat_.size(); }
  /// Heap footprint of the node arrays (the compiled model's working set).
  std::size_t bytes() const noexcept;

  /// Scores every row of X into out (out.size() == X.rows()).
  /// `threads` follows the library convention (0 = hardware, <=1 serial);
  /// parallelism splits rows into contiguous blocks, so results are
  /// bit-identical for every thread count (and to the pointer path).
  void predict_into(const data::Matrix& X, std::span<double> out,
                    std::size_t threads = 1) const;

  /// Convenience allocation form of predict_into.
  std::vector<double> predict(const data::Matrix& X,
                              std::size_t threads = 1) const;

  /// Tree-sliced parallel scoring: each worker accumulates a contiguous
  /// range of trees over all rows and the partial sums combine in fixed
  /// range order. Useful when rows are few but trees are many; results are
  /// deterministic for a given thread count but the regrouped additions are
  /// NOT bit-identical across thread counts — the serving path therefore
  /// uses predict_into. Falls back to predict_into when threads <= 1.
  void predict_tree_parallel_into(const data::Matrix& X,
                                  std::span<double> out,
                                  std::size_t threads) const;

 private:
  std::vector<std::int32_t> feat_;
  std::vector<double> thr_;
  std::vector<std::int32_t> left_;
  std::vector<std::uint64_t> fl_;  ///< packed (feat, left) for the kernels
  std::vector<std::int32_t> roots_;  ///< per-tree root node index
  Output output_ = Output::kMeanClamp;
  double per_tree_scale_ = 1.0;
  double base_ = 0.0;
  double inv_trees_ = 0.0;  ///< 1 / tree_count (kMeanClamp finisher)

  /// Adds trees [tree_lo, tree_hi) of rows [row_lo, row_hi) into acc
  /// (indexed from row_lo; caller seeds it). The blocked lockstep kernel.
  void accumulate_range(const data::Matrix& X, std::size_t row_lo,
                        std::size_t row_hi, std::size_t tree_lo,
                        std::size_t tree_hi, double* acc) const;

  /// Applies the output transform to acc into out for rows [lo, hi).
  void finish_range(const double* acc, std::span<double> out, std::size_t lo,
                    std::size_t hi) const;
};

/// Capability interface for classifiers that can compile their fitted
/// ensemble into a FlatForest (mirrors BinnedFitSupport): the serving tier
/// probes with dynamic_cast at model-activation time and compiles whatever
/// supports it, so hot-swapped models always serve from the flat format.
class CompiledInference {
 public:
  virtual ~CompiledInference() = default;

  /// Builds (or rebuilds) the compiled representation from the fitted
  /// ensemble; returns false when there is nothing to compile yet.
  /// After a successful compile, predict_proba serves from the flat format
  /// until the next fit()/load_state() invalidates it.
  virtual bool compile() = 0;

  /// The compiled representation, or nullptr when not compiled.
  virtual const FlatForest* flat() const noexcept = 0;

  /// Builds (or rebuilds) the uint8-quantized representation (see
  /// quantized_forest.hpp for the tolerance contract); returns false when
  /// there is nothing to compile or the ensemble is not quantizable. After
  /// a successful call, predict_proba prefers the quantized path over the
  /// flat one until the next fit()/load_state() invalidates both.
  virtual bool compile_quantized() = 0;

  /// The quantized representation, or nullptr when not compiled.
  virtual const QuantizedForest* quantized() const noexcept = 0;
};

}  // namespace mfpa::ml
