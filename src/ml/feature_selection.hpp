// Sequential forward selection (Whitney 1971, the paper's reference [27]):
// greedily grows the feature subset, adding at each step the feature whose
// inclusion maximizes the cross-validated score, until no addition improves
// it (or a size cap is reached). Reproduces the paper's Fig. 17 trajectory.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "ml/cross_validation.hpp"
#include "ml/model.hpp"

namespace mfpa::ml {

struct SfsStep {
  std::string added_feature;
  double score = 0.0;                 ///< CV score after adding it
  std::vector<std::string> subset;    ///< cumulative subset at this step
};

struct SfsResult {
  std::vector<std::string> selected;  ///< final subset
  std::vector<SfsStep> trajectory;    ///< one entry per accepted feature
};

/// Runs SFS over the named features of `ds` using time-series CV with
/// `k` folds on the chronologically sorted data. `min_improvement` is the
/// score gain required to accept another feature (0 accepts any positive
/// gain); `max_features` caps the subset size (0 = no cap).
SfsResult sequential_forward_selection(const Classifier& prototype,
                                       const data::Dataset& ds, std::size_t k,
                                       double min_improvement = 1e-4,
                                       std::size_t max_features = 0);

}  // namespace mfpa::ml
