// Model serialization. The paper's deployment pushes refreshed models to
// client machines every couple of months; that requires trained models to
// round-trip through a portable representation.
//
// Format: line-oriented text, whitespace-tokenized, doubles at full
// round-trip precision. Layout (version 2):
//
//   mfpa_model 2 <payload bytes> <fnv1a-64 hex of payload>
//   <algorithm name>
//   params <n> (<key> <value>)*
//   <algorithm-specific state written by Classifier::save_state>
//
// The header's byte count and FNV-1a digest cover everything after the
// header line, so a truncated or bit-flipped artifact is rejected at load
// time with a clear error instead of silently mis-scoring. Version 1
// (the pre-checksum framing, no count/digest) is still readable.
//
// load_classifier() rebuilds the model through the factory and restores its
// state, so a deserialized model predicts bit-identically to the original.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.hpp"

namespace mfpa::ml {

/// Writes a trained classifier (version-2 checksummed framing) and returns
/// the payload's FNV-1a digest (recorded in registry manifests). Throws
/// std::logic_error if unfitted (models validate their own state) and
/// std::runtime_error on stream failure.
std::uint64_t save_classifier(std::ostream& os, const Classifier& model);

/// Reads a classifier saved by save_classifier, verifying the payload
/// checksum (version 2). `overrides` replaces stored hyperparameters before
/// the model is rebuilt — the serving tier uses this to set deployment-side
/// knobs like "threads" that are not properties of the learned state.
/// Throws std::runtime_error on malformed, truncated, or corrupt input.
std::unique_ptr<Classifier> load_classifier(std::istream& is,
                                            const Hyperparams& overrides = {});

/// File-path conveniences.
void save_classifier_file(const std::string& path, const Classifier& model);
std::unique_ptr<Classifier> load_classifier_file(const std::string& path);

namespace io {

// Low-level token helpers shared by the per-model save_state/load_state
// implementations.

/// Writes a double with round-trip precision followed by a space.
void write_double(std::ostream& os, double value);

/// Writes "<tag> <n> v0 v1 ...\n".
void write_vector(std::ostream& os, const std::string& tag,
                  std::span<const double> values);

/// Reads a token and checks it equals `expected`; throws on mismatch.
void expect_token(std::istream& is, const std::string& expected);

/// Reads one double; throws on failure.
double read_double(std::istream& is);

/// Reads "<tag> <n> ..." written by write_vector; throws on tag mismatch.
std::vector<double> read_vector(std::istream& is, const std::string& tag);

}  // namespace io

}  // namespace mfpa::ml
