// CART-style tree engine.
//
// One engine serves both ensembles: a Newton-step regression tree over
// (gradient, hessian) targets. With g = y and h = 1 the leaf value is the
// class-1 fraction and the split gain reduces to variance reduction — which
// for binary targets selects the same splits as Gini — so the same engine
// backs the RandomForest classifier and the GBDT booster.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "data/matrix.hpp"
#include "ml/model.hpp"

namespace mfpa::ml {

/// Tree growth limits and split behaviour.
struct TreeParams {
  int max_depth = 12;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features considered per split: -1 = all, 0 = sqrt(d), k>0 = min(k, d).
  int max_features = -1;
  double lambda = 0.0;     ///< L2 on leaf values (Newton denominator)
  double min_gain = 1e-12; ///< minimum split gain
};

/// Flat node storage (children by index; feature < 0 marks a leaf).
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;   ///< leaf prediction
  double gain = 0.0;    ///< split gain (for feature importance)
  std::size_t samples = 0;
};

/// The engine. Fits leaf values sum(g)/(sum(h)+lambda) maximizing the Newton
/// split gain; deterministic given the Rng passed to fit().
class RegressionTree {
 public:
  explicit RegressionTree(TreeParams params = {}) : params_(params) {}

  /// Fits on the subset `rows` of X with per-row gradient/hessian targets.
  /// grad/hess are indexed by absolute row id; hess may be empty (all ones).
  void fit(const data::Matrix& X, std::span<const double> grad,
           std::span<const double> hess, std::span<const std::size_t> rows,
           Rng& rng);

  /// Prediction for one feature row.
  double predict_row(std::span<const double> row) const;

  /// Predictions for every row of X.
  std::vector<double> predict(const data::Matrix& X) const;

  bool fitted() const noexcept { return !nodes_.empty(); }
  const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }
  const TreeParams& params() const noexcept { return params_; }

  /// Maximum root-to-leaf depth of the fitted tree.
  int depth() const noexcept;

  /// Adds this tree's gain-weighted feature importance into `out`
  /// (size = number of features).
  void accumulate_importance(std::vector<double>& out) const;

  /// Serializes the fitted node array (see ml/serialize.hpp framing).
  void save(std::ostream& os) const;
  /// Restores a node array written by save(); throws std::runtime_error on
  /// malformed input.
  void load(std::istream& is);

 private:
  TreeParams params_;
  std::vector<TreeNode> nodes_;

  struct BuildContext;
  int build_node(BuildContext& ctx, std::vector<std::size_t>& rows, int depth_left);
};

/// Single decision tree classifier (the engine with g = y, h = 1).
/// Hyperparams: "max_depth", "min_samples_split", "min_samples_leaf",
/// "max_features", "seed".
class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "DT"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  const RegressionTree& tree() const noexcept { return tree_; }

 private:
  Hyperparams params_;
  RegressionTree tree_;
};

}  // namespace mfpa::ml
