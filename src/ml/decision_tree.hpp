// CART-style tree engine.
//
// One engine serves both ensembles: a Newton-step regression tree over
// (gradient, hessian) targets. With g = y and h = 1 the leaf value is the
// class-1 fraction and the split gain reduces to variance reduction — which
// for binary targets selects the same splits as Gini — so the same engine
// backs the RandomForest classifier and the GBDT booster.
//
// Two split-finding paths share the TreeNode output format:
//  - exact: per node, sort (value, row) pairs per feature and scan every
//    boundary between distinct values — O(features * n log n) per node;
//  - hist (default): quantile-bin each feature once per fit (see
//    data/binned_matrix.hpp), accumulate (grad, hess, count) histograms per
//    node, and scan at most 255 bins per feature — O(features * n) per node,
//    with the smaller child's histogram built from its rows and the sibling's
//    derived as parent − child.
// Trained trees are identical in representation either way, so
// serialization and predict_row are path-agnostic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "data/matrix.hpp"
#include "ml/model.hpp"

namespace mfpa::data {
class BinnedMatrix;
}

namespace mfpa::ml {

/// Split-finding strategy (see file comment).
enum class SplitMethod : int { kExact = 0, kHist = 1 };

/// Tree growth limits and split behaviour.
struct TreeParams {
  int max_depth = 12;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features considered per split: -1 = all, 0 = sqrt(d), k>0 = min(k, d).
  int max_features = -1;
  double lambda = 0.0;     ///< L2 on leaf values (Newton denominator)
  double min_gain = 1e-12; ///< minimum split gain
  SplitMethod split_method = SplitMethod::kHist;
  std::size_t max_bins = 255;  ///< hist path: bins per feature (2..255)
};

/// Flat node storage (children by index; feature < 0 marks a leaf).
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;   ///< leaf prediction
  double gain = 0.0;    ///< split gain (for feature importance)
  std::size_t samples = 0;
};

/// The engine. Fits leaf values sum(g)/(sum(h)+lambda) maximizing the Newton
/// split gain; deterministic given the Rng passed to fit().
class RegressionTree {
 public:
  explicit RegressionTree(TreeParams params = {}) : params_(params) {}

  /// Fits on the subset `rows` of X with per-row gradient/hessian targets.
  /// grad/hess are indexed by absolute row id; hess may be empty (all ones).
  /// With split_method == kHist, X is binned internally first; ensembles
  /// that fit many trees should bin once and use the BinnedMatrix overload.
  void fit(const data::Matrix& X, std::span<const double> grad,
           std::span<const double> hess, std::span<const std::size_t> rows,
           Rng& rng);

  /// Histogram-path fit against a prebuilt binned view. `rows`, grad and
  /// hess are indexed by absolute row id of the binned matrix, so one
  /// BinnedMatrix can be shared across every tree of an ensemble.
  void fit(const data::BinnedMatrix& bins, std::span<const double> grad,
           std::span<const double> hess, std::span<const std::size_t> rows,
           Rng& rng);

  /// Prediction for one feature row.
  double predict_row(std::span<const double> row) const;

  /// Predictions for every row of X.
  std::vector<double> predict(const data::Matrix& X) const;

  /// Predictions for every row of X into caller-owned storage
  /// (out.size() == X.rows()) — the allocation-free form of predict().
  void predict_into(const data::Matrix& X, std::span<double> out) const;

  bool fitted() const noexcept { return !nodes_.empty(); }
  const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }
  const TreeParams& params() const noexcept { return params_; }

  /// Maximum root-to-leaf depth of the fitted tree.
  int depth() const noexcept;

  /// Adds this tree's gain-weighted feature importance into `out`
  /// (size = number of features).
  void accumulate_importance(std::vector<double>& out) const;

  /// Serializes the fitted node array (see ml/serialize.hpp framing).
  void save(std::ostream& os) const;
  /// Restores a node array written by save(); throws std::runtime_error on
  /// malformed input.
  void load(std::istream& is);

 private:
  TreeParams params_;
  std::vector<TreeNode> nodes_;

  struct BuildContext;
  int build_node(BuildContext& ctx, std::vector<std::size_t>& rows, int depth_left);

  struct HistBin;
  struct HistContext;
  int build_node_hist(HistContext& ctx, std::vector<std::size_t>& rows,
                      int depth_left, std::vector<HistBin> hist);
};

/// Single decision tree classifier (the engine with g = y, h = 1).
/// Hyperparams: "max_depth", "min_samples_split", "min_samples_leaf",
/// "max_features", "seed", "split_method" (0 = exact, 1 = hist; default 1),
/// "max_bins" (hist path, default 255).
class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "DT"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  const RegressionTree& tree() const noexcept { return tree_; }

 private:
  Hyperparams params_;
  RegressionTree tree_;
};

}  // namespace mfpa::ml
