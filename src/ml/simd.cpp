#include "ml/simd.hpp"

#include <atomic>

namespace mfpa::ml {
namespace {

// Override encoding in one atomic int: -1 = auto (no override), else the
// SimdLevel value. Relaxed ordering is enough — the flag is configuration,
// set before serving traffic starts, and every load observes *a* valid
// level (dispatch re-reads it per predict call).
std::atomic<int> g_override{-1};

SimdLevel probe() noexcept {
#if defined(MFPA_FORCE_SCALAR)
  return SimdLevel::kScalar;
#elif defined(__aarch64__)
  return SimdLevel::kNeon;  // NEON is baseline on aarch64
#elif defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2
                                        : SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

}  // namespace

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel detected = probe();
  return detected;
}

void set_simd_override(std::optional<SimdLevel> level) noexcept {
  g_override.store(level ? static_cast<int>(*level) : -1,
                   std::memory_order_relaxed);
}

std::optional<SimdLevel> simd_override() noexcept {
  const int raw = g_override.load(std::memory_order_relaxed);
  if (raw < 0) return std::nullopt;
  return static_cast<SimdLevel>(raw);
}

SimdLevel active_simd_level() noexcept {
  const SimdLevel detected = detected_simd_level();
  const auto forced = simd_override();
  if (!forced) return detected;
  // A forced level the hardware lacks degrades to the detected one; forcing
  // a *weaker* level than detected is honored (that is the point of the
  // flag: scalar-vs-vector A/B runs and parity bisects).
  return static_cast<int>(*forced) <= static_cast<int>(detected) ? *forced
                                                                 : detected;
}

std::string_view to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
    default:
      return "scalar";
  }
}

bool parse_simd_level(std::string_view text,
                      std::optional<SimdLevel>& level) noexcept {
  if (text == "auto") {
    level = std::nullopt;
    return true;
  }
  if (text == "scalar") {
    level = SimdLevel::kScalar;
    return true;
  }
  if (text == "neon") {
    level = SimdLevel::kNeon;
    return true;
  }
  if (text == "avx2") {
    level = SimdLevel::kAvx2;
    return true;
  }
  return false;
}

}  // namespace mfpa::ml
