// Linear soft-margin SVM trained with the Pegasos stochastic sub-gradient
// algorithm (Shalev-Shwartz et al.), with Platt-style sigmoid calibration so
// predict_proba() is comparable across models. The "SVM" entry of the
// paper's algorithm portability study.
#pragma once

#include "data/scaler.hpp"
#include "ml/model.hpp"

#include <vector>

namespace mfpa::ml {

/// Hyperparams: "lambda" (1e-4, regularization), "epochs" (20), "seed" (1).
class LinearSVM final : public Classifier {
 public:
  explicit LinearSVM(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "SVM"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// Raw decision values w.x + b (margins).
  std::vector<double> decision_function(const Matrix& X) const;

 private:
  Hyperparams params_;
  data::StandardScaler scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
  // Platt calibration parameters: p = sigmoid(a * margin + c).
  double platt_a_ = -1.0;
  double platt_c_ = 0.0;
  bool fitted_ = false;
};

}  // namespace mfpa::ml
