#include "ml/cross_validation.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "ml/binned_support.hpp"
#include "ml/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mfpa::ml {

std::vector<Split> kfold_splits(std::size_t n, std::size_t k,
                                std::uint64_t seed) {
  if (k < 2 || n < k) {
    throw std::invalid_argument("kfold_splits: need 2 <= k <= n");
  }
  Rng rng(seed);
  const auto order = rng.permutation(n);
  std::vector<Split> splits(k);
  for (std::size_t fold = 0; fold < k; ++fold) {
    const std::size_t lo = fold * n / k;
    const std::size_t hi = (fold + 1) * n / k;
    auto& s = splits[fold];
    s.validation.assign(order.begin() + static_cast<std::ptrdiff_t>(lo),
                        order.begin() + static_cast<std::ptrdiff_t>(hi));
    s.train.reserve(n - (hi - lo));
    s.train.insert(s.train.end(), order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(lo));
    s.train.insert(s.train.end(),
                   order.begin() + static_cast<std::ptrdiff_t>(hi), order.end());
  }
  return splits;
}

std::vector<Split> time_series_splits(std::size_t n, std::size_t k) {
  if (k < 1 || n < 2 * k) {
    throw std::invalid_argument("time_series_splits: need n >= 2k, k >= 1");
  }
  const std::size_t subsets = 2 * k;
  auto subset_range = [&](std::size_t s) {
    return std::pair{s * n / subsets, (s + 1) * n / subsets};
  };
  std::vector<Split> splits(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto& s = splits[i];
    const auto [train_lo, unused] = subset_range(i);
    (void)unused;
    const auto [train_hi_lo, train_hi] = subset_range(i + k - 1);
    (void)train_hi_lo;
    const auto [val_lo, val_hi] = subset_range(i + k);
    s.train.resize(train_hi - train_lo);
    std::iota(s.train.begin(), s.train.end(), train_lo);
    s.validation.resize(val_hi - val_lo);
    std::iota(s.validation.begin(), s.validation.end(), val_lo);
  }
  return splits;
}

double cross_val_score(const Classifier& prototype, const data::Matrix& X,
                       const std::vector<int>& y,
                       const std::vector<Split>& splits, CvMetric metric) {
  return cross_val_score(prototype, build_cv_cache(X, y, splits, false),
                         metric);
}

CvCache build_cv_cache(const data::Matrix& X, const std::vector<int>& y,
                       const std::vector<Split>& splits, bool with_bins,
                       std::size_t max_bins) {
  if (splits.empty()) throw std::invalid_argument("cross_val_score: no splits");
  CvCache cache;
  cache.folds.reserve(splits.size());
  for (const auto& split : splits) {
    auto& fold = cache.folds.emplace_back();
    // A fold whose training slice lacks one class cannot be fit; mark it
    // unusable (can happen with extreme imbalance in early time-series folds).
    bool has_pos = false, has_neg = false;
    fold.y_train.reserve(split.train.size());
    for (std::size_t i : split.train) {
      fold.y_train.push_back(y[i]);
      (y[i] == 1 ? has_pos : has_neg) = true;
    }
    fold.usable = has_pos && has_neg;
    if (!fold.usable) continue;
    fold.X_train = X.select_rows(split.train);
    fold.X_val = X.select_rows(split.validation);
    fold.y_val.reserve(split.validation.size());
    for (std::size_t i : split.validation) fold.y_val.push_back(y[i]);
    if (with_bins) {
      fold.bins = std::make_shared<data::BinnedMatrix>(fold.X_train, max_bins);
    }
  }
  return cache;
}

double cross_val_score(const Classifier& prototype, const CvCache& cache,
                       CvMetric metric) {
  if (cache.folds.empty()) {
    throw std::invalid_argument("cross_val_score: no splits");
  }
  auto& reg = obs::registry();
  auto& fold_seconds =
      reg.histogram("mfpa_train_fold_seconds", 0.0, 60.0, 256);
  auto& folds_evaluated = reg.counter("mfpa_train_folds_total");
  double total = 0.0;
  std::size_t used = 0;
  for (const auto& fold : cache.folds) {
    if (!fold.usable) continue;

    obs::ScopedSpan fold_span("train.fold");
    obs::ScopedTimer fold_timer(fold_seconds);
    folds_evaluated.inc();
    auto model = prototype.clone_unfitted();
    if (fold.bins) {
      if (auto* binned = dynamic_cast<BinnedFitSupport*>(model.get())) {
        binned->set_shared_bins(fold.bins);
      }
    }
    model->fit(fold.X_train, fold.y_train);
    const auto scores = model->predict_proba(fold.X_val);

    switch (metric) {
      case CvMetric::kAuc:
        total += auc(fold.y_val, scores);
        break;
      case CvMetric::kYouden: {
        const auto cm = confusion_at(fold.y_val, scores, 0.5);
        total += cm.tpr() - cm.fpr();
        break;
      }
      case CvMetric::kAccuracy: {
        const auto cm = confusion_at(fold.y_val, scores, 0.5);
        total += cm.accuracy();
        break;
      }
    }
    ++used;
  }
  return used == 0 ? 0.0 : total / static_cast<double>(used);
}

}  // namespace mfpa::ml
