// CNN_LSTM binary classifier, the deep-learning entry of the paper's
// algorithm portability study (Fig. 10/14).
//
// Architecture (per sample, a T x F feature sequence flattened row-major
// into one Matrix row): Conv1D (kernel 3, same padding) + ReLU -> LSTM ->
// last hidden state -> Dense -> sigmoid. Trained with mini-batch Adam on
// binary cross-entropy. Input standardization is internal.
//
// Everything is implemented from scratch (no BLAS): explicit forward and
// backward passes with per-gate LSTM BPTT.
#pragma once

#include "data/scaler.hpp"
#include "ml/model.hpp"

#include <vector>

namespace mfpa::ml {

/// Hyperparams: "timesteps" (required, T), "channels" (16), "hidden" (24),
/// "kernel" (3), "epochs" (12), "batch" (64), "lr" (2e-3), "seed" (1).
class CnnLstmClassifier final : public Classifier {
 public:
  explicit CnnLstmClassifier(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "CNN_LSTM"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  std::size_t parameter_count() const noexcept;

 private:
  Hyperparams params_;
  int T_ = 0;       ///< timesteps
  int F_ = 0;       ///< features per step (derived at fit)
  int C_ = 16;      ///< conv channels
  int H_ = 24;      ///< lstm hidden size
  int K_ = 3;       ///< conv kernel
  data::StandardScaler scaler_;

  // Parameters (flat, layout documented in the .cpp).
  std::vector<double> conv_w_;   // [C][F][K]
  std::vector<double> conv_b_;   // [C]
  std::vector<double> lstm_wx_;  // [4H][C]
  std::vector<double> lstm_wh_;  // [4H][H]
  std::vector<double> lstm_b_;   // [4H]
  std::vector<double> dense_w_;  // [H]
  double dense_b_ = 0.0;
  bool fitted_ = false;

  struct Cache;      ///< per-sample forward activations for backprop
  struct Gradients;  ///< parameter-gradient accumulator
  double forward(std::span<const double> x, Cache* cache) const;
  void backward(std::span<const double> x, const Cache& cache, double grad_out,
                Gradients& grads) const;
};

}  // namespace mfpa::ml
