#include "ml/isolation_forest.hpp"

#include "ml/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/rng.hpp"

namespace mfpa::ml {
namespace {

constexpr double kEulerMascheroni = 0.5772156649015329;

}  // namespace

IsolationForest::IsolationForest(Hyperparams params)
    : params_(std::move(params)) {}

double IsolationForest::average_path_length(std::size_t n) noexcept {
  if (n <= 1) return 0.0;
  const double h = std::log(static_cast<double>(n - 1)) + kEulerMascheroni;
  return 2.0 * h - 2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
}

void IsolationForest::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);  // shape checks only; labels are ignored
  const std::size_t n_trees =
      static_cast<std::size_t>(param_or(params_, "n_trees", 100));
  const std::size_t subsample = std::min<std::size_t>(
      X.rows(), static_cast<std::size_t>(param_or(params_, "subsample", 256)));
  const auto seed = static_cast<std::uint64_t>(param_or(params_, "seed", 1));
  const int depth_limit = static_cast<int>(
      std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(subsample)))));

  c_norm_ = std::max(average_path_length(subsample), 1e-9);
  trees_.assign(n_trees, Tree{});
  const Rng base(seed);

  for (std::size_t t = 0; t < n_trees; ++t) {
    Rng rng = base.split(t + 1);
    const auto sample = rng.sample_without_replacement(X.rows(), subsample);
    Tree& tree = trees_[t];

    // Iterative construction with an explicit stack of (rows, depth, slot).
    struct Work {
      std::vector<std::size_t> rows;
      int depth;
      int parent;     ///< node index whose child field to fill (-1 = root)
      bool is_left;
    };
    std::vector<Work> stack;
    stack.push_back({std::vector<std::size_t>(sample.begin(), sample.end()), 0,
                     -1, false});
    while (!stack.empty()) {
      Work work = std::move(stack.back());
      stack.pop_back();
      const int node_id = static_cast<int>(tree.nodes.size());
      tree.nodes.emplace_back();
      if (work.parent >= 0) {
        auto& parent = tree.nodes[static_cast<std::size_t>(work.parent)];
        (work.is_left ? parent.left : parent.right) = node_id;
      }
      Node& node = tree.nodes.back();
      node.size = work.rows.size();

      if (work.rows.size() <= 1 || work.depth >= depth_limit) {
        continue;  // leaf
      }
      // Pick a random feature with spread, then a random cut inside it.
      int feature = -1;
      double lo = 0.0, hi = 0.0;
      for (int attempt = 0; attempt < 8 && feature < 0; ++attempt) {
        const auto f = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(X.cols()) - 1));
        lo = hi = X(work.rows[0], f);
        for (std::size_t r : work.rows) {
          lo = std::min(lo, X(r, f));
          hi = std::max(hi, X(r, f));
        }
        if (hi > lo) feature = static_cast<int>(f);
      }
      if (feature < 0) continue;  // all candidate features constant
      const double threshold = rng.uniform(lo, hi);

      std::vector<std::size_t> left, right;
      for (std::size_t r : work.rows) {
        (X(r, static_cast<std::size_t>(feature)) < threshold ? left : right)
            .push_back(r);
      }
      if (left.empty() || right.empty()) continue;
      node.feature = feature;
      node.threshold = threshold;
      // Right pushed first so the left child is built (and numbered) first.
      stack.push_back({std::move(right), work.depth + 1, node_id, false});
      stack.push_back({std::move(left), work.depth + 1, node_id, true});
    }
  }
}

double IsolationForest::path_length(const Tree& tree,
                                    std::span<const double> row) const {
  int id = 0;
  double depth = 0.0;
  while (true) {
    const Node& node = tree.nodes[static_cast<std::size_t>(id)];
    if (node.feature < 0) {
      return depth + average_path_length(node.size);
    }
    depth += 1.0;
    id = row[static_cast<std::size_t>(node.feature)] < node.threshold
             ? node.left
             : node.right;
  }
}

std::vector<double> IsolationForest::predict_proba(const Matrix& X) const {
  if (trees_.empty()) {
    throw std::logic_error("IsolationForest: predict before fit");
  }
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    double total = 0.0;
    for (const auto& tree : trees_) total += path_length(tree, X.row(r));
    const double mean_path = total / static_cast<double>(trees_.size());
    out[r] = std::pow(2.0, -mean_path / c_norm_);
  }
  return out;
}

std::unique_ptr<Classifier> IsolationForest::clone_unfitted() const {
  return std::make_unique<IsolationForest>(params_);
}

void IsolationForest::save_state(std::ostream& os) const {
  if (trees_.empty()) throw std::logic_error("IsolationForest: save before fit");
  os << "iforest " << trees_.size() << ' ';
  io::write_double(os, c_norm_);
  os << '\n';
  for (const auto& tree : trees_) {
    os << "itree " << tree.nodes.size() << '\n';
    for (const auto& n : tree.nodes) {
      os << n.feature << ' ';
      io::write_double(os, n.threshold);
      os << n.left << ' ' << n.right << ' ' << n.size << '\n';
    }
  }
}

void IsolationForest::load_state(std::istream& is) {
  io::expect_token(is, "iforest");
  std::size_t count = 0;
  if (!(is >> count) || count == 0 || count > 100000) {
    throw std::runtime_error("IsolationForest: bad forest header");
  }
  c_norm_ = io::read_double(is);
  trees_.assign(count, Tree{});
  for (auto& tree : trees_) {
    io::expect_token(is, "itree");
    std::size_t nodes = 0;
    if (!(is >> nodes) || nodes > (1u << 26)) {
      throw std::runtime_error("IsolationForest: bad tree header");
    }
    tree.nodes.assign(nodes, Node{});
    for (auto& n : tree.nodes) {
      if (!(is >> n.feature >> n.threshold >> n.left >> n.right >> n.size)) {
        throw std::runtime_error("IsolationForest: malformed node");
      }
    }
  }
}

}  // namespace mfpa::ml
