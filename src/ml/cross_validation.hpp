// Cross-validation splitters, including the paper's time-series CV
// (Fig. 8(b)(2)): data sorted chronologically is divided into 2k subsets;
// iteration i trains on subsets [i, i+k) and validates on subset i+k, so the
// model never sees samples from the future of its validation slice.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/model.hpp"

namespace mfpa::ml {

/// One train/validation split (row indices into the source dataset).
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};

/// Classic shuffled k-fold (the paper's Fig. 8(b)(1) strawman).
std::vector<Split> kfold_splits(std::size_t n, std::size_t k, std::uint64_t seed);

/// Time-series CV over a *chronologically sorted* dataset of n rows:
/// 2k equal contiguous subsets; iteration i in [0,k) trains on subsets
/// [i, i+k) and validates on subset i+k. Throws std::invalid_argument if
/// n < 2k.
std::vector<Split> time_series_splits(std::size_t n, std::size_t k);

/// Mean validation metric of a model over splits. The model prototype is
/// cloned per split. Metric: AUC (default) or Youden-J at threshold 0.5.
enum class CvMetric { kAuc, kYouden, kAccuracy };

double cross_val_score(const Classifier& prototype, const data::Matrix& X,
                       const std::vector<int>& y,
                       const std::vector<Split>& splits,
                       CvMetric metric = CvMetric::kAuc);

}  // namespace mfpa::ml
