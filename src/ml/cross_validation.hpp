// Cross-validation splitters, including the paper's time-series CV
// (Fig. 8(b)(2)): data sorted chronologically is divided into 2k subsets;
// iteration i trains on subsets [i, i+k) and validates on subset i+k, so the
// model never sees samples from the future of its validation slice.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "data/binned_matrix.hpp"
#include "data/dataset.hpp"
#include "ml/model.hpp"

namespace mfpa::ml {

/// One train/validation split (row indices into the source dataset).
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};

/// Classic shuffled k-fold (the paper's Fig. 8(b)(1) strawman).
std::vector<Split> kfold_splits(std::size_t n, std::size_t k, std::uint64_t seed);

/// Time-series CV over a *chronologically sorted* dataset of n rows:
/// 2k equal contiguous subsets; iteration i in [0,k) trains on subsets
/// [i, i+k) and validates on subset i+k. Throws std::invalid_argument if
/// n < 2k.
std::vector<Split> time_series_splits(std::size_t n, std::size_t k);

/// Mean validation metric of a model over splits. The model prototype is
/// cloned per split. Metric: AUC (default) or Youden-J at threshold 0.5.
enum class CvMetric { kAuc, kYouden, kAccuracy };

double cross_val_score(const Classifier& prototype, const data::Matrix& X,
                       const std::vector<int>& y,
                       const std::vector<Split>& splits,
                       CvMetric metric = CvMetric::kAuc);

/// Fold materialization shared across repeated evaluations of the same
/// splits (the grid-search hot path): row-selected matrices and labels are
/// built once, and — when requested — each training fold is quantile-binned
/// once (data::BinnedMatrix) so every tree-ensemble grid point skips
/// re-sketching. Bins are computed from training rows only, so no
/// validation data leaks into the sketch.
struct CvCache {
  struct Fold {
    data::Matrix X_train, X_val;
    std::vector<int> y_train, y_val;
    bool usable = false;  ///< training slice contains both classes
    std::shared_ptr<const data::BinnedMatrix> bins;  ///< over X_train; may be null
  };
  std::vector<Fold> folds;
};

/// Materializes folds once. `with_bins` additionally bins each training fold
/// (for classifiers implementing BinnedFitSupport; see ml/binned_support.hpp).
CvCache build_cv_cache(const data::Matrix& X, const std::vector<int>& y,
                       const std::vector<Split>& splits, bool with_bins,
                       std::size_t max_bins = data::BinnedMatrix::kMaxBins);

/// Identical scoring semantics to the (X, y, splits) overload, against a
/// prebuilt cache. Thread-safe for concurrent calls on the same cache.
double cross_val_score(const Classifier& prototype, const CvCache& cache,
                       CvMetric metric = CvMetric::kAuc);

}  // namespace mfpa::ml
