#include "ml/factory.hpp"

#include <stdexcept>

#include "ml/cnn_lstm.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbdt.hpp"
#include "ml/isolation_forest.hpp"
#include "ml/logistic.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace mfpa::ml {

const std::vector<std::string>& known_algorithms() {
  static const std::vector<std::string> kNames = {
      "Bayes", "SVM", "RF", "GBDT", "CNN_LSTM", "LR", "DT", "IForest"};
  return kNames;
}

std::unique_ptr<Classifier> make_classifier(const std::string& name,
                                            const Hyperparams& params) {
  if (name == "Bayes") return std::make_unique<GaussianNB>(params);
  if (name == "SVM") return std::make_unique<LinearSVM>(params);
  if (name == "RF") return std::make_unique<RandomForestClassifier>(params);
  if (name == "GBDT") return std::make_unique<GbdtClassifier>(params);
  if (name == "CNN_LSTM") return std::make_unique<CnnLstmClassifier>(params);
  if (name == "LR") return std::make_unique<LogisticRegression>(params);
  if (name == "DT") return std::make_unique<DecisionTreeClassifier>(params);
  if (name == "IForest") return std::make_unique<IsolationForest>(params);
  throw std::invalid_argument("make_classifier: unknown algorithm '" + name +
                              "'");
}

Hyperparams default_hyperparams(const std::string& name) {
  if (name == "Bayes") return {};
  if (name == "SVM") return {{"lambda", 1e-4}, {"epochs", 20}};
  if (name == "RF") {
    return {{"n_trees", 60}, {"max_depth", 14}, {"max_features", 0}};
  }
  if (name == "GBDT") {
    return {{"n_rounds", 80}, {"learning_rate", 0.2}, {"max_depth", 5}};
  }
  if (name == "CNN_LSTM") {
    return {{"timesteps", 5}, {"channels", 16}, {"hidden", 24},
            {"epochs", 10},  {"lr", 2e-3}};
  }
  if (name == "LR") return {{"lr", 0.1}, {"epochs", 40}};
  if (name == "DT") return {{"max_depth", 12}};
  if (name == "IForest") return {{"n_trees", 100}, {"subsample", 256}};
  throw std::invalid_argument("default_hyperparams: unknown algorithm '" +
                              name + "'");
}

}  // namespace mfpa::ml
