#include "ml/flat_forest.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "ml/decision_tree.hpp"
#include "ml/flat_forest_kernels.hpp"
#include "ml/parallel_for.hpp"
#include "ml/simd.hpp"
#include "obs/metrics.hpp"

namespace mfpa::ml {
namespace {

/// Compile/scoring instruments, cached per thread the same way as
/// parallel_for.hpp's: predict_into runs on every serving micro-batch, so
/// the handles must not take the registry mutex on the hot path. The cache
/// key is the (registry address, generation) pair, which invalidates it
/// whenever a test swaps in an isolated registry.
struct FlatMetrics {
  obs::Counter* compiles = nullptr;
  obs::Counter* rows_scored = nullptr;
  obs::Gauge* nodes = nullptr;
  obs::Gauge* simd_level = nullptr;
  obs::HistogramMetric* compile_seconds = nullptr;
  obs::HistogramMetric* batch_seconds = nullptr;
};

const FlatMetrics& flat_metrics() {
  thread_local obs::MetricsRegistry* cached_registry = nullptr;
  thread_local std::uint64_t cached_generation = 0;
  thread_local FlatMetrics metrics;
  auto& reg = obs::registry();
  if (&reg != cached_registry || reg.generation() != cached_generation) {
    metrics.compiles = &reg.counter("mfpa_flat_compiles_total");
    metrics.rows_scored = &reg.counter("mfpa_flat_rows_scored_total");
    metrics.nodes = &reg.gauge("mfpa_flat_nodes");
    metrics.simd_level = &reg.gauge("mfpa_flat_simd_level");
    metrics.compile_seconds =
        &reg.histogram("mfpa_flat_compile_seconds", 0.0, 10.0, 256);
    metrics.batch_seconds =
        &reg.histogram("mfpa_flat_batch_seconds", 0.0, 1.0, 512);
    cached_registry = &reg;
    cached_generation = reg.generation();
  }
  return metrics;
}

/// Rows per cache block: one tree's node arrays are fetched once per block,
/// so larger blocks amortize deep-tree traffic better as long as the
/// block's feature rows still fit beside the tree in cache.
constexpr std::size_t kRowBlock = 96;

/// Portable reference kernel (the original 8-row lockstep block); the
/// vector kernels in flat_forest_avx2.cpp / flat_forest_neon.cpp transcribe
/// exactly this operation sequence onto lanes.
void accumulate_scalar(const detail::ForestView& forest, const double* x,
                       std::size_t cols, std::size_t row_lo,
                       std::size_t row_hi, std::size_t tree_lo,
                       std::size_t tree_hi, double* acc) {
  const std::int32_t* feat = forest.feat;
  const double* thr = forest.thr;
  const std::int32_t* left = forest.left;
  const double scale = forest.scale;
  // One branchless descend: !(x <= thr) sends NaN right, matching the
  // pointer path's `x <= thr ? left : right`; a lane already at a leaf
  // clamps its feature index to 0 (thr there holds the leaf value — the
  // comparison result is discarded) and keeps its node. The leaf select
  // uses sign-mask arithmetic rather than ternaries: ternaries here tempt
  // the compiler into emitting data-dependent skip branches, which
  // mispredict every time a lane reaches its leaf.
  const auto step = [feat, thr, left](std::int32_t n, std::int32_t f,
                                      const double* row) noexcept {
    const std::int32_t keep = f >> 31;  // all-ones at a leaf, else zero
    const std::int32_t idx = f & ~keep;
    const std::int32_t next =
        left[n] + static_cast<std::int32_t>(!(row[idx] <= thr[n]));
    return (n & keep) | (next & ~keep);
  };
  for (std::size_t t = tree_lo; t < tree_hi; ++t) {
    const std::int32_t root = forest.roots[t];
    const std::int32_t root_feat = feat[root];
    std::size_t r = row_lo;
    // Eight rows descend in lockstep: each lane's walk is a serial
    // load→compare→step chain of roughly L2 latency per level, so the only
    // way to keep the core busy is many independent chains in flight.
    // Eight lanes saturate the load ports without spilling the lane state.
    // The level loop is unrolled two levels deep — stepping a finished
    // lane is a no-op, so the all-leaves test only needs to run every
    // other level and its AND-reduce drops off the critical path.
    for (; r + 8 <= row_hi; r += 8) {
      const double* x0 = x + r * cols;
      const double* x1 = x + (r + 1) * cols;
      const double* x2 = x + (r + 2) * cols;
      const double* x3 = x + (r + 3) * cols;
      const double* x4 = x + (r + 4) * cols;
      const double* x5 = x + (r + 5) * cols;
      const double* x6 = x + (r + 6) * cols;
      const double* x7 = x + (r + 7) * cols;
      std::int32_t n0 = root, n1 = root, n2 = root, n3 = root;
      std::int32_t n4 = root, n5 = root, n6 = root, n7 = root;
      std::int32_t f0 = root_feat, f1 = root_feat, f2 = root_feat;
      std::int32_t f3 = root_feat, f4 = root_feat, f5 = root_feat;
      std::int32_t f6 = root_feat, f7 = root_feat;
      for (;;) {
        n0 = step(n0, f0, x0);
        n1 = step(n1, f1, x1);
        n2 = step(n2, f2, x2);
        n3 = step(n3, f3, x3);
        n4 = step(n4, f4, x4);
        n5 = step(n5, f5, x5);
        n6 = step(n6, f6, x6);
        n7 = step(n7, f7, x7);
        f0 = feat[n0];
        f1 = feat[n1];
        f2 = feat[n2];
        f3 = feat[n3];
        f4 = feat[n4];
        f5 = feat[n5];
        f6 = feat[n6];
        f7 = feat[n7];
        n0 = step(n0, f0, x0);
        n1 = step(n1, f1, x1);
        n2 = step(n2, f2, x2);
        n3 = step(n3, f3, x3);
        n4 = step(n4, f4, x4);
        n5 = step(n5, f5, x5);
        n6 = step(n6, f6, x6);
        n7 = step(n7, f7, x7);
        f0 = feat[n0];
        f1 = feat[n1];
        f2 = feat[n2];
        f3 = feat[n3];
        f4 = feat[n4];
        f5 = feat[n5];
        f6 = feat[n6];
        f7 = feat[n7];
        // A leaf's feature is -1, an internal node's is >= 0, so the AND
        // of the lanes' features has its sign bit set iff every lane has
        // reached a leaf.
        const std::int32_t pending =
            f0 & f1 & f2 & f3 & f4 & f5 & f6 & f7;
        if (pending < 0) break;
      }
      acc[r - row_lo + 0] += scale * thr[n0];
      acc[r - row_lo + 1] += scale * thr[n1];
      acc[r - row_lo + 2] += scale * thr[n2];
      acc[r - row_lo + 3] += scale * thr[n3];
      acc[r - row_lo + 4] += scale * thr[n4];
      acc[r - row_lo + 5] += scale * thr[n5];
      acc[r - row_lo + 6] += scale * thr[n6];
      acc[r - row_lo + 7] += scale * thr[n7];
    }
    for (; r < row_hi; ++r) {
      const double* row = x + r * cols;
      std::int32_t n = root;
      std::int32_t f = root_feat;
      while (f >= 0) {
        n = left[n] + static_cast<std::int32_t>(!(row[f] <= thr[n]));
        f = feat[n];
      }
      acc[r - row_lo] += scale * thr[n];
    }
  }
}

/// Resolves the kernel for one predict call: the active SIMD level, with
/// the AVX2 kernel additionally gated on its 32-bit gather indices being
/// able to address the matrix (rows * cols elements).
struct KernelChoice {
  detail::AccumulateFn fn;
  SimdLevel level;
};

KernelChoice select_kernel(std::size_t rows, std::size_t cols) {
  switch (active_simd_level()) {
    case SimdLevel::kAvx2:
      if (auto* fn = detail::avx2_accumulate_kernel();
          fn != nullptr &&
          rows <= static_cast<std::size_t>(
                      std::numeric_limits<std::int32_t>::max()) /
                      (cols == 0 ? 1 : cols)) {
        return {fn, SimdLevel::kAvx2};
      }
      break;
    case SimdLevel::kNeon:
      if (auto* fn = detail::neon_accumulate_kernel(); fn != nullptr) {
        return {fn, SimdLevel::kNeon};
      }
      break;
    case SimdLevel::kScalar:
      break;
  }
  return {&accumulate_scalar, SimdLevel::kScalar};
}

}  // namespace

FlatForest FlatForest::compile(std::span<const RegressionTree> trees,
                               Output output, double per_tree_scale,
                               double base) {
  if (trees.empty()) {
    throw std::invalid_argument("FlatForest::compile: empty ensemble");
  }
  std::size_t total = 0;
  for (const auto& tree : trees) {
    if (!tree.fitted()) {
      throw std::invalid_argument("FlatForest::compile: unfitted tree");
    }
    total += tree.nodes().size();
  }
  if (total > static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::invalid_argument("FlatForest::compile: ensemble too large");
  }
  const auto& metrics = flat_metrics();
  obs::ScopedTimer timer(*metrics.compile_seconds);

  FlatForest out;
  out.output_ = output;
  out.per_tree_scale_ = per_tree_scale;
  out.base_ = base;
  out.inv_trees_ = 1.0 / static_cast<double>(trees.size());
  out.feat_.resize(total);
  out.thr_.resize(total);
  out.left_.resize(total);
  out.fl_.resize(total);
  out.roots_.reserve(trees.size());

  // Per tree: breadth-first renumbering with the two children of every
  // split allocated adjacently (right child = left child + 1, so no right_
  // array exists). The BFS pair queue doubles as the slot allocator.
  std::vector<std::pair<std::int32_t, std::int32_t>> queue;  // (src, dst)
  std::int32_t next = 0;
  for (const auto& tree : trees) {
    const auto& nodes = tree.nodes();
    out.roots_.push_back(next);
    queue.clear();
    queue.emplace_back(0, next++);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const auto [src, dst] = queue[head];
      const TreeNode& n = nodes[static_cast<std::size_t>(src)];
      if (n.feature < 0) {
        out.feat_[static_cast<std::size_t>(dst)] = -1;
        out.thr_[static_cast<std::size_t>(dst)] = n.value;
        out.left_[static_cast<std::size_t>(dst)] = dst;  // leaves self-loop
      } else {
        const std::int32_t l = next;
        next += 2;
        out.feat_[static_cast<std::size_t>(dst)] = n.feature;
        out.thr_[static_cast<std::size_t>(dst)] = n.threshold;
        out.left_[static_cast<std::size_t>(dst)] = l;
        queue.emplace_back(n.left, l);
        queue.emplace_back(n.right, l + 1);
      }
      out.fl_[static_cast<std::size_t>(dst)] =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
               out.left_[static_cast<std::size_t>(dst)]))
           << 32) |
          static_cast<std::uint32_t>(out.feat_[static_cast<std::size_t>(dst)]);
    }
  }
  metrics.compiles->inc();
  metrics.nodes->set(static_cast<double>(total));
  return out;
}

std::size_t FlatForest::bytes() const noexcept {
  return feat_.size() * sizeof(std::int32_t) + thr_.size() * sizeof(double) +
         left_.size() * sizeof(std::int32_t) +
         fl_.size() * sizeof(std::uint64_t) +
         roots_.size() * sizeof(std::int32_t);
}

void FlatForest::accumulate_range(const data::Matrix& X, std::size_t row_lo,
                                  std::size_t row_hi, std::size_t tree_lo,
                                  std::size_t tree_hi, double* acc) const {
  const detail::ForestView view{feat_.data(), thr_.data(), left_.data(),
                                fl_.data(),  roots_.data(), per_tree_scale_};
  const auto choice = select_kernel(X.rows(), X.cols());
  choice.fn(view, X.data().data(), X.cols(), row_lo, row_hi, tree_lo,
            tree_hi, acc);
}

void FlatForest::finish_range(const double* acc, std::span<double> out,
                              std::size_t lo, std::size_t hi) const {
  if (output_ == Output::kMeanClamp) {
    for (std::size_t r = lo; r < hi; ++r) {
      out[r] = std::clamp(acc[r - lo] * inv_trees_, 0.0, 1.0);
    }
  } else {
    for (std::size_t r = lo; r < hi; ++r) {
      out[r] = stable_sigmoid(acc[r - lo]);
    }
  }
}

void FlatForest::predict_into(const data::Matrix& X, std::span<double> out,
                              std::size_t threads) const {
  if (empty()) {
    throw std::logic_error("FlatForest: predict on an empty forest");
  }
  if (out.size() != X.rows()) {
    throw std::invalid_argument("FlatForest::predict_into: size mismatch");
  }
  const auto& metrics = flat_metrics();
  obs::ScopedTimer timer(*metrics.batch_seconds);
  metrics.simd_level->set(
      static_cast<double>(select_kernel(X.rows(), X.cols()).level));
  parallel_for_blocks(X.rows(), threads, [&](std::size_t lo, std::size_t hi) {
    double acc[kRowBlock];
    for (std::size_t block = lo; block < hi; block += kRowBlock) {
      const std::size_t block_hi = std::min(block + kRowBlock, hi);
      std::fill(acc, acc + (block_hi - block), base_);
      accumulate_range(X, block, block_hi, 0, roots_.size(), acc);
      finish_range(acc, out, block, block_hi);
    }
  });
  metrics.rows_scored->inc(X.rows());
}

std::vector<double> FlatForest::predict(const data::Matrix& X,
                                        std::size_t threads) const {
  std::vector<double> out(X.rows());
  predict_into(X, out, threads);
  return out;
}

void FlatForest::predict_tree_parallel_into(const data::Matrix& X,
                                            std::span<double> out,
                                            std::size_t threads) const {
  if (empty()) {
    throw std::logic_error("FlatForest: predict on an empty forest");
  }
  if (out.size() != X.rows()) {
    throw std::invalid_argument(
        "FlatForest::predict_tree_parallel_into: size mismatch");
  }
  threads = resolve_threads(threads);
  const std::size_t workers = std::min(threads, roots_.size());
  if (workers <= 1) {
    predict_into(X, out, 1);
    return;
  }
  const auto& metrics = flat_metrics();
  obs::ScopedTimer timer(*metrics.batch_seconds);
  const std::size_t n = X.rows();
  // Each worker owns a contiguous tree slice and a private accumulator;
  // partials combine in slice order afterwards, so a fixed thread count is
  // deterministic (but the regrouped additions are not bit-identical across
  // thread counts — see the header). The blocked kernel accumulates
  // straight into the zero-seeded partial vectors — no per-block scratch
  // buffer to re-zero and copy out of.
  std::vector<std::vector<double>> partial(workers,
                                           std::vector<double>(n, 0.0));
  parallel_for_blocks(workers, workers, [&](std::size_t wlo, std::size_t whi) {
    for (std::size_t w = wlo; w < whi; ++w) {
      const std::size_t tree_lo = w * roots_.size() / workers;
      const std::size_t tree_hi = (w + 1) * roots_.size() / workers;
      double* part = partial[w].data();
      for (std::size_t block = 0; block < n; block += kRowBlock) {
        const std::size_t block_hi = std::min(block + kRowBlock, n);
        accumulate_range(X, block, block_hi, tree_lo, tree_hi, part + block);
      }
    }
  });
  std::vector<double> total(n, base_);
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t r = 0; r < n; ++r) total[r] += partial[w][r];
  }
  finish_range(total.data(), out, 0, n);
  metrics.rows_scored->inc(n);
}

}  // namespace mfpa::ml
