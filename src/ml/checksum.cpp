#include "ml/checksum.hpp"

#include <cstdio>
#include <stdexcept>

namespace mfpa::ml {

std::string checksum_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf, 16);
}

std::uint64_t parse_checksum_hex(const std::string& hex) {
  if (hex.size() != 16) {
    throw std::runtime_error("checksum: expected 16 hex digits, got '" + hex +
                             "'");
  }
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error("checksum: bad hex digit in '" + hex + "'");
    }
  }
  return value;
}

}  // namespace mfpa::ml
