#include "ml/grid_search.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "ml/factory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mfpa::ml {

std::vector<Hyperparams> expand_grid(const ParamGrid& grid) {
  std::vector<Hyperparams> out{{}};
  for (const auto& [name, values] : grid) {
    if (values.empty()) {
      throw std::invalid_argument("expand_grid: empty value list for '" + name +
                                  "'");
    }
    std::vector<Hyperparams> next;
    next.reserve(out.size() * values.size());
    for (const auto& partial : out) {
      for (double v : values) {
        Hyperparams p = partial;
        p[name] = v;
        next.push_back(std::move(p));
      }
    }
    out = std::move(next);
  }
  return out;
}

GridSearchResult grid_search(const std::string& algorithm,
                             const Hyperparams& base, const ParamGrid& grid,
                             const data::Matrix& X, const std::vector<int>& y,
                             const std::vector<Split>& splits, CvMetric metric,
                             std::size_t threads) {
  obs::ScopedSpan span("train.grid_search");
  const auto points = expand_grid(grid);
  std::vector<Hyperparams> param_sets(points.size());
  std::vector<double> scores(points.size(), -1.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    param_sets[i] = base;
    for (const auto& [k, v] : points[i]) param_sets[i][k] = v;
  }

  // Bin each training fold once and share it across the whole sweep — valid
  // whenever every grid point trains a histogram-path ensemble with one bin
  // geometry (i.e. the sweep itself does not vary the binning parameters).
  const bool tree_ensemble = algorithm == "RF" || algorithm == "GBDT";
  const bool sweeps_binning =
      grid.count("split_method") != 0 || grid.count("max_bins") != 0;
  const bool share_bins = tree_ensemble && !sweeps_binning &&
                          param_or(base, "split_method", 1) != 0;
  const std::size_t max_bins = static_cast<std::size_t>(
      std::clamp(param_or(base, "max_bins", 255.0), 2.0, 255.0));
  const CvCache cache = build_cv_cache(X, y, splits, share_bins, max_bins);

  // Resolve instruments once; evaluate() runs on the worker pool and only
  // touches the lock-free handles.
  auto& reg = obs::registry();
  auto& grid_points = reg.counter("mfpa_train_grid_points_total");
  auto& point_seconds =
      reg.histogram("mfpa_train_grid_point_seconds", 0.0, 600.0, 256);
  auto evaluate = [&](std::size_t i) {
    obs::ScopedTimer point_timer(point_seconds);
    grid_points.inc();
    const auto model = make_classifier(algorithm, param_sets[i]);
    scores[i] = cross_val_score(*model, cache, metric);
  };
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads <= 1 || points.size() <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) evaluate(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    const std::size_t workers = std::min(threads, points.size());
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < param_sets.size();
             i = next.fetch_add(1)) {
          evaluate(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  GridSearchResult result;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.all.emplace_back(param_sets[i], scores[i]);
    if (scores[i] > result.best_score) {
      result.best_score = scores[i];
      result.best_params = param_sets[i];
    }
  }
  return result;
}

}  // namespace mfpa::ml
