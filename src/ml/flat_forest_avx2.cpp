// AVX2 build of the FlatForest descend kernel (see flat_forest_kernels.hpp
// for the contract). This translation unit is compiled with -mavx2 (and
// -ffp-contract=off, so the separate multiply/add of leaf accumulation can
// never be fused into an FMA that would break bit-identity); nothing in it
// is reachable unless the runtime cpuid probe in ml/simd.cpp reported AVX2.
//
// Lane mapping: FOUR rows per 64-bit-lane group, not eight per 32-bit
// lane. The whole lane state — node index, and the node's packed
// (feat, left) pair from fl_ — lives in 64-bit lanes, which makes every
// descend level exactly three gathers and a handful of cheap ALU ops:
//
//   keep = (pair << 32) <s 0            leaf mask from feat's sign bit
//   xv   = i64gather_pd(x, rowoff + feat)        the lanes' split values
//   th   = i64gather_pd(thr, n)
//   le   = cmp_pd(xv, th, LE_OQ)        NaN lanes false -> right child
//   n    = blend(( pair >> 32 ) + 1 + le, n, keep)
//   pair = i64gather_epi64(fl, n)
//
// This shape is load-budget driven: the descend is bound on its loads
// (x, thr, node metadata, every level). The packed pair fetches feature
// and child base as ONE 8-byte lane — 3 loads per row per level versus
// the scalar kernel's 4 — and the 64-bit layout needs none of the
// dword-narrowing shuffles an 8-lane formulation pays for its masks and
// unpacking (they were the port-5 bottleneck of that variant). The
// compare itself is the vector transcription of the scalar kernel's
// `!(x <= thr)` step, so predictions stay bit-identical.
//
// Six groups (24 rows) run interleaved so six independent gather chains
// are in flight per level — a single chain is latency-bound on its
// dependent gather sequence. Groups retire individually: with deep trees,
// adjacent 4-row groups finish at very different levels, and a finished
// group stepping along to the slowest one would burn its gathers on
// self-looping lanes.
#include "ml/flat_forest_kernels.hpp"

#if defined(__AVX2__) && !defined(MFPA_FORCE_SCALAR)

#include <immintrin.h>

namespace mfpa::ml::detail {
namespace {

/// Lane state of one 4-row group: node indices, the nodes' packed
/// (feat, left) pairs, and the element offsets of the four rows.
struct LaneGroup {
  __m256i n;
  __m256i p;
  __m256i rowoff;
};

inline LaneGroup make_group(std::int64_t root, std::uint64_t root_pair,
                            std::int64_t base, std::int64_t icols) noexcept {
  LaneGroup g;
  g.n = _mm256_set1_epi64x(root);
  g.p = _mm256_set1_epi64x(static_cast<long long>(root_pair));
  g.rowoff = _mm256_add_epi64(
      _mm256_set1_epi64x(base),
      _mm256_setr_epi64x(0, icols, 2 * icols, 3 * icols));
  return g;
}

/// True when every lane of the group sits on a leaf: the pair's feat dword
/// is negative, i.e. bit 31 of the lane — bit 63 after the shift.
inline bool all_leaves(const LaneGroup& g) noexcept {
  return _mm256_movemask_pd(
             _mm256_castsi256_pd(_mm256_slli_epi64(g.p, 32))) == 0xF;
}

/// One descend level for one group. Leaf lanes clamp their gather index to
/// 0 and keep their node via the blend — the discarded compare on whatever
/// thr[n] holds (the leaf value) mirrors the scalar kernel.
inline void step(LaneGroup& g, const double* x, const std::uint64_t* fl,
                 const double* thr) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(-1);
  // feat sign bit -> full-lane leaf mask (no 64-bit arithmetic shift in
  // AVX2; shift feat's dword up and compare against zero instead).
  const __m256i keep = _mm256_cmpgt_epi64(zero, _mm256_slli_epi64(g.p, 32));
  // Live lanes: low dword is feat >= 0 (high bits cleared by the mask);
  // leaf lanes: clamped to 0.
  const __m256i idx = _mm256_andnot_si256(
      keep, _mm256_and_si256(g.p, _mm256_set1_epi64x(0x7fffffff)));
  const __m256i off = _mm256_add_epi64(g.rowoff, idx);
  const __m256d xv =
      _mm256_mask_i64gather_pd(_mm256_setzero_pd(), x, off,
                               _mm256_castsi256_pd(ones), 8);
  const __m256d th =
      _mm256_mask_i64gather_pd(_mm256_setzero_pd(), thr, g.n,
                               _mm256_castsi256_pd(ones), 8);
  // Ordered <=: NaN lanes produce zero (false) and descend right.
  const __m256i le = _mm256_castpd_si256(_mm256_cmp_pd(xv, th, _CMP_LE_OQ));
  // next = left + (le ? 0 : 1) — left is the pair's high dword; adding the
  // -1/0 mask plus one turns the compare into the child select.
  const __m256i next = _mm256_add_epi64(
      _mm256_srli_epi64(g.p, 32),
      _mm256_add_epi64(_mm256_and_si256(ones, le), _mm256_set1_epi64x(1)));
  // keep is all-ones or all-zero per lane, so the byte blend is lane-exact:
  // leaf lanes self-loop, live lanes advance.
  g.n = _mm256_blendv_epi8(next, g.n, keep);
  // One 8-byte lane hands back the new node's feature and left child.
  g.p = _mm256_mask_i64gather_epi64(
      zero, reinterpret_cast<const long long*>(fl), g.n, ones, 8);
}

/// acc[0..3] += scale * thr[n lanes] — separate mul and add, never an FMA.
inline void deposit(const LaneGroup& g, const double* thr, double scale,
                    double* acc) noexcept {
  const __m256d leaf = _mm256_mask_i64gather_pd(
      _mm256_setzero_pd(), thr, g.n,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
  _mm256_storeu_pd(
      acc, _mm256_add_pd(_mm256_loadu_pd(acc),
                         _mm256_mul_pd(_mm256_set1_pd(scale), leaf)));
}

void accumulate_avx2(const ForestView& forest, const double* x,
                     std::size_t cols, std::size_t row_lo, std::size_t row_hi,
                     std::size_t tree_lo, std::size_t tree_hi, double* acc) {
  const std::int32_t* feat = forest.feat;
  const double* thr = forest.thr;
  const std::int32_t* left = forest.left;
  const std::uint64_t* fl = forest.fl;
  const double scale = forest.scale;
  const std::int64_t icols = static_cast<std::int64_t>(cols);
  for (std::size_t t = tree_lo; t < tree_hi; ++t) {
    const std::int32_t root = forest.roots[t];
    const std::uint64_t root_pair = fl[root];
    std::size_t r = row_lo;
    if (feat[root] < 0) {
      // Single-node tree: zero descends, every row takes the root leaf.
      for (; r < row_hi; ++r) acc[r - row_lo] += scale * thr[root];
      continue;
    }
    // Six interleaved 4-lane groups (24 rows); see the file comment for
    // why this interleave depth and the individual retirement.
    for (; r + 24 <= row_hi; r += 24) {
      const std::int64_t base = static_cast<std::int64_t>(r) * icols;
      LaneGroup g0 = make_group(root, root_pair, base, icols);
      LaneGroup g1 = make_group(root, root_pair, base + 4 * icols, icols);
      LaneGroup g2 = make_group(root, root_pair, base + 8 * icols, icols);
      LaneGroup g3 = make_group(root, root_pair, base + 12 * icols, icols);
      LaneGroup g4 = make_group(root, root_pair, base + 16 * icols, icols);
      LaneGroup g5 = make_group(root, root_pair, base + 20 * icols, icols);
      unsigned live = 0x3F;
      do {
        if (live & 0x01) {
          step(g0, x, fl, thr);
          if (all_leaves(g0)) live &= ~0x01u;
        }
        if (live & 0x02) {
          step(g1, x, fl, thr);
          if (all_leaves(g1)) live &= ~0x02u;
        }
        if (live & 0x04) {
          step(g2, x, fl, thr);
          if (all_leaves(g2)) live &= ~0x04u;
        }
        if (live & 0x08) {
          step(g3, x, fl, thr);
          if (all_leaves(g3)) live &= ~0x08u;
        }
        if (live & 0x10) {
          step(g4, x, fl, thr);
          if (all_leaves(g4)) live &= ~0x10u;
        }
        if (live & 0x20) {
          step(g5, x, fl, thr);
          if (all_leaves(g5)) live &= ~0x20u;
        }
      } while (live);
      deposit(g0, thr, scale, acc + (r - row_lo));
      deposit(g1, thr, scale, acc + (r - row_lo) + 4);
      deposit(g2, thr, scale, acc + (r - row_lo) + 8);
      deposit(g3, thr, scale, acc + (r - row_lo) + 12);
      deposit(g4, thr, scale, acc + (r - row_lo) + 16);
      deposit(g5, thr, scale, acc + (r - row_lo) + 20);
    }
    for (; r + 4 <= row_hi; r += 4) {
      const std::int64_t base = static_cast<std::int64_t>(r) * icols;
      LaneGroup g = make_group(root, root_pair, base, icols);
      while (!all_leaves(g)) step(g, x, fl, thr);
      deposit(g, thr, scale, acc + (r - row_lo));
    }
    for (; r < row_hi; ++r) {
      const double* row = x + r * cols;
      std::int32_t n = root;
      std::int32_t f = feat[root];
      while (f >= 0) {
        n = left[n] + static_cast<std::int32_t>(!(row[f] <= thr[n]));
        f = feat[n];
      }
      acc[r - row_lo] += scale * thr[n];
    }
  }
}

}  // namespace

AccumulateFn avx2_accumulate_kernel() noexcept { return &accumulate_avx2; }

}  // namespace mfpa::ml::detail

#else  // !__AVX2__ || MFPA_FORCE_SCALAR

namespace mfpa::ml::detail {

AccumulateFn avx2_accumulate_kernel() noexcept { return nullptr; }

}  // namespace mfpa::ml::detail

#endif
