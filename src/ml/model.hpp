// Classifier abstraction shared by every learning algorithm in the library.
//
// All models are binary classifiers over dense double features; fit() learns
// from a Matrix + 0/1 labels, predict_proba() returns P(y = 1) per row.
// Hyperparameters travel as a name -> double map so grid search and the
// model factory can stay algorithm-agnostic.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/matrix.hpp"

namespace mfpa::ml {

using data::Matrix;

/// Flat hyperparameter bundle (all values numeric; booleans as 0/1).
using Hyperparams = std::map<std::string, double>;

/// Reads a hyperparameter with a default.
double param_or(const Hyperparams& params, const std::string& key,
                double fallback);

/// Abstract binary classifier.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on X (n x d) with labels y in {0,1} (size n).
  /// Throws std::invalid_argument on shape/label violations.
  virtual void fit(const Matrix& X, const std::vector<int>& y) = 0;

  /// P(y=1) per row; requires a prior successful fit().
  virtual std::vector<double> predict_proba(const Matrix& X) const = 0;

  /// Hard labels at a probability threshold.
  std::vector<int> predict(const Matrix& X, double threshold = 0.5) const;

  /// Algorithm name ("RF", "GBDT", ...).
  virtual std::string name() const = 0;

  /// Fresh, unfitted copy with identical hyperparameters (for CV folds).
  virtual std::unique_ptr<Classifier> clone_unfitted() const = 0;

  /// Construction-time hyperparameters (serialized alongside the state).
  virtual const Hyperparams& hyperparams() const = 0;

  /// Writes the learned state (serialize.hpp framing handles the header).
  /// Requires a prior successful fit(); throws std::logic_error otherwise.
  virtual void save_state(std::ostream& os) const = 0;

  /// Restores state written by save_state on a model constructed with the
  /// same hyperparameters. Throws std::runtime_error on malformed input.
  virtual void load_state(std::istream& is) = 0;

 protected:
  /// Shared precondition checks for fit().
  static void validate_fit_args(const Matrix& X, const std::vector<int>& y);
};

}  // namespace mfpa::ml
