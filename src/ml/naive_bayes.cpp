#include "ml/naive_bayes.hpp"

#include "ml/serialize.hpp"

#include <istream>
#include <ostream>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mfpa::ml {

GaussianNB::GaussianNB(Hyperparams params)
    : params_(std::move(params)),
      var_smoothing_(param_or(params_, "var_smoothing", 1e-9)) {}

void GaussianNB::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  const std::size_t d = X.cols();
  std::size_t count[2] = {0, 0};
  for (int label : y) ++count[label];
  if (count[0] == 0 || count[1] == 0) {
    throw std::invalid_argument("GaussianNB: need both classes in training data");
  }
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(d, 0.0);
    var_[c].assign(d, 0.0);
    log_prior_[c] = std::log(static_cast<double>(count[c]) /
                             static_cast<double>(y.size()));
  }
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    auto& m = mean_[y[r]];
    for (std::size_t c = 0; c < d; ++c) m[c] += row[c];
  }
  for (int c = 0; c < 2; ++c) {
    for (auto& m : mean_[c]) m /= static_cast<double>(count[c]);
  }
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    auto& m = mean_[y[r]];
    auto& v = var_[y[r]];
    for (std::size_t c = 0; c < d; ++c) {
      const double delta = row[c] - m[c];
      v[c] += delta * delta;
    }
  }
  double max_var = 0.0;
  for (int c = 0; c < 2; ++c) {
    for (auto& v : var_[c]) {
      v /= static_cast<double>(count[c]);
      max_var = std::max(max_var, v);
    }
  }
  const double eps = var_smoothing_ * std::max(max_var, 1e-12);
  for (int c = 0; c < 2; ++c) {
    for (auto& v : var_[c]) v += eps;
  }
  fitted_ = true;
}

std::vector<double> GaussianNB::predict_proba(const Matrix& X) const {
  if (!fitted_) throw std::logic_error("GaussianNB: predict before fit");
  if (X.cols() != mean_[0].size()) {
    throw std::invalid_argument("GaussianNB: feature-count mismatch");
  }
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    double log_like[2];
    for (int c = 0; c < 2; ++c) {
      double ll = log_prior_[c];
      for (std::size_t f = 0; f < row.size(); ++f) {
        const double v = var_[c][f];
        const double delta = row[f] - mean_[c][f];
        ll += -0.5 * std::log(2.0 * M_PI * v) - delta * delta / (2.0 * v);
      }
      log_like[c] = ll;
    }
    // Stable softmax over two classes.
    const double m = std::max(log_like[0], log_like[1]);
    const double e0 = std::exp(log_like[0] - m);
    const double e1 = std::exp(log_like[1] - m);
    out[r] = e1 / (e0 + e1);
  }
  return out;
}

std::unique_ptr<Classifier> GaussianNB::clone_unfitted() const {
  return std::make_unique<GaussianNB>(params_);
}

void GaussianNB::save_state(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("GaussianNB: save before fit");
  io::write_vector(os, "log_prior", log_prior_);
  io::write_vector(os, "mean0", mean_[0]);
  io::write_vector(os, "mean1", mean_[1]);
  io::write_vector(os, "var0", var_[0]);
  io::write_vector(os, "var1", var_[1]);
}

void GaussianNB::load_state(std::istream& is) {
  const auto prior = io::read_vector(is, "log_prior");
  if (prior.size() != 2) throw std::runtime_error("GaussianNB: bad prior");
  log_prior_[0] = prior[0];
  log_prior_[1] = prior[1];
  mean_[0] = io::read_vector(is, "mean0");
  mean_[1] = io::read_vector(is, "mean1");
  var_[0] = io::read_vector(is, "var0");
  var_[1] = io::read_vector(is, "var1");
  if (mean_[0].size() != var_[0].size() || mean_[1].size() != var_[1].size() ||
      mean_[0].size() != mean_[1].size()) {
    throw std::runtime_error("GaussianNB: inconsistent state sizes");
  }
  fitted_ = true;
}

}  // namespace mfpa::ml
