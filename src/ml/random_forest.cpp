#include "ml/random_forest.hpp"

#include "ml/parallel_for.hpp"
#include "ml/quantized_forest.hpp"
#include "ml/serialize.hpp"

#include <istream>
#include <ostream>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "data/binned_matrix.hpp"

namespace mfpa::ml {

RandomForestClassifier::RandomForestClassifier(Hyperparams params)
    : params_(std::move(params)) {}

void RandomForestClassifier::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  flat_.reset();  // compiled forms derive from the trees being replaced
  quant_.reset();
  const std::size_t n_trees =
      static_cast<std::size_t>(param_or(params_, "n_trees", 60));
  const bool bootstrap = param_or(params_, "bootstrap", 1) != 0;
  const auto seed = static_cast<std::uint64_t>(param_or(params_, "seed", 1));
  const std::size_t threads = resolve_threads(
      static_cast<std::size_t>(param_or(params_, "threads", 1)));

  TreeParams tp;
  tp.max_depth = static_cast<int>(param_or(params_, "max_depth", 14));
  tp.min_samples_split =
      static_cast<std::size_t>(param_or(params_, "min_samples_split", 2));
  tp.min_samples_leaf =
      static_cast<std::size_t>(param_or(params_, "min_samples_leaf", 1));
  tp.max_features = static_cast<int>(param_or(params_, "max_features", 0));
  tp.split_method = param_or(params_, "split_method", 1) != 0
                        ? SplitMethod::kHist
                        : SplitMethod::kExact;
  tp.max_bins = static_cast<std::size_t>(
      std::clamp(param_or(params_, "max_bins", 255.0), 2.0, 255.0));

  const std::size_t n = X.rows();
  n_features_ = X.cols();
  std::vector<double> targets(y.begin(), y.end());
  trees_.assign(n_trees, RegressionTree(tp));

  // Bin once, share across every tree (and across fits, via shared bins).
  std::shared_ptr<const data::BinnedMatrix> bins;
  if (tp.split_method == SplitMethod::kHist) {
    if (shared_bins_ && shared_bins_->rows() == X.rows() &&
        shared_bins_->cols() == X.cols()) {
      bins = shared_bins_;
    } else {
      bins = std::make_shared<data::BinnedMatrix>(X, tp.max_bins);
    }
  }

  const Rng base(seed);
  auto fit_tree = [&](std::size_t t) {
    Rng rng = base.split(t + 1);
    std::vector<std::size_t> rows(n);
    if (bootstrap) {
      for (auto& r : rows) {
        r = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      }
    } else {
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }
    if (bins) {
      trees_[t].fit(*bins, targets, {}, rows, rng);
    } else {
      trees_[t].fit(X, targets, {}, rows, rng);
    }
  };

  if (threads <= 1 || n_trees <= 1) {
    for (std::size_t t = 0; t < n_trees; ++t) fit_tree(t);
  } else {
    std::vector<std::thread> pool;
    std::atomic<std::size_t> next{0};
    const std::size_t workers = std::min(threads, n_trees);
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t t = next.fetch_add(1); t < n_trees;
             t = next.fetch_add(1)) {
          fit_tree(t);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
}

std::vector<double> RandomForestClassifier::predict_proba(const Matrix& X) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForestClassifier: predict before fit");
  }
  const std::size_t threads =
      static_cast<std::size_t>(param_or(params_, "threads", 1));
  if (quant_) {
    // Quantized path: bit-identical to the loop below because the cuts come
    // from the forest's own thresholds (see ml/quantized_forest.hpp).
    std::vector<double> out(X.rows());
    quant_->predict_into(X, out, threads);
    return out;
  }
  if (flat_) {
    // Compiled path: bit-identical to the loop below (see flat_forest.hpp).
    std::vector<double> out(X.rows());
    flat_->predict_into(X, out, threads);
    return out;
  }
  std::vector<double> out(X.rows(), 0.0);
  const double inv = 1.0 / static_cast<double>(trees_.size());
  // Row-parallel, tree-order summation per row: the per-row result is a sum
  // in a fixed order regardless of thread count.
  parallel_for_blocks(X.rows(), threads, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const auto row = X.row(r);
      double acc = 0.0;
      for (const auto& tree : trees_) acc += tree.predict_row(row);
      out[r] = std::clamp(acc * inv, 0.0, 1.0);
    }
  });
  return out;
}

std::unique_ptr<Classifier> RandomForestClassifier::clone_unfitted() const {
  return std::make_unique<RandomForestClassifier>(params_);
}

void RandomForestClassifier::save_state(std::ostream& os) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForestClassifier: save before fit");
  }
  os << "forest " << trees_.size() << ' ' << n_features_ << '\n';
  for (const auto& tree : trees_) tree.save(os);
}

void RandomForestClassifier::load_state(std::istream& is) {
  io::expect_token(is, "forest");
  std::size_t count = 0;
  if (!(is >> count >> n_features_) || count == 0 || count > 100000) {
    throw std::runtime_error("RandomForestClassifier: bad forest header");
  }
  flat_.reset();
  quant_.reset();
  trees_.assign(count, RegressionTree{});
  for (auto& tree : trees_) tree.load(is);
}

bool RandomForestClassifier::compile() {
  if (trees_.empty()) return false;
  flat_ = std::make_shared<const FlatForest>(FlatForest::compile(
      trees_, FlatForest::Output::kMeanClamp, 1.0, 0.0));
  return true;
}

bool RandomForestClassifier::compile_quantized() {
  if (trees_.empty()) return false;
  try {
    quant_ = std::make_shared<const QuantizedForest>(QuantizedForest::compile(
        trees_, FlatForest::Output::kMeanClamp, 1.0, 0.0));
  } catch (const std::invalid_argument&) {
    return false;  // >255 distinct thresholds on some feature (exact splits)
  }
  return true;
}

std::vector<double> RandomForestClassifier::feature_importance() const {
  std::vector<double> out(n_features_, 0.0);
  for (const auto& tree : trees_) tree.accumulate_importance(out);
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : out) v /= total;
  }
  return out;
}

}  // namespace mfpa::ml
