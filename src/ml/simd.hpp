// Runtime SIMD capability detection and kernel selection for the compiled
// inference paths (ml/flat_forest).
//
// The FlatForest blocked kernel exists in three builds of the same
// algorithm: portable scalar (always present, the reference), AVX2 (x86-64,
// compiled in a dedicated -mavx2 translation unit and only ever called
// after a cpuid probe), and NEON (aarch64, where the ISA is baseline). All
// three execute the identical operation sequence per row — same descend
// predicate, same tree-order additions — so they are bit-identical and the
// parity suites gate every one of them against the node-pointer path.
//
// Selection: `active_simd_level()` = the strongest kernel the CPU supports,
// clamped by an optional process-wide override (`--simd=scalar|avx2|neon`
// on the CLI, set_simd_override() in tests and benchmarks). Requesting a
// level the hardware lacks silently degrades to the best available one —
// the CLI prints the resolved level so an operator can see what actually
// ran. Building with -DMFPA_FORCE_SCALAR=ON removes the vector kernels from
// the dispatch entirely (the CI fallback leg).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace mfpa::ml {

/// Kernel instruction-set tiers, ordered weakest first.
enum class SimdLevel : int {
  kScalar = 0,  ///< portable 8-row lockstep kernel (reference)
  kNeon = 1,    ///< aarch64 NEON build of the same kernel
  kAvx2 = 2,    ///< x86-64 AVX2 gather/blend build
};

/// Strongest level this process can execute (cpuid probe on x86, compile
/// target on aarch64). Constant for the process lifetime; cheap to call.
SimdLevel detected_simd_level() noexcept;

/// Process-wide override: clamp dispatch to `level` (nullopt restores
/// auto-detection). Levels above detected_simd_level() degrade to it.
void set_simd_override(std::optional<SimdLevel> level) noexcept;
std::optional<SimdLevel> simd_override() noexcept;

/// The level the next kernel dispatch will use: the override (if any)
/// clamped to what the hardware supports.
SimdLevel active_simd_level() noexcept;

/// "scalar" / "neon" / "avx2".
std::string_view to_string(SimdLevel level) noexcept;

/// Parses a --simd flag value: "auto" clears the override (returns true
/// with `level` = nullopt); "scalar"/"neon"/"avx2" set it. Returns false on
/// anything else.
bool parse_simd_level(std::string_view text,
                      std::optional<SimdLevel>& level) noexcept;

}  // namespace mfpa::ml
