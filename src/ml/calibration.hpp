// Probability calibration. Tree-ensemble vote fractions are good rankers
// but biased probabilities; when the decision threshold prices migrations
// (see core/cost_model.hpp) the probabilities themselves should be
// trustworthy. IsotonicCalibrator learns the classic monotone mapping
// (pool-adjacent-violators) from raw scores to calibrated probabilities on
// held-out data.
#pragma once

#include <span>
#include <vector>

namespace mfpa::ml {

/// Monotone (non-decreasing) score -> probability mapping fit by PAV.
class IsotonicCalibrator {
 public:
  /// Fits on (score, label) pairs; requires at least 2 samples and both
  /// classes present (throws std::invalid_argument otherwise).
  void fit(std::span<const double> scores, std::span<const int> labels);

  bool fitted() const noexcept { return !thresholds_.empty(); }

  /// Calibrated probability for one raw score (piecewise-constant with
  /// linear interpolation between block centers; clamped at the ends).
  double transform_one(double score) const;

  /// Batch transform.
  std::vector<double> transform(std::span<const double> scores) const;

  /// Number of monotone blocks the PAV fit produced.
  std::size_t block_count() const noexcept { return thresholds_.size(); }

 private:
  // Block representation: ascending score centers with their calibrated
  // probabilities (non-decreasing by construction).
  std::vector<double> thresholds_;
  std::vector<double> values_;
};

/// Reliability-curve bin for calibration diagnostics.
struct ReliabilityBin {
  double mean_score = 0.0;     ///< average predicted probability in the bin
  double observed_rate = 0.0;  ///< empirical positive fraction
  std::size_t count = 0;
};

/// Equal-width reliability curve over [0, 1].
std::vector<ReliabilityBin> reliability_curve(std::span<const double> scores,
                                              std::span<const int> labels,
                                              std::size_t bins = 10);

}  // namespace mfpa::ml
