// Random forest classifier — the paper's best-performing algorithm for MFPA
// (98.18% TPR / 0.56% FPR with the SFWB feature group).
#pragma once

#include "ml/binned_support.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flat_forest.hpp"
#include "ml/model.hpp"

#include <memory>
#include <vector>

namespace mfpa::ml {

/// Bagged ensemble of Newton trees with per-split feature subsampling.
/// Hyperparams: "n_trees" (60), "max_depth" (14), "min_samples_leaf" (1),
/// "max_features" (0 = sqrt), "bootstrap" (1), "seed" (1), "threads" (1;
/// 0 = hardware, used for both fit and predict_proba), "split_method"
/// (0 = exact, 1 = hist; default 1), "max_bins" (255). With the hist path
/// the feature matrix is binned once per fit and shared by every tree.
/// After compile(), predict_proba serves bit-identical probabilities from
/// the flattened ensemble (see ml/flat_forest.hpp).
class RandomForestClassifier final : public Classifier,
                                     public BinnedFitSupport,
                                     public CompiledInference {
 public:
  explicit RandomForestClassifier(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "RF"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  std::size_t tree_count() const noexcept { return trees_.size(); }
  const std::vector<RegressionTree>& trees() const noexcept { return trees_; }

  /// Gain-weighted feature importance, normalized to sum 1 (all zeros if the
  /// forest never split).
  std::vector<double> feature_importance() const;

  /// BinnedFitSupport: reuse a precomputed binning of the next fit matrix.
  void set_shared_bins(
      std::shared_ptr<const data::BinnedMatrix> bins) override {
    shared_bins_ = std::move(bins);
  }

  /// CompiledInference: flatten the fitted forest; fit()/load_state()
  /// invalidate the compiled forms.
  bool compile() override;
  const FlatForest* flat() const noexcept override { return flat_.get(); }

  /// CompiledInference: quantize the fitted forest against its own
  /// thresholds (bit-identical; see ml/quantized_forest.hpp). Returns false
  /// when unfitted or some feature exceeds 255 distinct thresholds (only
  /// possible for exact-split training). predict_proba prefers this path.
  bool compile_quantized() override;
  const QuantizedForest* quantized() const noexcept override {
    return quant_.get();
  }

 private:
  Hyperparams params_;
  std::vector<RegressionTree> trees_;
  std::size_t n_features_ = 0;
  std::shared_ptr<const data::BinnedMatrix> shared_bins_;
  std::shared_ptr<const FlatForest> flat_;
  std::shared_ptr<const QuantizedForest> quant_;
};

}  // namespace mfpa::ml
