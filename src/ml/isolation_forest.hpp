// Isolation forest (Liu, Ting & Zhou, 2008) — an *unsupervised* anomaly
// scorer. Included as the no-labels baseline: CSS failure labels come from
// manually mined trouble tickets (expensive and delayed), so "how far can
// you get without them?" is the natural ablation of MFPA's supervised
// pipeline.
//
// Implements the Classifier interface for harness compatibility, but fit()
// ignores the labels entirely; predict_proba() returns the standard
// isolation anomaly score s = 2^(-E[h]/c(n)) in (0, 1), where higher means
// more isolated (more anomalous).
#pragma once

#include "ml/model.hpp"

#include <vector>

namespace mfpa::ml {

/// Hyperparams: "n_trees" (100), "subsample" (256), "seed" (1).
class IsolationForest final : public Classifier {
 public:
  explicit IsolationForest(Hyperparams params = {});

  /// Trains on X only; `y` is accepted (interface) but not used.
  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "IForest"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Average path length of an unsuccessful BST search among n points —
  /// the normalization constant c(n) of the isolation score.
  static double average_path_length(std::size_t n) noexcept;

 private:
  struct Node {
    int feature = -1;     ///< -1 marks a leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::size_t size = 0; ///< points isolated into this leaf
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  Hyperparams params_;
  std::vector<Tree> trees_;
  double c_norm_ = 1.0;  ///< c(subsample)

  double path_length(const Tree& tree, std::span<const double> row) const;
};

}  // namespace mfpa::ml
