#include "ml/logistic.hpp"

#include "ml/serialize.hpp"

#include <istream>
#include <ostream>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace mfpa::ml {
namespace {

double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression::LogisticRegression(Hyperparams params)
    : params_(std::move(params)) {}

void LogisticRegression::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  const double lr0 = param_or(params_, "lr", 0.1);
  const int epochs = static_cast<int>(param_or(params_, "epochs", 40));
  const std::size_t batch =
      static_cast<std::size_t>(param_or(params_, "batch", 64));
  const double l2 = param_or(params_, "l2", 1e-4);
  Rng rng(static_cast<std::uint64_t>(param_or(params_, "seed", 1)));

  const Matrix Xs = scaler_.fit_transform(X);
  const std::size_t n = Xs.rows();
  const std::size_t d = Xs.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;
  std::vector<double> vw(d, 0.0);
  double vb = 0.0;
  constexpr double kMomentum = 0.9;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    const double lr = lr0 / (1.0 + 0.05 * epoch);
    const auto order = rng.permutation(n);
    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t stop = std::min(start + batch, n);
      std::vector<double> gw(d, 0.0);
      double gb = 0.0;
      for (std::size_t k = start; k < stop; ++k) {
        const auto row = Xs.row(order[k]);
        double z = b_;
        for (std::size_t f = 0; f < d; ++f) z += w_[f] * row[f];
        const double err = sigmoid(z) - static_cast<double>(y[order[k]]);
        for (std::size_t f = 0; f < d; ++f) gw[f] += err * row[f];
        gb += err;
      }
      const double scale = 1.0 / static_cast<double>(stop - start);
      for (std::size_t f = 0; f < d; ++f) {
        const double g = gw[f] * scale + l2 * w_[f];
        vw[f] = kMomentum * vw[f] - lr * g;
        w_[f] += vw[f];
      }
      vb = kMomentum * vb - lr * gb * scale;
      b_ += vb;
    }
  }
  fitted_ = true;
}

std::vector<double> LogisticRegression::predict_proba(const Matrix& X) const {
  if (!fitted_) throw std::logic_error("LogisticRegression: predict before fit");
  const Matrix Xs = scaler_.transform(X);
  std::vector<double> out(Xs.rows());
  for (std::size_t r = 0; r < Xs.rows(); ++r) {
    const auto row = Xs.row(r);
    double z = b_;
    for (std::size_t f = 0; f < row.size(); ++f) z += w_[f] * row[f];
    out[r] = sigmoid(z);
  }
  return out;
}

std::unique_ptr<Classifier> LogisticRegression::clone_unfitted() const {
  return std::make_unique<LogisticRegression>(params_);
}

void LogisticRegression::save_state(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("LogisticRegression: save before fit");
  io::write_vector(os, "scaler_mean", scaler_.means());
  io::write_vector(os, "scaler_std", scaler_.stddevs());
  io::write_vector(os, "w", w_);
  io::write_vector(os, "b", std::vector<double>{b_});
}

void LogisticRegression::load_state(std::istream& is) {
  auto means = io::read_vector(is, "scaler_mean");
  auto stds = io::read_vector(is, "scaler_std");
  scaler_.set_state(std::move(means), std::move(stds));
  w_ = io::read_vector(is, "w");
  const auto b = io::read_vector(is, "b");
  if (b.size() != 1 || w_.size() != scaler_.means().size()) {
    throw std::runtime_error("LogisticRegression: inconsistent state");
  }
  b_ = b[0];
  fitted_ = true;
}

}  // namespace mfpa::ml
