// L2-regularized logistic regression trained by mini-batch SGD with
// momentum. Used as a calibrated linear baseline and by prior-work proxies.
// Standardizes features internally (linear models need it; callers can pass
// raw features).
#pragma once

#include "data/scaler.hpp"
#include "ml/model.hpp"

#include <vector>

namespace mfpa::ml {

/// Hyperparams: "lr" (0.1), "epochs" (40), "batch" (64), "l2" (1e-4),
/// "seed" (1).
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "LR"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  const std::vector<double>& weights() const noexcept { return w_; }
  double bias() const noexcept { return b_; }

 private:
  Hyperparams params_;
  data::StandardScaler scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace mfpa::ml
