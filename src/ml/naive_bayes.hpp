// Gaussian naive Bayes — the "Bayes" entry of the paper's algorithm
// portability study (Fig. 10/14).
#pragma once

#include "ml/model.hpp"

#include <vector>

namespace mfpa::ml {

/// Gaussian NB with per-class feature means/variances and variance smoothing
/// (sklearn-style: var += epsilon * max feature variance).
class GaussianNB final : public Classifier {
 public:
  /// Hyperparams: "var_smoothing" (default 1e-9).
  explicit GaussianNB(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "Bayes"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  Hyperparams params_;
  double var_smoothing_;
  // Learned state.
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
  bool fitted_ = false;
};

}  // namespace mfpa::ml
