#include "ml/decision_tree.hpp"

#include "data/binned_matrix.hpp"
#include "ml/serialize.hpp"
#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <numeric>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

namespace mfpa::ml {
namespace {

double leaf_value(double g, double h, double lambda) noexcept {
  const double denom = h + lambda;
  return denom > 1e-12 ? g / denom : 0.0;
}

double score(double g, double h, double lambda) noexcept {
  const double denom = h + lambda;
  return denom > 1e-12 ? g * g / denom : 0.0;
}

}  // namespace

struct RegressionTree::BuildContext {
  const data::Matrix* X = nullptr;
  std::span<const double> grad;
  std::span<const double> hess;  // empty => all ones
  Rng* rng = nullptr;
  std::size_t n_candidate_features = 0;
  // Workspace reused across nodes.
  std::vector<std::pair<double, std::size_t>> sorted;  // (value, row)

  double h_of(std::size_t row) const noexcept {
    return hess.empty() ? 1.0 : hess[row];
  }
};

void RegressionTree::fit(const data::Matrix& X, std::span<const double> grad,
                         std::span<const double> hess,
                         std::span<const std::size_t> rows, Rng& rng) {
  if (grad.size() != X.rows()) {
    throw std::invalid_argument("RegressionTree::fit: grad size mismatch");
  }
  if (!hess.empty() && hess.size() != X.rows()) {
    throw std::invalid_argument("RegressionTree::fit: hess size mismatch");
  }
  if (rows.empty()) {
    throw std::invalid_argument("RegressionTree::fit: empty row set");
  }
  if (params_.split_method == SplitMethod::kHist) {
    // Bin construction is the hist path's fixed cost; time it separately
    // from the split scans so the breakdown shows where a fit went.
    std::optional<data::BinnedMatrix> bins;
    {
      obs::ScopedTimer bin_timer(obs::registry().histogram(
          "mfpa_train_bin_build_seconds", 0.0, 10.0, 256));
      bins.emplace(X, params_.max_bins);
    }
    fit(*bins, grad, hess, rows, rng);
    return;
  }
  obs::registry().counter("mfpa_train_tree_fits_total", {{"path", "exact"}})
      .inc();
  nodes_.clear();
  BuildContext ctx;
  ctx.X = &X;
  ctx.grad = grad;
  ctx.hess = hess;
  ctx.rng = &rng;
  const std::size_t d = X.cols();
  if (params_.max_features < 0) {
    ctx.n_candidate_features = d;
  } else if (params_.max_features == 0) {
    ctx.n_candidate_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(d))));
  } else {
    ctx.n_candidate_features =
        std::min<std::size_t>(d, static_cast<std::size_t>(params_.max_features));
  }
  std::vector<std::size_t> row_copy(rows.begin(), rows.end());
  build_node(ctx, row_copy, params_.max_depth);
}

int RegressionTree::build_node(BuildContext& ctx, std::vector<std::size_t>& rows,
                               int depth_left) {
  const data::Matrix& X = *ctx.X;
  double g_total = 0.0, h_total = 0.0;
  for (std::size_t r : rows) {
    g_total += ctx.grad[r];
    h_total += ctx.h_of(r);
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].samples = rows.size();
  nodes_[node_id].value = leaf_value(g_total, h_total, params_.lambda);

  if (depth_left <= 0 || rows.size() < params_.min_samples_split) {
    return node_id;
  }

  // Candidate features: all, or a random subset (random forests).
  const std::size_t d = X.cols();
  std::vector<std::size_t> features;
  if (ctx.n_candidate_features >= d) {
    features.resize(d);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = ctx.rng->sample_without_replacement(d, ctx.n_candidate_features);
  }

  const double parent_score = score(g_total, h_total, params_.lambda);
  double best_gain = params_.min_gain;
  int best_feature = -1;
  double best_threshold = 0.0;

  auto& sorted = ctx.sorted;
  for (std::size_t f : features) {
    sorted.clear();
    sorted.reserve(rows.size());
    for (std::size_t r : rows) sorted.emplace_back(X(r, f), r);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    double g_left = 0.0, h_left = 0.0;
    std::size_t n_left = 0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const std::size_t r = sorted[i].second;
      g_left += ctx.grad[r];
      h_left += ctx.h_of(r);
      ++n_left;
      if (sorted[i].first == sorted[i + 1].first) continue;  // no cut in ties
      const std::size_t n_right = sorted.size() - n_left;
      if (n_left < params_.min_samples_leaf || n_right < params_.min_samples_leaf) {
        continue;
      }
      const double gain = score(g_left, h_left, params_.lambda) +
                          score(g_total - g_left, h_total - h_left,
                                params_.lambda) -
                          parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (std::size_t r : rows) {
    (X(r, static_cast<std::size_t>(best_feature)) <= best_threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  // Numerical safety: a degenerate partition would recurse forever.
  if (left_rows.empty() || right_rows.empty()) return node_id;

  rows.clear();
  rows.shrink_to_fit();  // free before recursing

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].gain = best_gain;
  const int left = build_node(ctx, left_rows, depth_left - 1);
  nodes_[node_id].left = left;
  const int right = build_node(ctx, right_rows, depth_left - 1);
  nodes_[node_id].right = right;
  return node_id;
}

/// One (sum grad, sum hess, count) accumulator cell of a node histogram.
struct RegressionTree::HistBin {
  double g = 0.0;
  double h = 0.0;
  std::size_t n = 0;
};

struct RegressionTree::HistContext {
  const data::BinnedMatrix* bins = nullptr;
  std::span<const double> grad;
  std::span<const double> hess;  // empty => all ones
  Rng* rng = nullptr;
  std::size_t n_candidate_features = 0;
  /// All features histogrammed per node => the sibling-subtraction trick is
  /// valid. With per-node feature subsampling (random forests) the child's
  /// candidate set differs from the parent's, so each node builds directly.
  bool subtraction = false;
  std::vector<std::size_t> offset;  ///< per-feature slot into a node histogram
  std::size_t total_bins = 0;
  std::vector<std::vector<HistBin>> pool;  ///< released node histograms

  double h_of(std::size_t row) const noexcept {
    return hess.empty() ? 1.0 : hess[row];
  }

  /// Buffer of total_bins cells; zeroed only when `zeroed` (direct-build
  /// nodes clear just the feature ranges they touch).
  std::vector<HistBin> acquire(bool zeroed) {
    std::vector<HistBin> out;
    if (!pool.empty()) {
      out = std::move(pool.back());
      pool.pop_back();
      if (zeroed) std::fill(out.begin(), out.end(), HistBin{});
    } else {
      out.assign(total_bins, HistBin{});
    }
    return out;
  }

  void release(std::vector<HistBin>&& v) { pool.push_back(std::move(v)); }

  /// Accumulates feature f over `rows` into `hist` (range must be zeroed).
  void add_feature(std::span<const std::size_t> rows, std::size_t f,
                   std::vector<HistBin>& hist) const {
    const std::uint8_t* code = bins->column(f);
    HistBin* cell = hist.data() + offset[f];
    if (hess.empty()) {
      for (std::size_t r : rows) {
        HistBin& b = cell[code[r]];
        b.g += grad[r];
        b.h += 1.0;
        ++b.n;
      }
    } else {
      for (std::size_t r : rows) {
        HistBin& b = cell[code[r]];
        b.g += grad[r];
        b.h += hess[r];
        ++b.n;
      }
    }
  }

  void add_all_features(std::span<const std::size_t> rows,
                        std::vector<HistBin>& hist) const {
    for (std::size_t f = 0; f < bins->cols(); ++f) add_feature(rows, f, hist);
  }
};

void RegressionTree::fit(const data::BinnedMatrix& bins,
                         std::span<const double> grad,
                         std::span<const double> hess,
                         std::span<const std::size_t> rows, Rng& rng) {
  if (grad.size() != bins.rows()) {
    throw std::invalid_argument("RegressionTree::fit: grad size mismatch");
  }
  if (!hess.empty() && hess.size() != bins.rows()) {
    throw std::invalid_argument("RegressionTree::fit: hess size mismatch");
  }
  if (rows.empty()) {
    throw std::invalid_argument("RegressionTree::fit: empty row set");
  }
  nodes_.clear();
  HistContext ctx;
  ctx.bins = &bins;
  ctx.grad = grad;
  ctx.hess = hess;
  ctx.rng = &rng;
  const std::size_t d = bins.cols();
  if (params_.max_features < 0) {
    ctx.n_candidate_features = d;
  } else if (params_.max_features == 0) {
    ctx.n_candidate_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(d))));
  } else {
    ctx.n_candidate_features =
        std::min<std::size_t>(d, static_cast<std::size_t>(params_.max_features));
  }
  ctx.subtraction = ctx.n_candidate_features >= d;
  ctx.offset.resize(d);
  std::size_t total = 0;
  for (std::size_t f = 0; f < d; ++f) {
    ctx.offset[f] = total;
    total += bins.n_bins(f);
  }
  ctx.total_bins = total;
  std::vector<std::size_t> row_copy(rows.begin(), rows.end());
  auto& reg = obs::registry();
  reg.counter("mfpa_train_tree_fits_total", {{"path", "hist"}}).inc();
  obs::ScopedTimer scan_timer(
      reg.histogram("mfpa_train_split_scan_seconds", 0.0, 10.0, 256));
  build_node_hist(ctx, row_copy, params_.max_depth, {});
}

int RegressionTree::build_node_hist(HistContext& ctx,
                                    std::vector<std::size_t>& rows,
                                    int depth_left,
                                    std::vector<HistBin> hist) {
  const data::BinnedMatrix& bins = *ctx.bins;
  double g_total = 0.0, h_total = 0.0;
  for (std::size_t r : rows) {
    g_total += ctx.grad[r];
    h_total += ctx.h_of(r);
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].samples = rows.size();
  nodes_[node_id].value = leaf_value(g_total, h_total, params_.lambda);

  if (depth_left <= 0 || rows.size() < params_.min_samples_split) {
    if (!hist.empty()) ctx.release(std::move(hist));
    return node_id;
  }

  const std::size_t d = bins.cols();
  std::vector<std::size_t> features;
  if (ctx.n_candidate_features >= d) {
    features.resize(d);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = ctx.rng->sample_without_replacement(d, ctx.n_candidate_features);
  }

  if (hist.empty()) {
    if (ctx.subtraction) {
      hist = ctx.acquire(true);
      ctx.add_all_features(rows, hist);
    } else {
      hist = ctx.acquire(false);
      for (std::size_t f : features) {
        std::fill_n(hist.begin() + static_cast<std::ptrdiff_t>(ctx.offset[f]),
                    bins.n_bins(f), HistBin{});
        ctx.add_feature(rows, f, hist);
      }
    }
  }

  const double parent_score = score(g_total, h_total, params_.lambda);
  double best_gain = params_.min_gain;
  int best_feature = -1;
  int best_bin = -1;

  for (std::size_t f : features) {
    const std::size_t n_cuts = bins.cuts(f).size();
    if (n_cuts == 0) continue;  // constant feature
    const HistBin* cell = hist.data() + ctx.offset[f];
    double g_left = 0.0, h_left = 0.0;
    std::size_t n_left = 0;
    for (std::size_t b = 0; b < n_cuts; ++b) {
      g_left += cell[b].g;
      h_left += cell[b].h;
      n_left += cell[b].n;
      const std::size_t n_right = rows.size() - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      const double gain = score(g_left, h_left, params_.lambda) +
                          score(g_total - g_left, h_total - h_left,
                                params_.lambda) -
                          parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = static_cast<int>(b);
      }
    }
  }

  if (best_feature < 0) {
    ctx.release(std::move(hist));
    return node_id;
  }

  const std::uint8_t* code = bins.column(static_cast<std::size_t>(best_feature));
  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (std::size_t r : rows) {
    (code[r] <= best_bin ? left_rows : right_rows).push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) {
    ctx.release(std::move(hist));
    return node_id;
  }

  rows.clear();
  rows.shrink_to_fit();  // free before recursing

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = bins.cut(static_cast<std::size_t>(best_feature),
                                       static_cast<std::size_t>(best_bin));
  nodes_[node_id].gain = best_gain;

  // Sibling subtraction: build the smaller child's histogram from its rows,
  // then turn the parent's buffer into the larger child's in place.
  std::vector<HistBin> left_hist, right_hist;
  if (ctx.subtraction) {
    const bool left_small = left_rows.size() <= right_rows.size();
    std::vector<HistBin> small_hist = ctx.acquire(true);
    ctx.add_all_features(left_small ? left_rows : right_rows, small_hist);
    for (std::size_t i = 0; i < ctx.total_bins; ++i) {
      hist[i].g -= small_hist[i].g;
      hist[i].h -= small_hist[i].h;
      hist[i].n -= small_hist[i].n;
    }
    left_hist = left_small ? std::move(small_hist) : std::move(hist);
    right_hist = left_small ? std::move(hist) : std::move(small_hist);
  } else {
    ctx.release(std::move(hist));
  }

  const int left = build_node_hist(ctx, left_rows, depth_left - 1,
                                   std::move(left_hist));
  nodes_[node_id].left = left;
  const int right = build_node_hist(ctx, right_rows, depth_left - 1,
                                    std::move(right_hist));
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::predict_row(std::span<const double> row) const {
  if (nodes_.empty()) throw std::logic_error("RegressionTree: predict before fit");
  int id = 0;
  while (nodes_[static_cast<std::size_t>(id)].feature >= 0) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(id)];
    id = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                 : n.right;
  }
  return nodes_[static_cast<std::size_t>(id)].value;
}

std::vector<double> RegressionTree::predict(const data::Matrix& X) const {
  std::vector<double> out(X.rows());
  predict_into(X, out);
  return out;
}

void RegressionTree::predict_into(const data::Matrix& X,
                                  std::span<double> out) const {
  if (out.size() != X.rows()) {
    throw std::invalid_argument("RegressionTree::predict_into: size mismatch");
  }
  for (std::size_t r = 0; r < X.rows(); ++r) out[r] = predict_row(X.row(r));
}

int RegressionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flat representation.
  std::vector<std::pair<int, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const TreeNode& n = nodes_[static_cast<std::size_t>(id)];
    if (n.feature >= 0) {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_depth;
}

void RegressionTree::save(std::ostream& os) const {
  os << "tree " << nodes_.size() << '\n';
  char buf[96];
  for (const auto& n : nodes_) {
    std::snprintf(buf, sizeof(buf), "%d %.17g %d %d %.17g %.17g %zu\n",
                  n.feature, n.threshold, n.left, n.right, n.value, n.gain,
                  n.samples);
    os << buf;
  }
}

void RegressionTree::load(std::istream& is) {
  std::string token;
  if (!(is >> token) || token != "tree") {
    throw std::runtime_error("RegressionTree::load: missing 'tree' tag");
  }
  std::size_t count = 0;
  if (!(is >> count) || count > (1u << 26)) {
    throw std::runtime_error("RegressionTree::load: bad node count");
  }
  nodes_.assign(count, TreeNode{});
  for (auto& n : nodes_) {
    if (!(is >> n.feature >> n.threshold >> n.left >> n.right >> n.value >>
          n.gain >> n.samples)) {
      throw std::runtime_error("RegressionTree::load: malformed node");
    }
    const auto limit = static_cast<int>(count);
    if (n.feature >= 0 &&
        (n.left < 0 || n.left >= limit || n.right < 0 || n.right >= limit)) {
      throw std::runtime_error("RegressionTree::load: child index out of range");
    }
  }
}

void RegressionTree::accumulate_importance(std::vector<double>& out) const {
  for (const auto& n : nodes_) {
    if (n.feature >= 0 && static_cast<std::size_t>(n.feature) < out.size()) {
      out[static_cast<std::size_t>(n.feature)] += n.gain;
    }
  }
}

DecisionTreeClassifier::DecisionTreeClassifier(Hyperparams params)
    : params_(std::move(params)) {
  TreeParams tp;
  tp.max_depth = static_cast<int>(param_or(params_, "max_depth", 12));
  tp.min_samples_split =
      static_cast<std::size_t>(param_or(params_, "min_samples_split", 2));
  tp.min_samples_leaf =
      static_cast<std::size_t>(param_or(params_, "min_samples_leaf", 1));
  tp.max_features = static_cast<int>(param_or(params_, "max_features", -1));
  tp.split_method = param_or(params_, "split_method", 1) != 0
                        ? SplitMethod::kHist
                        : SplitMethod::kExact;
  tp.max_bins = static_cast<std::size_t>(
      std::clamp(param_or(params_, "max_bins", 255.0), 2.0, 255.0));
  tree_ = RegressionTree(tp);
}

void DecisionTreeClassifier::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  std::vector<double> targets(y.begin(), y.end());
  std::vector<std::size_t> rows(X.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  Rng rng(static_cast<std::uint64_t>(param_or(params_, "seed", 1)));
  tree_.fit(X, targets, {}, rows, rng);
}

std::vector<double> DecisionTreeClassifier::predict_proba(const Matrix& X) const {
  return tree_.predict(X);
}

std::unique_ptr<Classifier> DecisionTreeClassifier::clone_unfitted() const {
  return std::make_unique<DecisionTreeClassifier>(params_);
}

void DecisionTreeClassifier::save_state(std::ostream& os) const {
  if (!tree_.fitted()) {
    throw std::logic_error("DecisionTreeClassifier: save before fit");
  }
  tree_.save(os);
}

void DecisionTreeClassifier::load_state(std::istream& is) { tree_.load(is); }

}  // namespace mfpa::ml
