// Model factory: constructs any of the paper's algorithms by name so that
// grid search, feature selection, and the experiment harnesses can stay
// algorithm-agnostic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/model.hpp"

namespace mfpa::ml {

/// Names accepted by make_classifier: "Bayes", "SVM", "RF", "GBDT",
/// "CNN_LSTM", "LR", "DT".
const std::vector<std::string>& known_algorithms();

/// Builds an unfitted classifier; throws std::invalid_argument for an
/// unknown name. Hyperparams are forwarded to the model's constructor.
std::unique_ptr<Classifier> make_classifier(const std::string& name,
                                            const Hyperparams& params = {});

/// Reasonable defaults per algorithm for the MFPA pipeline (tuned once via
/// grid search at the default scenario scale).
Hyperparams default_hyperparams(const std::string& name);

}  // namespace mfpa::ml
