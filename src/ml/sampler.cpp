#include "ml/sampler.hpp"

#include <algorithm>

namespace mfpa::ml {

std::vector<std::size_t> RandomUnderSampler::sample_indices(
    const std::vector<int>& y) const {
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < y.size(); ++i) {
    (y[i] == 1 ? pos : neg).push_back(i);
  }
  std::vector<std::size_t> out;
  if (ratio_ <= 0.0 || pos.empty() || neg.empty()) {
    out.resize(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) out[i] = i;
    return out;
  }
  const bool neg_is_majority = neg.size() >= pos.size();
  auto& minority = neg_is_majority ? pos : neg;
  auto& majority = neg_is_majority ? neg : pos;
  const auto want = static_cast<std::size_t>(
      static_cast<double>(minority.size()) * ratio_ + 0.5);
  Rng rng(seed_);
  if (want < majority.size()) {
    const auto pick = rng.sample_without_replacement(majority.size(), want);
    std::vector<std::size_t> kept;
    kept.reserve(want);
    for (std::size_t k : pick) kept.push_back(majority[k]);
    majority = std::move(kept);
  }
  out.reserve(minority.size() + majority.size());
  out.insert(out.end(), minority.begin(), minority.end());
  out.insert(out.end(), majority.begin(), majority.end());
  std::sort(out.begin(), out.end());
  return out;
}

data::Dataset RandomUnderSampler::resample(const data::Dataset& ds) const {
  return ds.select_rows(sample_indices(ds.y));
}

}  // namespace mfpa::ml
