#include "ml/gbdt.hpp"

#include "ml/parallel_for.hpp"
#include "ml/quantized_forest.hpp"
#include "ml/serialize.hpp"

#include <istream>
#include <ostream>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "data/binned_matrix.hpp"

namespace mfpa::ml {

// The logistic lives in flat_forest.hpp (stable_sigmoid) so the pointer and
// compiled paths share one definition and stay bit-identical.

GbdtClassifier::GbdtClassifier(Hyperparams params) : params_(std::move(params)) {}

void GbdtClassifier::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  flat_.reset();  // compiled forms derive from the trees being replaced
  quant_.reset();
  const std::size_t n_rounds =
      static_cast<std::size_t>(param_or(params_, "n_rounds", 80));
  learning_rate_ = param_or(params_, "learning_rate", 0.2);
  const double subsample = std::clamp(param_or(params_, "subsample", 0.9), 0.1, 1.0);
  const auto seed = static_cast<std::uint64_t>(param_or(params_, "seed", 1));
  const std::size_t threads =
      static_cast<std::size_t>(param_or(params_, "threads", 1));

  TreeParams tp;
  tp.max_depth = static_cast<int>(param_or(params_, "max_depth", 5));
  tp.min_samples_split =
      static_cast<std::size_t>(param_or(params_, "min_samples_split", 16));
  tp.min_samples_leaf =
      static_cast<std::size_t>(param_or(params_, "min_samples_leaf", 8));
  tp.max_features = static_cast<int>(param_or(params_, "max_features", -1));
  tp.lambda = param_or(params_, "lambda", 1.0);
  tp.split_method = param_or(params_, "split_method", 1) != 0
                        ? SplitMethod::kHist
                        : SplitMethod::kExact;
  tp.max_bins = static_cast<std::size_t>(
      std::clamp(param_or(params_, "max_bins", 255.0), 2.0, 255.0));

  const std::size_t n = X.rows();
  n_features_ = X.cols();

  // Bin once, share across every boosting round (and fits, via shared bins).
  std::shared_ptr<const data::BinnedMatrix> bins;
  if (tp.split_method == SplitMethod::kHist) {
    if (shared_bins_ && shared_bins_->rows() == X.rows() &&
        shared_bins_->cols() == X.cols()) {
      bins = shared_bins_;
    } else {
      bins = std::make_shared<data::BinnedMatrix>(X, tp.max_bins);
    }
  }

  // Log-odds prior.
  const double pos =
      static_cast<double>(std::count(y.begin(), y.end(), 1));
  const double p0 = std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(p0 / (1.0 - p0));

  std::vector<double> raw(n, base_score_);
  std::vector<double> grad(n), hess(n);
  trees_.clear();
  trees_.reserve(n_rounds);
  Rng rng(seed);

  for (std::size_t round = 0; round < n_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = stable_sigmoid(raw[i]);
      grad[i] = static_cast<double>(y[i]) - p;  // negative gradient of BCE
      hess[i] = std::max(p * (1.0 - p), 1e-12);
    }
    std::vector<std::size_t> rows;
    if (subsample < 1.0) {
      rows.reserve(static_cast<std::size_t>(static_cast<double>(n) * subsample) + 1);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(subsample)) rows.push_back(i);
      }
      if (rows.empty()) rows.push_back(0);
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }
    RegressionTree tree(tp);
    Rng tree_rng = rng.split(round + 1);
    if (bins) {
      tree.fit(*bins, grad, hess, rows, tree_rng);
    } else {
      tree.fit(X, grad, hess, rows, tree_rng);
    }
    parallel_for_blocks(n, threads, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        raw[i] += learning_rate_ * tree.predict_row(X.row(i));
      }
    });
    trees_.push_back(std::move(tree));
  }
}

double GbdtClassifier::raw_score_row(std::span<const double> row) const {
  double s = base_score_;
  for (const auto& tree : trees_) s += learning_rate_ * tree.predict_row(row);
  return s;
}

std::vector<double> GbdtClassifier::predict_proba(const Matrix& X) const {
  if (trees_.empty()) throw std::logic_error("GbdtClassifier: predict before fit");
  const std::size_t threads =
      static_cast<std::size_t>(param_or(params_, "threads", 1));
  if (quant_) {
    // Quantized path: bit-identical to the loop below because the cuts come
    // from the booster's own thresholds (see ml/quantized_forest.hpp).
    std::vector<double> compiled(X.rows());
    quant_->predict_into(X, compiled, threads);
    return compiled;
  }
  if (flat_) {
    // Compiled path: bit-identical to the loop below (see flat_forest.hpp).
    std::vector<double> compiled(X.rows());
    flat_->predict_into(X, compiled, threads);
    return compiled;
  }
  std::vector<double> out(X.rows());
  parallel_for_blocks(X.rows(), threads, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      out[r] = stable_sigmoid(raw_score_row(X.row(r)));
    }
  });
  return out;
}

std::unique_ptr<Classifier> GbdtClassifier::clone_unfitted() const {
  return std::make_unique<GbdtClassifier>(params_);
}

void GbdtClassifier::save_state(std::ostream& os) const {
  if (trees_.empty()) throw std::logic_error("GbdtClassifier: save before fit");
  os << "boost " << trees_.size() << ' ' << n_features_ << ' ';
  io::write_double(os, base_score_);
  io::write_double(os, learning_rate_);
  os << '\n';
  for (const auto& tree : trees_) tree.save(os);
}

void GbdtClassifier::load_state(std::istream& is) {
  io::expect_token(is, "boost");
  std::size_t count = 0;
  if (!(is >> count >> n_features_) || count == 0 || count > 100000) {
    throw std::runtime_error("GbdtClassifier: bad boost header");
  }
  base_score_ = io::read_double(is);
  learning_rate_ = io::read_double(is);
  flat_.reset();
  quant_.reset();
  trees_.assign(count, RegressionTree{});
  for (auto& tree : trees_) tree.load(is);
}

bool GbdtClassifier::compile() {
  if (trees_.empty()) return false;
  flat_ = std::make_shared<const FlatForest>(FlatForest::compile(
      trees_, FlatForest::Output::kSigmoid, learning_rate_, base_score_));
  return true;
}

bool GbdtClassifier::compile_quantized() {
  if (trees_.empty()) return false;
  try {
    quant_ = std::make_shared<const QuantizedForest>(QuantizedForest::compile(
        trees_, FlatForest::Output::kSigmoid, learning_rate_, base_score_));
  } catch (const std::invalid_argument&) {
    return false;  // >255 distinct thresholds on some feature (exact splits)
  }
  return true;
}

std::vector<double> GbdtClassifier::feature_importance() const {
  std::vector<double> out(n_features_, 0.0);
  for (const auto& tree : trees_) tree.accumulate_importance(out);
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : out) v /= total;
  }
  return out;
}

}  // namespace mfpa::ml
