// Minimal deterministic data-parallel helper shared by the ensemble
// inference paths. Thread-count convention matches random_forest.cpp and
// sim/fleet.cpp: 0 = hardware_concurrency, <=1 = serial.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mfpa::ml {

/// Resolves the "threads" hyperparameter convention (0 = all hardware).
inline std::size_t resolve_threads(std::size_t threads) {
  return threads == 0
             ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
             : threads;
}

namespace detail {

/// Thread-utilization instruments for parallel_for_blocks. The helper runs
/// on every ensemble predict, so handles are cached per thread; the cache
/// key is the (registry address, generation) pair, which invalidates it
/// whenever a test swaps in an isolated registry — even one reusing a
/// just-freed address.
struct ParallelMetrics {
  obs::Counter* jobs_serial = nullptr;
  obs::Counter* jobs_threaded = nullptr;
  obs::Counter* workers = nullptr;
};

inline const ParallelMetrics& parallel_metrics() {
  thread_local obs::MetricsRegistry* cached_registry = nullptr;
  thread_local std::uint64_t cached_generation = 0;
  thread_local ParallelMetrics metrics;
  auto& reg = obs::registry();
  if (&reg != cached_registry || reg.generation() != cached_generation) {
    metrics.jobs_serial =
        &reg.counter("mfpa_parallel_jobs_total", {{"mode", "serial"}});
    metrics.jobs_threaded =
        &reg.counter("mfpa_parallel_jobs_total", {{"mode", "threaded"}});
    metrics.workers = &reg.counter("mfpa_parallel_workers_total");
    cached_registry = &reg;
    cached_generation = reg.generation();
  }
  return metrics;
}

}  // namespace detail

/// Invokes fn(begin, end) over [0, n) split into contiguous per-worker
/// blocks. The partition depends only on (n, workers), and each index is
/// written by exactly one worker, so results are thread-count-invariant
/// whenever fn(i) is independent of fn(j).
template <typename Fn>
void parallel_for_blocks(std::size_t n, std::size_t threads, Fn&& fn) {
  threads = resolve_threads(threads);
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    detail::parallel_metrics().jobs_serial->inc();
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t workers = std::min(threads, n);
  {
    const auto& m = detail::parallel_metrics();
    m.jobs_threaded->inc();
    m.workers->inc(workers);
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * n / workers;
    const std::size_t hi = (w + 1) * n / workers;
    pool.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (auto& t : pool) t.join();
}

}  // namespace mfpa::ml
