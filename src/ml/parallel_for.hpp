// Minimal deterministic data-parallel helper shared by the ensemble
// inference paths. Thread-count convention matches random_forest.cpp and
// sim/fleet.cpp: 0 = hardware_concurrency, <=1 = serial.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace mfpa::ml {

/// Resolves the "threads" hyperparameter convention (0 = all hardware).
inline std::size_t resolve_threads(std::size_t threads) {
  return threads == 0
             ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
             : threads;
}

/// Invokes fn(begin, end) over [0, n) split into contiguous per-worker
/// blocks. The partition depends only on (n, workers), and each index is
/// written by exactly one worker, so results are thread-count-invariant
/// whenever fn(i) is independent of fn(j).
template <typename Fn>
void parallel_for_blocks(std::size_t n, std::size_t threads, Fn&& fn) {
  threads = resolve_threads(threads);
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t workers = std::min(threads, n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * n / workers;
    const std::size_t hi = (w + 1) * n / workers;
    pool.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (auto& t : pool) t.join();
}

}  // namespace mfpa::ml
