// Quantized compiled inference: tree ensembles scored on uint8 bin codes.
//
// FlatForest (flat_forest.hpp) already removes the pointer-chasing from
// ensemble scoring but still walks double thresholds over double features —
// 16 bytes of node data per level plus an 8-byte feature load. This
// LightGBM-style variant quantizes the comparison itself. Per feature, a
// sorted cut array partitions the reals into at most 256 bins; every node
// threshold becomes the uint8 *count of cuts <= threshold* (`q`), every
// feature value the uint8 *count of cuts < value* (`c`), and the descend
// predicate `value <= threshold` becomes `c < q` (strictly-less; see the
// derivation in quantized_forest.cpp). Node traversal data shrinks to
// 9 bytes (int32 feature/leaf-ref, uint8 code, int32 left child) with leaf
// doubles hoisted into a separate array touched once per row per tree, and
// a scored batch is encoded once into a uint8 code block instead of being
// re-read as doubles at every level.
//
// Tolerance contract (documented in docs/PERFORMANCE.md):
//
// * compile() derives the cut arrays from the ensemble's own thresholds
//   (every distinct threshold becomes a cut), so `c < q` is *exactly*
//   `value <= threshold` for every real value, and NaN — encoded as code
//   255, above every q — descends right exactly like the float kernels.
//   Probabilities are bit-identical to the node-pointer path. compile()
//   refuses (throws std::invalid_argument) when a feature carries more
//   than 255 distinct thresholds; hist-trained ensembles (the default
//   trainer) draw thresholds from at most 254 bin cuts per feature, so
//   they always quantize.
//
// * compile_binned() reuses an existing data::BinnedMatrix's cuts (the
//   binning the hist trainer already produced) so scoring can run directly
//   on its codes with no re-encoding. Every threshold found among the cuts
//   is exact (`exact()` reports whether all were); a threshold between two
//   cuts is snapped *down* to the nearest cut, so the quantized model
//   equals the float model with those thresholds moved — rows differ only
//   when some feature value lands inside a (snapped, original] gap, i.e.
//   in the same bin as the threshold. Note the BinnedMatrix overload also
//   inherits its NaN encoding (code 0); the Matrix overload always encodes
//   NaN as 255 (descend right, float-identical).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/binned_matrix.hpp"
#include "data/matrix.hpp"
#include "ml/flat_forest.hpp"

namespace mfpa::ml {

/// Flattened, immutable, uint8-quantized ensemble. Cheap to move;
/// thread-safe to share.
class QuantizedForest {
 public:
  using Output = FlatForest::Output;

  /// Code reserved for NaN feature values on the Matrix scoring path:
  /// above every node code, so NaN always descends right.
  static constexpr std::uint8_t kNanCode = 255;

  QuantizedForest() = default;

  /// Quantizes fitted trees against cut arrays built from their own
  /// thresholds — the exact, bit-identical form (see the header comment).
  /// `per_tree_scale` and `base` as in FlatForest::compile. Throws
  /// std::invalid_argument on an empty/unfitted ensemble or when any
  /// feature has more than 255 distinct thresholds.
  static QuantizedForest compile(std::span<const RegressionTree> trees,
                                 Output output, double per_tree_scale,
                                 double base);

  /// Quantizes against an existing binning's cuts so predict_into can score
  /// the BinnedMatrix's codes directly. Thresholds absent from the cuts are
  /// snapped down (exact() turns false); see the tolerance contract above.
  /// Throws std::invalid_argument when the binning does not cover every
  /// split feature.
  static QuantizedForest compile_binned(std::span<const RegressionTree> trees,
                                        const data::BinnedMatrix& bins,
                                        Output output, double per_tree_scale,
                                        double base);

  bool empty() const noexcept { return roots_.empty(); }
  std::size_t tree_count() const noexcept { return roots_.size(); }
  std::size_t node_count() const noexcept { return feat_.size(); }
  std::size_t leaf_count() const noexcept { return leaf_vals_.size(); }
  /// Number of feature columns the encoder expects (max split feature + 1).
  std::size_t n_features() const noexcept { return cuts_.size(); }
  /// True when every threshold was representable exactly — the
  /// bit-identical regime of the tolerance contract.
  bool exact() const noexcept { return exact_; }
  /// Heap footprint of the node arrays, leaf values, and cut arrays.
  std::size_t bytes() const noexcept;
  /// This feature's quantization cuts (ascending; empty if never split on).
  const std::vector<double>& cuts(std::size_t f) const noexcept {
    return cuts_[f];
  }

  /// Scores every row of X into out (out.size() == X.rows()), encoding each
  /// row block to uint8 codes first (NaN -> kNanCode). `threads` follows
  /// the library convention (0 = hardware, <=1 serial); results are
  /// bit-identical for every thread count.
  void predict_into(const data::Matrix& X, std::span<double> out,
                    std::size_t threads = 1) const;

  /// Scores pre-binned codes directly — zero per-row encoding. The
  /// binning's cuts must be element-equal to this forest's (the
  /// BinnedMatrix handed to compile_binned, or one built with identical
  /// edges); throws std::invalid_argument otherwise.
  void predict_into(const data::BinnedMatrix& B, std::span<double> out,
                    std::size_t threads = 1) const;

  /// Convenience allocation forms of predict_into.
  std::vector<double> predict(const data::Matrix& X,
                              std::size_t threads = 1) const;
  std::vector<double> predict(const data::BinnedMatrix& B,
                              std::size_t threads = 1) const;

 private:
  // Node storage, breadth-first per tree with adjacent children exactly
  // like FlatForest; feat_[n] < 0 marks a leaf and encodes ~leaf_index
  // into leaf_vals_ (leaves self-loop via left_).
  std::vector<std::int32_t> feat_;
  std::vector<std::uint8_t> code_;  ///< q = #cuts <= threshold
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> roots_;
  std::vector<double> leaf_vals_;
  std::vector<std::vector<double>> cuts_;  ///< per-feature ascending cuts
  Output output_ = Output::kMeanClamp;
  double per_tree_scale_ = 1.0;
  double base_ = 0.0;
  double inv_trees_ = 0.0;
  bool exact_ = true;

  static QuantizedForest build(std::span<const RegressionTree> trees,
                               std::vector<std::vector<double>> cuts,
                               Output output, double per_tree_scale,
                               double base);

  /// Walks trees [tree_lo, tree_hi) over `rows` rows of row-major uint8
  /// codes (stride n_features()) into acc (caller seeds it).
  void accumulate_codes(const std::uint8_t* codes, std::size_t rows,
                        std::size_t tree_lo, std::size_t tree_hi,
                        double* acc) const;

  void finish_range(const double* acc, std::span<double> out, std::size_t lo,
                    std::size_t hi) const;
};

}  // namespace mfpa::ml
