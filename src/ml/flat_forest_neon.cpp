// NEON (aarch64) build of the FlatForest descend kernel — see
// flat_forest_kernels.hpp for the contract and flat_forest_avx2.cpp for the
// lane-mapping commentary. NEON has no gather, so per-lane loads feed the
// vectors; the win over the scalar kernel is the vectorized
// compare/advance/blend arithmetic and the branch-free all-leaves
// reduction. Four int32x4 groups (16 rows) run interleaved to keep
// independent load chains in flight. The operation sequence per row is
// identical to the scalar kernel — same ordered <= predicate (NaN right),
// same tree-order separate multiply/add — so results stay bit-identical.
#include "ml/flat_forest_kernels.hpp"

#if defined(__aarch64__) && !defined(MFPA_FORCE_SCALAR)

#include <arm_neon.h>

namespace mfpa::ml::detail {
namespace {

/// Lane state of one 4-row group.
struct LaneGroup {
  int32x4_t n;
  int32x4_t f;
  const double* rows[4];
};

inline LaneGroup make_group(std::int32_t root, std::int32_t root_feat,
                            const double* x, std::size_t cols,
                            std::size_t r) noexcept {
  LaneGroup g;
  g.n = vdupq_n_s32(root);
  g.f = vdupq_n_s32(root_feat);
  for (int i = 0; i < 4; ++i) g.rows[i] = x + (r + i) * cols;
  return g;
}

/// One descend level: per-lane loads, vector compare/advance/blend.
inline void step(LaneGroup& g, const std::int32_t* feat, const double* thr,
                 const std::int32_t* left) noexcept {
  const int32x4_t keep = vshrq_n_s32(g.f, 31);  // all-ones at a leaf
  const int32x4_t idx = vbicq_s32(g.f, keep);   // f & ~keep
  std::int32_t ni[4], ii[4];
  vst1q_s32(ni, g.n);
  vst1q_s32(ii, idx);
  // Per-lane "gathers" (NEON has none): feature values, thresholds, lefts.
  float64x2_t xv_lo = {g.rows[0][ii[0]], g.rows[1][ii[1]]};
  float64x2_t xv_hi = {g.rows[2][ii[2]], g.rows[3][ii[3]]};
  float64x2_t th_lo = {thr[ni[0]], thr[ni[1]]};
  float64x2_t th_hi = {thr[ni[2]], thr[ni[3]]};
  const int32x4_t lf = {left[ni[0]], left[ni[1]], left[ni[2]], left[ni[3]]};
  // vcleq is an ordered compare: NaN lanes yield zero and descend right,
  // exactly like the scalar `!(x <= thr)`.
  const uint64x2_t le_lo = vcleq_f64(xv_lo, th_lo);
  const uint64x2_t le_hi = vcleq_f64(xv_hi, th_hi);
  // Narrow the two 64-bit masks into one 32-bit mask (-1 iff x <= thr).
  const int32x4_t le = vreinterpretq_s32_u32(
      vcombine_u32(vmovn_u64(le_lo), vmovn_u64(le_hi)));
  // next = left + (le ? 0 : 1).
  const int32x4_t next = vaddq_s32(lf, vaddq_s32(vdupq_n_s32(1), le));
  // Leaf lanes keep their node; live lanes advance.
  g.n = vbslq_s32(vreinterpretq_u32_s32(keep), g.n, next);
  std::int32_t nn[4];
  vst1q_s32(nn, g.n);
  g.f = int32x4_t{feat[nn[0]], feat[nn[1]], feat[nn[2]], feat[nn[3]]};
}

/// True when every lane's feature sign bit is set (all lanes at a leaf).
inline bool all_leaves(const LaneGroup& g) noexcept {
  const uint32x4_t sign = vcltq_s32(g.f, vdupq_n_s32(0));
  return vminvq_u32(sign) != 0;
}

/// acc[0..3] += scale * thr[n lanes] — separate mul and add, never an FMA.
inline void deposit(const LaneGroup& g, const double* thr, double scale,
                    double* acc) noexcept {
  std::int32_t ni[4];
  vst1q_s32(ni, g.n);
  const float64x2_t vscale = vdupq_n_f64(scale);
  const float64x2_t leaf_lo = {thr[ni[0]], thr[ni[1]]};
  const float64x2_t leaf_hi = {thr[ni[2]], thr[ni[3]]};
  vst1q_f64(acc, vaddq_f64(vld1q_f64(acc), vmulq_f64(vscale, leaf_lo)));
  vst1q_f64(acc + 2,
            vaddq_f64(vld1q_f64(acc + 2), vmulq_f64(vscale, leaf_hi)));
}

void accumulate_neon(const ForestView& forest, const double* x,
                     std::size_t cols, std::size_t row_lo, std::size_t row_hi,
                     std::size_t tree_lo, std::size_t tree_hi, double* acc) {
  const std::int32_t* feat = forest.feat;
  const double* thr = forest.thr;
  const std::int32_t* left = forest.left;
  const double scale = forest.scale;
  for (std::size_t t = tree_lo; t < tree_hi; ++t) {
    const std::int32_t root = forest.roots[t];
    const std::int32_t root_feat = feat[root];
    std::size_t r = row_lo;
    if (root_feat < 0) {
      for (; r < row_hi; ++r) acc[r - row_lo] += scale * thr[root];
      continue;
    }
    // Four interleaved 4-lane groups (16 rows) keep independent dependent-
    // load chains in flight.
    for (; r + 16 <= row_hi; r += 16) {
      LaneGroup a = make_group(root, root_feat, x, cols, r);
      LaneGroup b = make_group(root, root_feat, x, cols, r + 4);
      LaneGroup c = make_group(root, root_feat, x, cols, r + 8);
      LaneGroup d = make_group(root, root_feat, x, cols, r + 12);
      for (;;) {
        step(a, feat, thr, left);
        step(b, feat, thr, left);
        step(c, feat, thr, left);
        step(d, feat, thr, left);
        if (all_leaves(a) && all_leaves(b) && all_leaves(c) &&
            all_leaves(d)) {
          break;
        }
      }
      double* out = acc + (r - row_lo);
      deposit(a, thr, scale, out);
      deposit(b, thr, scale, out + 4);
      deposit(c, thr, scale, out + 8);
      deposit(d, thr, scale, out + 12);
    }
    for (; r + 4 <= row_hi; r += 4) {
      LaneGroup a = make_group(root, root_feat, x, cols, r);
      while (!all_leaves(a)) step(a, feat, thr, left);
      deposit(a, thr, scale, acc + (r - row_lo));
    }
    for (; r < row_hi; ++r) {
      const double* row = x + r * cols;
      std::int32_t n = root;
      std::int32_t f = root_feat;
      while (f >= 0) {
        n = left[n] + static_cast<std::int32_t>(!(row[f] <= thr[n]));
        f = feat[n];
      }
      acc[r - row_lo] += scale * thr[n];
    }
  }
}

}  // namespace

AccumulateFn neon_accumulate_kernel() noexcept { return &accumulate_neon; }

}  // namespace mfpa::ml::detail

#else  // !__aarch64__ || MFPA_FORCE_SCALAR

namespace mfpa::ml::detail {

AccumulateFn neon_accumulate_kernel() noexcept { return nullptr; }

}  // namespace mfpa::ml::detail

#endif
