// Hyperparameter grid search over time-series cross-validation, as the paper
// uses ("We utilize Grid Search, combined with time-series-based
// cross-validation, to optimize the value of hyperparameters").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "data/matrix.hpp"
#include "ml/cross_validation.hpp"
#include "ml/model.hpp"

namespace mfpa::ml {

/// Cartesian grid: parameter name -> candidate values.
using ParamGrid = std::map<std::string, std::vector<double>>;

/// Enumerates all combinations of a grid (in deterministic lexicographic
/// order of parameter names).
std::vector<Hyperparams> expand_grid(const ParamGrid& grid);

struct GridSearchResult {
  Hyperparams best_params;
  double best_score = -1.0;
  /// (params, score) for every evaluated combination.
  std::vector<std::pair<Hyperparams, double>> all;
};

/// Evaluates every grid point with `cross_val_score` on the given splits and
/// returns the best. `algorithm` is a factory name; `base` supplies
/// hyperparameters not present in the grid (e.g. "seed"). `threads` > 1
/// evaluates grid points concurrently with identical results (0 = hardware
/// concurrency).
GridSearchResult grid_search(const std::string& algorithm,
                             const Hyperparams& base, const ParamGrid& grid,
                             const data::Matrix& X, const std::vector<int>& y,
                             const std::vector<Split>& splits,
                             CvMetric metric = CvMetric::kAuc,
                             std::size_t threads = 1);

}  // namespace mfpa::ml
