#include "ml/feature_selection.hpp"

#include <algorithm>

namespace mfpa::ml {

SfsResult sequential_forward_selection(const Classifier& prototype,
                                       const data::Dataset& ds, std::size_t k,
                                       double min_improvement,
                                       std::size_t max_features) {
  SfsResult result;
  const data::Dataset sorted = ds.sorted_by_time();
  const auto splits = time_series_splits(sorted.size(), k);

  std::vector<std::string> remaining = sorted.feature_names;
  std::vector<std::string> selected;
  double best_so_far = -1.0;

  while (!remaining.empty() &&
         (max_features == 0 || selected.size() < max_features)) {
    double round_best = -1.0;
    std::size_t round_best_idx = remaining.size();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      std::vector<std::string> candidate = selected;
      candidate.push_back(remaining[i]);
      const data::Dataset sub = sorted.select_features(candidate);
      const double score =
          cross_val_score(prototype, sub.X, sub.y, splits, CvMetric::kAuc);
      if (score > round_best) {
        round_best = score;
        round_best_idx = i;
      }
    }
    if (round_best_idx == remaining.size() ||
        round_best <= best_so_far + min_improvement) {
      break;  // no feature improves the score enough
    }
    selected.push_back(remaining[round_best_idx]);
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(round_best_idx));
    best_so_far = round_best;
    result.trajectory.push_back({selected.back(), round_best, selected});
  }
  result.selected = std::move(selected);
  return result;
}

}  // namespace mfpa::ml
