// Opt-in interface for classifiers whose fit() can reuse a precomputed
// BinnedMatrix instead of re-sketching the feature matrix.
//
// Binning is deterministic in (Matrix, max_bins), so a caller that evaluates
// many models on the same training matrix — grid search over CV folds being
// the repo's hot case — can bin each fold once and share the result across
// every grid point with bit-identical training outcomes.
#pragma once

#include <memory>

#include "data/binned_matrix.hpp"

namespace mfpa::ml {

/// Implemented by the tree ensembles (RF, GBDT). Callers discover support
/// via dynamic_cast; see cross_val_score(CvCache) in ml/cross_validation.hpp.
class BinnedFitSupport {
 public:
  virtual ~BinnedFitSupport() = default;

  /// Registers bins describing the Matrix passed to the next fit() call(s)
  /// (same rows/cols, built with the model's max_bins). A fit() whose input
  /// shape does not match the registered bins silently re-bins; pass nullptr
  /// to clear.
  virtual void set_shared_bins(
      std::shared_ptr<const data::BinnedMatrix> bins) = 0;
};

}  // namespace mfpa::ml
