#include "ml/svm.hpp"

#include "ml/serialize.hpp"

#include <istream>
#include <ostream>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace mfpa::ml {
namespace {

double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LinearSVM::LinearSVM(Hyperparams params) : params_(std::move(params)) {}

void LinearSVM::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  const double lambda = param_or(params_, "lambda", 1e-4);
  const int epochs = static_cast<int>(param_or(params_, "epochs", 20));
  Rng rng(static_cast<std::uint64_t>(param_or(params_, "seed", 1)));

  const Matrix Xs = scaler_.fit_transform(X);
  const std::size_t n = Xs.rows();
  const std::size_t d = Xs.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;

  // Pegasos: step size 1/(lambda * t), hinge sub-gradient per sample.
  std::size_t t = 1;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto order = rng.permutation(n);
    for (std::size_t k = 0; k < n; ++k, ++t) {
      const auto row = Xs.row(order[k]);
      const double target = y[order[k]] == 1 ? 1.0 : -1.0;
      const double eta = 1.0 / (lambda * static_cast<double>(t));
      double margin = b_;
      for (std::size_t f = 0; f < d; ++f) margin += w_[f] * row[f];
      const double shrink = 1.0 - eta * lambda;
      for (auto& wf : w_) wf *= shrink;
      if (target * margin < 1.0) {
        for (std::size_t f = 0; f < d; ++f) w_[f] += eta * target * row[f];
        b_ += eta * target * 0.1;  // unregularized, damped bias update
      }
    }
  }

  // Platt calibration on the training margins (single-pass logistic fit on
  // one scalar; a few Newton steps suffice).
  std::vector<double> margins(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = Xs.row(r);
    double m = b_;
    for (std::size_t f = 0; f < d; ++f) m += w_[f] * row[f];
    margins[r] = m;
  }
  double a = 1.0, c = 0.0;
  for (int iter = 0; iter < 50; ++iter) {
    double ga = 0.0, gc = 0.0, haa = 0.0, hac = 0.0, hcc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double p = sigmoid(a * margins[r] + c);
      const double err = p - static_cast<double>(y[r]);
      const double wgt = std::max(p * (1.0 - p), 1e-6);
      ga += err * margins[r];
      gc += err;
      haa += wgt * margins[r] * margins[r];
      hac += wgt * margins[r];
      hcc += wgt;
    }
    haa += 1e-6;
    hcc += 1e-6;
    const double det = haa * hcc - hac * hac;
    if (std::abs(det) < 1e-12) break;
    const double da = (hcc * ga - hac * gc) / det;
    const double dc = (haa * gc - hac * ga) / det;
    a -= da;
    c -= dc;
    if (std::abs(da) + std::abs(dc) < 1e-9) break;
  }
  platt_a_ = a;
  platt_c_ = c;
  fitted_ = true;
}

std::vector<double> LinearSVM::decision_function(const Matrix& X) const {
  if (!fitted_) throw std::logic_error("LinearSVM: predict before fit");
  const Matrix Xs = scaler_.transform(X);
  std::vector<double> out(Xs.rows());
  for (std::size_t r = 0; r < Xs.rows(); ++r) {
    const auto row = Xs.row(r);
    double m = b_;
    for (std::size_t f = 0; f < row.size(); ++f) m += w_[f] * row[f];
    out[r] = m;
  }
  return out;
}

std::vector<double> LinearSVM::predict_proba(const Matrix& X) const {
  auto margins = decision_function(X);
  for (auto& m : margins) m = sigmoid(platt_a_ * m + platt_c_);
  return margins;
}

std::unique_ptr<Classifier> LinearSVM::clone_unfitted() const {
  return std::make_unique<LinearSVM>(params_);
}

void LinearSVM::save_state(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("LinearSVM: save before fit");
  io::write_vector(os, "scaler_mean", scaler_.means());
  io::write_vector(os, "scaler_std", scaler_.stddevs());
  io::write_vector(os, "w", w_);
  io::write_vector(os, "tail", std::vector<double>{b_, platt_a_, platt_c_});
}

void LinearSVM::load_state(std::istream& is) {
  auto means = io::read_vector(is, "scaler_mean");
  auto stds = io::read_vector(is, "scaler_std");
  scaler_.set_state(std::move(means), std::move(stds));
  w_ = io::read_vector(is, "w");
  const auto tail = io::read_vector(is, "tail");
  if (tail.size() != 3 || w_.size() != scaler_.means().size()) {
    throw std::runtime_error("LinearSVM: inconsistent state");
  }
  b_ = tail[0];
  platt_a_ = tail[1];
  platt_c_ = tail[2];
  fitted_ = true;
}

}  // namespace mfpa::ml
