// Internal kernel interface behind FlatForest::accumulate_range.
//
// Every kernel executes the same algorithm on the same flattened arrays:
// for each tree in [tree_lo, tree_hi), walk rows [row_lo, row_hi) of the
// row-major feature storage `x` (row r starts at x + r * cols) from the
// tree's root to a leaf with the predicate `x <= thr` (NaN right), and add
// `scale * leaf_value` into acc[r - row_lo]. Additions happen in tree
// order with separate multiply and add — no FMA contraction — so every
// kernel is bit-identical to the scalar reference and to the node-pointer
// path (see flat_forest.hpp for the equivalence contract).
//
// The vector kernels live in dedicated translation units
// (flat_forest_avx2.cpp built with -mavx2, flat_forest_neon.cpp on
// aarch64) and are only reachable through their registration functions,
// which return nullptr when the kernel was not built in. Dispatch — the
// runtime cpuid probe plus the --simd override — happens in
// flat_forest.cpp via ml/simd.hpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfpa::ml::detail {

/// Borrowed view of a FlatForest's node arrays (SoA; see flat_forest.hpp
/// for the layout and the leaf self-loop convention).
struct ForestView {
  const std::int32_t* feat = nullptr;
  const double* thr = nullptr;
  const std::int32_t* left = nullptr;
  /// Packed (feat, left) pairs, feat in the low dword — lets a vector
  /// kernel fetch both with one 8-byte gather lane (see flat_forest.hpp).
  const std::uint64_t* fl = nullptr;
  const std::int32_t* roots = nullptr;
  double scale = 1.0;
};

using AccumulateFn = void (*)(const ForestView& forest, const double* x,
                              std::size_t cols, std::size_t row_lo,
                              std::size_t row_hi, std::size_t tree_lo,
                              std::size_t tree_hi, double* acc);

/// AVX2 gather/blend build of the blocked lockstep kernel; nullptr when the
/// TU was compiled without AVX2 support (non-x86, or -DMFPA_FORCE_SCALAR).
/// Caller must ensure the CPU supports AVX2 *and* rows * cols fits int32
/// (the gather indices are 32-bit) before invoking the returned kernel.
AccumulateFn avx2_accumulate_kernel() noexcept;

/// NEON build of the kernel; nullptr off aarch64 (or -DMFPA_FORCE_SCALAR).
AccumulateFn neon_accumulate_kernel() noexcept;

}  // namespace mfpa::ml::detail
