#include "ml/cnn_lstm.hpp"

#include "ml/serialize.hpp"

#include <istream>
#include <ostream>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

// Parameter layouts (all row-major):
//   conv_w_[(c*F + f)*K + k]  : channel c, input feature f, kernel tap k
//   lstm_wx_[g*C + c]         : gate row g in [0,4H), conv-channel input c
//   lstm_wh_[g*H + h]         : gate row g, previous-hidden h
//   gates per step, order     : i (input), f (forget), g (cell), o (output)

namespace mfpa::ml {
namespace {

double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

struct CnnLstmClassifier::Cache {
  // conv pre-activation not needed (ReLU mask from output), post-ReLU kept.
  std::vector<double> conv_out;  // [T][C]
  std::vector<double> gates;     // [T][4H] post-activation (i,f,g,o)
  std::vector<double> cells;     // [T][H] cell states
  std::vector<double> hiddens;   // [T][H] hidden states
  double prob = 0.0;
};

struct CnnLstmClassifier::Gradients {
  std::vector<double> conv_w, conv_b, lstm_wx, lstm_wh, lstm_b, dense_w;
  double dense_b = 0.0;

  void resize_like(const CnnLstmClassifier& m) {
    conv_w.assign(m.conv_w_.size(), 0.0);
    conv_b.assign(m.conv_b_.size(), 0.0);
    lstm_wx.assign(m.lstm_wx_.size(), 0.0);
    lstm_wh.assign(m.lstm_wh_.size(), 0.0);
    lstm_b.assign(m.lstm_b_.size(), 0.0);
    dense_w.assign(m.dense_w_.size(), 0.0);
    dense_b = 0.0;
  }
};

CnnLstmClassifier::CnnLstmClassifier(Hyperparams params)
    : params_(std::move(params)) {
  T_ = static_cast<int>(param_or(params_, "timesteps", 0));
  C_ = static_cast<int>(param_or(params_, "channels", 16));
  H_ = static_cast<int>(param_or(params_, "hidden", 24));
  K_ = static_cast<int>(param_or(params_, "kernel", 3));
  if (K_ % 2 == 0) {
    throw std::invalid_argument("CnnLstmClassifier: kernel must be odd");
  }
}

std::size_t CnnLstmClassifier::parameter_count() const noexcept {
  return conv_w_.size() + conv_b_.size() + lstm_wx_.size() + lstm_wh_.size() +
         lstm_b_.size() + dense_w_.size() + 1;
}

double CnnLstmClassifier::forward(std::span<const double> x,
                                  Cache* cache) const {
  const int T = T_, F = F_, C = C_, H = H_, K = K_;
  const int pad = K / 2;
  std::vector<double> conv_out(static_cast<std::size_t>(T) * C, 0.0);
  for (int t = 0; t < T; ++t) {
    for (int c = 0; c < C; ++c) {
      double acc = conv_b_[static_cast<std::size_t>(c)];
      for (int k = 0; k < K; ++k) {
        const int src = t + k - pad;
        if (src < 0 || src >= T) continue;
        const double* wrow = &conv_w_[(static_cast<std::size_t>(c) * F) * K];
        for (int f = 0; f < F; ++f) {
          acc += wrow[static_cast<std::size_t>(f) * K + k] *
                 x[static_cast<std::size_t>(src) * F + f];
        }
      }
      conv_out[static_cast<std::size_t>(t) * C + c] = acc > 0.0 ? acc : 0.0;
    }
  }

  std::vector<double> gates(static_cast<std::size_t>(T) * 4 * H, 0.0);
  std::vector<double> cells(static_cast<std::size_t>(T) * H, 0.0);
  std::vector<double> hiddens(static_cast<std::size_t>(T) * H, 0.0);
  std::vector<double> h_prev(static_cast<std::size_t>(H), 0.0);
  std::vector<double> c_prev(static_cast<std::size_t>(H), 0.0);

  for (int t = 0; t < T; ++t) {
    const double* xt = &conv_out[static_cast<std::size_t>(t) * C];
    double* gate_t = &gates[static_cast<std::size_t>(t) * 4 * H];
    for (int g = 0; g < 4 * H; ++g) {
      double acc = lstm_b_[static_cast<std::size_t>(g)];
      const double* wx = &lstm_wx_[static_cast<std::size_t>(g) * C];
      for (int c = 0; c < C; ++c) acc += wx[c] * xt[c];
      const double* wh = &lstm_wh_[static_cast<std::size_t>(g) * H];
      for (int h = 0; h < H; ++h) acc += wh[h] * h_prev[static_cast<std::size_t>(h)];
      gate_t[g] = acc;
    }
    for (int h = 0; h < H; ++h) {
      const double i = sigmoid(gate_t[h]);
      const double f = sigmoid(gate_t[H + h]);
      const double g = std::tanh(gate_t[2 * H + h]);
      const double o = sigmoid(gate_t[3 * H + h]);
      const double c_new = f * c_prev[static_cast<std::size_t>(h)] + i * g;
      const double h_new = o * std::tanh(c_new);
      gate_t[h] = i;
      gate_t[H + h] = f;
      gate_t[2 * H + h] = g;
      gate_t[3 * H + h] = o;
      cells[static_cast<std::size_t>(t) * H + h] = c_new;
      hiddens[static_cast<std::size_t>(t) * H + h] = h_new;
      c_prev[static_cast<std::size_t>(h)] = c_new;
      h_prev[static_cast<std::size_t>(h)] = h_new;
    }
  }

  double z = dense_b_;
  for (int h = 0; h < H; ++h) z += dense_w_[static_cast<std::size_t>(h)] * h_prev[static_cast<std::size_t>(h)];
  const double prob = sigmoid(z);

  if (cache != nullptr) {
    cache->conv_out = std::move(conv_out);
    cache->gates = std::move(gates);
    cache->cells = std::move(cells);
    cache->hiddens = std::move(hiddens);
    cache->prob = prob;
  }
  return prob;
}

void CnnLstmClassifier::backward(std::span<const double> x, const Cache& cache,
                                 double grad_out, Gradients& grads) const {
  const int T = T_, F = F_, C = C_, H = H_, K = K_;
  const int pad = K / 2;

  // Dense layer. grad_out = dL/dz (already through the sigmoid+BCE).
  const double* h_last = &cache.hiddens[static_cast<std::size_t>(T - 1) * H];
  std::vector<double> dh(static_cast<std::size_t>(H), 0.0);
  for (int h = 0; h < H; ++h) {
    grads.dense_w[static_cast<std::size_t>(h)] += grad_out * h_last[h];
    dh[static_cast<std::size_t>(h)] = grad_out * dense_w_[static_cast<std::size_t>(h)];
  }
  grads.dense_b += grad_out;

  // LSTM BPTT.
  std::vector<double> dc(static_cast<std::size_t>(H), 0.0);
  std::vector<double> dconv(static_cast<std::size_t>(T) * C, 0.0);
  std::vector<double> dgate(static_cast<std::size_t>(4) * H, 0.0);
  for (int t = T - 1; t >= 0; --t) {
    const double* gate_t = &cache.gates[static_cast<std::size_t>(t) * 4 * H];
    const double* cell_t = &cache.cells[static_cast<std::size_t>(t) * H];
    const double* c_prev =
        t > 0 ? &cache.cells[static_cast<std::size_t>(t - 1) * H] : nullptr;
    const double* h_prev =
        t > 0 ? &cache.hiddens[static_cast<std::size_t>(t - 1) * H] : nullptr;

    for (int h = 0; h < H; ++h) {
      const double i = gate_t[h];
      const double f = gate_t[H + h];
      const double g = gate_t[2 * H + h];
      const double o = gate_t[3 * H + h];
      const double c_val = cell_t[h];
      const double tanh_c = std::tanh(c_val);
      const double dh_h = dh[static_cast<std::size_t>(h)];

      const double do_ = dh_h * tanh_c;
      double dc_h = dh_h * o * (1.0 - tanh_c * tanh_c) + dc[static_cast<std::size_t>(h)];
      const double di = dc_h * g;
      const double dg = dc_h * i;
      const double df = c_prev != nullptr ? dc_h * c_prev[h] : 0.0;
      dc[static_cast<std::size_t>(h)] = dc_h * f;  // to t-1

      dgate[static_cast<std::size_t>(h)] = di * i * (1.0 - i);
      dgate[static_cast<std::size_t>(H + h)] = df * f * (1.0 - f);
      dgate[static_cast<std::size_t>(2 * H + h)] = dg * (1.0 - g * g);
      dgate[static_cast<std::size_t>(3 * H + h)] = do_ * o * (1.0 - o);
    }

    const double* xt = &cache.conv_out[static_cast<std::size_t>(t) * C];
    std::fill(dh.begin(), dh.end(), 0.0);
    for (int g = 0; g < 4 * H; ++g) {
      const double dg_val = dgate[static_cast<std::size_t>(g)];
      if (dg_val == 0.0) continue;
      grads.lstm_b[static_cast<std::size_t>(g)] += dg_val;
      double* gwx = &grads.lstm_wx[static_cast<std::size_t>(g) * C];
      const double* wx = &lstm_wx_[static_cast<std::size_t>(g) * C];
      double* dxt = &dconv[static_cast<std::size_t>(t) * C];
      for (int c = 0; c < C; ++c) {
        gwx[c] += dg_val * xt[c];
        dxt[c] += dg_val * wx[c];
      }
      if (h_prev != nullptr) {
        double* gwh = &grads.lstm_wh[static_cast<std::size_t>(g) * H];
        const double* wh = &lstm_wh_[static_cast<std::size_t>(g) * H];
        for (int h = 0; h < H; ++h) {
          gwh[h] += dg_val * h_prev[h];
          dh[static_cast<std::size_t>(h)] += dg_val * wh[h];
        }
      } else {
        double* gwh = &grads.lstm_wh[static_cast<std::size_t>(g) * H];
        (void)gwh;  // h_{-1} = 0: no wh gradient contribution at t = 0
      }
    }
  }

  // Conv layer (through the ReLU mask).
  for (int t = 0; t < T; ++t) {
    for (int c = 0; c < C; ++c) {
      if (cache.conv_out[static_cast<std::size_t>(t) * C + c] <= 0.0) continue;
      const double d = dconv[static_cast<std::size_t>(t) * C + c];
      if (d == 0.0) continue;
      grads.conv_b[static_cast<std::size_t>(c)] += d;
      for (int k = 0; k < K; ++k) {
        const int src = t + k - pad;
        if (src < 0 || src >= T) continue;
        double* gw = &grads.conv_w[(static_cast<std::size_t>(c) * F) * K];
        for (int f = 0; f < F; ++f) {
          gw[static_cast<std::size_t>(f) * K + k] +=
              d * x[static_cast<std::size_t>(src) * F + f];
        }
      }
    }
  }
}

void CnnLstmClassifier::fit(const Matrix& X, const std::vector<int>& y) {
  validate_fit_args(X, y);
  if (T_ <= 0) {
    throw std::invalid_argument(
        "CnnLstmClassifier: 'timesteps' hyperparameter is required");
  }
  if (X.cols() % static_cast<std::size_t>(T_) != 0) {
    throw std::invalid_argument(
        "CnnLstmClassifier: columns not divisible by timesteps");
  }
  F_ = static_cast<int>(X.cols()) / T_;

  const int epochs = static_cast<int>(param_or(params_, "epochs", 12));
  const std::size_t batch =
      static_cast<std::size_t>(param_or(params_, "batch", 64));
  const double lr = param_or(params_, "lr", 2e-3);
  Rng rng(static_cast<std::uint64_t>(param_or(params_, "seed", 1)));

  const Matrix Xs = scaler_.fit_transform(X);
  const std::size_t n = Xs.rows();

  // Glorot-style initialization.
  auto init = [&rng](std::vector<double>& w, std::size_t size, double fan) {
    const double scale = std::sqrt(1.0 / std::max(1.0, fan));
    w.resize(size);
    for (auto& v : w) v = rng.normal(0.0, scale);
  };
  init(conv_w_, static_cast<std::size_t>(C_) * F_ * K_,
       static_cast<double>(F_ * K_));
  conv_b_.assign(static_cast<std::size_t>(C_), 0.0);
  init(lstm_wx_, static_cast<std::size_t>(4 * H_) * C_, static_cast<double>(C_));
  init(lstm_wh_, static_cast<std::size_t>(4 * H_) * H_, static_cast<double>(H_));
  lstm_b_.assign(static_cast<std::size_t>(4 * H_), 0.0);
  // Forget-gate bias at 1.0 (standard trick for gradient flow).
  for (int h = 0; h < H_; ++h) lstm_b_[static_cast<std::size_t>(H_ + h)] = 1.0;
  init(dense_w_, static_cast<std::size_t>(H_), static_cast<double>(H_));
  dense_b_ = 0.0;

  // Adam state.
  Gradients grads, m, v;
  grads.resize_like(*this);
  m.resize_like(*this);
  v.resize_like(*this);
  double m_b = 0.0, v_b = 0.0;
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  std::size_t step = 0;

  auto adam_update = [&](std::vector<double>& w, std::vector<double>& gw,
                         std::vector<double>& mw, std::vector<double>& vw,
                         double corrected_lr, double inv_batch) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double g = gw[i] * inv_batch;
      mw[i] = kBeta1 * mw[i] + (1.0 - kBeta1) * g;
      vw[i] = kBeta2 * vw[i] + (1.0 - kBeta2) * g * g;
      w[i] -= corrected_lr * mw[i] / (std::sqrt(vw[i]) + kEps);
      gw[i] = 0.0;
    }
  };

  Cache cache;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto order = rng.permutation(n);
    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t stop = std::min(start + batch, n);
      for (std::size_t k = start; k < stop; ++k) {
        const auto row = Xs.row(order[k]);
        const double prob = forward(row, &cache);
        // dBCE/dz for sigmoid output.
        const double grad_out = prob - static_cast<double>(y[order[k]]);
        backward(row, cache, grad_out, grads);
      }
      ++step;
      const double bias_corr =
          std::sqrt(1.0 - std::pow(kBeta2, static_cast<double>(step))) /
          (1.0 - std::pow(kBeta1, static_cast<double>(step)));
      const double clr = lr * bias_corr;
      const double inv_batch = 1.0 / static_cast<double>(stop - start);
      adam_update(conv_w_, grads.conv_w, m.conv_w, v.conv_w, clr, inv_batch);
      adam_update(conv_b_, grads.conv_b, m.conv_b, v.conv_b, clr, inv_batch);
      adam_update(lstm_wx_, grads.lstm_wx, m.lstm_wx, v.lstm_wx, clr, inv_batch);
      adam_update(lstm_wh_, grads.lstm_wh, m.lstm_wh, v.lstm_wh, clr, inv_batch);
      adam_update(lstm_b_, grads.lstm_b, m.lstm_b, v.lstm_b, clr, inv_batch);
      adam_update(dense_w_, grads.dense_w, m.dense_w, v.dense_w, clr, inv_batch);
      {
        const double g = grads.dense_b * inv_batch;
        m_b = kBeta1 * m_b + (1.0 - kBeta1) * g;
        v_b = kBeta2 * v_b + (1.0 - kBeta2) * g * g;
        dense_b_ -= clr * m_b / (std::sqrt(v_b) + kEps);
        grads.dense_b = 0.0;
      }
    }
  }
  fitted_ = true;
}

std::vector<double> CnnLstmClassifier::predict_proba(const Matrix& X) const {
  if (!fitted_) throw std::logic_error("CnnLstmClassifier: predict before fit");
  const Matrix Xs = scaler_.transform(X);
  std::vector<double> out(Xs.rows());
  for (std::size_t r = 0; r < Xs.rows(); ++r) {
    out[r] = forward(Xs.row(r), nullptr);
  }
  return out;
}

std::unique_ptr<Classifier> CnnLstmClassifier::clone_unfitted() const {
  return std::make_unique<CnnLstmClassifier>(params_);
}

void CnnLstmClassifier::save_state(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("CnnLstmClassifier: save before fit");
  os << "cnn_lstm " << T_ << ' ' << F_ << ' ' << C_ << ' ' << H_ << ' ' << K_
     << '\n';
  io::write_vector(os, "scaler_mean", scaler_.means());
  io::write_vector(os, "scaler_std", scaler_.stddevs());
  io::write_vector(os, "conv_w", conv_w_);
  io::write_vector(os, "conv_b", conv_b_);
  io::write_vector(os, "lstm_wx", lstm_wx_);
  io::write_vector(os, "lstm_wh", lstm_wh_);
  io::write_vector(os, "lstm_b", lstm_b_);
  io::write_vector(os, "dense_w", dense_w_);
  io::write_vector(os, "dense_b", std::vector<double>{dense_b_});
}

void CnnLstmClassifier::load_state(std::istream& is) {
  io::expect_token(is, "cnn_lstm");
  if (!(is >> T_ >> F_ >> C_ >> H_ >> K_) || T_ <= 0 || F_ <= 0 || C_ <= 0 ||
      H_ <= 0 || K_ <= 0) {
    throw std::runtime_error("CnnLstmClassifier: bad architecture header");
  }
  auto means = io::read_vector(is, "scaler_mean");
  auto stds = io::read_vector(is, "scaler_std");
  scaler_.set_state(std::move(means), std::move(stds));
  conv_w_ = io::read_vector(is, "conv_w");
  conv_b_ = io::read_vector(is, "conv_b");
  lstm_wx_ = io::read_vector(is, "lstm_wx");
  lstm_wh_ = io::read_vector(is, "lstm_wh");
  lstm_b_ = io::read_vector(is, "lstm_b");
  dense_w_ = io::read_vector(is, "dense_w");
  const auto db = io::read_vector(is, "dense_b");
  const auto C = static_cast<std::size_t>(C_);
  const auto H = static_cast<std::size_t>(H_);
  if (db.size() != 1 ||
      conv_w_.size() != C * static_cast<std::size_t>(F_ * K_) ||
      conv_b_.size() != C || lstm_wx_.size() != 4 * H * C ||
      lstm_wh_.size() != 4 * H * H || lstm_b_.size() != 4 * H ||
      dense_w_.size() != H) {
    throw std::runtime_error("CnnLstmClassifier: inconsistent state sizes");
  }
  dense_b_ = db[0];
  fitted_ = true;
}

}  // namespace mfpa::ml
