#include "ml/calibration.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mfpa::ml {

void IsotonicCalibrator::fit(std::span<const double> scores,
                             std::span<const int> labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("IsotonicCalibrator: size mismatch");
  }
  if (scores.size() < 2) {
    throw std::invalid_argument("IsotonicCalibrator: need >= 2 samples");
  }
  bool has_pos = false, has_neg = false;
  for (int y : labels) (y == 1 ? has_pos : has_neg) = true;
  if (!has_pos || !has_neg) {
    throw std::invalid_argument("IsotonicCalibrator: need both classes");
  }

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Pool adjacent violators over the sorted labels.
  struct Block {
    double sum;     ///< sum of labels
    double weight;  ///< sample count
    double score_sum;
    double value() const { return sum / weight; }
  };
  std::vector<Block> blocks;
  blocks.reserve(scores.size());
  for (std::size_t i : order) {
    blocks.push_back({static_cast<double>(labels[i]), 1.0, scores[i]});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].value() >= blocks.back().value()) {
      const Block top = blocks.back();
      blocks.pop_back();
      blocks.back().sum += top.sum;
      blocks.back().weight += top.weight;
      blocks.back().score_sum += top.score_sum;
    }
  }

  thresholds_.clear();
  values_.clear();
  thresholds_.reserve(blocks.size());
  values_.reserve(blocks.size());
  for (const auto& b : blocks) {
    thresholds_.push_back(b.score_sum / b.weight);  // block score centroid
    values_.push_back(b.value());
  }
}

double IsotonicCalibrator::transform_one(double score) const {
  if (!fitted()) {
    throw std::logic_error("IsotonicCalibrator: transform before fit");
  }
  if (score <= thresholds_.front()) return values_.front();
  if (score >= thresholds_.back()) return values_.back();
  const auto it =
      std::upper_bound(thresholds_.begin(), thresholds_.end(), score);
  const std::size_t hi = static_cast<std::size_t>(it - thresholds_.begin());
  const std::size_t lo = hi - 1;
  const double span = thresholds_[hi] - thresholds_[lo];
  const double t = span > 0.0 ? (score - thresholds_[lo]) / span : 0.0;
  return values_[lo] + t * (values_[hi] - values_[lo]);
}

std::vector<double> IsotonicCalibrator::transform(
    std::span<const double> scores) const {
  std::vector<double> out;
  out.reserve(scores.size());
  for (double s : scores) out.push_back(transform_one(s));
  return out;
}

std::vector<ReliabilityBin> reliability_curve(std::span<const double> scores,
                                              std::span<const int> labels,
                                              std::size_t bins) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("reliability_curve: size mismatch");
  }
  if (bins == 0) throw std::invalid_argument("reliability_curve: bins == 0");
  std::vector<ReliabilityBin> out(bins);
  std::vector<double> score_sums(bins, 0.0);
  std::vector<double> label_sums(bins, 0.0);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    auto b = static_cast<std::size_t>(scores[i] * static_cast<double>(bins));
    b = std::min(b, bins - 1);
    score_sums[b] += scores[i];
    label_sums[b] += labels[i];
    ++out[b].count;
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (out[b].count == 0) continue;
    out[b].mean_score = score_sums[b] / static_cast<double>(out[b].count);
    out[b].observed_rate = label_sums[b] / static_cast<double>(out[b].count);
  }
  return out;
}

}  // namespace mfpa::ml
