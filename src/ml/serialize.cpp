#include "ml/serialize.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ml/checksum.hpp"
#include "ml/factory.hpp"

namespace mfpa::ml {
namespace io {

void write_double(std::ostream& os, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf << ' ';
}

void write_vector(std::ostream& os, const std::string& tag,
                  std::span<const double> values) {
  os << tag << ' ' << values.size() << ' ';
  for (double v : values) write_double(os, v);
  os << '\n';
}

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected) {
    throw std::runtime_error("serialize: expected token '" + expected +
                             "', got '" + token + "'");
  }
}

double read_double(std::istream& is) {
  double v = 0.0;
  if (!(is >> v)) throw std::runtime_error("serialize: malformed double");
  return v;
}

std::vector<double> read_vector(std::istream& is, const std::string& tag) {
  expect_token(is, tag);
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("serialize: malformed vector size");
  if (n > (1u << 28)) throw std::runtime_error("serialize: absurd vector size");
  std::vector<double> out(n);
  for (auto& v : out) v = read_double(is);
  return out;
}

}  // namespace io

namespace {

/// Parses the checksummed portion (name, params, model state) from `is`,
/// applying `overrides` on top of the stored hyperparameters.
std::unique_ptr<Classifier> load_body(std::istream& is,
                                      const Hyperparams& overrides) {
  std::string name;
  if (!(is >> name)) throw std::runtime_error("load_classifier: missing name");
  io::expect_token(is, "params");
  std::size_t n = 0;
  if (!(is >> n) || n > 1000) {
    throw std::runtime_error("load_classifier: malformed params");
  }
  Hyperparams params;
  for (std::size_t i = 0; i < n; ++i) {
    std::string key;
    if (!(is >> key)) throw std::runtime_error("load_classifier: bad param key");
    params[key] = io::read_double(is);
  }
  for (const auto& [key, value] : overrides) params[key] = value;
  auto model = make_classifier(name, params);
  model->load_state(is);
  return model;
}

}  // namespace

std::uint64_t save_classifier(std::ostream& os, const Classifier& model) {
  // The body (everything the checksum covers) is rendered first so the
  // header can carry its exact byte length and FNV-1a digest; the loader can
  // then reject truncation and corruption before touching the payload.
  std::ostringstream body_stream;
  body_stream << model.name() << '\n';
  const Hyperparams& params = model.hyperparams();
  body_stream << "params " << params.size() << ' ';
  for (const auto& [key, value] : params) {
    body_stream << key << ' ';
    io::write_double(body_stream, value);
  }
  body_stream << '\n';
  model.save_state(body_stream);
  const std::string body = body_stream.str();
  const std::uint64_t digest = fnv1a(body);
  os << "mfpa_model 2 " << body.size() << ' ' << checksum_hex(digest) << '\n'
     << body;
  if (!os) throw std::runtime_error("save_classifier: stream failure");
  return digest;
}

std::unique_ptr<Classifier> load_classifier(std::istream& is,
                                            const Hyperparams& overrides) {
  io::expect_token(is, "mfpa_model");
  int version = 0;
  if (!(is >> version) || version < 1 || version > 2) {
    throw std::runtime_error("load_classifier: unsupported format version");
  }
  if (version == 1) {
    // Legacy un-checksummed framing (still readable so artifacts written by
    // older builds keep deploying).
    return load_body(is, overrides);
  }
  std::size_t body_size = 0;
  std::string hex;
  if (!(is >> body_size >> hex) || body_size > (1u << 30)) {
    throw std::runtime_error("load_classifier: malformed checksum header");
  }
  const std::uint64_t expected = parse_checksum_hex(hex);
  if (is.get() != '\n') {
    throw std::runtime_error("load_classifier: malformed checksum header");
  }
  std::string body(body_size, '\0');
  is.read(body.data(), static_cast<std::streamsize>(body_size));
  if (static_cast<std::size_t>(is.gcount()) != body_size) {
    throw std::runtime_error(
        "load_classifier: truncated artifact (expected " +
        std::to_string(body_size) + " payload bytes, got " +
        std::to_string(is.gcount()) + ")");
  }
  const std::uint64_t actual = fnv1a(body);
  if (actual != expected) {
    throw std::runtime_error(
        "load_classifier: checksum mismatch (artifact corrupt): expected " +
        checksum_hex(expected) + ", payload hashes to " + checksum_hex(actual));
  }
  std::istringstream body_is(body);
  return load_body(body_is, overrides);
}

void save_classifier_file(const std::string& path, const Classifier& model) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_classifier_file: cannot open " + path);
  save_classifier(f, model);
}

std::unique_ptr<Classifier> load_classifier_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_classifier_file: cannot open " + path);
  return load_classifier(f);
}

}  // namespace mfpa::ml
