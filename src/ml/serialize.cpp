#include "ml/serialize.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "ml/factory.hpp"

namespace mfpa::ml {
namespace io {

void write_double(std::ostream& os, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf << ' ';
}

void write_vector(std::ostream& os, const std::string& tag,
                  std::span<const double> values) {
  os << tag << ' ' << values.size() << ' ';
  for (double v : values) write_double(os, v);
  os << '\n';
}

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected) {
    throw std::runtime_error("serialize: expected token '" + expected +
                             "', got '" + token + "'");
  }
}

double read_double(std::istream& is) {
  double v = 0.0;
  if (!(is >> v)) throw std::runtime_error("serialize: malformed double");
  return v;
}

std::vector<double> read_vector(std::istream& is, const std::string& tag) {
  expect_token(is, tag);
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("serialize: malformed vector size");
  if (n > (1u << 28)) throw std::runtime_error("serialize: absurd vector size");
  std::vector<double> out(n);
  for (auto& v : out) v = read_double(is);
  return out;
}

}  // namespace io

void save_classifier(std::ostream& os, const Classifier& model) {
  os << "mfpa_model 1\n" << model.name() << '\n';
  const Hyperparams& params = model.hyperparams();
  os << "params " << params.size() << ' ';
  for (const auto& [key, value] : params) {
    os << key << ' ';
    io::write_double(os, value);
  }
  os << '\n';
  model.save_state(os);
  if (!os) throw std::runtime_error("save_classifier: stream failure");
}

std::unique_ptr<Classifier> load_classifier(std::istream& is) {
  io::expect_token(is, "mfpa_model");
  int version = 0;
  if (!(is >> version) || version != 1) {
    throw std::runtime_error("load_classifier: unsupported format version");
  }
  std::string name;
  if (!(is >> name)) throw std::runtime_error("load_classifier: missing name");
  io::expect_token(is, "params");
  std::size_t n = 0;
  if (!(is >> n) || n > 1000) {
    throw std::runtime_error("load_classifier: malformed params");
  }
  Hyperparams params;
  for (std::size_t i = 0; i < n; ++i) {
    std::string key;
    if (!(is >> key)) throw std::runtime_error("load_classifier: bad param key");
    params[key] = io::read_double(is);
  }
  auto model = make_classifier(name, params);
  model->load_state(is);
  return model;
}

void save_classifier_file(const std::string& path, const Classifier& model) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_classifier_file: cannot open " + path);
  save_classifier(f, model);
}

std::unique_ptr<Classifier> load_classifier_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_classifier_file: cannot open " + path);
  return load_classifier(f);
}

}  // namespace mfpa::ml
